package dsgl

import (
	"io"

	"dsgl/internal/obs"
)

// Observability surface of the top-level package. The runtime metrics
// layer (internal/obs) is disabled by default: the engine, trainer, and
// worker pool bind nil no-op instruments and the anneal hot path stays
// allocation-free with zero recording overhead. EnableMetrics installs
// the process-wide registry; from then on every inference, training
// epoch, and pool run records into it, and MetricsSnapshot /
// WriteMetrics expose the result. The cmd/dsgl -obs-addr flag serves the
// same registry over HTTP (Prometheus text on /metrics, JSON on
// /metricsz, pprof under /debug/pprof/).
//
// Instrument inventory and naming convention: see DESIGN.md
// "Observability".

// MetricSnapshot is one instrument's state in a MetricsSnapshot: name,
// kind, labels, and the kind-specific values (count, gauge value,
// histogram buckets, summary quantiles). JSON-safe: non-finite values
// are omitted.
type MetricSnapshot = obs.MetricSnapshot

// EnableMetrics installs the process-wide metrics registry (idempotent;
// safe from multiple goroutines). Instrumented packages pick it up on
// their next recording opportunity — no restart or re-plumbing needed.
func EnableMetrics() { obs.Enable() }

// DisableMetrics removes the process-wide metrics registry, returning
// the hot paths to their zero-overhead no-op state. Counters recorded so
// far are dropped with the registry.
func DisableMetrics() { obs.Disable() }

// MetricsEnabled reports whether the process-wide registry is installed.
func MetricsEnabled() bool { return obs.Default() != nil }

// MetricsSnapshot returns the state of every registered instrument in
// registration order, or nil when metrics are disabled. Safe to call
// concurrently with ongoing runs; each instrument is read atomically.
func MetricsSnapshot() []MetricSnapshot { return obs.Default().Snapshot() }

// WriteMetrics writes every registered instrument in the Prometheus text
// exposition format. A no-op (writing nothing) when metrics are
// disabled.
func WriteMetrics(w io.Writer) error { return obs.Default().WritePrometheus(w) }
