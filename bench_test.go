package dsgl_test

// This file is the benchmark harness of the reproduction: one benchmark per
// paper table/figure (each regenerates a scaled-down version of the
// artifact and reports its wall cost), ablation benchmarks for the design
// choices called out in DESIGN.md (reporting RMSE as a custom metric), and
// microbenchmarks of the performance-critical kernels.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one artifact at full scale instead with the CLI:
//
//	go run ./cmd/dsgl table2

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"

	"dsgl"
	"dsgl/internal/community"
	"dsgl/internal/dspu"
	"dsgl/internal/engine"
	"dsgl/internal/experiments"
	"dsgl/internal/gnn"
	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/pattern"
	"dsgl/internal/rng"
	"dsgl/internal/scalable"
	"dsgl/internal/train"
)

// benchConfig is the scaled-down experiment configuration used by the
// per-artifact benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		N: 16, T: 400, EvalWindows: 5, GNNEpochs: 2,
		Datasets: []string{"no2"}, Seed: 17,
	}
}

func benchRun(b *testing.B, run experiments.Runner) {
	b.Helper()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B)   { benchRun(b, experiments.Registry()["fig4"]) }
func BenchmarkFig10(b *testing.B)  { benchRun(b, experiments.Registry()["fig10"]) }
func BenchmarkFig11(b *testing.B)  { benchRun(b, experiments.Registry()["fig11"]) }
func BenchmarkFig12(b *testing.B)  { benchRun(b, experiments.Registry()["fig12"]) }
func BenchmarkFig13(b *testing.B)  { benchRun(b, experiments.Registry()["fig13"]) }
func BenchmarkTable1(b *testing.B) { benchRun(b, experiments.Registry()["table1"]) }
func BenchmarkTable2(b *testing.B) { benchRun(b, experiments.Registry()["table2"]) }
func BenchmarkTable3(b *testing.B) { benchRun(b, experiments.Registry()["table3"]) }
func BenchmarkTable4(b *testing.B) { benchRun(b, experiments.Registry()["table4"]) }

// ---------------------------------------------------------------------------
// Ablations: each reports the resulting RMSE as a custom metric so the
// design choice's accuracy impact shows up next to its cost.
// ---------------------------------------------------------------------------

func benchDataset() *dsgl.Dataset {
	return dsgl.GenerateDataset("traffic", dsgl.DatasetConfig{N: 24, T: 500, History: 4, Horizon: 1, Seed: 3})
}

func benchEval(b *testing.B, ds *dsgl.Dataset, opts dsgl.Options) float64 {
	b.Helper()
	model, err := dsgl.Train(ds, opts)
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	if len(test) > 10 {
		test = test[:10]
	}
	rep, err := model.Evaluate(test)
	if err != nil {
		b.Fatal(err)
	}
	return rep.RMSE
}

// BenchmarkAblationSelfReaction contrasts the paper's core fix: quadratic
// self-reaction (real-valued settling) versus the binary BRIM behaviour,
// measured as inference RMSE when binarizing the BRIM outputs back to the
// rails.
func BenchmarkAblationSelfReaction(b *testing.B) {
	ds := benchDataset()
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:10]
	b.Run("quadratic", func(b *testing.B) {
		var rmse float64
		for i := 0; i < b.N; i++ {
			var sse float64
			var n int
			for _, w := range test {
				p, err := dsgl.DenseInfer(ds, dense, w, 9)
				if err != nil {
					b.Fatal(err)
				}
				for k := range p.Values {
					d := p.Values[k] - p.Truth[k]
					sse += d * d
					n++
				}
			}
			rmse = math.Sqrt(sse / float64(n))
		}
		b.ReportMetric(rmse, "rmse")
	})
	b.Run("binary", func(b *testing.B) {
		var rmse float64
		for i := 0; i < b.N; i++ {
			var sse float64
			var n int
			for _, w := range test {
				p, err := dsgl.DenseInfer(ds, dense, w, 9)
				if err != nil {
					b.Fatal(err)
				}
				for k := range p.Values {
					// BRIM's binary limitation: outputs polarize to ±rail.
					v := 0.8
					if p.Values[k] < 0 {
						v = -0.8
					}
					d := v - p.Truth[k]
					sse += d * d
					n++
				}
			}
			rmse = math.Sqrt(sse / float64(n))
		}
		b.ReportMetric(rmse, "rmse")
	})
}

// BenchmarkAblationPartition compares the learned community decomposition
// (Louvain + affinity redistribution) against a random node assignment at
// the same density and pattern. (A plain index-order assignment is NOT a
// fair control: window indices are laid out timestep-major, so it would
// accidentally preserve temporal locality.)
func BenchmarkAblationPartition(b *testing.B) {
	ds := benchDataset()
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:10]
	opts := dsgl.Options{Density: 0.05, PECapacity: 16, Wormholes: 1, DenseInit: dense, Seed: 7}

	b.Run("louvain", func(b *testing.B) {
		var rmse float64
		for i := 0; i < b.N; i++ {
			model, err := dsgl.Train(ds, opts)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := model.Evaluate(test)
			if err != nil {
				b.Fatal(err)
			}
			rmse = rep.RMSE
		}
		b.ReportMetric(rmse, "rmse")
	})
	b.Run("random", func(b *testing.B) {
		var rmse float64
		for i := 0; i < b.N; i++ {
			rmse = randomPartitionRMSE(b, ds, dense, test, opts)
		}
		b.ReportMetric(rmse, "rmse")
	})
}

// randomPartitionRMSE rebuilds the pipeline with nodes dealt onto PEs by a
// seeded random permutation (no community structure), mirroring what Train
// does otherwise.
func randomPartitionRMSE(b *testing.B, ds *dsgl.Dataset, dense *train.Params, test []dsgl.Window, opts dsgl.Options) float64 {
	b.Helper()
	n := dense.Dim()
	pruned := community.PruneToDensity(dense.J, opts.Density)
	gw, gh := community.GridFor(n, opts.PECapacity)
	assign := &community.Assignment{
		PEOf: make([]int, n), NodesOf: make([][]int, gw*gh),
		GridW: gw, GridH: gh, Capacity: opts.PECapacity,
	}
	perm := rng.New(41).Perm(n)
	for k, i := range perm {
		pe := k / opts.PECapacity
		assign.PEOf[i] = pe
		assign.NodesOf[pe] = append(assign.NodesOf[pe], i)
	}
	mask, _ := pattern.BuildMask(assign, pruned, pattern.Config{Kind: pattern.DMesh, Wormholes: opts.Wormholes})
	support := community.SupportMask(pruned, 0)
	for i := range mask.Data {
		mask.Data[i] = mask.Data[i] && support.Data[i]
	}
	tuned, err := train.MaskedRidge(samplesOf(ds), ds.ObservedMask(), mask, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	machine, err := scalable.Build(tuned, assign, mask, scalable.Config{Seed: opts.Seed})
	if err != nil {
		b.Fatal(err)
	}
	var sse float64
	var cnt int
	unknown := ds.UnknownIndices()
	observed := ds.ObservedMask()
	for _, w := range test {
		obs := make([]scalable.Observation, 0, len(w.Full))
		for i, o := range observed {
			if o {
				obs = append(obs, scalable.Observation{Index: i, Value: w.Full[i]})
			}
		}
		res, err := machine.Infer(obs)
		if err != nil {
			b.Fatal(err)
		}
		for _, idx := range unknown {
			d := res.Voltage[idx] - w.Full[idx]
			sse += d * d
			cnt++
		}
	}
	return math.Sqrt(sse / float64(cnt))
}

func samplesOf(ds *dsgl.Dataset) [][]float64 {
	trainW, _ := ds.Split()
	out := make([][]float64, len(trainW))
	for i, w := range trainW {
		out[i] = w.Full
	}
	return out
}

// BenchmarkAblationWormhole measures the accuracy contribution of the
// wormhole super-connections at a low-connectivity operating point.
func BenchmarkAblationWormhole(b *testing.B) {
	ds := benchDataset()
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:10]
	for _, tc := range []struct {
		name      string
		wormholes int
	}{{"off", -1}, {"budget4", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			var rmse float64
			for i := 0; i < b.N; i++ {
				w := tc.wormholes
				if w < 0 {
					w = 0
					// Options treats 0 as "default"; -1 disables by using
					// a pattern with no wormhole budget directly.
				}
				opts := dsgl.Options{
					Pattern: dsgl.Chain, Density: 0.03, PECapacity: 12,
					DenseInit: dense, Seed: 7,
				}
				if tc.wormholes > 0 {
					opts.Wormholes = tc.wormholes
				} else {
					opts.Wormholes = -1 // negative = none
				}
				rmse = benchEval(b, ds, opts)
			}
			b.ReportMetric(rmse, "rmse")
		})
	}
}

// BenchmarkAblationFineTune isolates the pattern-constrained refit: pruning
// without re-solving versus the closed-form masked refit.
func BenchmarkAblationFineTune(b *testing.B) {
	ds := benchDataset()
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:10]
	samples := samplesOf(ds)

	eval := func(tuned *train.Params, assign *community.Assignment, mask *mat.Bool) float64 {
		machine, err := scalable.Build(tuned, assign, mask, scalable.Config{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		var sse float64
		var cnt int
		unknown := ds.UnknownIndices()
		observed := ds.ObservedMask()
		for _, w := range test {
			obs := make([]scalable.Observation, 0, len(w.Full))
			for i, o := range observed {
				if o {
					obs = append(obs, scalable.Observation{Index: i, Value: w.Full[i]})
				}
			}
			res, err := machine.Infer(obs)
			if err != nil {
				b.Fatal(err)
			}
			for _, idx := range unknown {
				d := res.Voltage[idx] - w.Full[idx]
				sse += d * d
				cnt++
			}
		}
		return math.Sqrt(sse / float64(cnt))
	}

	build := func() (*community.Assignment, *mat.Bool, *train.Params) {
		pruned := community.PruneToDensity(dense.J, 0.05)
		weights := community.CouplingWeights(pruned)
		part := community.Louvain(weights, 10)
		assign, err := community.Redistribute(part, weights, 16)
		if err != nil {
			b.Fatal(err)
		}
		mask, _ := pattern.BuildMask(assign, pruned, pattern.Config{Kind: pattern.DMesh, Wormholes: 4})
		support := community.SupportMask(pruned, 0)
		for i := range mask.Data {
			mask.Data[i] = mask.Data[i] && support.Data[i]
		}
		prunedParams := dense.Clone()
		prunedParams.J.ApplyMask(mask)
		return assign, mask, prunedParams
	}

	b.Run("prune-only", func(b *testing.B) {
		var rmse float64
		for i := 0; i < b.N; i++ {
			assign, mask, prunedParams := build()
			rmse = eval(prunedParams, assign, mask)
		}
		b.ReportMetric(rmse, "rmse")
	})
	b.Run("masked-refit", func(b *testing.B) {
		var rmse float64
		for i := 0; i < b.N; i++ {
			assign, mask, _ := build()
			tuned, err := train.MaskedRidge(samples, ds.ObservedMask(), mask, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			rmse = eval(tuned, assign, mask)
		}
		b.ReportMetric(rmse, "rmse")
	})
}

// BenchmarkAblationIntegrator compares Euler and RK4 on the same inference.
func BenchmarkAblationIntegrator(b *testing.B) {
	r := rng.New(5)
	n := 64
	j := mat.NewDense(n, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y && r.Float64() < 0.2 {
				j.Set(x, y, r.NormScaled(0, 0.1))
			}
		}
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	for _, tc := range []struct {
		name string
		ig   ode.Integrator
	}{{"euler", ode.NewEuler()}, {"rk4", ode.NewRK4()}} {
		b.Run(tc.name, func(b *testing.B) {
			d, err := dspu.New(j, h, dspu.Config{Integrator: tc.ig, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Infer([]dspu.Observation{{Index: 0, Value: 0.5}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the hot kernels.
// ---------------------------------------------------------------------------

func BenchmarkAnnealInference(b *testing.B) {
	ds := benchDataset()
	model, err := dsgl.Train(ds, dsgl.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	w := test[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRidgeInit(b *testing.B) {
	ds := benchDataset()
	samples := samplesOf(ds)
	observed := ds.ObservedMask()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.RidgeInit(samples, observed, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	ds := benchDataset()
	samples := samplesOf(ds)
	rowWeight := make([]float64, ds.WindowLen())
	for _, idx := range ds.UnknownIndices() {
		rowWeight[idx] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.Fit(samples, train.Config{Epochs: 1, RowWeight: rowWeight, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLouvain(b *testing.B) {
	ds := benchDataset()
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	pruned := community.PruneToDensity(dense.J, 0.1)
	weights := community.CouplingWeights(pruned)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.Louvain(weights, 10)
	}
}

func BenchmarkGNNForward(b *testing.B) {
	ds := benchDataset()
	trainW, _ := ds.Split()
	in := gnn.WindowInput(ds, trainW[0])
	for _, name := range gnn.BaselineNames() {
		m, err := gnn.NewBaseline(name, ds, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Forward(in)
			}
		})
	}
}

func BenchmarkScalableBuild(b *testing.B) {
	ds := benchDataset()
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	pruned := community.PruneToDensity(dense.J, 0.1)
	weights := community.CouplingWeights(pruned)
	part := community.Louvain(weights, 10)
	assign, err := community.Redistribute(part, weights, 24)
	if err != nil {
		b.Fatal(err)
	}
	mask, _ := pattern.BuildMask(assign, pruned, pattern.Config{Kind: pattern.DMesh, Wormholes: 4})
	support := community.SupportMask(pruned, 0)
	for i := range mask.Data {
		mask.Data[i] = mask.Data[i] && support.Data[i]
	}
	tuned, err := train.MaskedRidge(samplesOf(ds), ds.ObservedMask(), mask, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scalable.Build(tuned, assign, mask, scalable.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRedistribution isolates the placement step: Louvain
// communities placed by coupling affinity (the paper's redistribution)
// versus the same communities dealt onto PEs in arbitrary order.
func BenchmarkAblationRedistribution(b *testing.B) {
	ds := benchDataset()
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:10]
	const capacity = 12
	pruned := community.PruneToDensity(dense.J, 0.03)
	weights := community.CouplingWeights(pruned)
	part := community.Louvain(weights, 10)

	evalAssign := func(assign *community.Assignment) float64 {
		mask, _ := pattern.BuildMask(assign, pruned, pattern.Config{Kind: pattern.Chain, Wormholes: 1})
		support := community.SupportMask(pruned, 0)
		for i := range mask.Data {
			mask.Data[i] = mask.Data[i] && support.Data[i]
		}
		tuned, err := train.MaskedRidge(samplesOf(ds), ds.ObservedMask(), mask, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		machine, err := scalable.Build(tuned, assign, mask, scalable.Config{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		var sse float64
		var cnt int
		unknown := ds.UnknownIndices()
		observed := ds.ObservedMask()
		for _, w := range test {
			obs := make([]scalable.Observation, 0, len(w.Full))
			for i, o := range observed {
				if o {
					obs = append(obs, scalable.Observation{Index: i, Value: w.Full[i]})
				}
			}
			res, err := machine.Infer(obs)
			if err != nil {
				b.Fatal(err)
			}
			for _, idx := range unknown {
				d := res.Voltage[idx] - w.Full[idx]
				sse += d * d
				cnt++
			}
		}
		return math.Sqrt(sse / float64(cnt))
	}

	b.Run("affinity", func(b *testing.B) {
		var rmse float64
		for i := 0; i < b.N; i++ {
			assign, err := community.Redistribute(part, weights, capacity)
			if err != nil {
				b.Fatal(err)
			}
			rmse = evalAssign(assign)
		}
		b.ReportMetric(rmse, "rmse")
	})
	b.Run("arbitrary", func(b *testing.B) {
		var rmse float64
		for i := 0; i < b.N; i++ {
			// Same communities, but pieces dealt round-robin: community
			// locality is ignored entirely.
			n := len(part.Labels)
			gw, gh := community.GridFor(n, capacity)
			assign := &community.Assignment{
				PEOf: make([]int, n), NodesOf: make([][]int, gw*gh),
				GridW: gw, GridH: gh, Capacity: capacity,
			}
			free := make([]int, gw*gh)
			for p := range free {
				free[p] = capacity
			}
			pe := 0
			for _, comm := range part.Communities() {
				for _, node := range comm {
					for free[pe] == 0 {
						pe = (pe + 1) % len(free)
					}
					assign.PEOf[node] = pe
					assign.NodesOf[pe] = append(assign.NodesOf[pe], node)
					free[pe]--
					pe = (pe + 1) % len(free)
				}
			}
			rmse = evalAssign(assign)
		}
		b.ReportMetric(rmse, "rmse")
	})
}

// ---------------------------------------------------------------------------
// Batch-inference engine: the worker pool and the zero-allocation arena.
//
// Compare the fresh-state path against the reusable arena, and sweep the
// worker count (the container CI runs these with -benchtime=1x as a smoke
// test; run locally with -benchmem for the allocs/op columns quoted in
// README.md):
//
//	go test -bench='BenchmarkInfer(Batch|With|Fresh)' -benchmem
// ---------------------------------------------------------------------------

// benchBatchSetup trains a scaled-down model and precomputes the observation
// lists for a batch of test windows. lanes=30 keeps the machine in pure
// spatial mode; lanes=6 forces temporal+spatial co-annealing (held slices,
// sample-and-hold refreshes).
func benchBatchSetup(b testing.TB, lanes int) (*scalable.Machine, [][]scalable.Observation) {
	b.Helper()
	ds := benchDataset()
	model, err := dsgl.Train(ds, dsgl.Options{Seed: 7, Lanes: lanes, MaxInferNs: 3000})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	if len(test) > 32 {
		test = test[:32]
	}
	observed := ds.ObservedMask()
	obs := make([][]scalable.Observation, len(test))
	for i, w := range test {
		for j, o := range observed {
			if o {
				obs[i] = append(obs[i], scalable.Observation{Index: j, Value: w.Full[j]})
			}
		}
	}
	return model.Machine, obs
}

// BenchmarkInferBatch sweeps the worker pool over a 32-window batch in both
// co-annealing modes. Results are bit-identical across worker counts (each
// window's anneal is seeded by its index), so the sweep isolates scheduling
// cost against parallel speedup.
func BenchmarkInferBatch(b *testing.B) {
	nproc := runtime.GOMAXPROCS(0)
	for _, mode := range []struct {
		name  string
		lanes int
	}{{"spatial", 30}, {"temporal", 6}} {
		m, obs := benchBatchSetup(b, mode.lanes)
		for _, workers := range []int{1, 4, nproc} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := m.InferBatch(obs, workers); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(obs)), "windows")
			})
		}
	}
}

// BenchmarkInferWith is the steady-state single inference through a reused
// arena running the NAIVE reference loop (InferWithNaive) — every coupling
// matrix re-evaluated in full every step, exactly what InferWith did before
// clamp plans. It is the baseline BenchmarkInferPlan is measured against;
// allocs/op must report 0 (enforced by TestInferNaiveZeroAlloc).
func BenchmarkInferWith(b *testing.B) {
	for _, mode := range []struct {
		name  string
		lanes int
	}{{"spatial", 30}, {"temporal", 6}} {
		m, obs := benchBatchSetup(b, mode.lanes)
		st := m.NewInferState()
		if _, err := m.InferWithNaive(st, obs[0], 1); err != nil { // warm-up
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.InferWithNaive(st, obs[0], uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInferPlan is the same steady-state inference through the
// clamp-plan path (the default InferWith): constant clamp currents folded
// once per inference, free-row kernels in the anneal loop, plan resolved by
// a cache hit. Results are bit-identical to BenchmarkInferWith's naive loop;
// only the wall cost differs. Reports the plan-cache hit rate of the
// measured window and must stay at 0 allocs/op (TestInferWithZeroAlloc).
func BenchmarkInferPlan(b *testing.B) {
	for _, mode := range []struct {
		name  string
		lanes int
	}{{"spatial", 30}, {"temporal", 6}} {
		m, obs := benchBatchSetup(b, mode.lanes)
		st := m.NewInferState()
		if _, err := m.InferWith(st, obs[0], 1); err != nil { // warm-up compiles the plan
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			h0, m0 := m.PlanCacheStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.InferWith(st, obs[0], uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			h1, m1 := m.PlanCacheStats()
			if lookups := (h1 - h0) + (m1 - m0); lookups > 0 {
				b.ReportMetric(float64(h1-h0)/float64(lookups), "plan-hit-rate")
			}
		})
	}
}

// BenchmarkInferPlanObs is BenchmarkInferPlan with the process-wide
// metrics registry installed: the same steady-state plan-path inference,
// with every call recording into the engine instruments (latency
// histograms, anneal-step counters, settle-residual summary). Comparing
// ns/op against BenchmarkInferPlan bounds the observability overhead
// (the <2 % contract of DESIGN.md "Observability"); allocs/op must stay
// 0, which TestInferPlanObsZeroAlloc enforces.
func BenchmarkInferPlanObs(b *testing.B) {
	dsgl.EnableMetrics()
	defer dsgl.DisableMetrics()
	for _, mode := range []struct {
		name  string
		lanes int
	}{{"spatial", 30}, {"temporal", 6}} {
		m, obs := benchBatchSetup(b, mode.lanes)
		st := m.NewInferState()
		// Warm-up compiles the plan and binds the instruments.
		if _, err := m.InferWith(st, obs[0], 1); err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.InferWith(st, obs[0], uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestInferPlanObsZeroAlloc is the allocation half of the observability
// overhead contract: steady-state plan-path inference performs zero heap
// allocations whether metrics are disabled (nil no-op instruments) or
// enabled (atomic counters, preallocated histogram buckets, fixed-marker
// quantile estimators — recording never allocates).
func TestInferPlanObsZeroAlloc(t *testing.T) {
	m, obs := benchBatchSetup(t, 30)
	st := m.NewInferState()
	run := func() {
		if _, err := m.InferWith(st, obs[0], 7); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: compile the plan, size the arena
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Fatalf("metrics disabled: %v allocs per inference, want 0", allocs)
	}
	dsgl.EnableMetrics()
	defer dsgl.DisableMetrics()
	run() // re-bind the instruments against the fresh registry
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Fatalf("metrics enabled: %v allocs per inference, want 0", allocs)
	}
}

// BenchmarkInferObserver measures the cost of watching an anneal: nil
// observer (the hot-loop contract), an observer that ignores the energy
// (EnergyFn makes the Hamiltonian lazy, so this is nearly free), and an
// observer that evaluates the energy every step (the old eager StepInfo
// behaviour, O(nnz) per step).
func BenchmarkInferObserver(b *testing.B) {
	m, obs := benchBatchSetup(b, 6)
	for _, mode := range []struct {
		name string
		fn   scalable.StepObserver
	}{
		{"nil", nil},
		{"lazy", func(scalable.StepInfo) {}},
		{"eager", func(si scalable.StepInfo) { _ = si.EnergyFn() }},
	} {
		st := m.NewInferState()
		st.SetObserver(mode.fn)
		if _, err := m.InferWith(st, obs[0], 1); err != nil { // warm-up
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.InferWith(st, obs[0], uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInferFresh is the pre-arena baseline: InferSeeded builds a fresh
// state per call, so its allocs/op column is what the arena eliminates.
func BenchmarkInferFresh(b *testing.B) {
	for _, mode := range []struct {
		name  string
		lanes int
	}{{"spatial", 30}, {"temporal", 6}} {
		m, obs := benchBatchSetup(b, mode.lanes)
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.InferSeeded(obs[0], uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchStreamSetup trains a temporal co-annealing model whose anneals
// settle well inside the step budget (the tiny-model option set), plus a
// synthetic telemetry stream: 8 sub-ticks per dataset window with linearly
// interpolated observation values (sensors report faster than the training
// window stride, so per-tick deltas are small), and a contiguous clamp
// block that slides one index at each window advance (sensor coverage
// rotates slowly). The sliding mask exercises plan delta-compilation —
// the n distinct patterns overflow the plan LRU — while the small-delta
// sub-ticks are the regime warm-started anneals exploit: the previous
// equilibrium plus fully seeded hold slices settles in tens of steps,
// where a cold anneal pays the full multi-cycle transient every tick.
func benchStreamSetup(b testing.TB) (*dsgl.Model, [][]engine.Observation) {
	b.Helper()
	const subT = 8 // sub-ticks per dataset window
	ds := benchDataset()
	model, err := dsgl.Train(ds, dsgl.Options{Seed: 7, Lanes: 6, Density: 0.15, PECapacity: 24, MaxInferNs: 3000})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	n := model.Tuned.Dim()
	block := n / 2
	obsSets := make([][]engine.Observation, subT*n)
	for t := range obsSets {
		w0 := test[(t/subT)%len(test)].Full
		w1 := test[(t/subT+1)%len(test)].Full
		a := float64(t%subT) / subT
		for j := 0; j < block; j++ {
			idx := (t/subT + j) % n
			obsSets[t] = append(obsSets[t], engine.Observation{Index: idx, Value: (1-a)*w0[idx] + a*w1[idx]})
		}
	}
	return model, obsSets
}

// BenchmarkInferStream is the streaming temporal serving comparison behind
// the benchfmt stream guard: the same sliding-mask tick sequence served
// cold (every tick a fresh plan resolution and a from-scratch anneal — the
// stateless /v1/infer path) versus through a stream session (warm-started
// anneal, plan delta-compilation — the /v1/stream path). The guard requires
// warm ticks to beat cold by >=1.5x; the warm win comes from starting at
// the previous tick's equilibrium, which both skips the anneal transient
// and lifts the one-settle-check-per-slice-cycle floor of temporal mode.
func BenchmarkInferStream(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		model, obsSets := benchStreamSetup(b)
		eng := model.Engine()
		st := eng.NewInferState()                                   // reusable, like the stateless serving pool
		if _, err := eng.InferWith(st, obsSets[0], 0); err != nil { // warm-up
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		steps := 0
		for i := 0; i < b.N; i++ {
			res, err := eng.InferWith(st, obsSets[i%len(obsSets)], uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
		}
		b.ReportMetric(float64(steps)/float64(b.N), "steps/tick")
	})
	b.Run("warm", func(b *testing.B) {
		model, obsSets := benchStreamSetup(b)
		eng := model.Engine()
		s := eng.OpenStream()
		defer s.Close()
		if _, err := s.Tick(obsSets[0], 0); err != nil { // cold first tick
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		steps := 0
		for i := 0; i < b.N; i++ {
			res, err := s.Tick(obsSets[(i+1)%len(obsSets)], uint64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
		}
		b.StopTimer()
		b.ReportMetric(float64(steps)/float64(b.N), "steps/tick")
		if hits, fallbacks := eng.PlanDeltaStats(); hits+fallbacks > 0 {
			b.ReportMetric(float64(hits)/float64(hits+fallbacks), "plan-delta-hit-rate")
		}
	})
}

// BenchmarkInferSharded contrasts one steady-state window inference on the
// exact sequential anneal against the community-sharded anneal of the same
// machine (ShardWorkers=4 — the benchmark model spans 3 PEs, so the anneal
// fans out across 3 shard goroutines with sample-and-hold cross-shard
// couplings). On a single core the sharded path pays the barrier overhead
// for no speedup; its win is proportional to cores, like InferBatch's.
func BenchmarkInferSharded(b *testing.B) {
	ds := benchDataset()
	model, err := dsgl.Train(ds, dsgl.Options{Seed: 7, MaxInferNs: 3000, ShardWorkers: 4})
	if err != nil {
		b.Fatal(err)
	}
	m := model.Machine
	if m.ShardCount() < 2 {
		b.Fatalf("benchmark model should shard, ShardCount=%d", m.ShardCount())
	}
	_, test := ds.Split()
	var obs []scalable.Observation
	for j, o := range ds.ObservedMask() {
		if o {
			obs = append(obs, scalable.Observation{Index: j, Value: test[0].Full[j]})
		}
	}
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.InferSeeded(obs, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.InferShardedSeeded(obs, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOptSolve anneals a 256-node Gset-style MaxCut instance through
// the engine's seeded multi-restart fan-out, once per selectable solver
// dynamics. Besides wall cost it reports solution quality as custom metrics:
// best-energy (the Ising ground-energy proxy; lower is better), the cut it
// maps back to, and restarts-to-best (how deep into the restart fan-out the
// winner appeared — 1 means the first seed already won). Deterministic in
// the pinned seed, so the metric columns are comparable across runs.
func BenchmarkOptSolve(b *testing.B) {
	g, err := dsgl.GsetInstance(256, 6, false, 13)
	if err != nil {
		b.Fatal(err)
	}
	for _, dyn := range dsgl.OptDynamics() {
		b.Run(dyn, func(b *testing.B) {
			b.ReportAllocs()
			var rep *dsgl.OptReport
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = dsgl.SolveMaxCut(g, dsgl.OptOptions{
					Dynamics: dyn, Steps: 60, Restarts: 4, Workers: 4, Seed: 9,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(rep.Run.Best.Energy, "best-energy")
			b.ReportMetric(rep.Cut, "cut")
			b.ReportMetric(float64(rep.Run.BestRestart+1), "restarts-to-best")
		})
	}
}

// BenchmarkEvaluateParallel contrasts the sequential Evaluate loop with the
// pooled EvaluateParallel at 1 and GOMAXPROCS workers over the same windows.
func BenchmarkEvaluateParallel(b *testing.B) {
	ds := benchDataset()
	model, err := dsgl.Train(ds, dsgl.Options{Seed: 7, MaxInferNs: 3000})
	if err != nil {
		b.Fatal(err)
	}
	_, test := ds.Split()
	if len(test) > 24 {
		test = test[:24]
	}
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := model.Evaluate(test); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := model.EvaluateParallel(test, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
