package dsgl

import (
	"reflect"
	"testing"
)

// TestSolveMaxCutLargeGsetAllDynamics is the acceptance gate for the
// optimization workload family: an 800-node Gset-style instance must solve
// through the engine under every selectable dynamics — the continuous BRIM
// and OIM paths included — and report a self-consistent cut well above the
// random-bisection baseline (half the total weight).
func TestSolveMaxCutLargeGsetAllDynamics(t *testing.T) {
	if testing.Short() {
		t.Skip("800-node anneal is a long test")
	}
	g, err := GsetInstance(800, 5, false, 11)
	if err != nil {
		t.Fatal(err)
	}
	half := g.TotalWeight() / 2
	cases := []struct {
		dynamics string
		steps    int
	}{
		{DynamicsMetropolis, 120},
		{DynamicsBRIM, 20},
		{DynamicsOIM, 20},
	}
	for _, c := range cases {
		t.Run(c.dynamics, func(t *testing.T) {
			rep, err := SolveMaxCut(g, OptOptions{
				Dynamics: c.dynamics,
				Steps:    c.steps,
				Restarts: 2,
				Workers:  2,
				Seed:     3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Nodes != 800 || rep.Run.Restarts != 2 {
				t.Fatalf("report shape wrong: %+v", rep)
			}
			// The reported cut must be derived from the reported energy, and
			// the spins must reproduce it directly.
			if direct := g.CutValue(rep.Run.Best.Spins); direct != rep.Cut {
				t.Fatalf("reported cut %g != cut of reported spins %g", rep.Cut, direct)
			}
			// Any functioning annealer clears the E[cut] = TW/2 baseline of a
			// uniform random partition by a wide margin.
			if rep.Cut <= 1.05*half {
				t.Errorf("%s cut %g does not clear the random baseline %g", c.dynamics, rep.Cut, half)
			}
			t.Logf("%s: cut %g of total %g", c.dynamics, rep.Cut, g.TotalWeight())
		})
	}
}

// TestSolveMaxCutWorkerBitIdentity pins the determinism contract at the API
// surface: the same options with different Workers values yield bit-identical
// runs (spins, energies, traces). Runs under -race in CI.
func TestSolveMaxCutWorkerBitIdentity(t *testing.T) {
	g, err := GsetInstance(96, 4, true, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, dyn := range OptDynamics() {
		base := OptOptions{Dynamics: dyn, Schedule: "adaptive", Steps: 25, Restarts: 6, Seed: 5}
		solo := base
		solo.Workers = 1
		fan := base
		fan.Workers = 4
		a, err := SolveMaxCut(g, solo)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveMaxCut(g, fan)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Run, b.Run) {
			t.Errorf("%s: runs diverge between 1 and 4 workers", dyn)
		}
		if a.Cut != b.Cut {
			t.Errorf("%s: cut diverges: %v vs %v", dyn, a.Cut, b.Cut)
		}
	}
}

// TestSolveMaxCutOptionValidation covers the error surface of the options.
func TestSolveMaxCutOptionValidation(t *testing.T) {
	g, err := TorusInstance(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveMaxCut(g, OptOptions{Dynamics: "bogus"}); err == nil {
		t.Error("unknown dynamics must error")
	}
	if _, err := SolveMaxCut(g, OptOptions{Schedule: "bogus"}); err == nil {
		t.Error("unknown schedule must error")
	}
	// Defaults alone must solve.
	rep, err := SolveMaxCut(g, OptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dynamics != DynamicsMetropolis || rep.Run.Restarts != 4 {
		t.Fatalf("defaults not applied: %+v", rep)
	}
}
