# Developer entry points for the DS-GL reproduction. Everything is plain
# `go` underneath; the targets just pin the flags CI and the README quote.

GO ?= go

.PHONY: all build vet lint test race bench serve-bench verify clean

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the static gate CI runs: gofmt must report nothing to rewrite,
# then staticcheck when it is installed (CI installs it; local runs degrade
# to go vet so the target works offline with a bare toolchain).
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needs to rewrite:"; echo "$$fmtout"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify trains the standard pipeline on every built-in dataset and checks
# the ten runtime invariants (energy descent, settle residual, snapshot
# round trip, seq/par bit-identity, lossless compilation, plan/naive
# bit-identity, sharded fixed-point agreement, warm-start fixed-point
# agreement, opt best-energy consistency, decomposed K=1 / monolithic
# bit-identity). The second line runs the decomposed pipeline itself
# (K>1 classes on a heterogeneous workload) through the same harness.
# Nonzero exit on any violation; small -n keeps it CI-cheap.
verify:
	$(GO) run ./cmd/dsgl verify -n 16 -eval 8
	$(GO) run ./cmd/dsgl verify heteromix -n 16 -eval 8 -decompose -classes 3

# bench runs the batch-inference benchmarks in steady state and captures the
# full -json event stream (benchmark results ride in "output" events) as
# BENCH_infer.json for machine consumption, while the human-readable table
# still lands on stdout via BENCH_infer.txt.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkInfer(Batch|With|Plan|Fresh|Observer|Sharded|Stream)|BenchmarkEvaluateParallel' \
		-benchmem -benchtime=10x -json . | tee BENCH_infer.json | \
		$(GO) run ./cmd/benchfmt -guard
	@echo "wrote BENCH_infer.json"
	$(GO) test -run '^$$' -bench 'BenchmarkOptSolve' \
		-benchmem -benchtime=5x -json . | tee BENCH_opt.json | \
		$(GO) run ./cmd/benchfmt -guard
	@echo "wrote BENCH_opt.json"

# serve-bench drives the serving layer with the synthetic open-loop load
# generator (heavy-tail Pareto arrivals, two offered-QPS points) and
# captures the p50/p99 + QPS report as BENCH_serve.json, rendered to a
# console table via benchfmt -serve (which fails the run when a QPS point
# completes zero requests). Small -n keeps the boot-time training CI-cheap.
serve-bench:
	$(GO) run ./cmd/dsgld -loadtest -n 16 -qps 150,600 -load-duration 2s | \
		tee BENCH_serve.json | $(GO) run ./cmd/benchfmt -serve
	@echo "wrote BENCH_serve.json"

clean:
	rm -f BENCH_infer.json BENCH_opt.json BENCH_serve.json
