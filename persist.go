package dsgl

import (
	"encoding/gob"
	"fmt"
	"io"

	"dsgl/internal/community"
	"dsgl/internal/mat"
	"dsgl/internal/scalable"
	"dsgl/internal/train"
)

// modelSnapshot is the serialized form of a trained Model: everything
// needed to rebuild the compiled machine except the dataset itself (which
// is regenerable from its seed or reloadable from CSV).
type modelSnapshot struct {
	// Format guards against incompatible future layouts.
	Format int

	DatasetName string
	WindowLen   int

	Opts Options

	JRows, JCols int
	JData        []float64
	H            []float64

	PEOf         []int
	GridW, GridH int
	Capacity     int

	MaskRows, MaskCols int
	MaskData           []bool
}

const snapshotFormat = 1

// Save serializes the trained model (parameters, placement, and coupling
// mask) so inference can resume in a later process without retraining.
// The dataset is not embedded; pass the same dataset to Load.
func (m *Model) Save(w io.Writer) error {
	mask := m.maskSnapshot()
	opts := m.Opts
	opts.DenseInit = nil // never embed the dense phase in snapshots
	snap := modelSnapshot{
		Format:      snapshotFormat,
		DatasetName: m.Dataset.Name,
		WindowLen:   m.Dataset.WindowLen(),
		Opts:        opts,
		JRows:       m.Tuned.J.Rows,
		JCols:       m.Tuned.J.Cols,
		JData:       m.Tuned.J.Data,
		H:           m.Tuned.H,
		PEOf:        m.Assignment.PEOf,
		GridW:       m.Assignment.GridW,
		GridH:       m.Assignment.GridH,
		Capacity:    m.Assignment.Capacity,
		MaskRows:    mask.Rows,
		MaskCols:    mask.Cols,
		MaskData:    mask.Data,
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// maskSnapshot reconstructs the effective coupling mask from the tuned
// support (the mask itself is not retained on the model; the tuned J's
// support is exactly the masked support after the closed-form refit).
func (m *Model) maskSnapshot() *mat.Bool {
	n := m.Tuned.Dim()
	mask := mat.NewBool(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && m.Tuned.J.At(i, j) != 0 {
				mask.Set(i, j, true)
			}
		}
	}
	return mask
}

// Load rebuilds a trained model from a snapshot written by Save. ds must
// be the dataset the model was trained on (same name and window geometry).
func Load(r io.Reader, ds *Dataset) (*Model, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dsgl: decoding snapshot: %w", err)
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("dsgl: snapshot format %d unsupported (want %d)", snap.Format, snapshotFormat)
	}
	if ds.Name != snap.DatasetName {
		return nil, fmt.Errorf("dsgl: snapshot is for dataset %q, got %q", snap.DatasetName, ds.Name)
	}
	if ds.WindowLen() != snap.WindowLen {
		return nil, fmt.Errorf("dsgl: snapshot window length %d, dataset has %d", snap.WindowLen, ds.WindowLen())
	}
	tuned := &train.Params{
		J: mat.NewDenseFrom(snap.JRows, snap.JCols, snap.JData),
		H: snap.H,
	}
	if err := tuned.Validate(); err != nil {
		return nil, fmt.Errorf("dsgl: snapshot parameters: %w", err)
	}
	assign := &community.Assignment{
		PEOf:     snap.PEOf,
		NodesOf:  make([][]int, snap.GridW*snap.GridH),
		GridW:    snap.GridW,
		GridH:    snap.GridH,
		Capacity: snap.Capacity,
	}
	for node, pe := range assign.PEOf {
		if pe < 0 || pe >= len(assign.NodesOf) {
			return nil, fmt.Errorf("dsgl: snapshot places node %d on invalid PE %d", node, pe)
		}
		assign.NodesOf[pe] = append(assign.NodesOf[pe], node)
	}
	if err := assign.Validate(); err != nil {
		return nil, fmt.Errorf("dsgl: snapshot assignment: %w", err)
	}
	mask := &mat.Bool{Rows: snap.MaskRows, Cols: snap.MaskCols, Data: snap.MaskData}
	opts := snap.Opts
	machine, err := scalable.Build(tuned, assign, mask, scalable.Config{
		Lanes:            opts.Lanes,
		TemporalDisabled: opts.TemporalDisabled,
		SyncIntervalNs:   opts.SyncIntervalNs,
		MaxTimeNs:        opts.MaxInferNs,
		NodeNoise:        opts.NodeNoise,
		CouplerNoise:     opts.CouplerNoise,
		Seed:             opts.Seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("dsgl: rebuilding machine: %w", err)
	}
	return &Model{
		Dataset:    ds,
		Opts:       opts,
		Dense:      tuned, // the dense phase is not persisted; reuse tuned
		Tuned:      tuned,
		Assignment: assign,
		Machine:    machine,
		unknown:    ds.UnknownIndices(),
		observed:   ds.ObservedMask(),
	}, nil
}
