package dsgl

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"runtime"

	"dsgl/internal/community"
	"dsgl/internal/dspu"
	"dsgl/internal/mat"
	"dsgl/internal/scalable"
	"dsgl/internal/train"
)

// modelSnapshot is the serialized form of a trained Model: everything
// needed to rebuild the inference backend except the dataset itself (which
// is regenerable from its seed or reloadable from CSV).
type modelSnapshot struct {
	// Format guards against incompatible future layouts.
	Format int
	// Backend records which inference backend the model ran (v3+). Empty in
	// v1/v2 snapshots, which predate the dense backend and are always
	// scalable.
	Backend string

	DatasetName string
	WindowLen   int

	Opts Options

	JRows, JCols int
	JData        []float64
	H            []float64

	// Decomposition fields — populated for the scalable backend only; the
	// dense backend never runs placement or masking.
	PEOf         []int
	GridW, GridH int
	Capacity     int

	MaskRows, MaskCols int
	MaskData           []bool

	// Classes holds the per-node interaction-class labels of a decomposed
	// model (v4+; empty for monolithic models and older snapshots). The gob
	// wire layout is append-only, so pre-v4 snapshots decode with Classes
	// nil.
	Classes []int
}

// Snapshot formats.
//
// v1 stored a mask reconstructed from the tuned J's nonzero support, which
// silently dropped mask entries whose closed-form refit value is exactly
// zero — a loaded model then carried a narrower mask than the one it was
// trained under. v2 persists the model's actual coupling mask. v3 adds the
// Backend tag so dense (single-PE) models round-trip too; a v3 dense
// snapshot carries only the parameter set (no placement, no mask). The
// v4 adds the per-node interaction-class labels of heterogeneous
// decomposition (Options.Decompose). The wire layout is append-only, so
// Load accepts all four formats; v1/v2 snapshots predate the tag and
// always decode as scalable, and pre-v4 snapshots carry no class labels.
const (
	snapshotFormatV1 = 1
	snapshotFormatV2 = 2
	snapshotFormatV3 = 3
	snapshotFormat   = 4
)

// Save serializes the trained model so inference can resume in a later
// process without retraining. The dataset is not embedded; pass the same
// dataset to Load.
//
// Both backends are persistable. A scalable snapshot stores the parameters
// plus the decomposition (placement and coupling mask); a dense snapshot
// stores the parameter set alone — the single-PE DSPU is rebuilt from it
// deterministically, exactly as Train would.
func (m *Model) Save(w io.Writer) error {
	if m.Machine == nil {
		return m.saveDense(w)
	}
	mask := m.mask
	if mask == nil {
		// A hand-assembled Model without a retained mask: fall back to the
		// tuned support, which is a (possibly strict) subset of the true
		// mask.
		mask = m.maskFromSupport()
	}
	opts := m.Opts
	opts.DenseInit = nil // never embed the dense phase in snapshots
	snap := modelSnapshot{
		Format:      snapshotFormat,
		Backend:     BackendScalable,
		DatasetName: m.Dataset.Name,
		WindowLen:   m.Dataset.WindowLen(),
		Opts:        opts,
		JRows:       m.Tuned.J.Rows,
		JCols:       m.Tuned.J.Cols,
		JData:       m.Tuned.J.Data,
		H:           m.Tuned.H,
		PEOf:        m.Assignment.PEOf,
		GridW:       m.Assignment.GridW,
		GridH:       m.Assignment.GridH,
		Capacity:    m.Assignment.Capacity,
		MaskRows:    mask.Rows,
		MaskCols:    mask.Cols,
		MaskData:    mask.Data,
		Classes:     m.Classes,
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// saveDense serializes a dense-backend model: the parameter set is the
// whole state — Load rebuilds the single-PE DSPU from it with the same
// deterministic construction Train uses.
func (m *Model) saveDense(w io.Writer) error {
	if m.Dspu == nil {
		return errors.New("dsgl: Save needs a trained model")
	}
	opts := m.Opts
	opts.DenseInit = nil // never embed the dense phase in snapshots
	snap := modelSnapshot{
		Format:      snapshotFormat,
		Backend:     BackendDense,
		DatasetName: m.Dataset.Name,
		WindowLen:   m.Dataset.WindowLen(),
		Opts:        opts,
		JRows:       m.Tuned.J.Rows,
		JCols:       m.Tuned.J.Cols,
		JData:       m.Tuned.J.Data,
		H:           m.Tuned.H,
		Classes:     m.Classes,
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// maskFromSupport reconstructs a coupling mask from the tuned support. This
// was the only mask v1 snapshots stored; it loses mask entries whose refit
// value is exactly zero, so it survives solely as the Save fallback for
// models without a retained mask and as the v1 decoding semantics.
func (m *Model) maskFromSupport() *mat.Bool {
	n := m.Tuned.Dim()
	mask := mat.NewBool(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && m.Tuned.J.At(i, j) != 0 {
				mask.Set(i, j, true)
			}
		}
	}
	return mask
}

// validateParams checks the parameter block shared by both backends before
// any slice indexing, so corrupt or truncated snapshots surface as errors
// instead of panics.
func (snap *modelSnapshot) validateParams() error {
	if snap.JRows <= 0 || snap.JCols <= 0 {
		return fmt.Errorf("dsgl: snapshot J is %dx%d", snap.JRows, snap.JCols)
	}
	if snap.JRows != snap.JCols {
		return fmt.Errorf("dsgl: snapshot J is %dx%d, want square", snap.JRows, snap.JCols)
	}
	if got, want := len(snap.JData), snap.JRows*snap.JCols; got != want {
		return fmt.Errorf("dsgl: snapshot J data has %d entries, want %d", got, want)
	}
	if got, want := len(snap.H), snap.JRows; got != want {
		return fmt.Errorf("dsgl: snapshot H has %d entries, want %d", got, want)
	}
	return nil
}

// validateGeometry checks the scalable-backend decomposition block
// (placement, grid, mask) on top of validateParams.
func (snap *modelSnapshot) validateGeometry() error {
	if err := snap.validateParams(); err != nil {
		return err
	}
	if got, want := len(snap.PEOf), snap.JRows; got != want {
		return fmt.Errorf("dsgl: snapshot placement covers %d nodes, want %d", got, want)
	}
	if snap.MaskRows != snap.JRows || snap.MaskCols != snap.JCols {
		return fmt.Errorf("dsgl: snapshot mask is %dx%d, want %dx%d",
			snap.MaskRows, snap.MaskCols, snap.JRows, snap.JCols)
	}
	if got, want := len(snap.MaskData), snap.MaskRows*snap.MaskCols; got != want {
		return fmt.Errorf("dsgl: snapshot mask data has %d entries, want %d", got, want)
	}
	if snap.GridW <= 0 || snap.GridH <= 0 {
		return fmt.Errorf("dsgl: snapshot PE grid is %dx%d", snap.GridW, snap.GridH)
	}
	if snap.Capacity <= 0 {
		return fmt.Errorf("dsgl: snapshot PE capacity is %d", snap.Capacity)
	}
	return nil
}

// Load rebuilds a trained model from a snapshot written by Save. ds must
// be the dataset the model was trained on (same name and window geometry).
// The snapshot's backend tag selects which backend is rebuilt; v1/v2
// snapshots predate the tag and load as scalable.
func Load(r io.Reader, ds *Dataset) (*Model, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dsgl: decoding snapshot: %w", err)
	}
	switch snap.Format {
	case snapshotFormatV1, snapshotFormatV2:
		// Pre-backend formats: always the compiled scalable machine.
		snap.Backend = BackendScalable
	case snapshotFormatV3, snapshotFormat:
		if snap.Backend != BackendScalable && snap.Backend != BackendDense {
			return nil, fmt.Errorf("dsgl: snapshot backend %q unsupported (valid: %q, %q)",
				snap.Backend, BackendScalable, BackendDense)
		}
	default:
		return nil, fmt.Errorf("dsgl: snapshot format %d unsupported (want %d, %d, %d, or %d)",
			snap.Format, snapshotFormatV1, snapshotFormatV2, snapshotFormatV3, snapshotFormat)
	}
	if ds.Name != snap.DatasetName {
		return nil, fmt.Errorf("dsgl: snapshot is for dataset %q, got %q", snap.DatasetName, ds.Name)
	}
	if ds.WindowLen() != snap.WindowLen {
		return nil, fmt.Errorf("dsgl: snapshot window length %d, dataset has %d", snap.WindowLen, ds.WindowLen())
	}
	if err := snap.validateClasses(ds); err != nil {
		return nil, err
	}
	if snap.Backend == BackendDense {
		return loadDense(&snap, ds)
	}
	if err := snap.validateGeometry(); err != nil {
		return nil, err
	}
	tuned := &train.Params{
		J: mat.NewDenseFrom(snap.JRows, snap.JCols, snap.JData),
		H: snap.H,
	}
	if err := tuned.Validate(); err != nil {
		return nil, fmt.Errorf("dsgl: snapshot parameters: %w", err)
	}
	assign := &community.Assignment{
		PEOf:     snap.PEOf,
		NodesOf:  make([][]int, snap.GridW*snap.GridH),
		GridW:    snap.GridW,
		GridH:    snap.GridH,
		Capacity: snap.Capacity,
	}
	for node, pe := range assign.PEOf {
		if pe < 0 || pe >= len(assign.NodesOf) {
			return nil, fmt.Errorf("dsgl: snapshot places node %d on invalid PE %d", node, pe)
		}
		assign.NodesOf[pe] = append(assign.NodesOf[pe], node)
	}
	if err := assign.Validate(); err != nil {
		return nil, fmt.Errorf("dsgl: snapshot assignment: %w", err)
	}
	// v2 snapshots carry the model's real mask; v1 carried only the tuned
	// support (see the format constants).
	mask := &mat.Bool{Rows: snap.MaskRows, Cols: snap.MaskCols, Data: snap.MaskData}
	opts := snap.Opts
	// Opts.Workers is a GOMAXPROCS snapshot of the saving host — meaningless
	// here. Re-normalize to the loading process's default so a model saved
	// on a 128-core trainer doesn't spawn 128 workers on a 2-core server.
	opts.Workers = runtime.GOMAXPROCS(0)
	// Normalize the backend tag: pre-backend (v1/v2) snapshots carry an
	// empty Options.Backend field.
	opts.Backend = BackendScalable
	machine, err := scalable.Build(tuned, assign, mask, scalable.Config{
		Lanes:            opts.Lanes,
		TemporalDisabled: opts.TemporalDisabled,
		SyncIntervalNs:   opts.SyncIntervalNs,
		MaxTimeNs:        opts.MaxInferNs,
		NodeNoise:        opts.NodeNoise,
		CouplerNoise:     opts.CouplerNoise,
		ShardWorkers:     opts.ShardWorkers,
		ShardSyncNs:      opts.ShardSyncNs,
		Seed:             opts.Seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("dsgl: rebuilding machine: %w", err)
	}
	return &Model{
		Dataset:    ds,
		Opts:       opts,
		Dense:      tuned, // the dense phase is not persisted; reuse tuned
		Tuned:      tuned,
		Assignment: assign,
		Machine:    machine,
		Classes:    snap.Classes,
		mask:       mask,
		unknown:    ds.UnknownIndices(),
		observed:   ds.ObservedMask(),
	}, nil
}

// validateClasses checks the v4 class-label block: absent (monolithic or
// pre-v4) or exactly one non-negative label per dataset node.
func (snap *modelSnapshot) validateClasses(ds *Dataset) error {
	if len(snap.Classes) == 0 {
		return nil
	}
	if len(snap.Classes) != ds.N {
		return fmt.Errorf("dsgl: snapshot has %d class labels, dataset has %d nodes", len(snap.Classes), ds.N)
	}
	for i, c := range snap.Classes {
		if c < 0 {
			return fmt.Errorf("dsgl: snapshot class label %d at node %d is negative", c, i)
		}
	}
	return nil
}

// loadDense rebuilds a dense-backend model from a v3 dense snapshot: the
// single-PE DSPU is reconstructed from the persisted parameter set with the
// same deterministic configuration Train uses (anneal seed Opts.Seed+2,
// dense anneal budget), so the loaded model is observationally bit-identical
// to the saved one.
func loadDense(snap *modelSnapshot, ds *Dataset) (*Model, error) {
	if err := snap.validateParams(); err != nil {
		return nil, err
	}
	tuned := &train.Params{
		J: mat.NewDenseFrom(snap.JRows, snap.JCols, snap.JData),
		H: snap.H,
	}
	if err := tuned.Validate(); err != nil {
		return nil, fmt.Errorf("dsgl: snapshot parameters: %w", err)
	}
	opts := snap.Opts
	// Same re-normalization as the scalable path: the saving host's worker
	// count is meaningless here.
	opts.Workers = runtime.GOMAXPROCS(0)
	opts.Backend = BackendDense
	d, err := dspu.New(tuned.J, tuned.H, dspu.Config{
		Seed:      opts.Seed + 2, // same anneal-seed slot Train assigns
		MaxTimeNs: denseMaxInferNs,
	})
	if err != nil {
		return nil, fmt.Errorf("dsgl: rebuilding dense DSPU: %w", err)
	}
	return &Model{
		Dataset:  ds,
		Opts:     opts,
		Dense:    tuned,
		Tuned:    tuned,
		Dspu:     d,
		Classes:  snap.Classes,
		unknown:  ds.UnknownIndices(),
		observed: ds.ObservedMask(),
	}, nil
}
