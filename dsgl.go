// Package dsgl is a software reproduction of DS-GL (ISCA 2024): a
// nature-powered graph-learning framework that maps graph-learning
// inference onto the natural annealing of a real-valued, scalable
// dynamical system.
//
// The package exposes the full pipeline of the paper:
//
//  1. Train a dense real-valued dynamical system (coupling matrix J and
//     self-reaction h) from spatio-temporal windows (Sec. III.B).
//  2. Decompose it: prune weak couplings to a target density, extract
//     communities (Louvain), redistribute them onto a PE grid, and
//     fine-tune under the interconnect-pattern mask
//     (Chain / Mesh / DMesh + Wormholes, Sec. IV.B).
//  3. Compile onto the Scalable DSPU simulator and run inference as
//     spatial or temporal+spatial co-annealing (Sec. IV.C-D).
//
// Quick start:
//
//	ds := dsgl.GenerateDataset("traffic", dsgl.DatasetConfig{})
//	model, _ := dsgl.Train(ds, dsgl.Options{})
//	rep, _ := model.Evaluate(nil) // test split
//	fmt.Printf("RMSE %.4g at %.3g µs/inference\n", rep.RMSE, rep.MeanLatencyUs)
package dsgl

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"dsgl/internal/community"
	"dsgl/internal/datasets"
	"dsgl/internal/dspu"
	"dsgl/internal/engine"
	"dsgl/internal/hetero"
	"dsgl/internal/mat"
	"dsgl/internal/metrics"
	"dsgl/internal/pattern"
	"dsgl/internal/pool"
	"dsgl/internal/scalable"
	"dsgl/internal/train"
)

// Pattern selects the inter-PE interconnect pattern.
type Pattern = pattern.Kind

// The interconnect patterns of Sec. IV.B, re-exported for callers.
const (
	Chain = pattern.Chain
	Mesh  = pattern.Mesh
	DMesh = pattern.DMesh
)

// Dataset re-exports the workload type.
type Dataset = datasets.Dataset

// DatasetConfig re-exports the generator configuration.
type DatasetConfig = datasets.Config

// Window re-exports the windowed-sample type.
type Window = datasets.Window

// GenerateDataset builds one of the named evaluation workloads
// ("traffic", "pm25", "pm10", "no2", "o3", "covid", "stock", "housing",
// "climate", "heteromix", "heterokinetics", "heteroflow"). It panics on an
// unknown name; NewDataset is the error-returning variant every serving
// entry point uses.
func GenerateDataset(name string, cfg DatasetConfig) *Dataset {
	return datasets.Generate(name, cfg)
}

// NewDataset builds one of the named evaluation workloads, returning an
// error for unknown names instead of panicking.
func NewDataset(name string, cfg DatasetConfig) (*Dataset, error) {
	return datasets.New(name, cfg)
}

// DatasetNames lists the seven single-feature workloads.
func DatasetNames() []string { return datasets.Names() }

// MultiDatasetNames lists the two multi-feature workloads (Table IV).
func MultiDatasetNames() []string { return datasets.MultiNames() }

// Inference backends selectable via Options.Backend. Both run the shared
// engine core (internal/engine); they differ in the dynamical system the
// engine drives.
const (
	// BackendScalable is the default: the full pipeline (decomposition,
	// interconnect patterns, temporal multiplexing) compiled onto the
	// Scalable DSPU simulator.
	BackendScalable = "scalable"
	// BackendDense runs the phase-1 dense parameter set on a single-PE
	// Real-Valued DSPU — the Sec. III configuration — skipping
	// decomposition and hardware compilation entirely.
	BackendDense = "dense"
)

// Backends lists the valid Options.Backend values.
func Backends() []string { return []string{BackendScalable, BackendDense} }

// Options configures the DS-GL pipeline.
//
// Zero-value convention: for every numeric field, 0 means "use the
// documented default", never "literally zero". Fields whose zero default
// differs from their literal zero (Wormholes, TrainEpochs, Workers) accept
// a negative value as the explicit "off"/minimum sentinel, as noted on the
// field.
type Options struct {
	// Backend selects the inference backend: BackendScalable (the default;
	// empty string means scalable) or BackendDense. Train rejects any other
	// value. With BackendDense the pipeline stops after phase 1 and the
	// Model runs the dense parameter set on a single dense DSPU; the
	// decomposition options (Pattern, Density, Wormholes, PECapacity,
	// Lanes, TemporalDisabled, SyncIntervalNs, FineTuneEpochs) are unused.
	Backend string
	// Pattern is the inter-PE interconnect. The zero value is Chain (the
	// cheapest); the paper's richest pattern is DMesh.
	Pattern Pattern
	// Density is the post-decomposition coupling-matrix density target
	// (proportion of non-zeros; the paper sweeps 0..0.25). Default 0.10.
	Density float64
	// Wormholes is the budget of remote-PE super-connections. 0 means the
	// default budget of 4; pass a negative value to disable wormholes
	// entirely (a budget of literally zero).
	Wormholes int
	// PECapacity is K, nodes per PE. Default 48 — window systems then
	// span multi-PE grids where the interconnect patterns genuinely
	// differ.
	PECapacity int
	// Lanes is L, analog lanes per portal. Default 30 (the paper's pick).
	Lanes int
	// TemporalDisabled selects the DS-GL-Spatial variant.
	TemporalDisabled bool
	// RidgeLambda is the closed-form solver's ridge strength. Zero (the
	// default) selects it automatically on a validation slice of the
	// training windows.
	RidgeLambda float64
	// TrainEpochs > 0 adds gradient refinement after the closed-form dense
	// solution. 0 means the default — no refinement, normalized to the -1
	// sentinel by fillDefaults — so any negative value likewise selects
	// "closed form only"; there is no meaningful "zero epochs but on"
	// state. FineTuneEpochs > 0 adds gradient refinement after the
	// closed-form masked re-solve; 0 or negative means closed form only
	// (no sentinel needed: the default and literal zero coincide).
	TrainEpochs, FineTuneEpochs int
	// SyncIntervalNs is the inter-tile synchronization interval (default
	// 200 ns, the hardware-supported rate).
	SyncIntervalNs float64
	// MaxInferNs bounds one inference (default 10000 ns; Fig. 11 sweeps
	// up to 20 µs).
	MaxInferNs float64
	// NodeNoise / CouplerNoise inject relative Gaussian disturbances
	// (Fig. 13).
	NodeNoise, CouplerNoise float64
	// DenseInit, when non-nil, supplies a pre-trained dense parameter set
	// and skips phase 1 — parameter sweeps over density/pattern reuse one
	// dense model this way.
	DenseInit *train.Params
	// Workers sizes the worker pool used by EvaluateParallel and the
	// ridge-lambda selection grid. 0 means the default,
	// runtime.GOMAXPROCS(0); pass a negative value to force a sequential
	// (single-worker) pool. Parallel results are bit-identical to
	// sequential ones — every window is seeded by its index, not by
	// scheduling order — so Workers is purely a throughput knob.
	Workers int
	// ShardWorkers > 1 turns on the intra-inference sharded anneal on the
	// scalable backend: the graph is partitioned into up to ShardWorkers
	// balanced shards along Louvain super-community (PE) boundaries, each
	// annealing on its own goroutine with cross-shard couplings held stale
	// between synchronization rounds (the same sample-and-hold discipline
	// the temporal slices use). Sharded inference is deterministic per seed
	// and settles to the sequential fixed point within the settle-residual
	// tolerance (the sharded-fixed-point verify invariant), but is NOT
	// bit-identical to it. 0 or 1 (the default) keeps the exact sequential
	// anneal; machines with injected analog noise or a single community
	// always run exact.
	ShardWorkers int
	// ShardSyncNs is the simulated interval between cross-shard coupling
	// refreshes. 0 selects SyncIntervalNs (cross-shard staleness matched to
	// the hardware's inter-tile sync rate); values at or below the
	// integration step disable sharding rather than pretend a per-step
	// exchange, which the exact path already is.
	ShardSyncNs float64
	// Decompose turns on heterogeneous decomposition (ROADMAP item 5):
	// nodes are partitioned into interaction classes (internal/hetero),
	// phase 1 and the masked refit fit per-class-pair J blocks
	// (train.BlockRidge / train.BlockMaskedRidge), and the Louvain
	// partition is refined along class boundaries before sharding so no
	// shard mixes classes. With Classes == 1 the decomposed pipeline is
	// bit-identical to the monolithic one (verify invariant 10).
	Decompose bool
	// Classes is K, the number of interaction classes when Decompose is
	// set. 0 means the default of 3; ignored when Decompose is false.
	Classes int
	// ClassMode selects the node profile used for class assignment:
	// "stats" (the default) or "embed" (graph-propagated statistics). See
	// internal/hetero. Ignored when Decompose is false.
	ClassMode string
	// Seed makes the pipeline deterministic.
	Seed uint64
}

func (o *Options) fillDefaults() {
	if o.Backend == "" {
		o.Backend = BackendScalable
	}
	if o.Density == 0 {
		o.Density = 0.10
	}
	if o.Wormholes == 0 {
		o.Wormholes = 4
	}
	if o.PECapacity == 0 {
		o.PECapacity = 48
	}
	if o.Lanes == 0 {
		o.Lanes = 30
	}
	if o.TrainEpochs == 0 {
		o.TrainEpochs = -1
	}
	if o.SyncIntervalNs == 0 {
		o.SyncIntervalNs = 200
	}
	if o.MaxInferNs == 0 {
		o.MaxInferNs = 10000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 0 {
		o.Workers = 1
	}
	if o.Decompose && o.Classes == 0 {
		o.Classes = 3
	}
}

// Model is a trained, decomposed, and hardware-compiled DS-GL system for
// one dataset.
type Model struct {
	Dataset *Dataset
	Opts    Options
	// Dense is the pre-decomposition parameter set.
	Dense *train.Params
	// Tuned is the pattern-confined fine-tuned parameter set the hardware
	// runs.
	Tuned *train.Params
	// Assignment maps window-vector nodes to PEs. Nil for BackendDense.
	Assignment *community.Assignment
	// Machine is the compiled Scalable DSPU. Nil for BackendDense.
	Machine *scalable.Machine
	// Dspu is the single-PE dense DSPU. Nil for BackendScalable.
	Dspu *dspu.DSPU
	// Classes holds the per-node interaction-class labels when the model
	// was trained with Options.Decompose (length Dataset.N, labels
	// first-occurrence canonical); nil for monolithic models. Persisted by
	// snapshot format v4.
	Classes []int

	// mask is the interconnect coupling mask the machine was compiled
	// under (pattern-legal ∩ density budget). It is retained verbatim so
	// Save persists the real mask rather than reconstructing it from the
	// tuned J's support — the two differ whenever the closed-form refit
	// drives a masked coupling to exactly zero.
	mask     *mat.Bool
	unknown  []int
	observed []bool
}

// errUnknownBackend formats the rejection for an unrecognized
// Options.Backend value, listing the valid choices.
func errUnknownBackend(name string) error {
	return fmt.Errorf("dsgl: unknown backend %q (valid: %q, %q)", name, BackendScalable, BackendDense)
}

// Train runs the full DS-GL pipeline on the dataset's training windows.
func Train(ds *Dataset, opts Options) (*Model, error) {
	opts.fillDefaults()
	if opts.Backend != BackendScalable && opts.Backend != BackendDense {
		return nil, errUnknownBackend(opts.Backend)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	trainWindows, _ := ds.Split()
	samples := make([][]float64, len(trainWindows))
	for i, w := range trainWindows {
		samples[i] = w.Full
	}
	if opts.RidgeLambda == 0 {
		lam, err := selectLambda(ds, samples, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("dsgl: lambda selection: %w", err)
		}
		opts.RidgeLambda = lam
	}
	// Observed entries are clamped during inference, so their regression
	// rows never act; weighting them out of the loss devotes the entire
	// coupling budget to the predicted variables.
	rowWeight := make([]float64, ds.WindowLen())
	for _, idx := range ds.UnknownIndices() {
		rowWeight[idx] = 1
	}

	// Heterogeneous decomposition: assign every node an interaction class
	// and expand the labels across the flattened window so the training
	// and sharding stages below can consume them per variable.
	classes, classVars, err := assignClasses(ds, opts)
	if err != nil {
		return nil, err
	}

	// Phase 1: dense real-valued training (Sec. III.B) — closed-form
	// ridge solution for the observed-to-unknown block, then gradient
	// refinement that may also grow unknown-to-unknown couplings.
	dense := opts.DenseInit
	if dense == nil {
		var err error
		dense, err = trainDensePhase(ds, samples, rowWeight, opts, classVars)
		if err != nil {
			return nil, err
		}
	} else if dense.Dim() != ds.WindowLen() {
		return nil, fmt.Errorf("dsgl: DenseInit dim %d, want %d", dense.Dim(), ds.WindowLen())
	}

	// The dense backend stops here: phase 1's parameter set runs directly
	// on a single-PE dense DSPU (Sec. III), with no decomposition and no
	// hardware compilation. Tuned aliases Dense so metrics/report code that
	// consults the "running" parameter set works unchanged.
	if opts.Backend == BackendDense {
		d, err := dspu.New(dense.J, dense.H, dspu.Config{
			Seed:      opts.Seed + 2, // same anneal-seed slot the scalable machine uses
			MaxTimeNs: denseMaxInferNs,
		})
		if err != nil {
			return nil, fmt.Errorf("dsgl: dense DSPU: %w", err)
		}
		return &Model{
			Dataset:  ds,
			Opts:     opts,
			Dense:    dense,
			Tuned:    dense,
			Dspu:     d,
			Classes:  classes,
			unknown:  ds.UnknownIndices(),
			observed: ds.ObservedMask(),
		}, nil
	}

	// Phase 2: decomposition (Sec. IV.B).
	pruned := community.PruneToDensity(dense.J, opts.Density)
	weights := community.CouplingWeights(pruned)
	part := community.Louvain(weights, 10)
	if opts.Decompose {
		// Shards must respect class boundaries: split every Louvain
		// community along the class labels before redistribution. With a
		// single class this returns the partition label-for-label.
		part = community.RefineByClass(part, classVars)
	}
	assign, err := community.Redistribute(part, weights, opts.PECapacity)
	if err != nil {
		return nil, fmt.Errorf("dsgl: redistribution: %w", err)
	}
	mask, _ := pattern.BuildMask(assign, pruned, pattern.Config{
		Kind:      opts.Pattern,
		Wormholes: opts.Wormholes,
	})
	// Intersect the pattern mask with the density budget: fine-tuning may
	// only repopulate entries that are both pattern-legal and within the
	// pruned support (keeping the density target).
	support := community.SupportMask(pruned, 0)
	for i := range mask.Data {
		mask.Data[i] = mask.Data[i] && support.Data[i]
	}
	// Fine-tune with patterns: re-solve the training objective in closed
	// form with J confined to the mask. An optional gradient pass
	// (FineTuneEpochs > 0) can follow to grow unknown-to-unknown
	// couplings, but the closed-form refit is the default: it restores
	// the accuracy the sparsification lost without exposure-bias risk.
	var tuned *train.Params
	if opts.Decompose {
		tuned, err = train.BlockMaskedRidge(samples, ds.ObservedMask(), classVars, mask, opts.RidgeLambda)
	} else {
		tuned, err = train.MaskedRidge(samples, ds.ObservedMask(), mask, opts.RidgeLambda)
	}
	if err != nil {
		return nil, fmt.Errorf("dsgl: fine-tune: %w", err)
	}
	if opts.FineTuneEpochs > 0 {
		tuned, err = train.Fit(samples, train.Config{
			Epochs:    opts.FineTuneEpochs,
			LR:        0.002,
			Mask:      mask,
			Init:      tuned,
			RowWeight: rowWeight,
			Seed:      opts.Seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("dsgl: fine-tune: %w", err)
		}
	}

	// Phase 3: hardware compilation (Sec. IV.C).
	machine, err := scalable.Build(tuned, assign, mask, scalable.Config{
		Lanes:            opts.Lanes,
		TemporalDisabled: opts.TemporalDisabled,
		SyncIntervalNs:   opts.SyncIntervalNs,
		MaxTimeNs:        opts.MaxInferNs,
		NodeNoise:        opts.NodeNoise,
		CouplerNoise:     opts.CouplerNoise,
		ShardWorkers:     opts.ShardWorkers,
		ShardSyncNs:      opts.ShardSyncNs,
		Seed:             opts.Seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("dsgl: hardware compilation: %w", err)
	}

	return &Model{
		Dataset:    ds,
		Opts:       opts,
		Dense:      dense,
		Tuned:      tuned,
		Assignment: assign,
		Machine:    machine,
		Classes:    classes,
		mask:       mask,
		unknown:    ds.UnknownIndices(),
		observed:   ds.ObservedMask(),
	}, nil
}

// assignClasses runs the class-assignment stage when Options.Decompose is
// set: per-node labels from internal/hetero, plus their expansion across
// the flattened window layout ((s*N+n)*F+f inherits node n's class). Both
// slices are nil for monolithic training.
func assignClasses(ds *Dataset, opts Options) (classes, classVars []int, err error) {
	if !opts.Decompose {
		return nil, nil, nil
	}
	asg, err := hetero.Assign(ds, hetero.Config{K: opts.Classes, Mode: opts.ClassMode, Seed: opts.Seed})
	if err != nil {
		return nil, nil, fmt.Errorf("dsgl: class assignment: %w", err)
	}
	return asg.NodeClass, classVariables(ds, asg.NodeClass), nil
}

// classVariables expands per-node class labels across every window step
// and feature, matching the flattened window layout.
func classVariables(ds *Dataset, nodeClass []int) []int {
	out := make([]int, ds.WindowLen())
	k := 0
	for s := 0; s < ds.History+ds.Horizon; s++ {
		for n := 0; n < ds.N; n++ {
			for f := 0; f < ds.F; f++ {
				out[k] = nodeClass[n]
				k++
			}
		}
	}
	return out
}

// denseMaxInferNs is the anneal budget of the single-PE dense DSPU (used by
// BackendDense models and DenseInfer alike): dense systems have no slice
// switching, so they settle well within 2 µs.
const denseMaxInferNs = 2000

// Engine returns the inference engine of the model's backend. Both
// backends expose the identical engine surface (InferSeeded, InferBatch,
// EnsurePlan, plan-cache stats), so everything downstream of Train is
// backend-agnostic. The serving layer (internal/serve) drives models
// through this handle: it is safe for concurrent use, and batch entry
// points are bit-identical to their solo equivalents per seed.
func (m *Model) Engine() *engine.Engine {
	if m.Machine != nil {
		return m.Machine.Engine()
	}
	return m.Dspu.Engine()
}

// mode names the co-annealing method for predictions and reports.
func (m *Model) mode() string {
	if m.Machine != nil {
		return m.Machine.Stats().Mode.String()
	}
	return "dense"
}

// Prediction is the outcome of one window inference.
type Prediction struct {
	// Values are the predicted entries, aligned with UnknownIndices.
	Values []float64
	// Truth are the ground-truth entries for the same indices.
	Truth []float64
	// LatencyUs is the simulated annealing latency in microseconds.
	LatencyUs float64
	// Mode reports the co-annealing method the mapping used.
	Mode string
}

// Predict clamps the window's observed entries and anneals the unknown
// ones.
func (m *Model) Predict(w datasets.Window) (*Prediction, error) {
	return m.predictSeeded(w, m.Engine().BaseSeed())
}

// predictSeeded is Predict with an explicit anneal seed. Evaluate and
// EvaluateParallel both give window i the seed baseSeed + i, which is
// what makes the parallel path bit-identical to the sequential one.
func (m *Model) predictSeeded(w datasets.Window, seed uint64) (*Prediction, error) {
	obs, err := m.windowObservations(w)
	if err != nil {
		return nil, err
	}
	var res *engine.Result
	if m.shardedInference() {
		res, err = m.Engine().InferShardedSeeded(obs, seed)
	} else {
		res, err = m.Engine().InferSeeded(obs, seed)
	}
	if err != nil {
		return nil, err
	}
	return m.predictionFrom(w, res), nil
}

// shardedInference reports whether this model routes window anneals through
// the community-sharded parallel entry points. The engine falls back to the
// exact path per call whenever the machine or the clamp pattern cannot
// shard, so routing here only consults the user's knob and the backend.
func (m *Model) shardedInference() bool {
	return m.Machine != nil && m.Opts.ShardWorkers > 1
}

// WindowObservations builds the clamp list for one window: every observed
// entry (per the dataset's observation mask) becomes one engine.Observation
// clamping its node. The window length is validated against the model
// dimension; a mismatched window is an error, never a silent partial clamp.
func (m *Model) WindowObservations(w datasets.Window) ([]engine.Observation, error) {
	return m.windowObservations(w)
}

// windowObservations builds the clamp list for one window.
func (m *Model) windowObservations(w datasets.Window) ([]engine.Observation, error) {
	if len(w.Full) != m.Tuned.Dim() {
		return nil, fmt.Errorf("dsgl: window has %d entries, model expects %d", len(w.Full), m.Tuned.Dim())
	}
	obs := make([]engine.Observation, 0, len(w.Full)-len(m.unknown))
	for i, isObs := range m.observed {
		if isObs {
			obs = append(obs, engine.Observation{Index: i, Value: w.Full[i]})
		}
	}
	return obs, nil
}

// predictionFrom extracts the unknown entries of an inference result.
func (m *Model) predictionFrom(w datasets.Window, res *engine.Result) *Prediction {
	p := &Prediction{
		Values:    make([]float64, len(m.unknown)),
		Truth:     make([]float64, len(m.unknown)),
		LatencyUs: res.LatencyNs / 1000,
		Mode:      m.mode(),
	}
	for k, idx := range m.unknown {
		p.Values[k] = res.Voltage[idx]
		p.Truth[k] = w.Full[idx]
	}
	return p
}

// Report summarizes an evaluation run.
type Report struct {
	RMSE float64
	MAE  float64
	// MAPE is the mean absolute percentage error over the prediction/truth
	// pairs whose |truth| >= metrics.MAPEEps. NaN when every pair was
	// skipped (render as "n/a", never as 0 — that would read as a perfect
	// score); MAPESkipped reports how many pairs the average excludes.
	MAPE          float64
	MAPESkipped   int
	MeanLatencyUs float64
	Windows       int
	Mode          string
	Stats         scalable.Stats
}

// Evaluate predicts every given window (nil = the dataset's test split)
// sequentially and reports aggregate accuracy and latency. Window i is
// annealed with seed machineSeed + i, so Evaluate is the bit-identical
// sequential reference for EvaluateParallel.
func (m *Model) Evaluate(windows []datasets.Window) (*Report, error) {
	if windows == nil {
		_, windows = m.Dataset.Split()
	}
	if len(windows) == 0 {
		return nil, errors.New("dsgl: no windows to evaluate")
	}
	if err := m.ensurePlan(); err != nil {
		return nil, err
	}
	seed := m.Engine().BaseSeed()
	// One accumulator carries both the squared and absolute error sums.
	var acc metrics.Accumulator
	var lat float64
	for i, w := range windows {
		p, err := m.predictSeeded(w, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		acc.AddVec(p.Values, p.Truth)
		lat += p.LatencyUs
	}
	return m.report(acc, lat, len(windows)), nil
}

// EvaluateParallel is Evaluate fanned across the batch-inference engine's
// worker pool. workers <= 0 selects Options.Workers (which itself defaults
// to runtime.GOMAXPROCS(0)). Because every window's anneal is seeded by its
// index and the metrics are accumulated in window order after the batch
// completes, the report is bit-identical to Evaluate's for any worker
// count — parallelism changes throughput, never results.
func (m *Model) EvaluateParallel(windows []datasets.Window, workers int) (*Report, error) {
	if windows == nil {
		_, windows = m.Dataset.Split()
	}
	if len(windows) == 0 {
		return nil, errors.New("dsgl: no windows to evaluate")
	}
	if workers <= 0 {
		workers = m.Opts.Workers
	}
	if err := m.ensurePlan(); err != nil {
		return nil, err
	}
	obsList := make([][]engine.Observation, len(windows))
	for i, w := range windows {
		obs, err := m.windowObservations(w)
		if err != nil {
			return nil, err
		}
		obsList[i] = obs
	}
	var results []*engine.Result
	var err error
	if m.shardedInference() {
		results, err = m.Engine().InferShardedBatch(obsList, workers)
	} else {
		results, err = m.Engine().InferBatch(obsList, workers)
	}
	if err != nil {
		return nil, err
	}
	var acc metrics.Accumulator
	var lat float64
	for i, res := range results {
		p := m.predictionFrom(windows[i], res)
		acc.AddVec(p.Values, p.Truth)
		lat += p.LatencyUs
	}
	return m.report(acc, lat, len(windows)), nil
}

// EnsurePlan pre-compiles the clamp plan for the model's fixed observation
// pattern. The serving layer's model registry calls this at load time so a
// model starts answering requests with a warm plan cache instead of
// compiling inside the first request's anneal.
func (m *Model) EnsurePlan() error { return m.ensurePlan() }

// PlanCacheStats reports the model engine's cumulative clamp-plan cache
// hit and miss counts (a miss compiles a plan). The registry warmup test
// and the serving layer's /v1/models listing read these.
func (m *Model) PlanCacheStats() (hits, misses uint64) {
	return m.Engine().PlanCacheStats()
}

// ensurePlan pre-compiles the machine's clamp plan for the model's fixed
// observation pattern. Every window of an evaluation run clamps the same
// node set — only the values differ — so compiling the single shared plan
// here, once, means the whole run (sequential or fanned across workers)
// starts with a cache hit instead of compiling inside the first window's
// inference. Plans depend on observation indices only; the zero values in
// the probe observations are never read.
func (m *Model) ensurePlan() error {
	obs := make([]engine.Observation, 0, len(m.observed))
	for i, isObs := range m.observed {
		if isObs {
			obs = append(obs, engine.Observation{Index: i})
		}
	}
	return m.Engine().EnsurePlan(obs)
}

// report assembles the aggregate evaluation report. A dense-backend model
// has no compiled machine, so its Stats stay zero and Mode reads "dense".
func (m *Model) report(acc metrics.Accumulator, latUs float64, windows int) *Report {
	rep := &Report{
		RMSE:          acc.RMSE(),
		MAE:           acc.MAE(),
		MAPE:          acc.MAPE(),
		MAPESkipped:   acc.MAPESkipped(),
		MeanLatencyUs: latUs / float64(windows),
		Windows:       windows,
		Mode:          m.mode(),
	}
	if m.Machine != nil {
		rep.Stats = m.Machine.Stats()
	}
	return rep
}

// lambdaCandidates is the grid searched when Options.RidgeLambda is zero.
var lambdaCandidates = []float64{0.03, 0.1, 0.3, 1, 3}

// validationCount returns the size of the lambda-selection validation
// slice for n training windows: the last 15% (floor, in exact integer
// arithmetic: n*3/20), pinned by TestValidationCountPinsSplit. Before this
// was reconciled the code took n/7 (~14.3%) while the doc claimed 15%.
func validationCount(n int) int {
	return n * 3 / 20
}

// selectLambda picks the ridge strength that minimizes validation RMSE
// over the unknown entries, using the last 15% of the training windows as
// the validation slice (time-ordered, so no leakage; see validationCount).
// The candidate grid is embarrassingly parallel — each candidate solves an
// independent ridge system — so it fans out over the shared worker pool;
// the winner is picked by scanning candidates in grid order, which keeps
// the choice identical to the sequential scan for any worker count.
func selectLambda(ds *Dataset, samples [][]float64, workers int) (float64, error) {
	nVal := validationCount(len(samples))
	if nVal < 4 {
		return 0.1, nil // too little data to validate; a safe default
	}
	fit := samples[:len(samples)-nVal]
	val := samples[len(samples)-nVal:]
	unknown := ds.UnknownIndices()
	rmse := make([]float64, len(lambdaCandidates))
	err := pool.RunErr(workers, len(lambdaCandidates), func(i int) error {
		p, err := train.RidgeInit(fit, ds.ObservedMask(), lambdaCandidates[i])
		if err != nil {
			return err
		}
		buf := make([]float64, ds.WindowLen())
		var acc metrics.Accumulator
		for _, smp := range val {
			// With no unknown-to-unknown couplings the clamped equilibrium
			// equals the one-shot regression from the observed entries.
			p.Regress(smp, buf)
			for _, idx := range unknown {
				acc.Add(buf[idx], smp[idx])
			}
		}
		rmse[i] = acc.RMSE()
		return nil
	})
	if err != nil {
		return 0, err
	}
	best, bestRMSE := lambdaCandidates[0], math.Inf(1)
	for i, lam := range lambdaCandidates {
		if rmse[i] < bestRMSE {
			bestRMSE = rmse[i]
			best = lam
		}
	}
	return best, nil
}

// trainDensePhase runs phase 1: ridge closed form plus optional gradient
// refinement (skipped when opts.TrainEpochs < 0). A non-nil classVars
// selects the block-structured solve (per-class-pair ridge blocks); the
// optional gradient refinement stays class-agnostic — the masked refit of
// phase 2 re-imposes the block structure on everything the hardware runs.
func trainDensePhase(ds *Dataset, samples [][]float64, rowWeight []float64, opts Options, classVars []int) (*train.Params, error) {
	var init *train.Params
	var err error
	if classVars != nil {
		init, err = train.BlockRidge(samples, ds.ObservedMask(), classVars, opts.RidgeLambda)
	} else {
		init, err = train.RidgeInit(samples, ds.ObservedMask(), opts.RidgeLambda)
	}
	if err != nil {
		return nil, fmt.Errorf("dsgl: ridge initialization: %w", err)
	}
	if opts.TrainEpochs < 0 {
		return init, nil
	}
	dense, err := train.Fit(samples, train.Config{
		Epochs:    opts.TrainEpochs,
		LR:        0.01,
		Init:      init,
		RowWeight: rowWeight,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("dsgl: dense training: %w", err)
	}
	return dense, nil
}

// TrainDense trains only the dense Real-Valued DSPU (no decomposition) —
// the Sec. III configuration. The result can be run on a single dense DSPU
// via DenseInfer or passed to Train as Options.DenseInit.
func TrainDense(ds *Dataset, opts Options) (*train.Params, error) {
	opts.fillDefaults()
	// Same admission check Train performs: a malformed dataset must surface
	// here as an error, not as a panic deep inside Split or the ridge solve.
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	trainWindows, _ := ds.Split()
	samples := make([][]float64, len(trainWindows))
	for i, w := range trainWindows {
		samples[i] = w.Full
	}
	if opts.RidgeLambda == 0 {
		lam, err := selectLambda(ds, samples, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("dsgl: lambda selection: %w", err)
		}
		opts.RidgeLambda = lam
	}
	rowWeight := make([]float64, ds.WindowLen())
	for _, idx := range ds.UnknownIndices() {
		rowWeight[idx] = 1
	}
	_, classVars, err := assignClasses(ds, opts)
	if err != nil {
		return nil, err
	}
	return trainDensePhase(ds, samples, rowWeight, opts, classVars)
}

// DenseInfer runs one window inference on a dense (single-PE) Real-Valued
// DSPU built from params.
func DenseInfer(ds *Dataset, params *train.Params, w datasets.Window, seed uint64) (*Prediction, error) {
	// Same geometry check windowObservations performs on the model path: a
	// window that does not match the parameter dimension would otherwise
	// panic indexing w.Full (too short) or silently clamp garbage entries
	// (too long).
	if len(w.Full) != params.Dim() {
		return nil, fmt.Errorf("dsgl: window has %d entries, parameters expect %d", len(w.Full), params.Dim())
	}
	if got := ds.WindowLen(); got != params.Dim() {
		return nil, fmt.Errorf("dsgl: dataset window length %d, parameters expect %d", got, params.Dim())
	}
	d, err := dspu.New(params.J, params.H, dspu.Config{Seed: seed, MaxTimeNs: denseMaxInferNs})
	if err != nil {
		return nil, err
	}
	observed := ds.ObservedMask()
	obs := make([]dspu.Observation, 0, len(w.Full))
	for i, isObs := range observed {
		if isObs {
			obs = append(obs, dspu.Observation{Index: i, Value: w.Full[i]})
		}
	}
	res, err := d.Infer(obs)
	if err != nil {
		return nil, err
	}
	unknown := ds.UnknownIndices()
	p := &Prediction{
		Values:    make([]float64, len(unknown)),
		Truth:     make([]float64, len(unknown)),
		LatencyUs: res.LatencyNs / 1000,
		Mode:      "dense",
	}
	for k, idx := range unknown {
		p.Values[k] = res.Voltage[idx]
		p.Truth[k] = w.Full[idx]
	}
	return p, nil
}
