package dsgl

import (
	"bytes"
	"math"
	"testing"
)

// TestDecomposedK1BitIdentity pins the end-to-end half of verify invariant
// 10 as a direct regression on both backends: training with
// Options.Decompose and a single interaction class must reproduce the
// monolithic training run bit-for-bit — tuned J and h, and the evaluation
// metrics that flow from them. Any divergence is a defect in the
// block-solve plumbing, never numerical slack.
func TestDecomposedK1BitIdentity(t *testing.T) {
	for _, backend := range []string{BackendScalable, BackendDense} {
		t.Run(backend, func(t *testing.T) {
			ds := tinyDataset(t, "traffic")
			opts := tinyOptions()
			opts.Backend = backend
			mono, err := Train(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			dopts := opts
			dopts.Decompose = true
			dopts.Classes = 1
			dec, err := Train(ds, dopts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range mono.Tuned.J.Data {
				if mono.Tuned.J.Data[i] != dec.Tuned.J.Data[i] {
					t.Fatalf("Tuned.J[%d]: mono %v != decomposed %v (bit-identity broken)",
						i, mono.Tuned.J.Data[i], dec.Tuned.J.Data[i])
				}
			}
			for i := range mono.Tuned.H {
				if mono.Tuned.H[i] != dec.Tuned.H[i] {
					t.Fatalf("Tuned.H[%d] differs", i)
				}
			}
			if len(dec.Classes) != ds.N {
				t.Fatalf("decomposed model records %d class labels, want %d", len(dec.Classes), ds.N)
			}
			for n, l := range dec.Classes {
				if l != 0 {
					t.Fatalf("K=1 class label for node %d is %d, want 0", n, l)
				}
			}
			if mono.Classes != nil {
				t.Fatal("monolithic model must not carry class labels")
			}
			_, test := ds.Split()
			if len(test) > 6 {
				test = test[:6]
			}
			a, err := mono.Evaluate(test)
			if err != nil {
				t.Fatal(err)
			}
			b, err := dec.Evaluate(test)
			if err != nil {
				t.Fatal(err)
			}
			if a.RMSE != b.RMSE || a.MAE != b.MAE {
				t.Fatalf("evaluation diverges: RMSE %v/%v, MAE %v/%v", a.RMSE, b.RMSE, a.MAE, b.MAE)
			}
		})
	}
}

// TestDecomposedTrainHeteromix trains a genuinely decomposed model (K=3)
// on the heteromix generator — three planted dynamical families — and
// checks the full pipeline: classes recorded on the model and spanning
// more than one label, evaluation finite, the v4 snapshot round-tripping
// the labels, and the invariant harness green (which on a K>1 model
// exercises the twin-pair branch of the decomposed-k1-identity check).
func TestDecomposedTrainHeteromix(t *testing.T) {
	ds := GenerateDataset("heteromix", DatasetConfig{N: 24, T: 480, History: 4, Horizon: 1, Seed: 7})
	opts := tinyOptions()
	opts.Decompose = true
	opts.Classes = 3
	model, err := Train(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Classes) != ds.N {
		t.Fatalf("model records %d class labels, want %d", len(model.Classes), ds.N)
	}
	distinct := map[int]bool{}
	for n, l := range model.Classes {
		if l < 0 || l >= opts.Classes {
			t.Fatalf("node %d class %d out of range [0,%d)", n, l, opts.Classes)
		}
		distinct[l] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("heteromix clustering collapsed to %d class(es); planted structure not found", len(distinct))
	}

	_, test := ds.Split()
	rep, err := model.Evaluate(test[:4])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.RMSE) || math.IsInf(rep.RMSE, 0) {
		t.Fatalf("decomposed evaluation RMSE = %v", rep.RMSE)
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Classes) != len(model.Classes) {
		t.Fatalf("snapshot lost class labels: %d vs %d", len(loaded.Classes), len(model.Classes))
	}
	for n := range model.Classes {
		if loaded.Classes[n] != model.Classes[n] {
			t.Fatalf("snapshot class label for node %d diverges: %d vs %d", n, loaded.Classes[n], model.Classes[n])
		}
	}
	if !loaded.Opts.Decompose || loaded.Opts.Classes != opts.Classes {
		t.Fatalf("snapshot lost decomposition options: %+v", loaded.Opts)
	}

	vrep, err := model.Verify(VerifyOptions{Windows: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !vrep.Ok() {
		for _, v := range vrep.Violations() {
			t.Logf("violation [%s]: %s", v.Invariant, v.Detail)
		}
		t.Fatal("decomposed model violates invariants")
	}
}
