package dsgl

import (
	"math"
	"strings"
	"testing"
)

func TestStreamSessionEndToEnd(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	windows := test[:6]
	seed := model.Engine().BaseSeed()

	s := model.OpenStream()
	defer s.Close()
	var coldSteps, warmSteps, settled int
	for i, w := range windows {
		tk, err := s.Next(w)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Warm != (i > 0) {
			t.Fatalf("tick %d: Warm=%v", i, tk.Warm)
		}
		if tk.Seed != seed+uint64(i) {
			t.Fatalf("tick %d seeded %d, want %d", i, tk.Seed, seed+uint64(i))
		}
		if len(tk.Values) != len(ds.UnknownIndices()) {
			t.Fatalf("tick %d predicted %d values", i, len(tk.Values))
		}
		for k, v := range tk.Values {
			if math.IsNaN(v) {
				t.Fatalf("tick %d value %d is NaN", i, k)
			}
		}
		if tk.Settled {
			settled++
			if i == 0 {
				coldSteps = tk.Steps
			} else if warmSteps == 0 || tk.Steps < warmSteps {
				warmSteps = tk.Steps
			}
		}
	}
	if got := s.Ticks(); got != uint64(len(windows)) {
		t.Fatalf("Ticks()=%d after %d windows", got, len(windows))
	}
	if settled < 2 {
		t.Fatalf("only %d/%d ticks settled; stream test needs settled ticks", settled, len(windows))
	}
	// The warm-start payoff: a warm tick settles in no more steps than the
	// cold first tick of the same stream (the datasets vary slowly window to
	// window, so the previous equilibrium is a strictly better init).
	if warmSteps > coldSteps {
		t.Fatalf("best warm tick took %d steps, cold took %d — warm start is not helping", warmSteps, coldSteps)
	}
	// Every window clamps the same node set, so the whole stream runs off
	// one plan: exactly one miss, all later ticks hits.
	if hits, misses := model.PlanCacheStats(); misses != 1 || hits < uint64(len(windows)-1) {
		t.Fatalf("plan cache %d hits / %d misses, want 1 miss across the stream", hits, misses)
	}
}

func TestStreamSessionValidationAndClose(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := model.OpenStream()
	bad := Window{Full: []float64{1, 2, 3}}
	if _, err := s.Next(bad); err == nil || !strings.Contains(err.Error(), "entries") {
		t.Fatalf("mis-sized window: got %v", err)
	}
	s.Close()
	s.Close() // idempotent
	_, test := ds.Split()
	if _, err := s.Next(test[0]); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Next after Close: got %v", err)
	}
}
