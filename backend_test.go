package dsgl

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dsgl/internal/verify"
)

func denseOptions() Options {
	o := tinyOptions()
	o.Backend = BackendDense
	return o
}

func TestTrainRejectsUnknownBackend(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	opts := tinyOptions()
	opts.Backend = "quantum"
	_, err := Train(ds, opts)
	if err == nil {
		t.Fatal("expected an error for an unknown backend")
	}
	for _, want := range []string{"quantum", BackendScalable, BackendDense} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestDenseBackendEndToEnd(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, denseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if model.Machine != nil {
		t.Fatal("dense backend must not compile a scalable machine")
	}
	if model.Dspu == nil {
		t.Fatal("dense backend did not build a DSPU")
	}
	if model.Assignment != nil {
		t.Fatal("dense backend must skip decomposition")
	}
	if model.Tuned != model.Dense {
		t.Fatal("dense backend: Tuned must alias the dense parameter set")
	}
	_, test := ds.Split()
	rep, err := model.Evaluate(test[:8])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.RMSE) || rep.RMSE <= 0 || rep.RMSE > 2 {
		t.Fatalf("dense RMSE %g out of plausible range", rep.RMSE)
	}
	if rep.Mode != "dense" {
		t.Fatalf("mode %q, want dense", rep.Mode)
	}
	if rep.MeanLatencyUs <= 0 {
		t.Fatalf("latency %g not positive", rep.MeanLatencyUs)
	}
	p, err := model.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != "dense" || len(p.Values) != len(ds.UnknownIndices()) {
		t.Fatalf("prediction mode %q with %d values", p.Mode, len(p.Values))
	}
}

// TestDenseBackendSeqParIdentity pins the engine contract on the dense
// backend: EvaluateParallel is bit-identical to Evaluate for any worker
// count, exactly as on the scalable backend.
func TestDenseBackendSeqParIdentity(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, denseOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	seq, err := model.Evaluate(test[:10])
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		par, err := model.EvaluateParallel(test[:10], workers)
		if err != nil {
			t.Fatal(err)
		}
		if seq.RMSE != par.RMSE || seq.MAE != par.MAE || seq.MeanLatencyUs != par.MeanLatencyUs {
			t.Fatalf("workers=%d: parallel report diverges: %+v vs %+v", workers, par, seq)
		}
	}
}

// TestDenseBackendVerify runs the invariant harness against a dense model:
// the two scalable-only checks (snapshot round-trip, lossless compilation)
// skip with an explanation, the other four run and hold.
func TestDenseBackendVerify(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, denseOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Verify(VerifyOptions{Windows: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, v := range rep.Violations() {
			t.Logf("violation [%s]: %s", v.Invariant, v.Detail)
		}
		t.Fatal("dense model violates invariants")
	}
	skipped := map[string]bool{}
	ran := 0
	for _, c := range rep.Checks {
		if c.Skipped {
			skipped[c.Invariant] = true
		} else {
			ran++
		}
	}
	if !skipped[verify.InvSnapshotRoundTrip] || !skipped[verify.InvLosslessCompile] {
		t.Fatalf("scalable-only checks not skipped on dense backend: %v", skipped)
	}
	if ran < 3 {
		t.Fatalf("only %d checks ran on the dense backend", ran)
	}
}

func TestDenseBackendSaveRejected(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, denseOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err == nil || !strings.Contains(err.Error(), BackendScalable) {
		t.Fatalf("Save on a dense model: got %v, want scalable-only error", err)
	}
}
