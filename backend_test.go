package dsgl

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dsgl/internal/verify"
)

func denseOptions() Options {
	o := tinyOptions()
	o.Backend = BackendDense
	return o
}

func TestTrainRejectsUnknownBackend(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	opts := tinyOptions()
	opts.Backend = "quantum"
	_, err := Train(ds, opts)
	if err == nil {
		t.Fatal("expected an error for an unknown backend")
	}
	for _, want := range []string{"quantum", BackendScalable, BackendDense} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestDenseBackendEndToEnd(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, denseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if model.Machine != nil {
		t.Fatal("dense backend must not compile a scalable machine")
	}
	if model.Dspu == nil {
		t.Fatal("dense backend did not build a DSPU")
	}
	if model.Assignment != nil {
		t.Fatal("dense backend must skip decomposition")
	}
	if model.Tuned != model.Dense {
		t.Fatal("dense backend: Tuned must alias the dense parameter set")
	}
	_, test := ds.Split()
	rep, err := model.Evaluate(test[:8])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.RMSE) || rep.RMSE <= 0 || rep.RMSE > 2 {
		t.Fatalf("dense RMSE %g out of plausible range", rep.RMSE)
	}
	if rep.Mode != "dense" {
		t.Fatalf("mode %q, want dense", rep.Mode)
	}
	if rep.MeanLatencyUs <= 0 {
		t.Fatalf("latency %g not positive", rep.MeanLatencyUs)
	}
	p, err := model.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != "dense" || len(p.Values) != len(ds.UnknownIndices()) {
		t.Fatalf("prediction mode %q with %d values", p.Mode, len(p.Values))
	}
}

// TestDenseBackendSeqParIdentity pins the engine contract on the dense
// backend: EvaluateParallel is bit-identical to Evaluate for any worker
// count, exactly as on the scalable backend.
func TestDenseBackendSeqParIdentity(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, denseOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	seq, err := model.Evaluate(test[:10])
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		par, err := model.EvaluateParallel(test[:10], workers)
		if err != nil {
			t.Fatal(err)
		}
		if seq.RMSE != par.RMSE || seq.MAE != par.MAE || seq.MeanLatencyUs != par.MeanLatencyUs {
			t.Fatalf("workers=%d: parallel report diverges: %+v vs %+v", workers, par, seq)
		}
	}
}

// TestDenseBackendVerify runs the invariant harness against a dense model.
// Since the v3 snapshot format the formerly scalable-only checks — snapshot
// round-trip and lossless compilation — run on the dense backend too:
// invariants 1-6 and 8 must execute (not skip) and hold. Only the sharded
// fixed-point check skips: a dense model has no community structure to
// shard.
func TestDenseBackendVerify(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, denseOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Verify(VerifyOptions{Windows: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, v := range rep.Violations() {
			t.Logf("violation [%s]: %s", v.Invariant, v.Detail)
		}
		t.Fatal("dense model violates invariants")
	}
	ran := map[string]bool{}
	for _, c := range rep.Checks {
		if !c.Skipped {
			ran[c.Invariant] = true
		}
	}
	for _, inv := range []string{
		verify.InvEnergyDescent, verify.InvSettleResidual,
		verify.InvSnapshotRoundTrip, verify.InvSeqParIdentity,
		verify.InvLosslessCompile, verify.InvPlanNaiveIdentity,
		verify.InvWarmStartFixedPoint, verify.InvDecomposedK1Identity,
	} {
		if !ran[inv] {
			t.Errorf("check %s did not run on the dense backend", inv)
		}
	}
	if ran[verify.InvShardedFixedPoint] {
		t.Error("sharded fixed-point check should skip on the dense backend")
	}
}

// TestDenseBackendSaveRoundTrip is the dense-persistence regression: Save
// used to reject dense models outright ("Save supports the scalable backend
// only"); the v3 snapshot format persists them, and the loaded model must
// be observationally bit-identical — same effective coupling matrix and
// bit-identical probe inference and evaluation reports.
func TestDenseBackendSaveRoundTrip(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, denseOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatalf("Save on a dense model: %v", err)
	}
	loaded, err := Load(&buf, ds)
	if err != nil {
		t.Fatalf("Load of a dense snapshot: %v", err)
	}
	if loaded.Dspu == nil || loaded.Machine != nil {
		t.Fatal("dense snapshot did not load as a dense model")
	}
	if loaded.Opts.Backend != BackendDense {
		t.Fatalf("loaded backend %q, want %q", loaded.Opts.Backend, BackendDense)
	}
	if vs := verify.DenseEqual("round-trip", "EffectiveJ",
		model.Dspu.EffectiveJ(), loaded.Dspu.EffectiveJ()); len(vs) > 0 {
		t.Fatalf("effective J diverges across Save/Load: %v", vs[0].Detail)
	}
	_, test := ds.Split()
	want, err := model.Evaluate(test[:6])
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Evaluate(test[:6])
	if err != nil {
		t.Fatal(err)
	}
	if want.RMSE != got.RMSE || want.MAE != got.MAE || want.MeanLatencyUs != got.MeanLatencyUs {
		t.Fatalf("loaded dense model diverges: %+v vs %+v", got, want)
	}
}
