package dsgl

import (
	"fmt"
	"strings"

	"dsgl/internal/engine"
	"dsgl/internal/ising"
	"dsgl/internal/opt"
)

// Combinatorial-optimization entry points: Gset-style MaxCut instances
// lowered onto the Ising solver backends and annealed through the engine's
// seeded multi-restart fan-out. This is the workload family that opened
// with the OptBackend contract — same determinism discipline as the
// regression path (restart i runs with seed base+i; parallel solving is
// bit-identical to sequential for any worker count).

// Re-exported optimization types.
type (
	// OptInstance is a Gset-style MaxCut instance.
	OptInstance = opt.Instance
	// OptRun is the outcome of a multi-restart solve.
	OptRun = engine.OptRun
	// OptResult is one restart's best state and energy.
	OptResult = engine.OptResult
	// OptSchedule is an annealing schedule (linear/geometric/adaptive).
	OptSchedule = engine.Schedule
)

// Solver dynamics selectable in OptOptions.Dynamics.
const (
	DynamicsBRIM       = string(ising.BRIMDynamics)
	DynamicsMetropolis = string(ising.MetropolisDynamics)
	DynamicsOIM        = string(ising.OIMDynamics)
)

// OptDynamics lists the selectable solver dynamics in stable order.
func OptDynamics() []string {
	dyns := ising.SolverDynamics()
	out := make([]string, len(dyns))
	for i, d := range dyns {
		out[i] = string(d)
	}
	return out
}

// OptScheduleKinds lists the annealing-schedule kinds in stable order.
func OptScheduleKinds() []string {
	return []string{engine.ScheduleLinear, engine.ScheduleGeometric, engine.ScheduleAdaptive}
}

// OptOptions configures a solve. The zero value selects Metropolis dynamics
// under a geometric schedule with defaults sized for Gset-scale instances.
type OptOptions struct {
	// Dynamics selects the solver: "brim", "metropolis" (default), "oim".
	Dynamics string
	// Schedule kind: "linear", "geometric" (default), "adaptive".
	Schedule string
	// Steps per restart (sweeps / checkpoints; default 200).
	Steps int
	// T0 and T1 are the control-ladder endpoints (defaults 2, 0.05).
	T0, T1 float64
	// Period and Reheat shape the adaptive schedule (defaults 4, 0.5).
	Period int
	Reheat float64
	// Restarts fans out this many seeded anneals (default 4); restart i
	// runs with seed Seed+i.
	Restarts int
	// Workers bounds the restart fan-out concurrency (0 = GOMAXPROCS).
	Workers int
	// Seed is the base seed (default 1).
	Seed uint64
}

func (o *OptOptions) fillDefaults() {
	if o.Dynamics == "" {
		o.Dynamics = DynamicsMetropolis
	}
	if o.Schedule == "" {
		o.Schedule = engine.ScheduleGeometric
	}
	if o.Steps == 0 {
		o.Steps = 200
	}
	if o.T0 == 0 {
		o.T0 = 2
	}
	if o.T1 == 0 {
		o.T1 = 0.05
	}
	if o.Period == 0 {
		o.Period = 4
	}
	if o.Reheat == 0 {
		o.Reheat = 0.5
	}
	if o.Restarts == 0 {
		o.Restarts = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// schedule assembles the engine schedule from the filled options.
func (o *OptOptions) schedule() (engine.Schedule, error) {
	switch o.Schedule {
	case engine.ScheduleLinear:
		return engine.LinearSchedule(o.Steps, o.T0, o.T1), nil
	case engine.ScheduleGeometric:
		return engine.GeometricSchedule(o.Steps, o.T0, o.T1), nil
	case engine.ScheduleAdaptive:
		return engine.AdaptiveSchedule(o.Steps, o.T0, o.T1, o.Period, o.Reheat), nil
	default:
		return engine.Schedule{}, fmt.Errorf("dsgl: unknown schedule %q (want %s)",
			o.Schedule, strings.Join(OptScheduleKinds(), "|"))
	}
}

// OptReport is the outcome of SolveMaxCut: the engine run plus the
// cut-space view of it.
type OptReport struct {
	Run *OptRun
	// Cut is the best cut value found ((TotalWeight - BestEnergy) / 2).
	Cut float64
	// Instance metadata.
	Instance string
	Nodes    int
	Edges    int
	Dynamics string
	Backend  string
}

// SolveMaxCut lowers the instance to an Ising model, anneals it under the
// configured dynamics with the engine's multi-restart fan-out, and reports
// the best cut. Deterministic in (instance, options) for any Workers value.
func SolveMaxCut(g *OptInstance, o OptOptions) (*OptReport, error) {
	o.fillDefaults()
	sched, err := o.schedule()
	if err != nil {
		return nil, err
	}
	m, err := g.ToIsing()
	if err != nil {
		return nil, err
	}
	solver, err := ising.NewSolver(m, ising.Dynamics(o.Dynamics), o.Seed)
	if err != nil {
		return nil, err
	}
	run, err := engine.NewOpt(solver).SolveFrom(sched, o.Seed, o.Restarts, o.Workers)
	if err != nil {
		return nil, err
	}
	return &OptReport{
		Run:      run,
		Cut:      g.CutFromEnergy(run.Best.Energy),
		Instance: g.Name,
		Nodes:    g.N,
		Edges:    g.Edges,
		Dynamics: o.Dynamics,
		Backend:  solver.Name(),
	}, nil
}

// GsetInstance generates a seeded Gset-style random MaxCut instance.
func GsetInstance(nodes, degree int, weighted bool, seed uint64) (*OptInstance, error) {
	return opt.RandomGraph(nodes, degree, weighted, seed)
}

// TorusInstance generates the rows×cols toroidal-lattice MaxCut instance.
func TorusInstance(rows, cols int) (*OptInstance, error) {
	return opt.Torus(rows, cols)
}

// LoadGsetInstance reads a Gset-format instance file.
func LoadGsetInstance(path string) (*OptInstance, error) {
	return opt.LoadGset(path)
}
