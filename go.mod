module dsgl

go 1.22
