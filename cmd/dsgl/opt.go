package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dsgl"
)

// optCmd is the combinatorial-optimization entry point: generate or load a
// Gset-style MaxCut instance, lower it to Ising, and anneal it through the
// engine's seeded multi-restart fan-out. It dispatches before the shared
// experiment FlagSet in realMain because its flag surface is disjoint.
//
// The output is deterministic in (instance, flags) and independent of
// -workers — the engine's fan-out contract — so CI can diff runs at
// different worker counts byte for byte.
func optCmd(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("opt", flag.ContinueOnError)
	gen := fs.String("gen", "gset", `instance generator: "gset" (seeded random graph) or "torus" (rows x cols lattice)`)
	nodes := fs.Int("nodes", 128, "graph nodes (gset) or total lattice sites rows*cols (torus; must be a perfect-rectangle rows=nodes/cols)")
	degree := fs.Int("degree", 4, "edges drawn per node (gset)")
	cols := fs.Int("cols", 0, "lattice columns (torus; 0 = square-ish)")
	weighted := fs.Bool("weighted", false, "draw edge weights from (0,1] instead of unit weights (gset)")
	file := fs.String("file", "", "load a Gset-format instance file instead of generating one")
	dynamics := fs.String("dynamics", dsgl.DynamicsMetropolis,
		fmt.Sprintf("solver dynamics: %s", strings.Join(dsgl.OptDynamics(), "|")))
	schedule := fs.String("schedule", "geometric",
		fmt.Sprintf("annealing schedule: %s", strings.Join(dsgl.OptScheduleKinds(), "|")))
	steps := fs.Int("steps", 200, "schedule steps per restart (sweeps / checkpoint blocks)")
	t0 := fs.Float64("t0", 2, "schedule start temperature")
	t1 := fs.Float64("t1", 0.05, "schedule end temperature")
	period := fs.Int("period", 4, "adaptive schedule: restarts per reheat cycle")
	reheat := fs.Float64("reheat", 0.5, "adaptive schedule: per-cycle reheat decay")
	restarts := fs.Int("restarts", 4, "seeded anneals to fan out (restart i runs with seed seed+i)")
	workers := fs.Int("workers", 0, "restart fan-out concurrency (0 = GOMAXPROCS; never changes the result)")
	seed := fs.Uint64("seed", 7, "base seed (also seeds the gset generator)")
	trace := fs.Bool("trace", false, "print per-restart energies and the best-energy-so-far trace")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g *dsgl.OptInstance
	var err error
	switch {
	case *file != "":
		g, err = dsgl.LoadGsetInstance(*file)
	case *gen == "gset":
		g, err = dsgl.GsetInstance(*nodes, *degree, *weighted, *seed)
	case *gen == "torus":
		c := *cols
		if c <= 0 {
			c = squareishCols(*nodes)
		}
		if c < 1 || *nodes%c != 0 {
			err = fmt.Errorf("torus: -nodes %d is not divisible by -cols %d", *nodes, c)
		} else {
			g, err = dsgl.TorusInstance(*nodes/c, c)
		}
	default:
		err = fmt.Errorf("unknown generator %q (want gset or torus)", *gen)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsgl opt: %v\n", err)
		return 1
	}

	rep, err := dsgl.SolveMaxCut(g, dsgl.OptOptions{
		Dynamics: *dynamics,
		Schedule: *schedule,
		Steps:    *steps,
		T0:       *t0,
		T1:       *t1,
		Period:   *period,
		Reheat:   *reheat,
		Restarts: *restarts,
		Workers:  *workers,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsgl opt: %v\n", err)
		return 1
	}

	fmt.Fprintf(out, "instance %s: %d nodes, %d edges\n", rep.Instance, rep.Nodes, rep.Edges)
	fmt.Fprintf(out, "solver %s, %s schedule (%d steps, T %g -> %g), %d restarts\n",
		rep.Backend, *schedule, *steps, *t0, *t1, rep.Run.Restarts)
	fmt.Fprintf(out, "best cut %.3f (energy %.6g, restart %d)\n",
		rep.Cut, rep.Run.Best.Energy, rep.Run.BestRestart)
	if *trace {
		for i := range rep.Run.Energies {
			fmt.Fprintf(out, "  restart %d: energy %.6g, best so far %.6g\n",
				i, rep.Run.Energies[i], rep.Run.BestTrace[i])
		}
	}
	return 0
}

// squareishCols picks the largest divisor of n that is <= sqrt(n), so a bare
// -nodes torus request becomes the squarest lattice that tiles it.
func squareishCols(n int) int {
	best := 1
	for c := 2; c*c <= n; c++ {
		if n%c == 0 {
			best = c
		}
	}
	return best
}
