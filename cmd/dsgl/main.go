// Command dsgl regenerates the tables and figures of the DS-GL paper
// (ISCA 2024) against the synthetic workloads of this reproduction.
//
// Usage:
//
//	dsgl list                 # show available experiments
//	dsgl fig4                 # circuit-level validation (Fig. 4)
//	dsgl fig10 -n 32 -eval 30 # accuracy vs density (Fig. 10)
//	dsgl table2               # RMSE vs SOTA GNNs (Table II)
//	dsgl eval -backend dense  # train + evaluate one dataset end to end
//	dsgl verify               # check the ten runtime invariants
//	dsgl opt -nodes 800       # solve a Gset-style MaxCut instance
//	dsgl all                  # run the full suite in paper order
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"dsgl"
	"dsgl/internal/experiments"
	"dsgl/internal/obs"
	"dsgl/internal/obs/obshttp"
)

// main is a thin shell around realMain: os.Exit skips deferred functions,
// so every error path returns an exit code instead of exiting directly —
// otherwise an error during a run with -obs-addr would kill the process
// without the deferred observability shutdown (and its -obs-linger window)
// ever running.
func main() { os.Exit(realMain(os.Args[1:])) }

func realMain(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	cmd := args[0]
	rest := args[1:]
	// "opt" has a disjoint flag surface (instance generators and annealing
	// controls rather than dataset/training knobs), so it dispatches before
	// the shared experiment FlagSet.
	if cmd == "opt" {
		return optCmd(rest, os.Stdout)
	}
	// "inspect" and "eval" take an optional dataset name before the flags.
	inspectName := "traffic"
	if (cmd == "inspect" || cmd == "eval") && len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		inspectName = rest[0]
		rest = rest[1:]
	}
	// "verify" takes any number of dataset names before the flags
	// (default: every built-in workload).
	var verifyNames []string
	if cmd == "verify" {
		for len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
			verifyNames = append(verifyNames, rest[0])
			rest = rest[1:]
		}
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	n := fs.Int("n", 32, "graph nodes per dataset")
	t := fs.Int("t", 0, "series length (0 = dataset default)")
	evalWindows := fs.Int("eval", 30, "test windows evaluated per configuration")
	gnnEpochs := fs.Int("gnn-epochs", 12, "training epochs for the GNN baselines")
	seed := fs.Uint64("seed", 7, "suite seed")
	workers := fs.Int("workers", 0, "worker-pool size for batch inference and parameter sweeps (0 = GOMAXPROCS)")
	backend := fs.String("backend", dsgl.BackendScalable,
		fmt.Sprintf("inference backend for eval/verify/inspect: %q (full pipeline) or %q (single-PE phase-1 model)",
			dsgl.BackendScalable, dsgl.BackendDense))
	decompose := fs.Bool("decompose", false,
		"train eval/verify/inspect models with heterogeneous decomposition (per-class interaction blocks)")
	classes := fs.Int("classes", 0,
		"interaction classes K for -decompose (0 = default 3; K=1 reproduces the monolithic fit bit-for-bit)")
	classMode := fs.String("class-mode", "",
		`class-assignment profile for -decompose: "stats" (default) or "embed"`)
	obsAddr := fs.String("obs-addr", "",
		"serve observability endpoints on this address during the run: Prometheus text on /metrics, JSON on /metricsz, pprof under /debug/pprof/ (e.g. :9137; empty = disabled)")
	obsLinger := fs.Duration("obs-linger", 0,
		"keep the -obs-addr server alive this long after the run completes, so scrapers can read the final state")
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if !validBackend(*backend) {
		fmt.Fprintf(os.Stderr, "dsgl: unknown backend %q (valid: %s)\n", *backend, strings.Join(dsgl.Backends(), ", "))
		return 2
	}
	if *obsAddr != "" {
		dsgl.EnableMetrics()
		bound, shutdown, err := obshttp.Serve(*obsAddr, obs.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsgl: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "observability: http://%s (/metrics, /metricsz, /debug/pprof/)\n", bound)
		defer func() {
			if *obsLinger > 0 {
				fmt.Fprintf(os.Stderr, "observability: lingering %v before shutdown\n", *obsLinger)
				time.Sleep(*obsLinger)
			}
			shutdown()
		}()
	}
	cfg := experiments.Config{
		N:           *n,
		T:           *t,
		EvalWindows: *evalWindows,
		GNNEpochs:   *gnnEpochs,
		Seed:        *seed,
		Parallelism: *workers,
		Workers:     *workers,
	}
	trainOpts := dsgl.Options{
		Backend:   *backend,
		Seed:      *seed,
		Workers:   *workers,
		Decompose: *decompose,
		Classes:   *classes,
		ClassMode: *classMode,
	}

	registry := experiments.Registry()
	switch cmd {
	case "inspect":
		if err := inspect(inspectName, cfg, trainOpts); err != nil {
			fmt.Fprintf(os.Stderr, "dsgl inspect: %v\n", err)
			return 1
		}
	case "eval":
		if err := eval(inspectName, cfg, trainOpts); err != nil {
			fmt.Fprintf(os.Stderr, "dsgl eval: %v\n", err)
			return 1
		}
	case "verify":
		if err := verify(verifyNames, cfg, trainOpts); err != nil {
			fmt.Fprintf(os.Stderr, "dsgl verify: %v\n", err)
			return 1
		}
	case "list":
		ids := experiments.IDs()
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
	case "all":
		for _, id := range experiments.IDs() {
			if err := runExperiment(registry, id, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "dsgl %s: %v\n", id, err)
				return 1
			}
		}
	default:
		if _, ok := registry[cmd]; !ok {
			fmt.Fprintf(os.Stderr, "dsgl: unknown experiment %q\n\n", cmd)
			usage()
			return 2
		}
		if err := runExperiment(registry, cmd, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dsgl %s: %v\n", cmd, err)
			return 1
		}
	}
	return 0
}

func runExperiment(registry map[string]experiments.Runner, id string, cfg experiments.Config) error {
	start := time.Now()
	if err := registry[id](cfg, os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\n[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}

// validBackend reports whether name is a recognized Options.Backend value.
func validBackend(name string) bool {
	for _, b := range dsgl.Backends() {
		if name == b {
			return true
		}
	}
	return false
}

// inspect trains the standard pipeline on one dataset and dumps the
// compiled hardware mapping (PE occupancy, slices, inter-PE traffic).
func inspect(name string, cfg experiments.Config, opts dsgl.Options) error {
	if opts.Backend == dsgl.BackendDense {
		return fmt.Errorf("the %q backend has no compiled PE mapping to inspect; use -backend %s",
			dsgl.BackendDense, dsgl.BackendScalable)
	}
	ds, err := dsgl.NewDataset(name, dsgl.DatasetConfig{N: cfg.N, T: cfg.T, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	model, err := dsgl.Train(ds, opts)
	if err != nil {
		return err
	}
	model.Machine.Describe(os.Stdout)
	return nil
}

// eval trains one dataset end to end on the selected backend and reports
// aggregate accuracy and latency over the test split — the quickest way to
// compare the dense Sec. III model against the full scalable pipeline.
func eval(name string, cfg experiments.Config, opts dsgl.Options) error {
	ds, err := dsgl.NewDataset(name, dsgl.DatasetConfig{N: cfg.N, T: cfg.T, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	model, err := dsgl.Train(ds, opts)
	if err != nil {
		return err
	}
	_, test := ds.Split()
	if cfg.EvalWindows > 0 && len(test) > cfg.EvalWindows {
		test = test[:cfg.EvalWindows]
	}
	rep, err := model.EvaluateParallel(test, cfg.Workers)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s backend): RMSE %.4g  MAE %.4g  MAPE %s  %.3g µs/inference  (%d windows, mode %s)\n",
		name, opts.Backend, rep.RMSE, rep.MAE, formatMAPE(rep), rep.MeanLatencyUs, rep.Windows, rep.Mode)
	return nil
}

// formatMAPE renders a report's MAPE: "n/a" when every pair was skipped
// (MAPE is NaN — there is no measurement, and printing 0.00% would claim
// a perfect score), with the skipped-pair coverage noted when partial.
func formatMAPE(rep *dsgl.Report) string {
	if math.IsNaN(rep.MAPE) {
		return fmt.Sprintf("n/a (%d pairs below eps)", rep.MAPESkipped)
	}
	if rep.MAPESkipped > 0 {
		return fmt.Sprintf("%.2f%% (%d pairs skipped)", 100*rep.MAPE, rep.MAPESkipped)
	}
	return fmt.Sprintf("%.2f%%", 100*rep.MAPE)
}

// verify trains the standard pipeline on each named workload (default:
// every built-in dataset) and runs the invariant-verification harness
// against the trained model: monotone energy descent, equilibrium
// residual at settle, Save/Load round-trip equivalence, sequential vs
// parallel bit-identity, and lossless compilation. Any violation makes
// the command exit nonzero.
func verify(names []string, cfg experiments.Config, opts dsgl.Options) error {
	if len(names) == 0 {
		names = append(dsgl.DatasetNames(), dsgl.MultiDatasetNames()...)
	}
	failed := 0
	for _, name := range names {
		ds, err := dsgl.NewDataset(name, dsgl.DatasetConfig{N: cfg.N, T: cfg.T, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		model, err := dsgl.Train(ds, opts)
		if err != nil {
			return fmt.Errorf("%s: train: %w", name, err)
		}
		rep, err := model.Verify(dsgl.VerifyOptions{Windows: cfg.EvalWindows, Workers: cfg.Workers})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%s:\n", name)
		rep.Fprint(os.Stdout)
		if !rep.Ok() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d datasets violated invariants", failed, len(names))
	}
	fmt.Printf("\nall invariants hold on %d dataset(s)\n", len(names))
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `dsgl — regenerate the DS-GL (ISCA 2024) evaluation

usage: dsgl <experiment> [flags]

experiments:
  fig4     circuit-level validation: DSPU real values vs BRIM polarization
  fig10    RMSE vs coupling-matrix density per interconnect pattern
  fig11    best RMSE vs inference-latency budget
  fig12    RMSE vs inter-mapping synchronization interval
  fig13    RMSE vs density under analog noise
  table1   hardware cost comparison (BRIM / DSPU / DS-GL)
  table2   RMSE comparison with the GNN baselines
  table3   latency & energy vs accelerators and GPU
  table4   multi-dimensional datasets (housing, climate)
  all      everything above, in paper order
  inspect  train one dataset and dump the compiled PE/CU mapping
  eval     train one dataset and report test-split RMSE/MAE/latency
           (honors -backend: compare dense vs scalable end to end)
  verify   train on the named (default: all) datasets and check the
           ten runtime invariants; nonzero exit on any violation
  opt      solve a Gset-style MaxCut instance on the Ising backends
           (own flags: see 'dsgl opt -h'; -dynamics brim|metropolis|oim)
  list     print experiment ids

flags: -n, -t, -eval, -gnn-epochs, -seed, -workers, -backend,
       -decompose, -classes, -class-mode, -obs-addr, -obs-linger
       (see 'dsgl <exp> -h'; -backend accepts "scalable" or "dense";
       -decompose trains eval/verify/inspect models with per-class
       interaction blocks, K set by -classes;
       -obs-addr serves /metrics, /metricsz, and pprof during the run)`)
}
