// Command benchfmt turns the `go test -json` event stream of a benchmark
// run back into the human-readable benchmark table. `make bench` pipes the
// stream through it while tee-ing the raw JSON to BENCH_infer.json, so one
// run yields both the machine-readable artifact and the console table.
//
//	go test -run '^$' -bench . -json . | tee BENCH.json | go run ./cmd/benchfmt
//
// Beyond reformatting, benchfmt computes two scaling summaries. The
// batch-scaling summary reports every BenchmarkInferBatch regime's
// workers=4 vs workers=1 speedup; with -guard it becomes an anti-scaling
// tripwire — the run (or a replayed BENCH_infer.json) fails when any
// regime's speedup drops below the threshold, which is how CI catches a
// worker pool that parallelizes into a slowdown. The threshold sits just
// under parity because a single-core box (GOMAXPROCS=1, as the committed
// artifacts are generated on) can at best break even, minus scheduling
// noise; a true scaling collapse (the 0.7x regression this guard was built
// against) lands far below it on any machine.
//
// The stream summary compares BenchmarkInferStream/cold against /warm:
// with -guard a warm streaming tick must beat the cold planned path by at
// least streamGuardThreshold, so a regression that silently disables the
// warm-start (or the delta-compile) path fails the build instead of
// quietly serving cold-anneal latencies. Each guard only engages when its
// benchmark's rows are present — the CI batch smoke pipes only InferBatch
// rows through -guard and must not trip the stream check vacuously — but a
// guarded run with a *partial* stream pair (cold without warm, or vice
// versa) fails loudly as a misconfigured run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// guardThreshold is the minimum acceptable workers=4 / workers=1 speedup.
// See the package comment for why it sits just below parity rather than at
// the >1.3x a multi-core box should deliver.
const guardThreshold = 0.93

// streamGuardThreshold is the minimum BenchmarkInferStream cold/warm ns/op
// ratio: a warm streaming tick must be at least this much faster than a
// cold planned inference of the same observation set. The measured win is
// severalfold (the warm anneal skips the multi-cycle cold transient), so
// 1.5x is a regression tripwire with headroom for machine variance, not a
// performance target.
const streamGuardThreshold = 1.5

// event is the subset of test2json's event schema we care about.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func main() {
	guard := flag.Bool("guard", false,
		"fail (exit 1) when any InferBatch regime's workers=4 vs workers=1 speedup falls below the anti-scaling threshold")
	serveMode := flag.Bool("serve", false,
		"render a serving-layer load report (the JSON array dsgld -loadtest emits, committed as BENCH_serve.json) instead of a go test event stream; fails when any QPS point completed zero requests")
	flag.Parse()

	if *serveMode {
		os.Exit(renderServe(os.Stdin, os.Stdout))
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	// test2json splits one console line across several "output" events (the
	// benchmark name is emitted before the timing completes), so first
	// reassemble the raw stream, then filter whole lines.
	var raw strings.Builder
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Not a JSON event (plain `go test` output): pass through.
			raw.Write(line)
			raw.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			raw.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
	var customs []customMetric
	batch := newBatchScaling()
	stream := newStreamScaling()
	opt := newOptSolve()
	for _, out := range strings.SplitAfter(raw.String(), "\n") {
		// Keep benchmark result lines, headers, and the final verdict;
		// drop run announcements and per-test chatter.
		keep := strings.Contains(out, "ns/op") ||
			strings.HasPrefix(out, "goos:") ||
			strings.HasPrefix(out, "goarch:") ||
			strings.HasPrefix(out, "pkg:") ||
			strings.HasPrefix(out, "cpu:") ||
			strings.HasPrefix(out, "PASS") ||
			strings.HasPrefix(out, "FAIL") ||
			strings.HasPrefix(out, "ok ")
		if keep {
			fmt.Print(out)
		}
		// Record every custom b.ReportMetric value (plan-hit-rate,
		// steps/tick, plan-delta-hit-rate, ...) so per-benchmark gauges are
		// visible at a glance below the table.
		customs = append(customs, parseCustomMetrics(out)...)
		batch.add(out)
		stream.add(out)
		opt.add(out)
	}
	for _, cm := range customs {
		fmt.Printf("metric: %-44s %-20s %.4g\n", cm.bench, cm.unit, cm.value)
	}
	// The batch guard is required only when the stream carried no
	// optimization rows: replaying BENCH_opt.json (OptSolve rows only)
	// through -guard must not demand InferBatch pairs it never ran.
	ok := batch.report(os.Stdout, *guard, opt.count() == 0)
	if !stream.report(os.Stdout, *guard) {
		ok = false
	}
	if !opt.report(os.Stdout, *guard) {
		ok = false
	}
	if *guard && !ok {
		os.Exit(1)
	}
}

// serveReport mirrors serve.LoadReport's JSON (decoded structurally here so
// the formatter keeps working against committed BENCH_serve.json artifacts
// even as unrelated fields are added).
type serveReport struct {
	Model     string  `json:"model"`
	Sent      int     `json:"sent"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	QPS       float64 `json:"offered_qps"`
	Achieved  float64 `json:"achieved_qps"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	MeanBatch float64 `json:"mean_batch"`
}

// renderServe turns the dsgld -loadtest JSON report array into the console
// table, returning the process exit code: nonzero when the stream is
// malformed, empty, recorded request errors, or any QPS point completed no
// requests at all (a silently dead serving path should fail the bench, not
// produce an empty table).
func renderServe(in *os.File, out *os.File) int {
	var reports []serveReport
	if err := json.NewDecoder(bufio.NewReader(in)).Decode(&reports); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt -serve:", err)
		return 1
	}
	if len(reports) == 0 {
		fmt.Fprintln(os.Stderr, "benchfmt -serve: no load reports in stream")
		return 1
	}
	fmt.Fprintf(out, "%-10s %9s %9s %6s %5s %8s %8s %8s %8s %7s\n",
		"model", "offered", "achieved", "ok", "shed", "p50 ms", "p90 ms", "p99 ms", "max ms", "batch")
	code := 0
	for _, r := range reports {
		fmt.Fprintf(out, "%-10s %9.4g %9.4g %6d %5d %8.2f %8.2f %8.2f %8.2f %7.2f\n",
			r.Model, r.QPS, r.Achieved, r.OK, r.Shed, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs, r.MeanBatch)
		if r.OK == 0 {
			fmt.Fprintf(out, "serve bench: %s @ %g qps completed zero requests\n", r.Model, r.QPS)
			code = 1
		}
		if r.Errors > 0 {
			fmt.Fprintf(out, "serve bench: %s @ %g qps recorded %d request errors\n", r.Model, r.QPS, r.Errors)
			code = 1
		}
	}
	return code
}

// customMetric is one b.ReportMetric value extracted from a benchmark
// result row: the benchmark name, the metric's unit string, and its value.
type customMetric struct {
	bench string
	unit  string
	value float64
}

// standardUnits are the value/unit pairs go test emits on its own; anything
// else on a result row came from an explicit b.ReportMetric call.
var standardUnits = map[string]bool{
	"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true,
}

// parseCustomMetrics extracts every custom b.ReportMetric pair from a
// benchmark result line. A result row is "BenchmarkName iterations
// (value unit)..."; each pair whose unit is not one of go test's standard
// columns is a custom metric. Earlier this extractor knew only the literal
// "plan-hit-rate" key and silently dropped every other reported metric.
func parseCustomMetrics(line string) []customMetric {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") ||
		strings.Contains(fields[0], "#") { // duplicate configuration re-run
		return nil
	}
	var out []customMetric
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil // not a result row after all
		}
		if !standardUnits[fields[i+1]] {
			out = append(out, customMetric{fields[0], fields[i+1], v})
		}
	}
	return out
}

// batchScaling accumulates BenchmarkInferBatch timings keyed by
// (regime, -cpu suffix) and worker count, keeping the first occurrence of
// each name (repeat rows like workers=1#01 — GOMAXPROCS colliding with the
// explicit workers=1 case — re-measure the identical configuration).
type batchScaling struct {
	ns    map[string]map[int]float64 // group key -> workers -> ns/op
	order []string                   // group keys in first-seen order
}

func newBatchScaling() *batchScaling {
	return &batchScaling{ns: make(map[string]map[int]float64)}
}

// add parses one reassembled console line and records it if it is an
// InferBatch result row.
func (b *batchScaling) add(line string) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkInferBatch/") {
		return
	}
	ns := -1.0
	for i, f := range fields {
		if f == "ns/op" && i > 0 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return
			}
			ns = v
			break
		}
	}
	if ns < 0 {
		return
	}
	name := fields[0]
	if strings.Contains(name, "#") {
		return // duplicate of an earlier configuration
	}
	name, cpu := splitCPUSuffix(name)
	parts := strings.Split(name, "/") // BenchmarkInferBatch / regime / workers=N
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "workers=") {
		return
	}
	workers, err := strconv.Atoi(strings.TrimPrefix(parts[2], "workers="))
	if err != nil {
		return
	}
	key := parts[1] + cpu
	g, ok := b.ns[key]
	if !ok {
		g = make(map[int]float64)
		b.ns[key] = g
		b.order = append(b.order, key)
	}
	if _, seen := g[workers]; !seen {
		g[workers] = ns
	}
}

// report prints the per-regime workers=4 vs workers=1 speedups and returns
// whether every regime clears the anti-scaling threshold. guarding only
// changes the messaging: measurement and verdict are identical either way.
// A guarded run with no InferBatch rows at all fails loudly rather than
// vacuously passing — unless required is false (the stream carried other
// recognized rows, e.g. a BENCH_opt.json replay), in which case the absent
// guard is reported as skipped and passes.
func (b *batchScaling) report(w io.Writer, guarding, required bool) bool {
	compared := 0
	ok := true
	for _, key := range b.order {
		g := b.ns[key]
		base, hasBase := g[1]
		par, hasPar := g[4]
		if !hasBase || !hasPar || par == 0 {
			continue
		}
		compared++
		speedup := base / par
		verdict := ""
		if speedup < guardThreshold {
			ok = false
			verdict = fmt.Sprintf("  ANTI-SCALING (threshold %.2fx)", guardThreshold)
		}
		fmt.Fprintf(w, "batch scaling: %-28s workers=4 vs 1: %.2fx%s\n", key, speedup, verdict)
	}
	if guarding && compared == 0 {
		if !required {
			fmt.Fprintln(w, "batch scaling: no BenchmarkInferBatch rows; optimization rows present, batch guard skipped")
			return true
		}
		fmt.Fprintln(w, "batch scaling: no BenchmarkInferBatch workers=1/workers=4 pairs found; nothing to guard")
		return false
	}
	return ok
}

// splitCPUSuffix splits off the -GOMAXPROCS suffix go test appends when
// GOMAXPROCS > 1 (or under -cpu): it distinguishes the groups of a
// -cpu=1,4 sweep.
func splitCPUSuffix(name string) (base, cpu string) {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// streamScaling accumulates BenchmarkInferStream timings keyed by -cpu
// suffix: cold is the stateless planned inference of each tick, warm the
// streaming session tick, and the guarded quantity is their ns/op ratio.
type streamScaling struct {
	ns    map[string]map[string]float64 // cpu suffix -> cold|warm -> ns/op
	order []string                      // cpu suffixes in first-seen order
}

func newStreamScaling() *streamScaling {
	return &streamScaling{ns: make(map[string]map[string]float64)}
}

// add parses one reassembled console line and records it if it is an
// InferStream result row.
func (s *streamScaling) add(line string) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkInferStream/") {
		return
	}
	ns := -1.0
	for i, f := range fields {
		if f == "ns/op" && i > 0 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return
			}
			ns = v
			break
		}
	}
	if ns < 0 {
		return
	}
	name := fields[0]
	if strings.Contains(name, "#") {
		return // duplicate of an earlier configuration
	}
	name, cpu := splitCPUSuffix(name)
	mode := strings.TrimPrefix(name, "BenchmarkInferStream/")
	if mode != "cold" && mode != "warm" {
		return
	}
	g, ok := s.ns[cpu]
	if !ok {
		g = make(map[string]float64)
		s.ns[cpu] = g
		s.order = append(s.order, cpu)
	}
	if _, seen := g[mode]; !seen {
		g[mode] = ns
	}
}

// optSolve accumulates BenchmarkOptSolve rows keyed by (dynamics, -cpu
// suffix) and renders the solution-quality metrics the benchmark reports —
// best-energy, the cut it maps to, and restarts-to-best — as one summary
// line per dynamics, so the quality columns of a BENCH_opt.json replay are
// readable next to the wall costs.
type optSolve struct {
	rows  map[string]map[string]float64 // dynamics+cpu -> unit -> value
	order []string                      // keys in first-seen order
}

func newOptSolve() *optSolve {
	return &optSolve{rows: make(map[string]map[string]float64)}
}

// add parses one reassembled console line and records it if it is an
// OptSolve result row.
func (o *optSolve) add(line string) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkOptSolve/") ||
		strings.Contains(fields[0], "#") {
		return
	}
	name, cpu := splitCPUSuffix(fields[0])
	key := strings.TrimPrefix(name, "BenchmarkOptSolve/") + cpu
	g, ok := o.rows[key]
	if !ok {
		g = make(map[string]float64)
	}
	parsed := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return // not a result row after all
		}
		if _, seen := g[fields[i+1]]; !seen {
			g[fields[i+1]] = v
		}
		parsed = true
	}
	if !parsed {
		return
	}
	if !ok {
		o.rows[key] = g
		o.order = append(o.order, key)
	}
}

// count reports how many OptSolve configurations were recognized.
func (o *optSolve) count() int { return len(o.order) }

// report prints one quality line per dynamics and returns whether the rows
// are well-formed. An event stream with no OptSolve rows passes vacuously
// (the infer bench run never produces them); a guarded run whose OptSolve
// row is missing the reported quality metrics fails loudly — that is a
// benchmark that stopped calling ReportMetric, not an empty run.
func (o *optSolve) report(w io.Writer, guarding bool) bool {
	ok := true
	for _, key := range o.order {
		g := o.rows[key]
		best, hasBest := g["best-energy"]
		restarts, hasRestarts := g["restarts-to-best"]
		if !hasBest || !hasRestarts {
			if guarding {
				fmt.Fprintf(w, "opt solve: %s missing best-energy/restarts-to-best metrics; cannot summarize\n", key)
				ok = false
			}
			continue
		}
		line := fmt.Sprintf("opt solve: %-24s best energy %.6g", key, best)
		if cut, hasCut := g["cut"]; hasCut {
			line += fmt.Sprintf("  cut %.6g", cut)
		}
		fmt.Fprintf(w, "%s  restarts-to-best %g\n", line, restarts)
	}
	return ok
}

// report prints the warm-tick speedup per -cpu group and returns whether
// every group clears the stream guard threshold. An event stream with no
// InferStream rows at all passes vacuously — the CI batch-scaling smoke
// pipes only InferBatch rows through -guard — but a guarded run that
// measured one side of the pair without the other fails loudly: that is a
// misconfigured -bench regex, not an empty run.
func (s *streamScaling) report(w io.Writer, guarding bool) bool {
	ok := true
	for _, cpu := range s.order {
		g := s.ns[cpu]
		cold, hasCold := g["cold"]
		warm, hasWarm := g["warm"]
		if !hasCold || !hasWarm {
			if guarding {
				fmt.Fprintf(w, "stream speedup: BenchmarkInferStream%s measured only one of cold/warm; cannot guard\n", cpu)
				ok = false
			}
			continue
		}
		if warm == 0 {
			continue
		}
		speedup := cold / warm
		verdict := ""
		if speedup < streamGuardThreshold {
			ok = false
			verdict = fmt.Sprintf("  TOO SLOW (threshold %.2fx)", streamGuardThreshold)
		}
		fmt.Fprintf(w, "stream speedup: warm tick vs cold planned%s: %.2fx%s\n", cpu, speedup, verdict)
	}
	return ok
}
