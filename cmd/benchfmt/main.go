// Command benchfmt turns the `go test -json` event stream of a benchmark
// run back into the human-readable benchmark table. `make bench` pipes the
// stream through it while tee-ing the raw JSON to BENCH_infer.json, so one
// run yields both the machine-readable artifact and the console table.
//
//	go test -run '^$' -bench . -json . | tee BENCH.json | go run ./cmd/benchfmt
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// event is the subset of test2json's event schema we care about.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	// test2json splits one console line across several "output" events (the
	// benchmark name is emitted before the timing completes), so first
	// reassemble the raw stream, then filter whole lines.
	var raw strings.Builder
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Not a JSON event (plain `go test` output): pass through.
			raw.Write(line)
			raw.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			raw.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt:", err)
		os.Exit(1)
	}
	type hitRate struct {
		bench string
		rate  float64
	}
	var hitRates []hitRate
	for _, out := range strings.SplitAfter(raw.String(), "\n") {
		// Keep benchmark result lines, headers, and the final verdict;
		// drop run announcements and per-test chatter.
		keep := strings.Contains(out, "ns/op") ||
			strings.HasPrefix(out, "goos:") ||
			strings.HasPrefix(out, "goarch:") ||
			strings.HasPrefix(out, "pkg:") ||
			strings.HasPrefix(out, "cpu:") ||
			strings.HasPrefix(out, "PASS") ||
			strings.HasPrefix(out, "FAIL") ||
			strings.HasPrefix(out, "ok ")
		if keep {
			fmt.Print(out)
		}
		// Record the clamp-plan cache hit rate reported by the plan-path
		// benchmarks (b.ReportMetric(..., "plan-hit-rate")) so the steady-
		// state cache behavior is visible at a glance below the table.
		if name, rate, ok := parseHitRate(out); ok {
			hitRates = append(hitRates, hitRate{name, rate})
		}
	}
	for _, hr := range hitRates {
		fmt.Printf("plan-cache hit rate: %-40s %.1f%%\n", hr.bench, hr.rate*100)
	}
}

// parseHitRate extracts the benchmark name and the value of the custom
// "plan-hit-rate" metric from a benchmark result line, if present.
func parseHitRate(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	for i, f := range fields {
		if f != "plan-hit-rate" || i == 0 {
			continue
		}
		rate, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return "", 0, false
		}
		return fields[0], rate, true
	}
	return "", 0, false
}
