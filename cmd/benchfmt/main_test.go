package main

import (
	"strings"
	"testing"
)

// optRow is a realistic BenchmarkOptSolve result line: standard columns plus
// the three quality metrics the benchmark reports.
const optRow = "BenchmarkOptSolve/metropolis-8 \t       5\t  21998640 ns/op\t        -611 best-energy\t         771.5 cut\t         2 restarts-to-best\t   41104 B/op\t      29 allocs/op\n"

func TestParseCustomMetricsOptUnits(t *testing.T) {
	got := parseCustomMetrics(optRow)
	want := map[string]float64{
		"best-energy":      -611,
		"cut":              771.5,
		"restarts-to-best": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d custom metrics, want %d: %+v", len(got), len(want), got)
	}
	for _, cm := range got {
		if cm.bench != "BenchmarkOptSolve/metropolis-8" {
			t.Errorf("bench name %q", cm.bench)
		}
		v, ok := want[cm.unit]
		if !ok {
			t.Errorf("unexpected unit %q (standard columns must not leak through)", cm.unit)
			continue
		}
		if cm.value != v {
			t.Errorf("%s = %g, want %g", cm.unit, cm.value, v)
		}
	}
}

func TestParseCustomMetricsRejectsNonResultRows(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOptSolve/metropolis-8 \t       5\t  not-a-number ns/op\n",
		"BenchmarkOptSolve/metropolis-8#01 \t 5\t 100 ns/op\t 1 best-energy\n", // duplicate re-run
		"=== RUN   TestSomething\n",
		"ok  \tdsgl\t1.2s\n",
	} {
		if got := parseCustomMetrics(line); got != nil {
			t.Errorf("line %q parsed to %+v, want nil", line, got)
		}
	}
}

func TestOptSolveSummary(t *testing.T) {
	o := newOptSolve()
	o.add(optRow)
	o.add("BenchmarkOptSolve/brim-8 \t       3\t  9998640 ns/op\t        -580.25 best-energy\t         756 cut\t         1 restarts-to-best\n")
	o.add("BenchmarkOptSolve/brim-8 \t       3\t  11111111 ns/op\t        -1 best-energy\t -1 cut\t -1 restarts-to-best\n") // repeat: first wins
	o.add("BenchmarkInferBatch/spatial/workers=1-8 \t 10\t 100 ns/op\n")                                                    // not an opt row
	if o.count() != 2 {
		t.Fatalf("count = %d, want 2", o.count())
	}
	var sb strings.Builder
	if !o.report(&sb, true) {
		t.Fatalf("well-formed rows must pass the guard:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"metropolis-8", "best energy -611", "cut 771.5", "restarts-to-best 2",
		"brim-8", "best energy -580.25", "restarts-to-best 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestOptSolveGuardFlagsMissingMetrics(t *testing.T) {
	o := newOptSolve()
	// An OptSolve row without the reported quality metrics: a benchmark that
	// stopped calling ReportMetric.
	o.add("BenchmarkOptSolve/oim-8 \t       3\t  9998640 ns/op\n")
	var sb strings.Builder
	if o.report(&sb, true) {
		t.Fatal("guarded report must fail on a metric-less OptSolve row")
	}
	if !o.report(&sb, false) {
		t.Fatal("unguarded report must not fail")
	}
}

// TestBatchGuardSkipsWhenOptRowsPresent pins the BENCH_opt.json replay
// semantics: a guarded stream with OptSolve rows but no InferBatch pairs
// skips the batch guard instead of failing, while a guarded stream with
// neither still fails loudly.
func TestBatchGuardSkipsWhenOptRowsPresent(t *testing.T) {
	b := newBatchScaling()
	var sb strings.Builder
	if b.report(&sb, true, false) != true {
		t.Fatal("batch guard must pass when not required (opt rows present)")
	}
	if !strings.Contains(sb.String(), "batch guard skipped") {
		t.Fatalf("skip must be reported:\n%s", sb.String())
	}
	sb.Reset()
	if b.report(&sb, true, true) {
		t.Fatal("batch guard must fail when required and no pairs were found")
	}
}

// TestBatchGuardStillTripsOnAntiScaling makes sure the opt-aware skip did
// not weaken the original tripwire.
func TestBatchGuardStillTripsOnAntiScaling(t *testing.T) {
	b := newBatchScaling()
	b.add("BenchmarkInferBatch/spatial/workers=1-8 \t 10\t 1000 ns/op\n")
	b.add("BenchmarkInferBatch/spatial/workers=4-8 \t 10\t 2000 ns/op\n") // 0.5x: anti-scaling
	var sb strings.Builder
	if b.report(&sb, true, false) {
		t.Fatal("anti-scaling regime must fail the guard even when pairs are optional")
	}
	if !strings.Contains(sb.String(), "ANTI-SCALING") {
		t.Fatalf("verdict missing:\n%s", sb.String())
	}
}
