// Command dsgld is the DS-GL inference daemon: it trains or loads models
// into a registry and serves them over HTTP/JSON with cross-request dynamic
// batching, per-tenant rate limiting, bounded queueing, and graceful drain
// on SIGTERM/SIGINT. Observability endpoints (/metrics, /metricsz, pprof)
// are mounted on the same listener and stay up until in-flight requests
// have drained.
//
// Usage:
//
//	dsgld -addr :8080 -train traffic            # train at boot and serve
//	dsgld -snapshot fast=model.dsgl@traffic     # serve a saved snapshot
//	dsgld -loadtest -qps 150,600                # open-loop bench, JSON out
//
// Quickstart round trip against a running daemon:
//
//	curl -s localhost:8080/v1/example?model=traffic > req.json
//	curl -s -d @req.json localhost:8080/v1/infer
//
// Consecutive windows of one series stream over /v1/stream (open with
// "model", tick with the returned "session", end with "close"): each tick
// warm-starts from the previous tick's equilibrium, so slowly varying
// series settle in far fewer anneal steps than stateless /v1/infer pays.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dsgl"
	"dsgl/internal/serve"
)

// main is a thin shell around realMain — the same pattern as cmd/dsgl:
// os.Exit skips deferred functions, so every error path returns an exit
// code instead of exiting directly, and cleanup (drain, obs shutdown)
// always runs.
func main() { os.Exit(realMain(os.Args[1:])) }

func realMain(args []string) int {
	fs := flag.NewFlagSet("dsgld", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (use 127.0.0.1:0 for a random port; the bound address is printed on stdout)")
	trainList := fs.String("train", "traffic", "comma-separated datasets to train and register at boot (empty = none)")
	snapshots := fs.String("snapshot", "", "comma-separated snapshots to load, each name=path@dataset (the dataset is regenerated from -n/-t/-seed and must match the one the snapshot was trained on)")
	n := fs.Int("n", 32, "graph nodes per trained dataset")
	t := fs.Int("t", 0, "series length (0 = dataset default)")
	seed := fs.Uint64("seed", 7, "dataset and training seed")
	backend := fs.String("backend", dsgl.BackendScalable, "inference backend for boot-trained models")
	workers := fs.Int("workers", 0, "engine worker pool for coalesced batches (0 = GOMAXPROCS)")

	batchWindow := fs.Duration("batch-window", 2*time.Millisecond, "dynamic-batching coalescing window (negative disables batching)")
	maxBatch := fs.Int("max-batch", 32, "flush a batch group at this many requests")
	maxQueue := fs.Int("max-queue", 1024, "bound on requests pending across batch groups (503 beyond)")
	rate := fs.Float64("rate", 0, "per-tenant token-bucket rate in requests/second (0 = unlimited)")
	burst := fs.Float64("burst", 0, "per-tenant burst capacity (0 = one second of -rate)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "bound on waiting for in-flight requests at shutdown")
	streamTTL := fs.Duration("stream-ttl", time.Minute, "evict /v1/stream sessions idle longer than this")
	maxStreams := fs.Int("max-streams", 256, "bound on concurrently open /v1/stream sessions (503 beyond)")

	loadtest := fs.Bool("loadtest", false, "run the open-loop load generator in-process instead of serving, and print LoadReport JSON on stdout")
	qpsList := fs.String("qps", "150,600", "loadtest: comma-separated offered-QPS points")
	loadDur := fs.Duration("load-duration", 2*time.Second, "loadtest: duration per QPS point")
	alpha := fs.Float64("alpha", 1.5, "loadtest: Pareto tail index of inter-arrival gaps (smaller = burstier)")
	tenants := fs.Int("tenants", 4, "loadtest: synthetic tenants to spread requests across")
	loadSeed := fs.Uint64("load-seed", 11, "loadtest: arrival-process seed")
	loadModel := fs.String("load-model", "", "loadtest: model to drive (default: first registered)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dsgl.EnableMetrics()

	reg := serve.NewRegistry()
	if *trainList != "" {
		for _, name := range strings.Split(*trainList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			start := time.Now()
			ds, err := dsgl.NewDataset(name, dsgl.DatasetConfig{N: *n, T: *t, Seed: *seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsgld: %v\n", err)
				return 1
			}
			model, err := dsgl.Train(ds, dsgl.Options{Backend: *backend, Seed: *seed, Workers: *workers})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsgld: train %s: %v\n", name, err)
				return 1
			}
			if _, err := reg.Register(name, model); err != nil {
				fmt.Fprintf(os.Stderr, "dsgld: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "dsgld: trained and registered %q (%s backend) in %v\n",
				name, *backend, time.Since(start).Round(time.Millisecond))
		}
	}
	if *snapshots != "" {
		for _, spec := range strings.Split(*snapshots, ",") {
			name, path, dataset, err := parseSnapshotSpec(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsgld: %v\n", err)
				return 2
			}
			ds, err := dsgl.NewDataset(dataset, dsgl.DatasetConfig{N: *n, T: *t, Seed: *seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsgld: %v\n", err)
				return 1
			}
			if _, err := reg.LoadSnapshot(name, path, ds); err != nil {
				fmt.Fprintf(os.Stderr, "dsgld: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "dsgld: loaded snapshot %q from %s\n", name, path)
		}
	}
	if reg.Len() == 0 {
		fmt.Fprintln(os.Stderr, "dsgld: no models registered (use -train and/or -snapshot)")
		return 2
	}

	srv := serve.New(reg, serve.Config{
		BatchWindow:  *batchWindow,
		MaxBatch:     *maxBatch,
		MaxQueue:     *maxQueue,
		RatePerSec:   *rate,
		Burst:        *burst,
		Workers:      *workers,
		DrainTimeout: *drainTimeout,
		StreamTTL:    *streamTTL,
		MaxStreams:   *maxStreams,
	})

	if *loadtest {
		return runLoadtest(srv, reg, *loadModel, *qpsList, *loadDur, *alpha, *tenants, *loadSeed)
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsgld: %v\n", err)
		return 1
	}
	// The bound address goes to stdout so scripts (CI smoke) can pick up a
	// random port; everything else logs to stderr.
	fmt.Printf("dsgld listening on http://%s (models: %s)\n", bound, strings.Join(reg.Names(), ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Fprintf(os.Stderr, "dsgld: %v received, draining (in-flight finishes, new requests get 503)\n", s)
	sessions := srv.StreamCount()
	if err := srv.Drain(); err != nil {
		fmt.Fprintf(os.Stderr, "dsgld: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "dsgld: drained cleanly (%d stream sessions closed)\n", sessions)
	return 0
}

// parseSnapshotSpec splits one -snapshot item, name=path@dataset.
func parseSnapshotSpec(spec string) (name, path, dataset string, err error) {
	spec = strings.TrimSpace(spec)
	name, rest, ok := strings.Cut(spec, "=")
	if ok {
		path, dataset, ok = strings.Cut(rest, "@")
	}
	if !ok || name == "" || path == "" || dataset == "" {
		return "", "", "", fmt.Errorf("bad -snapshot %q, want name=path@dataset", spec)
	}
	return name, path, dataset, nil
}

// runLoadtest drives the open-loop generator at each offered QPS point and
// prints the reports as a JSON array on stdout — `make serve-bench` tees
// that into BENCH_serve.json and renders it with `benchfmt -serve`.
func runLoadtest(srv *serve.Server, reg *serve.Registry, model, qpsList string, dur time.Duration, alpha float64, tenants int, seed uint64) int {
	if model == "" {
		model = reg.Names()[0]
	}
	var reports []*serve.LoadReport
	for _, f := range strings.Split(qpsList, ",") {
		qps, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsgld: bad -qps entry %q: %v\n", f, err)
			return 2
		}
		rep, err := serve.RunLoad(srv, serve.LoadConfig{
			Model:    model,
			QPS:      qps,
			Duration: dur,
			Alpha:    alpha,
			Seed:     seed,
			Tenants:  tenants,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsgld: loadtest: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dsgld: loadtest %s @ %g qps: ok=%d shed=%d p50=%.2fms p99=%.2fms mean-batch=%.2f\n",
			model, qps, rep.OK, rep.Shed, rep.P50Ms, rep.P99Ms, rep.MeanBatch)
		reports = append(reports, rep)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		fmt.Fprintf(os.Stderr, "dsgld: %v\n", err)
		return 1
	}
	return 0
}
