package dsgl

import (
	"fmt"

	"dsgl/internal/datasets"
	"dsgl/internal/engine"
)

// StreamSession is streaming temporal inference over a model: a sequence of
// observation windows predicted as consecutive ticks, each warm-started
// from the previous tick's settled node state and, when the clamp pattern
// slides, resolved by plan delta-compilation instead of a full recompile
// (see engine.Stream). A warm-started tick settles to the same fixed point
// a cold inference would — the warm-start-fixed-point verify invariant — it
// just starts closer to it, so consecutive ticks of a slowly varying series
// settle in fewer steps.
//
// Tick t anneals with seed BaseSeed + t, mirroring the batch convention
// (window i gets BaseSeed + i), so a session's predictions are
// deterministic in (model seed, tick order). Sessions are not safe for
// concurrent use; open one session per stream. Close releases the
// session's inference state back to the engine pool.
type StreamSession struct {
	m    *Model
	s    *engine.Stream
	tick uint64
}

// OpenStream starts a streaming inference session on the model. Streaming
// always runs the exact (unsharded) anneal path: warm starts need the
// previous equilibrium to sit in the session state, which the sharded
// scatter/gather does not preserve.
func (m *Model) OpenStream() *StreamSession {
	return &StreamSession{m: m, s: m.Engine().OpenStream()}
}

// StreamTick is the outcome of one streaming inference tick.
type StreamTick struct {
	Prediction
	// Steps is the integration steps the tick took to settle — the metric
	// warm starting improves. Settled mirrors the engine result.
	Steps   int
	Settled bool
	// Warm reports whether this tick reused the previous tick's settled
	// state (false on a session's first tick).
	Warm bool
	// Seed is the anneal seed the tick ran with (BaseSeed + tick index).
	Seed uint64
}

// Next predicts one window as the session's next tick. The window is
// validated exactly as Predict validates it; its observed entries are
// clamped and the unknowns annealed from the previous tick's equilibrium.
func (ss *StreamSession) Next(w datasets.Window) (*StreamTick, error) {
	if ss.s == nil {
		return nil, fmt.Errorf("dsgl: Next on a closed stream session")
	}
	obs, err := ss.m.windowObservations(w)
	if err != nil {
		return nil, err
	}
	warm := ss.s.Started()
	res, seed, err := ss.NextObservations(obs)
	if err != nil {
		return nil, err
	}
	return &StreamTick{
		Prediction: *ss.m.predictionFrom(w, res),
		Steps:      res.Steps,
		Settled:    res.Settled,
		Warm:       warm,
		Seed:       seed,
	}, nil
}

// NextObservations is Next for callers that build their own clamp lists
// (the serving layer's /v1/stream endpoint). The returned Result aliases
// session state and is overwritten by the next tick; Detach it if it must
// outlive the tick.
func (ss *StreamSession) NextObservations(obs []engine.Observation) (*engine.Result, uint64, error) {
	if ss.s == nil {
		return nil, 0, fmt.Errorf("dsgl: Next on a closed stream session")
	}
	seed := ss.m.Engine().BaseSeed() + ss.tick
	res, err := ss.s.Tick(obs, seed)
	if err != nil {
		return nil, 0, err
	}
	ss.tick++
	return res, seed, nil
}

// Ticks is the number of completed ticks.
func (ss *StreamSession) Ticks() uint64 { return ss.tick }

// Close releases the session's inference state. Idempotent; Next after
// Close errors.
func (ss *StreamSession) Close() {
	if ss.s != nil {
		ss.s.Close()
		ss.s = nil
	}
}
