package dsgl

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// The golden-voltage fixture pins the scalable backend's inference outputs
// bit-for-bit across refactors: the engine extraction (unified inference
// core, PR 4) is contractually forbidden from changing the RNG stream or
// the floating-point operation order of the scalable path, and this test is
// the regression tripwire. The fixture was captured on main BEFORE the
// engine refactor; regenerate only when an output change is intentional:
//
//	go test -run TestGoldenVoltages -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_voltages.json from the current code")

const goldenPath = "testdata/golden_voltages.json"

// goldenWindow is one probe window's pinned inference outcome. Voltages and
// energy are stored as hex-encoded IEEE-754 bit patterns so the comparison
// is exact, never tolerance-based.
type goldenWindow struct {
	Voltage   []string `json:"voltage"`
	LatencyNs string   `json:"latency_ns"`
	Settled   bool     `json:"settled"`
	Energy    string   `json:"energy"`
}

// goldenRun is one (dataset, config) combination's pinned outcomes.
type goldenRun struct {
	Name    string         `json:"name"`
	Mode    string         `json:"mode"`
	Windows []goldenWindow `json:"windows"`
}

func bits(v float64) string { return fmt.Sprintf("%016x", math.Float64bits(v)) }

func bitsVec(v []float64) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = bits(x)
	}
	return out
}

// goldenProbeWindows is how many test windows each configuration pins.
const goldenProbeWindows = 2

// captureGoldenRuns regenerates every pinned configuration from the current
// code. The scalable configurations cover both co-annealing regimes (pure
// spatial and temporal+spatial via a starved lane budget); the dense run
// pins the single-PE DSPU path DenseInfer drives.
func captureGoldenRuns(t *testing.T) []goldenRun {
	t.Helper()
	var runs []goldenRun

	scalableCase := func(name string, opts Options) {
		ds := tinyDataset(t, "traffic")
		model, err := Train(ds, opts)
		if err != nil {
			t.Fatalf("%s: train: %v", name, err)
		}
		_, test := ds.Split()
		seed := model.Opts.Seed + 2 // the machine seed Train derives
		run := goldenRun{Name: name, Mode: model.Machine.Stats().Mode.String()}
		for i := 0; i < goldenProbeWindows; i++ {
			obs, err := model.windowObservations(test[i])
			if err != nil {
				t.Fatalf("%s: window %d: %v", name, i, err)
			}
			res, err := model.Machine.InferSeeded(obs, seed+uint64(i))
			if err != nil {
				t.Fatalf("%s: infer %d: %v", name, i, err)
			}
			run.Windows = append(run.Windows, goldenWindow{
				Voltage:   bitsVec(res.Voltage),
				LatencyNs: bits(res.LatencyNs),
				Settled:   res.Settled,
				Energy:    bits(res.Energy),
			})
		}
		runs = append(runs, run)
	}

	spatial := tinyOptions()
	scalableCase("traffic-spatial", spatial)

	temporal := tinyOptions()
	temporal.Lanes = 2 // starve the portals so slices time-multiplex
	scalableCase("traffic-temporal", temporal)

	// Dense single-PE path: the pre-engine DenseInfer entry point.
	ds := tinyDataset(t, "traffic")
	dense, err := TrainDense(ds, tinyOptions())
	if err != nil {
		t.Fatalf("dense: train: %v", err)
	}
	_, test := ds.Split()
	run := goldenRun{Name: "traffic-dense", Mode: "dense"}
	for i := 0; i < goldenProbeWindows; i++ {
		p, err := DenseInfer(ds, dense, test[i], 9+uint64(i))
		if err != nil {
			t.Fatalf("dense: infer %d: %v", i, err)
		}
		run.Windows = append(run.Windows, goldenWindow{
			Voltage:   bitsVec(p.Values),
			LatencyNs: bits(p.LatencyUs),
		})
	}
	runs = append(runs, run)
	return runs
}

func TestGoldenVoltages(t *testing.T) {
	got := captureGoldenRuns(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d runs)", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update-golden): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("decode golden fixture: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden run count diverges: got %d, fixture has %d", len(got), len(want))
	}
	for r := range want {
		w, g := want[r], got[r]
		if g.Name != w.Name {
			t.Fatalf("run %d name diverges: %q vs fixture %q", r, g.Name, w.Name)
		}
		if g.Mode != w.Mode {
			t.Errorf("%s: mode diverges: %q vs fixture %q", w.Name, g.Mode, w.Mode)
		}
		if len(g.Windows) != len(w.Windows) {
			t.Fatalf("%s: window count diverges: %d vs %d", w.Name, len(g.Windows), len(w.Windows))
		}
		for i := range w.Windows {
			ww, gw := w.Windows[i], g.Windows[i]
			if len(gw.Voltage) != len(ww.Voltage) {
				t.Fatalf("%s window %d: voltage length %d vs fixture %d", w.Name, i, len(gw.Voltage), len(ww.Voltage))
			}
			diverged, first := 0, -1
			for k := range ww.Voltage {
				if gw.Voltage[k] != ww.Voltage[k] {
					if first < 0 {
						first = k
					}
					diverged++
				}
			}
			if diverged > 0 {
				t.Errorf("%s window %d: %d voltages diverge from fixture (first at node %d: %s vs %s)",
					w.Name, i, diverged, first, gw.Voltage[first], ww.Voltage[first])
			}
			if gw.LatencyNs != ww.LatencyNs {
				t.Errorf("%s window %d: latency bits diverge: %s vs %s", w.Name, i, gw.LatencyNs, ww.LatencyNs)
			}
			if gw.Settled != ww.Settled {
				t.Errorf("%s window %d: settled diverges: %v vs %v", w.Name, i, gw.Settled, ww.Settled)
			}
			if gw.Energy != ww.Energy {
				t.Errorf("%s window %d: energy bits diverge: %s vs %s", w.Name, i, gw.Energy, ww.Energy)
			}
		}
	}
}
