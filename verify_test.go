package dsgl

import (
	"strings"
	"testing"

	"dsgl/internal/verify"
)

func findCheck(t *testing.T, rep *VerifyReport, invariant string) *VerifyCheck {
	t.Helper()
	for i := range rep.Checks {
		if rep.Checks[i].Invariant == invariant {
			return &rep.Checks[i]
		}
	}
	t.Fatalf("report has no %q check", invariant)
	return nil
}

// TestVerifyAllInvariantsGreen runs the full harness against freshly
// trained models in every co-annealing regime. A healthy model must come
// back clean, and each regime must skip exactly the checks whose
// preconditions it breaks: analog noise voids the per-step Lyapunov
// argument, and a disabled temporal dimension forces coupling drops so
// EffectiveJ == Tuned.J no longer applies.
func TestVerifyAllInvariantsGreen(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		skipped []string
	}{
		{"spatial", tinyOptions(), nil},
		{"temporal", func() Options { o := tinyOptions(); o.Lanes = 4; return o }(), nil},
		{"temporal-disabled",
			func() Options { o := tinyOptions(); o.Lanes = 4; o.TemporalDisabled = true; return o }(),
			[]string{verify.InvLosslessCompile}},
		{"noise",
			func() Options { o := tinyOptions(); o.NodeNoise = 0.05; return o }(),
			[]string{verify.InvEnergyDescent, verify.InvShardedFixedPoint, verify.InvWarmStartFixedPoint}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := tinyDataset(t, "traffic")
			model, err := Train(ds, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := model.Verify(VerifyOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				var sb strings.Builder
				rep.Fprint(&sb)
				t.Fatalf("verification failed on a healthy model:\n%s", sb.String())
			}
			if len(rep.Checks) != 10 {
				t.Fatalf("report has %d checks, want all 10 invariants", len(rep.Checks))
			}
			// The optimization invariant is model-independent and must never
			// skip — it actively compares two worker counts in every regime.
			if c := findCheck(t, rep, verify.InvOptBestEnergyMonotone); c.Skipped || !c.Passed() {
				t.Fatalf("opt-best-energy-monotone not green: %+v", c)
			}
			// The K=1 decomposition identity is a bit-identity claim that
			// holds in every regime (the twin shares the noise options), so
			// it must actively compare and come back clean.
			if c := findCheck(t, rep, verify.InvDecomposedK1Identity); c.Skipped || !c.Passed() {
				t.Fatalf("decomposed-k1-identity not green: %+v", c)
			}
			// The plan/naive identity must hold in every regime, noise
			// included (the plan path replicates the noise stream).
			if c := findCheck(t, rep, verify.InvPlanNaiveIdentity); c.Skipped || !c.Passed() {
				t.Fatalf("plan-naive-identity not green: %+v", c)
			}
			mustSkip := make(map[string]bool, len(tc.skipped))
			for _, inv := range tc.skipped {
				mustSkip[inv] = true
			}
			for i := range rep.Checks {
				c := &rep.Checks[i]
				if mustSkip[c.Invariant] && !c.Skipped {
					t.Errorf("%s: expected SKIP, got %q", c.Invariant, c.Detail)
				}
				if c.Invariant == verify.InvLosslessCompile && !mustSkip[c.Invariant] && c.Skipped {
					t.Errorf("%s unexpectedly skipped: %s", c.Invariant, c.Detail)
				}
				// The tiny model spans several PEs, so unless noise forces
				// the exact path the sharded check must actively compare.
				if c.Invariant == verify.InvShardedFixedPoint && !mustSkip[c.Invariant] && c.Skipped {
					t.Errorf("%s unexpectedly skipped: %s", c.Invariant, c.Detail)
				}
				// The warm-start check must actively compare whenever noise
				// does not void it.
				if c.Invariant == verify.InvWarmStartFixedPoint && !mustSkip[c.Invariant] && c.Skipped {
					t.Errorf("%s unexpectedly skipped: %s", c.Invariant, c.Detail)
				}
			}
		})
	}
}

// TestVerifyDetectsTamperedCoupling mutates one realized coupling in
// Tuned.J after compilation, breaking the model's internal consistency.
// The harness must flag it twice: the machine no longer realizes Tuned.J
// (lossless compilation), and a snapshot of the tampered parameters loads
// into a machine that disagrees with the in-memory one (round trip).
func TestVerifyDetectsTamperedCoupling(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if model.Machine.Stats().DroppedCouplings != 0 {
		t.Fatal("test premise: tiny spatial model should compile losslessly")
	}
	n := model.Tuned.Dim()
	ti, tj := -1, -1
	for i := 0; i < n && ti < 0; i++ {
		for j := 0; j < n; j++ {
			if model.Tuned.J.At(i, j) != 0 {
				ti, tj = i, j
				break
			}
		}
	}
	if ti < 0 {
		t.Fatal("no nonzero coupling to tamper with")
	}
	model.Tuned.J.Set(ti, tj, model.Tuned.J.At(ti, tj)*2+0.25)

	rep, err := Verify(model, VerifyOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("Verify passed a model whose Tuned.J was tampered with")
	}
	if c := findCheck(t, rep, verify.InvLosslessCompile); c.Passed() || c.Skipped {
		t.Fatalf("lossless-compile check did not flag the tampered coupling: %+v", c)
	}
	if c := findCheck(t, rep, verify.InvSnapshotRoundTrip); len(c.Violations) == 0 {
		t.Fatal("round-trip check did not flag the snapshot/in-memory divergence")
	}
	// The untampered invariants still hold: the running machine is
	// internally consistent even though it no longer matches Tuned.J.
	if c := findCheck(t, rep, verify.InvSeqParIdentity); !c.Passed() {
		t.Fatalf("seq/par identity should be unaffected by parameter tampering: %+v", c)
	}
}

func TestVerifyRejectsUntrainedModel(t *testing.T) {
	if _, err := Verify(nil, VerifyOptions{}); err == nil {
		t.Fatal("expected error for nil model")
	}
	if _, err := Verify(&Model{}, VerifyOptions{}); err == nil {
		t.Fatal("expected error for model without a machine")
	}
}

// TestVerifyWindowCapRespected keeps the probe budget honest: Windows=3
// must probe exactly 3 windows even though the test split is larger.
func TestVerifyWindowCapRespected(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	if len(test) <= 3 {
		t.Fatalf("test split too small (%d) to exercise the cap", len(test))
	}
	rep, err := Verify(model, VerifyOptions{Windows: 3, EnergyProbes: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatal("verification failed on a healthy model")
	}
	c := findCheck(t, rep, verify.InvSeqParIdentity)
	if !strings.Contains(c.Detail, "3 windows") {
		t.Fatalf("seq/par check detail %q, want a 3-window probe set", c.Detail)
	}
	// EnergyProbes asked for more traces than windows; it must be capped.
	e := findCheck(t, rep, verify.InvEnergyDescent)
	if !strings.Contains(e.Detail, "3 probe anneals") {
		t.Fatalf("energy check detail %q, want 3 capped probe anneals", e.Detail)
	}
}
