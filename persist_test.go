package dsgl

import (
	"bytes"
	"encoding/gob"
	"runtime"
	"testing"

	"dsgl/internal/scalable"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on the same window.
	_, test := ds.Split()
	p1, err := model.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loaded.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Values {
		if p1.Values[i] != p2.Values[i] {
			t.Fatalf("prediction %d differs after reload: %g vs %g", i, p1.Values[i], p2.Values[i])
		}
	}
	if loaded.Machine.Stats().Mode != model.Machine.Stats().Mode {
		t.Fatal("co-annealing mode changed after reload")
	}
}

func TestLoadRejectsWrongDataset(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyDataset(t, "no2")
	if _, err := Load(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("expected error for mismatched dataset name")
	}
	shrunk := GenerateDataset("traffic", DatasetConfig{N: 8, T: 400, History: 4, Horizon: 1, Seed: 2})
	if _, err := Load(bytes.NewReader(buf.Bytes()), shrunk); err == nil {
		t.Fatal("expected error for mismatched window length")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	if _, err := Load(bytes.NewReader([]byte("not a snapshot")), ds); err == nil {
		t.Fatal("expected decode error")
	}
}

// TestSnapshotPersistsRefitZeroMaskEntry is the regression test for the v1
// round-trip bug: the snapshot mask was reconstructed from the tuned J's
// nonzero support, silently dropping mask entries whose closed-form refit
// value is exactly 0. Format v2 persists the model's real mask, so a
// zero-valued masked coupling survives Save/Load.
func TestSnapshotPersistsRefitZeroMaskEntry(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Force one masked coupling to an exactly-zero refit value and rebuild
	// the machine, as a refit that lands on 0 would have.
	zi, zj := -1, -1
	n := model.Tuned.Dim()
	for i := 0; i < n && zi < 0; i++ {
		for j := 0; j < n; j++ {
			if model.mask.At(i, j) && model.Tuned.J.At(i, j) != 0 {
				zi, zj = i, j
				break
			}
		}
	}
	if zi < 0 {
		t.Fatal("no masked nonzero coupling to zero out")
	}
	model.Tuned.J.Set(zi, zj, 0)
	machine, err := scalable.Build(model.Tuned, model.Assignment, model.mask, model.Machine.Config())
	if err != nil {
		t.Fatal(err)
	}
	model.Machine = machine

	// The v1 reconstruction loses the entry — this is the old bug.
	if model.maskFromSupport().At(zi, zj) {
		t.Fatal("support reconstruction unexpectedly kept the zero-refit entry; test premise broken")
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.mask.At(zi, zj) {
		t.Fatalf("mask entry (%d,%d) with zero refit value lost across Save/Load", zi, zj)
	}
	if got, want := loaded.mask.Count(), model.mask.Count(); got != want {
		t.Fatalf("loaded mask has %d entries, saved model had %d", got, want)
	}
	for i := range model.mask.Data {
		if model.mask.Data[i] != loaded.mask.Data[i] {
			t.Fatalf("mask bit %d diverged across Save/Load", i)
		}
	}
}

// reencode decodes a written snapshot, applies mutate, and re-encodes it —
// the corrupt-snapshot fixture factory.
func reencode(t *testing.T, snapshot []byte, mutate func(*modelSnapshot)) *bytes.Reader {
	t.Helper()
	var snap modelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(snapshot)).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mutate(&snap)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// TestLoadRejectsCorruptGeometry feeds Load snapshots whose slice lengths
// disagree with their declared geometry. Each must come back as an error —
// the old code panicked in mat.NewDenseFrom or while indexing PEOf.
func TestLoadRejectsCorruptGeometry(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()
	cases := []struct {
		name   string
		mutate func(*modelSnapshot)
	}{
		{"truncated J data", func(s *modelSnapshot) { s.JData = s.JData[:len(s.JData)-3] }},
		{"non-square J", func(s *modelSnapshot) { s.JCols++ }},
		{"negative J rows", func(s *modelSnapshot) { s.JRows = -1 }},
		{"truncated H", func(s *modelSnapshot) { s.H = s.H[:len(s.H)-1] }},
		{"truncated placement", func(s *modelSnapshot) { s.PEOf = s.PEOf[:len(s.PEOf)-2] }},
		{"truncated mask data", func(s *modelSnapshot) { s.MaskData = s.MaskData[:len(s.MaskData)-5] }},
		{"mask shape mismatch", func(s *modelSnapshot) { s.MaskRows-- }},
		{"zero PE grid", func(s *modelSnapshot) { s.GridW = 0 }},
		{"zero PE capacity", func(s *modelSnapshot) { s.Capacity = 0 }},
		{"future format", func(s *modelSnapshot) { s.Format = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked on %s: %v", tc.name, r)
				}
			}()
			if _, err := Load(reencode(t, snapshot, tc.mutate), ds); err == nil {
				t.Fatalf("Load accepted a snapshot with %s", tc.name)
			}
		})
	}
}

// TestLoadRejectsTruncatedSnapshot truncates the raw byte stream at several
// points; every prefix must fail with an error, never a panic.
func TestLoadRejectsTruncatedSnapshot(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{1, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		if _, err := Load(bytes.NewReader(raw[:cut]), ds); err == nil {
			t.Fatalf("Load accepted a snapshot truncated to %d/%d bytes", cut, len(raw))
		}
	}
}

// TestLoadDecodesV1Snapshot keeps the old format readable: a snapshot
// declaring Format 1 (whose mask carries v1's reconstructed-support
// semantics) still loads.
func TestLoadDecodesV1Snapshot(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v1Mask := model.maskFromSupport()
	r := reencode(t, buf.Bytes(), func(s *modelSnapshot) {
		s.Format = 1
		s.MaskData = v1Mask.Data // what a v1 writer actually stored
	})
	loaded, err := Load(r, ds)
	if err != nil {
		t.Fatalf("v1 snapshot no longer loads: %v", err)
	}
	// Predictions still match: the machine realizes the same couplings.
	_, test := ds.Split()
	p1, err := model.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loaded.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Values {
		if p1.Values[i] != p2.Values[i] {
			t.Fatalf("prediction %d differs after v1 reload: %g vs %g", i, p1.Values[i], p2.Values[i])
		}
	}
}

// TestLoadNormalizesWorkers: Opts.Workers is a GOMAXPROCS snapshot of the
// saving host and must be re-normalized to the loading process's default.
func TestLoadNormalizesWorkers(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	model.Opts.Workers = 1337 // pretend the saver ran on a 1337-core host
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); loaded.Opts.Workers != want {
		t.Fatalf("loaded Opts.Workers = %d, want the local default %d", loaded.Opts.Workers, want)
	}
}
