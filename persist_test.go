package dsgl

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on the same window.
	_, test := ds.Split()
	p1, err := model.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loaded.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Values {
		if p1.Values[i] != p2.Values[i] {
			t.Fatalf("prediction %d differs after reload: %g vs %g", i, p1.Values[i], p2.Values[i])
		}
	}
	if loaded.Machine.Stats().Mode != model.Machine.Stats().Mode {
		t.Fatal("co-annealing mode changed after reload")
	}
}

func TestLoadRejectsWrongDataset(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyDataset(t, "no2")
	if _, err := Load(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("expected error for mismatched dataset name")
	}
	shrunk := GenerateDataset("traffic", DatasetConfig{N: 8, T: 400, History: 4, Horizon: 1, Seed: 2})
	if _, err := Load(bytes.NewReader(buf.Bytes()), shrunk); err == nil {
		t.Fatal("expected error for mismatched window length")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	if _, err := Load(bytes.NewReader([]byte("not a snapshot")), ds); err == nil {
		t.Fatal("expected decode error")
	}
}
