// Pandemic progression forecasting: trains DS-GL on synthetic COVID-19
// case-increment waves over a contact graph and inspects one concrete
// prediction — per-region forecasts next to ground truth — plus the effect
// of analog noise on the physical system (the Fig. 13 robustness story).
//
//	go run ./examples/covid
package main

import (
	"fmt"
	"log"

	"dsgl"
	"dsgl/internal/metrics"
)

func main() {
	ds := dsgl.GenerateDataset("covid", dsgl.DatasetConfig{N: 24, Seed: 5})
	model, err := dsgl.Train(ds, dsgl.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	_, test := ds.Split()
	w := test[len(test)/2]
	pred, err := model.Predict(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one window (start t=%d), first horizon step, first 8 regions:\n", w.Start)
	fmt.Printf("%8s %12s %12s\n", "region", "predicted", "actual")
	for i := 0; i < 8; i++ {
		fmt.Printf("%8d %12.4f %12.4f\n", i, pred.Values[i], pred.Truth[i])
	}
	fmt.Printf("window RMSE %.4g, annealed in %.3g µs (%s)\n\n",
		metrics.RMSE(pred.Values, pred.Truth), pred.LatencyUs, pred.Mode)

	// Robustness: re-run with 10% Gaussian disturbance at nodes and
	// coupling units — the analog system should barely notice.
	noisy, err := dsgl.Train(ds, dsgl.Options{
		Seed: 11, NodeNoise: 0.10, CouplerNoise: 0.10, DenseInit: model.Dense,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(test) > 20 {
		test = test[:20]
	}
	clean, err := model.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	nz, err := noisy.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test RMSE clean: %.4g   with 10%% analog noise: %.4g (+%.1f%%)\n",
		clean.RMSE, nz.RMSE, 100*(nz.RMSE-clean.RMSE)/clean.RMSE)
}
