// Multi-dimensional graph learning (the paper's Table IV): California-style
// housing prices. Each district carries six features; the price feature of
// the prediction step is unknown while the remaining features are clamped
// alongside the history — the dynamical system regresses price from its
// own district's features and spatial spillover from neighbors.
//
//	go run ./examples/housing
package main

import (
	"fmt"
	"log"

	"dsgl"
)

func main() {
	ds := dsgl.GenerateDataset("housing", dsgl.DatasetConfig{Seed: 21})
	fmt.Printf("dataset %q: %d districts x %d features, predict feature 0 (price)\n",
		ds.Name, ds.N, ds.F)
	fmt.Printf("window system: %d nodes, %d unknown per window\n\n",
		ds.WindowLen(), len(ds.UnknownIndices()))

	model, err := dsgl.Train(ds, dsgl.Options{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := model.Evaluate(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("price RMSE %.4g at %.3g µs mean latency (%s mode)\n",
		rep.RMSE, rep.MeanLatencyUs, rep.Mode)

	// Show a single district's inference: clamp everything but the price.
	_, test := ds.Split()
	p, err := model.Predict(test[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst 8 district price predictions:")
	fmt.Printf("%10s %12s %12s\n", "district", "predicted", "actual")
	for i := 0; i < 8 && i < len(p.Values); i++ {
		fmt.Printf("%10d %12.4f %12.4f\n", i, p.Values[i], p.Truth[i])
	}
}
