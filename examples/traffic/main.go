// Traffic-flow prediction, the paper's flagship application: compares the
// four DS-GL design points (Spatial / Chain / Mesh / DMesh) on accuracy and
// latency, against a naive persistence forecast as a sanity floor.
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"

	"dsgl"
	"dsgl/internal/metrics"
)

func main() {
	ds := dsgl.GenerateDataset("traffic", dsgl.DatasetConfig{N: 32, Seed: 3})
	_, test := ds.Split()
	if len(test) > 30 {
		test = test[:30]
	}

	// Persistence floor: predict that each sensor keeps its last observed
	// value for the whole horizon.
	var persist metrics.Accumulator
	for _, w := range test {
		for _, idx := range ds.UnknownIndices() {
			node := (idx / ds.F) % ds.N
			last := w.Full[((ds.History-1)*ds.N+node)*ds.F]
			persist.Add(last, w.Full[idx])
		}
	}
	fmt.Printf("persistence forecast RMSE: %.4g\n\n", persist.RMSE())

	// Train the dense phase once; sweep the hardware design points.
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	type variant struct {
		name     string
		pattern  dsgl.Pattern
		spatial  bool // temporal co-annealing disabled
		lanesCap int
	}
	variants := []variant{
		{"DS-GL-Spatial", dsgl.DMesh, true, 8},
		{"DS-GL-Chain", dsgl.Chain, false, 0},
		{"DS-GL-Mesh", dsgl.Mesh, false, 0},
		{"DS-GL-DMesh", dsgl.DMesh, false, 0},
	}
	fmt.Printf("%-14s %10s %14s %10s %8s\n", "variant", "RMSE", "latency(µs)", "mode", "slices")
	for _, v := range variants {
		model, err := dsgl.Train(ds, dsgl.Options{
			Pattern:          v.pattern,
			TemporalDisabled: v.spatial,
			Lanes:            v.lanesCap,
			DenseInit:        dense,
			Seed:             7,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := model.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.4g %14.3g %10s %8d\n",
			v.name, rep.RMSE, rep.MeanLatencyUs, rep.Mode, rep.Stats.Rounds)
	}
	fmt.Println("\nExpected: every DS-GL variant beats persistence; richer patterns")
	fmt.Println("(DMesh > Mesh > Chain > Spatial) trade latency for accuracy.")
}
