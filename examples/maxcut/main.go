// Max-cut on the BRIM Ising-machine substrate — the classical workload that
// motivated CMOS Ising machines (paper Sec. I-II). Demonstrates the binary
// baseline DS-GL builds on: natural annealing finds near-optimal cuts in
// tens of simulated nanoseconds.
//
//	go run ./examples/maxcut
package main

import (
	"fmt"
	"log"

	"dsgl/internal/ising"
	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

func main() {
	// A random weighted graph, small enough to brute-force for reference.
	r := rng.New(99)
	const n = 16
	w := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.4 {
				v := r.Uniform(0.1, 1)
				w.Set(i, j, v)
				w.Set(j, i, v)
			}
		}
	}
	model, err := ising.MaxCutModel(w)
	if err != nil {
		log.Fatal(err)
	}
	ground, bestE, err := model.GroundState()
	if err != nil {
		log.Fatal(err)
	}
	best := ising.CutValue(w, ground)

	brim, err := ising.NewBRIM(model, ising.DefaultAnnealSchedule(), rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%12s %12s %12s %10s\n", "anneal(ns)", "cut", "optimal", "ratio")
	for _, dur := range []float64{10, 25, 50, 100, 200} {
		res := brim.Anneal(dur)
		cut := ising.CutValue(w, res.Spins)
		fmt.Printf("%12.0f %12.3f %12.3f %9.1f%%\n", dur, cut, best, 100*cut/best)
	}
	fmt.Printf("\nground-state Ising energy: %.3f\n", bestE)
}
