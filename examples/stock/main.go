// Stock-price prediction with a density sweep: shows the paper's central
// scalability tradeoff — how aggressively the coupling matrix can be
// sparsified (Fig. 10) before accuracy degrades, and how communication
// demand D compares with the hardware lane budget L.
//
//	go run ./examples/stock
package main

import (
	"fmt"
	"log"

	"dsgl"
)

func main() {
	ds := dsgl.GenerateDataset("stock", dsgl.DatasetConfig{N: 32, Seed: 9})
	_, test := ds.Split()
	if len(test) > 25 {
		test = test[:25]
	}
	dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %10s %14s %6s %6s %10s %18s\n",
		"density", "RMSE", "latency(µs)", "D", "L", "slices", "mode")
	for _, d := range []float64{0.02, 0.05, 0.10, 0.15, 0.20} {
		model, err := dsgl.Train(ds, dsgl.Options{
			Density:   d,
			DenseInit: dense,
			Seed:      13,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := model.Evaluate(test)
		if err != nil {
			log.Fatal(err)
		}
		st := rep.Stats
		fmt.Printf("%8.2f %10.4g %14.3g %6d %6d %10d %18s\n",
			d, rep.RMSE, rep.MeanLatencyUs, st.MaxPortalDemand, st.Lanes, st.Rounds, rep.Mode)
	}
	fmt.Println("\nExpected: RMSE falls steeply at low density then saturates;")
	fmt.Println("once D exceeds L the machine switches to temporal+spatial co-annealing.")
}
