// Quickstart: train DS-GL on a synthetic traffic workload and run
// graph-learning inference by natural annealing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dsgl"
)

func main() {
	// 1. A spatio-temporal workload: traffic flow on a 24-sensor road
	//    graph, 6 history steps in, 2 steps predicted.
	ds := dsgl.GenerateDataset("traffic", dsgl.DatasetConfig{N: 24, Seed: 1})
	fmt.Printf("dataset %q: %d sensors x %d steps -> dynamical system of %d nodes\n",
		ds.Name, ds.N, ds.T, ds.WindowLen())

	// 2. Train the full pipeline: dense real-valued system, community
	//    decomposition, pattern-masked fine-tune, hardware compilation.
	model, err := dsgl.Train(ds, dsgl.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	st := model.Machine.Stats()
	fmt.Printf("compiled onto %d PEs (%dx%d grid): %s mode, %d slices, D=%d vs L=%d\n",
		model.Assignment.NumPEs(), model.Assignment.GridW, model.Assignment.GridH,
		st.Mode, st.Rounds, st.MaxPortalDemand, st.Lanes)

	// 3. Inference = clamping the observed history and letting the system
	//    anneal to its lowest-energy state.
	rep, err := model.Evaluate(nil) // nil = the held-out test split
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test RMSE %.4g at %.3g µs mean inference latency over %d windows\n",
		rep.RMSE, rep.MeanLatencyUs, rep.Windows)
}
