// Multi-feature climate forecasting (the paper's second Table IV dataset):
// stations carry six coupled weather features; DS-GL predicts next-step
// temperature with the remaining features clamped as context. Also
// demonstrates saving and reloading a trained model.
//
//	go run ./examples/climate
package main

import (
	"bytes"
	"fmt"
	"log"

	"dsgl"
)

func main() {
	ds := dsgl.GenerateDataset("climate", dsgl.DatasetConfig{Seed: 17})
	fmt.Printf("dataset %q: %d stations x %d features x %d steps\n",
		ds.Name, ds.N, ds.F, ds.T)

	model, err := dsgl.Train(ds, dsgl.Options{Seed: 19})
	if err != nil {
		log.Fatal(err)
	}
	_, test := ds.Split()
	if len(test) > 25 {
		test = test[:25]
	}
	rep, err := model.Evaluate(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temperature RMSE %.4g at %.3g µs (%s mode, %d slices)\n",
		rep.RMSE, rep.MeanLatencyUs, rep.Mode, rep.Stats.Rounds)

	// Persist the trained model and reload it — inference must be
	// bit-identical without retraining.
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot size: %d KiB\n", buf.Len()/1024)
	loaded, err := dsgl.Load(&buf, ds)
	if err != nil {
		log.Fatal(err)
	}
	p1, err := model.Predict(test[0])
	if err != nil {
		log.Fatal(err)
	}
	p2, err := loaded.Predict(test[0])
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range p1.Values {
		if p1.Values[i] != p2.Values[i] {
			same = false
		}
	}
	fmt.Printf("reloaded model reproduces predictions exactly: %v\n", same)
}
