package dsgl

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"dsgl/internal/datasets"
	"dsgl/internal/engine"
	"dsgl/internal/ising"
	"dsgl/internal/opt"
	"dsgl/internal/scalable"
	"dsgl/internal/verify"
)

// Structured invariant-verification report types, re-exported from
// internal/verify (the same convention as Dataset = datasets.Dataset).
type (
	// VerifyReport is the structured outcome of Verify: one VerifyCheck per
	// invariant, each carrying zero or more VerifyViolations.
	VerifyReport = verify.Report
	// VerifyCheck is the outcome of one invariant check.
	VerifyCheck = verify.Check
	// VerifyViolation describes one contract divergence.
	VerifyViolation = verify.Violation
)

// VerifyOptions tunes an invariant-verification run.
type VerifyOptions struct {
	// Windows caps the probe windows drawn from the head of the test split
	// (default 8). Every probe feeds the settle-residual and the
	// sequential/parallel checks; the first EnergyProbes feed the per-step
	// energy trace.
	Windows int
	// EnergyProbes is how many probe windows record full per-step energy
	// traces for the descent check (default 2; tracing evaluates the
	// Hamiltonian every integration step, so it is the expensive part).
	EnergyProbes int
	// Workers sizes the pool of the parallel half of the seq/par identity
	// check. 0 selects the model's Options.Workers.
	Workers int
}

func (o *VerifyOptions) fillDefaults() {
	if o.Windows <= 0 {
		o.Windows = 8
	}
	if o.EnergyProbes <= 0 {
		o.EnergyProbes = 2
	}
	if o.EnergyProbes > o.Windows {
		o.EnergyProbes = o.Windows
	}
}

// Energy-descent ripple tolerances (relative to the trace's dynamic range).
// A single-slice machine is an exact gradient flow of the compiled
// Hamiltonian, so only forward-Euler discretization slack is allowed; a
// time-multiplexed machine anneals under sample-and-hold currents, whose
// slice switches put bounded ripple on the true energy.
const (
	descentRelSingle = 1e-6
	descentRelMulti  = 0.05
	descentNetRel    = 0 // every trace must end no higher than it began
)

// Verify checks the ten runtime contracts of the DS-GL system (paper
// Sec. III, Eqs. 6-8) against the trained model:
//
//  1. monotone energy descent while annealing probe windows;
//  2. equilibrium residual below the settle bound whenever Settled is
//     reported;
//  3. Save/Load round-trip equivalence (stats, effective J, and probe
//     inference all bit-identical);
//  4. Evaluate/EvaluateParallel bit-identity on the probe windows;
//  5. lossless compilation (EffectiveJ == Tuned.J when nothing is
//     dropped);
//  6. clamp-plan/naive bit-identity (the compiled constant-folding
//     inference path returns exactly the naive reference loop's Results);
//  7. sharded fixed-point agreement (the community-sharded parallel anneal
//     settles to the sequential equilibrium within the settle-residual
//     tolerance — checked on a sharding-enabled twin of the machine, so it
//     guards the sharded path even for models that run with sharding off);
//  8. warm-start fixed-point agreement (a streaming tick warm-started from
//     the previous window's equilibrium settles to the same fixed point a
//     cold inference of that window reaches, within the same
//     settle-residual tolerance style as 7);
//  9. optimization best-energy consistency (a multi-restart combinatorial
//     solve on a fixed probe instance reports a best-energy trace that is
//     the exact running minimum of its restart energies, the reported best
//     reproduces bit-for-bit under Hamiltonian recomputation, and the
//     whole run is bit-identical at 1 and 4 workers — the optimization
//     face of invariant 4's determinism contract);
//  10. decomposed K=1 / monolithic bit-identity (heterogeneous
//     decomposition with a single interaction class reproduces the
//     monolithic pipeline exactly: same tuned J and h, bit-identical
//     probe inference — so Options.Decompose changes what is fitted only
//     through genuine class structure, never through numerical drift in
//     the block-solve plumbing).
//
// The returned report is structured: rep.Ok() is the overall verdict,
// rep.Fprint renders it for terminals, and rep.Violations() flattens every
// divergence. Verify returns a non-nil error only when it cannot run the
// checks at all (no test windows, snapshot I/O failure); contract
// violations are reported, not returned as errors.
//
// Verify runs against either backend. Checks 1-6, 8, and 10 run on a
// BackendDense model too: the snapshot round-trip (3) exercises the dense
// (v3) snapshot format, and lossless compilation (5) compares the dense
// network's realized coupling matrix against the tuned J; the remaining
// checks go through the same engine entry points as on the scalable
// machine. The sharded fixed-point check (7) is scalable-only — the dense
// backend has no community structure to shard — and reports itself skipped
// there.
func Verify(m *Model, opts VerifyOptions) (*VerifyReport, error) {
	if m == nil || m.Dataset == nil || (m.Machine == nil && m.Dspu == nil) {
		return nil, errors.New("dsgl: Verify needs a trained model")
	}
	opts.fillDefaults()
	_, test := m.Dataset.Split()
	if len(test) == 0 {
		return nil, errors.New("dsgl: no test windows to probe")
	}
	probes := test
	if len(probes) > opts.Windows {
		probes = probes[:opts.Windows]
	}
	obsList := make([][]engine.Observation, len(probes))
	for i, w := range probes {
		obs, err := m.windowObservations(w)
		if err != nil {
			return nil, err
		}
		obsList[i] = obs
	}
	seed := m.Engine().BaseSeed()

	rep := &VerifyReport{Target: m.Dataset.Name}
	rep.Add(m.checkEnergyDescent(obsList[:opts.EnergyProbes], seed))

	// One sequential reference pass feeds checks 2-4.
	seq := make([]*engine.Result, len(probes))
	for i, obs := range obsList {
		res, err := m.Engine().InferSeeded(obs, seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("dsgl: probe inference %d: %w", i, err)
		}
		seq[i] = res
	}
	rep.Add(m.checkSettleResidual(seq))
	roundTrip, err := m.checkSnapshotRoundTrip(obsList, seq, seed)
	if err != nil {
		return nil, err
	}
	rep.Add(roundTrip)
	seqPar, err := m.checkSeqParIdentity(probes, obsList, seq, opts.Workers)
	if err != nil {
		return nil, err
	}
	rep.Add(seqPar)
	rep.Add(m.checkLosslessCompile())
	planNaive, err := m.checkPlanNaiveIdentity(obsList, seq, seed)
	if err != nil {
		return nil, err
	}
	rep.Add(planNaive)
	shardFP, err := m.checkShardedFixedPoint(obsList, seq, seed)
	if err != nil {
		return nil, err
	}
	rep.Add(shardFP)
	warmFP, err := m.checkWarmStartFixedPoint(obsList, seq, seed)
	if err != nil {
		return nil, err
	}
	rep.Add(warmFP)
	optCheck, err := checkOptBestEnergyMonotone(seed)
	if err != nil {
		return nil, err
	}
	rep.Add(optCheck)
	decompCheck, err := m.checkDecomposedK1Identity(obsList, seq, seed)
	if err != nil {
		return nil, err
	}
	rep.Add(decompCheck)
	return rep, nil
}

// checkDecomposedK1Identity verifies invariant 10: heterogeneous
// decomposition with a single interaction class IS the monolithic pipeline,
// bit-for-bit. At K=1 the block-diagonal Gram is the full Gram
// (train.BlockRidge vs RidgeInit), the class-refined Louvain partition is
// the Louvain partition label-for-label, and everything downstream is
// deterministic — so the tuned parameters and the probe inference must
// match exactly, never merely to tolerance.
//
// The check retrains from m.Opts with only the decomposition fields
// toggled (RidgeLambda is already resolved in a trained model's Opts, so
// the twins skip lambda selection and share every other training input):
// a monolithic model gets a fresh K=1 decomposed twin compared against
// itself; a K=1 decomposed model gets a fresh monolithic twin; a K>1
// model cannot be its own reference, so a fresh twin pair (monolithic and
// K=1) is trained and compared to each other. Only Tuned is compared —
// Load aliases Dense to Tuned, so a Dense comparison would be vacuous on
// loaded models.
func (m *Model) checkDecomposedK1Identity(obsList [][]engine.Observation, seq []*engine.Result, seed uint64) (VerifyCheck, error) {
	c := VerifyCheck{Invariant: verify.InvDecomposedK1Identity, Name: "decomposed K=1 / monolithic bit-identity"}

	monoOpts := m.Opts
	monoOpts.Decompose = false
	monoOpts.Classes = 0
	monoOpts.ClassMode = ""
	k1Opts := m.Opts
	k1Opts.Decompose = true
	k1Opts.Classes = 1

	var ref, twin *Model
	var refResults []*engine.Result
	switch {
	case !m.Opts.Decompose:
		t, err := Train(m.Dataset, k1Opts)
		if err != nil {
			return c, fmt.Errorf("dsgl: verify K=1 decomposed twin training: %w", err)
		}
		ref, twin, refResults = m, t, seq
		c.Detail = fmt.Sprintf("monolithic model vs fresh K=1 decomposed twin, %d probe windows", len(obsList))
	case m.Opts.Classes == 1:
		t, err := Train(m.Dataset, monoOpts)
		if err != nil {
			return c, fmt.Errorf("dsgl: verify monolithic twin training: %w", err)
		}
		ref, twin, refResults = m, t, seq
		c.Detail = fmt.Sprintf("K=1 decomposed model vs fresh monolithic twin, %d probe windows", len(obsList))
	default:
		r, err := Train(m.Dataset, monoOpts)
		if err != nil {
			return c, fmt.Errorf("dsgl: verify monolithic twin training: %w", err)
		}
		t, err := Train(m.Dataset, k1Opts)
		if err != nil {
			return c, fmt.Errorf("dsgl: verify K=1 decomposed twin training: %w", err)
		}
		ref, twin = r, t
		refResults = make([]*engine.Result, len(obsList))
		for i, obs := range obsList {
			res, err := ref.Engine().InferSeeded(obs, seed+uint64(i))
			if err != nil {
				return c, fmt.Errorf("dsgl: verify monolithic twin probe %d: %w", i, err)
			}
			refResults[i] = res
		}
		c.Detail = fmt.Sprintf("K=%d model; fresh monolithic vs K=1 decomposed twin pair, %d probe windows", m.Opts.Classes, len(obsList))
	}

	c.Violations = append(c.Violations,
		verify.DenseEqual(verify.InvDecomposedK1Identity, "Tuned.J", ref.Tuned.J, twin.Tuned.J)...)
	c.Violations = append(c.Violations,
		verify.VectorsEqual(verify.InvDecomposedK1Identity, "Tuned.H", ref.Tuned.H, twin.Tuned.H)...)
	for i, obs := range obsList {
		res, err := twin.Engine().InferSeeded(obs, seed+uint64(i))
		if err != nil {
			return c, fmt.Errorf("dsgl: verify decomposed twin probe %d: %w", i, err)
		}
		c.Violations = append(c.Violations,
			verify.ResultsEqual(verify.InvDecomposedK1Identity, fmt.Sprintf("probe %d", i), refResults[i], res)...)
	}
	return c, nil
}

// Fixed probe parameters for the optimization invariant (9): an instance
// small enough to solve in milliseconds but rugged enough that the six
// restarts land on genuinely different energies before the running minimum
// flattens, so the trace check is non-vacuous.
const (
	optVerifyNodes    = 24
	optVerifyDegree   = 4
	optVerifySteps    = 80
	optVerifyRestarts = 6
	optVerifyWorkers  = 4
)

// checkOptBestEnergyMonotone verifies invariant 9 on a self-contained probe:
// a seeded Gset-style MaxCut instance lowered to Ising and solved by the
// Metropolis backend through the engine's multi-restart fan-out, once
// sequentially and once at optVerifyWorkers workers. Both runs must carry an
// internally consistent best-energy trace (the exact running minimum of the
// restart energies, with the reported best reproducing bit-for-bit under
// Hamiltonian recomputation) and must be bit-identical to each other. The
// probe is independent of the trained model by design — the invariant guards
// the engine's optimization face, which every model shares — but it is
// seeded from the model so distinct models exercise distinct instances.
func checkOptBestEnergyMonotone(seed uint64) (VerifyCheck, error) {
	c := VerifyCheck{Invariant: verify.InvOptBestEnergyMonotone, Name: "optimization best-energy consistency"}
	g, err := opt.RandomGraph(optVerifyNodes, optVerifyDegree, false, seed)
	if err != nil {
		return c, fmt.Errorf("dsgl: verify opt probe instance: %w", err)
	}
	model, err := g.ToIsing()
	if err != nil {
		return c, fmt.Errorf("dsgl: verify opt probe lowering: %w", err)
	}
	solver, err := ising.NewSolver(model, ising.MetropolisDynamics, seed)
	if err != nil {
		return c, fmt.Errorf("dsgl: verify opt probe solver: %w", err)
	}
	eng := engine.NewOpt(solver)
	sched := engine.GeometricSchedule(optVerifySteps, 2, 0.05)
	seqRun, err := eng.SolveFrom(sched, seed, optVerifyRestarts, 1)
	if err != nil {
		return c, fmt.Errorf("dsgl: verify opt sequential solve: %w", err)
	}
	parRun, err := eng.SolveFrom(sched, seed, optVerifyRestarts, optVerifyWorkers)
	if err != nil {
		return c, fmt.Errorf("dsgl: verify opt parallel solve: %w", err)
	}
	c.Violations = append(c.Violations,
		verify.OptBestEnergyMonotone("workers=1", seqRun, solver.EnergyOf)...)
	c.Violations = append(c.Violations,
		verify.OptBestEnergyMonotone(fmt.Sprintf("workers=%d", optVerifyWorkers), parRun, solver.EnergyOf)...)
	c.Violations = append(c.Violations,
		verify.OptRunsIdentical(fmt.Sprintf("workers 1 vs %d", optVerifyWorkers), seqRun, parRun)...)
	c.Detail = fmt.Sprintf("%s via %s: %d restarts at 1 and %d workers, best energy %.6g (cut %g)",
		g.Name, solver.Name(), optVerifyRestarts, optVerifyWorkers,
		seqRun.Best.Energy, g.CutFromEnergy(seqRun.Best.Energy))
	return c, nil
}

// Verify is the method form of the package-level Verify.
func (m *Model) Verify(opts VerifyOptions) (*VerifyReport, error) { return Verify(m, opts) }

// clampedEnergyAt evaluates the conditional Hamiltonian given the clamps —
// the Lyapunov function of clamped annealing — on whichever backend the
// model runs.
func (m *Model) clampedEnergyAt(x []float64, clamped []bool) float64 {
	if m.Machine != nil {
		return m.Machine.ClampedEnergyAt(x, clamped)
	}
	return m.Dspu.ClampedEnergyAt(x, clamped)
}

// residualChecker returns the backend's settle-residual surface.
func (m *Model) residualChecker() verify.ResidualChecker {
	if m.Machine != nil {
		return m.Machine
	}
	return m.Dspu
}

// checkEnergyDescent records per-step energy traces on the probe windows
// and checks ripple-bounded monotone descent. Under injected analog noise
// the Lyapunov argument no longer binds step-to-step, so the check is
// skipped.
func (m *Model) checkEnergyDescent(obsList [][]engine.Observation, seed uint64) VerifyCheck {
	c := VerifyCheck{Invariant: verify.InvEnergyDescent, Name: "monotone energy descent"}
	if m.Opts.NodeNoise > 0 || m.Opts.CouplerNoise > 0 {
		c.Skipped = true
		c.Detail = "analog noise injected; per-step descent not guaranteed"
		return c
	}
	tol := verify.DescentTol{Abs: 1e-12, Rel: descentRelSingle, NetRel: descentNetRel}
	stride := 1
	// A dense-backend model is a single continuous gradient flow — no slice
	// switching — so it always verifies with the strict per-step tolerance.
	if m.Machine != nil && m.Machine.Stats().Rounds > 1 {
		cfg := m.Machine.Config()
		tol.Rel = descentRelMulti
		// Sample once per slice switch: within a slice the held currents
		// make the measured energy ripple by design, so the descent claim
		// is made on the switch-to-switch envelope.
		stride = int(cfg.SwitchIntervalNs / cfg.Dt)
		if stride < 1 {
			stride = 1
		}
	}
	// The descending quantity is the conditional Hamiltonian given the
	// clamps (see scalable.ClampedEnergyAt): the raw Hamiltonian that
	// StepInfo.EnergyFn evaluates weights clamp couplings by 1/2 and is not
	// a Lyapunov function of the clamped dynamics.
	clamped := make([]bool, m.Tuned.Dim())
	copy(clamped, m.observed)
	st := m.Engine().NewInferState()
	var trace []float64
	st.SetObserver(func(si engine.StepInfo) {
		if si.Step%stride == 0 {
			trace = append(trace, m.clampedEnergyAt(si.X, clamped))
		}
	})
	steps := 0
	for i, obs := range obsList {
		trace = trace[:0]
		if _, err := m.Engine().InferWith(st, obs, seed+uint64(i)); err != nil {
			c.Violations = append(c.Violations, VerifyViolation{
				Invariant: verify.InvEnergyDescent,
				Detail:    fmt.Sprintf("probe %d: %v", i, err),
			})
			continue
		}
		steps += len(trace)
		for _, v := range verify.MonotoneDescent(trace, tol) {
			v.Detail = fmt.Sprintf("probe %d: %s", i, v.Detail)
			c.Violations = append(c.Violations, v)
		}
	}
	c.Detail = fmt.Sprintf("%d probe anneals, %d energy samples, ripple tol %.2g·range",
		len(obsList), steps, tol.Rel)
	return c
}

// checkSettleResidual verifies that every probe reporting Settled sits
// within the machine's full-residual settle bound.
func (m *Model) checkSettleResidual(seq []*engine.Result) VerifyCheck {
	c := VerifyCheck{Invariant: verify.InvSettleResidual, Name: "equilibrium residual at settle"}
	clamped := make([]bool, m.Tuned.Dim())
	for i, isObs := range m.observed {
		clamped[i] = isObs
	}
	rc := m.residualChecker()
	settled := 0
	for i, res := range seq {
		if !res.Settled {
			continue
		}
		settled++
		for _, v := range verify.SettledResidual(rc, res, clamped) {
			v.Detail = fmt.Sprintf("probe %d: %s", i, v.Detail)
			c.Violations = append(c.Violations, v)
		}
	}
	if settled == 0 {
		c.Skipped = true
		c.Detail = fmt.Sprintf("none of the %d probes settled within MaxInferNs; no equilibrium claim made", len(seq))
		return c
	}
	c.Detail = fmt.Sprintf("%d/%d probes settled, residual bound %.2g", settled, len(seq), rc.SettleResidualTol())
	return c
}

// checkSnapshotRoundTrip saves the model, loads it back, and demands the
// loaded backend be observationally bit-identical: compilation stats and
// retained mask (scalable), effective coupling matrix, and probe-window
// inference (both backends).
func (m *Model) checkSnapshotRoundTrip(obsList [][]engine.Observation, seq []*engine.Result, seed uint64) (VerifyCheck, error) {
	c := VerifyCheck{Invariant: verify.InvSnapshotRoundTrip, Name: "Save/Load machine equivalence"}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return c, fmt.Errorf("dsgl: verify snapshot save: %w", err)
	}
	snapBytes := buf.Len()
	loaded, err := Load(&buf, m.Dataset)
	if err != nil {
		// A failing Load is itself a round-trip violation, not a harness
		// failure.
		c.Violations = append(c.Violations, VerifyViolation{
			Invariant: verify.InvSnapshotRoundTrip,
			Detail:    fmt.Sprintf("Load failed on a fresh snapshot: %v", err),
		})
		return c, nil
	}
	if m.Machine != nil {
		c.Violations = append(c.Violations, verify.MachinesEquivalent(verify.InvSnapshotRoundTrip, m.Machine, loaded.Machine)...)
	} else {
		// Dense backend: the effective coupling matrix is the whole static
		// state (there is no placement or mask), so bit-compare it directly.
		c.Violations = append(c.Violations, verify.DenseEqual(verify.InvSnapshotRoundTrip,
			"EffectiveJ", m.Dspu.EffectiveJ(), loaded.Dspu.EffectiveJ())...)
	}
	if m.mask != nil {
		if loaded.mask == nil || loaded.mask.Rows != m.mask.Rows || loaded.mask.Cols != m.mask.Cols {
			c.Violations = append(c.Violations, VerifyViolation{
				Invariant: verify.InvSnapshotRoundTrip,
				Detail:    "coupling mask shape lost across Save/Load",
			})
		} else {
			diff := 0
			for i := range m.mask.Data {
				if m.mask.Data[i] != loaded.mask.Data[i] {
					diff++
				}
			}
			if diff > 0 {
				c.Violations = append(c.Violations, VerifyViolation{
					Invariant: verify.InvSnapshotRoundTrip,
					Detail:    fmt.Sprintf("coupling mask diverges in %d entries across Save/Load", diff),
				})
			}
		}
	}
	for i, obs := range obsList {
		res, err := loaded.Engine().InferSeeded(obs, seed+uint64(i))
		if err != nil {
			return c, fmt.Errorf("dsgl: verify probe %d on loaded machine: %w", i, err)
		}
		c.Violations = append(c.Violations,
			verify.ResultsEqual(verify.InvSnapshotRoundTrip, fmt.Sprintf("probe %d", i), seq[i], res)...)
	}
	c.Detail = fmt.Sprintf("%d-byte snapshot, %d probe windows re-inferred", snapBytes, len(obsList))
	return c, nil
}

// checkSeqParIdentity verifies that the parallel batch engine is
// bit-identical to the sequential reference, at both the raw InferBatch
// level and the aggregated Evaluate level.
func (m *Model) checkSeqParIdentity(probes []datasets.Window, obsList [][]engine.Observation, seq []*engine.Result, workers int) (VerifyCheck, error) {
	c := VerifyCheck{Invariant: verify.InvSeqParIdentity, Name: "sequential/parallel bit-identity"}
	if workers <= 0 {
		workers = m.Opts.Workers
	}
	par, err := m.Engine().InferBatch(obsList, workers)
	if err != nil {
		return c, fmt.Errorf("dsgl: verify parallel batch: %w", err)
	}
	for i := range seq {
		c.Violations = append(c.Violations,
			verify.ResultsEqual(verify.InvSeqParIdentity, fmt.Sprintf("window %d", i), seq[i], par[i])...)
	}
	seqRep, err := m.Evaluate(probes)
	if err != nil {
		return c, fmt.Errorf("dsgl: verify sequential evaluate: %w", err)
	}
	parRep, err := m.EvaluateParallel(probes, workers)
	if err != nil {
		return c, fmt.Errorf("dsgl: verify parallel evaluate: %w", err)
	}
	if seqRep.RMSE != parRep.RMSE || seqRep.MAE != parRep.MAE || seqRep.MeanLatencyUs != parRep.MeanLatencyUs {
		c.Violations = append(c.Violations, VerifyViolation{
			Invariant: verify.InvSeqParIdentity,
			Detail: fmt.Sprintf("Evaluate vs EvaluateParallel diverge: RMSE %v/%v, MAE %v/%v, latency %v/%v",
				seqRep.RMSE, parRep.RMSE, seqRep.MAE, parRep.MAE, seqRep.MeanLatencyUs, parRep.MeanLatencyUs),
		})
	}
	c.Detail = fmt.Sprintf("%d windows, %d workers", len(probes), workers)
	return c, nil
}

// checkPlanNaiveIdentity verifies the clamp-plan compiled inference path
// against the naive reference loop: for every probe window the plan-path
// Result (which the sequential reference pass seq already carries — the
// default Infer entry points run the plan) must be bit-identical to
// InferSeededNaive with the same seed. This is the contract that makes the
// constant-current folding a pure optimization: it may hoist work out of
// the anneal loop, never change a rounding.
func (m *Model) checkPlanNaiveIdentity(obsList [][]engine.Observation, seq []*engine.Result, seed uint64) (VerifyCheck, error) {
	c := VerifyCheck{Invariant: verify.InvPlanNaiveIdentity, Name: "clamp-plan/naive bit-identity"}
	for i, obs := range obsList {
		naive, err := m.Engine().InferSeededNaive(obs, seed+uint64(i))
		if err != nil {
			return c, fmt.Errorf("dsgl: verify naive probe %d: %w", i, err)
		}
		c.Violations = append(c.Violations,
			verify.ResultsEqual(verify.InvPlanNaiveIdentity, fmt.Sprintf("probe %d", i), naive, seq[i])...)
	}
	hits, misses := m.Engine().PlanCacheStats()
	c.Detail = fmt.Sprintf("%d probe windows re-inferred naively; plan cache %d hits / %d misses", len(obsList), hits, misses)
	return c, nil
}

// verifyShardWorkers is the shard count the sharded-fixed-point check
// verifies with. Four matches the CI-class core budget the sharded anneal
// targets; ShardNodes caps the effective count at the community (PE) count,
// so small graphs verify with whatever parallelism they actually support.
const verifyShardWorkers = 4

// shardedFixedPointTol converts the settle-residual bound into a node-wise
// voltage tolerance: at a settled state every free node's residual
// |Σ J_ij x_j + h_i x_i| is below the bound, so to first order two settled
// states differ per node by at most 2·bound/|h_i|. The extra factor of two
// covers the free-free coupling feedback the per-node linearization drops
// (trained DS-GL systems keep that block weak — the closed-form solve
// couples unknowns to observations, not to each other).
func shardedFixedPointTol(h []float64, residBound float64) float64 {
	minH := math.Inf(1)
	for _, v := range h {
		if a := math.Abs(v); a > 0 && a < minH {
			minH = a
		}
	}
	if math.IsInf(minH, 1) {
		return residBound
	}
	return 4 * residBound / minH
}

// checkShardedFixedPoint verifies invariant 7: the community-sharded
// parallel anneal settles to the same fixed point as the exact sequential
// reference. The check builds a sharding-enabled twin of the machine (same
// tuned parameters, assignment, and mask — only ShardWorkers differs), so
// the invariant is exercised even when the model itself runs with sharding
// off; the twin and the reference share every probe seed.
func (m *Model) checkShardedFixedPoint(obsList [][]engine.Observation, seq []*engine.Result, seed uint64) (VerifyCheck, error) {
	c := VerifyCheck{Invariant: verify.InvShardedFixedPoint, Name: "sharded/sequential fixed-point agreement"}
	if m.Machine == nil {
		c.Skipped = true
		c.Detail = "dense backend has no community structure to shard"
		return c, nil
	}
	if m.Opts.NodeNoise > 0 || m.Opts.CouplerNoise > 0 {
		c.Skipped = true
		c.Detail = "analog noise injected; the sharded anneal always defers to the exact path"
		return c, nil
	}
	cfg := m.Machine.Config()
	cfg.ShardWorkers = verifyShardWorkers
	cfg.ShardSyncNs = m.Opts.ShardSyncNs
	twin, err := scalable.Build(m.Tuned, m.Assignment, m.mask, cfg)
	if err != nil {
		return c, fmt.Errorf("dsgl: verify sharded twin compilation: %w", err)
	}
	if twin.ShardCount() < 2 {
		c.Skipped = true
		c.Detail = "graph yields fewer than two community shards; sharded anneal never engages"
		return c, nil
	}
	tol := shardedFixedPointTol(m.Tuned.H, twin.SettleResidualTol())
	settled := 0
	for i, obs := range obsList {
		res, err := twin.InferShardedSeeded(obs, seed+uint64(i))
		if err != nil {
			return c, fmt.Errorf("dsgl: verify sharded probe %d: %w", i, err)
		}
		if seq[i].Settled {
			settled++
		}
		c.Violations = append(c.Violations,
			verify.ShardedFixedPoint(fmt.Sprintf("probe %d", i), seq[i], res, tol)...)
	}
	if settled == 0 {
		c.Skipped = true
		c.Detail = fmt.Sprintf("none of the %d probes settled on the exact path; no fixed-point claim made", len(obsList))
		return c, nil
	}
	c.Detail = fmt.Sprintf("%d shards, %d/%d settled probes compared, node tolerance %.2g",
		twin.ShardCount(), settled, len(obsList), tol)
	return c, nil
}

// checkWarmStartFixedPoint verifies invariant 8: streaming the probe
// windows as consecutive warm-started ticks (each free node initialized
// from the previous window's equilibrium; see engine.Stream) settles every
// tick to the same fixed point the cold reference inference of that window
// reached. The first tick of a stream IS a cold inference and must match
// the reference bit-for-bit; the warm ticks carry a different trajectory to
// the same attractor and are compared within the invariant-7 tolerance.
// The check runs on both backends — the stream is an engine-level facility
// — and is skipped under injected analog noise, where warm and cold runs
// draw different noise streams along their different-length trajectories.
func (m *Model) checkWarmStartFixedPoint(obsList [][]engine.Observation, seq []*engine.Result, seed uint64) (VerifyCheck, error) {
	c := VerifyCheck{Invariant: verify.InvWarmStartFixedPoint, Name: "warm-start/cold fixed-point agreement"}
	if m.Opts.NodeNoise > 0 || m.Opts.CouplerNoise > 0 {
		c.Skipped = true
		c.Detail = "analog noise injected; warm and cold anneals draw diverging noise streams"
		return c, nil
	}
	if len(obsList) < 2 {
		c.Skipped = true
		c.Detail = "need at least two probe windows to take a warm-started tick"
		return c, nil
	}
	tol := shardedFixedPointTol(m.Tuned.H, m.residualChecker().SettleResidualTol())
	s := m.Engine().OpenStream()
	defer s.Close()
	settled := 0
	var coldSteps, warmSteps int
	for i, obs := range obsList {
		res, err := s.Tick(obs, seed+uint64(i))
		if err != nil {
			return c, fmt.Errorf("dsgl: verify stream tick %d: %w", i, err)
		}
		if i == 0 {
			// Cold first tick: same seed, same init — bit-identity, not
			// tolerance.
			c.Violations = append(c.Violations,
				verify.ResultsEqual(verify.InvWarmStartFixedPoint, "tick 0 (cold)", seq[0], res)...)
			continue
		}
		if seq[i].Settled {
			settled++
			coldSteps += seq[i].Steps
			warmSteps += res.Steps
		}
		c.Violations = append(c.Violations,
			verify.WarmStartFixedPoint(fmt.Sprintf("tick %d", i), seq[i], res, tol)...)
	}
	if settled == 0 {
		c.Skipped = true
		c.Detail = fmt.Sprintf("none of the %d cold references settled; no fixed-point claim made", len(obsList))
		return c, nil
	}
	c.Detail = fmt.Sprintf("%d warm ticks against settled cold references (steps %d warm vs %d cold), node tolerance %.2g",
		settled, warmSteps, coldSteps, tol)
	return c, nil
}

// checkLosslessCompile verifies EffectiveJ == Tuned.J bit-for-bit whenever
// the compilation dropped no coupling.
func (m *Model) checkLosslessCompile() VerifyCheck {
	c := VerifyCheck{Invariant: verify.InvLosslessCompile, Name: "lossless compilation"}
	if m.Machine == nil {
		// The dense backend has no decomposition or placement stage, but its
		// network construction is still a realization step (dense J → CSR):
		// the invariant is that it drops only exact zeros and keeps every
		// surviving coupling bit-exact.
		c.Violations = verify.DenseEqual(verify.InvLosslessCompile,
			"EffectiveJ vs Tuned.J", m.Dspu.EffectiveJ(), m.Tuned.J)
		c.Detail = fmt.Sprintf("%d realized couplings compared (dense network realization)", m.Dspu.Net.J.NNZ())
		return c
	}
	if dropped := m.Machine.Stats().DroppedCouplings; dropped > 0 {
		c.Skipped = true
		c.Detail = fmt.Sprintf("%d couplings deliberately dropped (DS-GL-Spatial overflow); EffectiveJ == Tuned.J does not apply", dropped)
		return c
	}
	c.Violations = verify.LosslessCompilation(m.Machine, m.Tuned.J)
	c.Detail = fmt.Sprintf("%d realized couplings compared", m.Machine.Stats().IntraCouplings+m.Machine.Stats().InterCouplings)
	return c
}
