package dsgl

import (
	"math"
	"runtime"
	"testing"

	"dsgl/internal/metrics"
)

// tinyDataset keeps integration tests fast: a short series on a small
// graph.
func tinyDataset(t *testing.T, name string) *Dataset {
	t.Helper()
	return GenerateDataset(name, DatasetConfig{N: 16, T: 400, History: 4, Horizon: 1, Seed: 2})
}

func tinyOptions() Options {
	return Options{
		Density:    0.15,
		PECapacity: 24,
		MaxInferNs: 3000,
		Seed:       5,
	}
}

func TestTrainEndToEnd(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Tuned.Validate(); err != nil {
		t.Fatal(err)
	}
	if model.Assignment.NumPEs() < 2 {
		t.Fatalf("expected a multi-PE grid, got %d PEs", model.Assignment.NumPEs())
	}
	_, test := ds.Split()
	rep, err := model.Evaluate(test[:10])
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSE <= 0 || rep.RMSE > 0.5 {
		t.Fatalf("implausible RMSE %g", rep.RMSE)
	}
	if rep.MeanLatencyUs <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestModelBeatsMeanAndPersistence(t *testing.T) {
	// Longer series than tinyDataset: pm25 is persistent-diffusive, so the
	// persistence baseline is strong and the model needs enough training
	// windows for a robust margin. (The pm25/pm10 seed-collision fix
	// changed this dataset's realization; at T=400 the old margin was
	// luck-of-the-draw thin.)
	ds := GenerateDataset("pm25", DatasetConfig{N: 16, T: 800, History: 4, Horizon: 1, Seed: 2})
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	if len(test) > 25 {
		test = test[:25]
	}
	rep, err := model.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// Persistence baseline: repeat the last observed value.
	var persist metrics.Accumulator
	for _, w := range test {
		for _, idx := range ds.UnknownIndices() {
			node := (idx / ds.F) % ds.N
			last := w.Full[((ds.History-1)*ds.N+node)*ds.F]
			persist.Add(last, w.Full[idx])
		}
	}
	if rep.RMSE >= persist.RMSE() {
		t.Fatalf("DS-GL RMSE %g not better than persistence %g", rep.RMSE, persist.RMSE())
	}
}

func TestPredictAlignsWithEvaluate(t *testing.T) {
	ds := tinyDataset(t, "no2")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	p, err := model.Predict(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Values) != len(ds.UnknownIndices()) || len(p.Truth) != len(p.Values) {
		t.Fatalf("prediction sizes: %d values, %d truth", len(p.Values), len(p.Truth))
	}
	rep, err := model.Evaluate(test[:1])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.RMSE-metrics.RMSE(p.Values, p.Truth)) > 1e-12 {
		t.Fatal("Evaluate over one window must equal Predict's RMSE")
	}
}

func TestPredictRejectsWrongWindow(t *testing.T) {
	ds := tinyDataset(t, "no2")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Predict(Window{Full: make([]float64, 3)}); err == nil {
		t.Fatal("expected error for mis-sized window")
	}
}

func TestDeterministicPipeline(t *testing.T) {
	ds := tinyDataset(t, "stock")
	run := func() float64 {
		model, err := Train(ds, tinyOptions())
		if err != nil {
			t.Fatal(err)
		}
		_, test := ds.Split()
		rep, err := model.Evaluate(test[:5])
		if err != nil {
			t.Fatal(err)
		}
		return rep.RMSE
	}
	if run() != run() {
		t.Fatal("pipeline must be deterministic under a fixed seed")
	}
}

func TestDenseInitReuse(t *testing.T) {
	ds := tinyDataset(t, "covid")
	dense, err := TrainDense(ds, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := tinyOptions()
	opts.DenseInit = dense
	model, err := Train(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if model.Dense != dense {
		t.Fatal("DenseInit must be used as-is")
	}
	bad := tinyOptions()
	bad.DenseInit = dense
	dsBig := GenerateDataset("covid", DatasetConfig{N: 20, T: 400, History: 4, Horizon: 1})
	if _, err := Train(dsBig, bad); err == nil {
		t.Fatal("expected error for DenseInit dim mismatch")
	}
}

func TestMaskConfinement(t *testing.T) {
	ds := tinyDataset(t, "o3")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every non-zero coupling must respect the density budget.
	density := model.Tuned.J.Density(0)
	if density > model.Opts.Density+1e-9 {
		t.Fatalf("tuned density %g exceeds budget %g", density, model.Opts.Density)
	}
}

func TestSpatialVariantFasterButLossier(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	dense, err := TrainDense(ds, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:10]

	base := tinyOptions()
	base.DenseInit = dense
	base.Lanes = 4 // tight budget so the spatial variant must drop couplings
	full, err := Train(ds, base)
	if err != nil {
		t.Fatal(err)
	}
	spatialOpts := base
	spatialOpts.TemporalDisabled = true
	spatial, err := Train(ds, spatialOpts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Machine.Stats().Rounds <= 1 {
		t.Skip("system fit in one round; spatial/temporal identical")
	}
	repFull, err := full.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	repSpatial, err := spatial.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if repSpatial.MeanLatencyUs >= repFull.MeanLatencyUs {
		t.Fatalf("spatial latency %g should be below temporal %g",
			repSpatial.MeanLatencyUs, repFull.MeanLatencyUs)
	}
	if repSpatial.RMSE <= repFull.RMSE {
		t.Fatalf("spatial RMSE %g should be above temporal %g (accuracy traded for latency)",
			repSpatial.RMSE, repFull.RMSE)
	}
}

func TestPatternRichnessOrdering(t *testing.T) {
	ds := GenerateDataset("traffic", DatasetConfig{N: 24, T: 500, History: 4, Horizon: 1, Seed: 3})
	dense, err := TrainDense(ds, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:15]
	rmse := map[Pattern]float64{}
	for _, p := range []Pattern{Chain, DMesh} {
		model, err := Train(ds, Options{
			Pattern: p, Density: 0.03, PECapacity: 16, Wormholes: 1,
			DenseInit: dense, MaxInferNs: 3000, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := model.Evaluate(test)
		if err != nil {
			t.Fatal(err)
		}
		rmse[p] = rep.RMSE
	}
	if rmse[DMesh] > rmse[Chain]*1.02 {
		t.Fatalf("DMesh RMSE %g should not exceed Chain %g", rmse[DMesh], rmse[Chain])
	}
}

func TestNoiseRobustness(t *testing.T) {
	ds := tinyDataset(t, "no2")
	dense, err := TrainDense(ds, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:10]
	clean := tinyOptions()
	clean.DenseInit = dense
	cm, err := Train(ds, clean)
	if err != nil {
		t.Fatal(err)
	}
	noisy := clean
	noisy.NodeNoise, noisy.CouplerNoise = 0.05, 0.05
	nm, err := Train(ds, noisy)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := cm.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := nm.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if nr.RMSE > cr.RMSE*1.5 {
		t.Fatalf("5%% analog noise blew up RMSE: %g -> %g", cr.RMSE, nr.RMSE)
	}
}

func TestDenseInferMatchesPipelineRegime(t *testing.T) {
	ds := tinyDataset(t, "pm10")
	dense, err := TrainDense(ds, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	p, err := DenseInfer(ds, dense, test[0], 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Values) != len(ds.UnknownIndices()) {
		t.Fatalf("dense inference produced %d values", len(p.Values))
	}
	if metrics.RMSE(p.Values, p.Truth) > 0.5 {
		t.Fatalf("dense inference implausibly bad: %g", metrics.RMSE(p.Values, p.Truth))
	}
}

func TestEvaluateEmptyWindowsErrors(t *testing.T) {
	ds := tinyDataset(t, "no2")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Evaluate([]Window{}); err == nil {
		t.Fatal("expected error for empty window list")
	}
}

func TestAutoLambdaSelected(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lam := range []float64{0.03, 0.1, 0.3, 1, 3} {
		if model.Opts.RidgeLambda == lam {
			found = true
		}
	}
	if !found {
		t.Fatalf("auto lambda %g not from the candidate grid", model.Opts.RidgeLambda)
	}
}

// TestOptionsFillDefaults is the table test for every Options field's
// zero-value behaviour, including the negative sentinels (Wormholes,
// TrainEpochs, Workers) documented on the type.
func TestOptionsFillDefaults(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)
	for _, tc := range []struct {
		name string
		in   Options
		want Options
	}{
		{
			name: "all-defaults",
			in:   Options{},
			want: Options{
				Backend: BackendScalable, Pattern: Chain, Density: 0.10,
				Wormholes: 4, PECapacity: 48,
				Lanes: 30, TrainEpochs: -1, SyncIntervalNs: 200,
				MaxInferNs: 10000, Workers: maxProcs,
			},
		},
		{
			name: "explicit-values-kept",
			in: Options{
				Pattern: DMesh, Density: 0.25, Wormholes: 2, PECapacity: 16,
				Lanes: 6, TemporalDisabled: true, RidgeLambda: 0.3,
				TrainEpochs: 5, FineTuneEpochs: 3, SyncIntervalNs: 50,
				MaxInferNs: 500, NodeNoise: 0.1, CouplerNoise: 0.2,
				Workers: 3, Seed: 11,
			},
			want: Options{
				Backend: BackendScalable, Pattern: DMesh, Density: 0.25,
				Wormholes: 2, PECapacity: 16,
				Lanes: 6, TemporalDisabled: true, RidgeLambda: 0.3,
				TrainEpochs: 5, FineTuneEpochs: 3, SyncIntervalNs: 50,
				MaxInferNs: 500, NodeNoise: 0.1, CouplerNoise: 0.2,
				Workers: 3, Seed: 11,
			},
		},
		{
			name: "negative-sentinels",
			in:   Options{Wormholes: -1, TrainEpochs: -7, Workers: -1},
			want: Options{
				Backend: BackendScalable, Pattern: Chain, Density: 0.10,
				Wormholes: -1, PECapacity: 48,
				Lanes: 30, TrainEpochs: -7, SyncIntervalNs: 200,
				MaxInferNs: 10000, Workers: 1,
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in
			got.fillDefaults()
			if got != tc.want {
				t.Fatalf("fillDefaults:\n got  %+v\n want %+v", got, tc.want)
			}
		})
	}
}

// TestEvaluateParallelBitIdentical is the top-level determinism contract:
// EvaluateParallel must reproduce Evaluate's report exactly — RMSE, MAE,
// mean latency — for any worker count, because both seed window i with
// machineSeed + i and accumulate metrics in window order.
func TestEvaluateParallelBitIdentical(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	model, err := Train(ds, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	test = test[:12]
	ref, err := model.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8, 0} {
		par, err := model.EvaluateParallel(test, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.RMSE != ref.RMSE || par.MAE != ref.MAE ||
			par.MeanLatencyUs != ref.MeanLatencyUs || par.Windows != ref.Windows {
			t.Fatalf("workers=%d: parallel report %+v != sequential %+v",
				workers, par, ref)
		}
	}
}

// TestValidationCountPinsSplit pins the lambda-selection validation split
// to the documented "last 15%" (floor), computed in exact integer
// arithmetic as n*3/20. The table includes n=20, where the old len/7 code
// path gave 2 windows and a float round-trip int(20*0.15) also gives 2 —
// both wrong against the documented 3.
func TestValidationCountPinsSplit(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {6, 0}, {7, 1}, {13, 1}, {19, 2},
		{20, 3}, {27, 4}, {40, 6}, {100, 15}, {133, 19}, {340, 51},
	}
	for _, tc := range cases {
		if got := validationCount(tc.n); got != tc.want {
			t.Errorf("validationCount(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// The reconciliation is observable: the old code's n/7 disagrees.
	if old, now := 20/7, validationCount(20); old == now {
		t.Fatal("test premise broken: n=20 no longer distinguishes n/7 from 15%")
	}
}

// TestTrainDenseRejectsMalformedDataset pins the TrainDense admission
// check: before the fix TrainDense skipped the ds.Validate() call Train
// performs, so a malformed dataset panicked deep inside Split/ridge
// instead of returning an error.
func TestTrainDenseRejectsMalformedDataset(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	ds.X = ds.X[:len(ds.X)-3] // truncated series: Validate must catch this
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("TrainDense panicked on a malformed dataset: %v", r)
		}
	}()
	if _, err := TrainDense(ds, Options{Seed: 5}); err == nil {
		t.Fatal("TrainDense accepted a dataset with a truncated series")
	}
	// Same malformed input through Train, as the reference behaviour the
	// fix aligns TrainDense with.
	if _, err := Train(ds, tinyOptions()); err == nil {
		t.Fatal("Train accepted a dataset with a truncated series")
	}
}

// TestDenseInferRejectsMismatchedWindow pins the DenseInfer geometry
// check: a window shorter or longer than the parameter dimension must be
// rejected up front (before the fix a short window panicked indexing
// w.Full and a long one silently clamped garbage).
func TestDenseInferRejectsMismatchedWindow(t *testing.T) {
	ds := tinyDataset(t, "traffic")
	dense, err := TrainDense(ds, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, test := ds.Split()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("DenseInfer panicked on a mismatched window: %v", r)
		}
	}()
	short := Window{Full: test[0].Full[:len(test[0].Full)-1]}
	if _, err := DenseInfer(ds, dense, short, 9); err == nil {
		t.Fatal("DenseInfer accepted a short window")
	}
	long := Window{Full: append(append([]float64(nil), test[0].Full...), 0)}
	if _, err := DenseInfer(ds, dense, long, 9); err == nil {
		t.Fatal("DenseInfer accepted a long window")
	}
	// The matched window still works.
	if _, err := DenseInfer(ds, dense, test[0], 9); err != nil {
		t.Fatalf("DenseInfer rejected a well-formed window: %v", err)
	}
}
