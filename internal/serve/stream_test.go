package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postStream is the shared JSON round trip for /v1/stream tests.
func postStream(t *testing.T, url string, req StreamRequest) (int, StreamResponse, string) {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/stream", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var out StreamResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decode stream response: %v (%s)", err, buf.Bytes())
		}
	}
	return resp.StatusCode, out, buf.String()
}

// TestStreamHTTPEndToEnd drives a full session over HTTP: open (cold first
// tick), warm ticks with the session id, close. Warm ticks must echo the
// session, advance the tick counter and the seed, and flag themselves warm.
func TestStreamHTTPEndToEnd(t *testing.T) {
	m := testModel(t)
	s := New(testRegistry(t), Config{BatchWindow: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	_, test := m.Dataset.Split()
	base := m.Engine().BaseSeed()

	code, open, body := postStream(t, srv.URL, StreamRequest{Model: "traffic", Window: test[0].Full})
	if code != http.StatusOK {
		t.Fatalf("open status %d: %s", code, body)
	}
	if open.Session == "" || open.Tick != 0 || open.Warm || open.Seed != base {
		t.Fatalf("bad open response: %+v", open)
	}
	if len(open.Values) != len(open.Indices) || len(open.Indices) != len(m.Dataset.UnknownIndices()) {
		t.Fatalf("open predicted %d values over %d indices", len(open.Values), len(open.Indices))
	}
	if got := s.StreamCount(); got != 1 {
		t.Fatalf("StreamCount=%d after open", got)
	}

	for i := 1; i <= 3; i++ {
		code, tick, body := postStream(t, srv.URL, StreamRequest{Session: open.Session, Window: test[i].Full})
		if code != http.StatusOK {
			t.Fatalf("tick %d status %d: %s", i, code, body)
		}
		if tick.Session != open.Session || tick.Tick != uint64(i) || !tick.Warm {
			t.Fatalf("tick %d response: %+v", i, tick)
		}
		if tick.Seed != base+uint64(i) {
			t.Fatalf("tick %d seeded %d, want %d", i, tick.Seed, base+uint64(i))
		}
		for k, v := range tick.Values {
			if math.IsNaN(v) {
				t.Fatalf("tick %d value %d is NaN", i, k)
			}
		}
	}

	code, closed, body := postStream(t, srv.URL, StreamRequest{Session: open.Session, Close: true})
	if code != http.StatusOK || !closed.Closed || closed.Tick != 4 {
		t.Fatalf("close status %d: %+v (%s)", code, closed, body)
	}
	if got := s.StreamCount(); got != 0 {
		t.Fatalf("StreamCount=%d after close", got)
	}
	if code, _, _ := postStream(t, srv.URL, StreamRequest{Session: open.Session, Window: test[4].Full}); code != http.StatusNotFound {
		t.Fatalf("tick on a closed session: status %d, want 404", code)
	}
}

// TestStreamHTTPErrors walks the endpoint's refusal paths, including the
// no-leak guarantee: an open whose first tick fails must not leave a
// session behind.
func TestStreamHTTPErrors(t *testing.T) {
	m := testModel(t)
	s := New(testRegistry(t), Config{BatchWindow: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	_, test := m.Dataset.Split()

	if resp, err := http.Get(srv.URL + "/v1/stream"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
	for _, tc := range []struct {
		name string
		req  StreamRequest
		code int
	}{
		{"unknown model", StreamRequest{Model: "nope", Window: test[0].Full}, http.StatusNotFound},
		{"no clamps on open", StreamRequest{Model: "traffic"}, http.StatusBadRequest},
		{"short window on open", StreamRequest{Model: "traffic", Window: []float64{1, 2}}, http.StatusBadRequest},
		{"unknown session", StreamRequest{Session: "st-404", Window: test[0].Full}, http.StatusNotFound},
		{"close without session", StreamRequest{Close: true}, http.StatusBadRequest},
		{"close unknown session", StreamRequest{Session: "st-404", Close: true}, http.StatusNotFound},
	} {
		if code, _, body := postStream(t, srv.URL, tc.req); code != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, code, tc.code, body)
		}
	}
	if got := s.StreamCount(); got != 0 {
		t.Fatalf("failed opens leaked %d sessions", got)
	}

	// A live session refuses ticks naming a different model.
	code, open, body := postStream(t, srv.URL, StreamRequest{Model: "traffic", Window: test[0].Full})
	if code != http.StatusOK {
		t.Fatalf("open status %d: %s", code, body)
	}
	if code, _, _ := postStream(t, srv.URL, StreamRequest{Model: "other", Session: open.Session, Window: test[1].Full}); code != http.StatusBadRequest {
		t.Fatalf("model mismatch: status %d, want 400", code)
	}
}

// TestStreamSessionLimitAndTTL pins both session bounds: the MaxStreams cap
// refuses further opens with 503, and a session idle past StreamTTL is
// swept by the next stream request.
func TestStreamSessionLimitAndTTL(t *testing.T) {
	m := testModel(t)
	s := New(testRegistry(t), Config{BatchWindow: -1, MaxStreams: 1, StreamTTL: 30 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	_, test := m.Dataset.Split()

	code, open, body := postStream(t, srv.URL, StreamRequest{Model: "traffic", Window: test[0].Full})
	if code != http.StatusOK {
		t.Fatalf("open status %d: %s", code, body)
	}
	if code, _, body := postStream(t, srv.URL, StreamRequest{Model: "traffic", Window: test[0].Full}); code != http.StatusServiceUnavailable {
		t.Fatalf("open past MaxStreams: status %d, want 503 (%s)", code, body)
	}

	// Let the session go idle past the TTL; the next request sweeps it,
	// freeing its slot for a new open.
	time.Sleep(60 * time.Millisecond)
	code, open2, body := postStream(t, srv.URL, StreamRequest{Model: "traffic", Window: test[0].Full})
	if code != http.StatusOK {
		t.Fatalf("open after TTL sweep: status %d (%s)", code, body)
	}
	if open2.Session == open.Session {
		t.Fatalf("swept session id %q reused", open.Session)
	}
	if code, _, _ := postStream(t, srv.URL, StreamRequest{Session: open.Session, Window: test[1].Full}); code != http.StatusNotFound {
		t.Fatalf("tick on an expired session: status %d, want 404", code)
	}
	if got := s.StreamCount(); got != 1 {
		t.Fatalf("StreamCount=%d, want 1 (old evicted, new live)", got)
	}
}

// TestStreamDrainClosesSessions checks the drain contract for streams: open
// sessions are closed (their state returns to the engine pool) and stream
// requests during the drain get 503.
func TestStreamDrainClosesSessions(t *testing.T) {
	m := testModel(t)
	s := New(testRegistry(t), Config{BatchWindow: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	_, test := m.Dataset.Split()

	code, open, body := postStream(t, srv.URL, StreamRequest{Model: "traffic", Window: test[0].Full})
	if code != http.StatusOK {
		t.Fatalf("open status %d: %s", code, body)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.StreamCount(); got != 0 {
		t.Fatalf("drain left %d sessions open", got)
	}
	if code, _, _ := postStream(t, srv.URL, StreamRequest{Session: open.Session, Window: test[1].Full}); code != http.StatusServiceUnavailable {
		t.Fatalf("stream tick during drain: status %d, want 503", code)
	}
}

// TestRunLoadOffersConfiguredRate is the pacing regression: the generator
// used to sleep each Pareto gap *after* the per-request spawn work, so
// spawn overhead and timer slack accumulated and the campaign silently
// under-offered (119.7 achieved of 150 offered with nothing shed). With
// the absolute arrival schedule the sent count must track offered QPS ×
// duration closely even at low rates, where long gaps maximize timer
// slack.
func TestRunLoadOffersConfiguredRate(t *testing.T) {
	s := New(testRegistry(t), Config{BatchWindow: 2 * time.Millisecond, MaxBatch: 16})
	cfg := LoadConfig{Model: "traffic", QPS: 150, Duration: 400 * time.Millisecond, Alpha: 3, Seed: 7}
	rep, err := RunLoad(s, cfg)
	if err != nil {
		t.Fatalf("run load: %v", err)
	}
	offered := cfg.QPS * cfg.Duration.Seconds()
	if low := 0.85 * offered; float64(rep.Sent) < low {
		t.Fatalf("sent %d of ~%.0f scheduled arrivals — generator is under-offering again", rep.Sent, offered)
	}
	if high := 1.35 * offered; float64(rep.Sent) > high {
		t.Fatalf("sent %d of ~%.0f scheduled arrivals — generator is over-offering", rep.Sent, offered)
	}
	// With nothing shed, achieved throughput over the send window must sit
	// near the offered rate instead of being diluted by the tail drain.
	if rep.Shed == 0 && rep.Errors == 0 && rep.Achieved < 0.85*cfg.QPS {
		t.Fatalf("achieved %.1f qps of %g offered with nothing shed", rep.Achieved, cfg.QPS)
	}
}
