package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dsgl"
	"dsgl/internal/engine"
	"dsgl/internal/obs"
	"dsgl/internal/obs/obshttp"
)

// Config tunes the serving layer. The zero value is a working default for
// every field.
type Config struct {
	// BatchWindow is the coalescing window: the first request of a batch
	// group waits at most this long for clamp-mask-compatible company
	// before annealing. 0 selects 2ms; negative disables batching (every
	// request runs solo, still through admission and the queue bound).
	BatchWindow time.Duration
	// MaxBatch flushes a group as soon as it holds this many requests.
	// 0 selects 32.
	MaxBatch int
	// MaxQueue bounds the total requests pending across all batch groups;
	// beyond it requests are shed with 503. 0 selects 1024.
	MaxQueue int
	// RatePerSec is the per-tenant token-bucket refill rate; requests
	// beyond it are shed with 429. 0 disables rate limiting.
	RatePerSec float64
	// Burst is the per-tenant bucket capacity; 0 selects max(1, RatePerSec).
	Burst float64
	// Workers sizes the engine worker pool a coalesced batch fans out
	// over. 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// DrainTimeout bounds Drain's wait for in-flight requests. 0 selects
	// 10s.
	DrainTimeout time.Duration
	// StreamTTL evicts /v1/stream sessions idle longer than this (sweep is
	// lazy, on stream traffic). 0 selects 60s.
	StreamTTL time.Duration
	// MaxStreams bounds concurrently open /v1/stream sessions; beyond it
	// (after expiring idle ones) opens are refused with 503. 0 selects 256.
	MaxStreams int
}

func (c *Config) fillDefaults() {
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.StreamTTL <= 0 {
		c.StreamTTL = 60 * time.Second
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 256
	}
}

// Server is the HTTP/JSON inference service. Construct with New, mount
// Handler (or Start a listener), and Drain on shutdown.
type Server struct {
	models *Registry
	cfg    Config
	m      *serveObs

	limiter *tenantLimiter
	mux     *http.ServeMux

	// Drain protocol: draining flips first (new inference requests are
	// refused with 503 while /metrics and /healthz stay served), then
	// queued batches are force-flushed, then inflight is awaited, and only
	// then does the HTTP server itself close. beginRequest's Add runs
	// under drainMu.RLock with a draining check, so no Add can race
	// Drain's Wait.
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup

	// Batch groups. queued is the total pending across groups, bounded by
	// cfg.MaxQueue (guarded by groupMu).
	groupMu sync.Mutex
	groups  map[string]*batchGroup
	queued  int

	// Streaming sessions (stream.go), keyed by session id; streamSeq mints
	// ids. Guarded by streamMu.
	streamMu  sync.Mutex
	streams   map[string]*streamSession
	streamSeq uint64

	httpSrv *http.Server
	ln      net.Listener
}

// New builds a Server over the registry's models. Observability binds to
// the current default obs registry (enable metrics before constructing).
func New(models *Registry, cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		models:  models,
		cfg:     cfg,
		m:       newServeObs(obs.Default()),
		limiter: newTenantLimiter(cfg.RatePerSec, cfg.Burst),
		groups:  make(map[string]*batchGroup),
		streams: make(map[string]*streamSession),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/evict", s.handleEvict)
	mux.HandleFunc("/v1/example", s.handleExample)
	mux.HandleFunc("/healthz", s.handleHealthz)
	// Observability endpoints ride on the same mux; they keep answering
	// through the drain (only the final listener close stops them).
	obsh := obshttp.Handler(obs.Default())
	mux.Handle("/metrics", obsh)
	mux.Handle("/metricsz", obsh)
	mux.Handle("/debug/pprof/", obsh)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler (inference API + obs
// endpoints). Useful for tests and embedding; daemons use Start.
func (s *Server) Handler() http.Handler { return s.mux }

// QueueDepth reports the requests currently pending across batch groups.
func (s *Server) QueueDepth() int {
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	return s.queued
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Start listens on addr and serves in a background goroutine, returning
// the bound address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Drain gracefully shuts the server down: stop admitting inference
// requests (503), force-flush every queued batch, wait for in-flight
// requests to finish (bounded by Config.DrainTimeout), then close the
// HTTP server — observability endpoints included, which therefore outlive
// the last inference response. Returns an error only when in-flight work
// failed to finish inside the timeout; requests admitted before Drain are
// never dropped.
func (s *Server) Drain() error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()

	// Flush queued batches now rather than letting their windows expire —
	// the in-flight handlers parked on those batches unblock immediately.
	s.flushAll()

	// Close every streaming session: the drain gate already refuses new
	// stream ticks, and closeAllStreams serializes on each session's mutex,
	// so in-flight ticks finish before their state returns to the pool.
	s.closeAllStreams()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		drainErr = fmt.Errorf("serve: drain timed out after %v with requests still in flight", s.cfg.DrainTimeout)
	}
	if s.httpSrv != nil {
		_ = s.httpSrv.Close()
	}
	return drainErr
}

// beginRequest registers one in-flight request unless the server is
// draining. The draining check and the WaitGroup Add share drainMu so
// Drain's Wait can never race a late Add.
func (s *Server) beginRequest() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	s.m.inflight.Add(1)
	return true
}

func (s *Server) endRequest() {
	s.m.inflight.Add(-1)
	s.inflight.Done()
}

// Observation is the explicit-clamp form of a request: clamp node Index to
// Value.
type Observation struct {
	Index int     `json:"index"`
	Value float64 `json:"value"`
}

// InferRequest is the POST /v1/infer body. Exactly one of Window and
// Observations must be set.
type InferRequest struct {
	// Model names the registry entry to serve from.
	Model string `json:"model"`
	// Window is the full window vector in the model dataset's layout;
	// entries the dataset marks observed are clamped, the rest predicted.
	Window []float64 `json:"window,omitempty"`
	// Observations is the explicit clamp list (arbitrary patterns; requests
	// sharing a pattern coalesce into one batch).
	Observations []Observation `json:"observations,omitempty"`
	// Seed is the anneal seed; omitted selects the model's base seed.
	// Identical (model, clamps, seed) requests produce bit-identical
	// responses, batched or solo.
	Seed *uint64 `json:"seed,omitempty"`
	// Tenant attributes the request for rate limiting; empty is the
	// anonymous shared tenant.
	Tenant string `json:"tenant,omitempty"`
}

// InferResponse is the POST /v1/infer reply.
type InferResponse struct {
	Model string `json:"model"`
	// Indices are the predicted (free) node indices; Values their annealed
	// voltages, aligned.
	Indices []int     `json:"indices"`
	Values  []float64 `json:"values"`
	// LatencyUs is the simulated anneal latency in microseconds.
	LatencyUs float64 `json:"latency_us"`
	Settled   bool    `json:"settled"`
	// Seed is the anneal seed actually used (echoed for reproducibility).
	Seed uint64 `json:"seed"`
	// BatchSize is how many requests shared this request's engine call
	// (1 = solo).
	BatchSize int `json:"batch_size"`
}

// maxRequestBody bounds a decoded request body (a 1M-node window of JSON
// floats fits comfortably).
const maxRequestBody = 64 << 20

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.beginRequest() {
		s.m.draining.Inc()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.endRequest()
	start := time.Now()

	var req InferRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		s.m.badRequest.Inc()
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	entry, ok := s.models.Get(req.Model)
	if !ok {
		s.m.badRequest.Inc()
		httpError(w, http.StatusNotFound, "unknown model %q (loaded: %s)", req.Model, strings.Join(s.models.Names(), ", "))
		return
	}
	if !s.limiter.allow(req.Tenant, time.Now()) {
		s.m.rateLimited.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant %q over rate limit", req.Tenant)
		return
	}
	obsList, indices, err := buildObservations(entry, &req)
	if err != nil {
		s.m.badRequest.Inc()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng := entry.Model.Engine()
	// Full observation validation (range, rails, duplicates) up front, so a
	// bad request can never poison the batch it would have ridden in; this
	// also warms the clamp plan for the request's group.
	if err := eng.EnsurePlan(obsList); err != nil {
		s.m.badRequest.Inc()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	seed := eng.BaseSeed()
	if req.Seed != nil {
		seed = *req.Seed
	}

	out := s.enqueue(groupKey(entry.Name, obsList, entry.Dim), entry, obsList, seed)
	if out.err != nil {
		if errors.Is(out.err, errQueueFull) {
			s.m.queueFull.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "queue full")
			return
		}
		httpError(w, http.StatusInternalServerError, "inference failed: %v", out.err)
		return
	}

	resp := &InferResponse{
		Model:     entry.Name,
		Indices:   indices,
		Values:    make([]float64, len(indices)),
		LatencyUs: out.res.LatencyNs / 1000,
		Settled:   out.res.Settled,
		Seed:      seed,
		BatchSize: out.batchSize,
	}
	for k, idx := range indices {
		resp.Values[k] = out.res.Voltage[idx]
	}
	s.m.admitted.Inc()
	s.m.requestLatency(entry.Name).Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

// buildObservations turns a request into the engine clamp list plus the
// free (predicted) indices the response reports.
func buildObservations(entry *ModelEntry, req *InferRequest) ([]engine.Observation, []int, error) {
	hasWindow := len(req.Window) > 0
	hasObs := len(req.Observations) > 0
	if hasWindow == hasObs {
		return nil, nil, errors.New("serve: exactly one of window and observations must be set")
	}
	if hasWindow {
		obsList, err := entry.Model.WindowObservations(dsgl.Window{Full: req.Window})
		if err != nil {
			return nil, nil, err
		}
		return obsList, entry.Model.Dataset.UnknownIndices(), nil
	}
	obsList := make([]engine.Observation, len(req.Observations))
	seen := make([]bool, entry.Dim)
	for i, o := range req.Observations {
		if o.Index < 0 || o.Index >= entry.Dim {
			return nil, nil, fmt.Errorf("serve: observation index %d out of range [0,%d)", o.Index, entry.Dim)
		}
		if seen[o.Index] {
			return nil, nil, fmt.Errorf("serve: duplicate observation for node %d", o.Index)
		}
		seen[o.Index] = true
		obsList[i] = engine.Observation{Index: o.Index, Value: o.Value}
	}
	indices := make([]int, 0, entry.Dim-len(obsList))
	for i, s := range seen {
		if !s {
			indices = append(indices, i)
		}
	}
	return obsList, indices, nil
}

// modelInfo is one entry of the GET /v1/models listing.
type modelInfo struct {
	Name      string `json:"name"`
	Backend   string `json:"backend"`
	Dim       int    `json:"dim"`
	PlanHits  uint64 `json:"plan_cache_hits"`
	PlanMiss  uint64 `json:"plan_cache_misses"`
	QueueOnly bool   `json:"-"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	names := s.models.Names()
	out := make([]modelInfo, 0, len(names))
	for _, name := range names {
		e, ok := s.models.Get(name)
		if !ok {
			continue
		}
		hits, misses := e.Model.PlanCacheStats()
		out = append(out, modelInfo{Name: e.Name, Backend: e.Backend, Dim: e.Dim, PlanHits: hits, PlanMiss: misses})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	name := r.URL.Query().Get("model")
	if name == "" {
		httpError(w, http.StatusBadRequest, "missing ?model=")
		return
	}
	if !s.models.Evict(name) {
		httpError(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": name})
}

// handleExample returns a ready-to-POST InferRequest for the named model,
// built from the first window of its dataset's test split — the curl-able
// entry point of the README quickstart and the CI smoke.
func (s *Server) handleExample(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("model")
	if name == "" {
		if names := s.models.Names(); len(names) > 0 {
			name = names[0]
		}
	}
	entry, ok := s.models.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown model %q", name)
		return
	}
	_, test := entry.Model.Dataset.Split()
	if len(test) == 0 {
		httpError(w, http.StatusInternalServerError, "model %q has no test windows", name)
		return
	}
	writeJSON(w, http.StatusOK, &InferRequest{Model: name, Window: test[0].Full})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok (%d models)\n", s.models.Len())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
