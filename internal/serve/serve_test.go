package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dsgl"
	"dsgl/internal/engine"
)

// testModel trains one tiny scalable model, shared across the suite (the
// serving layer never mutates a registered model, so sharing is safe under
// -race -shuffle=on).
var (
	modelOnce sync.Once
	model     *dsgl.Model
	modelErr  error
)

func testModel(t *testing.T) *dsgl.Model {
	t.Helper()
	modelOnce.Do(func() {
		ds := dsgl.GenerateDataset("traffic", dsgl.DatasetConfig{N: 16, T: 400, History: 4, Horizon: 1, Seed: 2})
		model, modelErr = dsgl.Train(ds, dsgl.Options{Density: 0.15, PECapacity: 24, MaxInferNs: 3000, Seed: 5})
	})
	if modelErr != nil {
		t.Fatalf("training test model: %v", modelErr)
	}
	return model
}

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.Register("traffic", testModel(t)); err != nil {
		t.Fatalf("register: %v", err)
	}
	return reg
}

func testObs(t *testing.T, m *dsgl.Model) []engine.Observation {
	t.Helper()
	_, test := m.Dataset.Split()
	obsList, err := m.WindowObservations(test[0])
	if err != nil {
		t.Fatalf("window observations: %v", err)
	}
	return obsList
}

// TestBatchingDeterminism pins the serving determinism contract: requests
// coalesced into one engine call return voltages bit-identical to the same
// requests served solo.
func TestBatchingDeterminism(t *testing.T) {
	m := testModel(t)
	obsList := testObs(t, m)
	const n = 6
	s := New(testRegistry(t), Config{BatchWindow: time.Minute, MaxBatch: n, Workers: 3})
	entry, _ := s.models.Get("traffic")

	// n concurrent requests with the same clamp mask but distinct,
	// non-contiguous seeds; the nth arrival fills the batch and flushes.
	outs := make([]execResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := uint64(9000 - 31*i)
			outs[i] = s.enqueue(groupKey("traffic", obsList, entry.Dim), entry, obsList, seed)
		}(i)
	}
	wg.Wait()

	eng := m.Engine()
	for i := 0; i < n; i++ {
		if outs[i].err != nil {
			t.Fatalf("request %d: %v", i, outs[i].err)
		}
		if outs[i].batchSize != n {
			t.Fatalf("request %d rode batch of %d, want %d (coalescing failed)", i, outs[i].batchSize, n)
		}
		solo, err := eng.InferSeeded(obsList, uint64(9000-31*i))
		if err != nil {
			t.Fatalf("solo request %d: %v", i, err)
		}
		for k := range solo.Voltage {
			if math.Float64bits(outs[i].res.Voltage[k]) != math.Float64bits(solo.Voltage[k]) {
				t.Fatalf("request %d node %d: batched %g != solo %g (bit mismatch)",
					i, k, outs[i].res.Voltage[k], solo.Voltage[k])
			}
		}
	}
}

// TestDrainNoDroppedRequests checks the graceful-drain contract: every
// request admitted before Drain is answered, and requests arriving during
// the drain are refused.
func TestDrainNoDroppedRequests(t *testing.T) {
	m := testModel(t)
	obsList := testObs(t, m)
	// A batch window far longer than the test: without the drain's force
	// flush these requests would time the test out.
	s := New(testRegistry(t), Config{BatchWindow: time.Hour, MaxBatch: 100, DrainTimeout: 30 * time.Second})
	entry, _ := s.models.Get("traffic")

	const n = 4
	outs := make([]loadResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = s.do(entry, obsList, uint64(100+i), "")
		}(i)
	}
	// Wait until all n are parked in the batch group, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for s.QueueDepth() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want %d", s.QueueDepth(), n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, out := range outs {
		if out.err != nil {
			t.Fatalf("request %d dropped during drain: %v", i, out.err)
		}
	}
	if out := s.do(entry, obsList, 1, ""); out.err == nil || !out.shed {
		t.Fatalf("request after drain: got %+v, want draining shed", out)
	}
	if !s.Draining() {
		t.Fatal("server not marked draining")
	}
}

// TestQueueFullShedding checks the bounded-queue admission path: once
// MaxQueue requests are parked, further arrivals shed immediately with
// errQueueFull instead of blocking.
func TestQueueFullShedding(t *testing.T) {
	m := testModel(t)
	obsList := testObs(t, m)
	s := New(testRegistry(t), Config{BatchWindow: time.Hour, MaxBatch: 100, MaxQueue: 2, DrainTimeout: 30 * time.Second})
	entry, _ := s.models.Get("traffic")

	var wg sync.WaitGroup
	outs := make([]loadResult, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = s.do(entry, obsList, uint64(i), "")
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.QueueDepth() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want 2", s.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	out := s.do(entry, obsList, 99, "")
	if out.err != errQueueFull || !out.shed {
		t.Fatalf("overflow request: got %+v, want queue-full shed", out)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("parked request %d: %v", i, o.err)
		}
	}
}

// TestRateLimitShedding checks per-tenant token-bucket shedding end to end
// (batching disabled so requests complete inline).
func TestRateLimitShedding(t *testing.T) {
	m := testModel(t)
	obsList := testObs(t, m)
	s := New(testRegistry(t), Config{BatchWindow: -1, RatePerSec: 0.001, Burst: 2})
	entry, _ := s.models.Get("traffic")

	for i := 0; i < 2; i++ {
		if out := s.do(entry, obsList, uint64(i), "alice"); out.err != nil {
			t.Fatalf("request %d inside burst: %v", i, out.err)
		}
	}
	if out := s.do(entry, obsList, 3, "alice"); out.err != errRateLimited {
		t.Fatalf("request over burst: got %+v, want rate-limit shed", out)
	}
	// Tenants are isolated: bob's bucket is untouched by alice's burn.
	if out := s.do(entry, obsList, 4, "bob"); out.err != nil {
		t.Fatalf("other tenant: %v", out.err)
	}
}

// TestTenantLimiter unit-tests the token bucket with injected time.
func TestTenantLimiter(t *testing.T) {
	if newTenantLimiter(0, 10) != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
	var nilLim *tenantLimiter
	if !nilLim.allow("anyone", time.Time{}) {
		t.Fatal("nil limiter must admit everything")
	}

	now := time.Unix(1000, 0)
	l := newTenantLimiter(2, 2) // 2 rps, burst 2
	for i := 0; i < 2; i++ {
		if !l.allow("a", now) {
			t.Fatalf("burst request %d refused", i)
		}
	}
	if l.allow("a", now) {
		t.Fatal("request over burst admitted")
	}
	// Half a second refills one token.
	now = now.Add(500 * time.Millisecond)
	if !l.allow("a", now) {
		t.Fatal("refilled token refused")
	}
	if l.allow("a", now) {
		t.Fatal("second request after single refill admitted")
	}
	// Refill never exceeds burst.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if !l.allow("a", now) {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if l.allow("a", now) {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

// TestRegistryLoadEvict checks snapshot loading, warmup, replacement, and
// eviction. Warmup is asserted via PlanCacheStats: registration itself
// compiles the dataset clamp plan, so a model's first inference is a cache
// hit.
func TestRegistryLoadEvict(t *testing.T) {
	ds := dsgl.GenerateDataset("covid", dsgl.DatasetConfig{N: 16, T: 400, History: 4, Horizon: 1, Seed: 3})
	m, err := dsgl.Train(ds, dsgl.Options{Density: 0.15, PECapacity: 24, MaxInferNs: 3000, Seed: 5})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	path := filepath.Join(t.TempDir(), "covid.dsgl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatalf("save: %v", err)
	}
	f.Close()

	reg := NewRegistry()
	entry, err := reg.LoadSnapshot("covid", path, ds)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	if entry.Dim != ds.WindowLen() {
		t.Fatalf("entry dim %d, want %d", entry.Dim, ds.WindowLen())
	}
	hits0, misses0 := entry.Model.PlanCacheStats()
	if misses0 == 0 {
		t.Fatal("registration did not warm the plan cache (no compile recorded)")
	}
	// A served inference on the dataset pattern must hit the warmed plan.
	_, test := ds.Split()
	obsList, err := entry.Model.WindowObservations(test[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := entry.Model.Engine().Infer(obsList); err != nil {
		t.Fatalf("infer: %v", err)
	}
	hits1, misses1 := entry.Model.PlanCacheStats()
	if hits1 <= hits0 {
		t.Fatalf("warmed inference did not hit the plan cache (hits %d -> %d)", hits0, hits1)
	}
	if misses1 != misses0 {
		t.Fatalf("warmed inference recompiled the plan (misses %d -> %d)", misses0, misses1)
	}

	// Replacement and eviction.
	if _, err := reg.Register("covid", entry.Model); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if got := reg.Names(); len(got) != 1 || got[0] != "covid" {
		t.Fatalf("names after replace: %v", got)
	}
	if !reg.Evict("covid") {
		t.Fatal("evict known model failed")
	}
	if reg.Evict("covid") {
		t.Fatal("evicting twice reported success")
	}
	if reg.Len() != 0 {
		t.Fatalf("registry length %d after evict", reg.Len())
	}

	// Invalid names.
	if _, err := reg.Register("", entry.Model); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := reg.Register("bad\x00name", entry.Model); err == nil {
		t.Fatal("NUL name accepted")
	}
}

// TestHTTPEndToEnd exercises the JSON surface: example -> infer round trip,
// model listing, obs mounts, health, shedding status codes, and seed echo.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(testRegistry(t), Config{BatchWindow: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Ready-to-POST example request.
	resp, err := http.Get(srv.URL + "/v1/example?model=traffic")
	if err != nil {
		t.Fatal(err)
	}
	var req InferRequest
	if err := json.NewDecoder(resp.Body).Decode(&req); err != nil {
		t.Fatalf("decode example: %v", err)
	}
	resp.Body.Close()
	if req.Model != "traffic" || len(req.Window) == 0 {
		t.Fatalf("bad example request: %+v", req)
	}

	post := func(body any) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+"/v1/infer", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp2, body := post(req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp2.StatusCode, body)
	}
	var out InferResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.BatchSize != 1 || len(out.Indices) == 0 || len(out.Values) != len(out.Indices) {
		t.Fatalf("bad infer response: %+v", out)
	}
	if out.Seed != testModel(t).Engine().BaseSeed() {
		t.Fatalf("seed echo %d, want model base seed", out.Seed)
	}

	// Explicit seed round-trips and changes nothing else.
	seed := uint64(424242)
	req.Seed = &seed
	if resp3, body3 := post(req); resp3.StatusCode != http.StatusOK {
		t.Fatalf("seeded infer status %d: %s", resp3.StatusCode, body3)
	} else {
		var out3 InferResponse
		if err := json.Unmarshal(body3, &out3); err != nil {
			t.Fatal(err)
		}
		if out3.Seed != seed {
			t.Fatalf("seed echo %d, want %d", out3.Seed, seed)
		}
	}

	// Explicit-observations form.
	obsReq := InferRequest{Model: "traffic", Observations: []Observation{{Index: 0, Value: 0.5}, {Index: 3, Value: -0.25}}}
	if resp4, body4 := post(obsReq); resp4.StatusCode != http.StatusOK {
		t.Fatalf("observations infer status %d: %s", resp4.StatusCode, body4)
	}

	// Error paths.
	for _, tc := range []struct {
		name string
		req  InferRequest
		code int
	}{
		{"unknown model", InferRequest{Model: "nope", Window: req.Window}, http.StatusNotFound},
		{"no clamps", InferRequest{Model: "traffic"}, http.StatusBadRequest},
		{"both forms", InferRequest{Model: "traffic", Window: req.Window, Observations: obsReq.Observations}, http.StatusBadRequest},
		{"short window", InferRequest{Model: "traffic", Window: []float64{1, 2, 3}}, http.StatusBadRequest},
		{"index out of range", InferRequest{Model: "traffic", Observations: []Observation{{Index: -1}}}, http.StatusBadRequest},
		{"duplicate index", InferRequest{Model: "traffic", Observations: []Observation{{Index: 2}, {Index: 2}}}, http.StatusBadRequest},
	} {
		if resp, body := post(tc.req); resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
	}

	// Model listing with warm plan stats.
	resp5, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models []modelInfo
	if err := json.NewDecoder(resp5.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if len(models) != 1 || models[0].Name != "traffic" || models[0].PlanMiss == 0 {
		t.Fatalf("bad model listing: %+v", models)
	}

	// Obs endpoints are mounted.
	for _, path := range []string{"/healthz", "/metrics", "/metricsz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}

	// Drain refuses new work with 503 on both infer and health.
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if resp, _ := post(req); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer during drain: status %d, want 503", resp.StatusCode)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", rec.Code)
	}
}

// TestStartDrain boots a real listener on a random port, serves one
// inference, and drains.
func TestStartDrain(t *testing.T) {
	s := New(testRegistry(t), Config{BatchWindow: -1})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/v1/example?model=traffic")
	if err != nil {
		t.Fatal(err)
	}
	var req InferRequest
	if err := json.NewDecoder(resp.Body).Decode(&req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	b, _ := json.Marshal(req)
	resp2, err := http.Post("http://"+addr+"/v1/infer", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d", resp2.StatusCode)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestRunLoad smoke-tests the open-loop generator: a short heavy-tail
// campaign completes with sane numbers and some coalescing.
func TestRunLoad(t *testing.T) {
	s := New(testRegistry(t), Config{BatchWindow: 2 * time.Millisecond, MaxBatch: 16})
	rep, err := RunLoad(s, LoadConfig{Model: "traffic", QPS: 400, Duration: 300 * time.Millisecond, Seed: 7, Tenants: 2})
	if err != nil {
		t.Fatalf("run load: %v", err)
	}
	if rep.Sent == 0 || rep.OK == 0 {
		t.Fatalf("no load generated: %+v", rep)
	}
	if rep.OK+rep.Shed+rep.Errors != rep.Sent {
		t.Fatalf("outcomes do not sum: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("load errors: %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms || rep.MaxMs < rep.P99Ms {
		t.Fatalf("implausible quantiles: %+v", rep)
	}
	if rep.MeanBatch < 1 {
		t.Fatalf("mean batch %v < 1", rep.MeanBatch)
	}
	if _, err := RunLoad(s, LoadConfig{Model: "nope"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestGroupKey checks that distinct clamp masks and models never collide.
func TestGroupKey(t *testing.T) {
	a := []engine.Observation{{Index: 0}, {Index: 5}}
	b := []engine.Observation{{Index: 0}, {Index: 6}}
	if groupKey("m", a, 16) == groupKey("m", b, 16) {
		t.Fatal("different masks share a key")
	}
	if groupKey("m1", a, 16) == groupKey("m2", a, 16) {
		t.Fatal("different models share a key")
	}
	if groupKey("m", a, 16) != groupKey("m", []engine.Observation{{Index: 5}, {Index: 0}}, 16) {
		t.Fatal("observation order changed the key")
	}
}
