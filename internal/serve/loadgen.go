package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dsgl/internal/engine"
	"dsgl/internal/rng"
)

// LoadConfig drives RunLoad, the synthetic open-loop load generator behind
// `make serve-bench` and `dsgld -loadtest`.
type LoadConfig struct {
	// Model names the registry entry to load.
	Model string
	// QPS is the mean arrival rate. 0 selects 200.
	QPS float64
	// Duration bounds the generation window. 0 selects 2s.
	Duration time.Duration
	// Alpha is the Pareto tail index of the inter-arrival distribution;
	// smaller is heavier-tailed (more bursty). Must exceed 1 for the mean
	// to exist. 0 selects 1.5, a classic heavy-tail exponent.
	Alpha float64
	// Seed makes the arrival process and per-request seeds reproducible.
	Seed uint64
	// Tenants cycles requests across this many synthetic tenants. 0
	// selects 1.
	Tenants int
}

func (c *LoadConfig) fillDefaults() {
	if c.QPS <= 0 {
		c.QPS = 200
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Alpha <= 1 {
		c.Alpha = 1.5
	}
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
}

// LoadReport is the result of one RunLoad campaign, serialized into
// BENCH_serve.json by cmd/dsgld -loadtest.
type LoadReport struct {
	Model    string  `json:"model"`
	Sent     int     `json:"sent"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"` // rate-limited + queue-full + draining
	Errors   int     `json:"errors"`
	QPS      float64 `json:"offered_qps"`
	Achieved float64 `json:"achieved_qps"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	// MeanBatch is the average engine-call batch size over OK requests —
	// the coalescing the open-loop burstiness actually achieved.
	MeanBatch float64 `json:"mean_batch"`
}

// RunLoad fires an open-loop request stream at the server's own in-process
// pipeline: arrivals are scheduled from a heavy-tailed (Pareto) inter-
// arrival distribution and do not wait for earlier responses, so queueing
// and coalescing behave as they would under independent network clients.
// Each request replays a window drawn from the model dataset's test split
// through the same admission path HTTP requests take.
func RunLoad(s *Server, cfg LoadConfig) (*LoadReport, error) {
	cfg.fillDefaults()
	entry, ok := s.models.Get(cfg.Model)
	if !ok {
		return nil, fmt.Errorf("serve: loadgen: unknown model %q", cfg.Model)
	}
	_, test := entry.Model.Dataset.Split()
	if len(test) == 0 {
		return nil, fmt.Errorf("serve: loadgen: model %q has no test windows", cfg.Model)
	}
	// Pre-build the observation lists once; the generator replays them.
	obsSets := make([][]engine.Observation, len(test))
	for i, w := range test {
		o, err := entry.Model.WindowObservations(w)
		if err != nil {
			return nil, fmt.Errorf("serve: loadgen: window %d: %w", i, err)
		}
		obsSets[i] = o
	}

	r := rng.New(cfg.Seed)
	// Pareto inter-arrivals with mean 1/QPS: for tail index α the mean is
	// x_m·α/(α−1), so scale x_m = (α−1)/(α·QPS) and sample x_m·U^(−1/α).
	xm := (cfg.Alpha - 1) / (cfg.Alpha * cfg.QPS)
	nextGap := func() time.Duration {
		u := r.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap := xm * math.Pow(u, -1/cfg.Alpha)
		// Clip pathological tail draws at 100 mean gaps so a single sample
		// cannot stall the whole campaign.
		if max := 100 / cfg.QPS; gap > max {
			gap = max
		}
		return time.Duration(gap * float64(time.Second))
	}

	var (
		mu        sync.Mutex
		latencies []float64 // ms
		report    LoadReport
		batchSum  int
		wg        sync.WaitGroup
	)
	report.Model = cfg.Model
	report.QPS = cfg.QPS

	// Arrivals follow an absolute schedule: each gap is added to the planned
	// next-fire time, not slept after the spawn, so per-iteration overhead
	// (goroutine spawn, scheduler jitter, sleep granularity) cannot
	// accumulate and silently under-offer the configured rate.
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for next := start; next.Before(deadline); next = next.Add(nextGap()) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		i := report.Sent
		report.Sent++
		obsList := obsSets[i%len(obsSets)]
		seed := entry.Model.Engine().BaseSeed() + uint64(i)
		tenant := fmt.Sprintf("tenant-%d", i%cfg.Tenants)
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			out := s.do(entry, obsList, seed, tenant)
			dms := float64(time.Since(t0)) / float64(time.Millisecond)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case out.err == nil:
				report.OK++
				batchSum += out.batchSize
				latencies = append(latencies, dms)
			case out.shed:
				report.Shed++
			default:
				report.Errors++
			}
		}()
	}
	// Achieved throughput is completions over the send window, not the
	// window plus the tail drain — dividing by post-deadline drain time used
	// to understate the rate the server actually sustained.
	sendWindow := time.Since(start).Seconds()
	wg.Wait()

	report.Achieved = float64(report.OK) / sendWindow
	if report.OK > 0 {
		report.MeanBatch = float64(batchSum) / float64(report.OK)
		sort.Float64s(latencies)
		report.P50Ms = quantile(latencies, 0.50)
		report.P90Ms = quantile(latencies, 0.90)
		report.P99Ms = quantile(latencies, 0.99)
		report.MaxMs = latencies[len(latencies)-1]
	}
	return &report, nil
}

// loadResult is the loadgen view of one request outcome.
type loadResult struct {
	batchSize int
	shed      bool
	err       error
}

// do pushes one pre-validated request through the full admission pipeline
// (drain gate, rate limiter, bounded queue, batcher) without the HTTP
// encode/decode — the loadgen measures the serving layer, not the JSON
// codec.
func (s *Server) do(entry *ModelEntry, obsList []engine.Observation, seed uint64, tenant string) loadResult {
	if !s.beginRequest() {
		s.m.draining.Inc()
		return loadResult{shed: true, err: errDraining}
	}
	defer s.endRequest()
	if !s.limiter.allow(tenant, time.Now()) {
		s.m.rateLimited.Inc()
		return loadResult{shed: true, err: errRateLimited}
	}
	out := s.enqueue(groupKey(entry.Name, obsList, entry.Dim), entry, obsList, seed)
	if out.err != nil {
		if out.err == errQueueFull {
			s.m.queueFull.Inc()
			return loadResult{shed: true, err: out.err}
		}
		return loadResult{err: out.err}
	}
	s.m.admitted.Inc()
	return loadResult{batchSize: out.batchSize}
}

var (
	errDraining    = fmt.Errorf("serve: draining")
	errRateLimited = fmt.Errorf("serve: rate limited")
)

// quantile reads the q-quantile from sorted (ascending) samples by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
