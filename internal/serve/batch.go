package serve

import (
	"errors"
	"time"

	"dsgl/internal/engine"
)

// errQueueFull sheds a request because the pending-queue bound was hit.
var errQueueFull = errors.New("serve: batch queue full")

// pendingReq is one admitted request waiting for its batch to flush.
type pendingReq struct {
	obs  []engine.Observation
	seed uint64
	done chan execResult // buffered(1); exactly one result is delivered
}

// execResult is what a flushed request receives: its inference result (a
// detached copy, safe to read after the engine state is recycled), the
// size of the batch it rode in, and any execution error (shared by every
// member of the batch — validation already happened at admission).
type execResult struct {
	res       *engine.Result
	batchSize int
	err       error
}

// batchGroup accumulates requests that share one (model, clamp-bitmask)
// key. The first pending request arms the flush timer; reaching MaxBatch
// flushes immediately on the arriving request's goroutine. Requests whose
// clamp masks differ never share a group — they run in distinct engine
// calls (possibly concurrently), so a coalesced batch always shares one
// compiled clamp plan.
type batchGroup struct {
	s       *Server
	entry   *ModelEntry
	pending []*pendingReq
	timer   *time.Timer
}

// groupKey identifies a batch group: model name plus the packed clamp
// bitmask of the request's observation indices (the same key shape the
// engine's plan cache uses, so group-mates are plan-mates by construction).
func groupKey(model string, obs []engine.Observation, dim int) string {
	buf := make([]byte, len(model)+1+(dim+7)/8)
	n := copy(buf, model)
	buf[n] = 0 // model names never contain NUL; Registry.Register rejects them
	mask := buf[n+1:]
	for _, o := range obs {
		mask[o.Index>>3] |= 1 << (o.Index & 7)
	}
	return string(buf)
}

// enqueue admits one validated request into its batch group and blocks
// until the group flushes and the anneal completes. It returns errQueueFull
// (never blocking) when the pending bound is hit.
func (s *Server) enqueue(key string, entry *ModelEntry, obs []engine.Observation, seed uint64) execResult {
	p := &pendingReq{obs: obs, seed: seed, done: make(chan execResult, 1)}

	s.groupMu.Lock()
	if s.queued >= s.cfg.MaxQueue {
		s.groupMu.Unlock()
		return execResult{err: errQueueFull}
	}
	s.queued++
	s.m.queueDepth.Set(float64(s.queued))
	g, ok := s.groups[key]
	if !ok {
		g = &batchGroup{s: s, entry: entry}
		s.groups[key] = g
	}
	g.pending = append(g.pending, p)
	var flush []*pendingReq
	switch {
	case len(g.pending) >= s.cfg.MaxBatch || s.cfg.BatchWindow <= 0 || s.draining.Load():
		// Full batch, batching disabled, or draining: flush now, on this
		// request's goroutine.
		flush = g.takeLocked()
	case len(g.pending) == 1:
		// First pending request arms the group's flush timer.
		g.timer = time.AfterFunc(s.cfg.BatchWindow, func() { s.flushGroup(g) })
	}
	s.groupMu.Unlock()

	if flush != nil {
		s.execBatch(entry, flush)
	}
	return <-p.done
}

// takeLocked detaches the group's pending requests and disarms its timer.
// Caller holds s.groupMu.
func (g *batchGroup) takeLocked() []*pendingReq {
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	batch := g.pending
	g.pending = nil
	g.s.queued -= len(batch)
	g.s.m.queueDepth.Set(float64(g.s.queued))
	return batch
}

// flushGroup flushes whatever the group has pending (timer path).
func (s *Server) flushGroup(g *batchGroup) {
	s.groupMu.Lock()
	batch := g.takeLocked()
	entry := g.entry
	s.groupMu.Unlock()
	if len(batch) > 0 {
		s.execBatch(entry, batch)
	}
}

// flushAll force-flushes every group — the drain path. Runs the flushed
// batches synchronously so that when flushAll returns, every request that
// was queued at drain start has its result delivered.
func (s *Server) flushAll() {
	s.groupMu.Lock()
	type work struct {
		entry *ModelEntry
		batch []*pendingReq
	}
	var pending []work
	for _, g := range s.groups {
		if b := g.takeLocked(); len(b) > 0 {
			pending = append(pending, work{g.entry, b})
		}
	}
	s.groupMu.Unlock()
	for _, w := range pending {
		s.execBatch(w.entry, w.batch)
	}
}

// execBatch runs one flushed batch through the engine and delivers each
// member's result. A single request runs the solo seeded entry point; two
// or more run InferBatchSeeds with one seed per request, which the engine
// guarantees bit-identical to the solo calls (the serving determinism
// contract).
func (s *Server) execBatch(entry *ModelEntry, batch []*pendingReq) {
	eng := entry.Model.Engine()
	if len(batch) == 1 {
		p := batch[0]
		res, err := eng.InferSeeded(p.obs, p.seed)
		if err != nil {
			s.m.inferErrors.Inc()
		}
		s.m.solo.Inc()
		s.m.batchSize.Observe(1)
		p.done <- execResult{res: res, batchSize: 1, err: err}
		return
	}
	obsList := make([][]engine.Observation, len(batch))
	seeds := make([]uint64, len(batch))
	for i, p := range batch {
		obsList[i] = p.obs
		seeds[i] = p.seed
	}
	results, err := eng.InferBatchSeeds(obsList, seeds, s.cfg.Workers)
	if err != nil {
		s.m.inferErrors.Add(uint64(len(batch)))
	}
	s.m.batches.Inc()
	s.m.coalesced.Add(uint64(len(batch)))
	s.m.batchSize.Observe(float64(len(batch)))
	for i, p := range batch {
		out := execResult{batchSize: len(batch), err: err}
		if err == nil {
			out.res = results[i]
		}
		p.done <- out
	}
}
