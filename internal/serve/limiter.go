package serve

import (
	"sync"
	"time"
)

// maxTenantBuckets bounds the limiter's tenant map. When the cap is hit,
// buckets that have fully refilled (idle long enough that dropping them
// loses nothing — a fresh bucket starts full anyway) are swept before a
// new tenant is admitted.
const maxTenantBuckets = 4096

// tenantLimiter is a per-tenant token bucket: each tenant refills at rate
// tokens/second up to burst, and one request costs one token. A nil
// limiter admits everything (rate limiting disabled).
type tenantLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newTenantLimiter builds a limiter, or nil (unlimited) when rate <= 0.
// burst <= 0 defaults to max(1, rate): one second of refill, never less
// than a single request.
func newTenantLimiter(rate, burst float64) *tenantLimiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &tenantLimiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// allow reports whether tenant may proceed at time now, consuming one
// token when it may. New tenants start with a full bucket.
func (l *tenantLimiter) allow(tenant string, now time.Time) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		if len(l.buckets) >= maxTenantBuckets {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens += l.rate * now.Sub(b.last).Seconds()
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweepLocked drops tenants whose buckets have refilled to capacity — they
// have been idle for at least burst/rate seconds and lose nothing by being
// re-created full. Caller holds mu.
func (l *tenantLimiter) sweepLocked(now time.Time) {
	for tenant, b := range l.buckets {
		if b.tokens+l.rate*now.Sub(b.last).Seconds() >= l.burst {
			delete(l.buckets, tenant)
		}
	}
}
