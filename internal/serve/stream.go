package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"dsgl"
)

// Streaming temporal inference over HTTP: POST /v1/stream multiplexes
// session opens, warm ticks, and closes through one endpoint. The first
// request (no session id) opens a session on a model and serves its cold
// first tick; the returned session id keys every later tick, each of which
// warm-starts from the previous tick's settled state and resolves shifted
// clamp patterns by plan delta-compilation (see dsgl.StreamSession).
//
// Sessions are server-side state, so they are bounded two ways: a hard cap
// (Config.MaxStreams, refused with 503 when full) and an idle TTL
// (Config.StreamTTL, swept lazily on stream traffic). Drain closes every
// session after the drain gate stops admitting ticks, so session state
// always returns to the engine pool before the process exits.

// streamSession is one live /v1/stream session. mu serializes ticks (and
// the final Close) on the underlying dsgl session, which is not safe for
// concurrent use; lastUsed drives TTL eviction and is guarded by the
// server's streamMu.
type streamSession struct {
	id    string
	entry *ModelEntry

	mu   sync.Mutex
	sess *dsgl.StreamSession

	lastUsed time.Time
}

// StreamRequest is the POST /v1/stream body. Omit Session to open a new
// session on Model (the request's window doubles as the cold first tick);
// set Session to advance an existing one. Close tears the session down
// instead of ticking.
type StreamRequest struct {
	// Model names the registry entry; required on open, optional (but
	// checked against the session's model when set) on later ticks.
	Model string `json:"model,omitempty"`
	// Session is the id a previous open returned.
	Session string `json:"session,omitempty"`
	// Window / Observations describe the tick's clamps, exactly as in
	// InferRequest: one of the two must be set on any ticking request.
	Window       []float64     `json:"window,omitempty"`
	Observations []Observation `json:"observations,omitempty"`
	// Close ends the session; no tick is taken and no clamps are needed.
	Close bool `json:"close,omitempty"`
	// Tenant attributes the request for rate limiting.
	Tenant string `json:"tenant,omitempty"`
}

// StreamResponse is the POST /v1/stream reply.
type StreamResponse struct {
	Session string `json:"session"`
	Model   string `json:"model"`
	// Tick is the 0-based index of the tick this response carries (on a
	// close, the number of ticks the session served).
	Tick uint64 `json:"tick"`
	// Indices are the predicted (free) node indices; Values their annealed
	// voltages, aligned. Empty on a close.
	Indices []int     `json:"indices,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	// LatencyUs is the simulated anneal latency in microseconds; Steps the
	// integration steps the tick took to settle — the number warm starting
	// drives down.
	LatencyUs float64 `json:"latency_us,omitempty"`
	Steps     int     `json:"steps,omitempty"`
	Settled   bool    `json:"settled,omitempty"`
	// Warm reports whether the tick reused the previous tick's settled
	// state (false on a session's first tick).
	Warm bool `json:"warm,omitempty"`
	// Seed is the anneal seed the tick ran with (model base seed + tick).
	Seed uint64 `json:"seed,omitempty"`
	// Closed acknowledges a close request.
	Closed bool `json:"closed,omitempty"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.beginRequest() {
		s.m.draining.Inc()
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.endRequest()
	start := time.Now()

	var req StreamRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		s.m.badRequest.Inc()
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	// Lazy TTL sweep: stream traffic itself retires idle sessions.
	s.expireStreams(start)

	if req.Close {
		s.closeStream(w, &req)
		return
	}
	if !s.limiter.allow(req.Tenant, start) {
		s.m.rateLimited.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant %q over rate limit", req.Tenant)
		return
	}

	var ss *streamSession
	if req.Session == "" {
		ss = s.openStream(w, &req, start)
	} else {
		ss = s.lookupStream(w, &req, start)
	}
	if ss == nil {
		return // openStream/lookupStream already wrote the error
	}
	entry := ss.entry
	obsList, indices, err := buildObservations(entry, &InferRequest{Window: req.Window, Observations: req.Observations})
	if err != nil {
		s.m.badRequest.Inc()
		if req.Session == "" {
			// The client never learned the id, so a failed open must not
			// leak a session that only the TTL would reap.
			s.dropStream(ss)
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ss.mu.Lock()
	tick := ss.sess.Ticks()
	res, seed, err := ss.sess.NextObservations(obsList)
	if err != nil {
		ss.mu.Unlock()
		if req.Session == "" {
			s.dropStream(ss)
		}
		s.m.badRequest.Inc()
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The result aliases session state (the next tick overwrites it), so
	// the response values are copied out under the session mutex.
	resp := &StreamResponse{
		Session:   ss.id,
		Model:     entry.Name,
		Tick:      tick,
		Indices:   indices,
		Values:    make([]float64, len(indices)),
		LatencyUs: res.LatencyNs / 1000,
		Steps:     res.Steps,
		Settled:   res.Settled,
		Warm:      tick > 0,
		Seed:      seed,
	}
	for k, idx := range indices {
		resp.Values[k] = res.Voltage[idx]
	}
	ss.mu.Unlock()

	s.m.streamTicks.Inc()
	s.m.admitted.Inc()
	s.m.requestLatency(entry.Name).Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

// openStream admits and registers a new session, writing the HTTP error
// (and returning nil) when the model is unknown or the session cap is hit.
func (s *Server) openStream(w http.ResponseWriter, req *StreamRequest, now time.Time) *streamSession {
	entry, ok := s.models.Get(req.Model)
	if !ok {
		s.m.badRequest.Inc()
		httpError(w, http.StatusNotFound, "unknown model %q (loaded: %s)", req.Model, strings.Join(s.models.Names(), ", "))
		return nil
	}
	s.streamMu.Lock()
	if len(s.streams) >= s.cfg.MaxStreams {
		s.streamMu.Unlock()
		s.m.queueFull.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "stream session limit (%d) reached", s.cfg.MaxStreams)
		return nil
	}
	s.streamSeq++
	ss := &streamSession{
		id:       fmt.Sprintf("st-%d", s.streamSeq),
		entry:    entry,
		sess:     entry.Model.OpenStream(),
		lastUsed: now,
	}
	s.streams[ss.id] = ss
	s.streamMu.Unlock()
	s.m.streamOpens.Inc()
	s.m.streamSessions.Add(1)
	return ss
}

// lookupStream resolves an existing session and touches its idle clock,
// writing the HTTP error (and returning nil) on an unknown id or a model
// mismatch.
func (s *Server) lookupStream(w http.ResponseWriter, req *StreamRequest, now time.Time) *streamSession {
	s.streamMu.Lock()
	ss, ok := s.streams[req.Session]
	if ok {
		ss.lastUsed = now
	}
	s.streamMu.Unlock()
	if !ok {
		s.m.badRequest.Inc()
		httpError(w, http.StatusNotFound, "unknown or expired stream session %q", req.Session)
		return nil
	}
	if req.Model != "" && req.Model != ss.entry.Name {
		s.m.badRequest.Inc()
		httpError(w, http.StatusBadRequest, "session %s belongs to model %q, not %q", ss.id, ss.entry.Name, req.Model)
		return nil
	}
	return ss
}

// closeStream handles a Close request: the session's inference state goes
// back to the engine pool and the id stops resolving.
func (s *Server) closeStream(w http.ResponseWriter, req *StreamRequest) {
	if req.Session == "" {
		s.m.badRequest.Inc()
		httpError(w, http.StatusBadRequest, "close requires a session id")
		return
	}
	s.streamMu.Lock()
	ss, ok := s.streams[req.Session]
	if ok {
		delete(s.streams, req.Session)
	}
	s.streamMu.Unlock()
	if !ok {
		s.m.badRequest.Inc()
		httpError(w, http.StatusNotFound, "unknown or expired stream session %q", req.Session)
		return
	}
	ss.mu.Lock()
	ticks := ss.sess.Ticks()
	ss.sess.Close()
	ss.mu.Unlock()
	s.m.streamSessions.Add(-1)
	writeJSON(w, http.StatusOK, &StreamResponse{Session: ss.id, Model: ss.entry.Name, Tick: ticks, Closed: true})
}

// dropStream unregisters and closes a session whose open never completed.
func (s *Server) dropStream(ss *streamSession) {
	s.streamMu.Lock()
	delete(s.streams, ss.id)
	s.streamMu.Unlock()
	ss.mu.Lock()
	ss.sess.Close()
	ss.mu.Unlock()
	s.m.streamSessions.Add(-1)
}

// expireStreams retires sessions idle past the TTL. Unregistration happens
// under streamMu; the Close of each victim then serializes on the session
// mutex, so a tick that resolved the session just before eviction finishes
// cleanly (its own lookup refreshed lastUsed, making this window rare).
func (s *Server) expireStreams(now time.Time) {
	s.streamMu.Lock()
	var expired []*streamSession
	for id, ss := range s.streams {
		if now.Sub(ss.lastUsed) > s.cfg.StreamTTL {
			delete(s.streams, id)
			expired = append(expired, ss)
		}
	}
	s.streamMu.Unlock()
	for _, ss := range expired {
		ss.mu.Lock()
		ss.sess.Close()
		ss.mu.Unlock()
		s.m.streamEvicted.Inc()
		s.m.streamSessions.Add(-1)
	}
}

// closeAllStreams empties the session map on drain. Returns how many
// sessions it closed.
func (s *Server) closeAllStreams() int {
	s.streamMu.Lock()
	all := make([]*streamSession, 0, len(s.streams))
	for id, ss := range s.streams {
		delete(s.streams, id)
		all = append(all, ss)
	}
	s.streamMu.Unlock()
	for _, ss := range all {
		ss.mu.Lock()
		ss.sess.Close()
		ss.mu.Unlock()
		s.m.streamSessions.Add(-1)
	}
	return len(all)
}

// StreamCount reports the streaming sessions currently open.
func (s *Server) StreamCount() int {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	return len(s.streams)
}
