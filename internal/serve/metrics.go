package serve

import (
	"sync"

	"dsgl/internal/obs"
)

// serveObs bundles the serving layer's instruments. The binding is built
// once at Server construction from the default registry: a server exists to
// be scraped, so unlike the engine's per-call rebinding there is no
// hot-path reason to chase registry swaps — tests that want an isolated
// registry install it (obs.SetDefault) before constructing the Server.
// All instruments follow the obs nil-is-no-op contract, so a server built
// with observability disabled records nothing at zero cost.
type serveObs struct {
	reg *obs.Registry

	admitted    *obs.Counter // dsgl_serve_requests_admitted_total
	rateLimited *obs.Counter // dsgl_serve_requests_rate_limited_total
	queueFull   *obs.Counter // dsgl_serve_requests_queue_full_total
	draining    *obs.Counter // dsgl_serve_requests_draining_total
	badRequest  *obs.Counter // dsgl_serve_requests_bad_total
	inferErrors *obs.Counter // dsgl_serve_infer_errors_total

	queueDepth *obs.Gauge     // dsgl_serve_queue_depth
	inflight   *obs.Gauge     // dsgl_serve_inflight
	batchSize  *obs.Histogram // dsgl_serve_batch_size
	batches    *obs.Counter   // dsgl_serve_batches_total
	solo       *obs.Counter   // dsgl_serve_solo_total
	coalesced  *obs.Counter   // dsgl_serve_coalesced_requests_total

	// Streaming-session instruments (stream.go).
	streamSessions *obs.Gauge   // dsgl_serve_stream_sessions
	streamOpens    *obs.Counter // dsgl_serve_stream_opens_total
	streamTicks    *obs.Counter // dsgl_serve_stream_ticks_total
	streamEvicted  *obs.Counter // dsgl_serve_stream_evicted_total

	// latency holds the per-model request-latency summaries
	// (dsgl_serve_request_seconds{model=...}, P-squared p50/p90/p99),
	// registered lazily on a model's first served request.
	mu      sync.Mutex
	latency map[string]*obs.Summary
}

func newServeObs(r *obs.Registry) *serveObs {
	m := &serveObs{reg: r, latency: make(map[string]*obs.Summary)}
	if r == nil {
		return m
	}
	m.admitted = r.Counter("dsgl_serve_requests_admitted_total", "requests admitted and answered")
	m.rateLimited = r.Counter("dsgl_serve_requests_rate_limited_total", "requests shed with 429 by the per-tenant token bucket")
	m.queueFull = r.Counter("dsgl_serve_requests_queue_full_total", "requests shed with 503 because the batch queue was full")
	m.draining = r.Counter("dsgl_serve_requests_draining_total", "requests refused with 503 during drain")
	m.badRequest = r.Counter("dsgl_serve_requests_bad_total", "requests rejected as malformed (unknown model, bad window, invalid observations)")
	m.inferErrors = r.Counter("dsgl_serve_infer_errors_total", "admitted requests whose anneal failed")
	m.queueDepth = r.Gauge("dsgl_serve_queue_depth", "requests currently waiting in batch groups")
	m.inflight = r.Gauge("dsgl_serve_inflight", "requests currently inside the serve layer")
	m.batchSize = r.Histogram("dsgl_serve_batch_size", "requests coalesced per engine call")
	m.batches = r.Counter("dsgl_serve_batches_total", "engine calls that coalesced two or more requests")
	m.solo = r.Counter("dsgl_serve_solo_total", "engine calls that served a single request")
	m.coalesced = r.Counter("dsgl_serve_coalesced_requests_total", "requests that rode in a coalesced batch")
	m.streamSessions = r.Gauge("dsgl_serve_stream_sessions", "streaming sessions currently open")
	m.streamOpens = r.Counter("dsgl_serve_stream_opens_total", "streaming sessions opened")
	m.streamTicks = r.Counter("dsgl_serve_stream_ticks_total", "streaming ticks served (session opens included)")
	m.streamEvicted = r.Counter("dsgl_serve_stream_evicted_total", "streaming sessions evicted after sitting idle past the TTL")
	return m
}

// requestLatency returns the P-squared latency summary for model,
// registering it on first use. Nil when observability is disabled.
func (m *serveObs) requestLatency(model string) *obs.Summary {
	if m.reg == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.latency[model]
	if !ok {
		s = m.reg.Summary("dsgl_serve_request_seconds",
			"serve-layer request latency (admission to response body)", obs.L("model", model))
		m.latency[model] = s
	}
	return s
}
