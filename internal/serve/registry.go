// Package serve is the long-running inference service around the DS-GL
// engine: a model registry (load/evict trained models or snapshots, plan
// caches warmed at load time), request admission with per-tenant token-
// bucket rate limiting and a bounded queue, cross-request dynamic batching
// into the engine's seeded batch entry point, and graceful drain. The HTTP
// surface (cmd/dsgld) mounts the internal/obs/obshttp observability
// endpoints alongside the inference API.
//
// Determinism contract: a request annealed inside a coalesced batch is
// bit-identical to the same request served solo. The batcher groups
// requests by (model, clamp bitmask) and hands the engine one seed per
// request (Engine.InferBatchSeeds), and the engine contributes nothing
// per-window beyond that seed — so batching is purely a throughput
// decision, never a results decision (pinned by TestBatchingDeterminism).
package serve

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"dsgl"
)

// ModelEntry is one resident model in the registry.
type ModelEntry struct {
	// Name is the registry key requests address the model by.
	Name string
	// Model is the trained model. Its engine is safe for concurrent use;
	// the serving layer never mutates the model after registration.
	Model *dsgl.Model
	// Backend names the inference backend ("scalable", "dense").
	Backend string
	// Dim is the window-vector dimension requests must match.
	Dim int
}

// Registry is the named-model store of the serving layer. Registration
// warms each model's clamp-plan cache via EnsurePlan so the first request
// against a model never pays a plan compile; eviction drops the model (and
// its plan cache) for the garbage collector. Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*ModelEntry
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*ModelEntry)}
}

// Register installs a trained model under name, warming its plan cache for
// the dataset's observation pattern before the model becomes visible to
// requests. Registering an existing name replaces the previous model
// (load-then-swap is how a running dsgld rolls a model forward).
func (r *Registry) Register(name string, m *dsgl.Model) (*ModelEntry, error) {
	if name == "" {
		return nil, errors.New("serve: model name must be non-empty")
	}
	// NUL is the separator batch-group keys use between model name and
	// clamp bitmask; a name containing it could alias another group.
	if strings.ContainsRune(name, 0) {
		return nil, fmt.Errorf("serve: model name %q contains NUL", name)
	}
	if m == nil {
		return nil, fmt.Errorf("serve: model %q is nil", name)
	}
	// Warm the plan cache before publication: every request sharing the
	// dataset's clamp pattern then starts with a cache hit, which is the
	// per-model warmup PlanCacheStats asserts in the registry tests.
	if err := m.EnsurePlan(); err != nil {
		return nil, fmt.Errorf("serve: warming plan cache for %q: %w", name, err)
	}
	e := &ModelEntry{
		Name:    name,
		Model:   m,
		Backend: m.Opts.Backend,
		Dim:     m.Tuned.Dim(),
	}
	r.mu.Lock()
	r.entries[name] = e
	r.mu.Unlock()
	return e, nil
}

// LoadSnapshot reads a model snapshot (format v1-v3) from path and
// registers it under name. ds must be the dataset the snapshot was trained
// on — the same contract as dsgl.Load.
func (r *Registry) LoadSnapshot(name, path string, ds *dsgl.Dataset) (*ModelEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot %q: %w", name, err)
	}
	defer f.Close()
	m, err := dsgl.Load(f, ds)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot %q: %w", name, err)
	}
	return r.Register(name, m)
}

// Evict removes the named model, reporting whether it was resident.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return false
	}
	delete(r.entries, name)
	return true
}

// Get returns the named model entry.
func (r *Registry) Get(name string) (*ModelEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names lists the resident model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len reports how many models are resident.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
