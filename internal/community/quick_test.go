package community

import (
	"testing"
	"testing/quick"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// randWeights builds a random symmetric non-negative weight matrix.
func randWeights(seed uint64, n int, density float64) *mat.Dense {
	r := rng.New(seed)
	w := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < density {
				v := r.Uniform(0.05, 1)
				w.Set(i, j, v)
				w.Set(j, i, v)
			}
		}
	}
	return w
}

// TestQuickLouvainPartitionValid: for random graphs, Louvain always emits a
// valid compact partition whose modularity is at least that of the trivial
// partition.
func TestQuickLouvainPartitionValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 8 + int(seed%17)
		w := randWeights(seed, n, 0.3)
		p := Louvain(w, 10)
		if len(p.Labels) != n {
			return false
		}
		seen := make(map[int]bool)
		for _, l := range p.Labels {
			if l < 0 || l >= p.Num {
				return false
			}
			seen[l] = true
		}
		if len(seen) != p.Num {
			return false
		}
		trivial := &Partition{Labels: make([]int, n), Num: 1}
		return p.Modularity(w) >= trivial.Modularity(w)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRedistributeAlwaysValid: any Louvain partition of any random
// graph redistributes into a structurally valid assignment.
func TestQuickRedistributeAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%23)
		capacity := 3 + int(seed%7)
		w := randWeights(seed, n, 0.25)
		p := Louvain(w, 10)
		a, err := Redistribute(p, w, capacity)
		if err != nil {
			return false
		}
		return a.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPruneInvariants: pruning never raises density above the target,
// never invents entries, and is idempotent.
func TestQuickPruneInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		n := 6 + int(seed%15)
		r := rng.New(seed ^ 0xabc)
		j := mat.NewDense(n, n)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && r.Float64() < 0.5 {
					j.Set(a, b, r.NormScaled(0, 1))
				}
			}
		}
		density := 0.05 + 0.3*r.Float64()
		pruned := PruneToDensity(j, density)
		if pruned.Density(0) > density+1e-9 {
			return false
		}
		for i, v := range pruned.Data {
			if v != 0 && v != j.Data[i] {
				return false // entries must be copied, never altered
			}
		}
		again := PruneToDensity(pruned, density)
		return again.Equal(pruned, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGridForCapacity: the chosen grid always has enough slots and is
// never more than one row larger than necessary.
func TestQuickGridForCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%500)
		capacity := 1 + int((seed>>8)%64)
		w, h := GridFor(n, capacity)
		if w*h*capacity < n {
			return false
		}
		// Not grossly oversized: removing one full row must not still fit.
		if h > 1 && w*(h-1)*capacity >= n && w*h > 2 {
			// allowed only when the square-ish shape forces it
			if (w-1)*(w-1)*capacity >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
