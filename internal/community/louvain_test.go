package community

import (
	"math"
	"testing"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// plantedGraph builds a graph with k planted communities of size sz each:
// dense strong intra-links, sparse weak inter-links.
func plantedGraph(r *rng.RNG, k, sz int) (*mat.Dense, []int) {
	n := k * sz
	w := mat.NewDense(n, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		truth[i] = i / sz
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			if truth[i] == truth[j] {
				if r.Float64() < 0.8 {
					v = r.Uniform(0.5, 1)
				}
			} else if r.Float64() < 0.05 {
				v = r.Uniform(0.01, 0.1)
			}
			if v > 0 {
				w.Set(i, j, v)
				w.Set(j, i, v)
			}
		}
	}
	return w, truth
}

func TestLouvainRecoversPlantedCommunities(t *testing.T) {
	r := rng.New(42)
	w, truth := plantedGraph(r, 4, 12)
	p := Louvain(w, 10)
	if p.Num != 4 {
		t.Fatalf("found %d communities, want 4", p.Num)
	}
	// Every truth community must map to exactly one found label.
	for c := 0; c < 4; c++ {
		label := -1
		for i, tc := range truth {
			if tc != c {
				continue
			}
			if label == -1 {
				label = p.Labels[i]
			} else if p.Labels[i] != label {
				t.Fatalf("community %d split: node %d has label %d, want %d", c, i, p.Labels[i], label)
			}
		}
	}
}

func TestLouvainModularityPositive(t *testing.T) {
	r := rng.New(7)
	w, _ := plantedGraph(r, 3, 10)
	p := Louvain(w, 10)
	q := p.Modularity(w)
	if q < 0.4 {
		t.Fatalf("modularity %g too low for a strongly clustered graph", q)
	}
	// The trivial all-in-one partition has modularity 0.
	trivial := &Partition{Labels: make([]int, 30), Num: 1}
	if tq := trivial.Modularity(w); math.Abs(tq) > 1e-9 {
		t.Fatalf("trivial partition modularity %g, want 0", tq)
	}
	if q <= trivial.Modularity(w) {
		t.Fatal("Louvain must beat the trivial partition")
	}
}

func TestLouvainEmptyAndSingleton(t *testing.T) {
	p := Louvain(mat.NewDense(0, 0), 5)
	if p.Num != 0 {
		t.Fatalf("empty graph: %d communities", p.Num)
	}
	p = Louvain(mat.NewDense(1, 1), 5)
	if p.Num != 1 || p.Labels[0] != 0 {
		t.Fatalf("singleton graph: %+v", p)
	}
}

func TestLouvainDisconnectedComponents(t *testing.T) {
	// Two disconnected triangles must be two communities.
	w := mat.NewDense(6, 6)
	tri := func(a, b, c int) {
		for _, e := range [][2]int{{a, b}, {b, c}, {a, c}} {
			w.Set(e[0], e[1], 1)
			w.Set(e[1], e[0], 1)
		}
	}
	tri(0, 1, 2)
	tri(3, 4, 5)
	p := Louvain(w, 10)
	if p.Num != 2 {
		t.Fatalf("found %d communities, want 2", p.Num)
	}
	if p.Labels[0] != p.Labels[1] || p.Labels[1] != p.Labels[2] {
		t.Fatal("first triangle split")
	}
	if p.Labels[3] != p.Labels[4] || p.Labels[4] != p.Labels[5] {
		t.Fatal("second triangle split")
	}
	if p.Labels[0] == p.Labels[3] {
		t.Fatal("triangles merged")
	}
}

func TestCommunitiesPartitionNodes(t *testing.T) {
	r := rng.New(3)
	w, _ := plantedGraph(r, 3, 8)
	p := Louvain(w, 10)
	comms := p.Communities()
	total := 0
	seen := make(map[int]bool)
	for _, c := range comms {
		for _, v := range c {
			if seen[v] {
				t.Fatalf("node %d in two communities", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != 24 {
		t.Fatalf("communities cover %d nodes, want 24", total)
	}
}

func TestCouplingWeights(t *testing.T) {
	j := mat.NewDense(2, 2)
	j.Set(0, 1, -0.3)
	j.Set(1, 0, 0.5)
	w := CouplingWeights(j)
	if math.Abs(w.At(0, 1)-0.8) > 1e-12 || math.Abs(w.At(1, 0)-0.8) > 1e-12 {
		t.Fatalf("weights = %v", w.Data)
	}
	if w.At(0, 0) != 0 {
		t.Fatal("diagonal must be zero")
	}
}

func TestPruneToDensity(t *testing.T) {
	r := rng.New(5)
	n := 20
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k {
				j.Set(i, k, r.NormScaled(0, 1))
			}
		}
	}
	pruned := PruneToDensity(j, 0.1)
	if d := pruned.Density(0); d > 0.1+1e-9 {
		t.Fatalf("density %g exceeds target", d)
	}
	// Surviving entries must be among the strongest: min kept pair-mag >=
	// max dropped pair-mag.
	minKept, maxDropped := math.Inf(1), 0.0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			mag := math.Abs(j.At(a, b)) + math.Abs(j.At(b, a))
			if pruned.At(a, b) != 0 || pruned.At(b, a) != 0 {
				if mag < minKept {
					minKept = mag
				}
			} else if mag > maxDropped {
				maxDropped = mag
			}
		}
	}
	if minKept < maxDropped {
		t.Fatalf("pruning kept weaker pair (%g) than it dropped (%g)", minKept, maxDropped)
	}
	// Pairs survive symmetrically.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			kept1 := pruned.At(a, b) != 0 || j.At(a, b) == 0
			kept2 := pruned.At(b, a) != 0 || j.At(b, a) == 0
			if (pruned.At(a, b) != 0) != (pruned.At(b, a) != 0) && j.At(a, b) != 0 && j.At(b, a) != 0 {
				t.Fatalf("pair (%d,%d) kept asymmetrically: %v %v", a, b, kept1, kept2)
			}
		}
	}
}

func TestPruneDensityOneKeepsAll(t *testing.T) {
	j := mat.NewDense(4, 4)
	j.Set(0, 1, 1)
	j.Set(1, 0, 1)
	j.Set(2, 3, 0.5)
	j.Set(3, 2, 0.5)
	pruned := PruneToDensity(j, 1)
	if !pruned.Equal(j, 0) {
		t.Fatal("density 1 must keep everything")
	}
}

func TestPruneDensityZeroDropsAll(t *testing.T) {
	j := mat.NewDense(4, 4)
	j.Set(0, 1, 1)
	pruned := PruneToDensity(j, 0)
	if pruned.NNZ(0) != 0 {
		t.Fatal("density 0 must drop everything")
	}
}

func TestPrunePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PruneToDensity(mat.NewDense(2, 2), 1.5)
}

func TestSupportMask(t *testing.T) {
	j := mat.NewDense(3, 3)
	j.Set(0, 1, 0.5)
	j.Set(1, 2, 1e-12)
	m := SupportMask(j, 1e-9)
	if !m.At(0, 1) || m.At(1, 2) || m.At(0, 0) {
		t.Fatal("support mask wrong")
	}
}

func TestRefineByClassSplitsMixedCommunities(t *testing.T) {
	p := &Partition{Labels: []int{0, 0, 0, 1, 1, 1}, Num: 2}
	classOf := []int{0, 1, 0, 1, 1, 0}
	out := RefineByClass(p, classOf)
	// Same refined community <=> same (community, class) pair.
	for i := range out.Labels {
		for j := range out.Labels {
			same := p.Labels[i] == p.Labels[j] && classOf[i] == classOf[j]
			if (out.Labels[i] == out.Labels[j]) != same {
				t.Fatalf("nodes %d,%d: refined labels %d,%d, same-group want %v", i, j, out.Labels[i], out.Labels[j], same)
			}
		}
	}
	if out.Num != 4 {
		t.Fatalf("Num = %d, want 4", out.Num)
	}
	// First-occurrence canonical numbering.
	if out.Labels[0] != 0 || out.Labels[1] != 1 {
		t.Fatalf("labels not first-occurrence compacted: %v", out.Labels)
	}
}

// TestRefineByClassK1Identity is the sharding-layer half of the K=1
// bit-identity contract: a single class must leave the partition
// untouched label-for-label.
func TestRefineByClassK1Identity(t *testing.T) {
	p := &Partition{Labels: []int{0, 1, 1, 0, 2, 2, 1}, Num: 3}
	out := RefineByClass(p, make([]int, 7))
	if out.Num != p.Num {
		t.Fatalf("Num changed: %d -> %d", p.Num, out.Num)
	}
	for i := range p.Labels {
		if out.Labels[i] != p.Labels[i] {
			t.Fatalf("label %d changed: %d -> %d", i, p.Labels[i], out.Labels[i])
		}
	}
}

func TestRefineByClassPanics(t *testing.T) {
	p := &Partition{Labels: []int{0, 0, 1}, Num: 2}
	for name, classOf := range map[string][]int{
		"short":    {0, 1},
		"negative": {0, -1, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s class vector must panic", name)
				}
			}()
			RefineByClass(p, classOf)
		}()
	}
}
