package community

import (
	"fmt"
	"sort"

	"dsgl/internal/mat"
)

// Assignment maps every node of the dynamical system to a Processing
// Element of the Scalable DSPU grid. PEs are numbered row-major on a
// GridW x GridH mesh; each PE holds at most Capacity nodes (one
// super-community).
type Assignment struct {
	// PEOf[node] is the PE index the node is placed on.
	PEOf []int
	// NodesOf[pe] lists the nodes placed on each PE.
	NodesOf [][]int
	// GridW, GridH are the mesh dimensions.
	GridW, GridH int
	// Capacity is the per-PE node budget K.
	Capacity int
}

// NumPEs returns the PE count.
func (a *Assignment) NumPEs() int { return a.GridW * a.GridH }

// PEXY returns the grid coordinates of PE pe.
func (a *Assignment) PEXY(pe int) (x, y int) { return pe % a.GridW, pe / a.GridW }

// Validate checks the structural invariants.
func (a *Assignment) Validate() error {
	if len(a.NodesOf) != a.NumPEs() {
		return fmt.Errorf("community: NodesOf has %d PEs, grid says %d", len(a.NodesOf), a.NumPEs())
	}
	seen := make([]bool, len(a.PEOf))
	for pe, nodes := range a.NodesOf {
		if len(nodes) > a.Capacity {
			return fmt.Errorf("community: PE %d holds %d nodes, capacity %d", pe, len(nodes), a.Capacity)
		}
		for _, node := range nodes {
			if node < 0 || node >= len(a.PEOf) {
				return fmt.Errorf("community: node %d out of range", node)
			}
			if seen[node] {
				return fmt.Errorf("community: node %d assigned twice", node)
			}
			seen[node] = true
			if a.PEOf[node] != pe {
				return fmt.Errorf("community: node %d PEOf=%d but listed on %d", node, a.PEOf[node], pe)
			}
		}
	}
	for node, ok := range seen {
		if !ok {
			return fmt.Errorf("community: node %d unassigned", node)
		}
	}
	return nil
}

// GridFor picks mesh dimensions for n nodes at the given per-PE capacity:
// the smallest near-square grid with enough total slots.
func GridFor(n, capacity int) (w, h int) {
	if capacity <= 0 {
		panic("community: non-positive capacity")
	}
	pes := (n + capacity - 1) / capacity
	if pes < 1 {
		pes = 1
	}
	w = 1
	for w*w < pes {
		w++
	}
	h = (pes + w - 1) / w
	return w, h
}

// Redistribute implements the community-redistribution step of Sec. IV.B:
//
//  1. communities larger than the PE capacity are split into
//     sub-communities (chunks of strongly attached nodes);
//  2. pieces are placed largest-first, each on the PE (with room) that has
//     the highest coupling affinity to the piece — preferring neighbors of
//     already-placed related pieces so split communities land on adjacent
//     PEs;
//  3. leftover small communities and isolated nodes fill remaining blanks
//     for a balanced workload.
//
// w is the symmetric coupling-strength graph (CouplingWeights of the pruned
// J); part is the Louvain partition of that graph.
func Redistribute(part *Partition, w *mat.Dense, capacity int) (*Assignment, error) {
	n := len(part.Labels)
	if w.Rows != n || w.Cols != n {
		return nil, fmt.Errorf("community: weights are %dx%d for %d nodes", w.Rows, w.Cols, n)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("community: capacity %d must be positive", capacity)
	}
	gw, gh := GridFor(n, capacity)
	a := &Assignment{
		PEOf:     make([]int, n),
		NodesOf:  make([][]int, gw*gh),
		GridW:    gw,
		GridH:    gh,
		Capacity: capacity,
	}
	for i := range a.PEOf {
		a.PEOf[i] = -1
	}

	// Build pieces: communities split to fit capacity.
	var pieces [][]int
	for _, comm := range part.Communities() {
		if len(comm) <= capacity {
			pieces = append(pieces, comm)
			continue
		}
		pieces = append(pieces, splitCommunity(comm, w, capacity)...)
	}
	// Largest pieces get placement priority (the paper grants larger
	// communities higher redistribution priority).
	sort.SliceStable(pieces, func(x, y int) bool { return len(pieces[x]) > len(pieces[y]) })

	free := make([]int, gw*gh)
	for i := range free {
		free[i] = capacity
	}
	for _, piece := range pieces {
		pe := bestPE(a, w, piece, free)
		if pe < 0 {
			// No single PE fits the piece; scatter its nodes one by one to
			// the best-affinity PEs with room.
			for _, node := range piece {
				p := bestPE(a, w, []int{node}, free)
				if p < 0 {
					return nil, fmt.Errorf("community: out of capacity placing node %d", node)
				}
				place(a, free, p, []int{node})
			}
			continue
		}
		place(a, free, pe, piece)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// place assigns nodes to pe.
func place(a *Assignment, free []int, pe int, nodes []int) {
	for _, node := range nodes {
		a.PEOf[node] = pe
		a.NodesOf[pe] = append(a.NodesOf[pe], node)
	}
	free[pe] -= len(nodes)
}

// bestPE returns the PE with room for the piece that maximizes coupling
// affinity to already-placed nodes, with a mild preference for PEs adjacent
// (on the mesh) to PEs holding coupled nodes. Returns -1 if no PE has room.
func bestPE(a *Assignment, w *mat.Dense, piece []int, free []int) int {
	best, bestScore := -1, -1.0
	for pe := range free {
		if free[pe] < len(piece) {
			continue
		}
		score := 0.0
		for _, node := range piece {
			for other, opE := range a.PEOf {
				if opE < 0 {
					continue
				}
				v := w.At(node, other)
				if v == 0 {
					continue
				}
				switch {
				case opE == pe:
					score += v // same PE: free local coupling
				case meshAdjacent(a, opE, pe):
					score += 0.5 * v // neighbor PE: cheap CU coupling
				default:
					score += 0.1 * v / (1 + meshDist(a, opE, pe))
				}
			}
		}
		// Prefer emptier PEs on ties to balance workload.
		score += 1e-6 * float64(free[pe])
		if score > bestScore {
			bestScore = score
			best = pe
		}
	}
	return best
}

func meshAdjacent(a *Assignment, p, q int) bool {
	px, py := a.PEXY(p)
	qx, qy := a.PEXY(q)
	dx, dy := px-qx, py-qy
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx+dy == 1 || (dx == 1 && dy == 1) // mesh or diagonal neighbor
}

func meshDist(a *Assignment, p, q int) float64 {
	px, py := a.PEXY(p)
	qx, qy := a.PEXY(q)
	dx, dy := px-qx, py-qy
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return float64(dx + dy)
}

// splitCommunity breaks an oversized community into chunks of at most
// capacity nodes, greedily growing each chunk around the highest-strength
// remaining node so strongly coupled nodes stay together.
func splitCommunity(comm []int, w *mat.Dense, capacity int) [][]int {
	// Candidates are scanned in ascending node order with strict-greater
	// comparisons, so exact affinity ties resolve to the lowest index. This
	// used to be a map, whose randomized iteration order made the split —
	// and therefore the placement, mask, and every fitted coupling
	// downstream — nondeterministic across runs whenever two candidates
	// tied exactly (common on graphs with repeated weights).
	remaining := append([]int(nil), comm...)
	sort.Ints(remaining)
	var chunks [][]int
	for len(remaining) > 0 {
		// Seed: the remaining node with the largest internal degree.
		seedIdx, bestDeg := -1, -1.0
		for i, v := range remaining {
			d := 0.0
			for _, u := range remaining {
				d += w.At(v, u)
			}
			if d > bestDeg {
				bestDeg = d
				seedIdx = i
			}
		}
		chunk := []int{remaining[seedIdx]}
		remaining = append(remaining[:seedIdx], remaining[seedIdx+1:]...)
		for len(chunk) < capacity && len(remaining) > 0 {
			// Attach the remaining node most coupled to the chunk.
			nextIdx, bestAff := -1, -1.0
			for i, v := range remaining {
				aff := 0.0
				for _, u := range chunk {
					aff += w.At(v, u)
				}
				if aff > bestAff {
					bestAff = aff
					nextIdx = i
				}
			}
			chunk = append(chunk, remaining[nextIdx])
			remaining = append(remaining[:nextIdx], remaining[nextIdx+1:]...)
		}
		sort.Ints(chunk)
		chunks = append(chunks, chunk)
	}
	return chunks
}
