package community

import (
	"testing"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

func TestGridFor(t *testing.T) {
	cases := []struct{ n, cap, wantW, wantH int }{
		{100, 25, 2, 2},
		{101, 25, 3, 2},
		{10, 100, 1, 1},
		{17, 4, 3, 2},
	}
	for _, c := range cases {
		w, h := GridFor(c.n, c.cap)
		if w*h*c.cap < c.n {
			t.Fatalf("GridFor(%d,%d) = %dx%d lacks capacity", c.n, c.cap, w, h)
		}
		if w != c.wantW || h != c.wantH {
			t.Fatalf("GridFor(%d,%d) = %dx%d, want %dx%d", c.n, c.cap, w, h, c.wantW, c.wantH)
		}
	}
}

func TestGridForPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GridFor(10, 0)
}

func TestRedistributeBasicInvariants(t *testing.T) {
	r := rng.New(11)
	w, _ := plantedGraph(r, 4, 10)
	p := Louvain(w, 10)
	a, err := Redistribute(p, w, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Capacity != 12 {
		t.Fatalf("capacity %d", a.Capacity)
	}
}

func TestRedistributeKeepsCommunitiesTogether(t *testing.T) {
	// Communities that fit a PE must not be split across PEs.
	r := rng.New(13)
	w, truth := plantedGraph(r, 4, 8) // communities of 8, capacity 10
	p := Louvain(w, 10)
	a, err := Redistribute(p, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		pe := -1
		for i, tc := range truth {
			if tc != c {
				continue
			}
			if pe == -1 {
				pe = a.PEOf[i]
			} else if a.PEOf[i] != pe {
				t.Fatalf("community %d split across PEs %d and %d", c, pe, a.PEOf[i])
			}
		}
	}
}

func TestRedistributeSplitsOversized(t *testing.T) {
	// One community of 20 with capacity 8 must be split over >= 3 PEs.
	r := rng.New(17)
	w, _ := plantedGraph(r, 1, 20)
	p := Louvain(w, 10)
	a, err := Redistribute(p, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	pes := make(map[int]bool)
	for _, pe := range a.PEOf {
		pes[pe] = true
	}
	if len(pes) < 3 {
		t.Fatalf("oversized community on only %d PEs", len(pes))
	}
}

func TestRedistributeAffinityPlacement(t *testing.T) {
	// Two coupled communities should land closer together than uncoupled
	// ones when the grid has room.
	n := 16
	w := mat.NewDense(n, n)
	// Communities {0-3},{4-7},{8-11},{12-15}; strong link between comm 0
	// and comm 1 only.
	setBlock := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := lo; j < hi; j++ {
				if i != j {
					w.Set(i, j, 1)
				}
			}
		}
	}
	for c := 0; c < 4; c++ {
		setBlock(c*4, c*4+4)
	}
	w.Set(0, 4, 0.9)
	w.Set(4, 0, 0.9)
	p := &Partition{Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		p.Labels[i] = i / 4
	}
	p.Num = 4
	a, err := Redistribute(p, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Coupled communities 0 and 1 must be on mesh-adjacent (incl diagonal)
	// PEs.
	pe0, pe1 := a.PEOf[0], a.PEOf[4]
	if pe0 == pe1 {
		return // even better: same PE
	}
	if !meshAdjacent(a, pe0, pe1) {
		t.Fatalf("coupled communities placed on distant PEs %d and %d", pe0, pe1)
	}
}

func TestRedistributeErrors(t *testing.T) {
	p := &Partition{Labels: []int{0, 0}, Num: 1}
	if _, err := Redistribute(p, mat.NewDense(3, 3), 4); err == nil {
		t.Fatal("expected error for size mismatch")
	}
	if _, err := Redistribute(p, mat.NewDense(2, 2), 0); err == nil {
		t.Fatal("expected error for zero capacity")
	}
}

func TestAssignmentValidateCatchesCorruption(t *testing.T) {
	a := &Assignment{
		PEOf:     []int{0, 0},
		NodesOf:  [][]int{{0, 1}},
		GridW:    1,
		GridH:    1,
		Capacity: 2,
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	a.PEOf[1] = 5
	if err := a.Validate(); err == nil {
		t.Fatal("expected error for inconsistent PEOf")
	}
	b := &Assignment{
		PEOf:     []int{0, 0, 0},
		NodesOf:  [][]int{{0, 1, 2}},
		GridW:    1,
		GridH:    1,
		Capacity: 2,
	}
	if err := b.Validate(); err == nil {
		t.Fatal("expected error for over-capacity PE")
	}
}

func TestSplitCommunityChunksRespectCapacity(t *testing.T) {
	r := rng.New(9)
	w, _ := plantedGraph(r, 1, 17)
	comm := make([]int, 17)
	for i := range comm {
		comm[i] = i
	}
	chunks := splitCommunity(comm, w, 5)
	total := 0
	for _, c := range chunks {
		if len(c) > 5 {
			t.Fatalf("chunk of size %d exceeds capacity", len(c))
		}
		total += len(c)
	}
	if total != 17 {
		t.Fatalf("chunks cover %d nodes, want 17", total)
	}
}

func TestPEXYRoundTrip(t *testing.T) {
	a := &Assignment{GridW: 3, GridH: 2}
	for pe := 0; pe < 6; pe++ {
		x, y := a.PEXY(pe)
		if y*a.GridW+x != pe {
			t.Fatalf("PEXY(%d) = (%d,%d) does not round-trip", pe, x, y)
		}
	}
}

// TestRedistributeDeterministicUnderTies is the regression for the
// map-iteration bug in splitCommunity: on a graph whose coupling weights
// tie exactly (here: uniform), the chunk seeding and growth used to follow
// randomized map order, so two Redistribute calls on identical inputs
// could place nodes on different PEs — making the whole training pipeline
// nondeterministic. Ties must now resolve to the lowest node index, so
// repeated runs are identical.
func TestRedistributeDeterministicUnderTies(t *testing.T) {
	const n, capacity = 40, 8
	w := mat.NewDense(n, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				w.Set(a, b, 1) // every affinity comparison is an exact tie
			}
		}
	}
	part := &Partition{Labels: make([]int, n), Num: 1} // one oversized community
	ref, err := Redistribute(part, w, capacity)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		got, err := Redistribute(part, w, capacity)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.PEOf {
			if got.PEOf[i] != ref.PEOf[i] {
				t.Fatalf("run %d: node %d placed on PE %d, want %d (nondeterministic split)",
					run, i, got.PEOf[i], ref.PEOf[i])
			}
		}
	}
}
