// Package community implements the learning-based decomposition pipeline of
// paper Sec. IV.B: pruning the dense coupling matrix by coupling strength,
// extracting communities with the Louvain algorithm, grouping them into
// super-communities that fit the per-PE capacity, and redistributing
// sub-communities across neighboring PEs for balanced, locality-preserving
// mappings.
package community

import (
	"fmt"
	"math"
	"sort"

	"dsgl/internal/mat"
)

// Partition assigns a community label to each node.
type Partition struct {
	Labels []int
	// Num is the number of communities (labels are 0..Num-1, compacted).
	Num int
}

// Communities returns the node lists per community label.
func (p *Partition) Communities() [][]int {
	out := make([][]int, p.Num)
	for node, c := range p.Labels {
		out[c] = append(out[c], node)
	}
	return out
}

// Modularity evaluates Newman modularity of the partition over the weighted
// symmetric graph w.
func (p *Partition) Modularity(w *mat.Dense) float64 {
	n := w.Rows
	deg := make([]float64, n)
	var total float64 // 2m
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			deg[i] += w.At(i, j)
		}
		total += deg[i]
	}
	if total == 0 {
		return 0
	}
	var q float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if p.Labels[i] == p.Labels[j] {
				q += w.At(i, j) - deg[i]*deg[j]/total
			}
		}
	}
	return q / total
}

// compact renumbers labels to 0..k-1 and sets Num.
func (p *Partition) compact() {
	remap := make(map[int]int)
	for i, l := range p.Labels {
		if _, ok := remap[l]; !ok {
			remap[l] = len(remap)
		}
		p.Labels[i] = remap[l]
	}
	p.Num = len(remap)
}

// CouplingWeights converts a (possibly asymmetric, signed) coupling matrix
// into the symmetric non-negative weight graph used for community
// extraction: w_ij = |J_ij| + |J_ji|, zero diagonal. Coupling strength —
// the magnitude — is what determines which links matter during annealing.
func CouplingWeights(j *mat.Dense) *mat.Dense {
	n := j.Rows
	w := mat.NewDense(n, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			w.Set(a, b, math.Abs(j.At(a, b))+math.Abs(j.At(b, a)))
		}
	}
	return w
}

// Louvain runs the Louvain community-detection algorithm (Blondel et al.
// 2008, the paper's choice) on the weighted symmetric graph w. maxPasses
// bounds the number of level iterations; 10 is plenty for the graph sizes
// here.
func Louvain(w *mat.Dense, maxPasses int) *Partition {
	n := w.Rows
	if n == 0 {
		return &Partition{Labels: nil, Num: 0}
	}
	// Current graph (aggregated as levels proceed).
	cur := w.Clone()
	// mapping[node in original graph] -> node in current graph.
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = i
	}
	for pass := 0; pass < maxPasses; pass++ {
		labels, moved := louvainLocal(cur)
		if !moved && pass > 0 {
			break
		}
		// Compact labels.
		lp := &Partition{Labels: labels}
		lp.compact()
		// Update original-node mapping.
		for i := range mapping {
			mapping[i] = lp.Labels[mapping[i]]
		}
		if lp.Num == cur.Rows {
			break // no aggregation possible
		}
		// Aggregate graph: communities become nodes. Intra-community
		// weight becomes a self-loop, which must be preserved — it keeps
		// the super-node's degree honest so later passes do not merge
		// weakly-linked communities.
		next := mat.NewDense(lp.Num, lp.Num)
		for a := 0; a < cur.Rows; a++ {
			for b := 0; b < cur.Cols; b++ {
				if v := cur.At(a, b); v != 0 {
					next.Add(lp.Labels[a], lp.Labels[b], v)
				}
			}
		}
		cur = next
	}
	p := &Partition{Labels: mapping}
	p.compact()
	return p
}

// louvainLocal performs the local-moving phase: repeatedly move nodes to
// the neighboring community with the largest modularity gain until no move
// improves. Returns labels and whether anything moved.
func louvainLocal(w *mat.Dense) ([]int, bool) {
	n := w.Rows
	labels := make([]int, n)
	deg := make([]float64, n)
	var m2 float64 // 2m
	for i := 0; i < n; i++ {
		labels[i] = i
		for j := 0; j < n; j++ {
			deg[i] += w.At(i, j)
		}
		m2 += deg[i]
	}
	if m2 == 0 {
		return labels, false
	}
	commDeg := mat.CopyVec(deg) // total degree per community
	anyMoved := false
	for iter := 0; iter < 50; iter++ {
		movedThisIter := false
		for i := 0; i < n; i++ {
			// Weights from i to each neighboring community.
			toComm := make(map[int]float64)
			for j := 0; j < n; j++ {
				if j != i {
					if v := w.At(i, j); v != 0 {
						toComm[labels[j]] += v
					}
				}
			}
			old := labels[i]
			commDeg[old] -= deg[i]
			bestComm, bestGain := old, 0.0
			baseGain := toComm[old] - commDeg[old]*deg[i]/m2
			for c, wic := range toComm {
				gain := wic - commDeg[c]*deg[i]/m2
				if gain-baseGain > bestGain+1e-12 {
					bestGain = gain - baseGain
					bestComm = c
				}
			}
			labels[i] = bestComm
			commDeg[bestComm] += deg[i]
			if bestComm != old {
				movedThisIter = true
				anyMoved = true
			}
		}
		if !movedThisIter {
			break
		}
	}
	return labels, anyMoved
}

// PruneToDensity returns a copy of j keeping only the strongest couplings
// so that the off-diagonal density is at most density (the paper's
// "communication demand density" D applied globally). Entries are ranked by
// |J_ij| + |J_ji| so coupled pairs survive or die together, preserving the
// pairwise resistor-ring structure.
func PruneToDensity(j *mat.Dense, density float64) *mat.Dense {
	n := j.Rows
	if n != j.Cols {
		panic(fmt.Sprintf("community: PruneToDensity on %dx%d", n, j.Cols))
	}
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("community: density %g out of [0,1]", density))
	}
	type pair struct {
		a, b int
		mag  float64
	}
	pairs := make([]pair, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			mag := math.Abs(j.At(a, b)) + math.Abs(j.At(b, a))
			if mag > 0 {
				pairs = append(pairs, pair{a, b, mag})
			}
		}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].mag > pairs[y].mag })
	// Each kept pair contributes 2 entries out of n*n budget.
	budget := int(density * float64(n) * float64(n) / 2)
	if budget > len(pairs) {
		budget = len(pairs)
	}
	out := mat.NewDense(n, n)
	for _, p := range pairs[:budget] {
		out.Set(p.a, p.b, j.At(p.a, p.b))
		out.Set(p.b, p.a, j.At(p.b, p.a))
	}
	return out
}

// SupportMask returns the boolean support of j (|v| > eps, diagonal
// excluded).
func SupportMask(j *mat.Dense, eps float64) *mat.Bool {
	m := mat.NewBool(j.Rows, j.Cols)
	for a := 0; a < j.Rows; a++ {
		for b := 0; b < j.Cols; b++ {
			if a != b && math.Abs(j.At(a, b)) > eps {
				m.Set(a, b, true)
			}
		}
	}
	return m
}

// RefineByClass splits every community along interaction-class boundaries:
// two nodes stay in the same refined community only if they share both the
// original community AND the class label. The heterogeneous-decomposition
// pipeline runs this between Louvain and Redistribute so shards never mix
// interaction classes (ROADMAP item 5). With a single class the input
// partition is returned label-for-label: Louvain output is already
// compacted by first occurrence, and so is the refinement — the K=1
// decomposed pipeline stays bit-identical to the monolithic one.
//
// Like the rest of this package, malformed input panics: classOf must
// cover every node and hold non-negative labels.
func RefineByClass(p *Partition, classOf []int) *Partition {
	if len(classOf) != len(p.Labels) {
		panic(fmt.Sprintf("community: class vector has %d entries, want %d", len(classOf), len(p.Labels)))
	}
	k := 0
	for i, c := range classOf {
		if c < 0 {
			panic(fmt.Sprintf("community: negative class %d at node %d", c, i))
		}
		if c+1 > k {
			k = c + 1
		}
	}
	out := &Partition{Labels: make([]int, len(p.Labels))}
	for i, l := range p.Labels {
		out.Labels[i] = l*k + classOf[i]
	}
	out.compact()
	return out
}
