package community

import "sort"

// ShardNodes groups the assignment's PEs — one Louvain super-community
// each — into at most k balanced node shards for the software-sharded
// anneal (internal/scalable). PEs are walked in grid row-major order, so
// communities that Redistribute split across adjacent PEs land in the same
// or neighboring shards, keeping most coupling traffic intra-shard; a
// shard closes once it reaches the balanced target ceil(n/k). Each shard's
// node list is sorted ascending (the anneal kernels iterate free-node
// lists in index order).
//
// Returns nil when sharding is pointless: k <= 1, or fewer than two
// non-empty shards would result.
func ShardNodes(a *Assignment, k int) [][]int {
	if a == nil || k <= 1 {
		return nil
	}
	n := len(a.PEOf)
	target := (n + k - 1) / k
	var shards [][]int
	var cur []int
	for pe := 0; pe < a.NumPEs(); pe++ {
		nodes := a.NodesOf[pe]
		if len(nodes) == 0 {
			continue
		}
		cur = append(cur, nodes...)
		if len(cur) >= target && len(shards) < k-1 {
			shards = append(shards, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		shards = append(shards, cur)
	}
	if len(shards) < 2 {
		return nil
	}
	for _, s := range shards {
		sort.Ints(s)
	}
	return shards
}
