package community

import (
	"sort"
	"testing"
)

// shardAssignment builds a contiguous assignment: pes PEs of cap nodes each
// on a pes x 1 grid.
func shardAssignment(pes, cap int) *Assignment {
	n := pes * cap
	a := &Assignment{
		PEOf:     make([]int, n),
		NodesOf:  make([][]int, pes),
		GridW:    pes,
		GridH:    1,
		Capacity: cap,
	}
	for i := 0; i < n; i++ {
		pe := i / cap
		a.PEOf[i] = pe
		a.NodesOf[pe] = append(a.NodesOf[pe], i)
	}
	return a
}

func TestShardNodesPartitionsAllNodes(t *testing.T) {
	a := shardAssignment(8, 6)
	shards := ShardNodes(a, 4)
	if len(shards) < 2 || len(shards) > 4 {
		t.Fatalf("got %d shards, want 2..4", len(shards))
	}
	seen := make(map[int]int)
	for s, nodes := range shards {
		if !sort.IntsAreSorted(nodes) {
			t.Fatalf("shard %d not sorted: %v", s, nodes)
		}
		for _, v := range nodes {
			if prev, dup := seen[v]; dup {
				t.Fatalf("node %d in shards %d and %d", v, prev, s)
			}
			seen[v] = s
		}
	}
	if len(seen) != len(a.PEOf) {
		t.Fatalf("shards cover %d of %d nodes", len(seen), len(a.PEOf))
	}
	// Balance: no shard may exceed twice the ideal share (PE granularity
	// forces some slack, but the greedy close-at-target walk bounds it).
	ideal := len(a.PEOf) / len(shards)
	for s, nodes := range shards {
		if len(nodes) > 2*ideal {
			t.Fatalf("shard %d holds %d nodes, ideal %d", s, len(nodes), ideal)
		}
	}
}

func TestShardNodesKeepsPEsIntact(t *testing.T) {
	a := shardAssignment(6, 4)
	shards := ShardNodes(a, 3)
	shardOf := make(map[int]int)
	for s, nodes := range shards {
		for _, v := range nodes {
			shardOf[v] = s
		}
	}
	for pe := 0; pe < a.NumPEs(); pe++ {
		nodes := a.NodesOf[pe]
		for _, v := range nodes[1:] {
			if shardOf[v] != shardOf[nodes[0]] {
				t.Fatalf("PE %d split across shards %d and %d", pe, shardOf[nodes[0]], shardOf[v])
			}
		}
	}
}

func TestShardNodesDegenerateCases(t *testing.T) {
	if s := ShardNodes(nil, 4); s != nil {
		t.Fatalf("nil assignment: got %v", s)
	}
	a := shardAssignment(4, 3)
	if s := ShardNodes(a, 1); s != nil {
		t.Fatalf("k=1: got %v", s)
	}
	if s := ShardNodes(a, 0); s != nil {
		t.Fatalf("k=0: got %v", s)
	}
	// A single non-empty PE cannot produce two shards.
	single := shardAssignment(1, 5)
	if s := ShardNodes(single, 4); s != nil {
		t.Fatalf("single PE: got %v", s)
	}
	// k larger than the PE count still yields at most one shard per PE.
	many := ShardNodes(a, 100)
	if len(many) != a.NumPEs() {
		t.Fatalf("k=100 over %d PEs: got %d shards", a.NumPEs(), len(many))
	}
}
