package lru

import "testing"

func k(s string) []byte { return []byte(s) }

func TestGetMiss(t *testing.T) {
	c := New[int](2)
	if v, ok := c.Get(k("a")); ok || v != 0 {
		t.Fatalf("empty cache returned (%v, %v)", v, ok)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestAddGetOverwrite(t *testing.T) {
	c := New[int](2)
	if evicted := c.Add(k("a"), 1); evicted {
		t.Fatal("first Add evicted")
	}
	if v, ok := c.Get(k("a")); !ok || v != 1 {
		t.Fatalf("Get(a) = (%v, %v), want (1, true)", v, ok)
	}
	if evicted := c.Add(k("a"), 2); evicted {
		t.Fatal("overwrite evicted")
	}
	if v, _ := c.Get(k("a")); v != 2 {
		t.Fatalf("overwrite lost: got %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[int](2)
	c.Add(k("a"), 1)
	c.Add(k("b"), 2)
	// Touch "a" so "b" is now the LRU entry.
	c.Get(k("a"))
	if evicted := c.Add(k("c"), 3); !evicted {
		t.Fatal("Add over capacity must evict")
	}
	if c.Contains(k("b")) {
		t.Fatal("LRU entry b should have been evicted")
	}
	if !c.Contains(k("a")) || !c.Contains(k("c")) {
		t.Fatal("recently used entries lost")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictionOrderWithoutTouches(t *testing.T) {
	c := New[int](3)
	for i, key := range []string{"a", "b", "c", "d", "e"} {
		c.Add(k(key), i)
	}
	// Insert order is the recency order; only the last 3 survive.
	for _, key := range []string{"a", "b"} {
		if c.Contains(k(key)) {
			t.Fatalf("%q should have been evicted", key)
		}
	}
	for _, key := range []string{"c", "d", "e"} {
		if !c.Contains(k(key)) {
			t.Fatalf("%q should be cached", key)
		}
	}
}

func TestCapacityOneAndNormalization(t *testing.T) {
	for _, capIn := range []int{1, 0, -5} {
		c := New[string](capIn)
		if c.Cap() != 1 {
			t.Fatalf("Cap(%d) = %d, want 1", capIn, c.Cap())
		}
		c.Add(k("a"), "A")
		c.Add(k("b"), "B")
		if c.Contains(k("a")) || !c.Contains(k("b")) || c.Len() != 1 {
			t.Fatalf("capacity-1 cache state wrong: len=%d", c.Len())
		}
		// Evict down to empty tail handling: overwrite survivor, then roll.
		c.Add(k("b"), "B2")
		c.Add(k("c"), "C")
		if v, ok := c.Get(k("c")); !ok || v != "C" {
			t.Fatalf("Get(c) = (%v, %v)", v, ok)
		}
	}
}

func TestGetDoesNotAllocateOnHit(t *testing.T) {
	c := New[int](4)
	key := k("pattern")
	c.Add(key, 42)
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := c.Get(key); !ok {
			t.Fatal("lost entry")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocated %v per hit, want 0", allocs)
	}
}

func TestEachVisitsMRUFirstWithoutTouching(t *testing.T) {
	c := New[int](3)
	c.Add(k("a"), 1)
	c.Add(k("b"), 2)
	c.Add(k("c"), 3)
	c.Get(k("a")) // a becomes MRU: order a, c, b
	var keys []string
	var vals []int
	c.Each(func(key string, v int) {
		keys = append(keys, key)
		vals = append(vals, v)
	})
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "c" || keys[2] != "b" {
		t.Fatalf("Each order = %v, want [a c b]", keys)
	}
	if vals[0] != 1 || vals[1] != 3 || vals[2] != 2 {
		t.Fatalf("Each vals = %v, want [1 3 2]", vals)
	}
	// Each must not perturb recency: next eviction still removes b.
	c.Add(k("d"), 4)
	if _, ok := c.Get(k("b")); ok {
		t.Fatal("Each changed recency: b should have been evicted")
	}
	if _, ok := c.Get(k("c")); !ok {
		t.Fatal("c should still be resident")
	}
}
