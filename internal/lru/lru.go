// Package lru provides a tiny bounded least-recently-used cache keyed by
// byte strings. It exists for the clamp-plan caches: compiled inference
// plans are keyed by the packed observation-index bitmask of a window
// pattern, looked up on every inference, and bounded so that adversarial
// pattern churn cannot grow the cache without limit.
//
// The cache is NOT goroutine-safe; callers guard it with their own mutex
// (the plan caches share one lock with their hit/miss counters).
//
// Get takes the key as []byte so that the steady-state hit path performs no
// heap allocation: the map index expression m[string(k)] is recognized by
// the compiler and does not copy the key. Add converts the key to a string
// once, on insertion.
package lru

// node is one doubly-linked cache entry; head is most recently used.
type node[V any] struct {
	key        string
	val        V
	prev, next *node[V]
}

// Cache is a bounded LRU cache from byte-string keys to values of type V.
type Cache[V any] struct {
	capacity   int
	m          map[string]*node[V]
	head, tail *node[V]
}

// New returns an empty cache holding at most capacity entries.
// capacity < 1 is normalized to 1.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{capacity: capacity, m: make(map[string]*node[V], capacity)}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int { return len(c.m) }

// Cap returns the capacity bound.
func (c *Cache[V]) Cap() int { return c.capacity }

// Get looks key up and, on a hit, marks it most recently used.
// The hit path performs no heap allocation.
func (c *Cache[V]) Get(key []byte) (V, bool) {
	n, ok := c.m[string(key)]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.val, true
}

// Add inserts (or overwrites) key -> val as the most recently used entry,
// evicting the least recently used entry when the cache is full. It reports
// whether an eviction happened.
func (c *Cache[V]) Add(key []byte, val V) (evicted bool) {
	if n, ok := c.m[string(key)]; ok {
		n.val = val
		c.moveToFront(n)
		return false
	}
	n := &node[V]{key: string(key), val: val}
	c.m[n.key] = n
	c.pushFront(n)
	if len(c.m) > c.capacity {
		c.evictTail()
		return true
	}
	return false
}

// Each calls fn for every resident entry without touching recency, most
// recently used first. The clamp-plan cache uses it to rebuild the
// lock-free read snapshot after an insert or eviction; iteration cost is
// bounded by the capacity.
func (c *Cache[V]) Each(fn func(key string, val V)) {
	for n := c.head; n != nil; n = n.next {
		fn(n.key, n.val)
	}
}

// Contains reports whether key is cached without touching recency.
func (c *Cache[V]) Contains(key []byte) bool {
	_, ok := c.m[string(key)]
	return ok
}

func (c *Cache[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache[V]) moveToFront(n *node[V]) {
	if c.head == n {
		return
	}
	// Unlink.
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if c.tail == n {
		c.tail = n.prev
	}
	c.pushFront(n)
}

func (c *Cache[V]) evictTail() {
	t := c.tail
	if t == nil {
		return
	}
	delete(c.m, t.key)
	c.tail = t.prev
	if c.tail != nil {
		c.tail.next = nil
	} else {
		c.head = nil
	}
	t.prev, t.next = nil, nil
}
