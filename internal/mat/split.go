package mat

import "fmt"

// SplitRowPlan classifies the rows of a square CSR against a clamp mask the
// way the clamp-plan compilers need them: rows whose stored entries all sit
// on clamped columns land in static (their coupling sum is a constant that
// can be folded once per inference), rows touching at least one free column
// land in dyn (they must be re-evaluated every anneal step). Clamped rows
// and empty rows land in neither. Both output matrices keep the full
// original row verbatim — same entries, same within-row order — so running
// a static row's fold or a dyn row's per-step sum accumulates in exactly
// the original order, which is what keeps the planned path bit-identical
// to the naive loop.
func SplitRowPlan(s *CSR, clamped []bool) (static, dyn *CSR) {
	if len(clamped) != s.Cols || s.Rows != s.Cols {
		panic(fmt.Sprintf("mat: SplitRowPlan wants a square matrix and a matching mask: %dx%d matrix, %d mask", s.Rows, s.Cols, len(clamped)))
	}
	static = &CSR{Rows: s.Rows, Cols: s.Cols, RowPtr: make([]int, s.Rows+1)}
	dyn = &CSR{Rows: s.Rows, Cols: s.Cols, RowPtr: make([]int, s.Rows+1)}
	for i := 0; i < s.Rows; i++ {
		classifyRow(s, i, clamped, static, dyn)
		static.RowPtr[i+1] = len(static.Val)
		dyn.RowPtr[i+1] = len(dyn.Val)
	}
	return static, dyn
}

// classifyRow appends row i of s to static or dyn (or neither) under the
// SplitRowPlan rules. RowPtr bookkeeping is the caller's.
func classifyRow(s *CSR, i int, clamped []bool, static, dyn *CSR) {
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	if clamped[i] || lo == hi {
		return
	}
	free := 0
	for p := lo; p < hi; p++ {
		if !clamped[s.ColIdx[p]] {
			free++
		}
	}
	dst := dyn
	if free == 0 {
		dst = static
	}
	dst.ColIdx = append(dst.ColIdx, s.ColIdx[lo:hi]...)
	dst.Val = append(dst.Val, s.Val[lo:hi]...)
}

// ColRows returns, for every column, the ascending list of rows that store
// an entry in that column — the transpose adjacency PatchRowPlan uses to
// find the rows a clamp-mask delta touches without rescanning the matrix.
// The lists share one backing array; treat the result as read-only.
func (s *CSR) ColRows() [][]int32 {
	counts := make([]int32, s.Cols)
	for _, j := range s.ColIdx {
		counts[j]++
	}
	flat := make([]int32, 0, len(s.ColIdx))
	out := make([][]int32, s.Cols)
	pos := 0
	for j, c := range counts {
		out[j] = flat[pos : pos : pos+int(c)]
		pos += int(c)
	}
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			j := s.ColIdx[p]
			out[j] = append(out[j], int32(i))
		}
	}
	return out
}

// PatchRowPlan rebuilds SplitRowPlan(s, newClamped) from the split computed
// for oldClamped, reclassifying only the rows the mask delta can affect: the
// rows whose own clamp bit flipped plus every row with an entry in a flipped
// column (found through colRows, which must be s.ColRows()). All other rows
// are carried over from the previous split verbatim, so the result is
// structurally identical — RowPtr, ColIdx, and Val bit for bit — to a fresh
// SplitRowPlan of the new mask. The previous split is never mutated (it may
// still be resident in a plan cache under the old mask's key). When the
// masks are equal the previous matrices are returned as-is.
func PatchRowPlan(s *CSR, static, dyn *CSR, colRows [][]int32, oldClamped, newClamped []bool) (*CSR, *CSR) {
	if len(oldClamped) != s.Cols || len(newClamped) != s.Cols || s.Rows != s.Cols {
		panic(fmt.Sprintf("mat: PatchRowPlan wants a square matrix and matching masks: %dx%d matrix, %d/%d masks", s.Rows, s.Cols, len(oldClamped), len(newClamped)))
	}
	if len(colRows) != s.Cols {
		panic(fmt.Sprintf("mat: PatchRowPlan colRows has %d columns, want %d", len(colRows), s.Cols))
	}
	affected := make([]bool, s.Rows)
	changed := false
	for j := range newClamped {
		if oldClamped[j] == newClamped[j] {
			continue
		}
		changed = true
		affected[j] = true
		for _, r := range colRows[j] {
			affected[r] = true
		}
	}
	if !changed {
		return static, dyn
	}
	ns := &CSR{
		Rows: s.Rows, Cols: s.Cols,
		RowPtr: make([]int, s.Rows+1),
		ColIdx: make([]int, 0, len(static.Val)),
		Val:    make([]float64, 0, len(static.Val)),
	}
	nd := &CSR{
		Rows: s.Rows, Cols: s.Cols,
		RowPtr: make([]int, s.Rows+1),
		ColIdx: make([]int, 0, len(dyn.Val)),
		Val:    make([]float64, 0, len(dyn.Val)),
	}
	for i := 0; i < s.Rows; i++ {
		if affected[i] {
			classifyRow(s, i, newClamped, ns, nd)
		} else {
			if lo, hi := static.RowPtr[i], static.RowPtr[i+1]; hi > lo {
				ns.ColIdx = append(ns.ColIdx, static.ColIdx[lo:hi]...)
				ns.Val = append(ns.Val, static.Val[lo:hi]...)
			}
			if lo, hi := dyn.RowPtr[i], dyn.RowPtr[i+1]; hi > lo {
				nd.ColIdx = append(nd.ColIdx, dyn.ColIdx[lo:hi]...)
				nd.Val = append(nd.Val, dyn.Val[lo:hi]...)
			}
		}
		ns.RowPtr[i+1] = len(ns.Val)
		nd.RowPtr[i+1] = len(nd.Val)
	}
	return ns, nd
}
