package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseFromLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong data length")
		}
	}()
	NewDenseFrom(2, 2, []float64{1, 2, 3})
}

func TestAtSetAdd(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %g, want 5", got)
	}
	m.Add(1, 2, 2.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("after Add: %g, want 7.5", got)
	}
}

func TestRowIsView(t *testing.T) {
	m := NewDense(2, 2)
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must return a view, not a copy")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{0, 4, 2, 0})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("symmetrize failed: %v", m.Data)
	}
}

func TestZeroDiagonal(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	m.ZeroDiagonal()
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 || m.At(0, 1) != 2 {
		t.Fatalf("ZeroDiagonal wrong: %v", m.Data)
	}
}

func TestMulVec(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulVecReuse(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 0, 0, 1})
	buf := make([]float64, 2)
	y := m.MulVec([]float64{3, 4}, buf)
	if &y[0] != &buf[0] {
		t.Fatal("MulVec should reuse provided buffer")
	}
	if y[0] != 3 || y[1] != 4 {
		t.Fatalf("identity MulVec = %v", y)
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Mul[%d] = %g, want %g", i, c.Data[i], v)
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// (A*B)*v == A*(B*v) for random small matrices.
	f := func(seed int64) bool {
		r := newTestRand(seed)
		a := randDense(r, 4, 5)
		b := randDense(r, 5, 3)
		v := randVec(r, 3)
		left := Mul(a, b).MulVec(v, nil)
		right := a.MulVec(b.MulVec(v, nil), nil)
		for i := range left {
			if math.Abs(left[i]-right[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNNZAndDensity(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{0, 0.5, 1e-12, -2})
	if got := m.NNZ(1e-9); got != 2 {
		t.Fatalf("NNZ = %d, want 2", got)
	}
	if got := m.Density(1e-9); got != 0.5 {
		t.Fatalf("Density = %g, want 0.5", got)
	}
}

func TestApplyMask(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	mask := NewBool(2, 2)
	mask.Set(0, 0, true)
	mask.Set(1, 1, true)
	m.ApplyMask(mask)
	if m.At(0, 1) != 0 || m.At(1, 0) != 0 || m.At(0, 0) != 1 || m.At(1, 1) != 4 {
		t.Fatalf("ApplyMask wrong: %v", m.Data)
	}
}

func TestEqualTolerance(t *testing.T) {
	a := NewDenseFrom(1, 2, []float64{1, 2})
	b := NewDenseFrom(1, 2, []float64{1.0001, 2})
	if !a.Equal(b, 1e-3) {
		t.Fatal("expected equal within tolerance")
	}
	if a.Equal(b, 1e-6) {
		t.Fatal("expected unequal at tight tolerance")
	}
	c := NewDense(2, 1)
	if a.Equal(c, 1) {
		t.Fatal("different shapes must not compare equal")
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewDenseFrom(1, 3, []float64{-5, 2, 4})
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %g", m.MaxAbs())
	}
}

func TestBoolCountOrClone(t *testing.T) {
	a := NewBool(2, 2)
	a.Set(0, 0, true)
	b := NewBool(2, 2)
	b.Set(1, 1, true)
	a.Or(b)
	if a.Count() != 2 {
		t.Fatalf("Count = %d, want 2", a.Count())
	}
	c := a.Clone()
	c.Set(0, 1, true)
	if a.At(0, 1) {
		t.Fatal("Clone must be independent")
	}
}

// Lightweight deterministic helper RNG for property tests (keeps this
// package dependency-free).
type testRand struct{ state uint64 }

func newTestRand(seed int64) *testRand { return &testRand{state: uint64(seed)*2654435761 + 1} }

func (r *testRand) next() float64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / (1 << 53)
}

func randDense(r *testRand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.next()*2 - 1
	}
	return m
}

func randVec(r *testRand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.next()*2 - 1
	}
	return v
}
