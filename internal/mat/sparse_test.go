package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromDenseRoundTrip(t *testing.T) {
	m := NewDenseFrom(3, 3, []float64{0, 1, 0, 2, 0, 3, 0, 0, 0})
	s := FromDense(m, 0)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
	back := s.ToDense()
	if !back.Equal(m, 0) {
		t.Fatalf("round trip mismatch: %v vs %v", back.Data, m.Data)
	}
}

func TestFromDenseEps(t *testing.T) {
	m := NewDenseFrom(1, 3, []float64{0.001, 0.5, -0.0005})
	s := FromDense(m, 0.01)
	if s.NNZ() != 1 || s.Val[0] != 0.5 {
		t.Fatalf("eps pruning failed: %v", s.Val)
	}
}

func TestCSRAt(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{0, 7, 0, 1, 0, 2})
	s := FromDense(m, 0)
	cases := [][3]float64{{0, 1, 7}, {0, 0, 0}, {1, 0, 1}, {1, 2, 2}, {1, 1, 0}}
	for _, c := range cases {
		if got := s.At(int(c[0]), int(c[1])); got != c[2] {
			t.Fatalf("At(%d,%d) = %g, want %g", int(c[0]), int(c[1]), got, c[2])
		}
	}
}

func TestCSRMulVecMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m := NewDense(6, 6)
		for i := range m.Data {
			if r.next() < 0.3 {
				m.Data[i] = r.next()*2 - 1
			}
		}
		v := randVec(r, 6)
		dy := m.MulVec(v, nil)
		sy := FromDense(m, 0).MulVec(v, nil)
		for i := range dy {
			if math.Abs(dy[i]-sy[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRDensity(t *testing.T) {
	m := NewDense(4, 4)
	m.Set(0, 1, 1)
	m.Set(2, 3, 1)
	s := FromDense(m, 0)
	if got := s.Density(); got != 2.0/16 {
		t.Fatalf("Density = %g", got)
	}
}

func TestCSRRowNNZ(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 1, 0, 1})
	s := FromDense(m, 0)
	if s.RowNNZ(0) != 2 || s.RowNNZ(1) != 1 {
		t.Fatalf("RowNNZ = %d,%d", s.RowNNZ(0), s.RowNNZ(1))
	}
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1.5)
	b.Add(0, 1, 0.5)
	b.Add(1, 0, -1)
	s := b.Build()
	if got := s.At(0, 1); got != 2 {
		t.Fatalf("duplicate sum = %g, want 2", got)
	}
	if got := s.At(1, 0); got != -1 {
		t.Fatalf("At(1,0) = %g", got)
	}
}

func TestBuilderEmptyRows(t *testing.T) {
	b := NewBuilder(4, 4)
	b.Add(3, 0, 1)
	s := b.Build()
	if s.RowNNZ(0) != 0 || s.RowNNZ(1) != 0 || s.RowNNZ(2) != 0 || s.RowNNZ(3) != 1 {
		t.Fatalf("row pointers wrong: %v", s.RowPtr)
	}
	if s.At(3, 0) != 1 {
		t.Fatal("missing entry")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestBuilderMatchesFromDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m := NewDense(5, 5)
		b := NewBuilder(5, 5)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if r.next() < 0.4 {
					v := r.next()
					m.Set(i, j, v)
					b.Add(i, j, v)
				}
			}
		}
		return b.Build().ToDense().Equal(m, 1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
