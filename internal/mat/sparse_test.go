package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromDenseRoundTrip(t *testing.T) {
	m := NewDenseFrom(3, 3, []float64{0, 1, 0, 2, 0, 3, 0, 0, 0})
	s := FromDense(m, 0)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
	back := s.ToDense()
	if !back.Equal(m, 0) {
		t.Fatalf("round trip mismatch: %v vs %v", back.Data, m.Data)
	}
}

func TestFromDenseEps(t *testing.T) {
	m := NewDenseFrom(1, 3, []float64{0.001, 0.5, -0.0005})
	s := FromDense(m, 0.01)
	if s.NNZ() != 1 || s.Val[0] != 0.5 {
		t.Fatalf("eps pruning failed: %v", s.Val)
	}
}

func TestCSRAt(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{0, 7, 0, 1, 0, 2})
	s := FromDense(m, 0)
	cases := [][3]float64{{0, 1, 7}, {0, 0, 0}, {1, 0, 1}, {1, 2, 2}, {1, 1, 0}}
	for _, c := range cases {
		if got := s.At(int(c[0]), int(c[1])); got != c[2] {
			t.Fatalf("At(%d,%d) = %g, want %g", int(c[0]), int(c[1]), got, c[2])
		}
	}
}

func TestCSRMulVecMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m := NewDense(6, 6)
		for i := range m.Data {
			if r.next() < 0.3 {
				m.Data[i] = r.next()*2 - 1
			}
		}
		v := randVec(r, 6)
		dy := m.MulVec(v, nil)
		sy := FromDense(m, 0).MulVec(v, nil)
		for i := range dy {
			if math.Abs(dy[i]-sy[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRDensity(t *testing.T) {
	m := NewDense(4, 4)
	m.Set(0, 1, 1)
	m.Set(2, 3, 1)
	s := FromDense(m, 0)
	if got := s.Density(); got != 2.0/16 {
		t.Fatalf("Density = %g", got)
	}
}

func TestCSRRowNNZ(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 1, 0, 1})
	s := FromDense(m, 0)
	if s.RowNNZ(0) != 2 || s.RowNNZ(1) != 1 {
		t.Fatalf("RowNNZ = %d,%d", s.RowNNZ(0), s.RowNNZ(1))
	}
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1.5)
	b.Add(0, 1, 0.5)
	b.Add(1, 0, -1)
	s := b.Build()
	if got := s.At(0, 1); got != 2 {
		t.Fatalf("duplicate sum = %g, want 2", got)
	}
	if got := s.At(1, 0); got != -1 {
		t.Fatalf("At(1,0) = %g", got)
	}
}

func TestBuilderEmptyRows(t *testing.T) {
	b := NewBuilder(4, 4)
	b.Add(3, 0, 1)
	s := b.Build()
	if s.RowNNZ(0) != 0 || s.RowNNZ(1) != 0 || s.RowNNZ(2) != 0 || s.RowNNZ(3) != 1 {
		t.Fatalf("row pointers wrong: %v", s.RowPtr)
	}
	if s.At(3, 0) != 1 {
		t.Fatal("missing entry")
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

// TestSplitCols is the table test of the column-partition kernel: empty
// rows, all-clamped, none-clamped, and the 1×1 corner, plus a mixed case.
func TestSplitCols(t *testing.T) {
	for _, tc := range []struct {
		name           string
		rows, cols     int
		data           []float64
		mask           []bool
		wantFreeNNZ    int
		wantClampedNNZ int
	}{
		{
			name: "mixed-rows",
			rows: 3, cols: 4,
			data: []float64{
				1, 0, 2, 0,
				0, 3, 0, 4,
				5, 6, 0, 0,
			},
			mask:        []bool{true, false, true, false},
			wantFreeNNZ: 3, wantClampedNNZ: 3,
		},
		{
			name: "empty-rows",
			rows: 4, cols: 3,
			data: []float64{
				0, 0, 0,
				1, 0, 2,
				0, 0, 0,
				0, 3, 0,
			},
			mask:        []bool{false, true, false},
			wantFreeNNZ: 2, wantClampedNNZ: 1,
		},
		{
			name: "all-clamped",
			rows: 2, cols: 2,
			data:        []float64{0, 1, 2, 0},
			mask:        []bool{true, true},
			wantFreeNNZ: 0, wantClampedNNZ: 2,
		},
		{
			name: "none-clamped",
			rows: 2, cols: 2,
			data:        []float64{0, 1, 2, 0},
			mask:        []bool{false, false},
			wantFreeNNZ: 2, wantClampedNNZ: 0,
		},
		{
			name: "1x1-clamped",
			rows: 1, cols: 1,
			data:        []float64{7},
			mask:        []bool{true},
			wantFreeNNZ: 0, wantClampedNNZ: 1,
		},
		{
			name: "1x1-free",
			rows: 1, cols: 1,
			data:        []float64{7},
			mask:        []bool{false},
			wantFreeNNZ: 1, wantClampedNNZ: 0,
		},
		{
			name: "1x1-empty",
			rows: 1, cols: 1,
			data:        []float64{0},
			mask:        []bool{true},
			wantFreeNNZ: 0, wantClampedNNZ: 0,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig := NewDenseFrom(tc.rows, tc.cols, tc.data)
			s := FromDense(orig, 0)
			free, clamped := s.SplitCols(tc.mask)
			if free.Rows != s.Rows || free.Cols != s.Cols ||
				clamped.Rows != s.Rows || clamped.Cols != s.Cols {
				t.Fatalf("shapes diverge: free %dx%d clamped %dx%d, want %dx%d",
					free.Rows, free.Cols, clamped.Rows, clamped.Cols, s.Rows, s.Cols)
			}
			if free.NNZ() != tc.wantFreeNNZ || clamped.NNZ() != tc.wantClampedNNZ {
				t.Fatalf("NNZ split = (%d free, %d clamped), want (%d, %d)",
					free.NNZ(), clamped.NNZ(), tc.wantFreeNNZ, tc.wantClampedNNZ)
			}
			// Every free entry must sit on an unmasked column, every
			// clamped entry on a masked one.
			for _, j := range free.ColIdx {
				if tc.mask[j] {
					t.Fatalf("free part holds masked column %d", j)
				}
			}
			for _, j := range clamped.ColIdx {
				if !tc.mask[j] {
					t.Fatalf("clamped part holds unmasked column %d", j)
				}
			}
			// free + clamped must recompose the original element-wise.
			sum := free.ToDense()
			sum.AddM(clamped.ToDense())
			if !sum.Equal(orig, 0) {
				t.Fatalf("free+clamped != original: %v vs %v", sum.Data, orig.Data)
			}
			// Within-row order must be preserved (columns ascending, as
			// FromDense stores them).
			for _, part := range []*CSR{free, clamped} {
				for i := 0; i < part.Rows; i++ {
					for p := part.RowPtr[i] + 1; p < part.RowPtr[i+1]; p++ {
						if part.ColIdx[p-1] >= part.ColIdx[p] {
							t.Fatalf("row %d order broken: %v", i, part.ColIdx[part.RowPtr[i]:part.RowPtr[i+1]])
						}
					}
				}
			}
		})
	}
}

func TestSplitColsMaskLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short mask")
		}
	}()
	FromDense(NewDense(2, 3), 0).SplitCols([]bool{true})
}

// TestMulVecAdd is the table test of the fused bias+matvec kernel.
func TestMulVecAdd(t *testing.T) {
	for _, tc := range []struct {
		name       string
		rows, cols int
		data       []float64
		x, add     []float64
		want       []float64
	}{
		{
			name: "basic",
			rows: 2, cols: 3,
			data: []float64{1, 0, 2, 0, -1, 0},
			x:    []float64{1, 2, 3},
			add:  []float64{10, 20},
			want: []float64{17, 18},
		},
		{
			name: "empty-rows-pass-bias-through",
			rows: 3, cols: 2,
			data: []float64{0, 0, 1, 1, 0, 0},
			x:    []float64{2, 3},
			add:  []float64{-1, 0, 4},
			want: []float64{-1, 5, 4},
		},
		{
			name: "1x1",
			rows: 1, cols: 1,
			data: []float64{2},
			x:    []float64{3},
			add:  []float64{1},
			want: []float64{7},
		},
		{
			name: "all-empty",
			rows: 2, cols: 2,
			data: []float64{0, 0, 0, 0},
			x:    []float64{9, 9},
			add:  []float64{1, 2},
			want: []float64{1, 2},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := FromDense(NewDenseFrom(tc.rows, tc.cols, tc.data), 0)
			got := s.MulVecAdd(tc.x, tc.add, nil)
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("y[%d] = %g, want %g", i, got[i], tc.want[i])
				}
			}
			// Reuse: a correctly-sized y must be written in place.
			buf := make([]float64, tc.rows)
			if out := s.MulVecAdd(tc.x, tc.add, buf); &out[0] != &buf[0] {
				t.Fatal("MulVecAdd did not reuse the provided buffer")
			}
			// Aliasing y == add is allowed.
			aliased := append([]float64(nil), tc.add...)
			s.MulVecAdd(tc.x, aliased, aliased)
			for i := range tc.want {
				if aliased[i] != tc.want[i] {
					t.Fatalf("aliased y[%d] = %g, want %g", i, aliased[i], tc.want[i])
				}
			}
		})
	}
}

// TestMulVecAddComposesWithSplitCols is the bit-identity property the clamp
// plans rely on: for any matrix and mask, folding the masked columns into a
// bias and fusing it back via MulVecAdd over rows whose free part is empty
// reproduces MulVec's full-row sums exactly (not just approximately).
func TestMulVecAddComposesWithSplitCols(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 7
		m := NewDense(n, n)
		for i := range m.Data {
			if r.next() < 0.4 {
				m.Data[i] = r.next()*2 - 1
			}
		}
		mask := make([]bool, n)
		for j := range mask {
			mask[j] = r.next() < 0.5
		}
		s := FromDense(m, 0)
		free, clamp := s.SplitCols(mask)
		x := randVec(r, n)
		bias := clamp.MulVec(x, nil)
		fused := free.MulVecAdd(x, bias, nil)
		full := s.MulVec(x, nil)
		for i := 0; i < n; i++ {
			if free.RowNNZ(i) == 0 && fused[i] != full[i] {
				// A fully-folded row must match bit for bit.
				return false
			}
			if math.Abs(fused[i]-full[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecAddDimensionPanics(t *testing.T) {
	s := FromDense(NewDense(2, 3), 0)
	for _, tc := range []struct {
		name   string
		x, add []float64
	}{
		{"short-x", make([]float64, 2), make([]float64, 2)},
		{"short-add", make([]float64, 3), make([]float64, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			s.MulVecAdd(tc.x, tc.add, nil)
		})
	}
}

func TestBuilderMatchesFromDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		m := NewDense(5, 5)
		b := NewBuilder(5, 5)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if r.next() < 0.4 {
					v := r.next()
					m.Set(i, j, v)
					b.Add(i, j, v)
				}
			}
		}
		return b.Build().ToDense().Equal(m, 1e-15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
