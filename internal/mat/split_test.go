package mat

import (
	"testing"
	"testing/quick"
)

// csrIdentical is bit-level structural equality: the property PatchRowPlan
// promises relative to a fresh SplitRowPlan.
func csrIdentical(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols ||
		len(a.RowPtr) != len(b.RowPtr) || len(a.ColIdx) != len(b.ColIdx) || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func randSquareCSR(r *testRand, n int, density float64) *CSR {
	m := NewDense(n, n)
	for i := range m.Data {
		if r.next() < density {
			m.Data[i] = r.next()*2 - 1
		}
	}
	return FromDense(m, 0)
}

// TestSplitRowPlanMatchesSplitCols pins SplitRowPlan to the original
// SplitCols-based construction the plan compilers used: static rows are the
// rows whose free part is empty (content = the full row, since every entry
// is clamped), dyn rows are the mixed rows kept whole, clamped and empty
// rows appear in neither.
func TestSplitRowPlanMatchesSplitCols(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 8
		s := randSquareCSR(r, n, 0.35)
		clamped := make([]bool, n)
		for j := range clamped {
			clamped[j] = r.next() < 0.5
		}
		static, dyn := SplitRowPlan(s, clamped)

		freePart, clampPart := s.SplitCols(clamped)
		refStatic := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
		refDyn := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
		for i := 0; i < n; i++ {
			lo, hi := s.RowPtr[i], s.RowPtr[i+1]
			switch {
			case clamped[i] || lo == hi:
			case freePart.RowNNZ(i) == 0:
				clo, chi := clampPart.RowPtr[i], clampPart.RowPtr[i+1]
				refStatic.ColIdx = append(refStatic.ColIdx, clampPart.ColIdx[clo:chi]...)
				refStatic.Val = append(refStatic.Val, clampPart.Val[clo:chi]...)
			default:
				refDyn.ColIdx = append(refDyn.ColIdx, s.ColIdx[lo:hi]...)
				refDyn.Val = append(refDyn.Val, s.Val[lo:hi]...)
			}
			refStatic.RowPtr[i+1] = len(refStatic.Val)
			refDyn.RowPtr[i+1] = len(refDyn.Val)
		}
		return csrIdentical(static, refStatic) && csrIdentical(dyn, refDyn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestColRows(t *testing.T) {
	s := FromDense(NewDenseFrom(3, 3, []float64{
		1, 0, 2,
		0, 3, 0,
		4, 0, 5,
	}), 0)
	cr := s.ColRows()
	want := [][]int32{{0, 2}, {1}, {0, 2}}
	for j := range want {
		if len(cr[j]) != len(want[j]) {
			t.Fatalf("col %d rows = %v, want %v", j, cr[j], want[j])
		}
		for k := range want[j] {
			if cr[j][k] != want[j][k] {
				t.Fatalf("col %d rows = %v, want %v", j, cr[j], want[j])
			}
		}
	}
}

// TestPatchRowPlanMatchesFull walks a random clamp mask through a sequence
// of small deltas (1–3 bits flipped per step, the sliding-window shape) and
// checks after every step that the patched split is structurally identical
// to a from-scratch SplitRowPlan of the new mask.
func TestPatchRowPlanMatchesFull(t *testing.T) {
	f := func(seed int64) bool {
		r := newTestRand(seed)
		n := 10
		s := randSquareCSR(r, n, 0.3)
		colRows := s.ColRows()
		clamped := make([]bool, n)
		for j := range clamped {
			clamped[j] = r.next() < 0.5
		}
		static, dyn := SplitRowPlan(s, clamped)
		for step := 0; step < 12; step++ {
			next := append([]bool(nil), clamped...)
			flips := 1 + int(r.next()*3)
			for f := 0; f < flips; f++ {
				j := int(r.next() * float64(n))
				if j >= n {
					j = n - 1
				}
				next[j] = !next[j]
			}
			ps, pd := PatchRowPlan(s, static, dyn, colRows, clamped, next)
			fs, fd := SplitRowPlan(s, next)
			if !csrIdentical(ps, fs) || !csrIdentical(pd, fd) {
				return false
			}
			clamped, static, dyn = next, ps, pd
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPatchRowPlanEqualMasksReturnsPrev: a no-op delta must hand back the
// previous split untouched (same pointers, zero work).
func TestPatchRowPlanEqualMasksReturnsPrev(t *testing.T) {
	r := newTestRand(3)
	s := randSquareCSR(r, 6, 0.4)
	clamped := []bool{true, false, true, false, false, true}
	static, dyn := SplitRowPlan(s, clamped)
	ps, pd := PatchRowPlan(s, static, dyn, s.ColRows(), clamped, append([]bool(nil), clamped...))
	if ps != static || pd != dyn {
		t.Fatal("equal masks should return the previous split unchanged")
	}
}

// TestPatchRowPlanDoesNotMutatePrev: the old split may still sit in a plan
// cache under its own key, so patching must never write into it.
func TestPatchRowPlanDoesNotMutatePrev(t *testing.T) {
	r := newTestRand(9)
	n := 8
	s := randSquareCSR(r, n, 0.4)
	clamped := make([]bool, n)
	clamped[0], clamped[3] = true, true
	static, dyn := SplitRowPlan(s, clamped)
	snapS, snapD := SplitRowPlan(s, clamped)
	next := append([]bool(nil), clamped...)
	next[0], next[5] = false, true
	PatchRowPlan(s, static, dyn, s.ColRows(), clamped, next)
	if !csrIdentical(static, snapS) || !csrIdentical(dyn, snapD) {
		t.Fatal("PatchRowPlan mutated the previous split")
	}
}
