package mat

import (
	"math"
	"testing"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %g", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Fatalf("NormInf = %g", NormInf(x))
	}
}

func TestClamp(t *testing.T) {
	x := []float64{-2, 0.5, 3}
	Clamp(x, -1, 1)
	if x[0] != -1 || x[1] != 0.5 || x[2] != 1 {
		t.Fatalf("Clamp = %v", x)
	}
}

func TestMeanStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Fatalf("Mean = %g", Mean(x))
	}
	if math.Abs(Std(x)-2) > 1e-12 {
		t.Fatalf("Std = %g, want 2", Std(x))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %g,%g", lo, hi)
	}
}

func TestCopyVecIndependent(t *testing.T) {
	x := []float64{1, 2}
	c := CopyVec(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("CopyVec must copy")
	}
}

func TestScaleVec(t *testing.T) {
	x := []float64{1, -2}
	ScaleVec(3, x)
	if x[0] != 3 || x[1] != -6 {
		t.Fatalf("ScaleVec = %v", x)
	}
}
