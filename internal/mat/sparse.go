package mat

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row matrix. It is the storage format used for
// the sparsified coupling matrices after decomposition: the Scalable DSPU
// evaluates coupling currents by iterating CSR rows.
type CSR struct {
	Rows, Cols int
	RowPtr     []int     // len Rows+1
	ColIdx     []int     // len NNZ
	Val        []float64 // len NNZ
}

// NNZ returns the number of stored entries.
func (s *CSR) NNZ() int { return len(s.Val) }

// Density returns NNZ divided by Rows*Cols.
func (s *CSR) Density() float64 {
	if s.Rows == 0 || s.Cols == 0 {
		return 0
	}
	return float64(s.NNZ()) / float64(s.Rows*s.Cols)
}

// FromDense converts a dense matrix to CSR, dropping entries with
// |v| <= eps.
func FromDense(m *Dense, eps float64) *CSR {
	s := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if math.Abs(v) > eps {
				s.ColIdx = append(s.ColIdx, j)
				s.Val = append(s.Val, v)
			}
		}
		s.RowPtr[i+1] = len(s.Val)
	}
	return s
}

// ToDense expands s to a dense matrix.
func (s *CSR) ToDense() *Dense {
	m := NewDense(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			m.Set(i, s.ColIdx[p], s.Val[p])
		}
	}
	return m
}

// At returns element (i, j), using binary search within the row.
func (s *CSR) At(i, j int) float64 {
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	idx := sort.SearchInts(s.ColIdx[lo:hi], j) + lo
	if idx < hi && s.ColIdx[idx] == j {
		return s.Val[idx]
	}
	return 0
}

// MulVec computes y = s*x. If y is non-nil with the right length it is
// reused.
func (s *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != s.Cols {
		panic(fmt.Sprintf("mat: CSR MulVec dimension mismatch: %d cols vs %d vec", s.Cols, len(x)))
	}
	if y == nil || len(y) != s.Rows {
		y = make([]float64, s.Rows)
	}
	for i := 0; i < s.Rows; i++ {
		var sum float64
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			sum += s.Val[p] * x[s.ColIdx[p]]
		}
		y[i] = sum
	}
	return y
}

// RowNNZ returns the number of stored entries in row i.
func (s *CSR) RowNNZ(i int) int { return s.RowPtr[i+1] - s.RowPtr[i] }

// MulVecAdd computes the fused y = add + s*x: each output element starts
// from add[i] and accumulates the row's stored entries in order. Because the
// accumulation literally begins at add[i] (no extra +0 when a row is empty),
// composing a precomputed partial sum with the remaining entries is
// bit-identical to summing the full row from zero — the property the
// clamp-plan compiler relies on when it folds constant clamp currents into a
// per-row bias. y is reused when it has the right length and may alias add;
// it must not alias x.
func (s *CSR) MulVecAdd(x, add, y []float64) []float64 {
	if len(x) != s.Cols {
		panic(fmt.Sprintf("mat: CSR MulVecAdd dimension mismatch: %d cols vs %d vec", s.Cols, len(x)))
	}
	if len(add) != s.Rows {
		panic(fmt.Sprintf("mat: CSR MulVecAdd bias mismatch: %d rows vs %d bias", s.Rows, len(add)))
	}
	if y == nil || len(y) != s.Rows {
		y = make([]float64, s.Rows)
	}
	for i := 0; i < s.Rows; i++ {
		sum := add[i]
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			sum += s.Val[p] * x[s.ColIdx[p]]
		}
		y[i] = sum
	}
	return y
}

// SplitCols partitions s by a column mask into two matrices of the same
// shape: free holds the entries whose column is NOT marked, clamped holds
// the entries whose column IS marked. Row structure and the within-row entry
// order are both preserved, so for every row the concatenation of the two
// parts' entries (in column order) is exactly the original row, and
// free + clamped == s element-wise.
//
// The clamp-plan compiler uses the split to fold constant coupling currents:
// during clamped inference the marked (observed) columns' voltages never
// change, so clamped*x is a constant vector computable once per inference,
// and only the free part needs re-evaluation inside the anneal loop. A row
// whose free part is empty is entirely constant — its clamped part IS the
// original row, so the folded sum carries the original accumulation order
// bit for bit.
func (s *CSR) SplitCols(mask []bool) (free, clamped *CSR) {
	if len(mask) != s.Cols {
		panic(fmt.Sprintf("mat: CSR SplitCols mask has %d entries, want %d cols", len(mask), s.Cols))
	}
	free = &CSR{Rows: s.Rows, Cols: s.Cols, RowPtr: make([]int, s.Rows+1)}
	clamped = &CSR{Rows: s.Rows, Cols: s.Cols, RowPtr: make([]int, s.Rows+1)}
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			j := s.ColIdx[p]
			if mask[j] {
				clamped.ColIdx = append(clamped.ColIdx, j)
				clamped.Val = append(clamped.Val, s.Val[p])
			} else {
				free.ColIdx = append(free.ColIdx, j)
				free.Val = append(free.Val, s.Val[p])
			}
		}
		free.RowPtr[i+1] = len(free.Val)
		clamped.RowPtr[i+1] = len(clamped.Val)
	}
	return free, clamped
}

// Builder accumulates (i, j, v) triplets and produces a CSR matrix.
// Duplicate entries for the same (i, j) are summed.
type Builder struct {
	rows, cols int
	entries    map[[2]int]float64
}

// NewBuilder returns a Builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols, entries: make(map[[2]int]float64)}
}

// Add accumulates v at (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("mat: Builder.Add out of range (%d,%d) in %dx%d", i, j, b.rows, b.cols))
	}
	b.entries[[2]int{i, j}] += v
}

// Build produces the CSR matrix. Entries that summed to exactly zero are
// still stored; callers that care should prune with eps beforehand.
func (b *Builder) Build() *CSR {
	type trip struct {
		i, j int
		v    float64
	}
	trips := make([]trip, 0, len(b.entries))
	for k, v := range b.entries {
		trips = append(trips, trip{k[0], k[1], v})
	}
	sort.Slice(trips, func(a, c int) bool {
		if trips[a].i != trips[c].i {
			return trips[a].i < trips[c].i
		}
		return trips[a].j < trips[c].j
	})
	s := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	s.ColIdx = make([]int, 0, len(trips))
	s.Val = make([]float64, 0, len(trips))
	row := 0
	for _, t := range trips {
		for row < t.i {
			row++
			s.RowPtr[row] = len(s.Val)
		}
		s.ColIdx = append(s.ColIdx, t.j)
		s.Val = append(s.Val, t.v)
	}
	for row < b.rows {
		row++
		s.RowPtr[row] = len(s.Val)
	}
	return s
}
