package mat

import "math"

// Vector helpers. These operate on plain []float64 so callers can use Go
// slices directly; no wrapper type is needed.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies every element of x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Clamp limits every element of x to [lo, hi] in place. The circuit rails
// bound capacitor voltages the same way.
func Clamp(x []float64, lo, hi float64) {
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// MinMax returns the smallest and largest values in x.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		return 0, 0
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}
