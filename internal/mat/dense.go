// Package mat provides the dense and sparse linear-algebra kernels used by
// every other package in the DS-GL reproduction: the coupling matrices of
// dynamical systems, the adjacency matrices of graphs, and the weight
// matrices of the GNN baselines.
//
// The package is deliberately small: row-major dense matrices, CSR sparse
// matrices, and the handful of BLAS-like operations the rest of the system
// needs. Everything is float64.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense returns a zero-initialized Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFrom wraps data as a rows x cols matrix. The slice is used
// directly, not copied; len(data) must equal rows*cols.
func NewDenseFrom(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Symmetrize replaces m with (m + mᵀ)/2. m must be square.
func (m *Dense) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			avg := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
}

// ZeroDiagonal clears the diagonal of a square matrix. The Ising coupling
// matrix J requires diag(J) = 0 (Eq. 2 of the paper).
func (m *Dense) ZeroDiagonal() {
	if m.Rows != m.Cols {
		panic("mat: ZeroDiagonal on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 0
	}
}

// MulVec computes y = m*x. len(x) must equal m.Cols; the result has length
// m.Rows. If y is non-nil and has the right length it is reused.
func (m *Dense) MulVec(x, y []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	if y == nil || len(y) != m.Rows {
		y = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul computes c = a*b as a new matrix.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	MulInto(c, a, b)
	return c
}

// MulInto computes c = a*b into an existing matrix c.
func MulInto(c, a, b *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("mat: MulInto dimension mismatch")
	}
	c.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// Scale multiplies every element by s.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddM adds other element-wise into m.
func (m *Dense) AddM(other *Dense) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: AddM dimension mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// NNZ counts elements with |v| > eps.
func (m *Dense) NNZ(eps float64) int {
	n := 0
	for _, v := range m.Data {
		if math.Abs(v) > eps {
			n++
		}
	}
	return n
}

// Density returns NNZ(eps) divided by the total number of elements.
func (m *Dense) Density(eps float64) float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return float64(m.NNZ(eps)) / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether m and other have the same shape and all elements
// within tol of each other.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range other.Data {
		if math.Abs(m.Data[i]-v) > tol {
			return false
		}
	}
	return true
}

// ApplyMask zeroes every element of m where mask is false. mask must have
// the same shape as m. This is how the fine-tuning step of the decomposition
// algorithm confines non-zeros to the allowed interconnect pattern.
func (m *Dense) ApplyMask(mask *Bool) {
	if m.Rows != mask.Rows || m.Cols != mask.Cols {
		panic("mat: ApplyMask dimension mismatch")
	}
	for i := range m.Data {
		if !mask.Data[i] {
			m.Data[i] = 0
		}
	}
}

// Bool is a row-major boolean matrix, used for coupling masks.
type Bool struct {
	Rows, Cols int
	Data       []bool
}

// NewBool returns an all-false rows x cols boolean matrix.
func NewBool(rows, cols int) *Bool {
	return &Bool{Rows: rows, Cols: cols, Data: make([]bool, rows*cols)}
}

// At returns the element at row i, column j.
func (b *Bool) At(i, j int) bool { return b.Data[i*b.Cols+j] }

// Set assigns the element at row i, column j.
func (b *Bool) Set(i, j int, v bool) { b.Data[i*b.Cols+j] = v }

// Count returns the number of true elements.
func (b *Bool) Count() int {
	n := 0
	for _, v := range b.Data {
		if v {
			n++
		}
	}
	return n
}

// Or sets b = b ∨ other element-wise.
func (b *Bool) Or(other *Bool) {
	if b.Rows != other.Rows || b.Cols != other.Cols {
		panic("mat: Or dimension mismatch")
	}
	for i, v := range other.Data {
		if v {
			b.Data[i] = true
		}
	}
}

// Clone returns a deep copy of b.
func (b *Bool) Clone() *Bool {
	c := NewBool(b.Rows, b.Cols)
	copy(c.Data, b.Data)
	return c
}
