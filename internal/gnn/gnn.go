// Package gnn implements the three spatial-temporal GNN baselines the paper
// compares DS-GL against: GWN (Graph WaveNet, Wu et al. 2019), MTGNN (Wu et
// al. 2020), and DDGCRN (Weng et al. 2023). The implementations are compact
// CPU reimplementations that preserve each model's architectural signature:
//
//   - GWN: gated graph convolutions over both the given adjacency and a
//     learned adaptive adjacency (node-embedding outer product), with skip
//     connections;
//   - MTGNN: a graph-learning layer (no prior adjacency) feeding mix-hop
//     propagation layers;
//   - DDGCRN: a graph-convolutional GRU unrolled over the history window
//     with a decomposition branch separating a slow "regular" component.
//
// All models map one window — node-feature history X (N x P·F) — to the
// horizon prediction (N x Q·U), and are trained with Adam on MSE, matching
// the paper's per-dataset training setup.
package gnn

import (
	"fmt"

	"dsgl/internal/datasets"
	"dsgl/internal/mat"
	"dsgl/internal/rng"
	"dsgl/internal/tensor"
)

// Geometry describes the prediction problem shape shared by all models.
type Geometry struct {
	N int // graph nodes
	F int // features per node per step
	P int // history steps
	Q int // horizon steps
	U int // predicted features per node per horizon step
}

// GeometryOf derives the geometry from a dataset.
func GeometryOf(d *datasets.Dataset) Geometry {
	u := d.F
	if d.PredictFeature >= 0 {
		u = 1
	}
	return Geometry{N: d.N, F: d.F, P: d.History, Q: d.Horizon, U: u}
}

// InCols returns the input width P·F.
func (g Geometry) InCols() int { return g.P * g.F }

// OutCols returns the output width Q·U.
func (g Geometry) OutCols() int { return g.Q * g.U }

// Model is a trainable window-to-horizon predictor.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Forward maps the history matrix (N x P·F) to predictions (N x Q·U).
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Params lists the trainable tensors.
	Params() []*tensor.Tensor
	// FLOPs estimates floating-point operations for one inference, used by
	// the Table III latency/energy model.
	FLOPs() float64
}

// normalizedAdj converts a dataset adjacency to the self-looped
// row-normalized propagation matrix Â = D⁻¹(A + I) used by the graph
// convolutions.
func normalizedAdj(adj *mat.Dense) *tensor.Tensor {
	n := adj.Rows
	t := tensor.New(n, n)
	for i := 0; i < n; i++ {
		var deg float64
		for j := 0; j < n; j++ {
			deg += adj.At(i, j)
		}
		deg += 1 // self loop
		for j := 0; j < n; j++ {
			v := adj.At(i, j)
			if i == j {
				v += 1
			}
			if v != 0 {
				t.Set(i, j, v/deg)
			}
		}
	}
	return t
}

// paramCount sums the element counts of a parameter list.
func paramCount(ps []*tensor.Tensor) int {
	total := 0
	for _, p := range ps {
		total += len(p.Data)
	}
	return total
}

// ---------------------------------------------------------------------------
// GWN
// ---------------------------------------------------------------------------

// GWN is the Graph WaveNet baseline.
type GWN struct {
	geom   Geometry
	hidden int
	adj    *tensor.Tensor // fixed Â from the dataset graph
	e1, e2 *tensor.Tensor // adaptive adjacency embeddings
	wIn    *tensor.Tensor
	bIn    *tensor.Tensor
	layers []*gwnLayer
	wOut   *tensor.Tensor
	bOut   *tensor.Tensor
}

type gwnLayer struct {
	wGate, wFilt, wAdp *tensor.Tensor
}

// NewGWN builds a GWN with the given hidden width and number of gated
// graph-conv layers.
func NewGWN(geom Geometry, adj *mat.Dense, hidden, layers int, r *rng.RNG) *GWN {
	const embed = 8
	g := &GWN{
		geom:   geom,
		hidden: hidden,
		adj:    normalizedAdj(adj),
		e1:     tensor.Param(geom.N, embed, r),
		e2:     tensor.Param(geom.N, embed, r),
		wIn:    tensor.Param(geom.InCols(), hidden, r),
		bIn:    tensor.ZeroParam(1, hidden),
		wOut:   tensor.Param(hidden, geom.OutCols(), r),
		bOut:   tensor.ZeroParam(1, geom.OutCols()),
	}
	for l := 0; l < layers; l++ {
		g.layers = append(g.layers, &gwnLayer{
			wGate: tensor.Param(hidden, hidden, r),
			wFilt: tensor.Param(hidden, hidden, r),
			wAdp:  tensor.Param(hidden, hidden, r),
		})
	}
	return g
}

// Name implements Model.
func (g *GWN) Name() string { return "GWN" }

// adaptiveAdj builds softmax(ReLU(E1 E2ᵀ)).
func (g *GWN) adaptiveAdj() *tensor.Tensor {
	return tensor.SoftmaxRows(tensor.ReLU(tensor.MatMul(g.e1, tensor.Transpose(g.e2))))
}

// Forward implements Model.
func (g *GWN) Forward(x *tensor.Tensor) *tensor.Tensor {
	adp := g.adaptiveAdj()
	h := tensor.Tanh(tensor.Add(tensor.MatMul(x, g.wIn), g.bIn))
	for _, l := range g.layers {
		prop := tensor.MatMul(g.adj, h)
		filt := tensor.Tanh(tensor.MatMul(prop, l.wFilt))
		gate := tensor.Sigmoid(tensor.MatMul(prop, l.wGate))
		adpProp := tensor.Tanh(tensor.MatMul(tensor.MatMul(adp, h), l.wAdp))
		h = tensor.Add(tensor.Add(tensor.Mul(filt, gate), adpProp), h) // residual
	}
	return tensor.Add(tensor.MatMul(h, g.wOut), g.bOut)
}

// Params implements Model.
func (g *GWN) Params() []*tensor.Tensor {
	ps := []*tensor.Tensor{g.e1, g.e2, g.wIn, g.bIn, g.wOut, g.bOut}
	for _, l := range g.layers {
		ps = append(ps, l.wGate, l.wFilt, l.wAdp)
	}
	return ps
}

// FLOPs implements Model.
func (g *GWN) FLOPs() float64 {
	n, hdim := float64(g.geom.N), float64(g.hidden)
	f := 2 * n * float64(g.geom.InCols()) * hdim // input projection
	f += 2 * n * n * 8 * 2                       // adaptive adjacency
	perLayer := 2*n*n*hdim*2 + 2*n*hdim*hdim*3   // two propagations + three weights
	f += float64(len(g.layers)) * perLayer
	f += 2 * n * hdim * float64(g.geom.OutCols())
	return f
}

// ---------------------------------------------------------------------------
// MTGNN
// ---------------------------------------------------------------------------

// MTGNN is the MTGNN baseline: learned graph + mix-hop propagation.
type MTGNN struct {
	geom   Geometry
	hidden int
	hops   int
	e1, e2 *tensor.Tensor
	wIn    *tensor.Tensor
	bIn    *tensor.Tensor
	wHop   [][]*tensor.Tensor // [layer][hop]
	wOut   *tensor.Tensor
	bOut   *tensor.Tensor
}

// NewMTGNN builds an MTGNN with the given hidden width, propagation depth
// (hops per layer), and layer count.
func NewMTGNN(geom Geometry, hidden, hops, layers int, r *rng.RNG) *MTGNN {
	const embed = 8
	m := &MTGNN{
		geom:   geom,
		hidden: hidden,
		hops:   hops,
		e1:     tensor.Param(geom.N, embed, r),
		e2:     tensor.Param(geom.N, embed, r),
		wIn:    tensor.Param(geom.InCols(), hidden, r),
		bIn:    tensor.ZeroParam(1, hidden),
		wOut:   tensor.Param(hidden, geom.OutCols(), r),
		bOut:   tensor.ZeroParam(1, geom.OutCols()),
	}
	for l := 0; l < layers; l++ {
		var hw []*tensor.Tensor
		for k := 0; k <= hops; k++ {
			hw = append(hw, tensor.Param(hidden, hidden, r))
		}
		m.wHop = append(m.wHop, hw)
	}
	return m
}

// Name implements Model.
func (m *MTGNN) Name() string { return "MTGNN" }

// Forward implements Model.
func (m *MTGNN) Forward(x *tensor.Tensor) *tensor.Tensor {
	// Graph learning layer: uni-directional learned adjacency.
	adp := tensor.SoftmaxRows(tensor.ReLU(tensor.Sub(
		tensor.MatMul(m.e1, tensor.Transpose(m.e2)),
		tensor.MatMul(m.e2, tensor.Transpose(m.e1)),
	)))
	h := tensor.Tanh(tensor.Add(tensor.MatMul(x, m.wIn), m.bIn))
	for _, hw := range m.wHop {
		// Mix-hop: out = Σ_k Â^k h W_k, with β-discounted residual mixing.
		hop := h
		var acc *tensor.Tensor
		for k, w := range hw {
			term := tensor.MatMul(hop, w)
			if acc == nil {
				acc = term
			} else {
				acc = tensor.Add(acc, tensor.Scale(term, 0.5))
			}
			if k < len(hw)-1 {
				hop = tensor.MatMul(adp, hop)
			}
		}
		h = tensor.Add(tensor.Tanh(acc), h)
	}
	return tensor.Add(tensor.MatMul(h, m.wOut), m.bOut)
}

// Params implements Model.
func (m *MTGNN) Params() []*tensor.Tensor {
	ps := []*tensor.Tensor{m.e1, m.e2, m.wIn, m.bIn, m.wOut, m.bOut}
	for _, hw := range m.wHop {
		ps = append(ps, hw...)
	}
	return ps
}

// FLOPs implements Model.
func (m *MTGNN) FLOPs() float64 {
	n, hdim := float64(m.geom.N), float64(m.hidden)
	f := 2*n*float64(m.geom.InCols())*hdim + 2*n*n*8*4
	perLayer := float64(m.hops)*2*n*n*hdim + float64(m.hops+1)*2*n*hdim*hdim
	f += float64(len(m.wHop)) * perLayer
	f += 2 * n * hdim * float64(m.geom.OutCols())
	return f
}

// ---------------------------------------------------------------------------
// DDGCRN
// ---------------------------------------------------------------------------

// DDGCRN is the decomposition dynamic graph-convolutional recurrent
// baseline: a GCN-gated GRU unrolled over the history window, with a
// decomposition branch modeling the slow component separately.
type DDGCRN struct {
	geom    Geometry
	hidden  int
	adj     *tensor.Tensor
	wz, wr  *tensor.Tensor // gate weights over [x, h]
	wc      *tensor.Tensor // candidate weights
	bz      *tensor.Tensor
	br      *tensor.Tensor
	bc      *tensor.Tensor
	wTrend  *tensor.Tensor // decomposition branch: slow component
	bTrend  *tensor.Tensor
	wOut    *tensor.Tensor
	bOut    *tensor.Tensor
	wResOut *tensor.Tensor
}

// NewDDGCRN builds a DDGCRN with the given hidden width.
func NewDDGCRN(geom Geometry, adj *mat.Dense, hidden int, r *rng.RNG) *DDGCRN {
	inW := geom.F + hidden
	return &DDGCRN{
		geom:    geom,
		hidden:  hidden,
		adj:     normalizedAdj(adj),
		wz:      tensor.Param(inW, hidden, r),
		wr:      tensor.Param(inW, hidden, r),
		wc:      tensor.Param(inW, hidden, r),
		bz:      tensor.ZeroParam(1, hidden),
		br:      tensor.ZeroParam(1, hidden),
		bc:      tensor.ZeroParam(1, hidden),
		wTrend:  tensor.Param(geom.InCols(), geom.OutCols(), r),
		bTrend:  tensor.ZeroParam(1, geom.OutCols()),
		wOut:    tensor.Param(hidden, geom.OutCols(), r),
		bOut:    tensor.ZeroParam(1, geom.OutCols()),
		wResOut: tensor.Param(geom.F, geom.OutCols(), r),
	}
}

// Name implements Model.
func (d *DDGCRN) Name() string { return "DDGCRN" }

// Forward implements Model.
func (d *DDGCRN) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := tensor.New(d.geom.N, d.hidden) // initial hidden state (constant 0)
	var last *tensor.Tensor
	for s := 0; s < d.geom.P; s++ {
		xt := tensor.SliceCols(x, s*d.geom.F, (s+1)*d.geom.F)
		last = xt
		// Graph-convolved gate inputs: Â [x_t, h].
		cat := tensor.ConcatCols(xt, h)
		prop := tensor.MatMul(d.adj, cat)
		z := tensor.Sigmoid(tensor.Add(tensor.MatMul(prop, d.wz), d.bz))
		rr := tensor.Sigmoid(tensor.Add(tensor.MatMul(prop, d.wr), d.br))
		catR := tensor.ConcatCols(xt, tensor.Mul(rr, h))
		propR := tensor.MatMul(d.adj, catR)
		cand := tensor.Tanh(tensor.Add(tensor.MatMul(propR, d.wc), d.bc))
		// h = (1-z) ⊙ h + z ⊙ cand.
		ones := tensor.New(d.geom.N, d.hidden)
		for i := range ones.Data {
			ones.Data[i] = 1
		}
		h = tensor.Add(tensor.Mul(tensor.Sub(ones, z), h), tensor.Mul(z, cand))
	}
	// Decomposition: slow trend from the raw window plus the recurrent
	// (dynamic) component plus a last-value residual path.
	trend := tensor.Add(tensor.MatMul(x, d.wTrend), d.bTrend)
	dyn := tensor.Add(tensor.MatMul(h, d.wOut), d.bOut)
	res := tensor.MatMul(last, d.wResOut)
	return tensor.Add(tensor.Add(trend, dyn), res)
}

// Params implements Model.
func (d *DDGCRN) Params() []*tensor.Tensor {
	return []*tensor.Tensor{
		d.wz, d.wr, d.wc, d.bz, d.br, d.bc,
		d.wTrend, d.bTrend, d.wOut, d.bOut, d.wResOut,
	}
}

// FLOPs implements Model.
func (d *DDGCRN) FLOPs() float64 {
	n, hdim := float64(d.geom.N), float64(d.hidden)
	inW := float64(d.geom.F) + hdim
	perStep := 2*n*n*inW*2 + 2*n*inW*hdim*3 + 6*n*hdim
	f := float64(d.geom.P) * perStep
	f += 2 * n * float64(d.geom.InCols()) * float64(d.geom.OutCols())
	f += 2 * n * hdim * float64(d.geom.OutCols())
	return f
}

// ---------------------------------------------------------------------------

// NewBaseline constructs one of the three baselines by name with the
// default compact configuration used across the evaluation.
func NewBaseline(name string, d *datasets.Dataset, seed uint64) (Model, error) {
	geom := GeometryOf(d)
	r := rng.New(seed)
	switch name {
	case "GWN":
		return NewGWN(geom, d.Adj, 32, 2, r), nil
	case "MTGNN":
		return NewMTGNN(geom, 32, 2, 2, r), nil
	case "DDGCRN":
		return NewDDGCRN(geom, d.Adj, 24, r), nil
	default:
		return nil, fmt.Errorf("gnn: unknown baseline %q", name)
	}
}

// BaselineNames lists the paper's three baselines in table order.
func BaselineNames() []string { return []string{"GWN", "MTGNN", "DDGCRN"} }
