package gnn

import (
	"errors"

	"dsgl/internal/datasets"
	"dsgl/internal/metrics"
	"dsgl/internal/rng"
	"dsgl/internal/tensor"
)

// WindowInput converts a window's history portion into the model input
// matrix (N x P·F).
func WindowInput(d *datasets.Dataset, w datasets.Window) *tensor.Tensor {
	t := tensor.New(d.N, d.History*d.F)
	for s := 0; s < d.History; s++ {
		for n := 0; n < d.N; n++ {
			for f := 0; f < d.F; f++ {
				t.Set(n, s*d.F+f, w.Full[(s*d.N+n)*d.F+f])
			}
		}
	}
	return t
}

// WindowTarget converts a window's horizon portion into the target matrix
// (N x Q·U): all features when the dataset predicts everything, otherwise
// only the PredictFeature channel.
func WindowTarget(d *datasets.Dataset, w datasets.Window) *tensor.Tensor {
	geom := GeometryOf(d)
	t := tensor.New(d.N, geom.OutCols())
	for q := 0; q < d.Horizon; q++ {
		s := d.History + q
		for n := 0; n < d.N; n++ {
			if d.PredictFeature >= 0 {
				t.Set(n, q, w.Full[(s*d.N+n)*d.F+d.PredictFeature])
			} else {
				for f := 0; f < d.F; f++ {
					t.Set(n, q*d.F+f, w.Full[(s*d.N+n)*d.F+f])
				}
			}
		}
	}
	return t
}

// TrainConfig controls Train.
type TrainConfig struct {
	// Epochs over the training windows. Default 15.
	Epochs int
	// LR is the Adam learning rate. Default 0.005.
	LR float64
	// Seed shuffles the window order.
	Seed uint64
}

// TrainResult reports the trained model's fit.
type TrainResult struct {
	FinalTrainLoss float64
	Epochs         int
}

// Train fits model on the dataset's training windows with per-window Adam
// updates.
func Train(model Model, d *datasets.Dataset, windows []datasets.Window, cfg TrainConfig) (*TrainResult, error) {
	if len(windows) == 0 {
		return nil, errors.New("gnn: no training windows")
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 15
	}
	if cfg.LR == 0 {
		cfg.LR = 0.005
	}
	// Pre-convert windows once.
	inputs := make([]*tensor.Tensor, len(windows))
	targets := make([]*tensor.Tensor, len(windows))
	for i, w := range windows {
		inputs[i] = WindowInput(d, w)
		targets[i] = WindowTarget(d, w)
	}
	opt := tensor.NewAdam(model.Params(), cfg.LR)
	r := rng.New(cfg.Seed ^ 0x6e6e)
	order := make([]int, len(windows))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for _, idx := range order {
			loss := tensor.MSE(model.Forward(inputs[idx]), targets[idx])
			epochLoss += loss.Data[0]
			loss.Backward()
			opt.Step()
		}
		lastLoss = epochLoss / float64(len(order))
	}
	return &TrainResult{FinalTrainLoss: lastLoss, Epochs: cfg.Epochs}, nil
}

// Evaluate computes RMSE of the model over the given windows' target
// entries.
func Evaluate(model Model, d *datasets.Dataset, windows []datasets.Window) float64 {
	var acc metrics.Accumulator
	for _, w := range windows {
		pred := model.Forward(WindowInput(d, w))
		target := WindowTarget(d, w)
		acc.AddVec(pred.Data, target.Data)
	}
	return acc.RMSE()
}
