package gnn

import (
	"math"
	"testing"

	"dsgl/internal/datasets"
	"dsgl/internal/rng"
	"dsgl/internal/tensor"
)

func tinyDataset(t *testing.T, name string) *datasets.Dataset {
	t.Helper()
	return datasets.Generate(name, datasets.Config{N: 12, T: 80, History: 4, Horizon: 1})
}

func TestGeometryOf(t *testing.T) {
	d := tinyDataset(t, "traffic")
	g := GeometryOf(d)
	if g.N != 12 || g.F != 1 || g.P != 4 || g.Q != 1 || g.U != 1 {
		t.Fatalf("geometry = %+v", g)
	}
	h := datasets.Generate("housing", datasets.Config{N: 8, T: 60})
	gh := GeometryOf(h)
	if gh.U != 1 {
		t.Fatalf("housing predicts one feature, got U=%d", gh.U)
	}
	if gh.InCols() != h.History*h.F || gh.OutCols() != h.Horizon {
		t.Fatalf("col widths: in %d out %d", gh.InCols(), gh.OutCols())
	}
}

func TestWindowInputTargetLayout(t *testing.T) {
	d := tinyDataset(t, "traffic")
	w := d.Window(2)
	in := WindowInput(d, w)
	if in.Rows != d.N || in.Cols != d.History*d.F {
		t.Fatalf("input shape %dx%d", in.Rows, in.Cols)
	}
	if in.At(3, 1) != d.At(3, 3, 0) { // start=2, step=1, node=3
		t.Fatal("input layout mismatch")
	}
	tgt := WindowTarget(d, w)
	if tgt.Rows != d.N || tgt.Cols != d.Horizon {
		t.Fatalf("target shape %dx%d", tgt.Rows, tgt.Cols)
	}
	if tgt.At(5, 0) != d.At(2+d.History, 5, 0) {
		t.Fatal("target layout mismatch")
	}
}

func TestWindowTargetMultiFeature(t *testing.T) {
	d := datasets.Generate("climate", datasets.Config{N: 8, T: 60})
	w := d.Window(0)
	tgt := WindowTarget(d, w)
	if tgt.Cols != d.Horizon {
		t.Fatalf("climate predicts feature 0 only; cols = %d", tgt.Cols)
	}
	if tgt.At(2, 0) != d.At(d.History, 2, 0) {
		t.Fatal("multi-feature target layout mismatch")
	}
}

func TestAllBaselinesForwardShapes(t *testing.T) {
	d := tinyDataset(t, "pm25")
	w := d.Window(0)
	in := WindowInput(d, w)
	geom := GeometryOf(d)
	for _, name := range BaselineNames() {
		m, err := NewBaseline(name, d, 1)
		if err != nil {
			t.Fatal(err)
		}
		out := m.Forward(in)
		if out.Rows != geom.N || out.Cols != geom.OutCols() {
			t.Fatalf("%s output %dx%d, want %dx%d", name, out.Rows, out.Cols, geom.N, geom.OutCols())
		}
		for _, v := range out.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s produced non-finite output", name)
			}
		}
		if m.FLOPs() <= 0 {
			t.Fatalf("%s FLOPs = %g", name, m.FLOPs())
		}
		if paramCount(m.Params()) == 0 {
			t.Fatalf("%s has no params", name)
		}
	}
}

func TestNewBaselineUnknown(t *testing.T) {
	d := tinyDataset(t, "pm25")
	if _, err := NewBaseline("nope", d, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	d := tinyDataset(t, "traffic")
	trainW, _ := d.Split()
	for _, name := range BaselineNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := NewBaseline(name, d, 2)
			if err != nil {
				t.Fatal(err)
			}
			before := Evaluate(m, d, trainW)
			if _, err := Train(m, d, trainW, TrainConfig{Epochs: 8, Seed: 3}); err != nil {
				t.Fatal(err)
			}
			after := Evaluate(m, d, trainW)
			if after >= before {
				t.Fatalf("%s training did not improve: %g -> %g", name, before, after)
			}
		})
	}
}

func TestTrainedModelBeatsMeanPredictor(t *testing.T) {
	d := tinyDataset(t, "pm25")
	trainW, testW := d.Split()
	m, err := NewBaseline("GWN", d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, d, trainW, TrainConfig{Epochs: 15, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	rmse := Evaluate(m, d, testW)
	// Baseline: predict the per-dataset mean (0 after normalization is a
	// decent proxy; compute the actual mean target for fairness).
	var sum float64
	var cnt int
	for _, w := range testW {
		tgt := WindowTarget(d, w)
		for _, v := range tgt.Data {
			sum += v
			cnt++
		}
	}
	mean := sum / float64(cnt)
	var sq float64
	for _, w := range testW {
		tgt := WindowTarget(d, w)
		for _, v := range tgt.Data {
			sq += (v - mean) * (v - mean)
		}
	}
	meanRMSE := math.Sqrt(sq / float64(cnt))
	if rmse >= meanRMSE {
		t.Fatalf("trained GWN RMSE %g not better than mean predictor %g", rmse, meanRMSE)
	}
}

func TestTrainErrorsOnEmptyWindows(t *testing.T) {
	d := tinyDataset(t, "traffic")
	m, _ := NewBaseline("GWN", d, 1)
	if _, err := Train(m, d, nil, TrainConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestNormalizedAdjRowsSumToOne(t *testing.T) {
	d := tinyDataset(t, "traffic")
	a := normalizedAdj(d.Adj)
	for i := 0; i < d.N; i++ {
		var sum float64
		for j := 0; j < d.N; j++ {
			sum += a.At(i, j)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestTrainingDeterministic(t *testing.T) {
	d := tinyDataset(t, "stock")
	trainW, _ := d.Split()
	run := func() float64 {
		m, err := NewBaseline("MTGNN", d, 7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Train(m, d, trainW, TrainConfig{Epochs: 3, Seed: 9}); err != nil {
			t.Fatal(err)
		}
		return Evaluate(m, d, trainW)
	}
	if run() != run() {
		t.Fatal("training must be deterministic under fixed seeds")
	}
}

func TestDDGCRNUsesAllHistorySteps(t *testing.T) {
	// Changing an early history step must change the output (the GRU must
	// actually consume the sequence).
	d := tinyDataset(t, "traffic")
	m, err := NewBaseline("DDGCRN", d, 11)
	if err != nil {
		t.Fatal(err)
	}
	w := d.Window(0)
	in := WindowInput(d, w)
	out1 := m.Forward(in)
	in2 := tensor.FromData(in.Rows, in.Cols, append([]float64(nil), in.Data...))
	in2.Set(0, 0, in2.At(0, 0)+0.3) // perturb first step of node 0
	out2 := m.Forward(in2)
	diff := false
	for i := range out1.Data {
		if out1.Data[i] != out2.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("DDGCRN ignored the first history step")
	}
}

func TestFLOPsScaleWithSize(t *testing.T) {
	small := datasets.Generate("traffic", datasets.Config{N: 8, T: 60})
	big := datasets.Generate("traffic", datasets.Config{N: 32, T: 60})
	r := rng.New(1)
	ms := NewGWN(GeometryOf(small), small.Adj, 32, 2, r)
	mb := NewGWN(GeometryOf(big), big.Adj, 32, 2, r)
	if mb.FLOPs() <= ms.FLOPs() {
		t.Fatal("FLOPs must grow with graph size")
	}
}

func TestMultiFeatureTraining(t *testing.T) {
	d := datasets.Generate("climate", datasets.Config{N: 8, T: 120})
	trainW, _ := d.Split()
	trainW = trainW[:40]
	for _, name := range BaselineNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := NewBaseline(name, d, 3)
			if err != nil {
				t.Fatal(err)
			}
			before := Evaluate(m, d, trainW)
			if _, err := Train(m, d, trainW, TrainConfig{Epochs: 5, Seed: 4}); err != nil {
				t.Fatal(err)
			}
			after := Evaluate(m, d, trainW)
			if after >= before {
				t.Fatalf("%s multi-feature training did not improve: %g -> %g", name, before, after)
			}
			out := m.Forward(WindowInput(d, trainW[0]))
			if out.Cols != d.Horizon { // predict feature 0 only
				t.Fatalf("%s output cols %d, want %d", name, out.Cols, d.Horizon)
			}
		})
	}
}

func TestGWNAdaptiveAdjacencyRowStochastic(t *testing.T) {
	d := tinyDataset(t, "traffic")
	g, err := NewBaseline("GWN", d, 5)
	if err != nil {
		t.Fatal(err)
	}
	adp := g.(*GWN).adaptiveAdj()
	for i := 0; i < adp.Rows; i++ {
		var sum float64
		for j := 0; j < adp.Cols; j++ {
			v := adp.At(i, j)
			if v < 0 {
				t.Fatal("negative adjacency weight")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}
