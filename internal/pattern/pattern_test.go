package pattern

import (
	"testing"

	"dsgl/internal/community"
	"dsgl/internal/mat"
)

// gridAssignment builds an assignment with gw*gh PEs, each holding cap
// consecutive nodes.
func gridAssignment(gw, gh, cap int) *community.Assignment {
	n := gw * gh * cap
	a := &community.Assignment{
		PEOf:     make([]int, n),
		NodesOf:  make([][]int, gw*gh),
		GridW:    gw,
		GridH:    gh,
		Capacity: cap,
	}
	for i := 0; i < n; i++ {
		pe := i / cap
		a.PEOf[i] = pe
		a.NodesOf[pe] = append(a.NodesOf[pe], i)
	}
	return a
}

func TestIntraPEAlwaysAllowed(t *testing.T) {
	a := gridAssignment(2, 2, 3)
	mask, stats := BuildMask(a, nil, Config{Kind: Chain})
	for _, nodes := range a.NodesOf {
		for _, x := range nodes {
			for _, y := range nodes {
				if x != y && !mask.At(x, y) {
					t.Fatalf("intra-PE pair (%d,%d) not allowed", x, y)
				}
			}
		}
	}
	// 4 PEs x 3 nodes x 2 directed pairs x ... = 4*3*2 = 24 directed intra
	// entries.
	if stats.Intra != 4*3*2 {
		t.Fatalf("intra count %d, want 24", stats.Intra)
	}
}

func TestDiagonalNeverAllowed(t *testing.T) {
	a := gridAssignment(2, 2, 2)
	mask, _ := BuildMask(a, nil, Config{Kind: DMesh})
	for i := 0; i < len(a.PEOf); i++ {
		if mask.At(i, i) {
			t.Fatalf("self-coupling %d allowed", i)
		}
	}
}

func TestPatternHierarchy(t *testing.T) {
	// Chain ⊆ Mesh ⊆ DMesh: richer patterns allow strictly more pairs on
	// a 3x3 grid.
	a := gridAssignment(3, 3, 2)
	chain, _ := BuildMask(a, nil, Config{Kind: Chain})
	mesh, _ := BuildMask(a, nil, Config{Kind: Mesh})
	dmesh, _ := BuildMask(a, nil, Config{Kind: DMesh})
	for i := range chain.Data {
		if chain.Data[i] && !mesh.Data[i] {
			t.Fatal("chain pair missing from mesh")
		}
		if mesh.Data[i] && !dmesh.Data[i] {
			t.Fatal("mesh pair missing from dmesh")
		}
	}
	if chain.Count() >= mesh.Count() {
		t.Fatalf("mesh (%d) not richer than chain (%d)", mesh.Count(), chain.Count())
	}
	if mesh.Count() >= dmesh.Count() {
		t.Fatalf("dmesh (%d) not richer than mesh (%d)", dmesh.Count(), mesh.Count())
	}
}

func TestChainFollowsSnakeOrder(t *testing.T) {
	// On a 2x2 grid, snake order is PE0, PE1, PE3, PE2. Chain must link
	// (1,3) and (3,2) but not (1,2) or (0,3).
	a := gridAssignment(2, 2, 1)
	mask, _ := BuildMask(a, nil, Config{Kind: Chain})
	type pair struct{ x, y int }
	want := map[pair]bool{
		{0, 1}: true, {1, 0}: true,
		{1, 3}: true, {3, 1}: true,
		{3, 2}: true, {2, 3}: true,
	}
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			if x == y {
				continue
			}
			if got := mask.At(x, y); got != want[pair{x, y}] {
				t.Fatalf("chain link (%d,%d) = %v, want %v", x, y, got, want[pair{x, y}])
			}
		}
	}
}

func TestMeshLinksGridNeighbors(t *testing.T) {
	a := gridAssignment(2, 2, 1)
	mask, _ := BuildMask(a, nil, Config{Kind: Mesh})
	// PE 0 and PE 3 are diagonal — not allowed under Mesh.
	if mask.At(0, 3) {
		t.Fatal("mesh must not link diagonal PEs")
	}
	// PE 0-1 (horizontal) and 0-2 (vertical) allowed.
	if !mask.At(0, 1) || !mask.At(0, 2) {
		t.Fatal("mesh missing grid neighbors")
	}
}

func TestDMeshAddsDiagonal(t *testing.T) {
	a := gridAssignment(2, 2, 1)
	mask, _ := BuildMask(a, nil, Config{Kind: DMesh})
	if !mask.At(0, 3) || !mask.At(1, 2) {
		t.Fatal("dmesh must link diagonal PEs")
	}
}

func TestWormholeBridgesStrongestRemote(t *testing.T) {
	// 3x1 grid: PEs 0,1,2 in a row. PE0-PE2 is remote under Chain? No —
	// use 4x1: PE0 and PE3 are remote for Chain and Mesh.
	a := gridAssignment(4, 1, 1)
	j := mat.NewDense(4, 4)
	j.Set(0, 3, 0.9) // strong remote coupling
	j.Set(3, 0, 0.9)
	j.Set(1, 3, 0.1) // weaker remote coupling (PE1-PE3 also remote)
	j.Set(3, 1, 0.1)
	mask, stats := BuildMask(a, j, Config{Kind: Chain, Wormholes: 1})
	if !mask.At(0, 3) || !mask.At(3, 0) {
		t.Fatal("wormhole must bridge the strongest remote pair")
	}
	if mask.At(1, 3) {
		t.Fatal("only one wormhole was budgeted")
	}
	if len(stats.WormholePairs) != 1 || stats.WormholePairs[0] != [2]int{0, 3} {
		t.Fatalf("wormhole pairs = %v", stats.WormholePairs)
	}
	if stats.Wormhole != 2 {
		t.Fatalf("wormhole entry count %d, want 2", stats.Wormhole)
	}
	if stats.Denied != 2 {
		t.Fatalf("denied count %d, want 2 (the 1-3 pair)", stats.Denied)
	}
}

func TestWormholeZeroBudget(t *testing.T) {
	a := gridAssignment(4, 1, 1)
	j := mat.NewDense(4, 4)
	j.Set(0, 3, 0.9)
	mask, stats := BuildMask(a, j, Config{Kind: Chain})
	if mask.At(0, 3) {
		t.Fatal("no wormholes budgeted, remote pair must be denied")
	}
	if stats.Denied != 1 {
		t.Fatalf("denied = %d", stats.Denied)
	}
}

func TestDeniedZeroWithoutJ(t *testing.T) {
	a := gridAssignment(2, 2, 2)
	_, stats := BuildMask(a, nil, Config{Kind: Chain, Wormholes: 5})
	if stats.Denied != 0 || stats.Wormhole != 0 {
		t.Fatalf("nil J should not produce denials/wormholes: %+v", stats)
	}
}

func TestMaskSymmetryForSymmetricJ(t *testing.T) {
	a := gridAssignment(3, 3, 2)
	n := len(a.PEOf)
	j := mat.NewDense(n, n)
	j.Set(0, n-1, 0.5)
	j.Set(n-1, 0, 0.5)
	for _, k := range Kinds() {
		mask, _ := BuildMask(a, j, Config{Kind: k, Wormholes: 2})
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if mask.At(x, y) != mask.At(y, x) {
					t.Fatalf("%v mask asymmetric at (%d,%d)", k, x, y)
				}
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Chain.String() != "chain" || Mesh.String() != "mesh" || DMesh.String() != "dmesh" {
		t.Fatal("kind names changed")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must stringify")
	}
}

func TestSnakeIndexCoversGrid(t *testing.T) {
	a := gridAssignment(3, 3, 1)
	seen := make(map[int]bool)
	for pe := 0; pe < 9; pe++ {
		idx := snakeIndex(a, pe)
		if idx < 0 || idx >= 9 || seen[idx] {
			t.Fatalf("snake index %d invalid for PE %d", idx, pe)
		}
		seen[idx] = true
	}
}
