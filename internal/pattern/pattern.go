// Package pattern builds the interconnect-pattern coupling masks of paper
// Sec. IV.B/IV.C. After redistribution places super-communities on the PE
// mesh, couplings are only physically realizable where the interconnect
// provides a path:
//
//   - within a PE, the local K x K crossbar connects every node pair;
//   - Chain links nodes on consecutive PEs (snake order over the grid);
//   - Mesh links nodes on 2-D-adjacent PEs (includes Chain);
//   - DMesh additionally links diagonal PE neighbors;
//   - Wormholes bridge a limited number of remote PE pairs over the
//     CU-to-CU super-connection grid, allocated to the strongest remaining
//     couplings.
//
// The resulting boolean mask confines the fine-tuning step of the training
// pipeline, so the learned system is exactly mappable onto the hardware.
package pattern

import (
	"fmt"
	"math"
	"sort"

	"dsgl/internal/community"
	"dsgl/internal/mat"
)

// Kind selects the interconnect pattern between super-communities.
type Kind int

const (
	// Chain connects consecutive PEs only.
	Chain Kind = iota
	// Mesh connects 2-D grid neighbors (up/down/left/right).
	Mesh
	// DMesh adds diagonal neighbors to Mesh.
	DMesh
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Chain:
		return "chain"
	case Mesh:
		return "mesh"
	case DMesh:
		return "dmesh"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the pattern kinds in increasing richness.
func Kinds() []Kind { return []Kind{Chain, Mesh, DMesh} }

// Config parameterizes mask construction.
type Config struct {
	Kind Kind
	// Wormholes is the maximum number of remote PE pairs bridged by super
	// connections (0 disables wormholes).
	Wormholes int
}

// Stats reports how the mask decomposed the couplings.
type Stats struct {
	// Entries allowed by each mechanism (directed entry counts).
	Intra, Neighbor, Wormhole int
	// Denied counts desired couplings (non-zero J entries) the mask
	// rejected.
	Denied int
	// WormholePairs lists the PE pairs granted wormholes.
	WormholePairs [][2]int
}

// BuildMask constructs the allowed-coupling mask for the placed system.
// j supplies the desired couplings (used to rank wormhole candidates and
// count denials); it may be nil, in which case no wormholes are allocated
// and Denied is zero.
func BuildMask(a *community.Assignment, j *mat.Dense, cfg Config) (*mat.Bool, *Stats) {
	n := len(a.PEOf)
	if j != nil && (j.Rows != n || j.Cols != n) {
		panic(fmt.Sprintf("pattern: J is %dx%d for %d placed nodes", j.Rows, j.Cols, n))
	}
	mask := mat.NewBool(n, n)
	stats := &Stats{}

	// Which PE pairs does the base pattern connect?
	peLinked := func(p, q int) bool {
		if p == q {
			return true
		}
		switch cfg.Kind {
		case Chain:
			return chainAdjacent(a, p, q)
		case Mesh:
			return chainAdjacent(a, p, q) || meshAdjacent(a, p, q)
		case DMesh:
			return chainAdjacent(a, p, q) || meshAdjacent(a, p, q) || diagAdjacent(a, p, q)
		default:
			panic(fmt.Sprintf("pattern: unknown kind %d", cfg.Kind))
		}
	}

	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x == y {
				continue
			}
			px, py := a.PEOf[x], a.PEOf[y]
			if px == py {
				mask.Set(x, y, true)
				stats.Intra++
			} else if peLinked(px, py) {
				mask.Set(x, y, true)
				stats.Neighbor++
			}
		}
	}

	// Wormholes: rank remote PE pairs by total desired coupling magnitude.
	if cfg.Wormholes > 0 && j != nil {
		type cand struct {
			p, q int
			mag  float64
		}
		acc := make(map[[2]int]float64)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if x == y || mask.At(x, y) {
					continue
				}
				v := math.Abs(j.At(x, y))
				if v == 0 {
					continue
				}
				p, q := a.PEOf[x], a.PEOf[y]
				if p > q {
					p, q = q, p
				}
				acc[[2]int{p, q}] += v
			}
		}
		cands := make([]cand, 0, len(acc))
		for k, v := range acc {
			cands = append(cands, cand{k[0], k[1], v})
		}
		sort.Slice(cands, func(i, k int) bool {
			if cands[i].mag != cands[k].mag {
				return cands[i].mag > cands[k].mag
			}
			if cands[i].p != cands[k].p {
				return cands[i].p < cands[k].p
			}
			return cands[i].q < cands[k].q
		})
		limit := cfg.Wormholes
		if limit > len(cands) {
			limit = len(cands)
		}
		worm := make(map[[2]int]bool, limit)
		for _, c := range cands[:limit] {
			worm[[2]int{c.p, c.q}] = true
			stats.WormholePairs = append(stats.WormholePairs, [2]int{c.p, c.q})
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if x == y || mask.At(x, y) {
					continue
				}
				p, q := a.PEOf[x], a.PEOf[y]
				if p > q {
					p, q = q, p
				}
				if worm[[2]int{p, q}] {
					mask.Set(x, y, true)
					stats.Wormhole++
				}
			}
		}
	}

	// Count denials of desired couplings.
	if j != nil {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if x != y && j.At(x, y) != 0 && !mask.At(x, y) {
					stats.Denied++
				}
			}
		}
	}
	return mask, stats
}

// chainAdjacent reports whether PEs p and q are consecutive in the snake
// (boustrophedon) order over the grid, which keeps chain neighbors
// physically adjacent.
func chainAdjacent(a *community.Assignment, p, q int) bool {
	return snakeIndex(a, p)-snakeIndex(a, q) == 1 || snakeIndex(a, q)-snakeIndex(a, p) == 1
}

// snakeIndex converts a row-major PE index to its boustrophedon position.
func snakeIndex(a *community.Assignment, pe int) int {
	x, y := a.PEXY(pe)
	if y%2 == 1 {
		x = a.GridW - 1 - x
	}
	return y*a.GridW + x
}

// meshAdjacent reports 4-neighborhood adjacency on the grid.
func meshAdjacent(a *community.Assignment, p, q int) bool {
	px, py := a.PEXY(p)
	qx, qy := a.PEXY(q)
	dx, dy := abs(px-qx), abs(py-qy)
	return dx+dy == 1
}

// diagAdjacent reports diagonal adjacency on the grid.
func diagAdjacent(a *community.Assignment, p, q int) bool {
	px, py := a.PEXY(p)
	qx, qy := a.PEXY(q)
	return abs(px-qx) == 1 && abs(py-qy) == 1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
