package scalable

import (
	"testing"

	"dsgl/internal/mat"
	"dsgl/internal/pattern"
)

// batchMachine compiles a temporal-mode test system for the batch tests.
func batchMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	p, a, mask := testSystem(t, 2, 2, 6, pattern.DMesh, 3, 7)
	m, err := Build(p, a, mask, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// batchObservations builds a batch of distinct observation sets.
func batchObservations(n, dim int) [][]Observation {
	obs := make([][]Observation, n)
	for i := range obs {
		obs[i] = []Observation{
			{Index: i % dim, Value: 0.5 - 0.05*float64(i%10)},
			{Index: (i*3 + 1) % dim, Value: -0.3 + 0.04*float64(i%7)},
		}
	}
	return obs
}

// TestInferBatchMatchesSequential is the concurrent-correctness contract:
// a batch fanned across >= 8 workers must be bit-identical — voltages,
// latency, switches, energy, settled flags — to a sequential loop calling
// InferSeeded with the same per-window seeds. Run under -race (the CI
// workflow does) this also exercises the worker pool for data races.
func TestInferBatchMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"spatial", Config{Lanes: 30, MaxTimeNs: 2000, Seed: 11}},
		{"temporal", Config{Lanes: 3, MaxTimeNs: 2000, Seed: 11}},
		{"noisy", Config{Lanes: 3, MaxTimeNs: 1000, Seed: 11, NodeNoise: 0.05, CouplerNoise: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := batchMachine(t, tc.cfg)
			obs := batchObservations(24, m.N)
			batch, err := m.InferBatch(obs, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(obs) {
				t.Fatalf("batch returned %d results for %d windows", len(batch), len(obs))
			}
			for i := range obs {
				seq, err := m.InferSeeded(obs[i], m.Config().Seed+uint64(i))
				if err != nil {
					t.Fatal(err)
				}
				b := batch[i]
				if b.LatencyNs != seq.LatencyNs || b.AnnealNs != seq.AnnealNs ||
					b.Settled != seq.Settled || b.Switches != seq.Switches ||
					b.Energy != seq.Energy {
					t.Fatalf("window %d: batch result %+v != sequential %+v", i, b, seq)
				}
				for k := range b.Voltage {
					if b.Voltage[k] != seq.Voltage[k] {
						t.Fatalf("window %d node %d: batch voltage %g != sequential %g (must be bit-identical)",
							i, k, b.Voltage[k], seq.Voltage[k])
					}
				}
			}
		})
	}
}

// TestInferBatchWorkerCountInvariance: results must not depend on pool
// size or scheduling — only on the per-window seed.
func TestInferBatchWorkerCountInvariance(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 3, MaxTimeNs: 1000, Seed: 5})
	obs := batchObservations(10, m.N)
	ref, err := m.InferBatch(obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 0, -1} {
		got, err := m.InferBatch(obs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			for k := range ref[i].Voltage {
				if got[i].Voltage[k] != ref[i].Voltage[k] {
					t.Fatalf("workers=%d window %d node %d: %g != %g",
						workers, i, k, got[i].Voltage[k], ref[i].Voltage[k])
				}
			}
		}
	}
}

func TestInferBatchPropagatesError(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 500, Seed: 5})
	obs := batchObservations(6, m.N)
	obs[3] = []Observation{{Index: m.N + 7, Value: 0.1}} // out of range
	if _, err := m.InferBatch(obs, 4); err == nil {
		t.Fatal("expected error for out-of-range observation in batch")
	}
	if _, err := m.InferBatch(nil, 4); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestInferSeededBaseSeedMatchesInfer(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 500, Seed: 21})
	obs := []Observation{{Index: 0, Value: 0.4}, {Index: 5, Value: -0.3}}
	a, err := m.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.InferSeeded(obs, m.Config().Seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Voltage {
		if a.Voltage[i] != b.Voltage[i] {
			t.Fatalf("node %d: Infer %g != InferSeeded(base) %g", i, a.Voltage[i], b.Voltage[i])
		}
	}
}

// TestInferWithZeroAlloc enforces the zero-allocation claim: after a
// state's first (warm-up) use, a full inference — clamping, anneal loop,
// sample-and-hold refreshes, residual checks, result assembly — performs
// no heap allocations, in every co-annealing mode and with noise enabled.
func TestInferWithZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"spatial", Config{Lanes: 30, MaxTimeNs: 500, Seed: 3}},
		{"temporal", Config{Lanes: 3, MaxTimeNs: 500, Seed: 3}},
		{"noisy", Config{Lanes: 3, MaxTimeNs: 200, Seed: 3, NodeNoise: 0.05, CouplerNoise: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := batchMachine(t, tc.cfg)
			st := m.NewInferState()
			obs := []Observation{{Index: 0, Value: 0.4}, {Index: 5, Value: -0.3}}
			if _, err := m.InferWith(st, obs, 1); err != nil { // warm-up
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := m.InferWith(st, obs, 2); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("InferWith allocated %v per op after warm-up, want 0", allocs)
			}
		})
	}
}

func TestInferWithRejectsForeignState(t *testing.T) {
	m1 := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 200, Seed: 3})
	m2 := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 200, Seed: 4})
	st := m1.NewInferState()
	if _, err := m2.InferWith(st, nil, 1); err == nil {
		t.Fatal("expected error for a state built by another machine")
	}
	if _, err := m1.InferWith(nil, nil, 1); err == nil {
		t.Fatal("expected error for nil state")
	}
}

// TestInferStateResultAliasing documents the aliasing contract: the state's
// Result voltage is overwritten in place by the next inference, while
// Infer/InferSeeded return detached copies.
func TestInferStateResultAliasing(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 500, Seed: 9})
	st := m.NewInferState()
	r1, err := m.InferWith(st, []Observation{{Index: 0, Value: 0.4}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	v0 := r1.Voltage[m.N-1]
	if st.Result() != r1 {
		t.Fatal("InferState.Result must return the last inference's result")
	}
	if _, err := m.InferWith(st, []Observation{{Index: 0, Value: -0.4}}, 2); err != nil {
		t.Fatal(err)
	}
	if r1.Voltage[m.N-1] == v0 {
		t.Fatal("aliased voltage should have been overwritten by the second inference")
	}
	detached, err := m.InferSeeded([]Observation{{Index: 0, Value: 0.4}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	vd := detached.Voltage[m.N-1]
	if _, err := m.InferSeeded([]Observation{{Index: 0, Value: -0.4}}, 2); err != nil {
		t.Fatal(err)
	}
	if detached.Voltage[m.N-1] != vd {
		t.Fatal("InferSeeded result must not alias scratch")
	}
}

// TestTypicalCoupling pins the coupler-noise scale: the mean |J| over the
// couplings the machine realizes (regression test for the divide-by-N bug:
// the sum used to be divided by the node count instead of the coupling
// count).
func TestTypicalCoupling(t *testing.T) {
	intra := mat.FromDense(mat.NewDenseFrom(4, 4, []float64{
		0, 1, 0, 0,
		-2, 0, 0, 0,
		0, 0, 0, 0,
		0, 0, 0, 0,
	}), 0)
	phase := mat.FromDense(mat.NewDenseFrom(4, 4, []float64{
		0, 0, 0, 3,
		0, 0, 0, 0,
		0, 0, 0, 0,
		0, 0, 0, 0,
	}), 0)
	m := &Machine{N: 4, intra: intra, phases: []*mat.CSR{phase}}
	// |1| + |-2| + |3| over 3 couplings = 2. The old bug divided by N=4,
	// yielding 1.5.
	if got := m.typicalCoupling(); got != 2 {
		t.Fatalf("typicalCoupling = %g, want 2 (mean |J| over 3 couplings)", got)
	}
	empty := &Machine{N: 4, intra: mat.FromDense(mat.NewDense(4, 4), 0)}
	if got := empty.typicalCoupling(); got != 1 {
		t.Fatalf("typicalCoupling with no couplings = %g, want fallback 1", got)
	}
}

// TestConfigFillDefaults is the table test for every Config field's
// zero-value behaviour, including the sentinel conventions.
func TestConfigFillDefaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   Config
		want Config
	}{
		{
			name: "all-defaults",
			in:   Config{},
			want: Config{
				Lanes: 30, Dt: 0.1, MaxTimeNs: 20000, SettleTol: 1e-5,
				VRail: 1, SyncIntervalNs: 200, SwitchIntervalNs: 200,
				SwitchOverheadNs: 20, ShardSyncNs: 200,
			},
		},
		{
			name: "explicit-values-kept",
			in: Config{
				Lanes: 8, Dt: 0.2, MaxTimeNs: 100, SettleTol: 1e-3,
				VRail: 2, SyncIntervalNs: 50, SwitchIntervalNs: 25,
				SwitchOverheadNs: 5, TemporalDisabled: true,
				ShardWorkers: 3, ShardSyncNs: 40,
				NodeNoise: 0.1, CouplerNoise: 0.2, Seed: 9,
			},
			want: Config{
				Lanes: 8, Dt: 0.2, MaxTimeNs: 100, SettleTol: 1e-3,
				VRail: 2, SyncIntervalNs: 50, SwitchIntervalNs: 25,
				SwitchOverheadNs: 5, TemporalDisabled: true,
				ShardWorkers: 3, ShardSyncNs: 40,
				NodeNoise: 0.1, CouplerNoise: 0.2, Seed: 9,
			},
		},
		{
			name: "switch-interval-follows-sync",
			in:   Config{SyncIntervalNs: 75},
			want: Config{
				Lanes: 30, Dt: 0.1, MaxTimeNs: 20000, SettleTol: 1e-5,
				VRail: 1, SyncIntervalNs: 75, SwitchIntervalNs: 75,
				SwitchOverheadNs: 20, ShardSyncNs: 75,
			},
		},
		{
			name: "negative-switch-overhead-means-zero",
			in:   Config{SwitchOverheadNs: -1},
			want: Config{
				Lanes: 30, Dt: 0.1, MaxTimeNs: 20000, SettleTol: 1e-5,
				VRail: 1, SyncIntervalNs: 200, SwitchIntervalNs: 200,
				SwitchOverheadNs: 0, ShardSyncNs: 200,
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in
			got.fillDefaults()
			if got != tc.want {
				t.Fatalf("fillDefaults:\n got  %+v\n want %+v", got, tc.want)
			}
		})
	}
}
