// Clamp-aware compiled inference plans.
//
// During clamped inference the observed nodes' voltages never change, so
// every coupling-matrix row whose stored columns are all observed evaluates
// to the same number on every integration step. A clampPlan is the
// compilation of that observation — of the observation INDEX pattern, never
// the values — into a form the anneal hot loop can exploit:
//
//   - rows of each coupling matrix are classified once: a row whose columns
//     are all clamped becomes part of the "static" matrix and is folded into
//     a per-row constant bias computed once per inference; a row with at
//     least one free column stays in the "dyn" matrix and is re-evaluated
//     each step; a clamped row is dropped entirely (its output feeds a node
//     whose derivative is pinned to zero);
//   - the derivative, integration, and settle loops iterate a free-node
//     index list instead of scanning and skipping the clamp mask.
//
// Plans are compiled on demand by the shared inference engine
// (internal/engine), which caches them by packed clamp-mask key in a
// bounded LRU; this file supplies only the compilation and the planned hot
// loop.
//
// Bit-exactness is the design constraint, not an accident. The plan path
// must return Results bit-identical to the naive loop (the sixth
// verification invariant), which IEEE-754 non-associativity makes a strict
// discipline:
//
//   - a "dyn" row keeps the FULL original row — including its clamped
//     columns — so its per-step accumulation order is exactly the naive
//     order. Partial folding of a mixed row would reassociate the sum.
//   - a "static" row's folded bias is computed by the same
//     start-at-zero, in-row-order accumulation the naive loop runs, so the
//     hoisted value is the bit pattern the naive loop recomputes each step.
//   - mat.CSR.MulVecAdd starts each row's accumulation literally at the
//     bias (no spurious +0 terms), and the bias is exactly +0 for dyn rows,
//     so the fused kernel reproduces both row classes' naive bit patterns.
//   - the sample-and-hold interSum update keeps the naive two-op
//     subtract-then-add sequence per refresh: skipping a "constant"
//     refresh would be observable, since a-c+c need not round-trip to a.
//   - noise draws happen per free node in ascending order in both paths,
//     so the RNG streams stay aligned.
package scalable

import (
	"math"

	"dsgl/internal/mat"
)

// planMat is one coupling matrix compiled against a clamp pattern.
type planMat struct {
	// static holds the free rows whose stored columns are all clamped:
	// each is a constant for the whole inference, folded into a bias by
	// MulVec once per inference.
	static *mat.CSR
	// dyn holds the free rows with at least one free column, each kept as
	// the FULL original row so per-step accumulation order — and therefore
	// every rounding step — matches the naive loop exactly.
	dyn *mat.CSR
}

// clampPlan is a compiled inference plan for one observation index pattern.
// A plan is immutable after compilation and shared freely across InferBatch
// workers; all per-inference mutable state (the folded biases) lives in the
// InferState's scratch arena.
type clampPlan struct {
	freeIdx  []int // unclamped node indices, ascending
	clampIdx []int // clamped node indices, ascending
	intra    planMat
	phases   []planMat
}

// compilePlan classifies every coupling matrix row against the clamp
// pattern and builds the free/clamped index lists.
func (m *Machine) compilePlan(clamped []bool) *clampPlan {
	pl := &clampPlan{
		intra:  compilePlanMat(m.intra, clamped),
		phases: make([]planMat, len(m.phases)),
	}
	for k, ph := range m.phases {
		pl.phases[k] = compilePlanMat(ph, clamped)
	}
	for i, c := range clamped {
		if c {
			pl.clampIdx = append(pl.clampIdx, i)
		} else {
			pl.freeIdx = append(pl.freeIdx, i)
		}
	}
	return pl
}

// compilePlanMat splits one coupling matrix into its static (fully-clamped
// free rows) and dyn (mixed free rows, kept whole) parts. mat.SplitRowPlan
// carries each stored row over verbatim — same entries, same in-row order —
// so the static matrix folds, and the dyn matrix re-evaluates, the exact
// accumulation order the naive loop would use.
func compilePlanMat(s *mat.CSR, clamped []bool) planMat {
	static, dyn := mat.SplitRowPlan(s, clamped)
	return planMat{static: static, dyn: dyn}
}

// maxPlanDeltaBits bounds how large a clamp-mask symmetric difference the
// delta compiler accepts. A sliding observation window shifts two bits per
// tick (one index leaves, one enters); beyond a handful of flips the
// affected-row set approaches the whole matrix and a full compile is both
// simpler and no slower.
const maxPlanDeltaBits = 4

// CompilePlanDelta implements engine.DeltaBackend: it patches a previously
// compiled plan for oldClamped into the plan for newClamped, reclassifying
// only the rows the mask delta touches. The product is structurally
// identical to a full compilePlan of newClamped — bit for bit, so the
// planned-vs-naive identity invariant holds for patched plans too — and the
// previous plan is never mutated (it may still be cached under its own
// key). Returns nil to decline when the delta is empty, too large, or prev
// is not this machine's plan type; the engine then falls back to a full
// compile.
func (m *Machine) CompilePlanDelta(prev any, oldClamped, newClamped []bool) any {
	pl, ok := prev.(*clampPlan)
	if !ok || len(oldClamped) != m.N || len(newClamped) != m.N {
		return nil
	}
	changed := 0
	for i := range newClamped {
		if oldClamped[i] != newClamped[i] {
			changed++
		}
	}
	if changed == 0 || changed > maxPlanDeltaBits {
		return nil
	}
	m.colRowsOnce.Do(func() {
		m.intraColRows = m.intra.ColRows()
		m.phaseColRows = make([][][]int32, len(m.phases))
		for k, ph := range m.phases {
			m.phaseColRows[k] = ph.ColRows()
		}
	})
	np := &clampPlan{
		intra:  patchPlanMat(m.intra, pl.intra, m.intraColRows, oldClamped, newClamped),
		phases: make([]planMat, len(m.phases)),
	}
	for k, ph := range m.phases {
		np.phases[k] = patchPlanMat(ph, pl.phases[k], m.phaseColRows[k], oldClamped, newClamped)
	}
	np.freeIdx = make([]int, 0, len(pl.freeIdx))
	np.clampIdx = make([]int, 0, len(pl.clampIdx))
	for i, c := range newClamped {
		if c {
			np.clampIdx = append(np.clampIdx, i)
		} else {
			np.freeIdx = append(np.freeIdx, i)
		}
	}
	return np
}

// patchPlanMat is compilePlanMat through mat.PatchRowPlan: unaffected rows
// are copied from the previous split wholesale.
func patchPlanMat(s *mat.CSR, prev planMat, colRows [][]int32, oldClamped, newClamped []bool) planMat {
	static, dyn := mat.PatchRowPlan(s, prev.static, prev.dyn, colRows, oldClamped, newClamped)
	return planMat{static: static, dyn: dyn}
}

// refreshPhasePlanned is refreshPhase on the plan path: slice k's held
// contribution is re-derived from the fresh state, but only the dyn rows are
// actually re-accumulated — static rows re-emit their folded bias, which is
// the bit pattern a full recompute would produce. The subtract/recompute/add
// sequence on interSum is kept per free node because a-c+c need not
// round-trip even when c is unchanged.
func refreshPhasePlanned(st *InferState, sc *scratch, pl *clampPlan, k int) {
	contrib := sc.contrib[k]
	interSum := sc.interSum
	for _, i := range pl.freeIdx {
		interSum[i] -= contrib[i]
	}
	pl.phases[k].dyn.MulVecAdd(st.X, sc.biasPhase[k], contrib)
	for _, i := range pl.freeIdx {
		interSum[i] += contrib[i]
	}
}

// inferPlanned is the clamp-plan hot loop: inferNaive with the constant
// clamp currents folded out and every per-node loop walking the free index
// list. Each floating-point operation it performs on a free node's state is
// the operation inferNaive performs, in the same order — see the package
// comment for the discipline — so the Result is bit-identical.
func (m *Machine) inferPlanned(st *InferState, pl *clampPlan) (*Result, error) {
	sc := st.Scratch.(*scratch)
	x := st.X
	steps := int(m.cfg.MaxTimeNs / m.cfg.Dt)
	if steps < 1 {
		return nil, errNoSteps
	}

	// Fold the constant clamp currents: one number per fully-clamped row,
	// computed here once instead of once per step. Free columns are never
	// read (static rows have none), so the uninitialized free voltages
	// cannot leak in.
	pl.intra.static.MulVec(x, sc.biasIntra)
	for k := range pl.phases {
		pl.phases[k].static.MulVec(x, sc.biasPhase[k])
	}

	intraCur := sc.intraCur
	deriv := sc.deriv
	interSum := sc.interSum
	for i := range interSum {
		interSum[i] = 0
	}
	for k := range sc.contrib {
		c := sc.contrib[k]
		for i := range c {
			c[i] = 0
		}
	}
	free := pl.freeIdx
	pl.phases[0].dyn.MulVecAdd(x, sc.biasPhase[0], sc.contrib[0])
	for _, i := range free {
		interSum[i] += sc.contrib[0][i]
	}
	if st.WarmStart {
		// Streaming warm tick: seed every held slice from the warm-start
		// equilibrium up front instead of waiting for the rotation to
		// first reach it — mirrors inferNaive's warm init exactly.
		for k := 1; k < len(m.phases); k++ {
			refreshPhasePlanned(st, sc, pl, k)
		}
	}

	noisy := m.cfg.NodeNoise > 0 || m.cfg.CouplerNoise > 0
	var couplerScale float64
	if noisy {
		couplerScale = m.typicalCoupling()
	}
	r := &st.RNG

	phase := 0
	nextSwitch := m.cfg.SwitchIntervalNs
	annealT := 0.0
	switches := 0
	settled := false
	lastResidual := math.NaN()
	taken := 0
	checkEvery := int(m.cfg.SwitchIntervalNs*float64(len(m.phases))/m.cfg.Dt) + 1
	if checkEvery < 32 {
		checkEvery = 32
	}
	nextFine := 0 // earliest step for the next warm fine-grained check

	for s := 0; s < steps; s++ {
		pl.intra.dyn.MulVecAdd(x, sc.biasIntra, intraCur)
		refreshPhasePlanned(st, sc, pl, phase)
		maxD := 0.0
		for _, i := range free {
			cur := intraCur[i] + interSum[i]
			if noisy && m.cfg.CouplerNoise > 0 {
				cur += r.NormScaled(0, m.cfg.CouplerNoise*couplerScale)
			}
			d := cur + m.params.H[i]*x[i]
			if noisy && m.cfg.NodeNoise > 0 {
				d += r.NormScaled(0, m.cfg.NodeNoise)
			}
			if x[i] >= m.cfg.VRail && d > 0 {
				d = 0
			} else if x[i] <= -m.cfg.VRail && d < 0 {
				d = 0
			}
			deriv[i] = d
			if a := math.Abs(d); a > maxD {
				maxD = a
			}
		}
		// Fused update+rail-clamp per free node; i-local, so identical to
		// the naive full-vector update followed by mat.Clamp. Clamped
		// nodes never move (their observation already respects the rail).
		for _, i := range free {
			xi := x[i] + m.cfg.Dt*deriv[i]
			if xi < -m.cfg.VRail {
				xi = -m.cfg.VRail
			} else if xi > m.cfg.VRail {
				xi = m.cfg.VRail
			}
			x[i] = xi
		}
		annealT += m.cfg.Dt
		taken = s + 1
		if st.Observer != nil {
			st.Observer(StepInfo{
				Step:     s,
				TimeNs:   annealT,
				EnergyFn: st.EnergyFn,
				MaxDeriv: maxD,
				Phase:    phase,
				X:        x,
			})
		}

		// Mirrors inferNaive's convergence structure, lastResidual capture
		// included: planResidual equals fullResidual bit-for-bit, so the
		// reported Residual is bit-identical across the two paths.
		if len(m.phases) == 1 {
			if maxD < m.cfg.SettleTol {
				lastResidual = m.planResidual(pl, sc, x, sc.resBuf)
				if lastResidual < m.cfg.SettleTol*settleResidualFactor {
					settled = true
					break
				}
			}
		} else {
			// Warm-tick fine-grained settle check, mirroring inferNaive's
			// structure (and backoff) exactly; planResidual equals
			// fullResidual bit-for-bit, so warm naive and warm planned
			// runs settle on the same step with the same residual.
			if st.WarmStart && s >= nextFine && maxD < m.cfg.SettleTol {
				lastResidual = m.planResidual(pl, sc, x, sc.resBuf)
				if lastResidual < m.cfg.SettleTol*settleResidualFactor {
					settled = true
					break
				}
				nextFine = s + warmFineBackoff
			}
			if s%checkEvery == checkEvery-1 {
				lastResidual = m.planResidual(pl, sc, x, sc.resBuf)
				if lastResidual < m.cfg.SettleTol*settleResidualFactor {
					settled = true
					break
				}
			}
		}
		if len(m.phases) > 1 && annealT >= nextSwitch {
			phase = (phase + 1) % len(m.phases)
			switches++
			nextSwitch += m.cfg.SwitchIntervalNs
		}
	}
	st.Res = Result{
		Voltage:   x,
		AnnealNs:  annealT,
		LatencyNs: annealT + float64(switches)*m.cfg.SwitchOverheadNs,
		Settled:   settled,
		Switches:  switches,
		Steps:     taken,
		Energy:    m.EnergyAt(x),
		Residual:  lastResidual,
	}
	return &st.Res, nil
}

// planResidual is fullResidual on the plan path: the true max |dσ/dt| with
// every coupling fresh, accumulated per free row with static rows re-emitted
// from their folded bias. Mirrors fullResidual's order exactly — intra row
// first, then each slice's row sum added in slice order, each slice's
// contribution accumulated from zero (the bias for dyn rows) and added to
// the buffer in one operation (empty rows included: naive adds their zero
// sum too, which rounds -0 to +0).
func (m *Machine) planResidual(pl *clampPlan, sc *scratch, x, buf []float64) float64 {
	pl.intra.dyn.MulVecAdd(x, sc.biasIntra, buf)
	for k := range pl.phases {
		dyn := pl.phases[k].dyn
		bias := sc.biasPhase[k]
		for _, i := range pl.freeIdx {
			sum := bias[i]
			for p := dyn.RowPtr[i]; p < dyn.RowPtr[i+1]; p++ {
				sum += dyn.Val[p] * x[dyn.ColIdx[p]]
			}
			buf[i] += sum
		}
	}
	maxD := 0.0
	for _, i := range pl.freeIdx {
		d := buf[i] + m.params.H[i]*x[i]
		if x[i] >= m.cfg.VRail && d > 0 {
			d = 0
		} else if x[i] <= -m.cfg.VRail && d < 0 {
			d = 0
		}
		if a := math.Abs(d); a > maxD {
			maxD = a
		}
	}
	return maxD
}
