package scalable

import (
	"math"
	"testing"

	"dsgl/internal/community"
	"dsgl/internal/mat"
	"dsgl/internal/pattern"
	"dsgl/internal/rng"
	"dsgl/internal/train"
)

// shardSystem builds a gently coupled trained system (weak couplings, so
// both the exact and the sharded anneal settle well inside the default
// time budget) on a 2x2 grid of 6-node PEs.
func shardSystem(t *testing.T, seed uint64) (*train.Params, *community.Assignment, *mat.Bool) {
	t.Helper()
	gw, gh, cap := 2, 2, 6
	n := gw * gh * cap
	a := &community.Assignment{
		PEOf:     make([]int, n),
		NodesOf:  make([][]int, gw*gh),
		GridW:    gw,
		GridH:    gh,
		Capacity: cap,
	}
	for i := 0; i < n; i++ {
		pe := i / cap
		a.PEOf[i] = pe
		a.NodesOf[pe] = append(a.NodesOf[pe], i)
	}
	r := rng.New(seed)
	j := mat.NewDense(n, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y && r.Float64() < 0.4 {
				j.Set(x, y, r.NormScaled(0, 0.03))
			}
		}
	}
	mask, _ := pattern.BuildMask(a, j, pattern.Config{Kind: pattern.DMesh, Wormholes: 3})
	j.ApplyMask(mask)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	return &train.Params{J: j, H: h}, a, mask
}

// shardedMachine compiles a sharding-enabled machine plus an identical
// exact twin (same system, sharding off) for reference runs.
func shardedMachine(t *testing.T, cfg Config) (sharded, exact *Machine) {
	t.Helper()
	p, a, mask := shardSystem(t, 5)
	s, err := Build(p, a, mask, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShardWorkers = 0
	e, err := Build(p, a, mask, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, e
}

var shardObs = []Observation{
	{Index: 0, Value: 0.4}, {Index: 3, Value: -0.2}, {Index: 7, Value: 0.6},
	{Index: 12, Value: -0.5}, {Index: 14, Value: 0.3}, {Index: 19, Value: 0.1},
	{Index: 21, Value: -0.35},
}

// TestShardedSettlesToSameFixedPoint is the tentpole contract: the sharded
// anneal must reach the same equilibrium as the exact sequential path
// within the residual-implied tolerance, and must be deterministic for a
// fixed seed.
func TestShardedSettlesToSameFixedPoint(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"spatial", Config{Lanes: 30, Seed: 11, ShardWorkers: 4}},
		{"temporal", Config{Lanes: 3, Seed: 11, ShardWorkers: 4}},
		{"two-shards", Config{Lanes: 30, Seed: 11, ShardWorkers: 2}},
		{"long-sync", Config{Lanes: 30, Seed: 11, ShardWorkers: 4, ShardSyncNs: 1000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sm, em := shardedMachine(t, tc.cfg)
			if sm.ShardCount() < 2 {
				t.Fatalf("machine should shard, ShardCount=%d", sm.ShardCount())
			}
			clamped := make([]bool, sm.N)
			for _, o := range shardObs {
				clamped[o.Index] = true
			}
			if sm.CompileShardedPlan(clamped) == nil {
				t.Fatal("sharded plan unexpectedly unavailable for this pattern")
			}
			for _, seed := range []uint64{1, 42} {
				shard, err := sm.InferShardedSeeded(shardObs, seed)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := em.InferSeeded(shardObs, seed)
				if err != nil {
					t.Fatal(err)
				}
				if !exact.Settled {
					t.Fatal("exact reference did not settle; weaken the test system")
				}
				if !shard.Settled {
					t.Fatal("sharded anneal did not settle")
				}
				if shard.Switches < 1 {
					t.Fatalf("sharded run reports %d sync rounds", shard.Switches)
				}
				// Both residuals are < 1e-4 and H = -1, so the two settled
				// states bracket the unique fixed point within ~2e-4.
				const tol = 1e-3
				for i := range exact.Voltage {
					if d := math.Abs(shard.Voltage[i] - exact.Voltage[i]); d > tol {
						t.Fatalf("seed %d node %d: sharded %v vs exact %v (|Δ|=%.3g > %g)",
							seed, i, shard.Voltage[i], exact.Voltage[i], d, tol)
					}
				}
				// Settled implies the full residual bound, sharded path
				// included (invariant 2).
				r, err := sm.ResidualAt(shard.Voltage, clamped)
				if err != nil {
					t.Fatal(err)
				}
				if r >= sm.SettleResidualTol() {
					t.Fatalf("settled sharded residual %.3g >= bound %.3g", r, sm.SettleResidualTol())
				}
				if math.Float64bits(r) != math.Float64bits(shard.Residual) {
					t.Fatalf("Result.Residual %v not bit-identical to ResidualAt %v", shard.Residual, r)
				}
				// Determinism: a repeat run reproduces bit-for-bit.
				again, err := sm.InferShardedSeeded(shardObs, seed)
				if err != nil {
					t.Fatal(err)
				}
				for i := range shard.Voltage {
					if math.Float64bits(shard.Voltage[i]) != math.Float64bits(again.Voltage[i]) {
						t.Fatalf("sharded run not deterministic at node %d: %v vs %v",
							i, shard.Voltage[i], again.Voltage[i])
					}
				}
			}
		})
	}
}

// TestShardedFallsBackToExact pins every documented fallback: a machine
// that cannot shard must return bit-identical results through the sharded
// entry points.
func TestShardedFallsBackToExact(t *testing.T) {
	p, a, mask := shardSystem(t, 5)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"disabled", Config{Lanes: 30, Seed: 11}},
		{"one-worker", Config{Lanes: 30, Seed: 11, ShardWorkers: 1}},
		{"sync-below-dt", Config{Lanes: 30, Seed: 11, ShardWorkers: 4, ShardSyncNs: 0.05}},
		{"noisy", Config{Lanes: 30, Seed: 11, ShardWorkers: 4, NodeNoise: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Build(p, a, mask, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if n := m.ShardCount(); n != 0 {
				t.Fatalf("ShardCount = %d, want 0", n)
			}
			shard, err := m.InferShardedSeeded(shardObs, 7)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := m.InferSeeded(shardObs, 7)
			if err != nil {
				t.Fatal(err)
			}
			identicalResults(t, tc.name, shard, exact)
		})
	}
}

// TestShardedPlanDeclinesConcentratedClamps: when the clamp pattern frees
// nodes in only one shard there is nothing to parallelize; the plan
// compiler must decline and the entry point must fall back exactly.
func TestShardedPlanDeclinesConcentratedClamps(t *testing.T) {
	sm, _ := shardedMachine(t, Config{Lanes: 30, Seed: 11, ShardWorkers: 4})
	clamped := make([]bool, sm.N)
	var obs []Observation
	// Clamp every node except the first PE's six.
	for i := 6; i < sm.N; i++ {
		clamped[i] = true
		obs = append(obs, Observation{Index: i, Value: 0.1})
	}
	if pl := sm.CompileShardedPlan(clamped); pl != nil {
		t.Fatal("plan should decline a single-shard free pattern")
	}
	shard, err := sm.InferShardedSeeded(obs, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sm.InferSeeded(obs, 3)
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, "concentrated", shard, exact)
}

// TestShardedBatchMatchesSequentialSharded: the sharded batch entry point
// must be bit-identical to a sequential loop of InferShardedSeeded with
// the same per-window seeds, for any worker count (sharded runs are
// deterministic per seed, so the batch contract carries over).
func TestShardedBatchMatchesSequentialSharded(t *testing.T) {
	sm, _ := shardedMachine(t, Config{Lanes: 3, Seed: 11, ShardWorkers: 4})
	obs := batchObservations(12, sm.N)
	for _, workers := range []int{1, 4} {
		batch, err := sm.InferShardedBatch(obs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range obs {
			seq, err := sm.InferShardedSeeded(obs[i], sm.Config().Seed+uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			identicalResults(t, "sharded batch", batch[i], seq)
		}
	}
}
