package scalable

import (
	"math"
	"testing"
	"testing/quick"

	"dsgl/internal/community"
	"dsgl/internal/mat"
	"dsgl/internal/pattern"
	"dsgl/internal/rng"
	"dsgl/internal/train"
)

// quickSystem builds a random pattern-legal system for property tests.
func quickSystem(seed uint64) (*train.Params, *community.Assignment, *mat.Bool) {
	r := rng.New(seed)
	gw := 2 + int(seed%2)
	gh := 2
	cap := 3 + int(seed%4)
	n := gw * gh * cap
	a := &community.Assignment{
		PEOf: make([]int, n), NodesOf: make([][]int, gw*gh),
		GridW: gw, GridH: gh, Capacity: cap,
	}
	for i := 0; i < n; i++ {
		pe := i / cap
		a.PEOf[i] = pe
		a.NodesOf[pe] = append(a.NodesOf[pe], i)
	}
	j := mat.NewDense(n, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y && r.Float64() < 0.4 {
				j.Set(x, y, r.NormScaled(0, 0.1))
			}
		}
	}
	mask, _ := pattern.BuildMask(a, j, pattern.Config{Kind: pattern.DMesh, Wormholes: 2})
	j.ApplyMask(mask)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1 - r.Float64()
	}
	return &train.Params{J: j, H: h}, a, mask
}

// TestQuickEffectiveJAlwaysPreserved: whatever the lane budget, a
// temporal-capable build realizes exactly the trained coupling matrix.
func TestQuickEffectiveJAlwaysPreserved(t *testing.T) {
	f := func(seed uint64) bool {
		p, a, mask := quickSystem(seed)
		lanes := 1 + int(seed%5)
		m, err := Build(p, a, mask, Config{Lanes: lanes})
		if err != nil {
			return false
		}
		return m.EffectiveJ().Equal(p.J, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundsConsistentWithDemand: pure spatial mode iff the maximum
// portal demand fits in the lane budget.
func TestQuickRoundsConsistentWithDemand(t *testing.T) {
	f := func(seed uint64) bool {
		p, a, mask := quickSystem(seed)
		lanes := 1 + int(seed%8)
		m, err := Build(p, a, mask, Config{Lanes: lanes})
		if err != nil {
			return false
		}
		st := m.Stats()
		if st.MaxPortalDemand <= lanes && st.Rounds != 1 {
			return false
		}
		if st.Rounds == 1 && st.Mode != ModeSpatial {
			return false
		}
		if st.Rounds > 1 && st.Mode != ModeTemporalSpatial {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInferenceStaysOnRails: voltages never exceed the rails and
// clamped nodes never move, for random systems and observations.
func TestQuickInferenceStaysOnRails(t *testing.T) {
	f := func(seed uint64) bool {
		p, a, mask := quickSystem(seed)
		m, err := Build(p, a, mask, Config{Lanes: 2, MaxTimeNs: 300, Seed: seed})
		if err != nil {
			return false
		}
		r := rng.New(seed ^ 0x55)
		obs := []Observation{
			{Index: r.Intn(p.Dim()), Value: r.Uniform(-0.9, 0.9)},
		}
		res, err := m.Infer(obs)
		if err != nil {
			return false
		}
		for i, v := range res.Voltage {
			if math.Abs(v) > 1+1e-12 {
				return false
			}
			if i == obs[0].Index && v != obs[0].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
