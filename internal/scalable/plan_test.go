package scalable

import (
	"math"
	"strings"
	"testing"

	"dsgl/internal/engine"
)

// identicalResults compares two Results bit-for-bit: every float field and
// every voltage must carry the same IEEE-754 bit pattern, not merely compare
// equal. This is the strongest form of the plan-naive-identity contract.
func identicalResults(t *testing.T, label string, plan, naive *Result) {
	t.Helper()
	if len(plan.Voltage) != len(naive.Voltage) {
		t.Fatalf("%s: voltage length %d vs %d", label, len(plan.Voltage), len(naive.Voltage))
	}
	for i := range plan.Voltage {
		if math.Float64bits(plan.Voltage[i]) != math.Float64bits(naive.Voltage[i]) {
			t.Fatalf("%s: voltage[%d] differs: plan %v (%#x) naive %v (%#x)",
				label, i, plan.Voltage[i], math.Float64bits(plan.Voltage[i]),
				naive.Voltage[i], math.Float64bits(naive.Voltage[i]))
		}
	}
	if math.Float64bits(plan.LatencyNs) != math.Float64bits(naive.LatencyNs) {
		t.Fatalf("%s: latency %v vs %v", label, plan.LatencyNs, naive.LatencyNs)
	}
	if math.Float64bits(plan.AnnealNs) != math.Float64bits(naive.AnnealNs) {
		t.Fatalf("%s: anneal time %v vs %v", label, plan.AnnealNs, naive.AnnealNs)
	}
	if math.Float64bits(plan.Energy) != math.Float64bits(naive.Energy) {
		t.Fatalf("%s: energy %v vs %v", label, plan.Energy, naive.Energy)
	}
	if plan.Settled != naive.Settled {
		t.Fatalf("%s: settled %v vs %v", label, plan.Settled, naive.Settled)
	}
	if plan.Switches != naive.Switches {
		t.Fatalf("%s: switches %d vs %d", label, plan.Switches, naive.Switches)
	}
}

// TestInferPlanBitIdentical is the tentpole acceptance test: the clamp-plan
// path must return Results bit-identical to the naive reference loop for
// every mode, seed, and worker count — constant folding reorganizes which
// operations are hoisted out of the loop, never their order or rounding.
func TestInferPlanBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"spatial", Config{Lanes: 30, MaxTimeNs: 2000, Seed: 11}},
		{"temporal", Config{Lanes: 3, MaxTimeNs: 2000, Seed: 11}},
		{"noisy", Config{Lanes: 3, MaxTimeNs: 1000, Seed: 11, NodeNoise: 0.05, CouplerNoise: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := batchMachine(t, tc.cfg)
			for _, seed := range []uint64{1, 7, 42, 1 << 40} {
				for _, obs := range [][]Observation{
					{{Index: 0, Value: 0.4}},
					{{Index: 0, Value: 0.4}, {Index: 5, Value: -0.3}, {Index: 11, Value: 0.9}},
					{{Index: 3, Value: -0.2}, {Index: 4, Value: 0.1}, {Index: 8, Value: 0.6}, {Index: 15, Value: -0.7}, {Index: 20, Value: 0.25}},
					{}, // no clamps: everything is dyn
				} {
					plan, err := m.InferSeeded(obs, seed)
					if err != nil {
						t.Fatal(err)
					}
					naive, err := m.InferSeededNaive(obs, seed)
					if err != nil {
						t.Fatal(err)
					}
					identicalResults(t, tc.name, plan, naive)
				}
			}
		})
	}
}

// TestInferPlanBatchBitIdentical pins the same contract through the batch
// engine: any worker count must reproduce the sequential naive loop bit for
// bit (window w runs with seed Config.Seed + w in both).
func TestInferPlanBatchBitIdentical(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 3, MaxTimeNs: 1500, Seed: 9})
	obs := batchObservations(16, m.N)
	for _, workers := range []int{1, 3, 8} {
		batch, err := m.InferBatch(obs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range obs {
			naive, err := m.InferSeededNaive(obs[i], m.Config().Seed+uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			identicalResults(t, "batch", batch[i], naive)
		}
	}
}

// TestPlanAllClampedAndFullyFree covers the plan compiler's edge patterns:
// every node observed (no free rows at all: the anneal loop has nothing to
// integrate) and, via the empty-observation case above, no node observed.
func TestPlanAllClampedAndFullyFree(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 200, Seed: 5})
	obs := make([]Observation, m.N)
	for i := range obs {
		obs[i] = Observation{Index: i, Value: 0.3 - 0.01*float64(i)}
	}
	plan, err := m.InferSeeded(obs, 3)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := m.InferSeededNaive(obs, 3)
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, "all-clamped", plan, naive)
	for i, o := range obs {
		if plan.Voltage[i] != o.Value {
			t.Fatalf("clamped node %d moved: %v != %v", i, plan.Voltage[i], o.Value)
		}
	}
}

// TestPlanCacheHitsAcrossBatch proves the point of keying plans by index
// pattern: a batch whose windows share one observation pattern (different
// values!) compiles exactly one plan and hits the cache for every other
// window, across all workers.
func TestPlanCacheHitsAcrossBatch(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 500, Seed: 3})
	const windows = 24
	obs := make([][]Observation, windows)
	for w := range obs {
		obs[w] = []Observation{
			{Index: 2, Value: 0.5 - 0.02*float64(w)},
			{Index: 9, Value: -0.4 + 0.03*float64(w%5)},
			{Index: 17, Value: 0.1 * float64(w%7)},
		}
	}
	if _, err := m.InferBatch(obs, 8); err != nil {
		t.Fatal(err)
	}
	hits, misses := m.PlanCacheStats()
	if misses != 1 {
		t.Fatalf("shared-pattern batch compiled %d plans, want 1", misses)
	}
	if hits != windows-1 {
		t.Fatalf("shared-pattern batch hit %d times, want %d", hits, windows-1)
	}
}

// TestEnsurePlanWarmsCache: pre-compiling via EnsurePlan makes the whole
// batch hit the cache.
func TestEnsurePlanWarmsCache(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 500, Seed: 3})
	obs := []Observation{{Index: 1, Value: 0.2}, {Index: 6, Value: -0.1}}
	if err := m.EnsurePlan(obs); err != nil {
		t.Fatal(err)
	}
	batch := [][]Observation{obs, obs, obs, obs}
	if _, err := m.InferBatch(batch, 2); err != nil {
		t.Fatal(err)
	}
	hits, misses := m.PlanCacheStats()
	if misses != 1 || hits != uint64(len(batch)) {
		t.Fatalf("after EnsurePlan: hits=%d misses=%d, want hits=%d misses=1", hits, misses, len(batch))
	}
	if err := m.EnsurePlan([]Observation{{Index: -1}}); err == nil {
		t.Fatal("EnsurePlan accepted out-of-range index")
	}
	if err := m.EnsurePlan([]Observation{{Index: 1}, {Index: 1}}); err == nil {
		t.Fatal("EnsurePlan accepted duplicate index")
	}
}

// TestPlanCacheLRUEviction: the cache is bounded, so walking more patterns
// than its capacity evicts the oldest — re-running the first pattern is a
// fresh miss, the cache never exceeds its bound, and a recompiled plan is
// still bit-identical to the naive reference (eviction must lose nothing
// but time).
func TestPlanCacheLRUEviction(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 200, Seed: 3})
	cap := engine.PlanCacheCapacity
	pat := func(k int) []Observation {
		return []Observation{{Index: k % m.N, Value: 0.2}, {Index: (k + 7) % m.N, Value: -0.2}}
	}
	// cap+1 distinct patterns: pattern 0 gets evicted. Every planned result
	// along the way must match the naive loop bit for bit.
	for k := 0; k <= cap; k++ {
		plan, err := m.InferSeeded(pat(k), 1)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := m.InferSeededNaive(pat(k), 1)
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, "pre-eviction", plan, naive)
	}
	_, misses := m.PlanCacheStats()
	if want := uint64(cap + 1); misses != want {
		t.Fatalf("distinct patterns: misses=%d, want %d", misses, want)
	}
	if got := m.Engine().PlanCacheLen(); got != cap {
		t.Fatalf("cache holds %d plans, cap %d", got, cap)
	}
	// Pattern 0 was evicted: re-running it recompiles, and the recompiled
	// plan must still be bit-identical to naive.
	plan, err := m.InferSeeded(pat(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := m.InferSeededNaive(pat(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, "post-eviction recompile", plan, naive)
	_, misses = m.PlanCacheStats()
	if want := uint64(cap + 2); misses != want {
		t.Fatalf("evicted pattern did not recompile: misses=%d, want %d", misses, want)
	}
	if got := m.Engine().PlanCacheLen(); got != cap {
		t.Fatalf("cache grew past its bound: holds %d plans, cap %d", got, cap)
	}
	// The survivor set still hits.
	hitsBefore, _ := m.PlanCacheStats()
	if _, err := m.InferSeeded(pat(cap), 1); err != nil {
		t.Fatal(err)
	}
	hits, _ := m.PlanCacheStats()
	if hits != hitsBefore+1 {
		t.Fatalf("recent pattern missed: hits %d -> %d", hitsBefore, hits)
	}
}

// TestEnsurePlanRejectsRailViolation: EnsurePlan runs the same validator as
// the inference entry points, including the rail bound it historically
// skipped, and its warm path reuses the engine's scratch instead of
// allocating a fresh mask and key per call.
func TestEnsurePlanRejectsRailViolation(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 200, Seed: 3})
	if err := m.EnsurePlan([]Observation{{Index: 1, Value: 2.5}}); err == nil || !strings.Contains(err.Error(), "rail") {
		t.Fatalf("EnsurePlan: got %v, want rail-bound error", err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := m.EnsurePlan([]Observation{{Index: 1, Value: 0.2}}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm EnsurePlan allocated %v per op, want 0", allocs)
	}
}

// TestDuplicateObservationRejected: clamping one node twice is a windowing
// bug, not a tie-break — every inference entry point must reject it.
func TestDuplicateObservationRejected(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 200, Seed: 3})
	dup := []Observation{{Index: 4, Value: 0.2}, {Index: 4, Value: 0.2}}
	if _, err := m.Infer(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Infer: got %v, want duplicate-observation error", err)
	}
	if _, err := m.InferSeededNaive(dup, 1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("InferSeededNaive: got %v, want duplicate-observation error", err)
	}
	if _, err := m.InferBatch([][]Observation{{{Index: 0, Value: 0.1}}, dup}, 2); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("InferBatch: got %v, want duplicate-observation error", err)
	}
}

// TestInferNaiveZeroAlloc keeps the reference loop honest too: after state
// warm-up the naive path must also run allocation-free, so benchmark deltas
// against it measure arithmetic, not allocator traffic.
func TestInferNaiveZeroAlloc(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 500, Seed: 3})
	st := m.NewInferState()
	obs := []Observation{{Index: 0, Value: 0.4}, {Index: 5, Value: -0.3}}
	if _, err := m.InferWithNaive(st, obs, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := m.InferWithNaive(st, obs, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("InferWithNaive allocated %v per op, want 0", allocs)
	}
}
