package scalable

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dsgl/internal/community"
	"dsgl/internal/engine"
	"dsgl/internal/mat"
	"dsgl/internal/train"
)

// Mode reports which co-annealing method a mapping runs.
type Mode int

const (
	// ModeSpatial is pure Spatial co-annealing: every routed coupling is
	// live simultaneously (communication demand D <= lane budget L).
	ModeSpatial Mode = iota
	// ModeTemporalSpatial time-multiplexes coupling slices (D > L).
	ModeTemporalSpatial
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSpatial:
		return "spatial"
	case ModeTemporalSpatial:
		return "temporal+spatial"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config holds the hardware and runtime parameters of the Scalable DSPU.
//
// Zero-value convention: 0 in any numeric field means "use the documented
// default", never "literally zero". Where a literal zero is meaningful and
// differs from the default (SwitchOverheadNs), a negative value is the
// explicit "zero/off" sentinel, as noted on the field.
type Config struct {
	// Lanes is L, the analog lanes per exporting portal. The paper uses 30.
	Lanes int
	// Dt is the integration timestep in ns. Default 0.1 (a tenth of the
	// ~1 ns node time constant).
	Dt float64
	// MaxTimeNs bounds one inference. Default 20000 ns (Fig. 11's axis).
	MaxTimeNs float64
	// SettleTol stops the run when max |dσ/dt| falls below it. Default 1e-5.
	SettleTol float64
	// VRail bounds node voltages. Default 1.
	VRail float64
	// SyncIntervalNs is the inter-mapping synchronization interval
	// (Sec. V.D / Fig. 12): how long each temporal slice ("mapping")
	// stays live before the Switch Controller rotates to the next. Within
	// the live mapping coupling is continuous analog current and needs no
	// synchronization; the inactive mappings' held contributions refresh
	// only when their slice next becomes live — i.e. cross-mapping
	// information exchanges once per synchronization interval. Default
	// 200 ns, the interval the DS-GL hardware supports. Values <= Dt
	// rotate every integration step.
	SyncIntervalNs float64
	// SwitchIntervalNs overrides the slice rotation period when non-zero;
	// by default it equals SyncIntervalNs (rotation IS the
	// synchronization mechanism).
	SwitchIntervalNs float64
	// SwitchOverheadNs is the dead time per mapping switch while the
	// In-CU Weight Buffers redrive the crossbar DACs and the schedulers
	// reload routing state (default 20 ns); it counts toward latency but
	// performs no annealing. Pass a negative value to model free switching
	// (an overhead of literally zero).
	SwitchOverheadNs float64
	// TemporalDisabled selects the DS-GL-Spatial variant: couplings beyond
	// one round are dropped instead of time-multiplexed.
	TemporalDisabled bool
	// ShardWorkers enables the software-sharded anneal (shard.go): the
	// graph is partitioned into up to ShardWorkers groups of Louvain
	// super-communities and each partition anneals on its own goroutine,
	// exchanging cross-partition contributions every ShardSyncNs. 0 or 1
	// keeps the exact sequential path; noisy configurations always do
	// (one RNG stream cannot be split across concurrent shards
	// deterministically).
	ShardWorkers int
	// ShardSyncNs is the cross-shard synchronization interval (default:
	// SyncIntervalNs, the hardware sync rate — the software analog of the
	// paper's multi-mapping synchronization). Values <= Dt would exchange
	// every integration step, where the exact path is the bit-identical
	// (and cheaper) implementation, so the machine routes there instead.
	ShardSyncNs float64
	// NodeNoise / CouplerNoise are relative Gaussian disturbance sigmas
	// (Fig. 13). Zero disables noise.
	NodeNoise, CouplerNoise float64
	// Seed drives free-node initialization and noise.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Lanes == 0 {
		c.Lanes = 30
	}
	if c.Dt == 0 {
		c.Dt = 0.1
	}
	if c.MaxTimeNs == 0 {
		c.MaxTimeNs = 20000
	}
	if c.SettleTol == 0 {
		c.SettleTol = 1e-5
	}
	if c.VRail == 0 {
		c.VRail = 1
	}
	if c.SyncIntervalNs == 0 {
		c.SyncIntervalNs = 200
	}
	if c.SwitchIntervalNs == 0 {
		c.SwitchIntervalNs = c.SyncIntervalNs
	}
	if c.ShardSyncNs == 0 {
		c.ShardSyncNs = c.SyncIntervalNs
	}
	if c.SwitchOverheadNs == 0 {
		c.SwitchOverheadNs = 20
	}
	if c.SwitchOverheadNs < 0 {
		c.SwitchOverheadNs = 0
	}
}

// errNoSteps rejects a configuration whose time budget cannot fit a single
// integration step. Shared by the naive and planned loops.
var errNoSteps = errors.New("scalable: MaxTimeNs shorter than one timestep")

// settleResidualFactor relaxes SettleTol for the full-residual settle
// check: the live-slice derivative must beat SettleTol itself, while the
// true (all-couplings-fresh) residual — which carries sample-and-hold
// staleness in temporal mode — must beat SettleTol * settleResidualFactor.
const settleResidualFactor = 10

// warmFineBackoff is the step gap between failed fine-grained settle checks
// on a warm-started temporal tick: once a vanished live-slice derivative
// turns out not to be a true equilibrium (held slices still stale), the
// next full-residual evaluation waits this many steps. Bounds the check
// overhead at one O(nnz) evaluation per backoff window while keeping warm
// ticks free of the one-check-per-slice-cycle floor cold runs have.
const warmFineBackoff = 32

// Stats describes how a mapping compiled onto the hardware.
type Stats struct {
	Mode              Mode
	Rounds            int // temporal slices (1 = pure spatial)
	Lanes             int // L
	MaxPortalDemand   int // D: max distinct nodes any portal must export
	IntraCouplings    int
	InterCouplings    int
	WormholeCouplings int
	DroppedCouplings  int // only non-zero for TemporalDisabled overflows
}

// Machine is a compiled Scalable DSPU mapping ready for inference. It is
// the scalable Backend of the shared inference engine (internal/engine):
// the engine owns observation validation, the clamp-plan cache, seeding,
// and batch fan-out; the Machine supplies the co-annealing dynamics.
type Machine struct {
	N      int
	cfg    Config
	params *train.Params
	assign *community.Assignment
	intra  *mat.CSR   // intra-PE couplings (always live, always fresh)
	phases []*mat.CSR // inter-PE couplings per temporal slice
	stats  Stats

	// The engine is created lazily on first use: tests construct bare
	// Machine literals (&Machine{N: ..., intra: ...}) that never infer.
	engOnce sync.Once
	eng     *engine.Engine

	// Sharded-anneal structures, built lazily on first use (shard.go):
	// shardGroups partitions the nodes by super-community groups (nil when
	// this machine cannot shard) and combined merges intra plus every
	// temporal slice into one always-live coupling matrix.
	shardOnce   sync.Once
	shardGroups [][]int
	combined    *mat.CSR

	// Column→rows adjacency of every coupling matrix, built lazily on the
	// first plan-delta compile (plan.go): the patcher uses it to find the
	// rows a clamp-mask flip touches without rescanning the matrices.
	colRowsOnce  sync.Once
	intraColRows [][]int32
	phaseColRows [][][]int32
}

// Engine returns the inference engine driving this machine, creating it on
// first use.
func (m *Machine) Engine() *engine.Engine {
	m.engOnce.Do(func() { m.eng = engine.New(m) })
	return m.eng
}

// Stats returns the compilation statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Config returns the defaults-filled configuration.
func (m *Machine) Config() Config { return m.cfg }

// Observation clamps node Index to Value during inference.
type Observation = engine.Observation

// Result is the outcome of one Scalable DSPU inference.
type Result = engine.Result

// StepInfo is the per-step telemetry handed to a StepObserver; see
// engine.StepInfo.
type StepInfo = engine.StepInfo

// StepObserver receives StepInfo after every integration step of an
// inference; see engine.StepObserver.
type StepObserver = engine.StepObserver

// InferState is a reusable per-worker scratch arena for Machine inference;
// see engine.InferState. The machine-specific buffers (intra-PE current,
// derivative, sample-and-hold contributions, folded biases) hang off the
// state's Scratch field.
type InferState = engine.InferState

// scratch is the Machine's backend arena inside an engine.InferState: every
// buffer the anneal hot loop touches beyond the engine-owned voltage vector
// and clamp mask, so that after the state's first use an inference runs
// allocation-free (enforced by TestInferWithZeroAlloc and reported by the
// BenchmarkInferBatch allocs/op column).
type scratch struct {
	intraCur []float64
	deriv    []float64
	interSum []float64
	resBuf   []float64
	contrib  [][]float64

	// Clamp-plan scratch: biasIntra and biasPhase hold the folded constant
	// coupling currents of the current inference (one entry per row; only
	// fully-clamped rows are non-zero).
	biasIntra []float64
	biasPhase [][]float64

	// shard is the sharded-anneal arena (shard.go), allocated on the
	// state's first sharded run; nil until then, so states that never run
	// the sharded path pay nothing.
	shard *shardScratch
}

// AttachState allocates the machine's scratch arena onto an engine state.
// Called once per InferState by engine.NewInferState.
func (m *Machine) AttachState(st *InferState) {
	sc := &scratch{
		intraCur: make([]float64, m.N),
		deriv:    make([]float64, m.N),
		interSum: make([]float64, m.N),
		resBuf:   make([]float64, m.N),
		contrib:  make([][]float64, len(m.phases)),
	}
	// One backing array for all slices keeps the sample-and-hold buffers
	// contiguous in memory (the refresh loop walks them back to back).
	flat := make([]float64, len(m.phases)*m.N)
	for k := range sc.contrib {
		sc.contrib[k] = flat[k*m.N : (k+1)*m.N : (k+1)*m.N]
	}
	sc.biasIntra = make([]float64, m.N)
	sc.biasPhase = make([][]float64, len(m.phases))
	biasFlat := make([]float64, len(m.phases)*m.N)
	for k := range sc.biasPhase {
		sc.biasPhase[k] = biasFlat[k*m.N : (k+1)*m.N : (k+1)*m.N]
	}
	st.Scratch = sc
}

// Backend contract (engine.Backend): identity and bounds.

// Name prefixes error messages and names the backend in CLIs and reports.
func (m *Machine) Name() string { return "scalable" }

// Dim is the state dimension.
func (m *Machine) Dim() int { return m.N }

// Rails is the voltage rail bound observations must respect.
func (m *Machine) Rails() float64 { return m.cfg.VRail }

// BaseSeed is the configured seed; window i of a batch runs with BaseSeed+i.
func (m *Machine) BaseSeed() uint64 { return m.cfg.Seed }

// CompilePlan compiles the clamp pattern into a *clampPlan (see plan.go).
func (m *Machine) CompilePlan(clamped []bool) any { return m.compilePlan(clamped) }

// RunPlanned runs the clamp-plan hot loop on a prepared state.
func (m *Machine) RunPlanned(st *InferState, plan any) (*Result, error) {
	return m.inferPlanned(st, plan.(*clampPlan))
}

// RunNaive runs the naive reference loop on a prepared state.
func (m *Machine) RunNaive(st *InferState) (*Result, error) {
	return m.inferNaive(st)
}

// NewInferState allocates a scratch arena sized for this machine.
func (m *Machine) NewInferState() *InferState { return m.Engine().NewInferState() }

// refreshPhase re-evaluates slice k's held contribution from the fresh
// state: subtract the stale current, recompute, add the fresh one.
func (m *Machine) refreshPhase(st *InferState, sc *scratch, k int) {
	contrib := sc.contrib[k]
	interSum := sc.interSum
	for i, v := range contrib {
		interSum[i] -= v
	}
	m.phases[k].MulVec(st.X, contrib)
	for i, v := range contrib {
		interSum[i] += v
	}
}

// Infer clamps the observations, initializes free nodes near zero, and runs
// the co-annealing process to equilibrium. It is the convenience wrapper
// around InferWith: a fresh scratch state is allocated per call.
func (m *Machine) Infer(obs []Observation) (*Result, error) {
	return m.Engine().Infer(obs)
}

// InferSeeded is Infer with an explicit seed for free-node initialization
// and noise. The batch engine gives window w the seed Config.Seed + w so a
// parallel batch is bit-identical to a sequential loop over the windows.
func (m *Machine) InferSeeded(obs []Observation, seed uint64) (*Result, error) {
	return m.Engine().InferSeeded(obs, seed)
}

// InferFrom runs inference from an explicit initial state.
func (m *Machine) InferFrom(x0 []float64, obs []Observation) (*Result, error) {
	return m.Engine().InferFrom(x0, obs)
}

// InferWith runs one inference on a reusable scratch state with an explicit
// seed. After the state's first use the whole call — initialization, anneal
// loop, residual checks, result — performs zero heap allocations. The
// returned Result aliases the state's buffers (see engine.InferState).
func (m *Machine) InferWith(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	return m.Engine().InferWith(st, obs, seed)
}

// InferBatch anneals every observation set of a batch across a pool of
// workers (workers <= 0 selects runtime.GOMAXPROCS(0)) and returns one
// Result per entry, in order; window i is seeded Config.Seed + i, making
// the output bit-identical to a sequential loop regardless of worker count.
func (m *Machine) InferBatch(obs [][]Observation, workers int) ([]*Result, error) {
	return m.Engine().InferBatch(obs, workers)
}

// InferShardedSeeded is InferSeeded over the software-sharded anneal path
// (shard.go): graph partitions anneal concurrently and exchange coupling
// contributions every Config.ShardSyncNs. Falls back to the exact path
// whenever the machine cannot shard; see engine.InferShardedWith.
func (m *Machine) InferShardedSeeded(obs []Observation, seed uint64) (*Result, error) {
	return m.Engine().InferShardedSeeded(obs, seed)
}

// InferShardedWith is InferWith over the sharded anneal path.
func (m *Machine) InferShardedWith(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	return m.Engine().InferShardedWith(st, obs, seed)
}

// InferShardedBatch is InferBatch over the sharded anneal path: windows
// fan out across batch workers, each window's anneal across shards.
func (m *Machine) InferShardedBatch(obs [][]Observation, workers int) ([]*Result, error) {
	return m.Engine().InferShardedBatch(obs, workers)
}

// The Machine is the sharding-capable backend of the shared engine.
var _ engine.ShardedBackend = (*Machine)(nil)

// The Machine also delta-compiles clamp plans for streaming inference.
var _ engine.DeltaBackend = (*Machine)(nil)

// InferWithNaive is InferWith running the naive reference loop: no clamp
// plan, every coupling matrix re-evaluated in full each step. The
// plan-naive-identity invariant asserts InferWith and InferWithNaive return
// bit-identical Results for every seed; benchmarks use this entry as the
// pre-folding baseline.
func (m *Machine) InferWithNaive(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	return m.Engine().InferWithNaive(st, obs, seed)
}

// InferSeededNaive is InferSeeded running the naive reference loop.
func (m *Machine) InferSeededNaive(obs []Observation, seed uint64) (*Result, error) {
	return m.Engine().InferSeededNaive(obs, seed)
}

// EnsurePlan validates the observation set (the full range / rail /
// duplicate checks every inference entry point runs) and compiles (or
// re-warms) the clamp plan for its index pattern, so that a subsequent
// batch over windows sharing the pattern starts with a cache hit on every
// worker. Evaluate and EvaluateParallel call this once per run instead of
// compiling inside the first window's inference.
func (m *Machine) EnsurePlan(obs []Observation) error {
	return m.Engine().EnsurePlan(obs)
}

// PlanCacheStats reports the cumulative clamp-plan cache hit and miss
// counts. A miss compiles a plan; the steady state of a batch whose windows
// share one observation pattern is all hits.
func (m *Machine) PlanCacheStats() (hits, misses uint64) {
	return m.Engine().PlanCacheStats()
}

// inferNaive is the reference co-annealing loop: every coupling matrix is
// re-evaluated in full every step, with no clamp-aware folding. It is kept
// callable (InferWithNaive, InferSeededNaive) as the ground truth the
// plan-path bit-identity invariant verifies against, and as the baseline
// BenchmarkInferNaive measures.
func (m *Machine) inferNaive(st *InferState) (*Result, error) {
	sc := st.Scratch.(*scratch)
	x := st.X
	clamped := st.Clamped
	steps := int(m.cfg.MaxTimeNs / m.cfg.Dt)
	if steps < 1 {
		return nil, errNoSteps
	}

	intraCur := sc.intraCur
	deriv := sc.deriv
	// contrib[k] is the coupling current of slice k ("mapping" k). The
	// live mapping is a real analog connection and refreshes from the
	// fresh state every step; an inactive mapping's CU sample-and-hold
	// keeps the current it carried when last live. Mappings that have
	// never been live contribute nothing yet — cross-mapping information
	// only propagates as the Switch Controller rotates through them, one
	// synchronization interval at a time.
	interSum := sc.interSum
	for i := range interSum {
		interSum[i] = 0
	}
	for k := range sc.contrib {
		c := sc.contrib[k]
		for i := range c {
			c[i] = 0
		}
	}
	m.phases[0].MulVec(x, sc.contrib[0])
	for i, v := range sc.contrib[0] {
		interSum[i] += v
	}
	if st.WarmStart {
		// Streaming warm tick: x is the previous tick's equilibrium, so
		// every held slice is seeded from it up front — exactly the
		// sample-and-hold current a settled past state would be carrying —
		// instead of contributing nothing until the rotation first reaches
		// it. Without this a warm tick pays a full slice cycle before the
		// dynamics even see all couplings, no matter how close its init is.
		for k := 1; k < len(m.phases); k++ {
			m.refreshPhase(st, sc, k)
		}
	}

	noisy := m.cfg.NodeNoise > 0 || m.cfg.CouplerNoise > 0
	var couplerScale float64
	if noisy {
		couplerScale = m.typicalCoupling()
	}
	r := &st.RNG

	phase := 0
	nextSwitch := m.cfg.SwitchIntervalNs
	annealT := 0.0
	switches := 0
	settled := false
	lastResidual := math.NaN()
	taken := 0
	// Steps per full slice cycle, for the temporal-mode convergence check.
	checkEvery := int(m.cfg.SwitchIntervalNs*float64(len(m.phases))/m.cfg.Dt) + 1
	if checkEvery < 32 {
		checkEvery = 32
	}
	nextFine := 0 // earliest step for the next warm fine-grained check

	for s := 0; s < steps; s++ {
		m.intra.MulVec(x, intraCur)
		m.refreshPhase(st, sc, phase)
		maxD := 0.0
		for i := 0; i < m.N; i++ {
			if clamped[i] {
				deriv[i] = 0
				continue
			}
			cur := intraCur[i] + interSum[i]
			if noisy && m.cfg.CouplerNoise > 0 {
				cur += r.NormScaled(0, m.cfg.CouplerNoise*couplerScale)
			}
			d := cur + m.params.H[i]*x[i]
			if noisy && m.cfg.NodeNoise > 0 {
				d += r.NormScaled(0, m.cfg.NodeNoise)
			}
			if x[i] >= m.cfg.VRail && d > 0 {
				d = 0
			} else if x[i] <= -m.cfg.VRail && d < 0 {
				d = 0
			}
			deriv[i] = d
			if a := math.Abs(d); a > maxD {
				maxD = a
			}
		}
		for i := 0; i < m.N; i++ {
			x[i] += m.cfg.Dt * deriv[i]
		}
		mat.Clamp(x, -m.cfg.VRail, m.cfg.VRail)
		annealT += m.cfg.Dt
		taken = s + 1
		if st.Observer != nil {
			st.Observer(StepInfo{
				Step:     s,
				TimeNs:   annealT,
				EnergyFn: st.EnergyFn,
				MaxDeriv: maxD,
				Phase:    phase,
				X:        x,
			})
		}

		// Convergence: a single-slice mapping settles when its own residual
		// vanishes; a multiplexed mapping carries switching ripple, so the
		// true (full-coupling) residual is checked once per slice cycle.
		// Each full-residual evaluation is captured as lastResidual so the
		// Result can report the equilibrium residual at convergence.
		if len(m.phases) == 1 {
			if maxD < m.cfg.SettleTol {
				lastResidual = m.fullResidual(x, clamped, sc.resBuf)
				if lastResidual < m.cfg.SettleTol*settleResidualFactor {
					settled = true
					break
				}
			}
		} else {
			// Warm ticks start near the fixed point, so they additionally
			// get the single-slice criterion: a vanished live-slice
			// derivative triggers a full-residual confirmation mid-cycle.
			// A failed confirmation (stale-held pseudo-equilibrium) backs
			// off warmFineBackoff steps so it cannot buy an O(nnz) residual
			// evaluation every step. Cold runs keep the once-per-cycle
			// check only, bit-for-bit as before.
			if st.WarmStart && s >= nextFine && maxD < m.cfg.SettleTol {
				lastResidual = m.fullResidual(x, clamped, sc.resBuf)
				if lastResidual < m.cfg.SettleTol*settleResidualFactor {
					settled = true
					break
				}
				nextFine = s + warmFineBackoff
			}
			if s%checkEvery == checkEvery-1 {
				lastResidual = m.fullResidual(x, clamped, sc.resBuf)
				if lastResidual < m.cfg.SettleTol*settleResidualFactor {
					settled = true
					break
				}
			}
		}
		if len(m.phases) > 1 && annealT >= nextSwitch {
			phase = (phase + 1) % len(m.phases)
			switches++
			nextSwitch += m.cfg.SwitchIntervalNs
		}
	}
	st.Res = Result{
		Voltage:   x,
		AnnealNs:  annealT,
		LatencyNs: annealT + float64(switches)*m.cfg.SwitchOverheadNs,
		Settled:   settled,
		Switches:  switches,
		Steps:     taken,
		Energy:    m.EnergyAt(x),
		Residual:  lastResidual,
	}
	return &st.Res, nil
}

// fullResidual evaluates max |dσ/dt| with every coupling live and fresh —
// the true equilibrium condition of the underlying dynamical system. buf is
// caller-provided scratch of length m.N: residual checks sit inside the
// anneal loop and must not allocate.
func (m *Machine) fullResidual(x []float64, clamped []bool, buf []float64) float64 {
	m.intra.MulVec(x, buf)
	for _, ph := range m.phases {
		// Accumulate directly into buf instead of via a temporary.
		for i := 0; i < ph.Rows; i++ {
			var sum float64
			for p := ph.RowPtr[i]; p < ph.RowPtr[i+1]; p++ {
				sum += ph.Val[p] * x[ph.ColIdx[p]]
			}
			buf[i] += sum
		}
	}
	maxD := 0.0
	for i := 0; i < m.N; i++ {
		if clamped[i] {
			continue
		}
		d := buf[i] + m.params.H[i]*x[i]
		if x[i] >= m.cfg.VRail && d > 0 {
			d = 0
		} else if x[i] <= -m.cfg.VRail && d < 0 {
			d = 0
		}
		if a := math.Abs(d); a > maxD {
			maxD = a
		}
	}
	return maxD
}

// ResidualAt evaluates the true equilibrium residual max |dσ/dt| at state x
// with every coupling live and fresh, skipping nodes marked in clamped (nil
// = no node clamped). It is the exported, allocating face of the in-loop
// residual check: the invariant "Settled implies residual < 10*SettleTol"
// is verifiable from outside the anneal loop with exactly the quantity the
// loop used.
func (m *Machine) ResidualAt(x []float64, clamped []bool) (float64, error) {
	if len(x) != m.N {
		return 0, fmt.Errorf("scalable: state has %d entries, want %d", len(x), m.N)
	}
	if clamped == nil {
		clamped = make([]bool, m.N)
	} else if len(clamped) != m.N {
		return 0, fmt.Errorf("scalable: clamp mask has %d entries, want %d", len(clamped), m.N)
	}
	return m.fullResidual(x, clamped, make([]float64, m.N)), nil
}

// SettleResidualTol is the residual bound a Settled result guarantees:
// whenever Result.Settled is true, ResidualAt at the settled state is below
// SettleTol * settleResidualFactor.
func (m *Machine) SettleResidualTol() float64 {
	return m.cfg.SettleTol * settleResidualFactor
}

// EnergyAt evaluates the real-valued Hamiltonian of the compiled system
// (all couplings, intra and inter) at state x.
func (m *Machine) EnergyAt(x []float64) float64 {
	var e float64
	addJ := func(s *mat.CSR) {
		for i := 0; i < s.Rows; i++ {
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				e -= 0.5 * s.Val[p] * x[i] * x[s.ColIdx[p]]
			}
		}
	}
	addJ(m.intra)
	for _, ph := range m.phases {
		addJ(ph)
	}
	for i, h := range m.params.H {
		e -= 0.5 * h * x[i] * x[i]
	}
	return e
}

// ClampedEnergyAt evaluates the conditional Hamiltonian of the free
// subsystem given the clamped nodes:
//
//	E_c(x) = - 1/2 Σ_{i,j free} J_ij x_i x_j
//	         -     Σ_{i free, j clamped} J_ij x_i x_j
//	         - 1/2 Σ_{i free} h_i x_i²
//
// This — not the raw Hamiltonian EnergyAt — is the Lyapunov function of
// clamped annealing: the dynamics dσ_i/dt = Σ_j J_ij σ_j + h_i σ_i on the
// free nodes are exactly -∇E_c whenever the free-free coupling block is
// symmetric (in particular whenever it is empty, as the closed-form trained
// systems are: couplings run from observed to predicted nodes only). The
// clamp-coupling term enters with full weight because the clamped node is a
// boundary condition, not a co-descending coordinate; EnergyAt's symmetric
// 1/2 accounting double-discounts it, which is why EnergyAt can rise
// monotonically while the system descends E_c to the regression
// equilibrium σ_i = -Σ J_ij σ_j / h_i (paper Eqs. 6-8).
func (m *Machine) ClampedEnergyAt(x []float64, clamped []bool) float64 {
	var e float64
	addJ := func(s *mat.CSR) {
		for i := 0; i < s.Rows; i++ {
			if clamped[i] {
				continue
			}
			xi := x[i]
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				w := 0.5
				if clamped[s.ColIdx[p]] {
					w = 1
				}
				e -= w * s.Val[p] * xi * x[s.ColIdx[p]]
			}
		}
	}
	addJ(m.intra)
	for _, ph := range m.phases {
		addJ(ph)
	}
	for i, h := range m.params.H {
		if !clamped[i] {
			e -= 0.5 * h * x[i] * x[i]
		}
	}
	return e
}

// typicalCoupling estimates the nominal coupling-current magnitude for
// multiplicative coupler-noise scaling: the mean |J_ij| over the couplings
// the machine actually realizes (intra plus every temporal slice).
func (m *Machine) typicalCoupling() float64 {
	var sum float64
	cnt := 0
	for _, v := range m.intra.Val {
		sum += math.Abs(v)
		cnt++
	}
	for _, ph := range m.phases {
		for _, v := range ph.Val {
			sum += math.Abs(v)
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(cnt)
}

// EffectiveJ reconstructs the total coupling matrix the compiled machine
// realizes (intra + all slices); for a lossless compilation this equals
// the trained J. Used by tests and by the DS-GL-Spatial accuracy
// accounting.
func (m *Machine) EffectiveJ() *mat.Dense {
	out := m.intra.ToDense()
	for _, ph := range m.phases {
		out.AddM(ph.ToDense())
	}
	return out
}
