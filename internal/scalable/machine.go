package scalable

import (
	"errors"
	"fmt"
	"math"

	"dsgl/internal/community"
	"dsgl/internal/mat"
	"dsgl/internal/rng"
	"dsgl/internal/train"
)

// Mode reports which co-annealing method a mapping runs.
type Mode int

const (
	// ModeSpatial is pure Spatial co-annealing: every routed coupling is
	// live simultaneously (communication demand D <= lane budget L).
	ModeSpatial Mode = iota
	// ModeTemporalSpatial time-multiplexes coupling slices (D > L).
	ModeTemporalSpatial
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeSpatial:
		return "spatial"
	case ModeTemporalSpatial:
		return "temporal+spatial"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config holds the hardware and runtime parameters of the Scalable DSPU.
type Config struct {
	// Lanes is L, the analog lanes per exporting portal. The paper uses 30.
	Lanes int
	// Dt is the integration timestep in ns. Default 0.1 (a tenth of the
	// ~1 ns node time constant).
	Dt float64
	// MaxTimeNs bounds one inference. Default 20000 ns (Fig. 11's axis).
	MaxTimeNs float64
	// SettleTol stops the run when max |dσ/dt| falls below it. Default 1e-5.
	SettleTol float64
	// VRail bounds node voltages. Default 1.
	VRail float64
	// SyncIntervalNs is the inter-mapping synchronization interval
	// (Sec. V.D / Fig. 12): how long each temporal slice ("mapping")
	// stays live before the Switch Controller rotates to the next. Within
	// the live mapping coupling is continuous analog current and needs no
	// synchronization; the inactive mappings' held contributions refresh
	// only when their slice next becomes live — i.e. cross-mapping
	// information exchanges once per synchronization interval. Default
	// 200 ns, the interval the DS-GL hardware supports. Values <= Dt
	// rotate every integration step.
	SyncIntervalNs float64
	// SwitchIntervalNs overrides the slice rotation period when non-zero;
	// by default it equals SyncIntervalNs (rotation IS the
	// synchronization mechanism).
	SwitchIntervalNs float64
	// SwitchOverheadNs is the dead time per mapping switch while the
	// In-CU Weight Buffers redrive the crossbar DACs and the schedulers
	// reload routing state (default 20 ns); it counts toward latency but
	// performs no annealing.
	SwitchOverheadNs float64
	// TemporalDisabled selects the DS-GL-Spatial variant: couplings beyond
	// one round are dropped instead of time-multiplexed.
	TemporalDisabled bool
	// NodeNoise / CouplerNoise are relative Gaussian disturbance sigmas
	// (Fig. 13). Zero disables noise.
	NodeNoise, CouplerNoise float64
	// Seed drives free-node initialization and noise.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Lanes == 0 {
		c.Lanes = 30
	}
	if c.Dt == 0 {
		c.Dt = 0.1
	}
	if c.MaxTimeNs == 0 {
		c.MaxTimeNs = 20000
	}
	if c.SettleTol == 0 {
		c.SettleTol = 1e-5
	}
	if c.VRail == 0 {
		c.VRail = 1
	}
	if c.SyncIntervalNs == 0 {
		c.SyncIntervalNs = 200
	}
	if c.SwitchIntervalNs == 0 {
		c.SwitchIntervalNs = c.SyncIntervalNs
	}
	if c.SwitchOverheadNs == 0 {
		c.SwitchOverheadNs = 20
	}
}

// Stats describes how a mapping compiled onto the hardware.
type Stats struct {
	Mode              Mode
	Rounds            int // temporal slices (1 = pure spatial)
	Lanes             int // L
	MaxPortalDemand   int // D: max distinct nodes any portal must export
	IntraCouplings    int
	InterCouplings    int
	WormholeCouplings int
	DroppedCouplings  int // only non-zero for TemporalDisabled overflows
}

// Machine is a compiled Scalable DSPU mapping ready for inference.
type Machine struct {
	N      int
	cfg    Config
	params *train.Params
	assign *community.Assignment
	intra  *mat.CSR   // intra-PE couplings (always live, always fresh)
	phases []*mat.CSR // inter-PE couplings per temporal slice
	stats  Stats
}

// Stats returns the compilation statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Config returns the defaults-filled configuration.
func (m *Machine) Config() Config { return m.cfg }

// Observation clamps node Index to Value during inference.
type Observation struct {
	Index int
	Value float64
}

// Result is the outcome of one Scalable DSPU inference.
type Result struct {
	Voltage   []float64
	LatencyNs float64 // annealing time + slice-switch overhead
	AnnealNs  float64 // annealing time only
	Settled   bool
	Switches  int // mapping switches (= synchronization events) performed
	Energy    float64
}

// Infer clamps the observations, initializes free nodes near zero, and runs
// the co-annealing process to equilibrium.
func (m *Machine) Infer(obs []Observation) (*Result, error) {
	r := rng.New(m.cfg.Seed)
	x := make([]float64, m.N)
	r.FillUniform(x, -0.1, 0.1)
	return m.inferFrom(x, obs, r)
}

// InferFrom runs inference from an explicit initial state.
func (m *Machine) InferFrom(x0 []float64, obs []Observation) (*Result, error) {
	if len(x0) != m.N {
		return nil, fmt.Errorf("scalable: initial state has %d entries, want %d", len(x0), m.N)
	}
	return m.inferFrom(mat.CopyVec(x0), obs, rng.New(m.cfg.Seed))
}

func (m *Machine) inferFrom(x []float64, obs []Observation, r *rng.RNG) (*Result, error) {
	clamped := make([]bool, m.N)
	for _, o := range obs {
		if o.Index < 0 || o.Index >= m.N {
			return nil, fmt.Errorf("scalable: observation index %d out of range [0,%d)", o.Index, m.N)
		}
		if math.Abs(o.Value) > m.cfg.VRail {
			return nil, fmt.Errorf("scalable: observation value %g exceeds rail %g", o.Value, m.cfg.VRail)
		}
		x[o.Index] = o.Value
		clamped[o.Index] = true
	}
	steps := int(m.cfg.MaxTimeNs / m.cfg.Dt)
	if steps < 1 {
		return nil, errors.New("scalable: MaxTimeNs shorter than one timestep")
	}

	intraCur := make([]float64, m.N)
	deriv := make([]float64, m.N)
	// contrib[k] is the coupling current of slice k ("mapping" k). The
	// live mapping is a real analog connection and refreshes from the
	// fresh state every step; an inactive mapping's CU sample-and-hold
	// keeps the current it carried when last live. Mappings that have
	// never been live contribute nothing yet — cross-mapping information
	// only propagates as the Switch Controller rotates through them, one
	// synchronization interval at a time.
	contrib := make([][]float64, len(m.phases))
	interSum := make([]float64, m.N)
	for k := range m.phases {
		contrib[k] = make([]float64, m.N)
	}
	m.phases[0].MulVec(x, contrib[0])
	for i, v := range contrib[0] {
		interSum[i] += v
	}
	refresh := func(k int) {
		for i, v := range contrib[k] {
			interSum[i] -= v
		}
		m.phases[k].MulVec(x, contrib[k])
		for i, v := range contrib[k] {
			interSum[i] += v
		}
	}

	noisy := m.cfg.NodeNoise > 0 || m.cfg.CouplerNoise > 0
	var couplerScale float64
	if noisy {
		couplerScale = m.typicalCoupling()
	}

	phase := 0
	nextSwitch := m.cfg.SwitchIntervalNs
	annealT := 0.0
	switches := 0
	settled := false
	// Steps per full slice cycle, for the temporal-mode convergence check.
	checkEvery := int(m.cfg.SwitchIntervalNs*float64(len(m.phases))/m.cfg.Dt) + 1
	if checkEvery < 32 {
		checkEvery = 32
	}

	for s := 0; s < steps; s++ {
		m.intra.MulVec(x, intraCur)
		refresh(phase)
		maxD := 0.0
		for i := 0; i < m.N; i++ {
			if clamped[i] {
				deriv[i] = 0
				continue
			}
			cur := intraCur[i] + interSum[i]
			if noisy && m.cfg.CouplerNoise > 0 {
				cur += r.NormScaled(0, m.cfg.CouplerNoise*couplerScale)
			}
			d := cur + m.params.H[i]*x[i]
			if noisy && m.cfg.NodeNoise > 0 {
				d += r.NormScaled(0, m.cfg.NodeNoise)
			}
			if x[i] >= m.cfg.VRail && d > 0 {
				d = 0
			} else if x[i] <= -m.cfg.VRail && d < 0 {
				d = 0
			}
			deriv[i] = d
			if a := math.Abs(d); a > maxD {
				maxD = a
			}
		}
		for i := 0; i < m.N; i++ {
			x[i] += m.cfg.Dt * deriv[i]
		}
		mat.Clamp(x, -m.cfg.VRail, m.cfg.VRail)
		annealT += m.cfg.Dt

		// Convergence: a single-slice mapping settles when its own residual
		// vanishes; a multiplexed mapping carries switching ripple, so the
		// true (full-coupling) residual is checked once per slice cycle.
		if len(m.phases) == 1 {
			if maxD < m.cfg.SettleTol && m.fullResidual(x, clamped) < m.cfg.SettleTol*10 {
				settled = true
				break
			}
		} else if s%checkEvery == checkEvery-1 {
			if m.fullResidual(x, clamped) < m.cfg.SettleTol*10 {
				settled = true
				break
			}
		}
		if len(m.phases) > 1 && annealT >= nextSwitch {
			phase = (phase + 1) % len(m.phases)
			switches++
			nextSwitch += m.cfg.SwitchIntervalNs
		}
	}
	return &Result{
		Voltage:   x,
		AnnealNs:  annealT,
		LatencyNs: annealT + float64(switches)*m.cfg.SwitchOverheadNs,
		Settled:   settled,
		Switches:  switches,
		Energy:    m.EnergyAt(x),
	}, nil
}

// fullResidual evaluates max |dσ/dt| with every coupling live and fresh —
// the true equilibrium condition of the underlying dynamical system.
func (m *Machine) fullResidual(x []float64, clamped []bool) float64 {
	buf := m.intra.MulVec(x, nil)
	for _, ph := range m.phases {
		tmp := ph.MulVec(x, nil)
		for i := range buf {
			buf[i] += tmp[i]
		}
	}
	maxD := 0.0
	for i := 0; i < m.N; i++ {
		if clamped[i] {
			continue
		}
		d := buf[i] + m.params.H[i]*x[i]
		if x[i] >= m.cfg.VRail && d > 0 {
			d = 0
		} else if x[i] <= -m.cfg.VRail && d < 0 {
			d = 0
		}
		if a := math.Abs(d); a > maxD {
			maxD = a
		}
	}
	return maxD
}

// EnergyAt evaluates the real-valued Hamiltonian of the compiled system
// (all couplings, intra and inter) at state x.
func (m *Machine) EnergyAt(x []float64) float64 {
	var e float64
	addJ := func(s *mat.CSR) {
		for i := 0; i < s.Rows; i++ {
			for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
				e -= 0.5 * s.Val[p] * x[i] * x[s.ColIdx[p]]
			}
		}
	}
	addJ(m.intra)
	for _, ph := range m.phases {
		addJ(ph)
	}
	for i, h := range m.params.H {
		e -= 0.5 * h * x[i] * x[i]
	}
	return e
}

// typicalCoupling estimates the nominal coupling-current magnitude for
// multiplicative coupler-noise scaling.
func (m *Machine) typicalCoupling() float64 {
	var sum float64
	cnt := 0
	for _, v := range m.intra.Val {
		sum += math.Abs(v)
		cnt++
	}
	for _, ph := range m.phases {
		for _, v := range ph.Val {
			sum += math.Abs(v)
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(m.N)
}

// EffectiveJ reconstructs the total coupling matrix the compiled machine
// realizes (intra + all slices); for a lossless compilation this equals
// the trained J. Used by tests and by the DS-GL-Spatial accuracy
// accounting.
func (m *Machine) EffectiveJ() *mat.Dense {
	out := m.intra.ToDense()
	for _, ph := range m.phases {
		out.AddM(ph.ToDense())
	}
	return out
}
