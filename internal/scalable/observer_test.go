package scalable

import (
	"testing"

	"dsgl/internal/community"
	"dsgl/internal/mat"
	"dsgl/internal/train"
)

// directedSystem builds a single-PE system whose couplings run only from
// the first nObs (clamped) nodes into the remaining free nodes — the same
// directed shape the closed-form DS-GL training produces.
func directedSystem(t *testing.T, n, nObs int) (*Machine, []Observation, []bool) {
	t.Helper()
	a := &community.Assignment{
		PEOf:     make([]int, n),
		NodesOf:  [][]int{make([]int, n)},
		GridW:    1,
		GridH:    1,
		Capacity: n,
	}
	for i := 0; i < n; i++ {
		a.NodesOf[0][i] = i
	}
	j := mat.NewDense(n, n)
	for f := nObs; f < n; f++ {
		for o := 0; o < nObs; o++ {
			j.Set(f, o, 0.11*float64(1+(f+o)%3))
		}
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	m, err := Build(&train.Params{J: j, H: h}, a, nil, Config{MaxTimeNs: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]Observation, nObs)
	clamped := make([]bool, n)
	for o := 0; o < nObs; o++ {
		obs[o] = Observation{Index: o, Value: 0.5 - 0.2*float64(o%3)}
		clamped[o] = true
	}
	return m, obs, clamped
}

func TestObserverReceivesEveryStep(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 200, Seed: 3})
	st := m.NewInferState()
	var infos []StepInfo
	var lastEnergy float64
	st.SetObserver(func(si StepInfo) {
		if si.X == nil || len(si.X) != m.N {
			t.Fatalf("step %d: X has %d entries, want %d", si.Step, len(si.X), m.N)
		}
		// EnergyFn is only valid during the callback; sample it here.
		lastEnergy = si.EnergyFn()
		infos = append(infos, si)
	})
	res, err := m.InferWith(st, []Observation{{Index: 0, Value: 0.4}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("observer never called")
	}
	for k, si := range infos {
		if si.Step != k {
			t.Fatalf("step sequence broken at %d: got %d", k, si.Step)
		}
	}
	last := infos[len(infos)-1]
	if last.TimeNs != res.AnnealNs {
		t.Fatalf("last observed time %g != anneal time %g", last.TimeNs, res.AnnealNs)
	}
	if got := lastEnergy; got != m.EnergyAt(res.Voltage) {
		t.Fatalf("last observed energy %g != EnergyAt(final) %g", got, m.EnergyAt(res.Voltage))
	}
	// Removing the observer stops the callbacks.
	st.SetObserver(nil)
	n := len(infos)
	if _, err := m.InferWith(st, []Observation{{Index: 0, Value: 0.4}}, 1); err != nil {
		t.Fatal(err)
	}
	if len(infos) != n {
		t.Fatal("observer called after SetObserver(nil)")
	}
}

// TestObserverClampedEnergyDescends checks the Lyapunov contract on the
// quantity that actually descends under clamped annealing of a directed
// system: the conditional Hamiltonian ClampedEnergyAt. The raw Hamiltonian
// EnergyAt half-weights the clamp couplings and carries no such guarantee.
func TestObserverClampedEnergyDescends(t *testing.T) {
	m, obs, clamped := directedSystem(t, 10, 4)
	st := m.NewInferState()
	var trace []float64
	st.SetObserver(func(si StepInfo) {
		trace = append(trace, m.ClampedEnergyAt(si.X, clamped))
	})
	res, err := m.InferWith(st, obs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Settled {
		t.Fatal("directed system should settle well within 500 ns")
	}
	if len(trace) < 10 {
		t.Fatalf("only %d trace points", len(trace))
	}
	for k := 1; k < len(trace); k++ {
		if trace[k] > trace[k-1]+1e-12 {
			t.Fatalf("conditional Hamiltonian rose at step %d: %.12g -> %.12g", k, trace[k-1], trace[k])
		}
	}
}

// TestClampedEnergyGradientConsistency checks that -dE_c/dt along the
// trajectory matches the squared derivative norm (the defining property of
// a gradient flow), i.e. ClampedEnergyAt is the right Lyapunov functional
// for the simulated dynamics.
func TestClampedEnergyGradientConsistency(t *testing.T) {
	m, obs, clamped := directedSystem(t, 10, 4)
	st := m.NewInferState()
	type sample struct{ e, maxD float64 }
	var ss []sample
	st.SetObserver(func(si StepInfo) {
		ss = append(ss, sample{m.ClampedEnergyAt(si.X, clamped), si.MaxDeriv})
	})
	if _, err := m.InferWith(st, obs, 7); err != nil {
		t.Fatal(err)
	}
	// While the derivative is large, energy must move; once max|dσ/dt| is
	// tiny, the energy must be flat to first order.
	for k := 1; k < len(ss); k++ {
		drop := ss[k-1].e - ss[k].e
		if ss[k].maxD < 1e-8 && drop > 1e-8 {
			t.Fatalf("step %d: derivative ~0 but energy still falling by %g", k, drop)
		}
	}
}

func TestResidualAtSettledState(t *testing.T) {
	m, obs, clamped := directedSystem(t, 10, 4)
	res, err := m.InferSeeded(obs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Settled {
		t.Fatal("expected settle")
	}
	r, err := m.ResidualAt(res.Voltage, clamped)
	if err != nil {
		t.Fatal(err)
	}
	if r >= m.SettleResidualTol() {
		t.Fatalf("settled residual %g >= bound %g", r, m.SettleResidualTol())
	}
	// At the regression equilibrium the residual definition itself must
	// hold: σ_i ≈ -Σ J_ij σ_j / h_i for every free node.
	// (ResidualAt is max |Σ J_ij σ_j + h_i σ_i| over free nodes.)
	if _, err := m.ResidualAt(res.Voltage[:3], clamped); err == nil {
		t.Fatal("expected length error for short state")
	}
	if _, err := m.ResidualAt(res.Voltage, clamped[:3]); err == nil {
		t.Fatal("expected length error for short clamp mask")
	}
	if _, err := m.ResidualAt(res.Voltage, nil); err != nil {
		t.Fatalf("nil clamp mask must mean no clamps: %v", err)
	}
}

// TestObserverNilKeepsZeroAlloc re-states the zero-allocation contract in
// the presence of the observer field: a nil observer must not cost heap.
func TestObserverNilKeepsZeroAlloc(t *testing.T) {
	m := batchMachine(t, Config{Lanes: 30, MaxTimeNs: 500, Seed: 3})
	st := m.NewInferState()
	obs := []Observation{{Index: 0, Value: 0.4}, {Index: 5, Value: -0.3}}
	if _, err := m.InferWith(st, obs, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := m.InferWith(st, obs, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-observer InferWith allocated %v per op, want 0", allocs)
	}
}
