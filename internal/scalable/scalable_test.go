package scalable

import (
	"math"
	"strings"
	"testing"

	"dsgl/internal/community"
	"dsgl/internal/dspu"
	"dsgl/internal/mat"
	"dsgl/internal/pattern"
	"dsgl/internal/rng"
	"dsgl/internal/train"
)

// testSystem builds a random trained system on a gw x gh grid with cap
// nodes per PE, confined to the given pattern mask.
func testSystem(t *testing.T, gw, gh, cap int, kind pattern.Kind, wormholes int, seed uint64) (*train.Params, *community.Assignment, *mat.Bool) {
	t.Helper()
	n := gw * gh * cap
	a := &community.Assignment{
		PEOf:     make([]int, n),
		NodesOf:  make([][]int, gw*gh),
		GridW:    gw,
		GridH:    gh,
		Capacity: cap,
	}
	for i := 0; i < n; i++ {
		pe := i / cap
		a.PEOf[i] = pe
		a.NodesOf[pe] = append(a.NodesOf[pe], i)
	}
	r := rng.New(seed)
	j := mat.NewDense(n, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y && r.Float64() < 0.5 {
				j.Set(x, y, r.NormScaled(0, 0.12))
			}
		}
	}
	mask, _ := pattern.BuildMask(a, j, pattern.Config{Kind: kind, Wormholes: wormholes})
	j.ApplyMask(mask)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	return &train.Params{J: j, H: h}, a, mask
}

func TestBuildSpatialModeWhenDemandFits(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 4, pattern.DMesh, 2, 1)
	m, err := Build(p, a, mask, Config{Lanes: 30})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Mode != ModeSpatial {
		t.Fatalf("mode %v, want spatial (D=%d, L=%d)", st.Mode, st.MaxPortalDemand, st.Lanes)
	}
	if st.Rounds != 1 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
	if st.MaxPortalDemand > st.Lanes {
		t.Fatalf("demand %d exceeds lanes %d but mode is spatial", st.MaxPortalDemand, st.Lanes)
	}
}

func TestBuildTemporalModeWhenDemandExceedsLanes(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 8, pattern.DMesh, 2, 2)
	m, err := Build(p, a, mask, Config{Lanes: 2}) // tiny lane budget
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Mode != ModeTemporalSpatial {
		t.Fatalf("mode %v, want temporal+spatial", st.Mode)
	}
	if st.Rounds <= 1 {
		t.Fatalf("rounds = %d, want > 1", st.Rounds)
	}
	if st.MaxPortalDemand <= 2 {
		t.Fatalf("demand %d should exceed lanes", st.MaxPortalDemand)
	}
}

func TestEffectiveJMatchesTrainedJ(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 6, pattern.DMesh, 3, 3)
	m, err := Build(p, a, mask, Config{Lanes: 4}) // forces multiple rounds
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Rounds <= 1 {
		t.Skip("need temporal mode for this check to be interesting")
	}
	if !m.EffectiveJ().Equal(p.J, 1e-12) {
		t.Fatal("temporal slicing must preserve every coupling")
	}
}

func TestSpatialDropsOverflow(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 8, pattern.DMesh, 2, 4)
	full, err := Build(p, a, mask, Config{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := Build(p, a, mask, Config{Lanes: 2, TemporalDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Stats().Mode != ModeSpatial || dropped.Stats().Rounds != 1 {
		t.Fatalf("spatial variant stats: %+v", dropped.Stats())
	}
	if dropped.Stats().DroppedCouplings == 0 {
		t.Fatal("expected dropped couplings")
	}
	effFull := full.EffectiveJ().NNZ(0)
	effDropped := dropped.EffectiveJ().NNZ(0)
	if effDropped >= effFull {
		t.Fatalf("spatial variant should realize fewer couplings: %d vs %d", effDropped, effFull)
	}
}

func TestInferMatchesMonolithicDSPU(t *testing.T) {
	// A spatial-mode machine with frequent sync must match a single dense
	// DSPU on the same parameters.
	p, a, mask := testSystem(t, 2, 2, 4, pattern.DMesh, 4, 5)
	m, err := Build(p, a, mask, Config{Lanes: 30, SyncIntervalNs: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{{Index: 0, Value: 0.4}, {Index: 5, Value: -0.3}}
	res, err := m.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}

	d, err := dspu.New(p.J, p.H, dspu.Config{Seed: 9, MaxTimeNs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := d.Infer([]dspu.Observation{{Index: 0, Value: 0.4}, {Index: 5, Value: -0.3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Voltage {
		if math.Abs(res.Voltage[i]-dres.Voltage[i]) > 1e-3 {
			t.Fatalf("node %d: scalable %g vs dense %g", i, res.Voltage[i], dres.Voltage[i])
		}
	}
}

func TestTemporalInferenceApproachesTrueEquilibrium(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 6, pattern.DMesh, 3, 7)
	m, err := Build(p, a, mask, Config{Lanes: 3, SyncIntervalNs: 10, MaxTimeNs: 40000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Rounds <= 1 {
		t.Skip("system did not need temporal mode")
	}
	obs := []Observation{{Index: 0, Value: 0.5}, {Index: 7, Value: -0.2}}
	res, err := m.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the dense equilibrium on the full J.
	d, err := dspu.New(p.J, p.H, dspu.Config{Seed: 4, MaxTimeNs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := d.Infer([]dspu.Observation{{Index: 0, Value: 0.5}, {Index: 7, Value: -0.2}})
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range res.Voltage {
		if diff := math.Abs(res.Voltage[i] - dres.Voltage[i]); diff > worst {
			worst = diff
		}
	}
	if worst > 0.05 {
		t.Fatalf("temporal co-annealing diverged from equilibrium by %g", worst)
	}
	if res.Switches == 0 {
		t.Fatal("temporal mode must perform slice switches")
	}
}

func TestTemporalSlowerThanSpatial(t *testing.T) {
	// The accuracy/latency tradeoff of Fig. 11: temporal mode takes longer
	// than the spatial variant of the same system.
	p, a, mask := testSystem(t, 2, 2, 6, pattern.DMesh, 3, 11)
	obs := []Observation{{Index: 0, Value: 0.5}}
	temporal, err := Build(p, a, mask, Config{Lanes: 3, MaxTimeNs: 40000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	spatial, err := Build(p, a, mask, Config{Lanes: 3, TemporalDisabled: true, MaxTimeNs: 40000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if temporal.Stats().Rounds <= 1 {
		t.Skip("system did not need temporal mode")
	}
	rt, err := temporal.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := spatial.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Settled {
		t.Fatal("spatial run did not settle")
	}
	if rt.LatencyNs <= rs.LatencyNs {
		t.Fatalf("temporal latency %g should exceed spatial %g", rt.LatencyNs, rs.LatencyNs)
	}
}

func TestSyncIntervalDegradesFidelity(t *testing.T) {
	// Fig. 12: larger synchronization intervals leave inter-PE couplings
	// annealing against staler values, moving the result away from the
	// tightly-synchronized one.
	p, a, mask := testSystem(t, 2, 2, 6, pattern.DMesh, 3, 13)
	obs := []Observation{{Index: 0, Value: 0.5}, {Index: 9, Value: -0.4}}
	run := func(sync float64) []float64 {
		// Lanes: 3 forces temporal+spatial mode — synchronization only
		// matters when held slices exist.
		m, err := Build(p, a, mask, Config{Lanes: 3, SyncIntervalNs: sync, Seed: 3, MaxTimeNs: 10000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Infer(obs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Voltage
	}
	tight := run(0.05)
	mid := run(100)
	loose := run(3000)
	dev := func(v []float64) float64 {
		var worst float64
		for i := range v {
			if d := math.Abs(v[i] - tight[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	if dev(mid) > 0.02 {
		t.Fatalf("200ns-scale sync deviates too much: %g", dev(mid))
	}
	if dev(loose) < dev(mid) {
		t.Fatalf("looser sync should deviate more: %g vs %g", dev(loose), dev(mid))
	}
}

func TestNoiseToleration(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 4, pattern.DMesh, 2, 17)
	obs := []Observation{{Index: 0, Value: 0.5}}
	clean, err := Build(p, a, mask, Config{Lanes: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Build(p, a, mask, Config{Lanes: 30, Seed: 5, NodeNoise: 0.05, CouplerNoise: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := clean.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := noisy.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range rc.Voltage {
		if d := math.Abs(rc.Voltage[i] - rn.Voltage[i]); d > worst {
			worst = d
		}
	}
	if worst == 0 {
		t.Fatal("noise had no effect")
	}
	if worst > 0.15 {
		t.Fatalf("5%% noise shifted voltages by %g — robustness broken", worst)
	}
}

func TestBuildRejectsMaskViolations(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 4, pattern.Chain, 0, 19)
	// Inject a coupling the mask forbids.
	for x := 0; x < p.Dim(); x++ {
		for y := 0; y < p.Dim(); y++ {
			if x != y && !mask.At(x, y) {
				p.J.Set(x, y, 0.5)
				if _, err := Build(p, a, mask, Config{}); err == nil {
					t.Fatal("expected mask-violation error")
				}
				return
			}
		}
	}
	t.Skip("mask allows everything on this tiny grid")
}

func TestBuildValidation(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 4, pattern.DMesh, 2, 23)
	short := &train.Params{J: mat.NewDense(4, 4), H: []float64{-1, -1, -1, -1}}
	if _, err := Build(short, a, mask, Config{}); err == nil {
		t.Fatal("expected error for size mismatch")
	}
	badMask := mat.NewBool(3, 3)
	if _, err := Build(p, a, badMask, Config{}); err == nil {
		t.Fatal("expected error for mask shape")
	}
	bad := p.Clone()
	bad.H[0] = 1
	if _, err := Build(bad, a, mask, Config{}); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestInferValidation(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 4, pattern.DMesh, 2, 29)
	m, err := Build(p, a, mask, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Infer([]Observation{{Index: 99, Value: 0}}); err == nil {
		t.Fatal("expected error for bad index")
	}
	if _, err := m.Infer([]Observation{{Index: 0, Value: 2}}); err == nil {
		t.Fatal("expected error for out-of-rail value")
	}
	if _, err := m.InferFrom(make([]float64, 3), nil); err == nil {
		t.Fatal("expected error for bad state length")
	}
}

func TestInferDeterministic(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 4, pattern.DMesh, 2, 31)
	run := func() float64 {
		m, err := Build(p, a, mask, Config{Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Infer([]Observation{{Index: 0, Value: 0.3}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Voltage[p.Dim()-1]
	}
	if run() != run() {
		t.Fatal("same seed must reproduce results")
	}
}

func TestWormholeRoutingCounted(t *testing.T) {
	// Force a remote coupling (4x1 chain grid, coupling PE0 <-> PE3).
	gw, gh, cap := 4, 1, 2
	n := gw * gh * cap
	a := &community.Assignment{
		PEOf: make([]int, n), NodesOf: make([][]int, gw*gh),
		GridW: gw, GridH: gh, Capacity: cap,
	}
	for i := 0; i < n; i++ {
		pe := i / cap
		a.PEOf[i] = pe
		a.NodesOf[pe] = append(a.NodesOf[pe], i)
	}
	j := mat.NewDense(n, n)
	j.Set(0, n-1, 0.3)
	j.Set(n-1, 0, 0.3)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	mask, _ := pattern.BuildMask(a, j, pattern.Config{Kind: Chain(), Wormholes: 1})
	m, err := Build(&train.Params{J: j, H: h}, a, mask, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().WormholeCouplings == 0 {
		t.Fatal("remote coupling should be routed via wormhole")
	}
	// The wormhole must actually carry current: clamping node 0 must move
	// node n-1.
	res, err := m.Infer([]Observation{{Index: 0, Value: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Voltage[n-1]-0.15) > 1e-2 {
		t.Fatalf("wormhole fixed point %g, want 0.15", res.Voltage[n-1])
	}
}

// Chain re-exports pattern.Chain so the test above reads naturally.
func Chain() pattern.Kind { return pattern.Chain }

func TestModeString(t *testing.T) {
	if ModeSpatial.String() != "spatial" || ModeTemporalSpatial.String() != "temporal+spatial" {
		t.Fatal("mode names changed")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must stringify")
	}
}

func TestEnergyDecreasesOverall(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 4, pattern.DMesh, 2, 37)
	// Symmetrize J so the Lyapunov argument holds exactly.
	p.J.Symmetrize()
	p.J.ZeroDiagonal()
	m, err := Build(p, a, mask, Config{Seed: 6, SyncIntervalNs: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, p.Dim())
	rng.New(6).FillUniform(x0, -0.5, 0.5)
	e0 := m.EnergyAt(x0)
	res, err := m.InferFrom(x0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > e0 {
		t.Fatalf("energy rose: %g -> %g", e0, res.Energy)
	}
}

func TestDescribeReportsMapping(t *testing.T) {
	p, a, mask := testSystem(t, 2, 2, 6, pattern.DMesh, 3, 41)
	m, err := Build(p, a, mask, Config{Lanes: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.Describe(&sb)
	out := sb.String()
	for _, want := range []string{"Scalable DSPU mapping", "PE", "intra-NNZ", "lane budget", "PE pair"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe output missing %q:\n%s", want, out)
		}
	}
	if m.Stats().Rounds > 1 && !strings.Contains(out, "slice") {
		t.Fatal("temporal mapping must list slices")
	}
}
