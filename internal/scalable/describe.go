package scalable

import (
	"fmt"
	"io"
	"sort"
)

// Describe writes a human-readable report of the compiled mapping: the PE
// grid, per-PE occupancy and local coupling counts, per-portal export
// demand against the lane budget, temporal slices, and wormhole routes.
// It is the software equivalent of dumping the PE-CU Map Buffers.
func (m *Machine) Describe(w io.Writer) {
	st := m.stats
	fmt.Fprintf(w, "Scalable DSPU mapping: %d nodes on %dx%d PEs (K=%d, L=%d)\n",
		m.N, m.assign.GridW, m.assign.GridH, m.assign.Capacity, m.cfg.Lanes)
	fmt.Fprintf(w, "mode %s, %d slice(s); couplings: %d intra, %d inter (%d via wormholes, %d dropped)\n",
		st.Mode, st.Rounds, st.IntraCouplings, st.InterCouplings, st.WormholeCouplings, st.DroppedCouplings)

	// Per-PE occupancy and intra-coupling counts.
	intraPerPE := make([]int, m.assign.NumPEs())
	for i := 0; i < m.intra.Rows; i++ {
		pe := m.assign.PEOf[i]
		intraPerPE[pe] += m.intra.RowNNZ(i)
	}
	fmt.Fprintf(w, "\n%-6s %8s %10s\n", "PE", "nodes", "intra-NNZ")
	for pe := 0; pe < m.assign.NumPEs(); pe++ {
		fmt.Fprintf(w, "(%d,%d) %8d %10d\n",
			pe%m.assign.GridW, pe/m.assign.GridW, len(m.assign.NodesOf[pe]), intraPerPE[pe])
	}

	fmt.Fprintf(w, "\nmax portal demand D = %d vs lane budget L = %d -> %s co-annealing\n",
		st.MaxPortalDemand, st.Lanes, st.Mode)

	// Per-slice coupling counts.
	if len(m.phases) > 1 {
		fmt.Fprintf(w, "\n%-8s %10s\n", "slice", "couplings")
		for k, ph := range m.phases {
			fmt.Fprintf(w, "%-8d %10d\n", k, ph.NNZ())
		}
	}

	// Inter-PE traffic matrix (directed entry counts between PE pairs).
	traffic := make(map[[2]int]int)
	for _, ph := range m.phases {
		for i := 0; i < ph.Rows; i++ {
			for p := ph.RowPtr[i]; p < ph.RowPtr[i+1]; p++ {
				a, b := m.assign.PEOf[i], m.assign.PEOf[ph.ColIdx[p]]
				if a > b {
					a, b = b, a
				}
				traffic[[2]int{a, b}]++
			}
		}
	}
	if len(traffic) > 0 {
		keys := make([][2]int, 0, len(traffic))
		for k := range traffic {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		fmt.Fprintf(w, "\n%-12s %10s\n", "PE pair", "couplings")
		for _, k := range keys {
			fmt.Fprintf(w, "%2d <-> %-5d %10d\n", k[0], k[1], traffic[k])
		}
	}
}
