// The software-sharded anneal: intra-inference parallelism by graph
// partition, the software analog of the paper's multi-mapping hardware.
//
// The machine partitions its nodes into up to Config.ShardWorkers groups
// of Louvain super-communities (community.ShardNodes — PEs grouped in grid
// order, so split communities stay together). Each shard anneals on its
// own goroutine over a private full-length view of the state: its own
// entries are live, every remote entry is a sample-and-hold copy frozen at
// the last synchronization — exactly the staleness model refreshPhase
// implements for temporal slices, applied across shards instead of across
// time. Every Config.ShardSyncNs of simulated time the shards rendezvous
// on a barrier, publish their entries into the shared state vector, and
// refresh their views from it (one cross-shard information exchange per
// sync interval, mirroring Sec. IV.D's inter-mapping synchronization).
//
// Dynamics inside a shard run over the COMBINED coupling matrix — intra
// plus every temporal slice merged row-wise — with all couplings live:
// cross-shard staleness replaces cross-slice staleness as the relaxation
// the convergence argument must absorb. The fixed point is untouched (the
// equilibrium of dσ/dt = Jσ + hσ depends only on J and h, never on which
// contributions are held between exchanges), which is the seventh verify
// invariant: a settled sharded anneal and a settled exact anneal agree
// within the residual-implied tolerance. Bit-identity with the exact path
// is NOT promised for sync intervals above one step; at one step or below
// the exchange degenerates to the sequential semantics, so the machine
// routes those configurations (and noisy ones — a single RNG stream
// cannot be split across concurrent shards deterministically) to the
// exact path instead.
//
// The settle decision is taken jointly at each sync round: every shard
// evaluates the all-fresh residual over its own free rows mirroring
// fullResidual's accumulation order exactly, the barrier publishes the
// per-shard maxima, and all shards reduce the same values — so the
// decision is deterministic, every shard leaves the loop on the same
// round, and a Settled result satisfies ResidualAt < SettleResidualTol
// bit-for-bit (invariant 2 holds on the sharded path unchanged).
package scalable

import (
	"math"
	"sync"

	"dsgl/internal/community"
	"dsgl/internal/mat"
)

// shardPart is one partition of a compiled sharded plan: the free nodes it
// integrates. Partitions whose nodes are all clamped are dropped at
// compile time (their entries are boundary conditions every other shard
// reads from the shared state).
type shardPart struct {
	freeIdx []int
}

// shardPlan is a compiled sharded inference plan for one clamp pattern:
// the static/dyn split of the combined coupling matrix (same folding
// discipline as clampPlan) plus the per-shard free-node lists and the
// exchange cadence in integration steps.
type shardPlan struct {
	syncSteps int
	combined  planMat
	parts     []shardPart
}

// shardScratch is the per-state sharded-anneal arena: the folded constant
// bias of the combined matrix, one full-length view and derivative buffer
// per shard, and the per-shard residual slots the sync rounds reduce.
type shardScratch struct {
	bias  []float64
	views [][]float64
	deriv [][]float64
	res   []float64
}

func newShardScratch(shards, n int) *shardScratch {
	ss := &shardScratch{
		bias:  make([]float64, n),
		views: make([][]float64, shards),
		deriv: make([][]float64, shards),
		res:   make([]float64, shards),
	}
	for s := range ss.views {
		ss.views[s] = make([]float64, n)
		ss.deriv[s] = make([]float64, n)
	}
	return ss
}

// shardSyncSteps is the exchange cadence in integration steps.
func (m *Machine) shardSyncSteps() int {
	return int(m.cfg.ShardSyncNs / m.cfg.Dt)
}

// shardSetup decides once whether this machine shards and, if so, builds
// the node partition and the combined coupling matrix. All the reasons
// not to shard fall back silently to the exact path: sharding is a
// throughput variant, never a semantic switch.
func (m *Machine) shardSetup() {
	m.shardOnce.Do(func() {
		if m.cfg.ShardWorkers <= 1 || m.assign == nil {
			return
		}
		if m.cfg.NodeNoise > 0 || m.cfg.CouplerNoise > 0 {
			return
		}
		if m.shardSyncSteps() <= 1 {
			return
		}
		groups := community.ShardNodes(m.assign, m.cfg.ShardWorkers)
		if len(groups) < 2 {
			return
		}
		m.shardGroups = groups
		mats := make([]*mat.CSR, 0, 1+len(m.phases))
		mats = append(mats, m.intra)
		mats = append(mats, m.phases...)
		m.combined = combineCSR(mats, m.N)
	})
}

// combineCSR merges the matrices row-wise: row i of the result is row i of
// every input concatenated in input order. Duplicate columns are kept —
// CSR accumulation handles them sequentially, and the merged row order is
// the deterministic accumulation order of the sharded kernel.
func combineCSR(mats []*mat.CSR, n int) *mat.CSR {
	nnz := 0
	for _, s := range mats {
		nnz += s.NNZ()
	}
	out := &mat.CSR{
		Rows:   n,
		Cols:   n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for i := 0; i < n; i++ {
		for _, s := range mats {
			lo, hi := s.RowPtr[i], s.RowPtr[i+1]
			out.ColIdx = append(out.ColIdx, s.ColIdx[lo:hi]...)
			out.Val = append(out.Val, s.Val[lo:hi]...)
		}
		out.RowPtr[i+1] = len(out.Val)
	}
	return out
}

// ShardCount reports how many partitions the sharded path runs (0 when
// this machine cannot shard). Part of the engine.ShardedBackend contract.
func (m *Machine) ShardCount() int {
	m.shardSetup()
	return len(m.shardGroups)
}

// CompileShardedPlan compiles the clamp pattern into a sharded plan, or
// returns nil when sharding is unavailable — for the machine (disabled,
// single community, noise, sync interval <= one step) or for this pattern
// (fewer than two partitions keep a free node). The engine caches the
// result, nil included. Part of the engine.ShardedBackend contract.
func (m *Machine) CompileShardedPlan(clamped []bool) any {
	m.shardSetup()
	if m.shardGroups == nil {
		return nil
	}
	parts := make([]shardPart, 0, len(m.shardGroups))
	for _, nodes := range m.shardGroups {
		var free []int
		for _, i := range nodes {
			if !clamped[i] {
				free = append(free, i)
			}
		}
		if len(free) > 0 {
			parts = append(parts, shardPart{freeIdx: free})
		}
	}
	if len(parts) < 2 {
		return nil
	}
	return &shardPlan{
		syncSteps: m.shardSyncSteps(),
		combined:  compilePlanMat(m.combined, clamped),
		parts:     parts,
	}
}

// RunSharded runs the partitioned anneal on a prepared state. Part of the
// engine.ShardedBackend contract.
func (m *Machine) RunSharded(st *InferState, plan any) (*Result, error) {
	return m.runSharded(st, plan.(*shardPlan))
}

// runSharded is the sharded anneal loop; see the package comment at the
// top of this file for the exchange and convergence semantics.
func (m *Machine) runSharded(st *InferState, pl *shardPlan) (*Result, error) {
	sc := st.Scratch.(*scratch)
	if sc.shard == nil {
		sc.shard = newShardScratch(len(m.shardGroups), m.N)
	}
	ss := sc.shard
	x := st.X
	steps := int(m.cfg.MaxTimeNs / m.cfg.Dt)
	if steps < 1 {
		return nil, errNoSteps
	}

	// Fold the constant clamp currents of the combined matrix once per
	// inference (static rows read clamped columns only).
	pl.combined.static.MulVec(x, ss.bias)

	parts := pl.parts
	k := len(parts)
	for s := 0; s < k; s++ {
		copy(ss.views[s], x)
	}

	bar := newBarrier(k)
	dyn := pl.combined.dyn
	H := m.params.H
	dt, rail := m.cfg.Dt, m.cfg.VRail
	tol := m.cfg.SettleTol * settleResidualFactor

	// Every shard computes taken/rounds/settled identically (the settle
	// decision reduces the same published residuals), so shard 0's copy is
	// the run's outcome; wg.Wait orders the read after the write.
	type outcome struct {
		steps, rounds int
		settled       bool
		residual      float64
	}
	var out outcome
	var wg sync.WaitGroup
	wg.Add(k)
	for s := 0; s < k; s++ {
		go func(s int) {
			defer wg.Done()
			view := ss.views[s]
			dv := ss.deriv[s]
			free := parts[s].freeIdx
			taken, rounds := 0, 0
			settled := false
			lastRes := math.NaN()
			for taken < steps && !settled {
				run := pl.syncSteps
				if taken+run > steps {
					run = steps - taken
				}
				for t := 0; t < run; t++ {
					for _, i := range free {
						sum := ss.bias[i]
						for p := dyn.RowPtr[i]; p < dyn.RowPtr[i+1]; p++ {
							sum += dyn.Val[p] * view[dyn.ColIdx[p]]
						}
						d := sum + H[i]*view[i]
						if view[i] >= rail && d > 0 {
							d = 0
						} else if view[i] <= -rail && d < 0 {
							d = 0
						}
						dv[i] = d
					}
					for _, i := range free {
						xi := view[i] + dt*dv[i]
						if xi < -rail {
							xi = -rail
						} else if xi > rail {
							xi = rail
						}
						view[i] = xi
					}
					taken++
				}
				// Publish own entries, rendezvous, refresh the full view
				// (remote entries were held since the last exchange).
				for _, i := range free {
					x[i] = view[i]
				}
				bar.wait()
				copy(view, x)
				ss.res[s] = m.shardResidual(free, x)
				bar.wait()
				g := 0.0
				for _, r := range ss.res[:k] {
					if r > g {
						g = r
					}
				}
				rounds++
				lastRes = g
				if g < tol {
					settled = true
				}
			}
			if s == 0 {
				out = outcome{steps: taken, rounds: rounds, settled: settled, residual: lastRes}
			}
		}(s)
	}
	wg.Wait()

	annealT := float64(out.steps) * dt
	st.Res = Result{
		Voltage:   x,
		AnnealNs:  annealT,
		LatencyNs: annealT,
		Settled:   out.settled,
		Switches:  out.rounds,
		Steps:     out.steps,
		Energy:    m.EnergyAt(x),
		Residual:  out.residual,
	}
	return &st.Res, nil
}

// shardResidual evaluates the all-couplings-fresh residual over one
// shard's free rows, mirroring fullResidual's per-row accumulation order
// exactly — intra row from zero first, then each slice's row sum added in
// slice order — so the max over all shards equals fullResidual(x)
// bit-for-bit and a Settled sharded result satisfies the settle-residual
// invariant against ResidualAt unchanged.
func (m *Machine) shardResidual(free []int, x []float64) float64 {
	maxD := 0.0
	for _, i := range free {
		var row float64
		for p := m.intra.RowPtr[i]; p < m.intra.RowPtr[i+1]; p++ {
			row += m.intra.Val[p] * x[m.intra.ColIdx[p]]
		}
		for _, ph := range m.phases {
			var sum float64
			for p := ph.RowPtr[i]; p < ph.RowPtr[i+1]; p++ {
				sum += ph.Val[p] * x[ph.ColIdx[p]]
			}
			row += sum
		}
		d := row + m.params.H[i]*x[i]
		if x[i] >= m.cfg.VRail && d > 0 {
			d = 0
		} else if x[i] <= -m.cfg.VRail && d < 0 {
			d = 0
		}
		if a := math.Abs(d); a > maxD {
			maxD = a
		}
	}
	return maxD
}

// barrier is a reusable cyclic barrier for the shard goroutines. Cond-
// based (no spinning): shard counts routinely exceed GOMAXPROCS, and a
// spinning straggler would starve the very shards it waits for.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties arrive, then releases them together.
// The generation counter makes the barrier reusable across sync rounds.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
