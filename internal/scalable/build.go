// Package scalable implements the Scalable DSPU of paper Sec. IV: a 2-D
// mesh of Processing Elements (each a small fully-connected Real-Valued
// DSPU) joined through Coupling Units at the mesh intersections, with
// analog portals of L lanes per PE corner.
//
// The package takes a trained, pattern-masked parameter set together with
// the community-to-PE assignment and compiles it onto the hardware:
//
//   - intra-PE couplings map to each PE's local K x K crossbar;
//   - inter-PE couplings are routed to a Coupling Unit shared by both PEs
//     (adjacent pairs) or to a wormhole over the CU super-connection grid
//     (remote pairs);
//   - every (PE, CU) portal carries at most L distinct nodes concurrently.
//     When a mapping's communication demand D exceeds L, the couplings are
//     packed into time-multiplexed rounds ("slices" switched in turn by the
//     Temporal Scheduler) — the Temporal & Spatial co-annealing of
//     Sec. IV.D. When D <= L a single round suffices and the machine runs
//     pure Spatial co-annealing.
package scalable

import (
	"fmt"
	"math"
	"sort"

	"dsgl/internal/community"
	"dsgl/internal/mat"
	"dsgl/internal/train"
)

// CUID identifies a Coupling Unit at a mesh intersection. For a GridW x
// GridH PE array the CU grid is (GridW+1) x (GridH+1); CU (cx, cy) touches
// the up-to-four PEs whose corners meet there.
type CUID struct{ X, Y int }

// portal identifies one PE's connection to one CU (an exporting portal with
// L analog lanes).
type portal struct {
	PE int
	CU CUID
}

// coupling is one inter-PE coupling routed through the CU fabric.
type coupling struct {
	X, Y     int  // node indices (directed entry pair handled jointly)
	CU       CUID // serving CU for adjacent pairs and wormhole endpoint A
	CU2      CUID // wormhole endpoint B (equal to CU when not a wormhole)
	Wormhole bool
	Mag      float64 // |J_xy| + |J_yx|, scheduling priority
}

// Build compiles a trained system onto the Scalable DSPU. params.J must
// already be confined to the interconnect mask (the fine-tune step does
// this); couplings violating the mask are rejected here as a safety check.
func Build(params *train.Params, assign *community.Assignment, mask *mat.Bool, cfg Config) (*Machine, error) {
	cfg.fillDefaults()
	n := params.Dim()
	if len(assign.PEOf) != n {
		return nil, fmt.Errorf("scalable: assignment covers %d nodes, params have %d", len(assign.PEOf), n)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if mask != nil && (mask.Rows != n || mask.Cols != n) {
		return nil, fmt.Errorf("scalable: mask is %dx%d, want %dx%d", mask.Rows, mask.Cols, n, n)
	}

	intra := mat.NewBuilder(n, n)
	interByPair := make(map[[2]int][]pairEntry) // PE pair -> node pairs

	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			v1, v2 := params.J.At(x, y), params.J.At(y, x)
			if v1 == 0 && v2 == 0 {
				continue
			}
			if mask != nil {
				if v1 != 0 && !mask.At(x, y) {
					return nil, fmt.Errorf("scalable: coupling (%d,%d) violates the interconnect mask", x, y)
				}
				if v2 != 0 && !mask.At(y, x) {
					return nil, fmt.Errorf("scalable: coupling (%d,%d) violates the interconnect mask", y, x)
				}
			}
			px, py := assign.PEOf[x], assign.PEOf[y]
			if px == py {
				if v1 != 0 {
					intra.Add(x, y, v1)
				}
				if v2 != 0 {
					intra.Add(y, x, v2)
				}
				continue
			}
			p, q := px, py
			a, b := x, y
			if p > q {
				p, q = q, p
				a, b = b, a
			}
			mag := math.Abs(v1) + math.Abs(v2)
			interByPair[[2]int{p, q}] = append(interByPair[[2]int{p, q}], pairEntry{a, b, mag})
		}
	}

	m := &Machine{
		N:      n,
		cfg:    cfg,
		assign: assign,
		params: params,
		intra:  intra.Build(),
	}

	// Route each PE-pair's couplings through the CU fabric.
	var all []coupling
	portalLoadHint := make(map[portal]int) // for balanced CU choice
	pairKeys := make([][2]int, 0, len(interByPair))
	for k := range interByPair {
		pairKeys = append(pairKeys, k)
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		if pairKeys[i][0] != pairKeys[j][0] {
			return pairKeys[i][0] < pairKeys[j][0]
		}
		return pairKeys[i][1] < pairKeys[j][1]
	})
	for _, key := range pairKeys {
		entries := interByPair[key]
		p, q := key[0], key[1]
		shared := sharedCUs(assign, p, q)
		if len(shared) > 0 {
			// Adjacent PEs: pick the shared CU with the lightest load.
			best := shared[0]
			bestLoad := portalLoadHint[portal{p, best}] + portalLoadHint[portal{q, best}]
			for _, cu := range shared[1:] {
				if l := portalLoadHint[portal{p, cu}] + portalLoadHint[portal{q, cu}]; l < bestLoad {
					best, bestLoad = cu, l
				}
			}
			for _, e := range entries {
				all = append(all, coupling{X: e.a, Y: e.b, CU: best, CU2: best, Mag: e.mag})
				portalLoadHint[portal{p, best}]++
				portalLoadHint[portal{q, best}]++
			}
			continue
		}
		// Remote PEs: wormhole between each PE's least-loaded corner CU.
		cuA := lightestCorner(assign, p, portalLoadHint)
		cuB := lightestCorner(assign, q, portalLoadHint)
		for _, e := range entries {
			all = append(all, coupling{X: e.a, Y: e.b, CU: cuA, CU2: cuB, Wormhole: true, Mag: e.mag})
			portalLoadHint[portal{p, cuA}]++
			portalLoadHint[portal{q, cuB}]++
			m.stats.WormholeCouplings++
		}
	}
	m.stats.InterCouplings = len(all)
	m.stats.IntraCouplings = m.intra.NNZ()

	// Pack couplings into rounds under the per-portal lane budget.
	rounds, maxDemand := packRounds(all, assign, cfg.Lanes)
	m.stats.MaxPortalDemand = maxDemand
	m.stats.Rounds = len(rounds)
	m.stats.Lanes = cfg.Lanes
	if len(rounds) <= 1 {
		m.stats.Mode = ModeSpatial
	} else {
		m.stats.Mode = ModeTemporalSpatial
	}

	// When temporal co-annealing is disabled (DS-GL-Spatial), keep only
	// the couplings that fit in a single round; the rest are dropped —
	// trading accuracy for latency, exactly the paper's Spatial variant.
	if cfg.TemporalDisabled && len(rounds) > 1 {
		dropped := 0
		for _, r := range rounds[1:] {
			dropped += len(r)
		}
		m.stats.DroppedCouplings = dropped
		rounds = rounds[:1]
		m.stats.Rounds = 1
		m.stats.Mode = ModeSpatial
	}

	// Materialize per-round inter-PE coupling matrices (both directed
	// entries of each pair). While a slice is inactive its CU crossbar
	// holds the last-transmitted voltages (analog sample-and-hold), so
	// every coupling keeps contributing current between its activations —
	// the machine performs iterative partial annealing rather than
	// dropping couplings.
	m.phases = make([]*mat.CSR, len(rounds))
	for k, round := range rounds {
		b := mat.NewBuilder(n, n)
		for _, c := range round {
			if v := params.J.At(c.X, c.Y); v != 0 {
				b.Add(c.X, c.Y, v)
			}
			if v := params.J.At(c.Y, c.X); v != 0 {
				b.Add(c.Y, c.X, v)
			}
		}
		m.phases[k] = b.Build()
	}
	if len(m.phases) == 0 {
		m.phases = []*mat.CSR{mat.NewBuilder(n, n).Build()}
		m.stats.Rounds = 1
	}
	return m, nil
}

type pairEntry struct {
	a, b int
	mag  float64
}

// cornerCUs returns the four CUs at the corners of PE pe.
func cornerCUs(a *community.Assignment, pe int) [4]CUID {
	x, y := a.PEXY(pe)
	return [4]CUID{{x, y}, {x + 1, y}, {x, y + 1}, {x + 1, y + 1}}
}

// sharedCUs returns the CUs adjacent to both PEs (non-empty only for
// mesh/diagonal-adjacent PEs).
func sharedCUs(a *community.Assignment, p, q int) []CUID {
	cp := cornerCUs(a, p)
	cq := cornerCUs(a, q)
	var out []CUID
	for _, c1 := range cp {
		for _, c2 := range cq {
			if c1 == c2 {
				out = append(out, c1)
			}
		}
	}
	return out
}

// lightestCorner picks the corner CU of pe with the smallest current load.
func lightestCorner(a *community.Assignment, pe int, load map[portal]int) CUID {
	corners := cornerCUs(a, pe)
	best := corners[0]
	bestLoad := load[portal{pe, best}]
	for _, cu := range corners[1:] {
		if l := load[portal{pe, cu}]; l < bestLoad {
			best, bestLoad = cu, l
		}
	}
	return best
}

// packRounds greedily packs couplings (strongest first) into rounds such
// that within one round every (PE, CU) portal exports at most lanes
// distinct nodes. It returns the rounds and the maximum single-portal
// demand (the paper's D) observed across the whole mapping.
func packRounds(all []coupling, assign *community.Assignment, lanes int) ([][]coupling, int) {
	sort.SliceStable(all, func(i, j int) bool { return all[i].Mag > all[j].Mag })

	// Total demand per portal (for the D statistic).
	demand := make(map[portal]map[int]bool)
	note := func(p portal, node int) {
		if demand[p] == nil {
			demand[p] = make(map[int]bool)
		}
		demand[p][node] = true
	}
	for _, c := range all {
		note(portal{assign.PEOf[c.X], c.CU}, c.X)
		note(portal{assign.PEOf[c.Y], c.CU2}, c.Y)
	}
	maxDemand := 0
	for _, nodes := range demand {
		if len(nodes) > maxDemand {
			maxDemand = len(nodes)
		}
	}

	type roundState struct {
		couplings []coupling
		occupancy map[portal]map[int]bool
	}
	var rounds []*roundState
	fits := func(r *roundState, p portal, node int) bool {
		set := r.occupancy[p]
		if set == nil {
			return lanes >= 1
		}
		if set[node] {
			return true
		}
		return len(set) < lanes
	}
	add := func(r *roundState, p portal, node int) {
		if r.occupancy[p] == nil {
			r.occupancy[p] = make(map[int]bool)
		}
		r.occupancy[p][node] = true
	}
	for _, c := range all {
		pa := portal{assign.PEOf[c.X], c.CU}
		pb := portal{assign.PEOf[c.Y], c.CU2}
		placed := false
		for _, r := range rounds {
			if fits(r, pa, c.X) && fits(r, pb, c.Y) {
				add(r, pa, c.X)
				add(r, pb, c.Y)
				r.couplings = append(r.couplings, c)
				placed = true
				break
			}
		}
		if !placed {
			r := &roundState{occupancy: make(map[portal]map[int]bool)}
			add(r, pa, c.X)
			add(r, pb, c.Y)
			r.couplings = append(r.couplings, c)
			rounds = append(rounds, r)
		}
	}
	out := make([][]coupling, len(rounds))
	for i, r := range rounds {
		out[i] = r.couplings
	}
	return out, maxDemand
}
