package experiments

import (
	"fmt"
	"io"
	"math"

	"dsgl/internal/circuit"
	"dsgl/internal/dspu"
	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

// Fig4 reproduces the circuit-level validation of Fig. 4: a 6-spin graph
// (v0-v5) with v0, v2, v4 clamped as inputs, deployed on both the
// Real-Valued DSPU and baseline BRIM with identical inputs and coupling
// parameters. The DSPU's free nodes settle at real values strictly between
// the rails; BRIM's polarize to ±1.
func Fig4(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Fig. 4 — circuit-level validation: DSPU vs BRIM, 6-spin graph, 0-50 ns")

	const n = 6
	r := rng.New(cfg.Seed + 4)
	j := mat.NewDense(n, n)
	// An illustrative coupled graph (ring + chords), symmetric.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}, {0, 3}}
	for _, e := range edges {
		v := r.Uniform(0.3, 0.9)
		if r.Float64() < 0.4 {
			v = -v
		}
		j.Set(e[0], e[1], v)
		j.Set(e[1], e[0], v)
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -1.5
	}
	inputs := []dspu.Observation{{Index: 0, Value: 0.7}, {Index: 2, Value: -0.4}, {Index: 4, Value: 0.2}}

	// DSPU trace.
	d, err := dspu.New(j, h, dspu.Config{Dt: 0.02})
	if err != nil {
		return err
	}
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = r.Uniform(-0.05, 0.05)
	}
	dtrace, err := d.TraceRun(x0, inputs, 50, 5)
	if err != nil {
		return err
	}

	// BRIM trace: same couplings, linear self-reaction (field 0), same
	// clamped inputs.
	bnet, err := circuit.NewNetwork(j, make([]float64, n), circuit.Config{Self: circuit.Linear})
	if err != nil {
		return err
	}
	bnet.ClampSet([]int{0, 2, 4})
	bx := mat.CopyVec(x0)
	for _, in := range inputs {
		bx[in.Index] = in.Value
	}
	ig := ode.NewEuler()
	btimes := []float64{0}
	bstates := [][]float64{mat.CopyVec(bx)}
	t := 0.0
	next := 5.0
	for step := 0; step < 2500; step++ {
		t = ig.Step(bnet, t, 0.02, bx)
		bnet.ClampRails(bx)
		if t+1e-9 >= next {
			btimes = append(btimes, t)
			bstates = append(bstates, mat.CopyVec(bx))
			next += 5
		}
	}

	fmt.Fprintln(w, "\nDSPU (real-valued settling):")
	printTrace(w, dtrace.TimesNs, dtrace.States)
	fmt.Fprintln(w, "\nBRIM (binary polarization):")
	printTrace(w, btimes, bstates)

	// Verdict lines mirroring the paper's observation.
	dFinal := dtrace.States[len(dtrace.States)-1]
	bFinal := bstates[len(bstates)-1]
	real, polar := 0, 0
	for _, i := range []int{1, 3, 5} {
		if math.Abs(dFinal[i]) < 0.99 {
			real++
		}
		if math.Abs(math.Abs(bFinal[i])-1) < 1e-3 {
			polar++
		}
	}
	fmt.Fprintf(w, "\nDSPU free nodes settled strictly inside the rails: %d/3\n", real)
	fmt.Fprintf(w, "BRIM free nodes polarized to ±1:                   %d/3\n", polar)
	return nil
}

func printTrace(w io.Writer, times []float64, states [][]float64) {
	fmt.Fprintf(w, "%8s", "t(ns)")
	for i := 0; i < len(states[0]); i++ {
		fmt.Fprintf(w, "%9s", fmt.Sprintf("v%d", i))
	}
	fmt.Fprintln(w)
	for k := range times {
		fmt.Fprintf(w, "%8.1f", times[k])
		for _, v := range states[k] {
			fmt.Fprintf(w, "%9.4f", v)
		}
		fmt.Fprintln(w)
	}
}
