package experiments

import (
	"fmt"
	"io"

	"dsgl"
)

// Fig13 reproduces the robustness study: RMSE versus coupling-matrix
// density under dynamic Gaussian noise injected at both nodes and coupling
// units, with standard deviations n ∈ {0%, 5%, 10%, 15%}, on three
// representative datasets with the DMesh pattern. The paper's observation —
// physical dynamical systems tolerate analog noise gracefully — shows as
// curves that shift only slightly as n grows.
func Fig13(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Fig. 13 — RMSE vs density under node/coupler noise (DMesh)")

	densities := []float64{0.05, 0.10, 0.15, 0.20}
	noises := []float64{0, 0.05, 0.10, 0.15}
	for _, name := range cfg.intersectNames([]string{"stock", "no2", "traffic"}) {
		ds := cfg.dataset(name)
		test := cfg.testWindows(ds)
		dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: cfg.Seed + 11})
		if err != nil {
			return err
		}
		// The density x noise grid fans across the worker pool; every cell
		// decomposes and evaluates independently from the shared dense
		// model, so results land in fixed slots regardless of scheduling.
		rmse := make([]float64, len(densities)*len(noises))
		err = parallelForEach(cfg.Parallelism, len(rmse), func(cell int) error {
			d := densities[cell/len(noises)]
			n := noises[cell%len(noises)]
			model, err := cfg.dsglModel(ds, dsgl.Options{
				Pattern:      dsgl.DMesh,
				Density:      d,
				NodeNoise:    n,
				CouplerNoise: n,
				MaxInferNs:   8000,
				DenseInit:    dense,
			})
			if err != nil {
				return err
			}
			rep, err := model.Evaluate(test)
			if err != nil {
				return err
			}
			rmse[cell] = rep.RMSE
			return nil
		})
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "\n%s:\n%9s", name, "density")
		for _, n := range noises {
			fmt.Fprintf(w, "%10s", fmt.Sprintf("n=%.0f%%", n*100))
		}
		fmt.Fprintln(w)
		for di, d := range densities {
			fmt.Fprintf(w, "%9.2f", d)
			for ni := range noises {
				fmt.Fprintf(w, "%10.4g", rmse[di*len(noises)+ni])
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
