package experiments

import (
	"fmt"
	"io"

	"dsgl"
	"dsgl/internal/gnn"
)

// Fig10 reproduces the accuracy-vs-density study: DS-GL RMSE as a function
// of the post-decomposition coupling-matrix density (proportion of
// non-zeros) for the Chain, Mesh, and DMesh communication patterns (each
// with Wormhole enabled), across the seven single-feature datasets, with
// the best GNN result as the reference line.
//
// Expected shape (paper): RMSE falls as density rises; richer patterns
// (DMesh < Mesh < Chain in RMSE) dominate; DS-GL crosses below the best
// GNN line.
func Fig10(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Fig. 10 — RMSE vs coupling-matrix density, per pattern, 7 datasets")

	densities := []float64{0.02, 0.05, 0.10, 0.15, 0.20}
	patterns := []struct {
		name string
		kind dsgl.Pattern
	}{
		{"Chain", dsgl.Chain},
		{"Mesh", dsgl.Mesh},
		{"DMesh", dsgl.DMesh},
	}

	for _, name := range cfg.datasetNames() {
		ds := cfg.dataset(name)
		test := cfg.testWindows(ds)
		trainW, _ := ds.Split()

		// Best-GNN reference line.
		bestGNN := 0.0
		for _, bn := range gnn.BaselineNames() {
			m, err := gnn.NewBaseline(bn, ds, cfg.Seed+2)
			if err != nil {
				return err
			}
			if _, err := gnn.Train(m, ds, trainW, gnn.TrainConfig{Epochs: cfg.GNNEpochs, Seed: cfg.Seed + 3}); err != nil {
				return err
			}
			rmse := gnn.Evaluate(m, ds, test)
			if bestGNN == 0 || rmse < bestGNN {
				bestGNN = rmse
			}
		}

		// The dense phase is density/pattern independent — train it once
		// and sweep the decomposition.
		dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: cfg.Seed + 11})
		if err != nil {
			return err
		}

		// The density x pattern grid is embarrassingly parallel: every
		// cell trains an independent decomposition from the shared dense
		// model. Fan the cells across the worker pool, then print in
		// grid order.
		rmse := make([]float64, len(densities)*len(patterns))
		err = parallelForEach(cfg.Parallelism, len(rmse), func(cell int) error {
			di, pi := cell/len(patterns), cell%len(patterns)
			model, err := cfg.dsglModel(ds, dsgl.Options{
				Pattern:   patterns[pi].kind,
				Density:   densities[di],
				DenseInit: dense,
			})
			if err != nil {
				return err
			}
			rep, err := model.Evaluate(test)
			if err != nil {
				return err
			}
			rmse[cell] = rep.RMSE
			return nil
		})
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "\n%s (best GNN RMSE %.4g):\n", name, bestGNN)
		fmt.Fprintf(w, "%9s", "density")
		for _, p := range patterns {
			fmt.Fprintf(w, "%10s", p.name)
		}
		fmt.Fprintln(w)
		for di, d := range densities {
			fmt.Fprintf(w, "%9.2f", d)
			for pi := range patterns {
				fmt.Fprintf(w, "%10.4g", rmse[di*len(patterns)+pi])
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
