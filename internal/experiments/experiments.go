// Package experiments contains one harness per table and figure of the
// paper's evaluation section (Sec. V). Every harness regenerates the
// corresponding artifact — the same rows or data series the paper reports —
// against the synthetic workloads of internal/datasets.
//
// The harnesses are sized so the full suite runs on a laptop: graphs use
// N = 32 nodes (window systems of a few hundred dynamical-system nodes) and
// evaluation samples a fixed number of test windows. Sizes are adjustable
// through Config.
package experiments

import (
	"fmt"
	"io"
	"runtime"

	"dsgl"
	"dsgl/internal/datasets"
	"dsgl/internal/pool"
)

// Config sizes the experiment suite.
type Config struct {
	// N is the graph-node count per dataset (default 32).
	N int
	// T is the series length (default 0 = generator default).
	T int
	// EvalWindows caps the test windows evaluated per cell (default 30).
	EvalWindows int
	// GNNEpochs trains the baselines (default 12).
	GNNEpochs int
	// Datasets restricts which single-feature workloads the dataset-sweep
	// harnesses cover (default: all seven).
	Datasets []string
	// Seed drives the whole suite.
	Seed uint64
	// Parallelism bounds the worker pool the sweep harnesses (Fig. 10-13)
	// fan their grid cells across (default NumCPU). Cells are seeded per
	// configuration, so results are identical for any parallelism.
	Parallelism int
	// Workers sets dsgl.Options.Workers — the per-model worker pool used
	// by EvaluateParallel and lambda selection — for the models the
	// harnesses train (0 = runtime.GOMAXPROCS(0)).
	Workers int
}

func (c *Config) fillDefaults() {
	if c.N == 0 {
		c.N = 32
	}
	if c.EvalWindows == 0 {
		c.EvalWindows = 30
	}
	if c.GNNEpochs == 0 {
		c.GNNEpochs = 12
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
}

// dataset builds the named workload at the configured size.
func (c Config) dataset(name string) *datasets.Dataset {
	return datasets.Generate(name, datasets.Config{N: c.N, T: c.T, Seed: c.Seed})
}

// datasetNames returns the configured workload list (default: all seven).
func (c Config) datasetNames() []string {
	if len(c.Datasets) > 0 {
		return c.Datasets
	}
	return datasets.Names()
}

// intersectNames filters want to the configured list, preserving order.
func (c Config) intersectNames(want []string) []string {
	if len(c.Datasets) == 0 {
		return want
	}
	allowed := make(map[string]bool, len(c.Datasets))
	for _, n := range c.Datasets {
		allowed[n] = true
	}
	var out []string
	for _, n := range want {
		if allowed[n] {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return c.Datasets
	}
	return out
}

// testWindows returns up to EvalWindows windows from the test split.
func (c Config) testWindows(ds *datasets.Dataset) []datasets.Window {
	_, test := ds.Split()
	if len(test) > c.EvalWindows {
		test = test[:c.EvalWindows]
	}
	return test
}

// dsglModel trains the full pipeline with suite-standard options.
func (c Config) dsglModel(ds *datasets.Dataset, opts dsgl.Options) (*dsgl.Model, error) {
	if opts.Seed == 0 {
		opts.Seed = c.Seed + 11
	}
	if opts.Workers == 0 {
		opts.Workers = c.Workers
	}
	return dsgl.Train(ds, opts)
}

// parallelForEach fans fn over items [0, n) across the shared worker-pool
// primitive with bounded parallelism, returning the first error in item
// order. The sweep harnesses use it to evaluate independent grid cells
// concurrently; each cell writes only its own slot, so output assembly
// stays deterministic.
func parallelForEach(par int, n int, fn func(i int) error) error {
	return pool.RunErr(par, n, fn)
}

// Runner dispatches an experiment by its paper identifier.
type Runner func(cfg Config, w io.Writer) error

// Registry maps experiment ids ("fig4", "table2", ...) to their harnesses.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig4":   func(c Config, w io.Writer) error { return Fig4(c, w) },
		"fig10":  func(c Config, w io.Writer) error { return Fig10(c, w) },
		"fig11":  func(c Config, w io.Writer) error { return Fig11(c, w) },
		"fig12":  func(c Config, w io.Writer) error { return Fig12(c, w) },
		"fig13":  func(c Config, w io.Writer) error { return Fig13(c, w) },
		"table1": func(c Config, w io.Writer) error { return Table1(c, w) },
		"table2": func(c Config, w io.Writer) error { return Table2(c, w) },
		"table3": func(c Config, w io.Writer) error { return Table3(c, w) },
		"table4": func(c Config, w io.Writer) error { return Table4(c, w) },
		"hetero": func(c Config, w io.Writer) error { return Hetero(c, w) },
	}
}

// IDs lists the experiment identifiers in paper order (the hetero
// comparison extends Table IV, so it follows it).
func IDs() []string {
	return []string{"fig4", "fig10", "fig11", "fig12", "fig13", "table1", "table2", "table3", "table4", "hetero"}
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
