package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dsgl/internal/gnn"
)

// tinyConfig keeps experiment smoke tests fast: minimal graphs, short
// series, few windows, few GNN epochs.
func tinyConfig() Config {
	return Config{N: 12, T: 300, EvalWindows: 4, GNNEpochs: 2, Seed: 3}
}

func TestRegistryCoversAllIDs(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Fatalf("registry has %d entries, IDs lists %d", len(reg), len(IDs()))
	}
}

func TestFig4Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DSPU", "BRIM", "settled strictly inside the rails: 3/3", "polarized to ±1:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BRIM", "DSPU-2000", "DS-GL", "Real-Value", "Binary"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q", want)
		}
	}
}

func TestTable3Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Stratix 10 SX", "NVIDIA A100", "GWN", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 output missing %q", want)
		}
	}
}

func TestFig12RunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	cfg.Datasets = []string{"no2"}
	var buf bytes.Buffer
	if err := Fig12(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"no2", "sync(ns)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig12 output missing %q", want)
		}
	}
}

func TestFig13RunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	cfg.Datasets = []string{"no2"}
	var buf bytes.Buffer
	if err := Fig13(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"n=0%", "n=15%", "density"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig13 output missing %q", want)
		}
	}
}

func TestTable4RunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := Table4(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"housing", "climate", "DS-GL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table4 output missing %q", want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.N == 0 || c.EvalWindows == 0 || c.GNNEpochs == 0 || c.Parallelism == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestParallelForEachPropagatesError(t *testing.T) {
	err := parallelForEach(2, 5, func(i int) error {
		if i == 3 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("got %v", err)
	}
	if err := parallelForEach(2, 5, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

func TestPaperScaleFLOPModels(t *testing.T) {
	small := gnnFLOPsGWN(gnnGeom(100), 32, 8)
	big := gnnFLOPsGWN(gnnGeom(1000), 32, 8)
	if big <= small {
		t.Fatal("FLOPs must grow with graph size")
	}
	if gnnFLOPsMTGNN(gnnGeom(1000), 32, 2, 3) <= 0 || gnnFLOPsDDGCRN(gnnGeom(1000), 64) <= 0 {
		t.Fatal("FLOP models must be positive")
	}
}

// gnnGeom builds a paper-scale geometry for FLOP-model tests.
func gnnGeom(n int) gnn.Geometry {
	return gnn.Geometry{N: n, F: 1, P: 12, Q: 12, U: 1}
}

func TestFig10SingleDatasetTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	cfg.Datasets = []string{"no2"}
	var buf bytes.Buffer
	if err := Fig10(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"no2", "best GNN RMSE", "Chain", "Mesh", "DMesh", "density"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig10 output missing %q", want)
		}
	}
}

func TestFig11SingleDatasetTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	cfg.Datasets = []string{"stock"}
	var buf bytes.Buffer
	if err := Fig11(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stock", "latency(us)", "best RMSE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig11 output missing %q", want)
		}
	}
}

func TestTable2SingleDatasetTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	cfg.Datasets = []string{"o3"}
	var buf bytes.Buffer
	if err := Table2(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GWN", "MTGNN", "DDGCRN", "DS-GL-Spatial", "DS-GL-DMesh", "o3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 output missing %q", want)
		}
	}
}

func TestIntersectNames(t *testing.T) {
	c := Config{Datasets: []string{"no2", "stock"}}
	got := c.intersectNames([]string{"stock", "traffic"})
	if len(got) != 1 || got[0] != "stock" {
		t.Fatalf("intersect = %v", got)
	}
	// Disjoint lists fall back to the configured set.
	got = c.intersectNames([]string{"traffic"})
	if len(got) != 2 {
		t.Fatalf("fallback = %v", got)
	}
	var def Config
	got = def.intersectNames([]string{"traffic"})
	if len(got) != 1 || got[0] != "traffic" {
		t.Fatalf("default = %v", got)
	}
}

func TestDatasetNamesDefault(t *testing.T) {
	var c Config
	if len(c.datasetNames()) != 7 {
		t.Fatalf("default dataset list: %v", c.datasetNames())
	}
}
