package experiments

import (
	"fmt"
	"io"

	"dsgl"
)

// Fig12 reproduces the synchronization study: RMSE as a function of the
// inter-mapping synchronization interval (1 ns to 5 µs) on the Stock, NO2,
// and Traffic datasets with the DMesh pattern. The expected shape: accuracy
// is essentially flat up to ~500 ns (the paper deploys 200 ns) and degrades
// beyond it as held coupling contributions go stale.
func Fig12(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Fig. 12 — RMSE vs synchronization interval (DMesh)")

	intervals := []float64{1, 50, 200, 500, 1000, 2000, 5000} // ns
	for _, name := range cfg.intersectNames([]string{"stock", "no2", "traffic"}) {
		ds := cfg.dataset(name)
		test := cfg.testWindows(ds)
		dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: cfg.Seed + 11})
		if err != nil {
			return err
		}
		// Each synchronization interval is an independent compile+evaluate
		// job — fan them across the worker pool and print in sweep order.
		type meas struct {
			rmse, latencyUs float64
		}
		results := make([]meas, len(intervals))
		err = parallelForEach(cfg.Parallelism, len(intervals), func(i int) error {
			// Few lanes force temporal+spatial mode so held slices exist
			// and synchronization matters.
			model, err := cfg.dsglModel(ds, dsgl.Options{
				Pattern:        dsgl.DMesh,
				Density:        0.10,
				Lanes:          6,
				SyncIntervalNs: intervals[i],
				MaxInferNs:     5000,
				DenseInit:      dense,
			})
			if err != nil {
				return err
			}
			rep, err := model.Evaluate(test)
			if err != nil {
				return err
			}
			results[i] = meas{rep.RMSE, rep.MeanLatencyUs}
			return nil
		})
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "\n%s:\n%14s %10s %12s\n", name, "sync(ns)", "RMSE", "latency(us)")
		for i, sync := range intervals {
			fmt.Fprintf(w, "%14.0f %10.4g %12.3g\n", sync, results[i].rmse, results[i].latencyUs)
		}
	}
	return nil
}
