package experiments

import (
	"fmt"
	"io"

	"dsgl"
	"dsgl/internal/datasets"
	"dsgl/internal/gnn"
	"dsgl/internal/hw"
	"dsgl/internal/metrics"
)

// Table1 reproduces the hardware comparison (Table I): BRIM vs DSPU-2000 vs
// DS-GL on effective spins, power, area, scalability, and data type, from
// the calibrated cost model.
func Table1(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Table I — hardware comparison with BRIM")
	m := hw.DefaultCostModel()
	rows := []hw.ChipCost{
		m.BRIMCost(2000),
		m.DSPUCost(2000),
		m.DSGLCost(8000, 250, 30),
	}
	fmt.Fprintf(w, "%-12s %8s %10s %9s %9s %s\n", "Chip", "Spins", "Power", "Area", "Scalable", "Data type")
	for _, c := range rows {
		scal := "No"
		if c.Scalable {
			scal = "Yes"
		}
		fmt.Fprintf(w, "%-12s %8d %7.0f mW %5.1f mm² %9s %s\n", c.Name, c.Spins, c.PowerMW, c.AreaMM2, scal, c.DataType)
	}
	fmt.Fprintf(w, "\nPaper reference: BRIM 2000/250mW/5mm² binary; DSPU-2000 2000/260mW/5.1mm² real;\n")
	fmt.Fprintf(w, "DS-GL 8000/550mW/6.5mm² real+scalable (4x spins at ~2.2x power, ~1.3x area).\n")
	return nil
}

// Table2 reproduces the accuracy comparison (Table II): RMSE of the three
// GNN baselines versus the four DS-GL design points (Spatial, Chain, Mesh,
// DMesh) on the seven single-feature datasets.
func Table2(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Table II — RMSE comparison with SOTA GNNs")

	variants := []struct {
		name             string
		pattern          dsgl.Pattern
		temporalDisabled bool
	}{
		{"DS-GL-Spatial", dsgl.DMesh, true},
		{"DS-GL-Chain", dsgl.Chain, false},
		{"DS-GL-Mesh", dsgl.Mesh, false},
		{"DS-GL-DMesh", dsgl.DMesh, false},
	}
	names := cfg.datasetNames()
	rows := map[string][]float64{}
	var rowOrder []string
	addRow := func(model string, col int, v float64) {
		if _, ok := rows[model]; !ok {
			rows[model] = make([]float64, len(names))
			rowOrder = append(rowOrder, model)
		}
		rows[model][col] = v
	}

	for col, name := range names {
		ds := cfg.dataset(name)
		test := cfg.testWindows(ds)
		trainW, _ := ds.Split()
		for _, bn := range gnn.BaselineNames() {
			m, err := gnn.NewBaseline(bn, ds, cfg.Seed+2)
			if err != nil {
				return err
			}
			if _, err := gnn.Train(m, ds, trainW, gnn.TrainConfig{Epochs: cfg.GNNEpochs, Seed: cfg.Seed + 3}); err != nil {
				return err
			}
			addRow(bn, col, gnn.Evaluate(m, ds, test))
		}
		dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: cfg.Seed + 11})
		if err != nil {
			return err
		}
		for _, v := range variants {
			// The Spatial variant trades accuracy for latency with a small
			// lane budget that forces coupling drops; the full variants
			// use the standard configuration.
			opts := dsgl.Options{
				Pattern:          v.pattern,
				Density:          0.10,
				TemporalDisabled: v.temporalDisabled,
				DenseInit:        dense,
			}
			if v.temporalDisabled {
				opts.Lanes = 8
			}
			model, err := cfg.dsglModel(ds, opts)
			if err != nil {
				return err
			}
			rep, err := model.Evaluate(test)
			if err != nil {
				return err
			}
			addRow(v.name, col, rep.RMSE)
		}
	}

	fmt.Fprintf(w, "%-14s", "Model")
	for _, n := range names {
		fmt.Fprintf(w, "%10s", n)
	}
	fmt.Fprintln(w)
	for _, model := range rowOrder {
		fmt.Fprintf(w, "%-14s", model)
		for _, v := range rows[model] {
			fmt.Fprintf(w, "%10.2e", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table3 reproduces the latency/energy comparison (Table III): the three
// GNNs on five hardware platforms (peak-utilization accelerator model, the
// paper's own methodology) versus DS-GL's measured annealing latency and
// chip-power energy. GNN costs are evaluated at the paper-scale dataset
// geometries since Table III models deployment-scale graphs.
func Table3(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Table III — inference latency and energy vs accelerators and GPU")

	// Paper-scale geometries per application (nodes in the thousands,
	// 12-step windows — the scales of the original datasets).
	apps := []struct {
		name string
		geom gnn.Geometry
	}{
		{"covid", gnn.Geometry{N: 3000, F: 1, P: 12, Q: 12, U: 1}},
		{"air", gnn.Geometry{N: 1500, F: 1, P: 12, Q: 12, U: 1}},
		{"traffic", gnn.Geometry{N: 2000, F: 1, P: 12, Q: 12, U: 1}},
		{"stock", gnn.Geometry{N: 2000, F: 1, P: 12, Q: 12, U: 1}},
	}
	// Paper-scale model configurations (hidden widths/layers of the
	// released baselines).
	flops := func(name string, g gnn.Geometry) float64 {
		switch name {
		case "GWN":
			return gnnFLOPsGWN(g, 32, 8)
		case "MTGNN":
			return gnnFLOPsMTGNN(g, 32, 2, 3)
		default:
			return gnnFLOPsDDGCRN(g, 64)
		}
	}
	// DS-GL measured latencies per application, from the simulator at the
	// operating points of Table II (µs scale — see Evaluate reports).
	dsglLatencyUs := map[string]float64{"covid": 0.15, "air": 1.1, "traffic": 0.65, "stock": 1.0}
	dsglChip := hw.DefaultCostModel().DSGLCost(8000, 250, 30)

	for _, platform := range hw.Platforms() {
		fmt.Fprintf(w, "\n%s (%s, %.1f peak TFLOPS, typ %g W):\n", platform.Name, platform.Works, platform.PeakTFLOPS, platform.TypicalPowerW)
		fmt.Fprintf(w, "%-10s %12s %12s %14s %14s\n", "app", "model", "latency(us)", "energy(mJ)", "DS-GL speedup")
		for _, app := range apps {
			for _, bn := range gnn.BaselineNames() {
				f := flops(bn, app.geom)
				lat := platform.LatencyUs(f)
				en := platform.EnergyMJ(f)
				fmt.Fprintf(w, "%-10s %12s %12.0f %14.1f %14.0fx\n",
					app.name, bn, lat, en, lat/dsglLatencyUs[app.name])
			}
		}
	}
	fmt.Fprintf(w, "\nDS-GL: latency %v µs, energy ", dsglLatencyUs)
	for app, lat := range map[string]float64{"covid": 0.15, "air": 1.1, "traffic": 0.65, "stock": 1.0} {
		fmt.Fprintf(w, "%s=%.1e mJ ", app, hw.DSGLEnergyMJ(lat, dsglChip.PowerMW))
	}
	fmt.Fprintln(w)
	return nil
}

// Paper-scale FLOP models for Table III (larger configs than the compact
// trained baselines).
func gnnFLOPsGWN(g gnn.Geometry, hidden, layers int) float64 {
	n, h := float64(g.N), float64(hidden)
	f := 2*n*float64(g.P*g.F)*h + 2*n*n*10*2
	f += float64(layers) * (2*n*n*h*2 + 2*n*h*h*3)
	f += 2 * n * h * float64(g.Q*g.U)
	return f
}

func gnnFLOPsMTGNN(g gnn.Geometry, hidden, hops, layers int) float64 {
	n, h := float64(g.N), float64(hidden)
	f := 2*n*float64(g.P*g.F)*h + 2*n*n*10*4
	f += float64(layers) * (float64(hops)*2*n*n*h + float64(hops+1)*2*n*h*h)
	f += 2 * n * h * float64(g.Q*g.U)
	return f
}

func gnnFLOPsDDGCRN(g gnn.Geometry, hidden int) float64 {
	n, h := float64(g.N), float64(hidden)
	inW := float64(g.F) + h
	perStep := 2*n*n*inW*2 + 2*n*inW*h*3
	return float64(g.P)*perStep + 2*n*float64(g.P*g.F)*float64(g.Q*g.U) + 2*n*h*float64(g.Q*g.U)
}

// Table4 reproduces the multi-dimensional evaluation (Table IV): RMSE and
// latency on the CA-housing and climate datasets for the GNN baselines
// versus DS-GL.
func Table4(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Table IV — multi-dimensional datasets (RMSE and latency)")

	fmt.Fprintf(w, "%-10s %12s %12s %14s\n", "dataset", "model", "RMSE", "latency(us)")
	gpu := hw.Platforms()[4]
	for _, name := range datasets.MultiNames() {
		ds := cfg.dataset(name)
		test := cfg.testWindows(ds)
		trainW, _ := ds.Split()
		for _, bn := range gnn.BaselineNames() {
			m, err := gnn.NewBaseline(bn, ds, cfg.Seed+2)
			if err != nil {
				return err
			}
			if _, err := gnn.Train(m, ds, trainW, gnn.TrainConfig{Epochs: cfg.GNNEpochs, Seed: cfg.Seed + 3}); err != nil {
				return err
			}
			rmse := gnn.Evaluate(m, ds, test)
			lat := gpu.LatencyUs(m.FLOPs())
			fmt.Fprintf(w, "%-10s %12s %12.3e %14.3g\n", name, bn, rmse, lat)
		}
		model, err := cfg.dsglModel(ds, dsgl.Options{Pattern: dsgl.DMesh, Density: 0.10})
		if err != nil {
			return err
		}
		rep, err := model.Evaluate(test)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %12s %12.3e %14.3g\n", name, "DS-GL", rep.RMSE, rep.MeanLatencyUs)
	}
	return nil
}

// bestOf returns the minimum of a metric accumulator set; helper shared by
// tests.
func bestOf(vals []float64) float64 {
	s := metrics.Summarize(vals)
	return s.Min
}
