package experiments

import (
	"fmt"
	"io"

	"dsgl"
	"dsgl/internal/datasets"
)

// Fig11 reproduces the accuracy-vs-latency study: the best RMSE obtainable
// within a given inference-latency budget, per dataset. Short budgets force
// the DS-GL-Spatial regime (or truncated annealing); longer budgets allow
// Temporal & Spatial co-annealing at higher coupling density to finish,
// improving accuracy until the curve flattens past its knee.
func Fig11(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Fig. 11 — best RMSE vs inference latency budget")

	budgets := []float64{200, 500, 1000, 2000, 5000, 15000} // ns
	// Candidate operating points: the spatial variant (fast, lossy) and
	// temporal variants at rising density (slower, more accurate).
	type point struct {
		name             string
		density          float64
		temporalDisabled bool
		lanes            int
	}
	points := []point{
		{"spatial d=0.05", 0.05, true, 8},
		{"temporal d=0.05", 0.05, false, 8},
		{"temporal d=0.10", 0.10, false, 8},
		{"temporal d=0.15", 0.15, false, 8},
	}

	for _, name := range cfg.datasetNames() {
		ds := cfg.dataset(name)
		test := cfg.testWindows(ds)
		dense, err := dsgl.TrainDense(ds, dsgl.Options{Seed: cfg.Seed + 11})
		if err != nil {
			return err
		}

		// Evaluate every operating point per budget; report the best RMSE
		// achieved within each latency budget. The point x budget grid
		// fans across the worker pool — every cell trains and evaluates
		// an independent model.
		type meas struct {
			rmse, latencyUs float64
		}
		results := make([]meas, len(points)*len(budgets)) // pi*len(budgets)+bi
		err = parallelForEach(cfg.Parallelism, len(results), func(cell int) error {
			p := points[cell/len(budgets)]
			budget := budgets[cell%len(budgets)]
			model, err := cfg.dsglModel(ds, dsgl.Options{
				Pattern:          dsgl.DMesh,
				Density:          p.density,
				Lanes:            p.lanes,
				TemporalDisabled: p.temporalDisabled,
				MaxInferNs:       budget,
				DenseInit:        dense,
			})
			if err != nil {
				return err
			}
			rep, err := model.Evaluate(test)
			if err != nil {
				return err
			}
			results[cell] = meas{rep.RMSE, rep.MeanLatencyUs}
			return nil
		})
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "\n%s:\n%12s %12s\n", name, "latency(us)", "best RMSE")
		for bi, budget := range budgets {
			best := 0.0
			for pi := range points {
				m := results[pi*len(budgets)+bi]
				if m.latencyUs*1000 <= budget+1 && (best == 0 || m.rmse < best) {
					best = m.rmse
				}
			}
			if best == 0 {
				fmt.Fprintf(w, "%12.2f %12s\n", budget/1000, "-")
				continue
			}
			fmt.Fprintf(w, "%12.2f %12.4g\n", budget/1000, best)
		}
	}
	return nil
}

// datasetsForFig11 is exported for tests: the harness covers all seven
// workloads by default but tests shrink it.
func datasetsForFig11() []string { return datasets.Names() }
