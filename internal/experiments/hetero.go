package experiments

import (
	"fmt"
	"io"

	"dsgl"
	"dsgl/internal/datasets"
)

// heteroClasses is the K the decomposed column trains with — matching the
// three planted dynamical families of the heteromix/heterokinetics/
// heteroflow generators (and dsgl.Options' default for Decompose).
const heteroClasses = 3

// Hetero compares monolithic against heterogeneously decomposed training
// (ROADMAP item 5) on every multi-feature workload: the two Table IV
// datasets plus the synthetic heterogeneous generators whose nodes follow
// genuinely different dynamics. For each dataset it trains the standard
// pipeline twice — once monolithic, once with Options.Decompose and K=3
// learned interaction classes — and reports test RMSE and inference
// latency side by side, plus how the class assignment split the nodes.
// The decomposition is a block-diagonal Gram approximation, so it acts as
// a structural regularizer: it should help where the planted classes are
// real (the hetero* generators) and cost little where they are not.
func Hetero(cfg Config, w io.Writer) error {
	cfg.fillDefaults()
	header(w, "Heterogeneous decomposition — monolithic vs per-class blocks")

	fmt.Fprintf(w, "%-15s %-11s %8s %12s %14s   %s\n",
		"dataset", "pipeline", "classes", "RMSE", "latency(us)", "class sizes")
	for _, name := range datasets.MultiNames() {
		ds := cfg.dataset(name)
		test := cfg.testWindows(ds)

		mono, err := cfg.dsglModel(ds, dsgl.Options{Pattern: dsgl.DMesh, Density: 0.10})
		if err != nil {
			return err
		}
		monoRep, err := mono.Evaluate(test)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-15s %-11s %8s %12.3e %14.3g   %s\n",
			name, "monolithic", "-", monoRep.RMSE, monoRep.MeanLatencyUs, "-")

		dec, err := cfg.dsglModel(ds, dsgl.Options{
			Pattern: dsgl.DMesh, Density: 0.10,
			Decompose: true, Classes: heteroClasses,
		})
		if err != nil {
			return err
		}
		decRep, err := dec.Evaluate(test)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-15s %-11s %8d %12.3e %14.3g   %s\n",
			name, "decomposed", heteroClasses, decRep.RMSE, decRep.MeanLatencyUs, classSizes(dec.Classes, heteroClasses))
	}
	return nil
}

// classSizes renders the per-class node counts of a learned assignment,
// e.g. "14/10/8".
func classSizes(labels []int, k int) string {
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	out := ""
	for i, c := range counts {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("%d", c)
	}
	return out
}
