package verify

import (
	"fmt"
	"io"
)

// Violation describes one failed invariant check.
type Violation struct {
	// Invariant is the stable identifier of the violated contract (one of
	// the Inv* constants).
	Invariant string
	// Detail is a human-readable description of the divergence.
	Detail string
}

// Check is the outcome of verifying one invariant.
type Check struct {
	// Invariant is the stable identifier (one of the Inv* constants).
	Invariant string
	// Name is the human-readable title shown by the CLI.
	Name string
	// Skipped marks a check whose precondition did not apply (e.g. no
	// settled probe window to verify the residual on). A skipped check has
	// no violations and does not fail the report, but is reported as such.
	Skipped bool
	// Detail summarizes what was checked (probe count, tolerances) or why
	// the check was skipped.
	Detail string
	// Violations lists every divergence found; empty means the invariant
	// held.
	Violations []Violation
}

// Passed reports whether the check ran and found no violation.
func (c *Check) Passed() bool { return !c.Skipped && len(c.Violations) == 0 }

// Report is the structured outcome of an invariant-verification run.
type Report struct {
	// Target names what was verified (typically the dataset).
	Target string
	// Checks holds one entry per invariant, in contract order.
	Checks []Check
}

// Add appends a check outcome.
func (r *Report) Add(c Check) { r.Checks = append(r.Checks, c) }

// Ok reports whether no check found a violation.
func (r *Report) Ok() bool {
	for i := range r.Checks {
		if len(r.Checks[i].Violations) > 0 {
			return false
		}
	}
	return true
}

// Violations flattens every check's violations.
func (r *Report) Violations() []Violation {
	var out []Violation
	for i := range r.Checks {
		out = append(out, r.Checks[i].Violations...)
	}
	return out
}

// Fprint renders the report for terminals: one status line per invariant,
// then any violations indented beneath it.
func (r *Report) Fprint(w io.Writer) {
	for i := range r.Checks {
		c := &r.Checks[i]
		status := "PASS"
		switch {
		case c.Skipped:
			status = "SKIP"
		case len(c.Violations) > 0:
			status = "FAIL"
		}
		fmt.Fprintf(w, "  %-4s %-20s %s", status, c.Invariant, c.Name)
		if c.Detail != "" {
			fmt.Fprintf(w, " — %s", c.Detail)
		}
		fmt.Fprintln(w)
		for _, v := range c.Violations {
			fmt.Fprintf(w, "       ! %s\n", v.Detail)
		}
	}
}
