// Package verify is the invariant-verification layer of the DS-GL
// reproduction: small, composable checkers for the ten contracts the
// system claims (paper Sec. III, Eqs. 6-8), plus the structured report
// they feed.
//
// The ten invariants, as checked by dsgl.(*Model).Verify and the
// `dsgl verify` CLI subcommand:
//
//  1. energy-descent      — the Lyapunov-designed dynamics anneal with
//     monotone (ripple-bounded) energy descent;
//  2. settle-residual     — whenever an inference reports Settled, the true
//     equilibrium residual max |dσ/dt| is below the machine's settle bound
//     (the fixed point σ_i = -Σ J_ij σ_j / h_i holds);
//  3. snapshot-round-trip — a model survives Save/Load bit-identically:
//     same compilation stats, same effective coupling matrix, same
//     inference results on a probe window;
//  4. seq-par-identity    — Evaluate and EvaluateParallel (and InferBatch
//     vs sequential InferSeeded) are bit-identical for any worker count;
//  5. lossless-compile    — when no coupling is dropped, the compiled
//     machine realizes exactly the tuned J (EffectiveJ == Tuned.J);
//  6. plan-naive-identity — the clamp-plan compiled inference path (constant
//     clamp currents folded, free-row kernels) returns Results bit-identical
//     to the naive re-evaluate-everything reference loop;
//  7. sharded-fixed-point — the community-sharded parallel anneal (stale
//     cross-shard couplings refreshed every sync interval) settles to the
//     same equilibrium as the exact sequential anneal, node-wise within the
//     tolerance the settle-residual bound implies. Unlike 4 and 6 this is a
//     tolerance contract, not bit-identity: the sharded kernel sums each
//     row's couplings in a different grouping, so IEEE-754 non-associativity
//     already perturbs the trajectory at the first step;
//  8. warm-start-fixed-point — a warm-started streaming tick (free nodes
//     initialized from the previous tick's equilibrium instead of a fresh
//     random draw; see engine.Stream) settles to the same fixed point as a
//     cold inference of the same window. Like 7 this is a tolerance
//     contract: the clamped dynamics have a unique attracting equilibrium,
//     so the init only moves where the trajectory starts, never where it
//     ends — but the two trajectories differ, so the settled states agree
//     only within the settle-residual bracket, not bit-for-bit;
//  9. opt-best-energy-monotone — a multi-restart combinatorial solve
//     (engine.OptEngine over an ising.Solver) reports an internally
//     consistent run: the best-energy-so-far trace is the exact running
//     minimum of the per-restart energies (hence non-increasing), the
//     reported best matches both the trace floor and its restart's energy,
//     and recomputing the Hamiltonian at the reported best spins
//     reproduces the reported energy bit-for-bit. Checked at two worker
//     counts, whose runs must also be bit-identical (the optimization
//     face of invariant 4's determinism contract);
//  10. decomposed-k1-identity — heterogeneous decomposition with a single
//     interaction class (Options.Decompose, Classes=1) reproduces the
//     monolithic fit bit-for-bit: same tuned J and h, and bit-identical
//     probe inference. The block-structured solves collapse to the full
//     Gram at K=1 (train.BlockRidge vs RidgeInit), the class-refined
//     partition is the Louvain partition label-for-label, and everything
//     downstream is deterministic — so any divergence is a real defect in
//     the decomposition plumbing, never numerical slack.
//
// The package deliberately contains no pipeline logic: it consumes
// machines, results, and energy traces produced by the caller, so the same
// checkers serve the public API, the CLI, and the unit tests of the
// subsystems they guard.
package verify

import (
	"fmt"
	"math"

	"dsgl/internal/engine"
	"dsgl/internal/mat"
	"dsgl/internal/scalable"
)

// Invariant identifiers, stable across report formats.
const (
	InvEnergyDescent       = "energy-descent"
	InvSettleResidual      = "settle-residual"
	InvSnapshotRoundTrip   = "snapshot-round-trip"
	InvSeqParIdentity      = "seq-par-identity"
	InvLosslessCompile     = "lossless-compile"
	InvPlanNaiveIdentity   = "plan-naive-identity"
	InvShardedFixedPoint   = "sharded-fixed-point"
	InvWarmStartFixedPoint = "warm-start-fixed-point"

	InvOptBestEnergyMonotone = "opt-best-energy-monotone"

	InvDecomposedK1Identity = "decomposed-k1-identity"
)

// maxViolationsPerCheck caps the per-check violation list; overflow is
// summarized in one trailing violation so a badly broken run stays
// readable.
const maxViolationsPerCheck = 8

// DescentTol bounds the energy increases MonotoneDescent tolerates.
type DescentTol struct {
	// Abs is an absolute per-step increase allowance (floating-point and
	// forward-Euler discretization slack).
	Abs float64
	// Rel scales with the trace's dynamic range: a step may rise by at most
	// Abs + Rel*(max-min). Temporal+spatial co-annealing carries
	// sample-and-hold ripple, so multiplexed machines verify with a nonzero
	// Rel while single-slice machines use a strict one.
	Rel float64
	// NetRel bounds the full-trace drift: the final energy must not exceed
	// the initial one by more than Abs + NetRel*(max-min). Zero means the
	// final energy must be <= the initial one (plus Abs).
	NetRel float64
}

// MonotoneDescent checks that an energy trace descends monotonically up to
// the given ripple tolerance, and that the trace ends no higher than it
// began. The trace is whatever the caller sampled — per integration step
// via a StepObserver, or downsampled to one point per slice cycle.
func MonotoneDescent(energies []float64, tol DescentTol) []Violation {
	if len(energies) < 2 {
		return nil
	}
	lo, hi := energies[0], energies[0]
	for _, e := range energies[1:] {
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	span := hi - lo
	allow := tol.Abs + tol.Rel*span
	var v []Violation
	overflow := 0
	for k := 1; k < len(energies); k++ {
		rise := energies[k] - energies[k-1]
		if rise <= allow {
			continue
		}
		if len(v) < maxViolationsPerCheck {
			v = append(v, Violation{
				Invariant: InvEnergyDescent,
				Detail: fmt.Sprintf("energy rose %.3g (allowed %.3g) at trace point %d: %.6g -> %.6g",
					rise, allow, k, energies[k-1], energies[k]),
			})
		} else {
			overflow++
		}
	}
	if overflow > 0 {
		v = append(v, Violation{
			Invariant: InvEnergyDescent,
			Detail:    fmt.Sprintf("... and %d more ripple violations", overflow),
		})
	}
	if net := energies[len(energies)-1] - energies[0]; net > tol.Abs+tol.NetRel*span {
		v = append(v, Violation{
			Invariant: InvEnergyDescent,
			Detail: fmt.Sprintf("net energy ascent over the anneal: %.6g -> %.6g (drift %.3g, allowed %.3g)",
				energies[0], energies[len(energies)-1], net, tol.Abs+tol.NetRel*span),
		})
	}
	return v
}

// ResidualChecker is the backend surface the settle-residual check needs:
// the true equilibrium residual at a state and the bound a Settled result
// guarantees. Both *scalable.Machine and *dspu.DSPU implement it.
type ResidualChecker interface {
	ResidualAt(x []float64, clamped []bool) (float64, error)
	SettleResidualTol() float64
}

// SettledResidual checks invariant 2 on one inference outcome: a Settled
// result must sit within the backend's full-residual settle bound. A
// non-settled result makes no equilibrium claim and passes vacuously.
func SettledResidual(m ResidualChecker, res *engine.Result, clamped []bool) []Violation {
	if !res.Settled {
		return nil
	}
	r, err := m.ResidualAt(res.Voltage, clamped)
	if err != nil {
		return []Violation{{Invariant: InvSettleResidual, Detail: err.Error()}}
	}
	if tol := m.SettleResidualTol(); r >= tol {
		return []Violation{{
			Invariant: InvSettleResidual,
			Detail:    fmt.Sprintf("Settled reported but equilibrium residual %.3g >= bound %.3g", r, tol),
		}}
	}
	return nil
}

// MachinesEquivalent checks that two compiled machines are observationally
// identical: same compilation statistics and bit-identical effective
// coupling matrices. It is the static half of invariant 3; the dynamic half
// compares probe-window inference results via ResultsEqual.
func MachinesEquivalent(invariant string, a, b *scalable.Machine) []Violation {
	var v []Violation
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		v = append(v, Violation{
			Invariant: invariant,
			Detail:    fmt.Sprintf("compilation stats diverge: %+v vs %+v", sa, sb),
		})
	}
	v = append(v, DenseEqual(invariant, "EffectiveJ", a.EffectiveJ(), b.EffectiveJ())...)
	return v
}

// DenseEqual checks two dense matrices for bit-identity.
func DenseEqual(invariant, what string, a, b *mat.Dense) []Violation {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return []Violation{{
			Invariant: invariant,
			Detail:    fmt.Sprintf("%s shape diverges: %dx%d vs %dx%d", what, a.Rows, a.Cols, b.Rows, b.Cols),
		}}
	}
	var v []Violation
	overflow := 0
	for i := range a.Data {
		if a.Data[i] == b.Data[i] || (math.IsNaN(a.Data[i]) && math.IsNaN(b.Data[i])) {
			continue
		}
		if len(v) < maxViolationsPerCheck {
			v = append(v, Violation{
				Invariant: invariant,
				Detail: fmt.Sprintf("%s[%d,%d] diverges: %v vs %v",
					what, i/a.Cols, i%a.Cols, a.Data[i], b.Data[i]),
			})
		} else {
			overflow++
		}
	}
	if overflow > 0 {
		v = append(v, Violation{
			Invariant: invariant,
			Detail:    fmt.Sprintf("... and %d more %s divergences", overflow, what),
		})
	}
	return v
}

// VectorsEqual checks two float vectors for bit-identity (NaN equals NaN,
// matching DenseEqual's convention). what names the vector in violation
// details (e.g. "Tuned.H").
func VectorsEqual(invariant, what string, a, b []float64) []Violation {
	if len(a) != len(b) {
		return []Violation{{
			Invariant: invariant,
			Detail:    fmt.Sprintf("%s length diverges: %d vs %d", what, len(a), len(b)),
		}}
	}
	var v []Violation
	overflow := 0
	for i := range a {
		if a[i] == b[i] || (math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			continue
		}
		if len(v) < maxViolationsPerCheck {
			v = append(v, Violation{
				Invariant: invariant,
				Detail:    fmt.Sprintf("%s[%d] diverges: %v vs %v", what, i, a[i], b[i]),
			})
		} else {
			overflow++
		}
	}
	if overflow > 0 {
		v = append(v, Violation{
			Invariant: invariant,
			Detail:    fmt.Sprintf("... and %d more %s divergences", overflow, what),
		})
	}
	return v
}

// ResultsEqual checks two inference results for bit-identity: voltages,
// latency accounting, settle flag, switch and step counts, final energy,
// and settle residual. label names the pair in violation details (e.g.
// "window 3").
// Results come from any engine backend (scalable or dense).
func ResultsEqual(invariant, label string, a, b *engine.Result) []Violation {
	var v []Violation
	add := func(format string, args ...any) {
		v = append(v, Violation{Invariant: invariant, Detail: label + ": " + fmt.Sprintf(format, args...)})
	}
	if len(a.Voltage) != len(b.Voltage) {
		add("voltage length diverges: %d vs %d", len(a.Voltage), len(b.Voltage))
		return v
	}
	diverged := 0
	first := -1
	for i := range a.Voltage {
		if a.Voltage[i] != b.Voltage[i] {
			if first < 0 {
				first = i
			}
			diverged++
		}
	}
	if diverged > 0 {
		add("%d voltages diverge (first at node %d: %v vs %v)",
			diverged, first, a.Voltage[first], b.Voltage[first])
	}
	if a.LatencyNs != b.LatencyNs {
		add("latency diverges: %v vs %v ns", a.LatencyNs, b.LatencyNs)
	}
	if a.AnnealNs != b.AnnealNs {
		add("anneal time diverges: %v vs %v ns", a.AnnealNs, b.AnnealNs)
	}
	if a.Settled != b.Settled {
		add("settle flag diverges: %v vs %v", a.Settled, b.Settled)
	}
	if a.Switches != b.Switches {
		add("switch count diverges: %d vs %d", a.Switches, b.Switches)
	}
	if a.Steps != b.Steps {
		add("step count diverges: %d vs %d", a.Steps, b.Steps)
	}
	if a.Energy != b.Energy && !(math.IsNaN(a.Energy) && math.IsNaN(b.Energy)) {
		add("final energy diverges: %v vs %v", a.Energy, b.Energy)
	}
	if a.Residual != b.Residual && !(math.IsNaN(a.Residual) && math.IsNaN(b.Residual)) {
		add("settle residual diverges: %v vs %v", a.Residual, b.Residual)
	}
	return v
}

// ShardedFixedPoint checks invariant 7 on one probe: a sharded anneal that
// settles must sit at the same fixed point as the settled exact reference,
// node-wise within tol (the caller derives tol from the settle-residual
// bound and the field strengths — both states carry residual < bound, so
// they bracket the unique equilibrium). An exact reference that did not
// settle makes no fixed-point claim and passes vacuously; an exact settle
// the sharded path fails to reproduce is itself a violation — stale
// cross-shard couplings may slow convergence, never prevent it, within the
// same time budget the ShardSync interval was sized for.
func ShardedFixedPoint(label string, exact, sharded *engine.Result, tol float64) []Violation {
	return fixedPointWithin(InvShardedFixedPoint, label, "exact", "sharded", exact, sharded, tol,
		fmt.Sprintf("exact anneal settled but sharded anneal did not (residual %.3g after %d sync rounds)",
			sharded.Residual, sharded.Switches))
}

// WarmStartFixedPoint checks invariant 8 on one streaming tick: a
// warm-started anneal that settles must sit at the same fixed point as the
// settled cold inference of the same window, node-wise within tol (derived
// from the settle-residual bound exactly as for invariant 7 — both states
// carry residual < bound around the unique clamped equilibrium). A cold
// reference that did not settle makes no fixed-point claim and passes
// vacuously; a cold settle the warm tick fails to reproduce is itself a
// violation — starting nearer the equilibrium may shorten the anneal, never
// derail it.
func WarmStartFixedPoint(label string, cold, warm *engine.Result, tol float64) []Violation {
	return fixedPointWithin(InvWarmStartFixedPoint, label, "cold", "warm", cold, warm, tol,
		fmt.Sprintf("cold anneal settled but warm-started anneal did not (residual %.3g after %d steps)",
			warm.Residual, warm.Steps))
}

// fixedPointWithin is the node-wise comparison behind the fixed-point
// tolerance invariants (7 and 8): a settled reference and a settled
// candidate must agree within tol; notSettled is the violation detail when
// the candidate failed to settle at all.
func fixedPointWithin(invariant, label, refName, gotName string, ref, got *engine.Result, tol float64, notSettled string) []Violation {
	add := func(format string, args ...any) Violation {
		return Violation{Invariant: invariant, Detail: label + ": " + fmt.Sprintf(format, args...)}
	}
	if !ref.Settled {
		return nil
	}
	if !got.Settled {
		return []Violation{add("%s", notSettled)}
	}
	if len(ref.Voltage) != len(got.Voltage) {
		return []Violation{add("voltage length diverges: %d vs %d", len(ref.Voltage), len(got.Voltage))}
	}
	var v []Violation
	overflow := 0
	for i := range ref.Voltage {
		d := math.Abs(ref.Voltage[i] - got.Voltage[i])
		if d <= tol || (math.IsNaN(ref.Voltage[i]) && math.IsNaN(got.Voltage[i])) {
			continue
		}
		if len(v) < maxViolationsPerCheck {
			v = append(v, add("node %d: %s %v vs %s %v (|Δ|=%.3g > tol %.3g)",
				i, refName, ref.Voltage[i], gotName, got.Voltage[i], d, tol))
		} else {
			overflow++
		}
	}
	if overflow > 0 {
		v = append(v, add("... and %d more node divergences", overflow))
	}
	return v
}

// LosslessCompilation checks invariant 5: when the compilation dropped no
// coupling, the machine's effective coupling matrix must equal the tuned J
// bit-for-bit. With DroppedCouplings > 0 (the DS-GL-Spatial variant
// overflowing its lane budget) the invariant does not apply and the check
// passes vacuously.
func LosslessCompilation(m *scalable.Machine, tunedJ *mat.Dense) []Violation {
	if m.Stats().DroppedCouplings > 0 {
		return nil
	}
	return DenseEqual(InvLosslessCompile, "EffectiveJ vs Tuned.J", m.EffectiveJ(), tunedJ)
}

// OptBestEnergyMonotone checks invariant 9 on one multi-restart solve:
// BestTrace must be the exact running minimum of Energies (non-increasing
// by construction), the reported Best must agree with both the trace floor
// and its restart's recorded energy, and energyOf — the backend's
// Hamiltonian — must reproduce Best.Energy from Best.Spins bit-for-bit.
// label names the run in violation details (e.g. "workers=4").
func OptBestEnergyMonotone(label string, run *engine.OptRun, energyOf func([]int8) float64) []Violation {
	add := func(format string, args ...any) Violation {
		return Violation{Invariant: InvOptBestEnergyMonotone, Detail: label + ": " + fmt.Sprintf(format, args...)}
	}
	if run == nil || run.Best == nil {
		return []Violation{add("run has no best result")}
	}
	if len(run.Energies) != run.Restarts || len(run.BestTrace) != run.Restarts {
		return []Violation{add("trace lengths %d/%d do not match %d restarts",
			len(run.Energies), len(run.BestTrace), run.Restarts)}
	}
	var v []Violation
	overflow := 0
	best := math.Inf(1)
	bestIdx := -1
	for i, e := range run.Energies {
		if e < best {
			best = e
			bestIdx = i
		}
		ok := run.BestTrace[i] == best
		if i > 0 && run.BestTrace[i] > run.BestTrace[i-1] {
			ok = false
		}
		if ok {
			continue
		}
		if len(v) < maxViolationsPerCheck {
			v = append(v, add("BestTrace[%d] = %.17g, want running min %.17g", i, run.BestTrace[i], best))
		} else {
			overflow++
		}
	}
	if overflow > 0 {
		v = append(v, add("... and %d more trace divergences", overflow))
	}
	if bestIdx >= 0 && run.BestRestart != bestIdx {
		v = append(v, add("BestRestart = %d, want earliest minimum %d", run.BestRestart, bestIdx))
	}
	if run.Best.Energy != best {
		v = append(v, add("Best.Energy = %.17g, want trace floor %.17g", run.Best.Energy, best))
	}
	if run.BestRestart >= 0 && run.BestRestart < len(run.Energies) &&
		run.Energies[run.BestRestart] != run.Best.Energy {
		v = append(v, add("Energies[%d] = %.17g != Best.Energy %.17g",
			run.BestRestart, run.Energies[run.BestRestart], run.Best.Energy))
	}
	if got := energyOf(run.Best.Spins); got != run.Best.Energy {
		v = append(v, add("recomputed Hamiltonian %.17g != reported Best.Energy %.17g", got, run.Best.Energy))
	}
	return v
}

// OptRunsIdentical checks that two multi-restart solves of the same
// problem — typically at different worker counts — are bit-identical:
// same per-restart energies, same best restart, same best spins.
func OptRunsIdentical(label string, a, b *engine.OptRun) []Violation {
	add := func(format string, args ...any) Violation {
		return Violation{Invariant: InvOptBestEnergyMonotone, Detail: label + ": " + fmt.Sprintf(format, args...)}
	}
	if a == nil || b == nil || a.Best == nil || b.Best == nil {
		return []Violation{add("run missing a best result")}
	}
	var v []Violation
	if a.Restarts != b.Restarts {
		return append(v, add("restart counts differ: %d vs %d", a.Restarts, b.Restarts))
	}
	for i := range a.Energies {
		if a.Energies[i] != b.Energies[i] {
			v = append(v, add("Energies[%d] differ: %.17g vs %.17g", i, a.Energies[i], b.Energies[i]))
			if len(v) >= maxViolationsPerCheck {
				break
			}
		}
	}
	if a.BestRestart != b.BestRestart {
		v = append(v, add("BestRestart differs: %d vs %d", a.BestRestart, b.BestRestart))
	}
	for i := range a.Best.Spins {
		if i < len(b.Best.Spins) && a.Best.Spins[i] != b.Best.Spins[i] {
			v = append(v, add("Best.Spins[%d] differ: %d vs %d", i, a.Best.Spins[i], b.Best.Spins[i]))
			break
		}
	}
	return v
}
