package verify

import (
	"math"
	"strings"
	"testing"

	"dsgl/internal/community"
	"dsgl/internal/engine"
	"dsgl/internal/mat"
	"dsgl/internal/pattern"
	"dsgl/internal/rng"
	"dsgl/internal/scalable"
	"dsgl/internal/train"
)

func TestMonotoneDescentCleanTrace(t *testing.T) {
	trace := []float64{5, 4, 3.2, 2.9, 2.9, 2.85}
	if v := MonotoneDescent(trace, DescentTol{Abs: 1e-12}); len(v) != 0 {
		t.Fatalf("clean descent flagged: %v", v)
	}
}

func TestMonotoneDescentFlagsRise(t *testing.T) {
	trace := []float64{5, 4, 4.5, 3}
	v := MonotoneDescent(trace, DescentTol{Abs: 1e-12})
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %d: %v", len(v), v)
	}
	if !strings.Contains(v[0].Detail, "trace point 2") {
		t.Fatalf("violation should name trace point 2: %s", v[0].Detail)
	}
}

func TestMonotoneDescentRippleTolerance(t *testing.T) {
	// 0.5 rise on a span of 4: within Rel=0.2 (allow 0.8), outside Rel=0.1.
	trace := []float64{5, 4, 4.5, 1}
	if v := MonotoneDescent(trace, DescentTol{Rel: 0.2}); len(v) != 0 {
		t.Fatalf("ripple within tolerance flagged: %v", v)
	}
	if v := MonotoneDescent(trace, DescentTol{Rel: 0.1}); len(v) == 0 {
		t.Fatal("ripple beyond tolerance not flagged")
	}
}

func TestMonotoneDescentNetAscent(t *testing.T) {
	// Every step within ripple tolerance, but the trace ends above start.
	trace := []float64{1, 1.3, 1.6, 1.9}
	v := MonotoneDescent(trace, DescentTol{Rel: 0.5})
	if len(v) == 0 {
		t.Fatal("net ascent not flagged")
	}
	if !strings.Contains(v[len(v)-1].Detail, "net energy ascent") {
		t.Fatalf("want net-ascent violation, got %v", v)
	}
}

func TestMonotoneDescentCapsViolations(t *testing.T) {
	trace := make([]float64, 64)
	for i := range trace {
		trace[i] = float64(i % 2) // sawtooth: a rise every other step
	}
	v := MonotoneDescent(trace, DescentTol{})
	// maxViolationsPerCheck itemized + 1 overflow summary + 1 is absorbed
	// into net-ascent only when the ends differ (they don't here: 0 -> 1).
	if len(v) > maxViolationsPerCheck+2 {
		t.Fatalf("violation list not capped: %d entries", len(v))
	}
	found := false
	for _, one := range v {
		if strings.Contains(one.Detail, "more ripple violations") {
			found = true
		}
	}
	if !found {
		t.Fatalf("overflow summary missing: %v", v)
	}
}

func TestDenseEqual(t *testing.T) {
	a := mat.NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := mat.NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	if v := DenseEqual("x", "J", a, b); len(v) != 0 {
		t.Fatalf("identical matrices flagged: %v", v)
	}
	b.Set(1, 0, 3+1e-15)
	if v := DenseEqual("x", "J", a, b); len(v) != 1 {
		t.Fatalf("1-ulp divergence must be flagged exactly once, got %v", v)
	}
	c := mat.NewDense(2, 3)
	if v := DenseEqual("x", "J", a, c); len(v) != 1 || !strings.Contains(v[0].Detail, "shape") {
		t.Fatalf("shape divergence not flagged: %v", v)
	}
	// NaN == NaN for bit-identity purposes.
	a.Set(0, 0, math.NaN())
	d := mat.NewDenseFrom(2, 2, []float64{math.NaN(), 2, 3, 4})
	if v := DenseEqual("x", "J", a, d); len(v) != 0 {
		t.Fatalf("NaN pair flagged: %v", v)
	}
}

func TestResultsEqual(t *testing.T) {
	a := &scalable.Result{Voltage: []float64{1, 2}, LatencyNs: 10, AnnealNs: 9, Settled: true, Switches: 3, Energy: -1}
	b := &scalable.Result{Voltage: []float64{1, 2}, LatencyNs: 10, AnnealNs: 9, Settled: true, Switches: 3, Energy: -1}
	if v := ResultsEqual("x", "w0", a, b); len(v) != 0 {
		t.Fatalf("identical results flagged: %v", v)
	}
	b.Voltage[1] = 2.0000001
	b.Settled = false
	v := ResultsEqual("x", "w0", a, b)
	if len(v) != 2 {
		t.Fatalf("want voltage + settled violations, got %v", v)
	}
	for _, one := range v {
		if !strings.HasPrefix(one.Detail, "w0: ") {
			t.Fatalf("violation missing label: %s", one.Detail)
		}
	}
}

// testMachine compiles a small random system for the machine-level checks.
func testMachine(t *testing.T, cfg scalable.Config) (*scalable.Machine, *train.Params) {
	t.Helper()
	const gw, gh, cap = 2, 2, 4
	n := gw * gh * cap
	a := &community.Assignment{
		PEOf:     make([]int, n),
		NodesOf:  make([][]int, gw*gh),
		GridW:    gw,
		GridH:    gh,
		Capacity: cap,
	}
	for i := 0; i < n; i++ {
		pe := i / cap
		a.PEOf[i] = pe
		a.NodesOf[pe] = append(a.NodesOf[pe], i)
	}
	r := rng.New(11)
	j := mat.NewDense(n, n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y && r.Float64() < 0.4 {
				j.Set(x, y, r.NormScaled(0, 0.1))
			}
		}
	}
	mask, _ := pattern.BuildMask(a, j, pattern.Config{Kind: pattern.DMesh, Wormholes: 2})
	j.ApplyMask(mask)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	p := &train.Params{J: j, H: h}
	m, err := scalable.Build(p, a, mask, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestMachinesEquivalentSelf(t *testing.T) {
	m, _ := testMachine(t, scalable.Config{Lanes: 30, MaxTimeNs: 500})
	if v := MachinesEquivalent(InvSnapshotRoundTrip, m, m); len(v) != 0 {
		t.Fatalf("machine not equivalent to itself: %v", v)
	}
}

func TestMachinesEquivalentDetectsDivergence(t *testing.T) {
	a, _ := testMachine(t, scalable.Config{Lanes: 30, MaxTimeNs: 500})
	b, _ := testMachine(t, scalable.Config{Lanes: 2, MaxTimeNs: 500}) // forces temporal mode
	if v := MachinesEquivalent(InvSnapshotRoundTrip, a, b); len(v) == 0 {
		t.Fatal("diverging machines reported equivalent")
	}
}

func TestLosslessCompilation(t *testing.T) {
	m, p := testMachine(t, scalable.Config{Lanes: 30, MaxTimeNs: 500})
	if v := LosslessCompilation(m, p.J); len(v) != 0 {
		t.Fatalf("lossless compilation flagged: %v", v)
	}
	// A machine that dropped couplings (TemporalDisabled with a starved
	// lane budget) passes vacuously even though EffectiveJ != J.
	dropped, dp := testMachine(t, scalable.Config{Lanes: 1, MaxTimeNs: 500, TemporalDisabled: true})
	if dropped.Stats().DroppedCouplings == 0 {
		t.Skip("config did not force drops; adjust the test system")
	}
	if v := LosslessCompilation(dropped, dp.J); len(v) != 0 {
		t.Fatalf("dropped-coupling machine must pass vacuously: %v", v)
	}
	// But a lossless machine with a tampered reference J must fail.
	tampered := p.J.Clone()
	tampered.Set(0, 1, tampered.At(0, 1)+0.5)
	if v := LosslessCompilation(m, tampered); len(v) == 0 {
		t.Fatal("tampered J not flagged")
	}
}

func TestSettledResidualOnRealAnneal(t *testing.T) {
	m, _ := testMachine(t, scalable.Config{Lanes: 30, MaxTimeNs: 5000})
	obs := []scalable.Observation{{Index: 0, Value: 0.4}, {Index: 5, Value: -0.3}}
	res, err := m.InferSeeded(obs, 3)
	if err != nil {
		t.Fatal(err)
	}
	clamped := make([]bool, m.N)
	clamped[0], clamped[5] = true, true
	if v := SettledResidual(m, res, clamped); len(v) != 0 {
		t.Fatalf("settled anneal violates residual bound: %v", v)
	}
	// A corrupted "settled" state must be flagged.
	bad := *res
	bad.Voltage = append([]float64(nil), res.Voltage...)
	for i := range bad.Voltage {
		if !clamped[i] {
			bad.Voltage[i] = 0.9
		}
	}
	bad.Settled = true
	if v := SettledResidual(m, &bad, clamped); len(v) == 0 {
		t.Fatal("corrupted settled state not flagged")
	}
}

func TestReportOkAndFprint(t *testing.T) {
	var r Report
	r.Target = "traffic"
	r.Add(Check{Invariant: InvEnergyDescent, Name: "monotone energy descent", Detail: "3 probes"})
	r.Add(Check{Invariant: InvSettleResidual, Name: "equilibrium residual", Skipped: true, Detail: "no settled probe"})
	if !r.Ok() {
		t.Fatal("report with pass+skip must be Ok")
	}
	r.Add(Check{
		Invariant:  InvSeqParIdentity,
		Name:       "sequential/parallel bit-identity",
		Violations: []Violation{{Invariant: InvSeqParIdentity, Detail: "boom"}},
	})
	if r.Ok() {
		t.Fatal("report with a violation must not be Ok")
	}
	if n := len(r.Violations()); n != 1 {
		t.Fatalf("want 1 flattened violation, got %d", n)
	}
	var sb strings.Builder
	r.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"PASS", "SKIP", "FAIL", "boom", InvEnergyDescent} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestShardedFixedPoint(t *testing.T) {
	exact := &engine.Result{Settled: true, Voltage: []float64{0.5, -0.25, 0.75}}
	agree := &engine.Result{Settled: true, Voltage: []float64{0.5 + 5e-5, -0.25, 0.75 - 5e-5}}
	if v := ShardedFixedPoint("p", exact, agree, 1e-4); len(v) != 0 {
		t.Fatalf("within-tol pair flagged: %v", v)
	}
	far := &engine.Result{Settled: true, Voltage: []float64{0.5, -0.25 + 1e-3, 0.75}}
	v := ShardedFixedPoint("p", exact, far, 1e-4)
	if len(v) != 1 || !strings.Contains(v[0].Detail, "node 1") {
		t.Fatalf("out-of-tol node not flagged: %v", v)
	}
	if v[0].Invariant != InvShardedFixedPoint {
		t.Fatalf("invariant id = %q", v[0].Invariant)
	}
	unsettled := &engine.Result{Settled: false, Voltage: exact.Voltage, Residual: 0.1, Switches: 3}
	if v := ShardedFixedPoint("p", exact, unsettled, 1e-4); len(v) != 1 ||
		!strings.Contains(v[0].Detail, "did not") {
		t.Fatalf("sharded non-settle not flagged: %v", v)
	}
	// No claim when the exact reference itself did not settle.
	if v := ShardedFixedPoint("p", unsettled, far, 1e-4); v != nil {
		t.Fatalf("vacuous case flagged: %v", v)
	}
	short := &engine.Result{Settled: true, Voltage: []float64{0.5}}
	if v := ShardedFixedPoint("p", exact, short, 1e-4); len(v) != 1 {
		t.Fatalf("length mismatch not flagged: %v", v)
	}
	// Violation capping: every node diverges, list stays bounded.
	n := 2 * maxViolationsPerCheck
	wideA := &engine.Result{Settled: true, Voltage: make([]float64, n)}
	wideB := &engine.Result{Settled: true, Voltage: make([]float64, n)}
	for i := range wideB.Voltage {
		wideB.Voltage[i] = 1
	}
	v = ShardedFixedPoint("p", wideA, wideB, 1e-4)
	if len(v) != maxViolationsPerCheck+1 {
		t.Fatalf("got %d violations, want %d capped + 1 summary", len(v), maxViolationsPerCheck+1)
	}
	if !strings.Contains(v[len(v)-1].Detail, "more node divergences") {
		t.Fatalf("missing overflow summary: %v", v[len(v)-1])
	}
}
