package ode

import (
	"math"
	"testing"
)

// decay is dx/dt = -k x with known solution x(t) = x0 e^{-kt}.
type decay struct{ k float64 }

func (d decay) Dim() int { return 1 }
func (d decay) Derivative(_ float64, x, dst []float64) {
	dst[0] = -d.k * x[0]
}

// oscillator is the harmonic oscillator x” = -x as a 2-D system, with
// conserved energy x² + v².
type oscillator struct{}

func (oscillator) Dim() int { return 2 }
func (oscillator) Derivative(_ float64, x, dst []float64) {
	dst[0] = x[1]
	dst[1] = -x[0]
}

func TestEulerDecay(t *testing.T) {
	sys := decay{k: 1}
	x := []float64{1}
	Run(NewEuler(), sys, 0, 0.001, 1000, x, nil)
	want := math.Exp(-1)
	if math.Abs(x[0]-want) > 1e-3 {
		t.Fatalf("Euler decay: got %g, want %g", x[0], want)
	}
}

func TestRK4Decay(t *testing.T) {
	sys := decay{k: 1}
	x := []float64{1}
	Run(NewRK4(), sys, 0, 0.01, 100, x, nil)
	want := math.Exp(-1)
	if math.Abs(x[0]-want) > 1e-8 {
		t.Fatalf("RK4 decay: got %g, want %g (err %g)", x[0], want, x[0]-want)
	}
}

func TestRK4OrderBeatsEuler(t *testing.T) {
	want := math.Exp(-1)
	xe := []float64{1}
	Run(NewEuler(), decay{k: 1}, 0, 0.01, 100, xe, nil)
	xr := []float64{1}
	Run(NewRK4(), decay{k: 1}, 0, 0.01, 100, xr, nil)
	errE := math.Abs(xe[0] - want)
	errR := math.Abs(xr[0] - want)
	if errR >= errE {
		t.Fatalf("RK4 error %g not better than Euler %g at same dt", errR, errE)
	}
}

func TestRK4OscillatorEnergy(t *testing.T) {
	x := []float64{1, 0}
	Run(NewRK4(), oscillator{}, 0, 0.01, 1000, x, nil)
	energy := x[0]*x[0] + x[1]*x[1]
	if math.Abs(energy-1) > 1e-6 {
		t.Fatalf("oscillator energy drifted to %g", energy)
	}
	// After t = 10 the exact solution is cos(10).
	if math.Abs(x[0]-math.Cos(10)) > 1e-5 {
		t.Fatalf("oscillator position %g, want %g", x[0], math.Cos(10))
	}
}

func TestRunObserveCount(t *testing.T) {
	count := 0
	x := []float64{1}
	final := Run(NewEuler(), decay{k: 1}, 0, 0.1, 7, x, func(tt float64, _ []float64) {
		count++
	})
	if count != 7 {
		t.Fatalf("observe called %d times, want 7", count)
	}
	if math.Abs(final-0.7) > 1e-12 {
		t.Fatalf("final time %g, want 0.7", final)
	}
}

func TestRunUntilStops(t *testing.T) {
	x := []float64{1}
	_, steps := RunUntil(NewEuler(), decay{k: 1}, 0, 0.01, 10000, x,
		func(_ float64, s []float64) bool { return s[0] < 0.5 })
	if steps >= 10000 {
		t.Fatal("RunUntil never stopped")
	}
	if x[0] >= 0.5 {
		t.Fatalf("stop condition not reached: x = %g", x[0])
	}
}

func TestRunUntilMaxSteps(t *testing.T) {
	x := []float64{1}
	_, steps := RunUntil(NewEuler(), decay{k: 1}, 0, 0.01, 5, x, nil)
	if steps != 5 {
		t.Fatalf("steps = %d, want 5", steps)
	}
}

func TestIntegratorNames(t *testing.T) {
	if NewEuler().Name() != "euler" || NewRK4().Name() != "rk4" {
		t.Fatal("integrator names changed")
	}
}

func TestEulerBufferReuseAcrossDims(t *testing.T) {
	// Using the same integrator for systems of different sizes must work.
	e := NewEuler()
	x1 := []float64{1}
	e.Step(decay{k: 1}, 0, 0.1, x1)
	x2 := []float64{1, 0}
	e.Step(oscillator{}, 0, 0.1, x2) // must not panic on size change
	if x2[0] == 1 && x2[1] == 0 {
		t.Fatal("state did not advance")
	}
}
