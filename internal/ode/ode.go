// Package ode provides fixed-step integrators for the circuit-level
// dynamical-system simulation. The paper evaluates DS-GL on a finite-element
// (FEA) software simulator of the chip's ODEs; this package is the
// equivalent integration core. Time is measured in nanoseconds throughout
// the repository, matching the paper's voltage-trace plots (Fig. 4) and
// latency axes (Fig. 11, Fig. 12).
package ode

// System is a first-order ODE dx/dt = f(t, x). Derivative writes dx/dt into
// dst; implementations must not retain dst or x.
type System interface {
	// Dim returns the state dimension.
	Dim() int
	// Derivative evaluates f(t, x) into dst. len(dst) == len(x) == Dim().
	Derivative(t float64, x, dst []float64)
}

// Integrator advances an ODE state by one fixed step.
type Integrator interface {
	// Step advances x in place from time t by dt and returns t+dt.
	Step(sys System, t, dt float64, x []float64) float64
	// Name identifies the method for reports and ablations.
	Name() string
}

// Cloner is implemented by integrators that carry internal scratch buffers
// (Euler, RK4). CloneIntegrator returns a fresh integrator of the same
// method with private scratch, so concurrent workers can step distinct
// states without sharing buffers.
type Cloner interface {
	CloneIntegrator() Integrator
}

// Clone returns a private copy of ig when it implements Cloner and ig
// itself otherwise. Integrators that do not implement Cloner must be
// stateless to be shared across goroutines.
func Clone(ig Integrator) Integrator {
	if c, ok := ig.(Cloner); ok {
		return c.CloneIntegrator()
	}
	return ig
}

// Euler is the forward Euler method. It is what an explicit circuit
// simulator with a small timestep effectively computes, and is the default
// integrator for annealing runs (the dynamics are strongly contractive, so
// first order suffices at dt ≲ 0.1 ns).
type Euler struct {
	buf []float64
}

// NewEuler returns a forward Euler integrator.
func NewEuler() *Euler { return &Euler{} }

// Name implements Integrator.
func (e *Euler) Name() string { return "euler" }

// CloneIntegrator implements Cloner.
func (e *Euler) CloneIntegrator() Integrator { return &Euler{} }

// Step implements Integrator.
func (e *Euler) Step(sys System, t, dt float64, x []float64) float64 {
	if len(e.buf) != len(x) {
		e.buf = make([]float64, len(x))
	}
	sys.Derivative(t, x, e.buf)
	for i, d := range e.buf {
		x[i] += dt * d
	}
	return t + dt
}

// RK4 is the classical fourth-order Runge-Kutta method, used in the
// integrator ablation to confirm the Euler results are step-size converged.
type RK4 struct {
	k1, k2, k3, k4, tmp []float64
}

// NewRK4 returns a fourth-order Runge-Kutta integrator.
func NewRK4() *RK4 { return &RK4{} }

// Name implements Integrator.
func (r *RK4) Name() string { return "rk4" }

// CloneIntegrator implements Cloner.
func (r *RK4) CloneIntegrator() Integrator { return &RK4{} }

// Step implements Integrator.
func (r *RK4) Step(sys System, t, dt float64, x []float64) float64 {
	n := len(x)
	if len(r.k1) != n {
		r.k1 = make([]float64, n)
		r.k2 = make([]float64, n)
		r.k3 = make([]float64, n)
		r.k4 = make([]float64, n)
		r.tmp = make([]float64, n)
	}
	sys.Derivative(t, x, r.k1)
	for i := range x {
		r.tmp[i] = x[i] + dt/2*r.k1[i]
	}
	sys.Derivative(t+dt/2, r.tmp, r.k2)
	for i := range x {
		r.tmp[i] = x[i] + dt/2*r.k2[i]
	}
	sys.Derivative(t+dt/2, r.tmp, r.k3)
	for i := range x {
		r.tmp[i] = x[i] + dt*r.k3[i]
	}
	sys.Derivative(t+dt, r.tmp, r.k4)
	for i := range x {
		x[i] += dt / 6 * (r.k1[i] + 2*r.k2[i] + 2*r.k3[i] + r.k4[i])
	}
	return t + dt
}

// Run integrates sys from t0 for steps fixed steps of size dt, invoking
// observe (if non-nil) after every step with the current time and state.
// It returns the final time.
func Run(ig Integrator, sys System, t0, dt float64, steps int, x []float64, observe func(t float64, x []float64)) float64 {
	t := t0
	for s := 0; s < steps; s++ {
		t = ig.Step(sys, t, dt, x)
		if observe != nil {
			observe(t, x)
		}
	}
	return t
}

// RunUntil integrates until either maxSteps is reached or stop returns true
// (checked after each step). It returns the final time and the number of
// steps taken.
func RunUntil(ig Integrator, sys System, t0, dt float64, maxSteps int, x []float64, stop func(t float64, x []float64) bool) (float64, int) {
	t := t0
	for s := 0; s < maxSteps; s++ {
		t = ig.Step(sys, t, dt, x)
		if stop != nil && stop(t, x) {
			return t, s + 1
		}
	}
	return t, maxSteps
}
