// Package hetero assigns graph nodes to interaction classes for
// heterogeneous decomposition (ROADMAP item 5). Following the decomp-gnn
// line of work (Allier et al. 2024), a heterogeneous dynamical system is
// decomposed by clustering nodes into K classes from their observable
// behavior and fitting per-class-pair interaction models (see
// train.BlockRidge). The class assignment here is unsupervised and fully
// deterministic under a seed: k-means++ over standardized per-node feature
// statistics (mean, standard deviation, lag-1 autocorrelation per feature
// channel), optionally augmented with graph-propagated statistics so
// structurally similar nodes cluster together ("embed" mode).
package hetero

import (
	"fmt"
	"math"

	"dsgl/internal/datasets"
	"dsgl/internal/rng"
)

// Modes for Config.Mode.
const (
	// ModeStats clusters on per-node feature statistics alone.
	ModeStats = "stats"
	// ModeEmbed augments the statistics with 1-hop and 2-hop
	// neighborhood-propagated copies (a cheap spectral embedding), so the
	// clustering also sees what a node's neighborhood looks like.
	ModeEmbed = "embed"
)

// Config controls class assignment.
type Config struct {
	// K is the number of interaction classes (>= 1).
	K int
	// Mode selects the node profile: ModeStats (default) or ModeEmbed.
	Mode string
	// Seed drives the deterministic k-means++ initialization.
	Seed uint64
}

// Classes is a class assignment: K classes, one label per node.
// Labels are canonicalized by first occurrence — node 0 always has class
// 0, the first node with a different class has class 1, and so on — so
// equal clusterings compare equal regardless of centroid initialization
// order.
type Classes struct {
	K         int
	NodeClass []int
}

// Of returns the class of node n.
func (c *Classes) Of(n int) int { return c.NodeClass[n] }

// Uniform returns the K=1 assignment (every node class 0) for n nodes.
func Uniform(n int) *Classes {
	return &Classes{K: 1, NodeClass: make([]int, n)}
}

// Assign partitions the dataset's nodes into cfg.K interaction classes.
// The result is deterministic: the same dataset, K, mode, and seed always
// produce the same labels.
func Assign(d *datasets.Dataset, cfg Config) (*Classes, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("hetero: K must be >= 1, got %d", cfg.K)
	}
	if cfg.K > d.N {
		return nil, fmt.Errorf("hetero: K=%d exceeds node count %d", cfg.K, d.N)
	}
	mode := cfg.Mode
	if mode == "" {
		mode = ModeStats
	}
	if mode != ModeStats && mode != ModeEmbed {
		return nil, fmt.Errorf("hetero: unknown mode %q (want %q or %q)", cfg.Mode, ModeStats, ModeEmbed)
	}
	if cfg.K == 1 {
		return Uniform(d.N), nil
	}

	prof := profiles(d, mode)
	standardize(prof, d.N)
	// Multi-restart Lloyd: k-means++ is sensitive to its initialization,
	// so run several seeded restarts and keep the lowest-inertia
	// clustering. Restart order is fixed, so the result is deterministic.
	r := rng.New(cfg.Seed ^ 0x68657465726f31) // "hetero1"
	var best []int
	bestInertia := math.Inf(1)
	for restart := 0; restart < 8; restart++ {
		labels := kmeans(prof, d.N, cfg.K, r)
		if in := inertia(prof, d.N, cfg.K, labels); in < bestInertia {
			bestInertia = in
			best = labels
		}
	}
	return &Classes{K: cfg.K, NodeClass: canonicalize(best, cfg.K)}, nil
}

// inertia is the within-cluster sum of squared distances to centroids.
func inertia(prof []float64, n, k int, labels []int) float64 {
	dims := len(prof) / n
	centers := make([][]float64, k)
	counts := make([]int, k)
	for c := range centers {
		centers[c] = make([]float64, dims)
	}
	for i := 0; i < n; i++ {
		c := labels[i]
		counts[c]++
		row := prof[i*dims : (i+1)*dims]
		for d, v := range row {
			centers[c][d] += v
		}
	}
	for c := range centers {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for d := range centers[c] {
			centers[c][d] *= inv
		}
	}
	var s float64
	for i := 0; i < n; i++ {
		s += dist2(prof, dims, i, centers[labels[i]])
	}
	return s
}

// statsPerChannel is the number of statistics computed per feature
// channel: mean, std, lag-1 autocorrelation, one-step-change std, and
// one-step-change lag-1 autocorrelation. The change-based pair separates
// dynamical families (oscillatory vs diffusive vs noise-driven) that the
// level statistics alone cannot.
const statsPerChannel = 5

// profiles builds the per-node feature-statistics matrix, row-major
// [node][dim]. Stats mode: statsPerChannel dims per feature channel.
// Embed mode: those plus their 1-hop and 2-hop RowNormalized-propagated
// copies (3 x statsPerChannel dims per channel).
func profiles(d *datasets.Dataset, mode string) []float64 {
	base := statsPerChannel * d.F
	dims := base
	if mode == ModeEmbed {
		dims = 3 * base
	}
	prof := make([]float64, d.N*dims)
	for n := 0; n < d.N; n++ {
		for f := 0; f < d.F; f++ {
			var sum, sumSq float64
			for t := 0; t < d.T; t++ {
				v := d.At(t, n, f)
				sum += v
				sumSq += v * v
			}
			mean := sum / float64(d.T)
			variance := sumSq/float64(d.T) - mean*mean
			if variance < 0 {
				variance = 0
			}
			std := math.Sqrt(variance)
			var ac float64 // lag-1 autocorrelation of the level
			if variance > 0 {
				var cov float64
				for t := 0; t+1 < d.T; t++ {
					cov += (d.At(t, n, f) - mean) * (d.At(t+1, n, f) - mean)
				}
				ac = cov / (variance * float64(d.T-1))
			}
			// One-step changes: their scale and smoothness.
			var dSum, dSumSq float64
			nd := d.T - 1
			for t := 0; t < nd; t++ {
				dv := d.At(t+1, n, f) - d.At(t, n, f)
				dSum += dv
				dSumSq += dv * dv
			}
			dMean := dSum / float64(nd)
			dVar := dSumSq/float64(nd) - dMean*dMean
			if dVar < 0 {
				dVar = 0
			}
			var dAc float64
			if dVar > 0 {
				var dCov float64
				for t := 0; t+1 < nd; t++ {
					a := d.At(t+1, n, f) - d.At(t, n, f)
					b := d.At(t+2, n, f) - d.At(t+1, n, f)
					dCov += (a - dMean) * (b - dMean)
				}
				dAc = dCov / (dVar * float64(nd-1))
			}
			o := n*dims + statsPerChannel*f
			prof[o+0] = mean
			prof[o+1] = std
			prof[o+2] = ac
			prof[o+3] = math.Sqrt(dVar)
			prof[o+4] = dAc
		}
	}
	if mode != ModeEmbed {
		return prof
	}
	// Propagate the base statistics over the normalized adjacency: column
	// block 1 is P·S (neighborhood average), block 2 is P²·S (2-hop).
	p := datasets.RowNormalized(d.Adj)
	col := make([]float64, d.N)
	hop := make([]float64, d.N)
	for dim := 0; dim < base; dim++ {
		for n := 0; n < d.N; n++ {
			col[n] = prof[n*dims+dim]
		}
		p.MulVec(col, hop)
		for n := 0; n < d.N; n++ {
			prof[n*dims+base+dim] = hop[n]
		}
		p.MulVec(hop, col)
		for n := 0; n < d.N; n++ {
			prof[n*dims+2*base+dim] = col[n]
		}
	}
	return prof
}

// standardize z-scores each profile dimension across nodes so no single
// statistic dominates the k-means distances.
func standardize(prof []float64, n int) {
	if n == 0 {
		return
	}
	dims := len(prof) / n
	for dim := 0; dim < dims; dim++ {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := prof[i*dims+dim]
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if variance <= 0 {
			for i := 0; i < n; i++ {
				prof[i*dims+dim] = 0
			}
			continue
		}
		inv := 1 / math.Sqrt(variance)
		for i := 0; i < n; i++ {
			prof[i*dims+dim] = (prof[i*dims+dim] - mean) * inv
		}
	}
}

func dist2(prof []float64, dims, node int, center []float64) float64 {
	var s float64
	row := prof[node*dims : (node+1)*dims]
	for i, v := range row {
		dv := v - center[i]
		s += dv * dv
	}
	return s
}

// kmeans runs deterministic k-means++ (seeded centers, Lloyd iterations,
// lowest-index tie-breaking, farthest-point repair for empty clusters).
func kmeans(prof []float64, n, k int, r *rng.RNG) []int {
	dims := len(prof) / n
	centers := make([][]float64, k)
	// k-means++ seeding: first center uniform, the rest sampled
	// proportionally to squared distance from the nearest chosen center.
	first := r.Intn(n)
	centers[0] = append([]float64(nil), prof[first*dims:(first+1)*dims]...)
	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = dist2(prof, dims, i, centers[0])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range d2 {
			total += v
		}
		pick := 0
		if total > 0 {
			target := r.Float64() * total
			acc := 0.0
			for i := 0; i < n; i++ {
				acc += d2[i]
				if acc >= target {
					pick = i
					break
				}
			}
		} else {
			pick = r.Intn(n) // all points coincide; any choice is equivalent
		}
		centers[c] = append([]float64(nil), prof[pick*dims:(pick+1)*dims]...)
		for i := 0; i < n; i++ {
			if d := dist2(prof, dims, i, centers[c]); d < d2[i] {
				d2[i] = d
			}
		}
	}

	labels := make([]int, n)
	counts := make([]int, k)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, dist2(prof, dims, i, centers[0])
			for c := 1; c < k; c++ {
				if d := dist2(prof, dims, i, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers; repair empty clusters with the point farthest
		// from its current center (deterministic: first maximum wins).
		for c := range centers {
			counts[c] = 0
			for d := range centers[c] {
				centers[c][d] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			row := prof[i*dims : (i+1)*dims]
			for d, v := range row {
				centers[c][d] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centers[c] {
				centers[c][d] *= inv
			}
		}
		for c := range centers {
			if counts[c] > 0 {
				continue
			}
			far, farD := 0, -1.0
			for i := 0; i < n; i++ {
				if counts[labels[i]] <= 1 {
					continue // don't empty another cluster
				}
				if d := dist2(prof, dims, i, centers[labels[i]]); d > farD {
					far, farD = i, d
				}
			}
			counts[labels[far]]--
			counts[c] = 1
			copy(centers[c], prof[far*dims:(far+1)*dims])
			labels[far] = c
		}
	}
	return labels
}

// canonicalize renumbers labels by first occurrence.
func canonicalize(labels []int, k int) []int {
	remap := make([]int, k)
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	out := make([]int, len(labels))
	for i, l := range labels {
		if remap[l] < 0 {
			remap[l] = next
			next++
		}
		out[i] = remap[l]
	}
	return out
}
