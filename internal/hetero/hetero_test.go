package hetero

import (
	"testing"

	"dsgl/internal/datasets"
)

func TestAssignDeterministic(t *testing.T) {
	d := datasets.Generate("heteromix", datasets.Config{N: 24, T: 480, Seed: 7})
	for _, mode := range []string{ModeStats, ModeEmbed} {
		a, err := Assign(d, Config{K: 3, Mode: mode, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Assign(d, Config{K: 3, Mode: mode, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.NodeClass {
			if a.NodeClass[i] != b.NodeClass[i] {
				t.Fatalf("mode %s: node %d class differs across identical runs", mode, i)
			}
		}
	}
}

func TestAssignK1Uniform(t *testing.T) {
	d := datasets.Generate("housing", datasets.Config{N: 16, T: 200})
	c, err := Assign(d, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 1 {
		t.Fatalf("K = %d", c.K)
	}
	for i, l := range c.NodeClass {
		if l != 0 {
			t.Fatalf("node %d class %d, want 0", i, l)
		}
	}
}

func TestAssignCanonicalLabels(t *testing.T) {
	d := datasets.Generate("heteromix", datasets.Config{N: 24, T: 480, Seed: 3})
	c, err := Assign(d, Config{K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if c.NodeClass[0] != 0 {
		t.Fatalf("first node must carry class 0, got %d", c.NodeClass[0])
	}
	seen := 0
	for _, l := range c.NodeClass {
		if l < 0 || l >= c.K {
			t.Fatalf("label %d out of range", l)
		}
		if l > seen {
			t.Fatalf("label %d appeared before %d (not first-occurrence canonical)", l, seen)
		}
		if l == seen {
			seen++
		}
	}
}

// TestAssignRecoversHeteroMixTypes checks the assignment is behaviorally
// meaningful: on the heteromix generator (three planted dynamical
// families tied to communities), K=3 stats clustering must align with the
// planted types well above chance. The check is deterministic — fixed
// dataset, fixed seed.
func TestAssignRecoversHeteroMixTypes(t *testing.T) {
	d := datasets.Generate("heteromix", datasets.Config{N: 36, T: 960, Seed: 7})
	c, err := Assign(d, Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Planted type of node i is its community mod 3 (see GenHeteroMix).
	// Count the best one-to-one-free mapping: each planted type maps to
	// its majority cluster.
	hits := 0
	for ty := 0; ty < 3; ty++ {
		counts := make([]int, c.K)
		for i := 0; i < d.N; i++ {
			if d.Community[i]%3 == ty {
				counts[c.NodeClass[i]]++
			}
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		hits += best
	}
	purity := float64(hits) / float64(d.N)
	if purity < 0.75 {
		t.Fatalf("class purity %.2f against planted types, want >= 0.75", purity)
	}
}

func TestAssignErrors(t *testing.T) {
	d := datasets.Generate("housing", datasets.Config{N: 8, T: 80})
	if _, err := Assign(d, Config{K: 0}); err == nil {
		t.Fatal("K=0 must error")
	}
	if _, err := Assign(d, Config{K: 9}); err == nil {
		t.Fatal("K > N must error")
	}
	if _, err := Assign(d, Config{K: 2, Mode: "typo"}); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(5)
	if u.K != 1 || len(u.NodeClass) != 5 || u.Of(3) != 0 {
		t.Fatalf("Uniform(5) = %+v", u)
	}
}
