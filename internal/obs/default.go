package obs

import "sync/atomic"

// def holds the process-wide default registry. Nil means observability
// is disabled: Default() returns nil and every instrument constructed
// from it is a nil no-op. Instrumented packages load this pointer once
// per inference/epoch (never per step) and cache their instrument
// bindings against it, so the disabled state costs one atomic load and
// the enabled state costs the same plus nil-free instrument updates.
var def atomic.Pointer[Registry]

// Enable installs a fresh default registry if none is installed and
// returns the active one. Safe to call from multiple goroutines; the
// first caller wins and later callers see the same registry.
func Enable() *Registry {
	if r := def.Load(); r != nil {
		return r
	}
	r := NewRegistry()
	if def.CompareAndSwap(nil, r) {
		return r
	}
	return def.Load()
}

// Default returns the active default registry, or nil when
// observability is disabled.
func Default() *Registry { return def.Load() }

// Disable removes the default registry. Existing instrument bindings
// keep recording into the orphaned registry until their owners re-bind;
// new bindings become no-ops.
func Disable() { def.Store(nil) }

// SetDefault installs r (possibly nil) as the default registry.
// Intended for tests that need an isolated registry.
func SetDefault(r *Registry) { def.Store(r) }
