// Package obshttp exposes an obs.Registry over HTTP: Prometheus text
// format on /metrics, a JSON snapshot on /metricsz, and the standard
// net/http/pprof profiling endpoints under /debug/pprof/. It lives in a
// subpackage so the obs core stays free of net/http and can be imported
// from the zero-alloc inference path without dragging in the server
// stack.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"dsgl/internal/obs"
)

// Handler returns the observability mux for r. The registry may be nil
// (endpoints respond with empty bodies / empty snapshots), so the
// handler can be mounted before observability is enabled.
func Handler(r *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := r.Snapshot()
		if snap == nil {
			snap = []obs.MetricSnapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "dsgl observability\n\n/metrics   Prometheus text format\n/metricsz  JSON snapshot\n/debug/pprof/  profiling\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr (e.g. ":9137" or "127.0.0.1:0") and serves
// Handler(r) in a background goroutine. It returns the bound address
// (useful with port 0) and a shutdown func. The server is best-effort
// diagnostics: serve errors after a successful bind are dropped.
func Serve(addr string, r *obs.Registry) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
