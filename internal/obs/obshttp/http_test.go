package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dsgl/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body), rec.Header()
}

func TestHandlerMetrics(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("dsgl_http_test_total", "help", obs.L("backend", "scalable")).Add(7)
	h := Handler(r)

	code, body, hdr := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/plain") {
		t.Errorf("content-type %q", hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, `dsgl_http_test_total{backend="scalable"} 7`) {
		t.Errorf("exposition missing counter:\n%s", body)
	}
}

func TestHandlerMetricsz(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("dsgl_http_test_depth", "").Set(3)
	code, body, hdr := get(t, Handler(r), "/metricsz")
	if code != 200 {
		t.Fatalf("/metricsz status %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Errorf("content-type %q", hdr.Get("Content-Type"))
	}
	var snap []obs.MetricSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(snap) != 1 || snap[0].Name != "dsgl_http_test_depth" || snap[0].Value == nil || *snap[0].Value != 3 {
		t.Errorf("snapshot mismatch: %+v", snap)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	h := Handler(nil)
	if code, body, _ := get(t, h, "/metrics"); code != 200 || body != "" {
		t.Errorf("/metrics on nil registry: code=%d body=%q", code, body)
	}
	code, body, _ := get(t, h, "/metricsz")
	if code != 200 {
		t.Fatalf("/metricsz status %d", code)
	}
	var snap []obs.MetricSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || len(snap) != 0 {
		t.Errorf("nil registry should serve an empty JSON array, got %q (%v)", body, err)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	code, body, _ := get(t, Handler(nil), "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ code=%d", code)
	}
}

func TestServeRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("dsgl_http_serve_total", "").Inc()
	addr, shutdown, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "dsgl_http_serve_total 1") {
		t.Errorf("served exposition missing counter:\n%s", body)
	}
}
