package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BucketSnapshot is one cumulative histogram bucket in a snapshot.
type BucketSnapshot struct {
	UpperBound      float64 `json:"le"`
	CumulativeCount uint64  `json:"count"`
}

// QuantileSnapshot is one estimated quantile in a summary snapshot.
type QuantileSnapshot struct {
	Quantile float64 `json:"quantile"`
	Value    float64 `json:"value"`
}

// MetricSnapshot is one instrument's state at snapshot time. Exactly one
// of the value groups is populated, discriminated by Kind. Float fields
// that would be NaN are omitted (pointer nil) so the snapshot is always
// encoding/json-safe.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Help   string            `json:"help,omitempty"`

	// Counter.
	Count uint64 `json:"count,omitempty"`
	// Gauge (omitted when NaN).
	Value *float64 `json:"value,omitempty"`
	// Histogram / Summary aggregates.
	SampleCount uint64             `json:"sample_count,omitempty"`
	SampleSum   *float64           `json:"sample_sum,omitempty"`
	Buckets     []BucketSnapshot   `json:"buckets,omitempty"`
	Quantiles   []QuantileSnapshot `json:"quantiles,omitempty"`
}

// finitePtr returns &v unless v is NaN or infinite, in which case nil —
// keeping snapshots JSON-encodable.
func finitePtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// Snapshot returns the state of every registered instrument in
// registration order. Safe for concurrent use with recording; each
// instrument is read atomically but the snapshot as a whole is not a
// consistent cut. Nil registry → nil snapshot.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	ins := r.instruments()
	out := make([]MetricSnapshot, 0, len(ins))
	for _, in := range ins {
		ms := MetricSnapshot{Name: in.name, Kind: in.kind.String(), Help: in.help}
		if len(in.labels) > 0 {
			ms.Labels = make(map[string]string, len(in.labels))
			for _, l := range in.labels {
				ms.Labels[l.Name] = l.Value
			}
		}
		switch in.kind {
		case kindCounter:
			ms.Count = in.counter.Value()
		case kindGauge:
			ms.Value = finitePtr(in.gauge.Value())
		case kindHistogram:
			ms.SampleCount = in.histogram.Count()
			ms.SampleSum = finitePtr(in.histogram.Sum())
			ms.Buckets = in.histogram.snapshotBuckets()
		case kindSummary:
			ms.SampleCount = in.summary.Count()
			ms.SampleSum = finitePtr(in.summary.Sum())
			ms.Quantiles = in.summary.quantileSnapshots()
		}
		out = append(out, ms)
	}
	return out
}

// WritePrometheus writes every registered instrument in the Prometheus
// text exposition format (version 0.0.4). Instruments sharing a name
// (differing only by labels) are grouped under one # HELP / # TYPE
// header. Nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	ins := r.instruments()

	// Group by name, preserving first-registration order of names.
	byName := make(map[string][]*instrument, len(ins))
	var names []string
	for _, in := range ins {
		if _, ok := byName[in.name]; !ok {
			names = append(names, in.name)
		}
		byName[in.name] = append(byName[in.name], in)
	}

	var b strings.Builder
	for _, name := range names {
		group := byName[name]
		first := group[0]
		if first.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(first.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, promType(first.kind))
		for _, in := range group {
			writePromInstrument(&b, in)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promType(k kind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindSummary:
		return "summary"
	}
	return "untyped"
}

func writePromInstrument(b *strings.Builder, in *instrument) {
	switch in.kind {
	case kindCounter:
		fmt.Fprintf(b, "%s%s %d\n", in.name, labelString(in.labels, nil), in.counter.Value())
	case kindGauge:
		fmt.Fprintf(b, "%s%s %s\n", in.name, labelString(in.labels, nil), formatFloat(in.gauge.Value()))
	case kindHistogram:
		h := in.histogram
		for _, bk := range h.snapshotBuckets() {
			le := Label{Name: "le", Value: formatFloat(bk.UpperBound)}
			fmt.Fprintf(b, "%s_bucket%s %d\n", in.name, labelString(in.labels, &le), bk.CumulativeCount)
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", in.name, labelString(in.labels, nil), formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", in.name, labelString(in.labels, nil), h.Count())
	case kindSummary:
		s := in.summary
		for _, q := range s.quantileSnapshots() {
			ql := Label{Name: "quantile", Value: formatFloat(q.Quantile)}
			fmt.Fprintf(b, "%s%s %s\n", in.name, labelString(in.labels, &ql), formatFloat(q.Value))
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", in.name, labelString(in.labels, nil), formatFloat(s.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", in.name, labelString(in.labels, nil), s.Count())
	}
}

// labelString renders {a="x",b="y"} with labels sorted by name; extra
// (le / quantile) is appended last per Prometheus convention. Empty
// label set renders as "".
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	if extra != nil {
		sorted = append(sorted, *extra)
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: +Inf/-Inf/NaN
// spelled out, integers without a trailing ".0", shortest round-trip
// representation otherwise.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
