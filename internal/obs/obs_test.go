package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "concurrent counter")
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(goroutines*perG); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestCounterAddNegativeIgnored(t *testing.T) {
	var c Counter
	c.Add(3)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "concurrent gauge")
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(goroutines*perG); got != want {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge after Set = %g, want -2.5", g.Value())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "concurrent histogram")
	const goroutines, perG = 8, 4000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(float64(int(1) << (id % 6))) // exact powers of two
			}
		}(i)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	// Sum of integer-valued observations is exact in float64.
	var want float64
	for i := 0; i < goroutines; i++ {
		want += float64(uint64(1<<(i%6)) * perG)
	}
	if h.Sum() != want {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
	buckets := h.snapshotBuckets()
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.UpperBound, 1) || last.CumulativeCount != h.Count() {
		t.Fatalf("+Inf bucket = %+v, want cumulative %d", last, h.Count())
	}
}

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		v     float64
		bound float64 // expected upper bound of the chosen bucket
	}{
		{0, bucketBound(0)},
		{-3, bucketBound(0)},
		{1, 1},               // exact power of two lands on its own bound
		{1.5, 2},             // rounds up to the next power of two
		{2, 2},               //
		{2.1, 4},             //
		{0.5, 0.5},           //
		{0.4, 0.5},           //
		{1e300, math.Inf(1)}, // beyond 2^64 → overflow bucket
	}
	for _, c := range cases {
		idx := bucketIndex(c.v)
		if got := bucketBound(idx); got != c.bound {
			t.Errorf("bucketBound(bucketIndex(%g)) = %g, want %g", c.v, got, c.bound)
		}
		if c.v > 0 && !math.IsInf(c.bound, 1) && c.v > c.bound {
			t.Errorf("observation %g above its bucket bound %g", c.v, c.bound)
		}
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN())
	h.Observe(1)
	if h.Count() != 1 || h.Sum() != 1 {
		t.Fatalf("count=%d sum=%g after NaN observe, want 1/1", h.Count(), h.Sum())
	}
}

func TestSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("test_summary", "quantile summary")
	// Uniform 1..10000 in shuffled-ish order; P² should land close to
	// the true quantiles.
	const n = 10000
	for i := 0; i < n; i++ {
		v := float64((i*7919)%n + 1) // 7919 coprime with 10000 → permutation
		s.Observe(v)
	}
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 5000, 250},
		{0.9, 9000, 250},
		{0.99, 9900, 250},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%g = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}
	if !math.IsNaN(s.Quantile(0.25)) {
		t.Errorf("untracked quantile should be NaN, got %g", s.Quantile(0.25))
	}
}

func TestSummarySmallSampleExact(t *testing.T) {
	var got []float64
	s := newSummary([]float64{0.5})
	for _, v := range []float64{5, 1, 3} {
		s.Observe(v)
		got = append(got, s.Quantile(0.5))
	}
	// Nearest-rank medians of {5}, {1,5}, {1,3,5}.
	want := []float64{5, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("median after %d samples = %g, want %g", i+1, got[i], want[i])
		}
	}
	empty := newSummary([]float64{0.5})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Errorf("empty summary quantile should be NaN")
	}
}

func TestSummaryConcurrent(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("test_conc_summary", "concurrent summary")
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Observe(float64(i%100) + float64(id))
			}
		}(g)
	}
	wg.Wait()
	if got, want := s.Count(), uint64(goroutines*perG); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	med := s.Quantile(0.5)
	if med < 0 || med > 110 {
		t.Fatalf("median %g outside observed range", med)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("backend", "scalable"))
	b := r.Counter("x_total", "", L("backend", "scalable"))
	if a != b {
		t.Fatal("same (name, labels) should return the same counter")
	}
	c := r.Counter("x_total", "", L("backend", "dense"))
	if a == c {
		t.Fatal("different labels should return distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("x_total", "", L("backend", "scalable"))
}

func TestNilRegistryAndInstrumentsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c", "")
	s := r.Summary("d", "")
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// All calls below must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	s.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("nil summary quantile should be NaN")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition should write nothing, got %q (%v)", sb.String(), err)
	}
}

// TestRecordZeroAlloc pins the hot-path contract: recording into live
// instruments and the nil no-op path both perform zero allocations.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_hist", "")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		g.Add(1)
		h.Observe(2.5)
	}); n != 0 {
		t.Fatalf("live instruments allocated %v per record", n)
	}
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	var ns *Summary
	if n := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		ng.Set(3)
		nh.Observe(2.5)
		ns.Observe(2.5)
	}); n != 0 {
		t.Fatalf("nil instruments allocated %v per record", n)
	}
}

func TestDefaultRegistryLifecycle(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	SetDefault(nil)
	if Default() != nil {
		t.Fatal("Default should be nil after SetDefault(nil)")
	}
	r1 := Enable()
	if r1 == nil || Default() != r1 {
		t.Fatal("Enable should install and return a registry")
	}
	if r2 := Enable(); r2 != r1 {
		t.Fatal("second Enable should return the same registry")
	}
	Disable()
	if Default() != nil {
		t.Fatal("Disable should clear the default registry")
	}
}

func TestSnapshotJSONSafe(t *testing.T) {
	r := NewRegistry()
	r.Gauge("nan_gauge", "").Set(math.NaN())
	r.Summary("empty_summary", "")
	for _, ms := range r.Snapshot() {
		if ms.Value != nil && (math.IsNaN(*ms.Value) || math.IsInf(*ms.Value, 0)) {
			t.Errorf("%s: non-finite gauge leaked into snapshot", ms.Name)
		}
		for _, q := range ms.Quantiles {
			if math.IsNaN(q.Value) {
				t.Errorf("%s: NaN quantile leaked into snapshot", ms.Name)
			}
		}
	}
}

// TestWritePrometheusGolden locks the exposition format: HELP/TYPE
// headers, sorted labels, cumulative buckets ending in +Inf, summary
// quantile lines, and _sum/_count suffixes.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dsgl_test_total", "test counter", L("backend", "scalable"))
	c.Add(3)
	c2 := r.Counter("dsgl_test_total", "test counter", L("backend", "dense"))
	c2.Add(1)
	g := r.Gauge("dsgl_test_depth", "test gauge")
	g.Set(2.5)
	h := r.Histogram("dsgl_test_seconds", "test histogram")
	h.Observe(0.5)
	h.Observe(0.75) // → le="1" bucket
	h.Observe(3)    // → le="4" bucket
	s := r.Summary("dsgl_test_residual", "test summary")
	s.Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := strings.Join([]string{
		`# HELP dsgl_test_total test counter`,
		`# TYPE dsgl_test_total counter`,
		`dsgl_test_total{backend="scalable"} 3`,
		`dsgl_test_total{backend="dense"} 1`,
		`# HELP dsgl_test_depth test gauge`,
		`# TYPE dsgl_test_depth gauge`,
		`dsgl_test_depth 2.5`,
		`# HELP dsgl_test_seconds test histogram`,
		`# TYPE dsgl_test_seconds histogram`,
		`dsgl_test_seconds_bucket{le="0.5"} 1`,
		`dsgl_test_seconds_bucket{le="1"} 2`,
		`dsgl_test_seconds_bucket{le="4"} 3`,
		`dsgl_test_seconds_bucket{le="+Inf"} 3`,
		`dsgl_test_seconds_sum 4.25`,
		`dsgl_test_seconds_count 3`,
		`# HELP dsgl_test_residual test summary`,
		`# TYPE dsgl_test_residual summary`,
		`dsgl_test_residual{quantile="0.5"} 2`,
		`dsgl_test_residual{quantile="0.9"} 2`,
		`dsgl_test_residual{quantile="0.99"} 2`,
		`dsgl_test_residual_sum 2`,
		`dsgl_test_residual_count 1`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelKeyOrderIndependent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("k_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("k_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order must not change instrument identity")
	}
}

func TestP2AgainstExactQuantiles(t *testing.T) {
	// Deterministic LCG; compare P² estimates to exact quantiles.
	const n = 50000
	vals := make([]float64, n)
	state := uint64(42)
	s := newSummary([]float64{0.5, 0.9, 0.99})
	for i := range vals {
		state = state*6364136223846793005 + 1442695040888963407
		v := float64(state>>11) / float64(1<<53) // uniform [0,1)
		vals[i] = v
		s.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(n))]
		got := s.Quantile(q)
		if math.Abs(got-exact) > 0.02 {
			t.Errorf("q%g = %g, exact %g (|Δ| > 0.02)", q, got, exact)
		}
	}
}
