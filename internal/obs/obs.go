// Package obs is a dependency-free metrics core for the DS-GL runtime.
//
// The package provides four instrument kinds — Counter, Gauge, Histogram,
// and Summary — owned by a Registry. All instruments are safe for
// concurrent use and are designed around two contracts:
//
//  1. Nil is a no-op. Every instrument method has a nil-receiver fast
//     path, and Registry constructors return nil instruments when the
//     registry itself is nil. Instrumented packages therefore hold plain
//     instrument pointers and call them unconditionally; when
//     observability is disabled the calls compile down to a nil check.
//
//  2. Record once per inference/epoch, never per step. Instruments are
//     pre-registered (registration takes a mutex; recording does not) and
//     recording is allocation-free, so the zero-alloc anneal contract of
//     the engine holds with instrumentation enabled.
//
// Metric names follow the Prometheus convention
// dsgl_<subsystem>_<what>[_<unit>][_total], with dimensions expressed as
// labels (e.g. backend="scalable"). Exposition lives in expose.go
// (Prometheus text format + JSON snapshot) and the HTTP surface in the
// obshttp subpackage, keeping this core free of net/http.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Label is one name="value" dimension attached to an instrument.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// kind discriminates the instrument types inside the registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindSummary
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindSummary:
		return "summary"
	}
	return "unknown"
}

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n to the counter. Negative n is ignored (counters are
// monotone).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (queue depth, resident
// entries, last observed norm). A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge value (atomic CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: fixed log₂ buckets covering 2^histMinExp ..
// 2^histMaxExp. Observation v lands in the bucket whose upper bound is
// the smallest power of two >= v. Everything below 2^histMinExp
// (including zero and negatives) lands in bucket 0; everything above
// 2^histMaxExp in the overflow bucket. The layout is fixed at compile
// time so Observe is branch-cheap and allocation-free.
const (
	histMinExp = -64 // lowest bucket upper bound 2^-64 (~5.4e-20)
	histMaxExp = 64  // highest finite bucket upper bound 2^64 (~1.8e19)
	// histBuckets finite buckets plus one overflow (+Inf) bucket.
	histBuckets = histMaxExp - histMinExp + 1
)

// Histogram is a fixed-bucket log₂ histogram. Buckets have power-of-two
// upper bounds, which is exact for latencies and residuals spanning many
// orders of magnitude and keeps Observe free of searches and allocations.
// A nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
	buckets [histBuckets + 1]atomic.Uint64
}

// bucketIndex maps an observation to its bucket. Exported logic kept in
// one place so exposition uses the same boundaries.
func bucketIndex(v float64) int {
	if v != v { // NaN: caller skips; defensive
		return histBuckets
	}
	if v <= 0 {
		return 0
	}
	// frac in [0.5, 1), v = frac * 2^exp, so the smallest power of two
	// >= v is 2^(exp-1) when frac == 0.5 exactly, else 2^exp.
	frac, exp := math.Frexp(v)
	if frac == 0.5 {
		exp--
	}
	if exp <= histMinExp {
		return 0
	}
	if exp > histMaxExp {
		return histBuckets // overflow → +Inf bucket
	}
	return exp - histMinExp
}

// bucketBound returns the upper bound of bucket i (math.Inf(1) for the
// overflow bucket).
func bucketBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return math.Ldexp(1, i+histMinExp)
}

// Observe records one sample. NaN samples are ignored.
func (h *Histogram) Observe(v float64) {
	if h == nil || v != v {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of recorded samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshotBuckets returns (upperBound, cumulativeCount) pairs for every
// nonempty bucket plus the +Inf bucket. Cumulative counts follow the
// Prometheus histogram convention.
func (h *Histogram) snapshotBuckets() []BucketSnapshot {
	var out []BucketSnapshot
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		cum += n
		if n == 0 && i != histBuckets {
			continue
		}
		out = append(out, BucketSnapshot{UpperBound: bucketBound(i), CumulativeCount: cum})
	}
	return out
}

// Summary is a streaming quantile estimator (P² algorithm, Jain &
// Chlamtac 1985) tracking a fixed set of quantiles without storing
// samples. Observe takes a mutex, so summaries belong on once-per-
// inference paths, not per-step ones. A nil *Summary is a no-op.
type Summary struct {
	mu        sync.Mutex
	quantiles []float64
	est       []p2Estimator
	count     uint64
	sum       float64
}

// defaultQuantiles tracked by registry-created summaries.
var defaultQuantiles = []float64{0.5, 0.9, 0.99}

func newSummary(quantiles []float64) *Summary {
	s := &Summary{quantiles: quantiles, est: make([]p2Estimator, len(quantiles))}
	for i, q := range quantiles {
		s.est[i].init(q)
	}
	return s
}

// Observe records one sample. NaN samples are ignored.
func (s *Summary) Observe(v float64) {
	if s == nil || v != v {
		return
	}
	s.mu.Lock()
	s.count++
	s.sum += v
	for i := range s.est {
		s.est[i].observe(v)
	}
	s.mu.Unlock()
}

// Count returns the number of recorded samples (0 on nil).
func (s *Summary) Count() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Sum returns the sum of recorded samples (0 on nil).
func (s *Summary) Sum() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// Quantile returns the current estimate for q, which must be one of the
// tracked quantiles. NaN when no samples have been recorded or q is not
// tracked (and on nil).
func (s *Summary) Quantile(q float64) float64 {
	if s == nil {
		return math.NaN()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, tq := range s.quantiles {
		if tq == q {
			return s.est[i].quantile()
		}
	}
	return math.NaN()
}

// quantileSnapshots returns (q, estimate) pairs for all tracked
// quantiles, skipping NaN estimates (empty summary).
func (s *Summary) quantileSnapshots() []QuantileSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QuantileSnapshot, 0, len(s.quantiles))
	for i, q := range s.quantiles {
		v := s.est[i].quantile()
		if v != v {
			continue
		}
		out = append(out, QuantileSnapshot{Quantile: q, Value: v})
	}
	return out
}

// instrument is one registered metric: name + labels + one of the four
// instrument kinds.
type instrument struct {
	name   string
	help   string
	labels []Label
	kind   kind

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
	summary   *Summary
}

// Registry owns a set of named instruments. Registration (the
// Counter/Gauge/Histogram/Summary methods) is idempotent on
// (name, labels): asking twice returns the same instrument, so
// instrumented packages can re-bind cheaply without double-counting.
// A nil *Registry returns nil (no-op) instruments from every
// constructor, which is how "observability disabled" is expressed.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*instrument
	order []*instrument // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

// key builds the canonical identity of an instrument: name plus labels
// sorted by label name.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range sorted {
		b.WriteByte('{')
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// lookup finds or creates the instrument for (name, labels), verifying
// the kind matches on reuse. Panics on a kind mismatch: that is a
// programming error (two call sites disagreeing about what a name means),
// not a runtime condition.
func (r *Registry) lookup(name, help string, labels []Label, k kind) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := key(name, labels)
	if ins, ok := r.byKey[id]; ok {
		if ins.kind != k {
			panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", id, ins.kind, k))
		}
		return ins
	}
	ins := &instrument{name: name, help: help, labels: append([]Label(nil), labels...), kind: k}
	switch k {
	case kindCounter:
		ins.counter = &Counter{}
	case kindGauge:
		ins.gauge = &Gauge{}
	case kindHistogram:
		ins.histogram = &Histogram{}
	case kindSummary:
		ins.summary = newSummary(defaultQuantiles)
	}
	r.byKey[id] = ins
	r.order = append(r.order, ins)
	return ins
}

// Counter returns the counter registered under (name, labels), creating
// it on first use. Nil registry → nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, kindCounter).counter
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use. Nil registry → nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, kindGauge).gauge
}

// Histogram returns the log₂ histogram registered under (name, labels),
// creating it on first use. Nil registry → nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, kindHistogram).histogram
}

// Summary returns the streaming-quantile summary registered under
// (name, labels), creating it on first use (tracked quantiles: 0.5,
// 0.9, 0.99). Nil registry → nil (no-op) summary.
func (r *Registry) Summary(name, help string, labels ...Label) *Summary {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, kindSummary).summary
}

// instruments returns the registered instruments in registration order.
func (r *Registry) instruments() []*instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*instrument, len(r.order))
	copy(out, r.order)
	return out
}
