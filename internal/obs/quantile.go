package obs

import (
	"math"
	"sort"
)

// p2Estimator is one P² (piecewise-parabolic) streaming quantile
// estimator after Jain & Chlamtac, "The P² Algorithm for Dynamic
// Calculation of Quantiles and Histograms Without Storing Observations"
// (CACM 1985). It maintains five markers whose heights approximate the
// q-quantile after the first five observations; before that it falls
// back to exact nearest-rank over the buffered samples.
//
// The estimator is NOT self-synchronizing: Summary serializes access.
type p2Estimator struct {
	q       float64
	n       int        // observations seen
	heights [5]float64 // marker heights q0..q4
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired-position increments per observation
}

func (e *p2Estimator) init(q float64) {
	e.q = q
	e.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
}

func (e *p2Estimator) observe(v float64) {
	if e.n < 5 {
		e.heights[e.n] = v
		e.n++
		if e.n == 5 {
			sort.Float64s(e.heights[:])
			for i := 0; i < 5; i++ {
				e.pos[i] = float64(i + 1)
			}
			q := e.q
			e.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
		}
		return
	}

	// Find the cell k such that heights[k] <= v < heights[k+1] and
	// update extreme markers.
	var k int
	switch {
	case v < e.heights[0]:
		e.heights[0] = v
		k = 0
	case v >= e.heights[4]:
		e.heights[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < e.heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
	e.n++
}

// parabolic is the piecewise-parabolic (P²) height update.
func (e *p2Estimator) parabolic(i int, d float64) float64 {
	num1 := e.pos[i] - e.pos[i-1] + d
	num2 := e.pos[i+1] - e.pos[i] - d
	den := e.pos[i+1] - e.pos[i-1]
	t1 := (e.heights[i+1] - e.heights[i]) / (e.pos[i+1] - e.pos[i])
	t2 := (e.heights[i] - e.heights[i-1]) / (e.pos[i] - e.pos[i-1])
	return e.heights[i] + d/den*(num1*t1+num2*t2)
}

// linear is the fallback height update when the parabola would cross a
// neighboring marker.
func (e *p2Estimator) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.heights[i] + d*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// quantile returns the current estimate (NaN before any observation).
func (e *p2Estimator) quantile() float64 {
	switch {
	case e.n == 0:
		return math.NaN()
	case e.n < 5:
		// Exact nearest-rank over the buffered samples.
		buf := make([]float64, e.n)
		copy(buf, e.heights[:e.n])
		sort.Float64s(buf)
		idx := int(math.Ceil(e.q*float64(e.n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= e.n {
			idx = e.n - 1
		}
		return buf[idx]
	default:
		return e.heights[2]
	}
}
