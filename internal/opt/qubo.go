package opt

import (
	"fmt"

	"dsgl/internal/ising"
	"dsgl/internal/mat"
)

// QUBO is a quadratic unconstrained binary optimization instance: minimize
// xᵀQx + Offset over x ∈ {0,1}ⁿ. Q is sparse and need not be symmetric
// (Q_ij and Q_ji both weight the x_i x_j product).
type QUBO struct {
	N      int
	Q      *mat.CSR
	Offset float64
}

// NewQUBO wraps a coefficient matrix; q must be square.
func NewQUBO(q *mat.CSR, offset float64) (*QUBO, error) {
	if q.Rows != q.Cols {
		return nil, fmt.Errorf("opt: QUBO matrix must be square, got %dx%d", q.Rows, q.Cols)
	}
	return &QUBO{N: q.Rows, Q: q, Offset: offset}, nil
}

// Value evaluates the objective at bit vector x (entries 0/1).
func (q *QUBO) Value(x []int8) float64 {
	v := q.Offset
	for i := 0; i < q.N; i++ {
		if x[i] == 0 {
			continue
		}
		for p := q.Q.RowPtr[i]; p < q.Q.RowPtr[i+1]; p++ {
			if x[q.Q.ColIdx[p]] != 0 {
				v += q.Q.Val[p]
			}
		}
	}
	return v
}

// ToIsing lowers the QUBO to an Ising model via x = (1+s)/2. The returned
// constant makes the correspondence exact:
//
//	Value(bits(s)) = Energy(s) + const
//
// with W_ij = -(Q_ij + Q_ji)/4 for i ≠ j, h_i = -(½Q_ii + ¼(R_i + C_i))
// where R_i, C_i are the off-diagonal row and column sums of Q, and
// const = Offset + ½ΣQ_ii + ¼Σ_{i≠j}Q_ij. Minimizing one minimizes the
// other.
func (q *QUBO) ToIsing() (*ising.Model, float64, error) {
	n := q.N
	h := make([]float64, n)
	constant := q.Offset
	b := mat.NewBuilder(n, n)
	rowOff := make([]float64, n)
	colOff := make([]float64, n)
	for i := 0; i < n; i++ {
		for p := q.Q.RowPtr[i]; p < q.Q.RowPtr[i+1]; p++ {
			j := q.Q.ColIdx[p]
			v := q.Q.Val[p]
			if j == i {
				h[i] -= 0.5 * v
				constant += 0.5 * v
				continue
			}
			rowOff[i] += v
			colOff[j] += v
			constant += 0.25 * v
			// Symmetrize: each ordered Q entry contributes -v/4 to both
			// triangles; duplicates sum in the builder, so the final
			// W_ij = -(Q_ij + Q_ji)/4.
			b.Add(i, j, -0.25*v)
			b.Add(j, i, -0.25*v)
		}
	}
	for i := 0; i < n; i++ {
		h[i] -= 0.25 * (rowOff[i] + colOff[i])
	}
	m, err := ising.NewModelCSR(b.Build(), h)
	if err != nil {
		return nil, 0, err
	}
	return m, constant, nil
}

// SpinsToBits maps Ising spins (±1) to QUBO bits (+1 → 1, -1 → 0).
func SpinsToBits(s []int8) []int8 {
	x := make([]int8, len(s))
	for i, si := range s {
		if si > 0 {
			x[i] = 1
		}
	}
	return x
}

// GraphColoring encodes k-coloring of the instance's graph as a one-hot
// QUBO over n·k bits x[v*k+c] ("vertex v gets color c"): penalty a per
// vertex for violating the one-hot constraint (a·(1 - Σ_c x_vc)² expanded),
// penalty b per edge whose endpoints share a color. A zero-valued optimum
// is a proper k-coloring.
func GraphColoring(g *Instance, k int, a, b float64) (*QUBO, error) {
	if k < 1 {
		return nil, fmt.Errorf("opt: GraphColoring needs k >= 1, got %d", k)
	}
	if a <= 0 || b <= 0 {
		return nil, fmt.Errorf("opt: GraphColoring penalties must be positive, got a=%g b=%g", a, b)
	}
	n := g.N * k
	bb := mat.NewBuilder(n, n)
	idx := func(v, c int) int { return v*k + c }
	for v := 0; v < g.N; v++ {
		for c := 0; c < k; c++ {
			// x² = x for bits, so -2a·x + a·x² folds to -a on the diagonal.
			bb.Add(idx(v, c), idx(v, c), -a)
			for c2 := c + 1; c2 < k; c2++ {
				bb.Add(idx(v, c), idx(v, c2), a)
				bb.Add(idx(v, c2), idx(v, c), a)
			}
		}
	}
	for u := 0; u < g.N; u++ {
		for p := g.W.RowPtr[u]; p < g.W.RowPtr[u+1]; p++ {
			if v := g.W.ColIdx[p]; v > u {
				for c := 0; c < k; c++ {
					bb.Add(idx(u, c), idx(v, c), 0.5*b)
					bb.Add(idx(v, c), idx(u, c), 0.5*b)
				}
			}
		}
	}
	// The +a per vertex from the expanded (1 - Σx)² penalty.
	return NewQUBO(bb.Build(), a*float64(g.N))
}

// Partition encodes balanced graph bipartitioning as an Ising model:
// minimize cut(s) + alpha·(Σ_i s_i)², the cut weight plus a quadratic
// imbalance penalty. The returned constant maps energies back to the
// objective: objective(s) = Energy(s) + const. The imbalance term couples
// every pair, so the encoding is dense — intended for moderate n.
func Partition(g *Instance, alpha float64) (*ising.Model, float64, error) {
	if alpha <= 0 {
		return nil, 0, fmt.Errorf("opt: Partition needs alpha > 0, got %g", alpha)
	}
	n := g.N
	b := mat.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				// cut = TW/2 - ½Σ_{i<j} w s s; (Σs)² = n + 2Σ_{i<j} s s —
				// so the pair coupling under E = -Σ_{i<j} W_ij s_i s_j is
				// W_ij = w_ij/2 - 2·alpha.
				b.Add(i, j, 0.5*g.W.At(i, j)-2*alpha)
			}
		}
	}
	m, err := ising.NewModelCSR(b.Build(), make([]float64, n))
	if err != nil {
		return nil, 0, err
	}
	return m, g.TotalWeight()/2 + alpha*float64(n), nil
}
