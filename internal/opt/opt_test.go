package opt

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dsgl/internal/engine"
	"dsgl/internal/ising"
	"dsgl/internal/mat"
)

func TestRandomGraphDeterministicAndSymmetric(t *testing.T) {
	a, err := RandomGraph(40, 4, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomGraph(40, 4, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Edges != b.Edges || a.W.NNZ() != b.W.NNZ() {
		t.Fatal("same seed must generate the same graph")
	}
	for i := 0; i < a.N; i++ {
		for p := a.W.RowPtr[i]; p < a.W.RowPtr[i+1]; p++ {
			j := a.W.ColIdx[p]
			if j == i {
				t.Fatalf("self-loop at %d", i)
			}
			if a.W.At(j, i) != a.W.Val[p] {
				t.Fatalf("asymmetric adjacency at (%d,%d)", i, j)
			}
			if b.W.At(i, j) != a.W.Val[p] {
				t.Fatalf("weight differs across same-seed generations at (%d,%d)", i, j)
			}
		}
	}
	c, err := RandomGraph(40, 4, true, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.W.NNZ() == a.W.NNZ() {
		same := true
		for p := range a.W.Val {
			if a.W.Val[p] != c.W.Val[p] || a.W.ColIdx[p] != c.W.ColIdx[p] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds generated identical graphs")
		}
	}
}

func TestRandomGraphValidation(t *testing.T) {
	if _, err := RandomGraph(1, 1, false, 0); err == nil {
		t.Error("n < 2 must error")
	}
	if _, err := RandomGraph(5, 0, false, 0); err == nil {
		t.Error("degree < 1 must error")
	}
	if _, err := RandomGraph(5, 5, false, 0); err == nil {
		t.Error("degree >= n must error")
	}
}

func TestTorusStructure(t *testing.T) {
	g, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 20 {
		t.Fatalf("N = %d, want 20", g.N)
	}
	// A torus is 4-regular: 2 edges per node.
	if g.Edges != 2*g.N {
		t.Fatalf("Edges = %d, want %d", g.Edges, 2*g.N)
	}
	for i := 0; i < g.N; i++ {
		if g.W.RowNNZ(i) != 4 {
			t.Fatalf("node %d has degree %d, want 4", i, g.W.RowNNZ(i))
		}
	}
	if _, err := Torus(1, 5); err == nil {
		t.Error("degenerate torus must error")
	}
}

func TestCutValueAndTotalWeight(t *testing.T) {
	g := buildInstance("tri", 3, map[edgeKey]float64{
		{0, 1}: 2, {1, 2}: 3, {0, 2}: 5,
	})
	if tw := g.TotalWeight(); tw != 10 {
		t.Fatalf("TotalWeight = %g, want 10", tw)
	}
	if c := g.CutValue([]int8{1, -1, 1}); c != 5 {
		t.Fatalf("cut = %g, want 5", c)
	}
	if c := g.CutValue([]int8{1, 1, 1}); c != 0 {
		t.Fatalf("uniform cut = %g, want 0", c)
	}
}

// TestToIsingCutEnergyIdentity: cut(s) == (TotalWeight - Energy(s)) / 2 for
// every spin assignment on a small instance.
func TestToIsingCutEnergyIdentity(t *testing.T) {
	g, err := RandomGraph(10, 3, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	s := make([]int8, g.N)
	for bits := 0; bits < 1<<uint(g.N); bits += 37 {
		for i := 0; i < g.N; i++ {
			if bits&(1<<uint(i)) != 0 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		cut := g.CutValue(s)
		if got := g.CutFromEnergy(m.Energy(s)); math.Abs(got-cut) > 1e-9 {
			t.Fatalf("bits %d: CutFromEnergy %g, direct cut %g", bits, got, cut)
		}
	}
}

// TestGroundStateIsMaxCut: solving the lowered model exhaustively must find
// the brute-force max cut.
func TestGroundStateIsMaxCut(t *testing.T) {
	g, err := RandomGraph(9, 3, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	s, e, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	tmp := make([]int8, g.N)
	for bits := 0; bits < 1<<uint(g.N); bits++ {
		for i := 0; i < g.N; i++ {
			if bits&(1<<uint(i)) != 0 {
				tmp[i] = 1
			} else {
				tmp[i] = -1
			}
		}
		if c := g.CutValue(tmp); c > best {
			best = c
		}
	}
	if got := g.CutFromEnergy(e); math.Abs(got-best) > 1e-9 {
		t.Fatalf("ground-state cut %g != brute-force max cut %g", got, best)
	}
	if math.Abs(g.CutValue(s)-best) > 1e-9 {
		t.Fatalf("ground-state spins cut %g != max cut %g", g.CutValue(s), best)
	}
}

func TestGsetRoundTrip(t *testing.T) {
	g, err := RandomGraph(30, 4, true, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteGset(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseGset("round-trip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.Edges != g.Edges {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N, g2.Edges, g.N, g.Edges)
	}
	for i := 0; i < g.N; i++ {
		for p := g.W.RowPtr[i]; p < g.W.RowPtr[i+1]; p++ {
			j := g.W.ColIdx[p]
			if g2.W.At(i, j) != g.W.Val[p] {
				t.Fatalf("weight (%d,%d) changed: %g vs %g", i, j, g2.W.At(i, j), g.W.Val[p])
			}
		}
	}
}

func TestParseGsetErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"short edge", "2 1\n1 2\n"},
		{"out of range", "2 1\n1 3 1\n"},
		{"self loop", "2 1\n1 1 1\n"},
		{"edge count mismatch", "3 2\n1 2 1\n"},
	}
	for _, c := range cases {
		if _, err := ParseGset(c.name, strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
	// Comments, blank lines, and duplicate-edge summing are accepted.
	g, err := ParseGset("ok", strings.NewReader("# comment\n\n3 2\n1 2 1\n% other\n2 3 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.Edges != 2 || g.W.At(1, 2) != 2 {
		t.Fatalf("parsed instance wrong: %+v", g)
	}
}

// TestQUBOToIsingExact: Value(bits) == Energy(spins) + const for every
// assignment of a small random asymmetric QUBO.
func TestQUBOToIsingExact(t *testing.T) {
	qb := newTestQUBO(t)
	m, constant, err := qb.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	n := qb.N
	s := make([]int8, n)
	for bits := 0; bits < 1<<uint(n); bits++ {
		for i := 0; i < n; i++ {
			if bits&(1<<uint(i)) != 0 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		want := qb.Value(SpinsToBits(s))
		if got := m.Energy(s) + constant; math.Abs(got-want) > 1e-9 {
			t.Fatalf("bits %d: E+const = %g, QUBO value %g", bits, got, want)
		}
	}
}

// newTestQUBO constructs a deterministic asymmetric QUBO with diagonal
// terms — exercises every term of the conversion.
func newTestQUBO(t *testing.T) *QUBO {
	t.Helper()
	const n = 6
	b := mat.NewBuilder(n, n)
	v := 0.3
	for i := 0; i < n; i++ {
		b.Add(i, i, v)
		v = -v * 1.1
		for j := 0; j < n; j++ {
			if j != i && (i+2*j)%3 == 0 {
				b.Add(i, j, v+float64(i-j)*0.17)
			}
		}
	}
	qb, err := NewQUBO(b.Build(), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return qb
}

// TestGraphColoringProper: a triangle is 3-colorable but not 2-colorable;
// the QUBO optimum (via exhaustive Ising ground state) must be exactly the
// penalty floor in each case.
func TestGraphColoringProper(t *testing.T) {
	tri := buildInstance("triangle", 3, map[edgeKey]float64{
		{0, 1}: 1, {1, 2}: 1, {0, 2}: 1,
	})
	// k=3: proper coloring exists, optimum value 0.
	q3, err := GraphColoring(tri, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m3, c3, err := q3.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	_, e3, err := m3.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e3+c3) > 1e-9 {
		t.Errorf("3-coloring optimum %g, want 0", e3+c3)
	}
	// k=2: at least one conflict edge is unavoidable, optimum value b=2.
	q2, err := GraphColoring(tri, 2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, c2, err := q2.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := m2.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2+c2-2) > 1e-9 {
		t.Errorf("2-coloring optimum %g, want 2 (one conflict)", e2+c2)
	}
	if _, err := GraphColoring(tri, 0, 1, 1); err == nil {
		t.Error("k < 1 must error")
	}
	if _, err := GraphColoring(tri, 2, 0, 1); err == nil {
		t.Error("non-positive penalty must error")
	}
}

// TestPartitionBalancedCut: the partition encoding's exhaustive optimum
// must match the brute-force minimum of cut + alpha*imbalance².
func TestPartitionBalancedCut(t *testing.T) {
	g, err := RandomGraph(8, 3, true, 15)
	if err != nil {
		t.Fatal(err)
	}
	const alpha = 0.7
	m, constant, err := Partition(g, alpha)
	if err != nil {
		t.Fatal(err)
	}
	_, e, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Inf(1)
	tmp := make([]int8, g.N)
	for bits := 0; bits < 1<<uint(g.N); bits++ {
		sum := 0
		for i := 0; i < g.N; i++ {
			if bits&(1<<uint(i)) != 0 {
				tmp[i] = 1
			} else {
				tmp[i] = -1
			}
			sum += int(tmp[i])
		}
		obj := g.CutValue(tmp) + alpha*float64(sum*sum)
		if obj < want {
			want = obj
		}
	}
	if got := e + constant; math.Abs(got-want) > 1e-9 {
		t.Fatalf("partition optimum %g, brute force %g", got, want)
	}
	if _, _, err := Partition(g, 0); err == nil {
		t.Error("alpha <= 0 must error")
	}
}

// TestInstanceSolvesThroughEngine: the full lowering — instance → Ising →
// Solver → engine multi-restart — beats a trivial cut on a torus.
func TestInstanceSolvesThroughEngine(t *testing.T) {
	g, err := Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.ToIsing()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ising.NewSolver(m, ising.MetropolisDynamics, 5)
	if err != nil {
		t.Fatal(err)
	}
	run, err := engine.NewOpt(s).Solve(engine.GeometricSchedule(150, 2, 0.02), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cut := g.CutValue(run.Best.Spins)
	if got := g.CutFromEnergy(run.Best.Energy); math.Abs(got-cut) > 1e-9 {
		t.Fatalf("CutFromEnergy %g != direct cut %g", got, cut)
	}
	// A 2D torus is bipartite-ish under even dimensions: every node has 4
	// neighbours, and the optimum cut equals the edge count. Require 90%.
	if cut < 0.9*float64(g.Edges) {
		t.Errorf("torus cut %g below 90%% of %d edges", cut, g.Edges)
	}
}
