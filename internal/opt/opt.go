// Package opt is the combinatorial-optimization workload layer: Gset-style
// graph instances, generators, and converters that lower MaxCut, QUBO, and
// penalty-encoded graph problems onto the Ising solver backends. The
// package owns problem representation and exact conversion arithmetic; the
// annealing itself runs through internal/ising's engine.OptBackend.
package opt

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"dsgl/internal/ising"
	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// Instance is an undirected weighted graph in the Gset tradition: the
// MaxCut workload format. The adjacency is stored symmetrized in CSR (both
// triangles), zero diagonal.
type Instance struct {
	Name  string
	N     int
	Edges int
	W     *mat.CSR
}

// edgeKey identifies an undirected edge with i < j.
type edgeKey struct{ i, j int }

// buildInstance assembles a symmetric CSR from an undirected edge-weight
// map (keys i < j; weights summed per edge).
func buildInstance(name string, n int, edges map[edgeKey]float64) *Instance {
	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].i != keys[b].i {
			return keys[a].i < keys[b].i
		}
		return keys[a].j < keys[b].j
	})
	b := mat.NewBuilder(n, n)
	for _, k := range keys {
		w := edges[k]
		b.Add(k.i, k.j, w)
		b.Add(k.j, k.i, w)
	}
	return &Instance{Name: name, N: n, Edges: len(keys), W: b.Build()}
}

// CutValue returns the weight of the cut induced by spin vector s: the sum
// of edge weights whose endpoints fall in opposite partitions. O(nnz).
func (g *Instance) CutValue(s []int8) float64 {
	var cut float64
	for i := 0; i < g.N; i++ {
		for p := g.W.RowPtr[i]; p < g.W.RowPtr[i+1]; p++ {
			if j := g.W.ColIdx[p]; j > i && s[i] != s[j] {
				cut += g.W.Val[p]
			}
		}
	}
	return cut
}

// TotalWeight sums all edge weights once per undirected edge.
func (g *Instance) TotalWeight() float64 {
	var tw float64
	for i := 0; i < g.N; i++ {
		for p := g.W.RowPtr[i]; p < g.W.RowPtr[i+1]; p++ {
			if g.W.ColIdx[p] > i {
				tw += g.W.Val[p]
			}
		}
	}
	return tw
}

// ToIsing lowers MaxCut to the Ising ground-state problem: with coupling
// W_ising = -W_adj and no field, H(s) = ½ Σ_{(i,j)∈E} w_ij s_i s_j (up to
// the constant), and cut(s) = (TotalWeight - H(s)) / 2 — minimizing energy
// maximizes the cut. Use CutFromEnergy to map a solver energy back.
func (g *Instance) ToIsing() (*ising.Model, error) {
	w := &mat.CSR{
		Rows:   g.W.Rows,
		Cols:   g.W.Cols,
		RowPtr: g.W.RowPtr,
		ColIdx: g.W.ColIdx,
		Val:    make([]float64, len(g.W.Val)),
	}
	for p, v := range g.W.Val {
		w.Val[p] = -v
	}
	return ising.NewModelCSR(w, make([]float64, g.N))
}

// CutFromEnergy maps an Ising energy of the ToIsing model back to the cut
// value of the same spin vector.
func (g *Instance) CutFromEnergy(e float64) float64 {
	return (g.TotalWeight() - e) / 2
}

// RandomGraph generates a seeded random regular-ish graph: n nodes, each
// wired to `degree` distinct random partners (duplicate picks are re-drawn,
// so the realized degree is at least `degree` per node counting both
// directions). Unweighted graphs carry weight 1 per edge; weighted ones
// draw uniformly from (0, 1]. Deterministic in (n, degree, weighted, seed).
func RandomGraph(n, degree int, weighted bool, seed uint64) (*Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("opt: RandomGraph needs n >= 2, got %d", n)
	}
	if degree < 1 || degree >= n {
		return nil, fmt.Errorf("opt: RandomGraph needs 1 <= degree < n, got %d", degree)
	}
	r := rng.New(seed)
	edges := make(map[edgeKey]float64, n*degree/2)
	for i := 0; i < n; i++ {
		for d := 0; d < degree; d++ {
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			k := edgeKey{i, j}
			if j < i {
				k = edgeKey{j, i}
			}
			if _, dup := edges[k]; dup {
				continue
			}
			w := 1.0
			if weighted {
				w = 1 - r.Float64()
			}
			edges[k] = w
		}
	}
	name := fmt.Sprintf("rand-n%d-d%d-s%d", n, degree, seed)
	if weighted {
		name += "-w"
	}
	return buildInstance(name, n, edges), nil
}

// Torus generates the rows×cols 2D torus lattice (4-regular, unit weights)
// — the planted-structure family Gset's toroidal instances come from.
func Torus(rows, cols int) (*Instance, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("opt: Torus needs rows, cols >= 2, got %dx%d", rows, cols)
	}
	n := rows * cols
	edges := make(map[edgeKey]float64, 2*n)
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		edges[edgeKey{a, b}] = 1
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			add(id(r, c), id(r, c+1))
			add(id(r, c), id(r+1, c))
		}
	}
	return buildInstance(fmt.Sprintf("torus-%dx%d", rows, cols), n, edges), nil
}

// ParseGset reads the Gset text format: a "n m" header line, then m lines
// "i j w" with 1-indexed endpoints. Duplicate edges sum; self-loops are
// rejected. Blank lines and lines starting with '#' or '%' are skipped.
func ParseGset(name string, rd io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var n, m int
	header := false
	edges := map[edgeKey]float64{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if !header {
			if len(fields) != 2 {
				return nil, fmt.Errorf("opt: %s line %d: header wants \"n m\", got %q", name, line, text)
			}
			var err1, err2 error
			n, err1 = strconv.Atoi(fields[0])
			m, err2 = strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil || n < 1 || m < 0 {
				return nil, fmt.Errorf("opt: %s line %d: bad header %q", name, line, text)
			}
			header = true
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("opt: %s line %d: edge wants \"i j w\", got %q", name, line, text)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		w, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("opt: %s line %d: bad edge %q", name, line, text)
		}
		if i < 1 || i > n || j < 1 || j > n {
			return nil, fmt.Errorf("opt: %s line %d: endpoint out of range [1,%d]", name, line, n)
		}
		if i == j {
			return nil, fmt.Errorf("opt: %s line %d: self-loop on node %d", name, line, i)
		}
		k := edgeKey{i - 1, j - 1}
		if k.i > k.j {
			k.i, k.j = k.j, k.i
		}
		edges[k] += w
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("opt: %s: %v", name, err)
	}
	if !header {
		return nil, fmt.Errorf("opt: %s: empty instance (no header)", name)
	}
	if len(edges) != m {
		return nil, fmt.Errorf("opt: %s: header declares %d edges, found %d distinct", name, m, len(edges))
	}
	return buildInstance(name, n, edges), nil
}

// LoadGset reads a Gset instance from a file, named after its basename.
func LoadGset(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opt: %v", err)
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	return ParseGset(name, f)
}

// WriteGset serializes the instance in the Gset text format (1-indexed,
// upper-triangle edges in row order) so generated instances round-trip
// through ParseGset.
func (g *Instance) WriteGset(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.N, g.Edges)
	for i := 0; i < g.N; i++ {
		for p := g.W.RowPtr[i]; p < g.W.RowPtr[i+1]; p++ {
			if j := g.W.ColIdx[p]; j > i {
				fmt.Fprintf(bw, "%d %d %s\n", i+1, j+1, strconv.FormatFloat(g.W.Val[p], 'g', -1, 64))
			}
		}
	}
	return bw.Flush()
}
