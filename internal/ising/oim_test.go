package ising

import (
	"math"
	"testing"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

func TestOIMFerromagnetAligns(t *testing.T) {
	m := ferroModel(t, 6, 0.5)
	res := NewOIM(m, rng.New(3)).Anneal(60)
	for i := 1; i < 6; i++ {
		if res.Spins[i] != res.Spins[0] {
			t.Fatalf("ferromagnet phases not aligned: %v", res.Spins)
		}
	}
}

func TestOIMMaxCutQuality(t *testing.T) {
	r := rng.New(21)
	n := 10
	w := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if r.Float64() < 0.5 {
				v := r.Uniform(0.2, 1)
				w.Set(i, k, v)
				w.Set(k, i, v)
			}
		}
	}
	m, err := MaxCutModel(w)
	if err != nil {
		t.Fatal(err)
	}
	res := NewOIM(m, rng.New(8)).Anneal(120)
	got := CutValue(w, res.Spins)
	s, _, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	best := CutValue(w, s)
	if got < 0.8*best {
		t.Fatalf("OIM cut %g below 80%% of optimum %g", got, best)
	}
}

func TestOIMShilBinarizesPhases(t *testing.T) {
	m := ferroModel(t, 8, 0.3)
	res := NewOIM(m, rng.New(5)).Anneal(100)
	// Final phases must sit near 0 or π (mod π tolerance).
	for i, p := range res.Voltage {
		mod := math.Mod(p, math.Pi)
		if mod < 0 {
			mod += math.Pi
		}
		d := math.Min(mod, math.Pi-mod)
		if d > 0.2 {
			t.Fatalf("phase %d = %g not binarized (dist %g)", i, p, d)
		}
	}
}

func TestPhaseQuantize(t *testing.T) {
	s := PhaseQuantize([]float64{0, math.Pi, 2 * math.Pi, -math.Pi, math.Pi / 4, 3 * math.Pi / 4})
	want := []int8{1, -1, 1, -1, 1, -1}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("PhaseQuantize[%d] = %d, want %d", i, s[i], want[i])
		}
	}
}

func TestXYEnergyGradientConsistency(t *testing.T) {
	// The phase dynamics must be the negative gradient of XYEnergy.
	r := rng.New(17)
	n := 5
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			v := r.NormScaled(0, 0.5)
			j.Set(i, k, v)
			j.Set(k, i, v)
		}
	}
	m, err := NewModel(j, make([]float64, n))
	if err != nil {
		t.Fatal(err)
	}
	phi := make([]float64, n)
	r.FillUniform(phi, 0, 2*math.Pi)
	sys := &phaseSystem{w: m.W, shilK: 0.7}
	dst := make([]float64, n)
	sys.Derivative(0, phi, dst)
	const eps = 1e-6
	for i := 0; i < n; i++ {
		up := append([]float64(nil), phi...)
		dn := append([]float64(nil), phi...)
		up[i] += eps
		dn[i] -= eps
		fd := (XYEnergy(m, up, 0.7) - XYEnergy(m, dn, 0.7)) / (2 * eps)
		if math.Abs(dst[i]+fd) > 1e-5 {
			t.Fatalf("phase %d: dynamics %g vs -grad %g", i, dst[i], -fd)
		}
	}
}

func TestOIMCannotHoldRealValues(t *testing.T) {
	// The contrast the paper draws: clamping an input phase to a
	// "real-valued" intermediate angle does not make free oscillators
	// settle at proportional intermediate phases — SHIL binarizes them.
	// (The Real-Valued DSPU test suite shows the opposite behaviour.)
	m := ferroModel(t, 4, 0.5)
	o := NewOIM(m, rng.New(2))
	res := o.Anneal(120)
	for _, p := range res.Voltage {
		mod := math.Mod(p, math.Pi)
		if mod < 0 {
			mod += math.Pi
		}
		d := math.Min(mod, math.Pi-mod)
		if d > 0.25 {
			t.Fatalf("oscillator settled at non-binary phase %g", p)
		}
	}
}
