// Package ising implements the Ising model and the BRIM bistable
// resistively-coupled Ising machine that DS-GL takes as its architectural
// baseline (paper Sec. II). BRIM here is the binary comparator in the
// circuit-validation experiment (Fig. 4) and the cost baseline of Table I;
// it also demonstrates the classical max-cut workload that motivated Ising
// machines.
package ising

import (
	"fmt"
	"math"

	"dsgl/internal/circuit"
	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

// Model is the Ising model of Eq. 1: H = -Σ_{i≠j} J_ij σ_i σ_j - Σ h_i σ_i
// over binary spins σ ∈ {-1, +1}.
type Model struct {
	N int
	J *mat.Dense
	H []float64
}

// NewModel builds an Ising model. j must be square with zero diagonal.
func NewModel(j *mat.Dense, h []float64) (*Model, error) {
	if j.Rows != j.Cols {
		return nil, fmt.Errorf("ising: J must be square, got %dx%d", j.Rows, j.Cols)
	}
	if len(h) != j.Rows {
		return nil, fmt.Errorf("ising: len(h)=%d, want %d", len(h), j.Rows)
	}
	for i := 0; i < j.Rows; i++ {
		if j.At(i, i) != 0 {
			return nil, fmt.Errorf("ising: non-zero diagonal at %d", i)
		}
	}
	return &Model{N: j.Rows, J: j.Clone(), H: mat.CopyVec(h)}, nil
}

// Energy evaluates the Hamiltonian for spin vector s (entries ±1).
func (m *Model) Energy(s []int8) float64 {
	var e float64
	for i := 0; i < m.N; i++ {
		si := float64(s[i])
		row := m.J.Row(i)
		for j := i + 1; j < m.N; j++ {
			// J_ij and J_ji both contribute in Eq. 1's i≠j sum.
			e -= (row[j] + m.J.At(j, i)) * si * float64(s[j])
		}
		e -= m.H[i] * si
	}
	return e
}

// GroundState exhaustively searches all 2^N spin configurations and returns
// the minimum-energy state. Only usable for small N (tests).
func (m *Model) GroundState() ([]int8, float64) {
	if m.N > 24 {
		panic("ising: GroundState is exponential; N too large")
	}
	best := make([]int8, m.N)
	bestE := math.Inf(1)
	s := make([]int8, m.N)
	for bits := 0; bits < 1<<uint(m.N); bits++ {
		for i := 0; i < m.N; i++ {
			if bits&(1<<uint(i)) != 0 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		if e := m.Energy(s); e < bestE {
			bestE = e
			copy(best, s)
		}
	}
	return best, bestE
}

// CutValue returns the weight of the graph cut induced by spin vector s on
// the weighted adjacency matrix w: the sum of w_ij over edges whose
// endpoints have opposite spins. Max-cut maps to the Ising ground state via
// J = -W.
func CutValue(w *mat.Dense, s []int8) float64 {
	var cut float64
	for i := 0; i < w.Rows; i++ {
		for j := i + 1; j < w.Cols; j++ {
			if s[i] != s[j] {
				cut += w.At(i, j)
			}
		}
	}
	return cut
}

// MaxCutModel builds the Ising model whose ground state is the max cut of
// the weighted graph w (symmetric, zero diagonal).
func MaxCutModel(w *mat.Dense) (*Model, error) {
	j := w.Clone()
	j.Scale(-1)
	j.ZeroDiagonal()
	return NewModel(j, make([]float64, w.Rows))
}

// AnnealSchedule controls BRIM's Node Control Unit: at each interval a
// fraction of free nodes is randomly flipped to escape local minima, with
// the fraction decaying geometrically — the standard annealing control of
// the BRIM paper.
type AnnealSchedule struct {
	// FlipInterval is the simulated time in ns between flip events.
	FlipInterval float64
	// InitialFlipFrac is the starting fraction of nodes flipped per event.
	InitialFlipFrac float64
	// Decay multiplies the flip fraction after every event (0 < Decay <= 1).
	Decay float64
}

// DefaultAnnealSchedule is a schedule that works well for the graph sizes
// exercised in this repository.
func DefaultAnnealSchedule() AnnealSchedule {
	return AnnealSchedule{FlipInterval: 2, InitialFlipFrac: 0.25, Decay: 0.85}
}

// BRIM simulates the bistable resistively-coupled Ising machine: capacitor
// voltages driven by coupling currents (linear self-reaction), bistable
// rails at ±1, periodic random flips for annealing.
type BRIM struct {
	Model    *Model
	Net      *circuit.Network
	Schedule AnnealSchedule
	// Dt is the integration step in ns (default 0.05).
	Dt  float64
	rng *rng.RNG
}

// NewBRIM builds a BRIM machine for the given Ising model.
func NewBRIM(m *Model, sched AnnealSchedule, r *rng.RNG) (*BRIM, error) {
	net, err := circuit.NewNetwork(m.J, m.H, circuit.Config{Self: circuit.Linear})
	if err != nil {
		return nil, err
	}
	return &BRIM{Model: m, Net: net, Schedule: sched, Dt: 0.05, rng: r}, nil
}

// Result is the outcome of an annealing run.
type Result struct {
	Spins   []int8    // sign-quantized final voltages
	Voltage []float64 // raw final voltages
	Energy  float64   // Ising energy of Spins
	TimeNs  float64   // simulated annealing time
}

// Anneal runs natural annealing for durationNs simulated nanoseconds and
// returns the binarized result. Clamped nodes of the underlying network
// keep their initial voltages.
func (b *BRIM) Anneal(durationNs float64) Result {
	x := make([]float64, b.Model.N)
	for i := range x {
		if b.rng.Float64() < 0.5 {
			x[i] = -0.1
		} else {
			x[i] = 0.1
		}
	}
	return b.AnnealFrom(x, durationNs)
}

// AnnealFrom runs natural annealing starting from the given voltages.
func (b *BRIM) AnnealFrom(x0 []float64, durationNs float64) Result {
	x := mat.CopyVec(x0)
	ig := ode.NewEuler()
	t := 0.0
	nextFlip := b.Schedule.FlipInterval
	flipFrac := b.Schedule.InitialFlipFrac
	steps := int(durationNs / b.Dt)
	for s := 0; s < steps; s++ {
		t = ig.Step(b.Net, t, b.Dt, x)
		b.Net.ClampRails(x)
		if b.Schedule.FlipInterval > 0 && t >= nextFlip {
			b.flip(x, flipFrac)
			flipFrac *= b.Schedule.Decay
			nextFlip += b.Schedule.FlipInterval
		}
	}
	spins := Quantize(x)
	return Result{
		Spins:   spins,
		Voltage: x,
		Energy:  b.Model.Energy(spins),
		TimeNs:  t,
	}
}

// flip negates a random fraction of free node voltages.
func (b *BRIM) flip(x []float64, frac float64) {
	for i := range x {
		if b.Net.Clamped[i] {
			continue
		}
		if b.rng.Float64() < frac {
			x[i] = -x[i]
		}
	}
}

// Quantize maps voltages to ±1 spins by sign (ties resolve to +1).
func Quantize(x []float64) []int8 {
	s := make([]int8, len(x))
	for i, v := range x {
		if v < 0 {
			s[i] = -1
		} else {
			s[i] = 1
		}
	}
	return s
}
