// Package ising implements the Ising model and the family of Ising-machine
// dynamics DS-GL takes as its architectural baseline (paper Sec. II): BRIM
// (bistable resistively-coupled), Metropolis (digital annealer comparator),
// and OIM (oscillator/Kuramoto family). BRIM is the binary comparator in
// the circuit-validation experiment (Fig. 4) and the cost baseline of
// Table I; Solver exposes all three dynamics as an engine.OptBackend so the
// combinatorial-optimization workloads (max-cut, QUBO) run through the same
// seeded multi-restart fan-out as the regression workloads.
package ising

import (
	"fmt"
	"math"

	"dsgl/internal/circuit"
	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

// Model is the Ising model of Eq. 1: H = -Σ_{i≠j} J_ij σ_i σ_j - Σ h_i σ_i
// over binary spins σ ∈ {-1, +1}. Internally the coupling is stored once,
// symmetrized and sparse: W = J + Jᵀ in CSR form, under which the
// Hamiltonian is
//
//	H = -½ Σ_ij W_ij σ_i σ_j - Σ h_i σ_i
//
// and one energy evaluation costs O(nnz) instead of the O(N²) a dense J
// forces — the difference between toy graphs and Gset-scale instances.
type Model struct {
	N int
	// W is the symmetrized coupling J + Jᵀ: square, zero-diagonal, exactly
	// symmetric CSR. All dynamics read it; none mutate it.
	W *mat.CSR
	H []float64
}

// NewModel builds an Ising model from a dense coupling matrix. j must be
// square with zero diagonal; it is symmetrized into W = J + Jᵀ and the
// dense form is not retained.
func NewModel(j *mat.Dense, h []float64) (*Model, error) {
	if j.Rows != j.Cols {
		return nil, fmt.Errorf("ising: J must be square, got %dx%d", j.Rows, j.Cols)
	}
	if len(h) != j.Rows {
		return nil, fmt.Errorf("ising: len(h)=%d, want %d", len(h), j.Rows)
	}
	n := j.Rows
	sym := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		if j.At(i, i) != 0 {
			return nil, fmt.Errorf("ising: non-zero diagonal at %d", i)
		}
		for k := 0; k < n; k++ {
			if v := j.At(i, k) + j.At(k, i); v != 0 {
				sym.Set(i, k, v)
			}
		}
	}
	return &Model{N: n, W: mat.FromDense(sym, 0), H: mat.CopyVec(h)}, nil
}

// NewModelCSR builds an Ising model directly from a symmetrized sparse
// coupling W = J + Jᵀ — the path instance generators take, which never
// materializes a dense matrix. w must be square, zero-diagonal, and exactly
// symmetric (W_ij == W_ji bit-for-bit); the matrix is used directly, not
// copied, and must not be mutated afterwards.
func NewModelCSR(w *mat.CSR, h []float64) (*Model, error) {
	if w.Rows != w.Cols {
		return nil, fmt.Errorf("ising: W must be square, got %dx%d", w.Rows, w.Cols)
	}
	if len(h) != w.Rows {
		return nil, fmt.Errorf("ising: len(h)=%d, want %d", len(h), w.Rows)
	}
	for i := 0; i < w.Rows; i++ {
		for p := w.RowPtr[i]; p < w.RowPtr[i+1]; p++ {
			j := w.ColIdx[p]
			if j == i {
				return nil, fmt.Errorf("ising: non-zero diagonal at %d", i)
			}
			if w.At(j, i) != w.Val[p] {
				return nil, fmt.Errorf("ising: W not symmetric at (%d,%d)", i, j)
			}
		}
	}
	return &Model{N: w.Rows, W: w, H: mat.CopyVec(h)}, nil
}

// Energy evaluates the Hamiltonian for spin vector s (entries ±1) in
// O(nnz): -½ Σ_i σ_i (W row_i · σ) - Σ h_i σ_i.
func (m *Model) Energy(s []int8) float64 {
	var e float64
	for i := 0; i < m.N; i++ {
		var row float64
		for p := m.W.RowPtr[i]; p < m.W.RowPtr[i+1]; p++ {
			row += m.W.Val[p] * float64(s[m.W.ColIdx[p]])
		}
		e -= (0.5*row + m.H[i]) * float64(s[i])
	}
	return e
}

// groundStateMaxN bounds the exhaustive search: 2^24 energy evaluations is
// already seconds of work, and every doubling doubles it.
const groundStateMaxN = 24

// GroundState exhaustively searches all 2^N spin configurations and returns
// the minimum-energy state. The search is exponential, so models beyond
// N=24 are rejected with an error rather than attempted.
func (m *Model) GroundState() ([]int8, float64, error) {
	if m.N > groundStateMaxN {
		return nil, 0, fmt.Errorf("ising: GroundState is exponential; N=%d exceeds the %d-spin limit", m.N, groundStateMaxN)
	}
	best := make([]int8, m.N)
	bestE := math.Inf(1)
	s := make([]int8, m.N)
	for bits := 0; bits < 1<<uint(m.N); bits++ {
		for i := 0; i < m.N; i++ {
			if bits&(1<<uint(i)) != 0 {
				s[i] = 1
			} else {
				s[i] = -1
			}
		}
		if e := m.Energy(s); e < bestE {
			bestE = e
			copy(best, s)
		}
	}
	return best, bestE, nil
}

// CutValue returns the weight of the graph cut induced by spin vector s on
// the weighted adjacency matrix w: the sum of w_ij over edges whose
// endpoints have opposite spins. Max-cut maps to the Ising ground state via
// J = -W.
func CutValue(w *mat.Dense, s []int8) float64 {
	var cut float64
	for i := 0; i < w.Rows; i++ {
		for j := i + 1; j < w.Cols; j++ {
			if s[i] != s[j] {
				cut += w.At(i, j)
			}
		}
	}
	return cut
}

// MaxCutModel builds the Ising model whose ground state is the max cut of
// the weighted graph w (symmetric, zero diagonal).
func MaxCutModel(w *mat.Dense) (*Model, error) {
	j := w.Clone()
	j.Scale(-1)
	j.ZeroDiagonal()
	return NewModel(j, make([]float64, w.Rows))
}

// AnnealSchedule controls BRIM's Node Control Unit: at each interval a
// fraction of free nodes is randomly flipped to escape local minima, with
// the fraction decaying geometrically — the standard annealing control of
// the BRIM paper.
type AnnealSchedule struct {
	// FlipInterval is the simulated time in ns between flip events.
	FlipInterval float64
	// InitialFlipFrac is the starting fraction of nodes flipped per event.
	InitialFlipFrac float64
	// Decay multiplies the flip fraction after every event (0 < Decay <= 1).
	Decay float64
}

// DefaultAnnealSchedule is a schedule that works well for the graph sizes
// exercised in this repository.
func DefaultAnnealSchedule() AnnealSchedule {
	return AnnealSchedule{FlipInterval: 2, InitialFlipFrac: 0.25, Decay: 0.85}
}

// BRIM simulates the bistable resistively-coupled Ising machine: capacitor
// voltages driven by coupling currents (linear self-reaction), bistable
// rails at ±1, periodic random flips for annealing. The coupling network is
// built over the sparse symmetrized W, so one derivative costs O(nnz).
type BRIM struct {
	Model    *Model
	Net      *circuit.Network
	Schedule AnnealSchedule
	// Dt is the integration step in ns (default 0.05).
	Dt  float64
	rng *rng.RNG
}

// NewBRIM builds a BRIM machine for the given Ising model.
func NewBRIM(m *Model, sched AnnealSchedule, r *rng.RNG) (*BRIM, error) {
	net, err := circuit.NewNetworkCSR(m.W, m.H, circuit.Config{Self: circuit.Linear})
	if err != nil {
		return nil, err
	}
	return &BRIM{Model: m, Net: net, Schedule: sched, Dt: 0.05, rng: r}, nil
}

// Result is the outcome of an annealing run.
type Result struct {
	Spins   []int8    // sign-quantized final voltages
	Voltage []float64 // raw final voltages
	Energy  float64   // Ising energy of Spins
	TimeNs  float64   // simulated annealing time
}

// Anneal runs natural annealing for durationNs simulated nanoseconds and
// returns the binarized result. Clamped nodes of the underlying network
// keep their initial voltages.
func (b *BRIM) Anneal(durationNs float64) Result {
	x := make([]float64, b.Model.N)
	for i := range x {
		if b.rng.Float64() < 0.5 {
			x[i] = -0.1
		} else {
			x[i] = 0.1
		}
	}
	return b.AnnealFrom(x, durationNs)
}

// AnnealFrom runs natural annealing starting from the given voltages.
func (b *BRIM) AnnealFrom(x0 []float64, durationNs float64) Result {
	x := mat.CopyVec(x0)
	ig := ode.NewEuler()
	t := 0.0
	nextFlip := b.Schedule.FlipInterval
	flipFrac := b.Schedule.InitialFlipFrac
	steps := int(durationNs / b.Dt)
	for s := 0; s < steps; s++ {
		t = ig.Step(b.Net, t, b.Dt, x)
		b.Net.ClampRails(x)
		if b.Schedule.FlipInterval > 0 && t >= nextFlip {
			b.flip(x, flipFrac)
			flipFrac *= b.Schedule.Decay
			nextFlip += b.Schedule.FlipInterval
		}
	}
	spins := Quantize(x)
	return Result{
		Spins:   spins,
		Voltage: x,
		Energy:  b.Model.Energy(spins),
		TimeNs:  t,
	}
}

// flip negates a random fraction of free node voltages.
func (b *BRIM) flip(x []float64, frac float64) {
	for i := range x {
		if b.Net.Clamped[i] {
			continue
		}
		if b.rng.Float64() < frac {
			x[i] = -x[i]
		}
	}
}

// Quantize maps voltages to ±1 spins by sign (ties resolve to +1).
func Quantize(x []float64) []int8 {
	s := make([]int8, len(x))
	for i, v := range x {
		if v < 0 {
			s[i] = -1
		} else {
			s[i] = 1
		}
	}
	return s
}

// QuantizeInto is Quantize without the allocation: dst must have len(x).
func QuantizeInto(dst []int8, x []float64) {
	for i, v := range x {
		if v < 0 {
			dst[i] = -1
		} else {
			dst[i] = 1
		}
	}
}
