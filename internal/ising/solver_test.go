package ising

import (
	"math"
	"reflect"
	"testing"

	"dsgl/internal/engine"
	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// randomModel builds a seeded random coupling graph (symmetric, density p)
// small enough for exhaustive GroundState reference.
func randomModel(t *testing.T, n int, p float64, seed uint64) *Model {
	t.Helper()
	r := rng.New(seed)
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if r.Float64() < p {
				v := r.NormScaled(0, 1)
				j.Set(i, k, v)
				j.Set(k, i, v)
			}
		}
	}
	m, err := NewModel(j, make([]float64, n))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelCSRValidation(t *testing.T) {
	b := mat.NewBuilder(3, 3)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	w := b.Build()
	if _, err := NewModelCSR(w, make([]float64, 3)); err != nil {
		t.Fatalf("valid symmetric W rejected: %v", err)
	}
	if _, err := NewModelCSR(w, make([]float64, 2)); err == nil {
		t.Fatal("h length mismatch must error")
	}
	asym := mat.NewBuilder(3, 3)
	asym.Add(0, 1, 1)
	asym.Add(1, 0, 2)
	if _, err := NewModelCSR(asym.Build(), make([]float64, 3)); err == nil {
		t.Fatal("asymmetric W must error")
	}
	diag := mat.NewBuilder(2, 2)
	diag.Add(0, 0, 1)
	if _, err := NewModelCSR(diag.Build(), make([]float64, 2)); err == nil {
		t.Fatal("non-zero diagonal must error")
	}
	rect := &mat.CSR{Rows: 2, Cols: 3, RowPtr: []int{0, 0, 0}}
	if _, err := NewModelCSR(rect, make([]float64, 2)); err == nil {
		t.Fatal("non-square W must error")
	}
}

// TestModelEnergySparseMatchesDense: the CSR Hamiltonian must agree with a
// direct dense evaluation of Eq. 1 over random asymmetric couplings.
func TestModelEnergySparseMatchesDense(t *testing.T) {
	r := rng.New(13)
	n := 9
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k && r.Float64() < 0.6 {
				j.Set(i, k, r.NormScaled(0, 1))
			}
		}
	}
	h := make([]float64, n)
	r.FillNorm(h, 0, 1)
	m, err := NewModel(j, h)
	if err != nil {
		t.Fatal(err)
	}
	s := make([]int8, n)
	for trial := 0; trial < 20; trial++ {
		for i := range s {
			if r.Float64() < 0.5 {
				s[i] = -1
			} else {
				s[i] = 1
			}
		}
		var want float64
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if i != k {
					want -= j.At(i, k) * float64(s[i]) * float64(s[k])
				}
			}
			want -= h[i] * float64(s[i])
		}
		if got := m.Energy(s); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: sparse energy %g, dense %g", trial, got, want)
		}
	}
}

func TestNewSolverRejectsUnknownDynamics(t *testing.T) {
	m := randomModel(t, 6, 0.5, 1)
	if _, err := NewSolver(m, Dynamics("quantum"), 1); err == nil {
		t.Fatal("unknown dynamics must error")
	}
}

// TestMetropolisGeometricReachesGroundState: under a geometric cooling
// schedule the Metropolis solver must hit the exhaustive GroundState
// optimum on small random instances — seeded, so the check is
// deterministic.
func TestMetropolisGeometricReachesGroundState(t *testing.T) {
	for _, seed := range []uint64{3, 17, 42} {
		m := randomModel(t, 10, 0.5, seed)
		_, wantE, err := m.GroundState()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSolver(m, MetropolisDynamics, seed)
		if err != nil {
			t.Fatal(err)
		}
		run, err := engine.NewOpt(s).Solve(engine.GeometricSchedule(300, 2, 0.01), 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(run.Best.Energy-wantE) > 1e-9 {
			t.Errorf("seed %d: metropolis best %g, ground state %g", seed, run.Best.Energy, wantE)
		}
	}
}

// TestSolverDynamicsAllFindGoodStates: every selectable dynamics must land
// within a quality threshold of the exhaustive optimum on a small instance.
func TestSolverDynamicsAllFindGoodStates(t *testing.T) {
	m := randomModel(t, 12, 0.5, 7)
	_, wantE, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	// Ground energies are negative; "within 90%" means at most 10% above.
	for _, dyn := range SolverDynamics() {
		s, err := NewSolver(m, dyn, 11)
		if err != nil {
			t.Fatal(err)
		}
		run, err := engine.NewOpt(s).Solve(engine.GeometricSchedule(60, 2, 0.05), 6, 3)
		if err != nil {
			t.Fatalf("%s: %v", dyn, err)
		}
		if run.Best.Energy > 0.85*wantE {
			t.Errorf("%s: best energy %g too far above ground state %g", dyn, run.Best.Energy, wantE)
		}
		if got := m.Energy(run.Best.Spins); got != run.Best.Energy {
			t.Errorf("%s: reported energy %g != recomputed %g", dyn, run.Best.Energy, got)
		}
	}
}

// TestSolverWorkerBitIdentity: the multi-restart fan-out must be
// bit-identical across worker counts for every dynamics.
func TestSolverWorkerBitIdentity(t *testing.T) {
	m := randomModel(t, 16, 0.4, 23)
	sched := engine.AdaptiveSchedule(20, 2, 0.05, 3, 0.5)
	for _, dyn := range SolverDynamics() {
		var ref *engine.OptRun
		for _, workers := range []int{1, 2, 4} {
			s, err := NewSolver(m, dyn, 5)
			if err != nil {
				t.Fatal(err)
			}
			run, err := engine.NewOpt(s).Solve(sched, 6, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", dyn, workers, err)
			}
			if ref == nil {
				ref = run
				continue
			}
			if !reflect.DeepEqual(run.Energies, ref.Energies) {
				t.Errorf("%s workers=%d: energies %v != workers=1 %v", dyn, workers, run.Energies, ref.Energies)
			}
			if run.BestRestart != ref.BestRestart || !reflect.DeepEqual(run.Best.Spins, ref.Best.Spins) {
				t.Errorf("%s workers=%d: best state differs from workers=1", dyn, workers)
			}
		}
	}
}

// TestSolverObserverTrace: the best-energy observer must see a
// non-increasing trace whose floor matches the restart's reported energy
// or better (the observer samples checkpoints; the solver may keep a best
// from any of them).
func TestSolverObserverTrace(t *testing.T) {
	m := randomModel(t, 10, 0.5, 9)
	for _, dyn := range SolverDynamics() {
		s, err := NewSolver(m, dyn, 3)
		if err != nil {
			t.Fatal(err)
		}
		e := engine.NewOpt(s)
		st := e.NewSolveState()
		var trace engine.BestEnergyTrace
		trace.Reset()
		st.SetObserver(trace.Observer())
		sched := engine.GeometricSchedule(30, 2, 0.05)
		res, err := e.SolveWith(st, sched, 3)
		if err != nil {
			t.Fatalf("%s: %v", dyn, err)
		}
		if len(trace.Trace) != sched.Steps {
			t.Fatalf("%s: observer fired %d times, want %d", dyn, len(trace.Trace), sched.Steps)
		}
		for i := 1; i < len(trace.Trace); i++ {
			if trace.Trace[i] > trace.Trace[i-1] {
				t.Fatalf("%s: trace increases at %d", dyn, i)
			}
		}
		if res.Energy > trace.Best+1e-9 {
			t.Errorf("%s: reported best %g worse than observed floor %g", dyn, res.Energy, trace.Best)
		}
	}
}

// TestSolverPlanIsScheduleOnly: one plan compile serves all restarts of a
// non-adaptive batch.
func TestSolverPlanIsScheduleOnly(t *testing.T) {
	m := randomModel(t, 8, 0.5, 2)
	s, err := NewSolver(m, MetropolisDynamics, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.NewOpt(s)
	if _, err := e.Solve(engine.GeometricSchedule(10, 2, 0.05), 8, 4); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.PlanCacheStats(); misses != 1 || hits != 7 {
		t.Errorf("plan cache hits=%d misses=%d, want 7/1", hits, misses)
	}
}

func TestSolverForeignPlanRejected(t *testing.T) {
	m := randomModel(t, 6, 0.5, 2)
	s, err := NewSolver(m, BRIMDynamics, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := engine.NewOpt(s).NewSolveState()
	if _, err := s.RunSolve(st, "not a plan"); err == nil {
		t.Fatal("foreign plan type must error")
	}
}
