package ising

import (
	"math"
	"testing"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

func ferroModel(t *testing.T, n int, w float64) *Model {
	t.Helper()
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			j.Set(i, k, w)
			j.Set(k, i, w)
		}
	}
	m, err := NewModel(j, make([]float64, n))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	j := mat.NewDense(2, 3)
	if _, err := NewModel(j, []float64{0, 0}); err == nil {
		t.Fatal("expected error for non-square J")
	}
	j2 := mat.NewDense(2, 2)
	j2.Set(1, 1, 1)
	if _, err := NewModel(j2, []float64{0, 0}); err == nil {
		t.Fatal("expected error for diagonal J")
	}
	if _, err := NewModel(mat.NewDense(2, 2), []float64{0}); err == nil {
		t.Fatal("expected error for h length mismatch")
	}
}

func TestFerromagnetGroundState(t *testing.T) {
	m := ferroModel(t, 4, 1)
	s, e, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	// All-aligned states minimize a ferromagnet.
	for i := 1; i < 4; i++ {
		if s[i] != s[0] {
			t.Fatalf("ferromagnet ground state not aligned: %v", s)
		}
	}
	// Energy: -(J_ij + J_ji) summed over 6 pairs = -12.
	if math.Abs(e-(-12)) > 1e-12 {
		t.Fatalf("ground energy %g, want -12", e)
	}
}

func TestFieldBreaksTie(t *testing.T) {
	j := mat.NewDense(2, 2)
	h := []float64{0.5, 0.5}
	m, err := NewModel(j, h)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 || s[1] != 1 {
		t.Fatalf("positive field should align spins up: %v", s)
	}
}

func TestEnergyConsistency(t *testing.T) {
	r := rng.New(3)
	n := 6
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k {
				j.Set(i, k, r.NormScaled(0, 1))
			}
		}
	}
	h := make([]float64, n)
	r.FillNorm(h, 0, 1)
	m, err := NewModel(j, h)
	if err != nil {
		t.Fatal(err)
	}
	// Flipping one spin changes energy by the analytic local field.
	s := make([]int8, n)
	for i := range s {
		if r.Float64() < 0.5 {
			s[i] = -1
		} else {
			s[i] = 1
		}
	}
	e0 := m.Energy(s)
	flip := 2
	var local float64
	for k := 0; k < n; k++ {
		if k != flip {
			local += (j.At(flip, k) + j.At(k, flip)) * float64(s[k])
		}
	}
	local += h[flip]
	s[flip] = -s[flip]
	e1 := m.Energy(s)
	// ΔE = 2 σ_flip_old (Σ (J+Jᵀ) σ + h).
	want := e0 + 2*float64(-s[flip])*local
	if math.Abs(e1-want) > 1e-9 {
		t.Fatalf("flip energy %g, want %g", e1, want)
	}
}

func TestCutValue(t *testing.T) {
	w := mat.NewDense(3, 3)
	w.Set(0, 1, 2)
	w.Set(1, 0, 2)
	w.Set(1, 2, 3)
	w.Set(2, 1, 3)
	s := []int8{1, -1, 1}
	if got := CutValue(w, s); got != 5 {
		t.Fatalf("CutValue = %g, want 5", got)
	}
	if got := CutValue(w, []int8{1, 1, 1}); got != 0 {
		t.Fatalf("uniform cut = %g, want 0", got)
	}
}

func TestMaxCutModelGroundStateIsMaxCut(t *testing.T) {
	// Small random graph: brute-force max cut must match the Ising ground
	// state of the MaxCutModel.
	r := rng.New(11)
	n := 8
	w := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if r.Float64() < 0.5 {
				v := r.Uniform(0.1, 1)
				w.Set(i, k, v)
				w.Set(k, i, v)
			}
		}
	}
	m, err := MaxCutModel(w)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	got := CutValue(w, s)

	best := 0.0
	tmp := make([]int8, n)
	for bits := 0; bits < 1<<uint(n); bits++ {
		for i := 0; i < n; i++ {
			if bits&(1<<uint(i)) != 0 {
				tmp[i] = 1
			} else {
				tmp[i] = -1
			}
		}
		if c := CutValue(w, tmp); c > best {
			best = c
		}
	}
	if math.Abs(got-best) > 1e-9 {
		t.Fatalf("ground-state cut %g != brute-force max cut %g", got, best)
	}
}

func TestBRIMAnnealFindsGoodCut(t *testing.T) {
	// BRIM should find a near-optimal max cut on a small graph.
	r := rng.New(5)
	n := 12
	w := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if r.Float64() < 0.4 {
				v := r.Uniform(0.2, 1)
				w.Set(i, k, v)
				w.Set(k, i, v)
			}
		}
	}
	m, err := MaxCutModel(w)
	if err != nil {
		t.Fatal(err)
	}
	brim, err := NewBRIM(m, DefaultAnnealSchedule(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	res := brim.Anneal(100)
	got := CutValue(w, res.Spins)

	s, _, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	best := CutValue(w, s)
	if got < 0.85*best {
		t.Fatalf("BRIM cut %g below 85%% of optimum %g", got, best)
	}
}

func TestBRIMPolarizes(t *testing.T) {
	m := ferroModel(t, 6, 0.5)
	brim, err := NewBRIM(m, AnnealSchedule{}, rng.New(2)) // no flips
	if err != nil {
		t.Fatal(err)
	}
	res := brim.Anneal(200)
	for i, v := range res.Voltage {
		if math.Abs(math.Abs(v)-1) > 1e-6 {
			t.Fatalf("BRIM node %d did not polarize: %g", i, v)
		}
	}
}

func TestQuantize(t *testing.T) {
	s := Quantize([]float64{-0.3, 0, 0.7})
	if s[0] != -1 || s[1] != 1 || s[2] != 1 {
		t.Fatalf("Quantize = %v", s)
	}
}

func TestGroundStateLargeNErrors(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		wantErr bool
	}{
		{"small ok", 4, false},
		{"at limit ok", 12, false},
		{"just over limit", 25, true},
		{"far over limit", 64, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var m *Model
			if c.wantErr {
				// GroundState gates on N before touching W, so an inflated
				// N on a small model exercises the guard without building
				// an impossible matrix.
				m = ferroModel(t, 4, 1)
				m.N = c.n
			} else {
				m = ferroModel(t, c.n, 1)
			}
			s, _, err := m.GroundState()
			if c.wantErr {
				if err == nil {
					t.Fatalf("N=%d: expected error, got state %v", c.n, s)
				}
				if s != nil {
					t.Fatalf("N=%d: error must not return a state", c.n)
				}
				return
			}
			if err != nil {
				t.Fatalf("N=%d: unexpected error %v", c.n, err)
			}
			if len(s) != m.N {
				t.Fatalf("N=%d: state length %d", c.n, len(s))
			}
		})
	}
}

func TestBRIMDeterministicWithSeed(t *testing.T) {
	m := ferroModel(t, 6, 0.5)
	run := func() float64 {
		brim, err := NewBRIM(m, DefaultAnnealSchedule(), rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return brim.Anneal(50).Energy
	}
	if run() != run() {
		t.Fatal("same seed must reproduce the same annealing result")
	}
}

func TestMetropolisFindsGroundStateSmall(t *testing.T) {
	r := rng.New(31)
	n := 10
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if r.Float64() < 0.5 {
				v := r.NormScaled(0, 1)
				j.Set(i, k, v)
				j.Set(k, i, v)
			}
		}
	}
	m, err := NewModel(j, make([]float64, n))
	if err != nil {
		t.Fatal(err)
	}
	_, wantE, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	res := NewMetropolis(m, rng.New(5)).Anneal(300)
	if res.Energy > wantE+1e-9 && res.Energy > wantE*0.95 {
		t.Fatalf("Metropolis energy %g, ground state %g", res.Energy, wantE)
	}
}

func TestMetropolisEnergyBookkeeping(t *testing.T) {
	// The incremental ΔE accounting must agree with a fresh Energy()
	// evaluation at the end (Result recomputes, so compare to best).
	r := rng.New(7)
	n := 8
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k {
				j.Set(i, k, r.NormScaled(0, 0.5))
			}
		}
	}
	h := make([]float64, n)
	r.FillNorm(h, 0, 0.3)
	m, err := NewModel(j, h)
	if err != nil {
		t.Fatal(err)
	}
	res := NewMetropolis(m, rng.New(9)).Anneal(100)
	if got := m.Energy(res.Spins); math.Abs(got-res.Energy) > 1e-9 {
		t.Fatalf("reported energy %g, recomputed %g", res.Energy, got)
	}
}

func TestMetropolisMaxCutComparableToBRIM(t *testing.T) {
	r := rng.New(12)
	n := 14
	w := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			if r.Float64() < 0.4 {
				v := r.Uniform(0.2, 1)
				w.Set(i, k, v)
				w.Set(k, i, v)
			}
		}
	}
	m, err := MaxCutModel(w)
	if err != nil {
		t.Fatal(err)
	}
	mres := NewMetropolis(m, rng.New(3)).Anneal(400)
	brim, err := NewBRIM(m, DefaultAnnealSchedule(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	bres := brim.Anneal(150)
	mcut := CutValue(w, mres.Spins)
	bcut := CutValue(w, bres.Spins)
	s, _, err := m.GroundState()
	if err != nil {
		t.Fatal(err)
	}
	best := CutValue(w, s)
	if mcut < 0.9*best {
		t.Fatalf("Metropolis cut %g below 90%% of optimum %g", mcut, best)
	}
	if bcut < 0.85*best {
		t.Fatalf("BRIM cut %g below 85%% of optimum %g", bcut, best)
	}
}
