package ising

import (
	"fmt"
	"math"

	"dsgl/internal/circuit"
	"dsgl/internal/engine"
)

// Dynamics selects which Ising-machine dynamics a Solver anneals with.
type Dynamics string

const (
	// BRIMDynamics anneals capacitor voltages on the bistable
	// resistively-coupled circuit, with random-flip escapes scaled by the
	// schedule's control ladder.
	BRIMDynamics Dynamics = "brim"
	// MetropolisDynamics runs the digital simulated annealer; the control
	// ladder is the temperature per sweep.
	MetropolisDynamics Dynamics = "metropolis"
	// OIMDynamics integrates the oscillator phase flow with the SHIL
	// binarization strength ramped as the ladder cools.
	OIMDynamics Dynamics = "oim"
)

// SolverDynamics lists the selectable dynamics in stable order.
func SolverDynamics() []Dynamics {
	return []Dynamics{BRIMDynamics, MetropolisDynamics, OIMDynamics}
}

// Dynamics integration constants. A schedule "step" is one observation
// checkpoint: a Metropolis sweep, or a block of Euler sub-steps for the
// continuous dynamics — so the three dynamics interpret the same Schedule
// and produce comparably-sized energy traces.
const (
	brimDt       = 0.05 // ns per Euler step
	brimSubsteps = 40   // Euler steps per schedule step (2 ns per flip event)
	brimFlipFrac = 0.25 // flip fraction at full heat (T = T0)
	oimDt        = 0.02 // ns per Euler step
	oimSubsteps  = 25   // Euler steps per schedule step
	oimShilK     = 1.0  // SHIL strength at the cold end of the ladder
)

// Solver adapts an Ising model to the engine.OptBackend contract: one
// instance, one selected dynamics, annealed under engine-compiled schedule
// plans with the engine's seeded multi-restart fan-out. The solver and its
// coupling network are immutable after construction; all mutable state
// lives in the per-worker SolveState, which is what makes parallel restarts
// race-free and bit-identical to a sequential loop.
type Solver struct {
	m    *Model
	dyn  Dynamics
	seed uint64
	// net is the BRIM coupling circuit, built once; nil for the other
	// dynamics.
	net *circuit.Network
}

// NewSolver builds an OptBackend for model m under the chosen dynamics.
func NewSolver(m *Model, dyn Dynamics, seed uint64) (*Solver, error) {
	s := &Solver{m: m, dyn: dyn, seed: seed}
	switch dyn {
	case BRIMDynamics:
		net, err := circuit.NewNetworkCSR(m.W, m.H, circuit.Config{Self: circuit.Linear})
		if err != nil {
			return nil, err
		}
		s.net = net
	case MetropolisDynamics, OIMDynamics:
	default:
		return nil, fmt.Errorf("ising: unknown dynamics %q (want %s|%s|%s)",
			dyn, BRIMDynamics, MetropolisDynamics, OIMDynamics)
	}
	return s, nil
}

// Model returns the Ising model this solver anneals.
func (s *Solver) Model() *Model { return s.m }

// Dynamics returns the selected dynamics.
func (s *Solver) Dynamics() Dynamics { return s.dyn }

// Name implements engine.OptBackend.
func (s *Solver) Name() string { return "ising-" + string(s.dyn) }

// Dim implements engine.OptBackend.
func (s *Solver) Dim() int { return s.m.N }

// BaseSeed implements engine.OptBackend.
func (s *Solver) BaseSeed() uint64 { return s.seed }

// EnergyOf implements engine.OptBackend: the Ising Hamiltonian at s.
func (s *Solver) EnergyOf(spins []int8) float64 { return s.m.Energy(spins) }

// solvePlan is a compiled schedule: the control ladder evaluated once per
// step, shared read-only by every restart that anneals under it.
type solvePlan struct {
	sched engine.Schedule
	temps []float64
}

// CompileSolvePlan implements engine.OptBackend.
func (s *Solver) CompileSolvePlan(sched engine.Schedule) any {
	temps := make([]float64, sched.Steps)
	for k := range temps {
		temps[k] = sched.At(k)
	}
	return &solvePlan{sched: sched, temps: temps}
}

// solverScratch is the per-state arena: derivative and coupling buffers for
// the continuous dynamics, local fields for Metropolis, and the all-free
// clamp mask the BRIM derivative wants.
type solverScratch struct {
	deriv []float64
	buf   []float64
	mask  []bool
	local []float64
	ps    phaseSystem
}

// AttachSolveState implements engine.OptBackend.
func (s *Solver) AttachSolveState(st *engine.SolveState) {
	n := s.m.N
	st.Scratch = &solverScratch{
		deriv: make([]float64, n),
		buf:   make([]float64, n),
		mask:  make([]bool, n),
		local: make([]float64, n),
		ps:    phaseSystem{w: s.m.W},
	}
}

// RunSolve implements engine.OptBackend: one restart of the selected
// dynamics under a compiled schedule plan. The best state seen at any
// checkpoint is kept, and its energy is recomputed from the spins at
// readout, so Res.Energy == EnergyOf(Res.Spins) holds bit-exactly — the
// identity the opt-best-energy-monotone invariant leans on.
func (s *Solver) RunSolve(st *engine.SolveState, plan any) (*engine.OptResult, error) {
	pl, ok := plan.(*solvePlan)
	if !ok {
		return nil, fmt.Errorf("%s: foreign plan type %T", s.Name(), plan)
	}
	switch s.dyn {
	case MetropolisDynamics:
		s.runMetropolis(st, pl)
	case BRIMDynamics:
		s.runBRIM(st, pl)
	case OIMDynamics:
		s.runOIM(st, pl)
	default:
		return nil, fmt.Errorf("ising: unknown dynamics %q", s.dyn)
	}
	st.Res.Energy = s.m.Energy(st.Res.Spins)
	st.Res.Steps = pl.sched.Steps
	return &st.Res, nil
}

// observe dispatches the per-checkpoint observer with the lazy energy
// closure; cheap no-op when no observer is installed.
func observe(st *engine.SolveState, step int, t float64) {
	if st.Observer != nil {
		st.Observer(engine.StepInfo{Step: step, TimeNs: t, EnergyFn: st.EnergyFn, X: st.X})
	}
}

// runMetropolis: one sweep per schedule step at ladder temperature T(k).
func (s *Solver) runMetropolis(st *engine.SolveState, pl *solvePlan) {
	n := s.m.N
	sc := st.Scratch.(*solverScratch)
	for i := range st.Spins {
		if st.RNG.Float64() < 0.5 {
			st.Spins[i] = -1
		} else {
			st.Spins[i] = 1
		}
	}
	rebuildLocal(s.m, st.Spins, sc.local)
	curE := s.m.Energy(st.Spins)
	bestE := curE
	copy(st.Res.Spins, st.Spins)
	st.Res.BestStep = 0
	for sweep, temp := range pl.temps {
		for k := 0; k < n; k++ {
			i := st.RNG.Intn(n)
			dE := 2 * float64(st.Spins[i]) * (sc.local[i] + s.m.H[i])
			if dE <= 0 || st.RNG.Float64() < math.Exp(-dE/temp) {
				applyFlip(s.m, st.Spins, i, sc.local)
				curE += dE
				if curE < bestE {
					bestE = curE
					copy(st.Res.Spins, st.Spins)
					st.Res.BestStep = sweep
				}
			}
		}
		observe(st, sweep, 0)
	}
}

// runBRIM: blocks of Euler integration on the coupling circuit, a quantized
// checkpoint after each block, then a random-flip escape whose fraction is
// the ladder value scaled to brimFlipFrac at full heat.
func (s *Solver) runBRIM(st *engine.SolveState, pl *solvePlan) {
	sc := st.Scratch.(*solverScratch)
	x := st.X
	for i := range x {
		if st.RNG.Float64() < 0.5 {
			x[i] = -0.1
		} else {
			x[i] = 0.1
		}
	}
	bestE := math.Inf(1)
	t := 0.0
	for e, temp := range pl.temps {
		for k := 0; k < brimSubsteps; k++ {
			s.net.DerivativeMasked(t, x, sc.deriv, sc.mask, sc.buf)
			for i := range x {
				x[i] += brimDt * sc.deriv[i]
			}
			s.net.ClampRails(x)
			t += brimDt
		}
		QuantizeInto(st.Spins, x)
		if en := s.m.Energy(st.Spins); en < bestE {
			bestE = en
			copy(st.Res.Spins, st.Spins)
			st.Res.BestStep = e
		}
		observe(st, e, t)
		if e < len(pl.temps)-1 {
			frac := brimFlipFrac * temp / pl.sched.T0
			for i := range x {
				if st.RNG.Float64() < frac {
					x[i] = -x[i]
				}
			}
		}
	}
}

// runOIM: blocks of Euler integration of the oscillator phase flow with the
// SHIL strength ramped from 0 (full heat) toward oimShilK as the ladder
// cools, a phase-quantized checkpoint after each block.
func (s *Solver) runOIM(st *engine.SolveState, pl *solvePlan) {
	sc := st.Scratch.(*solverScratch)
	phi := st.X
	for i := range phi {
		phi[i] = st.RNG.Uniform(0, 2*math.Pi)
	}
	bestE := math.Inf(1)
	t := 0.0
	for e, temp := range pl.temps {
		sc.ps.shilK = oimShilK * (1 - temp/pl.sched.T0)
		for k := 0; k < oimSubsteps; k++ {
			sc.ps.Derivative(t, phi, sc.deriv)
			for i := range phi {
				phi[i] += oimDt * sc.deriv[i]
			}
			t += oimDt
		}
		PhaseQuantizeInto(st.Spins, phi)
		if en := s.m.Energy(st.Spins); en < bestE {
			bestE = en
			copy(st.Res.Spins, st.Spins)
			st.Res.BestStep = e
		}
		observe(st, e, t)
	}
}
