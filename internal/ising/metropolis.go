package ising

import (
	"math"

	"dsgl/internal/rng"
)

// Metropolis is a digital simulated annealer for the Ising model — the
// class of "digital annealers/accelerators" the paper's related-work
// section contrasts with analog dynamical systems. It serves as a software
// comparator for BRIM: same model, algorithmic instead of physical
// annealing.
type Metropolis struct {
	Model *Model
	// T0 and T1 are the initial and final temperatures of the geometric
	// cooling schedule.
	T0, T1 float64
	rng    *rng.RNG
	// local[i] caches Σ_j (J_ij + J_ji) σ_j for O(1) flip evaluation.
	local []float64
}

// NewMetropolis builds an annealer with a standard geometric schedule.
func NewMetropolis(m *Model, r *rng.RNG) *Metropolis {
	return &Metropolis{Model: m, T0: 2, T1: 0.01, rng: r}
}

// Anneal runs sweeps full passes of Metropolis updates under geometric
// cooling and returns the best state seen.
func (a *Metropolis) Anneal(sweeps int) Result {
	n := a.Model.N
	s := make([]int8, n)
	for i := range s {
		if a.rng.Float64() < 0.5 {
			s[i] = -1
		} else {
			s[i] = 1
		}
	}
	a.rebuildLocal(s)

	best := make([]int8, n)
	copy(best, s)
	bestE := a.Model.Energy(s)
	curE := bestE

	if sweeps < 1 {
		sweeps = 1
	}
	cool := math.Pow(a.T1/a.T0, 1/float64(sweeps))
	temp := a.T0
	for sweep := 0; sweep < sweeps; sweep++ {
		for k := 0; k < n; k++ {
			i := a.rng.Intn(n)
			// Flipping spin i changes energy by ΔE = 2 σ_i (local_i + h_i).
			dE := 2 * float64(s[i]) * (a.local[i] + a.Model.H[i])
			if dE <= 0 || a.rng.Float64() < math.Exp(-dE/temp) {
				a.applyFlip(s, i)
				curE += dE
				if curE < bestE {
					bestE = curE
					copy(best, s)
				}
			}
		}
		temp *= cool
	}
	return Result{Spins: best, Energy: a.Model.Energy(best)}
}

// rebuildLocal recomputes the local-field cache from scratch.
func (a *Metropolis) rebuildLocal(s []int8) {
	n := a.Model.N
	if len(a.local) != n {
		a.local = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if j != i {
				sum += (a.Model.J.At(i, j) + a.Model.J.At(j, i)) * float64(s[j])
			}
		}
		a.local[i] = sum
	}
}

// applyFlip flips spin i and incrementally updates every local field.
func (a *Metropolis) applyFlip(s []int8, i int) {
	s[i] = -s[i]
	delta := 2 * float64(s[i])
	for j := 0; j < a.Model.N; j++ {
		if j != i {
			a.local[j] += (a.Model.J.At(j, i) + a.Model.J.At(i, j)) * delta
		}
	}
}
