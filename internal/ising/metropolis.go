package ising

import (
	"math"

	"dsgl/internal/rng"
)

// Metropolis is a digital simulated annealer for the Ising model — the
// class of "digital annealers/accelerators" the paper's related-work
// section contrasts with analog dynamical systems. It serves as a software
// comparator for BRIM: same model, algorithmic instead of physical
// annealing. Local fields are maintained over the sparse symmetrized
// coupling, so a flip costs O(degree) rather than O(N).
type Metropolis struct {
	Model *Model
	// T0 and T1 are the initial and final temperatures of the geometric
	// cooling schedule.
	T0, T1 float64
	rng    *rng.RNG
	// local[i] caches Σ_j W_ij σ_j (W = J + Jᵀ) for O(1) flip evaluation.
	local []float64
}

// NewMetropolis builds an annealer with a standard geometric schedule.
func NewMetropolis(m *Model, r *rng.RNG) *Metropolis {
	return &Metropolis{Model: m, T0: 2, T1: 0.01, rng: r}
}

// Anneal runs sweeps full passes of Metropolis updates under geometric
// cooling and returns the best state seen.
func (a *Metropolis) Anneal(sweeps int) Result {
	n := a.Model.N
	s := make([]int8, n)
	for i := range s {
		if a.rng.Float64() < 0.5 {
			s[i] = -1
		} else {
			s[i] = 1
		}
	}
	if len(a.local) != n {
		a.local = make([]float64, n)
	}
	rebuildLocal(a.Model, s, a.local)

	best := make([]int8, n)
	copy(best, s)
	bestE := a.Model.Energy(s)
	curE := bestE

	if sweeps < 1 {
		sweeps = 1
	}
	cool := math.Pow(a.T1/a.T0, 1/float64(sweeps))
	temp := a.T0
	for sweep := 0; sweep < sweeps; sweep++ {
		for k := 0; k < n; k++ {
			i := a.rng.Intn(n)
			// Flipping spin i changes energy by ΔE = 2 σ_i (local_i + h_i).
			dE := 2 * float64(s[i]) * (a.local[i] + a.Model.H[i])
			if dE <= 0 || a.rng.Float64() < math.Exp(-dE/temp) {
				applyFlip(a.Model, s, i, a.local)
				curE += dE
				if curE < bestE {
					bestE = curE
					copy(best, s)
				}
			}
		}
		temp *= cool
	}
	return Result{Spins: best, Energy: a.Model.Energy(best)}
}

// rebuildLocal recomputes the local-field cache local[i] = Σ_j W_ij σ_j
// from scratch in O(nnz).
func rebuildLocal(m *Model, s []int8, local []float64) {
	for i := 0; i < m.N; i++ {
		var sum float64
		for p := m.W.RowPtr[i]; p < m.W.RowPtr[i+1]; p++ {
			sum += m.W.Val[p] * float64(s[m.W.ColIdx[p]])
		}
		local[i] = sum
	}
}

// applyFlip flips spin i and incrementally updates the local fields of its
// neighbours in O(degree), using W's symmetry (W_ji = W_ij).
func applyFlip(m *Model, s []int8, i int, local []float64) {
	s[i] = -s[i]
	delta := 2 * float64(s[i])
	for p := m.W.RowPtr[i]; p < m.W.RowPtr[i+1]; p++ {
		local[m.W.ColIdx[p]] += m.W.Val[p] * delta
	}
}
