package ising

import (
	"math"

	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

// OIM is an oscillator-based Ising machine (Wang & Roychowdhury 2019; the
// Kuramoto/XY-model family of the paper's related-work section). Spins are
// oscillator phases φ_i with Lyapunov function
//
//	H_XY = -½ Σ_{i≠j} W_ij cos(φ_i - φ_j) - K Σ cos(2 φ_i),  W = J + Jᵀ
//
// where the second term is sub-harmonic injection locking (SHIL) that
// binarizes phases toward {0, π}. The paper argues these machines do not
// extend naturally to real-valued quadratic objectives — this comparator
// exists to demonstrate exactly that contrast against the Real-Valued DSPU.
type OIM struct {
	Model *Model
	// ShilK is the SHIL binarization strength (default 1).
	ShilK float64
	// Dt is the integration step (default 0.02).
	Dt  float64
	rng *rng.RNG
}

// NewOIM builds an oscillator machine for the Ising model m.
func NewOIM(m *Model, r *rng.RNG) *OIM {
	return &OIM{Model: m, ShilK: 1, Dt: 0.02, rng: r}
}

// phaseSystem implements the gradient flow dφ/dt = -∂H_XY/∂φ over the
// sparse symmetrized coupling: one derivative costs O(nnz).
type phaseSystem struct {
	w     *mat.CSR
	shilK float64
}

func (p *phaseSystem) Dim() int { return p.w.Rows }

func (p *phaseSystem) Derivative(_ float64, phi, dst []float64) {
	for i := 0; i < p.w.Rows; i++ {
		var drive float64
		for q := p.w.RowPtr[i]; q < p.w.RowPtr[i+1]; q++ {
			drive -= p.w.Val[q] * math.Sin(phi[i]-phi[p.w.ColIdx[q]])
		}
		drive -= 2 * p.shilK * math.Sin(2*phi[i])
		dst[i] = drive
	}
}

// Anneal evolves the oscillator phases for the given simulated duration
// with the SHIL strength ramped linearly from 0 to ShilK, then reads out
// spins by phase binarization (φ near 0 → +1, near π → −1).
func (o *OIM) Anneal(durationNs float64) Result {
	n := o.Model.N
	phi := make([]float64, n)
	for i := range phi {
		phi[i] = o.rng.Uniform(0, 2*math.Pi)
	}
	sys := &phaseSystem{w: o.Model.W, shilK: 0}
	ig := ode.NewRK4()
	steps := int(durationNs / o.Dt)
	t := 0.0
	for s := 0; s < steps; s++ {
		sys.shilK = o.ShilK * float64(s) / float64(steps)
		t = ig.Step(sys, t, o.Dt, phi)
	}
	spins := PhaseQuantize(phi)
	return Result{
		Spins:   spins,
		Voltage: phi,
		Energy:  o.Model.Energy(spins),
		TimeNs:  t,
	}
}

// PhaseQuantize maps oscillator phases to Ising spins: +1 when the phase
// is within π/2 of 0 (mod 2π), −1 otherwise.
func PhaseQuantize(phi []float64) []int8 {
	s := make([]int8, len(phi))
	PhaseQuantizeInto(s, phi)
	return s
}

// PhaseQuantizeInto is PhaseQuantize without the allocation: dst must have
// len(phi).
func PhaseQuantizeInto(dst []int8, phi []float64) {
	for i, p := range phi {
		m := math.Mod(p, 2*math.Pi)
		if m < 0 {
			m += 2 * math.Pi
		}
		if m < math.Pi/2 || m > 3*math.Pi/2 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
}

// XYEnergy evaluates the oscillator Lyapunov function at phases phi (with
// the SHIL term at full strength k).
func XYEnergy(m *Model, phi []float64, k float64) float64 {
	var e float64
	for i := 0; i < m.N; i++ {
		for q := m.W.RowPtr[i]; q < m.W.RowPtr[i+1]; q++ {
			// Each undirected pair appears twice in the symmetric CSR; the
			// ½ folds the double count back to the i<j sum.
			e -= 0.5 * m.W.Val[q] * math.Cos(phi[i]-phi[m.W.ColIdx[q]])
		}
		e -= k * math.Cos(2*phi[i])
	}
	return e
}
