package dspu

import "testing"

// TestObserverEnergyDescendsOnDensePath checks the dense-path observer: the
// symmetric chain DSPU is an exact gradient flow of H_RV, so the per-step
// observer must see the energy fall monotonically (up to forward-Euler
// slack) and one callback per integration step taken.
func TestObserverEnergyDescendsOnDensePath(t *testing.T) {
	d := chainDSPU(t, 6, 0.3, Config{MaxTimeNs: 200, Seed: 9})
	st := d.NewInferState()
	var trace []float64
	steps := 0
	st.SetObserver(func(si StepInfo) {
		if si.Step != steps {
			t.Fatalf("step sequence broken: got %d, want %d", si.Step, steps)
		}
		steps++
		// EnergyFn is only valid during the callback; evaluate it here.
		trace = append(trace, si.EnergyFn())
	})
	res, err := d.InferWith(st, []Observation{{Index: 0, Value: 0.6}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.Steps {
		t.Fatalf("observer saw %d steps, result reports %d", steps, res.Steps)
	}
	if trace[len(trace)-1] != res.Energy {
		t.Fatalf("last observed energy %g != FinalEnergy %g", trace[len(trace)-1], res.Energy)
	}
	for k := 1; k < len(trace); k++ {
		if trace[k] > trace[k-1]+1e-9 {
			t.Fatalf("energy rose at step %d: %.12g -> %.12g", k, trace[k-1], trace[k])
		}
	}
	// Removing the observer stops the callbacks.
	st.SetObserver(nil)
	n := steps
	if _, err := d.InferWith(st, nil, 3); err != nil {
		t.Fatal(err)
	}
	if steps != n {
		t.Fatal("observer called after SetObserver(nil)")
	}
}

func TestObserverNilKeepsZeroAllocDense(t *testing.T) {
	d := chainDSPU(t, 6, 0.3, Config{MaxTimeNs: 100, Seed: 9})
	st := d.NewInferState()
	obs := []Observation{{Index: 0, Value: 0.6}}
	if _, err := d.InferWith(st, obs, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := d.InferWith(st, obs, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-observer InferWith allocated %v per op, want 0", allocs)
	}
}
