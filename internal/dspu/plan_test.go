package dspu

import (
	"math"
	"strings"
	"testing"

	"dsgl/internal/circuit"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

// identicalResults asserts two dense-path Results carry the same IEEE-754
// bit patterns everywhere — the dspu half of the plan-naive-identity
// contract.
func identicalResults(t *testing.T, label string, plan, naive *Result) {
	t.Helper()
	if len(plan.Voltage) != len(naive.Voltage) {
		t.Fatalf("%s: voltage length %d vs %d", label, len(plan.Voltage), len(naive.Voltage))
	}
	for i := range plan.Voltage {
		if math.Float64bits(plan.Voltage[i]) != math.Float64bits(naive.Voltage[i]) {
			t.Fatalf("%s: voltage[%d] differs: plan %v naive %v", label, i, plan.Voltage[i], naive.Voltage[i])
		}
	}
	if math.Float64bits(plan.LatencyNs) != math.Float64bits(naive.LatencyNs) {
		t.Fatalf("%s: latency %v vs %v", label, plan.LatencyNs, naive.LatencyNs)
	}
	if math.Float64bits(plan.Energy) != math.Float64bits(naive.Energy) {
		t.Fatalf("%s: energy %v vs %v", label, plan.Energy, naive.Energy)
	}
	if plan.Steps != naive.Steps || plan.Settled != naive.Settled {
		t.Fatalf("%s: steps/settled (%d,%v) vs (%d,%v)", label, plan.Steps, plan.Settled, naive.Steps, naive.Settled)
	}
}

// TestDSPUInferPlanBitIdentical: the plan path must reproduce the naive
// network bit for bit under both integrators, for several seeds and clamp
// patterns — including no clamps (all dyn) and all clamps (nothing free).
func TestDSPUInferPlanBitIdentical(t *testing.T) {
	for _, integ := range []struct {
		name string
		mk   func() ode.Integrator
	}{
		{"euler", func() ode.Integrator { return ode.NewEuler() }},
		{"rk4", func() ode.Integrator { return ode.NewRK4() }},
	} {
		t.Run(integ.name, func(t *testing.T) {
			d := chainDSPU(t, 8, 0.3, Config{MaxTimeNs: 200, Seed: 9, Integrator: integ.mk()})
			for _, seed := range []uint64{1, 5, 99} {
				for _, obs := range [][]Observation{
					nil,
					{{Index: 0, Value: 0.6}},
					{{Index: 0, Value: 0.6}, {Index: 4, Value: -0.2}},
					{{Index: 0, Value: 0.1}, {Index: 1, Value: 0.2}, {Index: 2, Value: -0.3}, {Index: 3, Value: 0.4}, {Index: 4, Value: 0.5}, {Index: 5, Value: -0.6}, {Index: 6, Value: 0.7}, {Index: 7, Value: -0.8}},
				} {
					plan, err := d.InferWith(d.NewInferState(), obs, seed)
					if err != nil {
						t.Fatal(err)
					}
					plan = plan.Detach()
					naive, err := d.InferWithNaive(d.NewInferState(), obs, seed)
					if err != nil {
						t.Fatal(err)
					}
					identicalResults(t, integ.name, plan, naive)
				}
			}
		})
	}
}

// TestDSPUInferPlanBitIdenticalNoisy extends the contract to the disturbed
// network: the plan path replicates the coupler-noise scale and the
// per-free-node draw order, so with a shared reseeded RNG the two paths see
// the same noise stream and settle identically.
func TestDSPUInferPlanBitIdenticalNoisy(t *testing.T) {
	run := func(naive bool) *Result {
		noiseRNG := rng.New(77)
		d := chainDSPU(t, 8, 0.3, Config{
			MaxTimeNs: 100, Seed: 9,
			Noise: &circuit.NoiseModel{NodeSigma: 0.02, CouplerSigma: 0.02, RNG: noiseRNG},
		})
		obs := []Observation{{Index: 0, Value: 0.6}, {Index: 4, Value: -0.2}}
		var res *Result
		var err error
		if naive {
			res, err = d.InferWithNaive(d.NewInferState(), obs, 3)
		} else {
			res, err = d.InferWith(d.NewInferState(), obs, 3)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.Detach()
	}
	identicalResults(t, "noisy", run(false), run(true))
}

// TestDSPUPlanCacheReuse: repeated inferences sharing a clamp pattern
// compile once; a new pattern compiles again.
func TestDSPUPlanCacheReuse(t *testing.T) {
	d := chainDSPU(t, 8, 0.3, Config{MaxTimeNs: 100, Seed: 9})
	st := d.NewInferState()
	obs := []Observation{{Index: 0, Value: 0.6}}
	for k := 0; k < 5; k++ {
		if _, err := d.InferWith(st, obs, uint64(k)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := d.PlanCacheStats()
	if misses != 1 || hits != 4 {
		t.Fatalf("shared pattern: hits=%d misses=%d, want 4/1", hits, misses)
	}
	if _, err := d.InferWith(st, []Observation{{Index: 3, Value: 0.1}}, 0); err != nil {
		t.Fatal(err)
	}
	if _, misses = d.PlanCacheStats(); misses != 2 {
		t.Fatalf("new pattern did not compile: misses=%d", misses)
	}
}

// TestDSPUDuplicateObservationRejected: the dense path rejects duplicate
// observation indices on both the plan and naive entries.
func TestDSPUDuplicateObservationRejected(t *testing.T) {
	d := chainDSPU(t, 6, 0.3, Config{MaxTimeNs: 100, Seed: 9})
	dup := []Observation{{Index: 2, Value: 0.1}, {Index: 2, Value: 0.1}}
	if _, err := d.Infer(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("Infer: got %v, want duplicate-observation error", err)
	}
	if _, err := d.InferWithNaive(d.NewInferState(), dup, 1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("InferWithNaive: got %v, want duplicate-observation error", err)
	}
}

// TestDSPUNaiveZeroAlloc keeps the naive reference loop allocation-free
// after warm-up, like the plan path.
func TestDSPUNaiveZeroAlloc(t *testing.T) {
	d := chainDSPU(t, 6, 0.3, Config{MaxTimeNs: 100, Seed: 9})
	st := d.NewInferState()
	obs := []Observation{{Index: 0, Value: 0.6}}
	if _, err := d.InferWithNaive(st, obs, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := d.InferWithNaive(st, obs, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("InferWithNaive allocated %v per op, want 0", allocs)
	}
}
