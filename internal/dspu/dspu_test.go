package dspu

import (
	"math"
	"testing"

	"dsgl/internal/circuit"
	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

func chainDSPU(t *testing.T, n int, w float64, cfg Config) *DSPU {
	t.Helper()
	j := mat.NewDense(n, n)
	for i := 0; i+1 < n; i++ {
		j.Set(i, i+1, w)
		j.Set(i+1, i, w)
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	d, err := New(j, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRejectsBadParams(t *testing.T) {
	j := mat.NewDense(2, 2)
	if _, err := New(j, []float64{-1, 0}, Config{}); err == nil {
		t.Fatal("expected error for non-negative h")
	}
	j.Set(0, 0, 1)
	if _, err := New(j, []float64{-1, -1}, Config{}); err == nil {
		t.Fatal("expected error for diagonal J")
	}
}

func TestInferTwoNodeFixedPoint(t *testing.T) {
	d := chainDSPU(t, 2, 0.6, Config{})
	res, err := d.Infer([]Observation{{Index: 0, Value: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6 * 0.5 // -J v / h with h = -1
	if math.Abs(res.Voltage[1]-want) > 1e-4 {
		t.Fatalf("node 1 = %g, want %g", res.Voltage[1], want)
	}
	if !res.Settled {
		t.Fatal("simple system should settle within default budget")
	}
	if res.Voltage[0] != 0.5 {
		t.Fatalf("clamped node moved: %g", res.Voltage[0])
	}
}

func TestInferMatchesGaussSeidelEquilibrium(t *testing.T) {
	r := rng.New(21)
	n := 16
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k && r.Float64() < 0.4 {
				j.Set(i, k, r.NormScaled(0, 0.15))
			}
		}
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -1.2
	}
	d, err := New(j, h, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{{Index: 0, Value: 0.3}, {Index: 1, Value: -0.4}, {Index: 2, Value: 0.1}}
	res, err := d.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Inference no longer mutates the shared network's clamp mask, so the
	// reference Gauss-Seidel solve must pin the observed nodes itself.
	x := make([]float64, n)
	for _, o := range obs {
		x[o.Index] = o.Value
		d.Net.Clamp(o.Index)
	}
	eq := d.Net.Equilibrium(x, 500)
	for i := 0; i < n; i++ {
		if math.Abs(res.Voltage[i]-eq[i]) > 1e-3 {
			t.Fatalf("node %d: annealed %g vs equilibrium %g", i, res.Voltage[i], eq[i])
		}
	}
}

func TestInferValidation(t *testing.T) {
	d := chainDSPU(t, 3, 0.5, Config{})
	if _, err := d.Infer([]Observation{{Index: 9, Value: 0}}); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
	if _, err := d.Infer([]Observation{{Index: 0, Value: 5}}); err == nil {
		t.Fatal("expected error for value beyond rails")
	}
	if _, err := d.InferFrom([]float64{0}, nil); err == nil {
		t.Fatal("expected error for wrong state length")
	}
}

func TestInferDeterministicWithSeed(t *testing.T) {
	mk := func() float64 {
		d := chainDSPU(t, 8, 0.3, Config{Seed: 77})
		res, err := d.Infer([]Observation{{Index: 0, Value: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Voltage[7]
	}
	if mk() != mk() {
		t.Fatal("same seed must reproduce inference")
	}
}

func TestLatencyReported(t *testing.T) {
	d := chainDSPU(t, 4, 0.5, Config{MaxTimeNs: 50})
	res, err := d.Infer([]Observation{{Index: 0, Value: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyNs <= 0 || res.LatencyNs > 50+1e-9 {
		t.Fatalf("latency %g out of range", res.LatencyNs)
	}
	if res.Steps <= 0 {
		t.Fatal("no steps recorded")
	}
}

func TestEnergyDecreasesDuringInference(t *testing.T) {
	d := chainDSPU(t, 6, 0.4, Config{Seed: 3})
	x0 := make([]float64, 6)
	rng.New(3).FillUniform(x0, -0.5, 0.5)
	e0 := d.Energy(x0)
	res, err := d.InferFrom(x0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > e0 {
		t.Fatalf("energy rose: %g -> %g", e0, res.Energy)
	}
}

func TestTraceRunSampling(t *testing.T) {
	d := chainDSPU(t, 3, 0.5, Config{})
	x0 := make([]float64, 3)
	tr, err := d.TraceRun(x0, []Observation{{Index: 0, Value: 0.5}}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.TimesNs) < 10 || len(tr.TimesNs) != len(tr.States) {
		t.Fatalf("trace has %d samples", len(tr.TimesNs))
	}
	if tr.TimesNs[0] != 0 {
		t.Fatal("trace must start at t=0")
	}
	// Clamped node constant across the trace.
	for _, st := range tr.States {
		if st[0] != 0.5 {
			t.Fatalf("clamped node drifted: %g", st[0])
		}
	}
}

func TestRK4IntegratorOption(t *testing.T) {
	j := mat.NewDense(2, 2)
	j.Set(0, 1, 0.6)
	j.Set(1, 0, 0.6)
	d, err := New(j, []float64{-1, -1}, Config{Integrator: ode.NewRK4()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Infer([]Observation{{Index: 0, Value: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Voltage[1]-0.3) > 1e-4 {
		t.Fatalf("RK4 fixed point %g, want 0.3", res.Voltage[1])
	}
}

func TestNoisyInferenceStaysClose(t *testing.T) {
	j := mat.NewDense(2, 2)
	j.Set(0, 1, 0.6)
	j.Set(1, 0, 0.6)
	d, err := New(j, []float64{-1, -1}, Config{
		Noise: &circuit.NoiseModel{NodeSigma: 0.05, CouplerSigma: 0.05, RNG: rng.New(8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Infer([]Observation{{Index: 0, Value: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Voltage[1]-0.3) > 0.1 {
		t.Fatalf("noisy fixed point %g too far from 0.3", res.Voltage[1])
	}
}

func TestSparseDSPUMatchesDense(t *testing.T) {
	r := rng.New(13)
	n := 10
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k && r.Float64() < 0.3 {
				j.Set(i, k, r.NormScaled(0, 0.2))
			}
		}
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	dd, err := New(j, h, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewCSR(mat.FromDense(j, 0), h, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	obs := []Observation{{Index: 0, Value: 0.4}}
	rd, err := dd.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ds.Infer(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(rd.Voltage[i]-rs.Voltage[i]) > 1e-9 {
			t.Fatalf("dense/sparse mismatch at %d: %g vs %g", i, rd.Voltage[i], rs.Voltage[i])
		}
	}
}
