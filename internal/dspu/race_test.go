package dspu

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentInferenceSharedDSPU exercises the documented concurrency
// contract: one DSPU, many goroutines, each with a private InferState. The
// old implementation mutated the shared circuit.Network clamp mask through
// ClampSet on every inference, so two goroutines with different observation
// patterns corrupted each other; run under -race this test catches any
// regression. Results must also stay bit-identical to a sequential run.
func TestConcurrentInferenceSharedDSPU(t *testing.T) {
	d := chainDSPU(t, 12, 0.3, Config{MaxTimeNs: 150, Seed: 9})
	patterns := [][]Observation{
		{{Index: 0, Value: 0.6}},
		{{Index: 3, Value: -0.4}, {Index: 7, Value: 0.2}},
	}

	// Sequential reference, one fresh state per pattern.
	want := make([]*Result, len(patterns))
	for i, obs := range patterns {
		res, err := d.InferWith(d.NewInferState(), obs, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Detach()
	}

	const rounds = 25
	var wg sync.WaitGroup
	errs := make([]error, len(patterns))
	for i, obs := range patterns {
		wg.Add(1)
		go func(i int, obs []Observation) {
			defer wg.Done()
			st := d.NewInferState()
			for r := 0; r < rounds; r++ {
				res, err := d.InferWith(st, obs, uint64(100+i))
				if err != nil {
					errs[i] = err
					return
				}
				for k := range res.Voltage {
					if math.Float64bits(res.Voltage[k]) != math.Float64bits(want[i].Voltage[k]) {
						t.Errorf("pattern %d round %d node %d: concurrent %v, sequential %v",
							i, r, k, res.Voltage[k], want[i].Voltage[k])
						return
					}
				}
			}
		}(i, obs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
	}
}

// TestConcurrentNaiveAndPlanned mixes the naive and planned paths across
// goroutines on one DSPU — both must be free of shared mutable state.
func TestConcurrentNaiveAndPlanned(t *testing.T) {
	d := chainDSPU(t, 10, 0.3, Config{MaxTimeNs: 120, Seed: 4})
	obs := []Observation{{Index: 0, Value: 0.5}, {Index: 5, Value: -0.3}}
	ref, err := d.InferWith(d.NewInferState(), obs, 7)
	if err != nil {
		t.Fatal(err)
	}
	ref = ref.Detach()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := d.NewInferState()
			for r := 0; r < 10; r++ {
				var res *Result
				var err error
				if g%2 == 0 {
					res, err = d.InferWith(st, obs, 7)
				} else {
					res, err = d.InferWithNaive(st, obs, 7)
				}
				if err != nil {
					t.Error(err)
					return
				}
				if math.Float64bits(res.Energy) != math.Float64bits(ref.Energy) {
					t.Errorf("goroutine %d: energy %v, want %v", g, res.Energy, ref.Energy)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
