// Package dspu implements the Real-Valued Dynamical-System Processing Unit
// of paper Sec. III: a BRIM-derived machine whose circulative resistor rings
// replace the linear self-reaction with a quadratic one, letting capacitor
// voltages stabilize at real values instead of polarizing to the rails.
//
// A DSPU performs graph-learning inference by natural annealing: observed
// node voltages are clamped, unknown nodes evolve under the coupling
// currents, and the settled voltages are the predictions (Sec. III.C).
//
// The DSPU is the dense Backend of the shared inference engine
// (internal/engine): observation validation, clamp-plan caching, seeding,
// and batch fan-out live in the engine; this package supplies the node
// dynamics (the circuit network, its clamp-plan compilation, and the
// integration loop).
package dspu

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dsgl/internal/circuit"
	"dsgl/internal/engine"
	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

// Config collects DSPU runtime parameters.
type Config struct {
	// Dt is the integration timestep in ns. Default 0.05.
	Dt float64
	// MaxTimeNs bounds one annealing run. Default 1000 ns.
	MaxTimeNs float64
	// SettleTol: the run stops early once max |dσ/dt| < SettleTol.
	// Default 1e-6 per ns.
	SettleTol float64
	// VRail bounds voltages. Default 1.
	VRail float64
	// Capacitance sets the node time constant. Default 1.
	Capacitance float64
	// Integrator defaults to forward Euler.
	Integrator ode.Integrator
	// Noise optionally injects node/coupler disturbances (Fig. 13).
	Noise *circuit.NoiseModel
	// Seed for unknown-node initialization.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Dt == 0 {
		c.Dt = 0.05
	}
	if c.MaxTimeNs == 0 {
		c.MaxTimeNs = 1000
	}
	if c.SettleTol == 0 {
		c.SettleTol = 1e-6
	}
	if c.VRail == 0 {
		c.VRail = 1
	}
	if c.Capacitance == 0 {
		c.Capacitance = 1
	}
	if c.Integrator == nil {
		c.Integrator = ode.NewEuler()
	}
}

// DSPU is a single real-valued dynamical-system processing unit holding a
// trained parameter set (J, h).
//
// Concurrency: inference entry points taking an InferState are safe to call
// from multiple goroutines with distinct states — each state carries its own
// clamp mask, coupling scratch, and integrator clone, and the network is
// only read. The exception is a configured noise model, whose RNG is shared:
// noisy inference must stay single-threaded. Infer (which advances the
// DSPU's internal RNG) and TraceRun (which sets the network clamp set) are
// also single-threaded by design.
type DSPU struct {
	N   int
	Net *circuit.Network
	cfg Config
	rng *rng.RNG

	// The engine is created lazily on first use, mirroring
	// scalable.Machine: tests may construct literals that never infer.
	engOnce sync.Once
	eng     *engine.Engine

	// Column→rows adjacency of J, built lazily on the first plan-delta
	// compile (plan.go).
	colRowsOnce sync.Once
	jColRows    [][]int32
}

// Engine returns the inference engine driving this DSPU, creating it on
// first use.
func (d *DSPU) Engine() *engine.Engine {
	d.engOnce.Do(func() { d.eng = engine.New(d) })
	return d.eng
}

// New builds a DSPU from trained parameters. j must be square with zero
// diagonal; every h_i must be strictly negative (the convexity condition
// enforced during training).
func New(j *mat.Dense, h []float64, cfg Config) (*DSPU, error) {
	cfg.fillDefaults()
	net, err := circuit.NewNetwork(j, h, circuit.Config{
		Self:        circuit.Quadratic,
		Capacitance: cfg.Capacitance,
		VRail:       cfg.VRail,
		Noise:       cfg.Noise,
	})
	if err != nil {
		return nil, err
	}
	return &DSPU{N: j.Rows, Net: net, cfg: cfg, rng: rng.New(cfg.Seed)}, nil
}

// NewCSR builds a DSPU from a sparse coupling matrix.
func NewCSR(j *mat.CSR, h []float64, cfg Config) (*DSPU, error) {
	cfg.fillDefaults()
	net, err := circuit.NewNetworkCSR(j, h, circuit.Config{
		Self:        circuit.Quadratic,
		Capacitance: cfg.Capacitance,
		VRail:       cfg.VRail,
		Noise:       cfg.Noise,
	})
	if err != nil {
		return nil, err
	}
	return &DSPU{N: j.Rows, Net: net, cfg: cfg, rng: rng.New(cfg.Seed)}, nil
}

// Result is the outcome of one inference (annealing) run; Energy is H_RV at
// the settled state.
type Result = engine.Result

// Observation fixes node Index at Value during inference.
type Observation = engine.Observation

// StepInfo is the per-step telemetry handed to a StepObserver; see
// engine.StepInfo. The dense path populates Step, TimeNs, the lazy H_RV
// EnergyFn, and X.
type StepInfo = engine.StepInfo

// StepObserver receives StepInfo after every integration step of an
// inference; see engine.StepObserver.
type StepObserver = engine.StepObserver

// InferState is a reusable scratch arena for DSPU inference; see
// engine.InferState. The dense-path buffers (derivative, folded bias,
// coupling scratch, per-state ODE systems, integrator clone) hang off the
// state's Scratch field, which is what makes concurrent inference on
// distinct states of one DSPU race-free.
type InferState = engine.InferState

// dscratch is the DSPU's backend arena inside an engine.InferState.
type dscratch struct {
	deriv    []float64
	bias     []float64 // folded constant coupling currents (plan path)
	coupling []float64 // per-evaluation coupling buffer, shared by both systems
	psys     planSys   // plan-path ode.System, bound per inference
	naive    naiveSys  // naive-path ode.System over the state's clamp mask
	integ    ode.Integrator
}

// naiveSys is the per-state naive reference system: the raw circuit network
// evaluated with the state's own clamp mask and coupling buffer, so two
// states of one DSPU never contend on network scratch (the historical
// ClampSet-on-the-shared-network race).
type naiveSys struct {
	nw      *circuit.Network
	clamped []bool
	buf     []float64
}

// Dim implements ode.System.
func (s *naiveSys) Dim() int { return s.nw.N }

// Derivative implements ode.System.
func (s *naiveSys) Derivative(t float64, x, dst []float64) {
	s.nw.DerivativeMasked(t, x, dst, s.clamped, s.buf)
}

// AttachState allocates the DSPU's scratch arena onto an engine state.
// Called once per InferState by engine.NewInferState.
func (d *DSPU) AttachState(st *InferState) {
	sc := &dscratch{
		deriv:    make([]float64, d.N),
		bias:     make([]float64, d.N),
		coupling: make([]float64, d.N),
		integ:    ode.Clone(d.cfg.Integrator),
	}
	sc.naive = naiveSys{nw: d.Net, clamped: st.Clamped, buf: sc.coupling}
	st.Scratch = sc
}

// Backend contract (engine.Backend): identity and bounds.

// Name prefixes error messages and names the backend in CLIs and reports.
func (d *DSPU) Name() string { return "dspu" }

// Dim is the state dimension.
func (d *DSPU) Dim() int { return d.N }

// Rails is the voltage rail bound observations must respect.
func (d *DSPU) Rails() float64 { return d.cfg.VRail }

// BaseSeed is the configured seed; window i of a batch runs with BaseSeed+i.
func (d *DSPU) BaseSeed() uint64 { return d.cfg.Seed }

// CompilePlan compiles the clamp pattern into a *clampPlan (see plan.go).
func (d *DSPU) CompilePlan(clamped []bool) any { return d.compilePlan(clamped) }

// The DSPU delta-compiles clamp plans for streaming inference (plan.go).
var _ engine.DeltaBackend = (*DSPU)(nil)

// RunPlanned runs the integration loop over the clamp-plan system.
func (d *DSPU) RunPlanned(st *InferState, plan any) (*Result, error) {
	sc := st.Scratch.(*dscratch)
	return d.annealLoop(st, sc, d.planSystem(st, sc, plan.(*clampPlan)))
}

// RunNaive runs the integration loop over the raw network (per-state mask).
func (d *DSPU) RunNaive(st *InferState) (*Result, error) {
	sc := st.Scratch.(*dscratch)
	return d.annealLoop(st, sc, &sc.naive)
}

// EnergyAt evaluates the real-valued Hamiltonian H_RV at state x.
func (d *DSPU) EnergyAt(x []float64) float64 { return d.Net.Energy(x) }

// EffectiveJ reconstructs the dense coupling matrix the network realizes —
// the counterpart of scalable.Machine.EffectiveJ for the single-PE dense
// backend. Construction converts the trained J to CSR dropping only exact
// zeros and keeping every surviving entry bit-exact, so EffectiveJ equals
// the constructor's J bit-for-bit; the lossless-realization and snapshot
// round-trip verify invariants compare against it.
func (d *DSPU) EffectiveJ() *mat.Dense { return d.Net.J.ToDense() }

// ClampedEnergyAt evaluates the conditional Hamiltonian of the free
// subsystem given the clamped nodes (the Lyapunov function of clamped
// annealing, mirroring scalable.Machine.ClampedEnergyAt): free-free
// couplings weigh 1/2, free-clamp couplings full weight (the clamped node
// is a boundary condition, not a co-descending coordinate), clamped rows
// dropped.
func (d *DSPU) ClampedEnergyAt(x []float64, clamped []bool) float64 {
	var e float64
	s := d.Net.J
	for i := 0; i < s.Rows; i++ {
		if clamped[i] {
			continue
		}
		xi := x[i]
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			w := 0.5
			if clamped[s.ColIdx[p]] {
				w = 1
			}
			e -= w * s.Val[p] * xi * x[s.ColIdx[p]]
		}
	}
	for i, h := range d.Net.H {
		if clamped[i] {
			continue
		}
		switch d.Net.Self {
		case circuit.Linear:
			e -= h * x[i]
		case circuit.Quadratic:
			e -= 0.5 * h * x[i] * x[i]
		}
	}
	return e
}

// ResidualAt evaluates the noise-free equilibrium residual max |dσ/dt| at
// state x, skipping nodes marked in clamped (nil = no node clamped).
func (d *DSPU) ResidualAt(x []float64, clamped []bool) (float64, error) {
	if len(x) != d.N {
		return 0, fmt.Errorf("dspu: state has %d entries, want %d", len(x), d.N)
	}
	if clamped == nil {
		clamped = make([]bool, d.N)
	} else if len(clamped) != d.N {
		return 0, fmt.Errorf("dspu: clamp mask has %d entries, want %d", len(clamped), d.N)
	}
	return d.Net.Residual(x, clamped, make([]float64, d.N)), nil
}

// SettleResidualTol is the residual bound a Settled result guarantees: the
// settle check stops the loop the moment the (deterministic) derivative
// norm falls below SettleTol, at the reported state.
func (d *DSPU) SettleResidualTol() float64 { return d.cfg.SettleTol }

// NewInferState allocates a scratch arena sized for this DSPU.
func (d *DSPU) NewInferState() *InferState { return d.Engine().NewInferState() }

// Infer clamps the observations, randomly initializes the free nodes, and
// anneals to equilibrium. It returns the settled state. Successive calls
// advance the DSPU's internal RNG, so repeated inferences explore different
// initializations; use InferWith / InferSeeded for explicit per-call
// seeding.
func (d *DSPU) Infer(obs []Observation) (*Result, error) {
	x := make([]float64, d.N)
	d.rng.FillUniform(x, -0.1, 0.1)
	return d.InferFrom(x, obs)
}

// InferFrom is Infer with an explicit initial state for the free nodes.
func (d *DSPU) InferFrom(x0 []float64, obs []Observation) (*Result, error) {
	return d.Engine().InferFrom(x0, obs)
}

// InferSeeded anneals with an explicit seed for free-node initialization,
// allocating a fresh state per call.
func (d *DSPU) InferSeeded(obs []Observation, seed uint64) (*Result, error) {
	return d.Engine().InferSeeded(obs, seed)
}

// InferWith runs one inference on a reusable scratch state, seeding the
// free-node initialization from seed (independent of the DSPU's internal
// RNG stream). After the state's first use the call performs zero heap
// allocations; the returned Result aliases the state's buffers.
func (d *DSPU) InferWith(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	return d.Engine().InferWith(st, obs, seed)
}

// InferWithNaive is InferWith running the naive reference anneal: the raw
// network, no clamp plan. The plan path must match it bit for bit.
func (d *DSPU) InferWithNaive(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	return d.Engine().InferWithNaive(st, obs, seed)
}

// InferSeededNaive is InferSeeded running the naive reference anneal.
func (d *DSPU) InferSeededNaive(obs []Observation, seed uint64) (*Result, error) {
	return d.Engine().InferSeededNaive(obs, seed)
}

// InferBatch anneals every observation set across a worker pool, one private
// InferState per worker; window i is seeded Config.Seed + i, bit-identical
// to a sequential loop for any worker count. Requires a noise-free
// configuration (the noise RNG is shared across states).
func (d *DSPU) InferBatch(obs [][]Observation, workers int) ([]*Result, error) {
	return d.Engine().InferBatch(obs, workers)
}

// EnsurePlan validates the observation set and pre-compiles (or re-warms)
// the clamp plan for its index pattern.
func (d *DSPU) EnsurePlan(obs []Observation) error {
	return d.Engine().EnsurePlan(obs)
}

// PlanCacheStats reports the cumulative clamp-plan cache hit and miss
// counts.
func (d *DSPU) PlanCacheStats() (hits, misses uint64) {
	return d.Engine().PlanCacheStats()
}

// annealLoop is the integration loop proper, parameterized over the system
// evaluated each step — the per-state naive network view (naive path) or
// its clamp-plan compilation (planSys). Everything outside the Derivative
// evaluation is shared, so the two paths can only differ through the
// derivative values, which the plan construction makes bit-identical.
func (d *DSPU) annealLoop(st *InferState, sc *dscratch, sys ode.System) (*Result, error) {
	x := st.X
	deriv := sc.deriv
	steps := int(d.cfg.MaxTimeNs / d.cfg.Dt)
	if steps < 1 {
		return nil, errors.New("dspu: MaxTimeNs shorter than one timestep")
	}
	t := 0.0
	settled := false
	lastResidual := math.NaN()
	taken := 0
	for s := 0; s < steps; s++ {
		t = sc.integ.Step(sys, t, d.cfg.Dt, x)
		d.Net.ClampRails(x)
		taken = s + 1
		if st.Observer != nil {
			st.Observer(StepInfo{Step: s, TimeNs: t, EnergyFn: st.EnergyFn, X: x})
		}
		// Convergence check every few steps to keep the hot loop tight.
		// Each checked derivative norm is captured as lastResidual so the
		// Result reports the equilibrium residual at convergence.
		if s%8 == 7 {
			sys.Derivative(t, x, deriv)
			lastResidual = mat.NormInf(deriv)
			if lastResidual < d.cfg.SettleTol {
				settled = true
				break
			}
		}
	}
	st.Res = Result{
		Voltage:   x,
		LatencyNs: t,
		AnnealNs:  t,
		Steps:     taken,
		Settled:   settled,
		Energy:    d.Net.Energy(x),
		Residual:  lastResidual,
	}
	return &st.Res, nil
}

// Trace records a voltage trajectory: one sample of the full state per
// SampleEveryNs of simulated time. Used by the Fig. 4 circuit validation.
type Trace struct {
	TimesNs []float64
	States  [][]float64 // States[k][i] = voltage of node i at TimesNs[k]
}

// TraceRun integrates for durationNs from x0 with the given observations
// clamped, sampling the state every sampleEveryNs. TraceRun drives the
// network directly (it sets the shared clamp set) and is single-threaded.
func (d *DSPU) TraceRun(x0 []float64, obs []Observation, durationNs, sampleEveryNs float64) (*Trace, error) {
	if len(x0) != d.N {
		return nil, fmt.Errorf("dspu: initial state has %d entries, want %d", len(x0), d.N)
	}
	x := mat.CopyVec(x0)
	clamped := make([]int, 0, len(obs))
	for _, o := range obs {
		x[o.Index] = o.Value
		clamped = append(clamped, o.Index)
	}
	d.Net.ClampSet(clamped)

	tr := &Trace{}
	nextSample := 0.0
	t := 0.0
	steps := int(durationNs / d.cfg.Dt)
	record := func() {
		tr.TimesNs = append(tr.TimesNs, t)
		tr.States = append(tr.States, mat.CopyVec(x))
	}
	record()
	nextSample += sampleEveryNs
	for s := 0; s < steps; s++ {
		t = d.cfg.Integrator.Step(d.Net, t, d.cfg.Dt, x)
		d.Net.ClampRails(x)
		if t+1e-12 >= nextSample {
			record()
			nextSample += sampleEveryNs
		}
	}
	return tr, nil
}

// Energy evaluates the real-valued Hamiltonian H_RV at state x.
func (d *DSPU) Energy(x []float64) float64 { return d.Net.Energy(x) }

// Config returns the (defaults-filled) runtime configuration.
func (d *DSPU) Config() Config { return d.cfg }
