// Package dspu implements the Real-Valued Dynamical-System Processing Unit
// of paper Sec. III: a BRIM-derived machine whose circulative resistor rings
// replace the linear self-reaction with a quadratic one, letting capacitor
// voltages stabilize at real values instead of polarizing to the rails.
//
// A DSPU performs graph-learning inference by natural annealing: observed
// node voltages are clamped, unknown nodes evolve under the coupling
// currents, and the settled voltages are the predictions (Sec. III.C).
package dspu

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dsgl/internal/circuit"
	"dsgl/internal/lru"
	"dsgl/internal/mat"
	"dsgl/internal/ode"
	"dsgl/internal/rng"
)

// Config collects DSPU runtime parameters.
type Config struct {
	// Dt is the integration timestep in ns. Default 0.05.
	Dt float64
	// MaxTimeNs bounds one annealing run. Default 1000 ns.
	MaxTimeNs float64
	// SettleTol: the run stops early once max |dσ/dt| < SettleTol.
	// Default 1e-6 per ns.
	SettleTol float64
	// VRail bounds voltages. Default 1.
	VRail float64
	// Capacitance sets the node time constant. Default 1.
	Capacitance float64
	// Integrator defaults to forward Euler.
	Integrator ode.Integrator
	// Noise optionally injects node/coupler disturbances (Fig. 13).
	Noise *circuit.NoiseModel
	// Seed for unknown-node initialization.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Dt == 0 {
		c.Dt = 0.05
	}
	if c.MaxTimeNs == 0 {
		c.MaxTimeNs = 1000
	}
	if c.SettleTol == 0 {
		c.SettleTol = 1e-6
	}
	if c.VRail == 0 {
		c.VRail = 1
	}
	if c.Capacitance == 0 {
		c.Capacitance = 1
	}
	if c.Integrator == nil {
		c.Integrator = ode.NewEuler()
	}
}

// DSPU is a single real-valued dynamical-system processing unit holding a
// trained parameter set (J, h).
type DSPU struct {
	N   int
	Net *circuit.Network
	cfg Config
	rng *rng.RNG

	// Clamp-plan cache, mirroring scalable.Machine: compiled plans keyed
	// by the packed observation-index bitmask, bounded LRU, lazily
	// initialized. The DSPU itself is not goroutine-safe, but the cache is
	// still guarded for symmetry with the scalable path (and because it is
	// cheap).
	planMu     sync.Mutex
	plans      *lru.Cache[*clampPlan]
	planHits   uint64
	planMisses uint64
}

// New builds a DSPU from trained parameters. j must be square with zero
// diagonal; every h_i must be strictly negative (the convexity condition
// enforced during training).
func New(j *mat.Dense, h []float64, cfg Config) (*DSPU, error) {
	cfg.fillDefaults()
	net, err := circuit.NewNetwork(j, h, circuit.Config{
		Self:        circuit.Quadratic,
		Capacitance: cfg.Capacitance,
		VRail:       cfg.VRail,
		Noise:       cfg.Noise,
	})
	if err != nil {
		return nil, err
	}
	return &DSPU{N: j.Rows, Net: net, cfg: cfg, rng: rng.New(cfg.Seed)}, nil
}

// NewCSR builds a DSPU from a sparse coupling matrix.
func NewCSR(j *mat.CSR, h []float64, cfg Config) (*DSPU, error) {
	cfg.fillDefaults()
	net, err := circuit.NewNetworkCSR(j, h, circuit.Config{
		Self:        circuit.Quadratic,
		Capacitance: cfg.Capacitance,
		VRail:       cfg.VRail,
		Noise:       cfg.Noise,
	})
	if err != nil {
		return nil, err
	}
	return &DSPU{N: j.Rows, Net: net, cfg: cfg, rng: rng.New(cfg.Seed)}, nil
}

// Result is the outcome of one inference (annealing) run.
type Result struct {
	// Voltage is the full settled state vector.
	Voltage []float64
	// LatencyNs is the simulated time until settling (or MaxTimeNs).
	LatencyNs float64
	// Steps is the number of integration steps taken.
	Steps int
	// Settled reports whether the settle tolerance was reached.
	Settled bool
	// FinalEnergy is H_RV at the settled state.
	FinalEnergy float64
}

// Observation fixes node Index at Value during inference.
type Observation struct {
	Index int
	Value float64
}

// StepInfo is the per-step telemetry handed to a StepObserver: the step
// index, the simulated time, and a lazy evaluator for the Hamiltonian H_RV
// at the post-step state. EnergyFn is a pre-bound closure over the live
// state buffer — evaluating H_RV walks every stored coupling (O(nnz)), so
// the anneal loop only pays for it when the observer actually calls it.
// EnergyFn is valid only during the callback.
type StepInfo struct {
	Step     int
	TimeNs   float64
	EnergyFn func() float64
}

// StepObserver receives StepInfo after every integration step of an
// inference — the dense-path twin of scalable.StepObserver, used by the
// invariant-verification harness to watch monotone energy descent. A nil
// observer costs one branch per step.
type StepObserver func(StepInfo)

// InferState is a reusable scratch arena for DSPU inference, mirroring
// scalable.InferState: it holds the working voltages, the derivative
// buffer, the clamp index list, and a by-value RNG so that repeated
// inferences on one state run allocation-free after warm-up (the first call
// also warms the integrator's and network's internal buffers).
//
// A state belongs to the DSPU that created it. Note that the DSPU itself is
// not safe for concurrent use — the circuit network and integrator carry
// shared scratch — so parallel batches build one DSPU per worker; the state
// removes the per-call allocations within each worker.
type InferState struct {
	d        *DSPU
	x        []float64
	deriv    []float64
	clampIdx []int
	rng      rng.RNG
	res      Result
	observer StepObserver

	// Clamp-plan scratch, mirroring scalable.InferState: clamp mask (also
	// the duplicate-observation detector), packed cache key, folded
	// constant-coupling bias, the plan system's coupling buffer, the plan
	// ode.System wrapper itself, and the pre-bound lazy energy closure.
	clamped  []bool
	keyBuf   []byte
	bias     []float64
	coupling []float64
	psys     planSys
	energyFn func() float64
}

// SetObserver installs (or, with nil, removes) a per-step observer on this
// state. The observer applies to every subsequent inference run on the
// state.
func (st *InferState) SetObserver(fn StepObserver) { st.observer = fn }

// NewInferState allocates a scratch arena sized for this DSPU.
func (d *DSPU) NewInferState() *InferState {
	st := &InferState{
		d:        d,
		x:        make([]float64, d.N),
		deriv:    make([]float64, d.N),
		clampIdx: make([]int, 0, d.N),
		clamped:  make([]bool, d.N),
		keyBuf:   make([]byte, (d.N+7)/8),
		bias:     make([]float64, d.N),
		coupling: make([]float64, d.N),
	}
	st.energyFn = func() float64 { return d.Net.Energy(st.x) }
	return st
}

// Result returns the outcome of the last inference run on this state. The
// Voltage slice aliases the state's internal buffer and is overwritten by
// the next inference; copy it if it must outlive the state.
func (st *InferState) Result() *Result { return &st.res }

// detach deep-copies a Result so it no longer aliases scratch buffers.
func (r *Result) detach() *Result {
	c := *r
	c.Voltage = mat.CopyVec(r.Voltage)
	return &c
}

// Infer clamps the observations, randomly initializes the free nodes, and
// anneals to equilibrium. It returns the settled state. Successive calls
// advance the DSPU's internal RNG, so repeated inferences explore different
// initializations; use InferWith for explicit per-call seeding.
func (d *DSPU) Infer(obs []Observation) (*Result, error) {
	x := make([]float64, d.N)
	d.rng.FillUniform(x, -0.1, 0.1)
	return d.InferFrom(x, obs)
}

// InferFrom is Infer with an explicit initial state for the free nodes.
func (d *DSPU) InferFrom(x0 []float64, obs []Observation) (*Result, error) {
	if len(x0) != d.N {
		return nil, fmt.Errorf("dspu: initial state has %d entries, want %d", len(x0), d.N)
	}
	st := d.NewInferState()
	copy(st.x, x0)
	res, err := d.anneal(st, obs)
	if err != nil {
		return nil, err
	}
	return res.detach(), nil
}

// InferWith runs one inference on a reusable scratch state, seeding the
// free-node initialization from seed (independent of the DSPU's internal
// RNG stream). After the state's first use the call performs zero heap
// allocations; the returned Result aliases the state's buffers.
func (d *DSPU) InferWith(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	if st == nil || st.d != d {
		return nil, errors.New("dspu: InferState belongs to a different DSPU")
	}
	st.rng.Reseed(seed)
	st.rng.FillUniform(st.x, -0.1, 0.1)
	return d.anneal(st, obs)
}

// InferWithNaive is InferWith running the naive reference anneal: the raw
// network, no clamp plan. The plan path must match it bit for bit.
func (d *DSPU) InferWithNaive(st *InferState, obs []Observation, seed uint64) (*Result, error) {
	if st == nil || st.d != d {
		return nil, errors.New("dspu: InferState belongs to a different DSPU")
	}
	st.rng.Reseed(seed)
	st.rng.FillUniform(st.x, -0.1, 0.1)
	return d.annealNaive(st, obs)
}

// PlanCacheStats reports the cumulative clamp-plan cache hit and miss
// counts.
func (d *DSPU) PlanCacheStats() (hits, misses uint64) {
	d.planMu.Lock()
	defer d.planMu.Unlock()
	return d.planHits, d.planMisses
}

// applyObservations resets the clamp state and clamps each observation onto
// st.x, validating index range, rail bound, and uniqueness (a duplicate
// index is a windowing bug, not a tie-break, and is rejected). It updates
// both the state's mask (the plan-cache key) and the network's clamp set.
func (st *InferState) applyObservations(obs []Observation) error {
	d := st.d
	x := st.x
	st.clampIdx = st.clampIdx[:0]
	for i := range st.clamped {
		st.clamped[i] = false
	}
	for _, o := range obs {
		if o.Index < 0 || o.Index >= d.N {
			return fmt.Errorf("dspu: observation index %d out of range [0,%d)", o.Index, d.N)
		}
		if math.Abs(o.Value) > d.cfg.VRail {
			return fmt.Errorf("dspu: observation value %g exceeds rail %g", o.Value, d.cfg.VRail)
		}
		if st.clamped[o.Index] {
			return fmt.Errorf("dspu: duplicate observation for node %d", o.Index)
		}
		x[o.Index] = o.Value
		st.clamped[o.Index] = true
		st.clampIdx = append(st.clampIdx, o.Index)
	}
	d.Net.ClampSet(st.clampIdx)
	return nil
}

// anneal integrates the network from st.x to equilibrium. It is the
// allocation-free core shared by every Infer variant: the observation
// pattern resolves to a compiled clamp plan (cache hit in the steady state)
// whose System folds the constant clamp currents; the result is
// bit-identical to annealNaive (see plan.go).
func (d *DSPU) anneal(st *InferState, obs []Observation) (*Result, error) {
	if err := st.applyObservations(obs); err != nil {
		return nil, err
	}
	pl := d.planFor(st.clamped, packMask(st.clamped, st.keyBuf))
	return d.annealLoop(st, st.planSystem(pl))
}

// annealNaive is the reference anneal: the raw circuit network integrated
// with no clamp-aware folding. Kept callable (InferWithNaive) as the ground
// truth for the plan-path bit-identity tests and benchmarks.
func (d *DSPU) annealNaive(st *InferState, obs []Observation) (*Result, error) {
	if err := st.applyObservations(obs); err != nil {
		return nil, err
	}
	return d.annealLoop(st, d.Net)
}

// annealLoop is the integration loop proper, parameterized over the system
// evaluated each step — the raw network (naive path) or its clamp-plan
// compilation (planSys). Everything outside the Derivative evaluation is
// shared, so the two paths can only differ through the derivative values,
// which the plan construction makes bit-identical.
func (d *DSPU) annealLoop(st *InferState, sys ode.System) (*Result, error) {
	x := st.x
	deriv := st.deriv
	steps := int(d.cfg.MaxTimeNs / d.cfg.Dt)
	if steps < 1 {
		return nil, errors.New("dspu: MaxTimeNs shorter than one timestep")
	}
	t := 0.0
	settled := false
	taken := 0
	for s := 0; s < steps; s++ {
		t = d.cfg.Integrator.Step(sys, t, d.cfg.Dt, x)
		d.Net.ClampRails(x)
		taken = s + 1
		if st.observer != nil {
			st.observer(StepInfo{Step: s, TimeNs: t, EnergyFn: st.energyFn})
		}
		// Convergence check every few steps to keep the hot loop tight.
		if s%8 == 7 {
			sys.Derivative(t, x, deriv)
			if mat.NormInf(deriv) < d.cfg.SettleTol {
				settled = true
				break
			}
		}
	}
	st.res = Result{
		Voltage:     x,
		LatencyNs:   t,
		Steps:       taken,
		Settled:     settled,
		FinalEnergy: d.Net.Energy(x),
	}
	return &st.res, nil
}

// Trace records a voltage trajectory: one sample of the full state per
// SampleEveryNs of simulated time. Used by the Fig. 4 circuit validation.
type Trace struct {
	TimesNs []float64
	States  [][]float64 // States[k][i] = voltage of node i at TimesNs[k]
}

// TraceRun integrates for durationNs from x0 with the given observations
// clamped, sampling the state every sampleEveryNs.
func (d *DSPU) TraceRun(x0 []float64, obs []Observation, durationNs, sampleEveryNs float64) (*Trace, error) {
	if len(x0) != d.N {
		return nil, fmt.Errorf("dspu: initial state has %d entries, want %d", len(x0), d.N)
	}
	x := mat.CopyVec(x0)
	clamped := make([]int, 0, len(obs))
	for _, o := range obs {
		x[o.Index] = o.Value
		clamped = append(clamped, o.Index)
	}
	d.Net.ClampSet(clamped)

	tr := &Trace{}
	nextSample := 0.0
	t := 0.0
	steps := int(durationNs / d.cfg.Dt)
	record := func() {
		tr.TimesNs = append(tr.TimesNs, t)
		tr.States = append(tr.States, mat.CopyVec(x))
	}
	record()
	nextSample += sampleEveryNs
	for s := 0; s < steps; s++ {
		t = d.cfg.Integrator.Step(d.Net, t, d.cfg.Dt, x)
		d.Net.ClampRails(x)
		if t+1e-12 >= nextSample {
			record()
			nextSample += sampleEveryNs
		}
	}
	return tr, nil
}

// Energy evaluates the real-valued Hamiltonian H_RV at state x.
func (d *DSPU) Energy(x []float64) float64 { return d.Net.Energy(x) }

// Config returns the (defaults-filled) runtime configuration.
func (d *DSPU) Config() Config { return d.cfg }
