// Clamp-aware compiled inference plans for the dense-path DSPU, mirroring
// internal/scalable/plan.go. During clamped annealing the observed nodes
// never move, so every coupling row whose stored columns are all observed is
// one constant per inference. The plan folds those rows into a bias computed
// once, keeps mixed rows whole (so per-step accumulation order — and every
// rounding step — matches the naive network exactly), drops clamped rows
// (their derivative is pinned to zero), and iterates free-node index lists
// instead of scanning the clamp mask.
//
// Plan caching and keying live in internal/engine; this file only supplies
// the backend's CompilePlan product and its runtime binding. The plan is
// exposed as an ode.System so the DSPU's configured integrator (Euler or
// RK4) drives it exactly as it drives the raw circuit network: annealLoop is
// shared between the paths, and planSys.Derivative reproduces
// circuit.Network.Derivative bit for bit — including the noise draw order,
// which visits free nodes in ascending index in both.
package dspu

import (
	"math"

	"dsgl/internal/circuit"
	"dsgl/internal/mat"
)

// planMat is the coupling matrix compiled against a clamp pattern: static
// holds the fully-clamped free rows (folded to a constant bias once per
// inference), dyn the free rows with at least one free column, kept as FULL
// original rows so nothing is reassociated.
type planMat struct {
	static *mat.CSR
	dyn    *mat.CSR
}

// clampPlan is a compiled inference plan for one observation index pattern.
// Immutable after compilation.
type clampPlan struct {
	freeIdx  []int
	clampIdx []int
	j        planMat
}

// compilePlan builds the clamp plan for one observation pattern. Called by
// the engine's plan cache on a miss; the product is immutable and shared.
func (d *DSPU) compilePlan(clamped []bool) *clampPlan {
	pl := &clampPlan{j: compilePlanMat(d.Net.J, clamped)}
	for i, c := range clamped {
		if c {
			pl.clampIdx = append(pl.clampIdx, i)
		} else {
			pl.freeIdx = append(pl.freeIdx, i)
		}
	}
	return pl
}

// compilePlanMat splits one coupling matrix into static (fully-clamped free
// rows) and dyn (mixed free rows, kept whole) parts via mat.SplitRowPlan,
// which carries each stored row over verbatim — order included.
func compilePlanMat(s *mat.CSR, clamped []bool) planMat {
	static, dyn := mat.SplitRowPlan(s, clamped)
	return planMat{static: static, dyn: dyn}
}

// maxPlanDeltaBits bounds the clamp-mask symmetric difference the delta
// compiler accepts; see the scalable backend's constant of the same name.
const maxPlanDeltaBits = 4

// CompilePlanDelta implements engine.DeltaBackend for the dense-path DSPU:
// it patches a previously compiled plan for oldClamped into the plan for
// newClamped, reclassifying only the rows the mask delta touches. The
// product is structurally identical to a full compilePlan — the previous
// plan is never mutated — and nil declines the delta (empty, too large, or
// a foreign plan type), sending the engine to the full compile.
func (d *DSPU) CompilePlanDelta(prev any, oldClamped, newClamped []bool) any {
	pl, ok := prev.(*clampPlan)
	if !ok || len(oldClamped) != d.N || len(newClamped) != d.N {
		return nil
	}
	changed := 0
	for i := range newClamped {
		if oldClamped[i] != newClamped[i] {
			changed++
		}
	}
	if changed == 0 || changed > maxPlanDeltaBits {
		return nil
	}
	d.colRowsOnce.Do(func() { d.jColRows = d.Net.J.ColRows() })
	static, dyn := mat.PatchRowPlan(d.Net.J, pl.j.static, pl.j.dyn, d.jColRows, oldClamped, newClamped)
	np := &clampPlan{
		j:        planMat{static: static, dyn: dyn},
		freeIdx:  make([]int, 0, len(pl.freeIdx)),
		clampIdx: make([]int, 0, len(pl.clampIdx)),
	}
	for i, c := range newClamped {
		if c {
			np.clampIdx = append(np.clampIdx, i)
		} else {
			np.freeIdx = append(np.freeIdx, i)
		}
	}
	return np
}

// planSys is a clamp plan bound to one inference's state buffers, exposed as
// an ode.System so the configured integrator drives it exactly like the raw
// network. Lives inside the state's dscratch so binding it allocates nothing.
type planSys struct {
	d             *DSPU
	pl            *clampPlan
	bias          []float64 // folded constant coupling currents, len N
	buf           []float64 // per-evaluation coupling buffer, len N
	noiseScale    float64
	noiseScaleSet bool
}

// planSystem folds the constant clamp currents for the current inference
// (st.X already carries the clamped values) and returns the state's plan
// system bound to this plan.
func (d *DSPU) planSystem(st *InferState, sc *dscratch, pl *clampPlan) *planSys {
	ps := &sc.psys
	ps.d = d
	ps.pl = pl
	ps.bias = sc.bias
	ps.buf = sc.coupling
	pl.j.static.MulVec(st.X, sc.bias)
	if d.Net.Noise.Enabled() && !ps.noiseScaleSet {
		// Replicates circuit.Network.typicalCoupling so the coupler-noise
		// scale — and with it the noise stream — matches the naive path
		// bit for bit.
		var sum float64
		for _, v := range d.Net.J.Val {
			sum += math.Abs(v)
		}
		if d.Net.N == 0 || len(d.Net.J.Val) == 0 {
			ps.noiseScale = 1
		} else {
			ps.noiseScale = sum / float64(d.Net.N)
		}
		ps.noiseScaleSet = true
	}
	return ps
}

// Dim implements ode.System.
func (ps *planSys) Dim() int { return ps.d.N }

// Derivative implements ode.System: circuit.Network.Derivative with the
// constant clamp currents re-emitted from the folded bias instead of
// re-accumulated. Every floating-point operation on a free node's derivative
// is the operation the raw network performs, in the same order.
func (ps *planSys) Derivative(_ float64, x, dst []float64) {
	nw := ps.d.Net
	pl := ps.pl
	pl.j.dyn.MulVecAdd(x, ps.bias, ps.buf)
	noisy := nw.Noise.Enabled()
	var cs, ns float64
	if noisy {
		cs = nw.Noise.CouplerSigma
		ns = nw.Noise.NodeSigma
	}
	invC := 1 / nw.Capacitance
	for _, i := range pl.clampIdx {
		dst[i] = 0
	}
	for _, i := range pl.freeIdx {
		coupling := ps.buf[i]
		if noisy && cs > 0 {
			coupling += nw.Noise.RNG.NormScaled(0, cs*ps.noiseScale)
		}
		var self float64
		switch nw.Self {
		case circuit.Linear:
			self = nw.H[i]
		case circuit.Quadratic: // the DSPU constructors always use this
			self = nw.H[i] * x[i]
		}
		d := invC * (coupling + self)
		if noisy && ns > 0 {
			d += nw.Noise.RNG.NormScaled(0, ns)
		}
		if x[i] >= nw.VRail && d > 0 {
			d = 0
		} else if x[i] <= -nw.VRail && d < 0 {
			d = 0
		}
		dst[i] = d
	}
}
