// Package metrics provides the evaluation metrics used across the
// reproduction. The paper reports accuracy as RMSE on normalized data;
// MAE and MAPE are included for completeness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// RMSE returns the root-mean-square error between predictions and targets.
func RMSE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("metrics: RMSE length mismatch %d vs %d", len(pred), len(target)))
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("metrics: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		s += math.Abs(p - target[i])
	}
	return s / float64(len(pred))
}

// MAPE returns the mean absolute percentage error, skipping targets with
// |t| < eps to avoid division blow-up.
func MAPE(pred, target []float64, eps float64) float64 {
	if len(pred) != len(target) {
		panic("metrics: MAPE length mismatch")
	}
	var s float64
	n := 0
	for i, p := range pred {
		if math.Abs(target[i]) < eps {
			continue
		}
		s += math.Abs((p - target[i]) / target[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Accumulator streams squared-error statistics so long evaluation loops do
// not need to retain every prediction.
type Accumulator struct {
	n      int
	sumSq  float64
	sumAbs float64
}

// Add records one prediction/target pair.
func (a *Accumulator) Add(pred, target float64) {
	d := pred - target
	a.sumSq += d * d
	a.sumAbs += math.Abs(d)
	a.n++
}

// AddVec records a vector of pairs.
func (a *Accumulator) AddVec(pred, target []float64) {
	if len(pred) != len(target) {
		panic("metrics: AddVec length mismatch")
	}
	for i := range pred {
		a.Add(pred[i], target[i])
	}
}

// N returns the number of recorded pairs.
func (a *Accumulator) N() int { return a.n }

// RMSE returns the running root-mean-square error.
func (a *Accumulator) RMSE() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.sumSq / float64(a.n))
}

// MAE returns the running mean absolute error.
func (a *Accumulator) MAE() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumAbs / float64(a.n)
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, v := range xs {
		d := v - mean
		sq += d * d
	}
	return Summary{
		N:      len(xs),
		Mean:   mean,
		Std:    math.Sqrt(sq / float64(len(xs))),
		Min:    sorted[0],
		Median: sorted[len(sorted)/2],
		Max:    sorted[len(sorted)-1],
	}
}
