// Package metrics provides the evaluation metrics used across the
// reproduction. The paper reports accuracy as RMSE on normalized data;
// MAE and MAPE are included for completeness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// RMSE returns the root-mean-square error between predictions and targets.
func RMSE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("metrics: RMSE length mismatch %d vs %d", len(pred), len(target)))
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("metrics: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		s += math.Abs(p - target[i])
	}
	return s / float64(len(pred))
}

// MAPE returns the mean absolute percentage error, skipping targets with
// |t| < eps to avoid division blow-up. When every target is skipped the
// result is NaN — "no measurement", never 0, which would read as a
// perfect score. Use MAPEWithCoverage when the caller needs to report how
// many pairs the average actually covers.
func MAPE(pred, target []float64, eps float64) float64 {
	m, _ := MAPEWithCoverage(pred, target, eps)
	return m
}

// MAPEWithCoverage is MAPE plus the number of pairs skipped because the
// target magnitude fell below eps. mape is NaN when every pair was
// skipped (skipped == len(target)), including the empty input.
func MAPEWithCoverage(pred, target []float64, eps float64) (mape float64, skipped int) {
	if len(pred) != len(target) {
		panic("metrics: MAPE length mismatch")
	}
	var s float64
	n := 0
	for i, p := range pred {
		if math.Abs(target[i]) < eps {
			skipped++
			continue
		}
		s += math.Abs((p - target[i]) / target[i])
		n++
	}
	if n == 0 {
		return math.NaN(), skipped
	}
	return s / float64(n), skipped
}

// MAPEEps is the |target| threshold the Accumulator's streaming MAPE
// uses: pairs whose target magnitude falls below it are excluded from the
// percentage average (and counted as skipped) instead of blowing up the
// division.
const MAPEEps = 1e-9

// Accumulator streams squared-error statistics so long evaluation loops do
// not need to retain every prediction.
type Accumulator struct {
	n         int
	sumSq     float64
	sumAbs    float64
	sumAbsPct float64
	nPct      int
}

// Add records one prediction/target pair.
func (a *Accumulator) Add(pred, target float64) {
	d := pred - target
	a.sumSq += d * d
	a.sumAbs += math.Abs(d)
	a.n++
	if math.Abs(target) >= MAPEEps {
		a.sumAbsPct += math.Abs(d / target)
		a.nPct++
	}
}

// AddVec records a vector of pairs.
func (a *Accumulator) AddVec(pred, target []float64) {
	if len(pred) != len(target) {
		panic("metrics: AddVec length mismatch")
	}
	for i := range pred {
		a.Add(pred[i], target[i])
	}
}

// N returns the number of recorded pairs.
func (a *Accumulator) N() int { return a.n }

// RMSE returns the running root-mean-square error.
func (a *Accumulator) RMSE() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.sumSq / float64(a.n))
}

// MAE returns the running mean absolute error.
func (a *Accumulator) MAE() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumAbs / float64(a.n)
}

// MAPE returns the running mean absolute percentage error over the pairs
// whose |target| >= MAPEEps. NaN when no pair qualified — callers should
// render that as "n/a", not as a (perfect-looking) zero.
func (a *Accumulator) MAPE() float64 {
	if a.nPct == 0 {
		return math.NaN()
	}
	return a.sumAbsPct / float64(a.nPct)
}

// MAPESkipped returns how many recorded pairs were excluded from the
// percentage average because their target magnitude fell below MAPEEps.
func (a *Accumulator) MAPESkipped() int { return a.n - a.nPct }

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
}

// Summarize computes summary statistics of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, v := range xs {
		d := v - mean
		sq += d * d
	}
	return Summary{
		N:      len(xs),
		Mean:   mean,
		Std:    math.Sqrt(sq / float64(len(xs))),
		Min:    sorted[0],
		Median: median(sorted),
		Max:    sorted[len(sorted)-1],
	}
}

// median returns the median of a non-empty sorted slice: the middle
// element for odd lengths, the average of the two middle elements for
// even lengths. (Indexing sorted[len/2] alone silently reports the upper
// middle on even lengths — a bias, not a median.)
func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
