package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRMSEBasic(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("perfect RMSE = %g", got)
	}
	got := RMSE([]float64{0, 0}, []float64{3, 4})
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g, want %g", got, want)
	}
}

func TestRMSEEmptyAndMismatch(t *testing.T) {
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMAE(t *testing.T) {
	got := MAE([]float64{0, 0}, []float64{3, -4})
	if got != 3.5 {
		t.Fatalf("MAE = %g", got)
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{110, 90}, []float64{100, 100}, 1e-9)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %g", got)
	}
	// Zero targets skipped.
	got = MAPE([]float64{1, 110}, []float64{0, 100}, 1e-9)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE with zero target = %g", got)
	}
	if MAPE([]float64{1}, []float64{0}, 1e-9) != 0 {
		t.Fatal("all-zero targets should give 0")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		pred := make([]float64, 20)
		targ := make([]float64, 20)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11)/(1<<53)*2 - 1
		}
		for i := range pred {
			pred[i] = next()
			targ[i] = next()
		}
		var acc Accumulator
		acc.AddVec(pred, targ)
		return math.Abs(acc.RMSE()-RMSE(pred, targ)) < 1e-12 &&
			math.Abs(acc.MAE()-MAE(pred, targ)) < 1e-12 &&
			acc.N() == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.RMSE() != 0 || acc.MAE() != 0 || acc.N() != 0 {
		t.Fatal("empty accumulator must be zero")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 3 { // upper median for even length
		t.Fatalf("median = %g", s.Median)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize must not sort the caller's slice")
	}
}
