package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRMSEBasic(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("perfect RMSE = %g", got)
	}
	got := RMSE([]float64{0, 0}, []float64{3, 4})
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g, want %g", got, want)
	}
}

func TestRMSEEmptyAndMismatch(t *testing.T) {
	if RMSE(nil, nil) != 0 {
		t.Fatal("empty RMSE should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMAE(t *testing.T) {
	got := MAE([]float64{0, 0}, []float64{3, -4})
	if got != 3.5 {
		t.Fatalf("MAE = %g", got)
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{110, 90}, []float64{100, 100}, 1e-9)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %g", got)
	}
	// Zero targets skipped.
	got = MAPE([]float64{1, 110}, []float64{0, 100}, 1e-9)
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE with zero target = %g", got)
	}
}

// TestMAPEAllSkipped is the silent-metric regression: when every target
// falls below eps there is no percentage to average, and the result must
// be NaN ("no measurement"), never 0 (a perfect score). The pre-fix code
// returned 0 here.
func TestMAPEAllSkipped(t *testing.T) {
	if got := MAPE([]float64{1}, []float64{0}, 1e-9); !math.IsNaN(got) {
		t.Fatalf("all-skipped MAPE = %g, want NaN", got)
	}
	if got := MAPE(nil, nil, 1e-9); !math.IsNaN(got) {
		t.Fatalf("empty MAPE = %g, want NaN", got)
	}
}

func TestMAPEWithCoverage(t *testing.T) {
	m, skipped := MAPEWithCoverage([]float64{1, 110}, []float64{0, 100}, 1e-9)
	if math.Abs(m-0.1) > 1e-12 || skipped != 1 {
		t.Fatalf("MAPEWithCoverage = (%g, %d), want (0.1, 1)", m, skipped)
	}
	m, skipped = MAPEWithCoverage([]float64{1, 2}, []float64{0, 0}, 1e-9)
	if !math.IsNaN(m) || skipped != 2 {
		t.Fatalf("all-skipped MAPEWithCoverage = (%g, %d), want (NaN, 2)", m, skipped)
	}
}

func TestAccumulatorMAPE(t *testing.T) {
	var acc Accumulator
	acc.Add(110, 100)
	acc.Add(90, 100)
	acc.Add(1, 0) // below MAPEEps: skipped
	if got := acc.MAPE(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("accumulator MAPE = %g, want 0.1", got)
	}
	if acc.MAPESkipped() != 1 {
		t.Fatalf("MAPESkipped = %d, want 1", acc.MAPESkipped())
	}
	var empty Accumulator
	empty.Add(1, 0)
	if !math.IsNaN(empty.MAPE()) || empty.MAPESkipped() != 1 {
		t.Fatalf("all-skipped accumulator MAPE = %g (skipped %d), want NaN (1)",
			empty.MAPE(), empty.MAPESkipped())
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		pred := make([]float64, 20)
		targ := make([]float64, 20)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11)/(1<<53)*2 - 1
		}
		for i := range pred {
			pred[i] = next()
			targ[i] = next()
		}
		var acc Accumulator
		acc.AddVec(pred, targ)
		return math.Abs(acc.RMSE()-RMSE(pred, targ)) < 1e-12 &&
			math.Abs(acc.MAE()-MAE(pred, targ)) < 1e-12 &&
			acc.N() == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.RMSE() != 0 || acc.MAE() != 0 || acc.N() != 0 {
		t.Fatal("empty accumulator must be zero")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
}

// TestSummarizeMedian is the even-length-median regression: the pre-fix
// code indexed sorted[len/2], silently reporting the UPPER middle element
// for even-length samples instead of the average of the two middles.
func TestSummarizeMedian(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"len-1", []float64{7}, 7},
		{"odd", []float64{5, 1, 3}, 3},
		{"even", []float64{4, 1, 3, 2}, 2.5}, // pre-fix: 3 (upper middle)
		{"even-distinct-middles", []float64{10, 0, 2, 8}, 5},
		{"even-equal-middles", []float64{1, 2, 2, 9}, 2},
		{"odd-5", []float64{9, 2, 7, 1, 5}, 5},
	}
	for _, c := range cases {
		if got := Summarize(c.xs).Median; got != c.want {
			t.Errorf("%s: median(%v) = %g, want %g", c.name, c.xs, got, c.want)
		}
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize must not sort the caller's slice")
	}
}
