package train

import (
	"math"
	"sync/atomic"

	"dsgl/internal/obs"
)

// trainObs bundles the trainer's pre-registered instruments, cached
// against the current default registry behind an atomic pointer (the
// same binding pattern as internal/engine). All recording happens once
// per epoch — the per-sample loops stay untouched — and the extra loss /
// grad-norm reductions run only when observability is enabled.
type trainObs struct {
	reg *obs.Registry

	fits         *obs.Counter   // dsgl_train_fits_total
	epochs       *obs.Counter   // dsgl_train_epochs_total
	epochLoss    *obs.Gauge     // dsgl_train_epoch_loss
	gradNormJ    *obs.Gauge     // dsgl_train_grad_norm_j
	gradNormH    *obs.Gauge     // dsgl_train_grad_norm_h
	epochSeconds *obs.Histogram // dsgl_train_epoch_seconds
}

func (m *trainObs) enabled() bool { return m.reg != nil }

var obsBind atomic.Pointer[trainObs]

// metrics returns the trainer's instrument binding for the current
// default registry, rebuilding it only when the registry changed.
func metrics() *trainObs {
	m := obsBind.Load()
	r := obs.Default()
	if m != nil && m.reg == r {
		return m
	}
	if r == nil {
		m = &trainObs{}
	} else {
		m = &trainObs{
			reg:          r,
			fits:         r.Counter("dsgl_train_fits_total", "Fit invocations"),
			epochs:       r.Counter("dsgl_train_epochs_total", "training epochs completed"),
			epochLoss:    r.Gauge("dsgl_train_epoch_loss", "mean squared Eq.-10 residual of the last epoch (regularizers excluded)"),
			gradNormJ:    r.Gauge("dsgl_train_grad_norm_j", "Frobenius norm of the last epoch's J gradient"),
			gradNormH:    r.Gauge("dsgl_train_grad_norm_h", "L2 norm of the last epoch's h gradient"),
			epochSeconds: r.Histogram("dsgl_train_epoch_seconds", "host wall time per training epoch"),
		}
	}
	obsBind.Store(m)
	return m
}

// l2norm is the plain Euclidean norm used for the gradient gauges.
func l2norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
