package train

import (
	"math"
	"testing"

	"dsgl/internal/rng"
)

// onlineRidgeTol is the agreement bound between the Sherman–Morrison
// maintained fit and a full RidgeInit re-solve over the same samples. The
// two take different numerical routes to the same closed form (maintained
// inverse vs. Gaussian elimination), so bit identity is not on the table;
// 1e-9 is the streaming-refit acceptance bound.
const onlineRidgeTol = 1e-9

func TestOnlineRidgeMatchesFullRefit(t *testing.T) {
	r := rng.New(7)
	_, observed, samples := genObservedUnknown(r, 9, 5, 48, 0.05)
	const lambda = 0.25

	o, err := NewOnlineRidge(observed, lambda)
	if err != nil {
		t.Fatal(err)
	}
	// Check the stream against the batch solver at several prefixes, not
	// just the end: an update that drifts and recovers would pass a single
	// final comparison.
	for k, smp := range samples {
		if err := o.Add(smp); err != nil {
			t.Fatal(err)
		}
		m := k + 1
		if m != 1 && m != 7 && m != 20 && m != len(samples) {
			continue
		}
		want, err := RidgeInit(samples[:m], observed, lambda)
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Params()
		if err != nil {
			t.Fatal(err)
		}
		if o.Samples() != m {
			t.Fatalf("Samples()=%d after %d adds", o.Samples(), m)
		}
		for i := 0; i < len(observed); i++ {
			if got.H[i] != want.H[i] {
				t.Fatalf("m=%d: H[%d]=%g, want %g", m, i, got.H[i], want.H[i])
			}
			for j := 0; j < len(observed); j++ {
				d := math.Abs(got.J.At(i, j) - want.J.At(i, j))
				if d > onlineRidgeTol || math.IsNaN(d) {
					t.Fatalf("m=%d: J[%d][%d] online %.15g vs full %.15g (|Δ|=%.3g > %g)",
						m, i, j, got.J.At(i, j), want.J.At(i, j), d, onlineRidgeTol)
				}
			}
		}
	}
}

func TestOnlineRidgeReadoutDoesNotDisturbStream(t *testing.T) {
	r := rng.New(3)
	_, observed, samples := genObservedUnknown(r, 6, 3, 24, 0)
	o, err := NewOnlineRidge(observed, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, smp := range samples {
		if err := o.Add(smp); err != nil {
			t.Fatal(err)
		}
		if i == len(samples)/2 {
			if _, err := o.Params(); err != nil { // mid-stream readout
				t.Fatal(err)
			}
		}
	}
	got, err := o.Params()
	if err != nil {
		t.Fatal(err)
	}
	want, err := RidgeInit(samples, observed, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(observed); i++ {
		for j := 0; j < len(observed); j++ {
			if d := math.Abs(got.J.At(i, j) - want.J.At(i, j)); d > onlineRidgeTol {
				t.Fatalf("mid-stream readout disturbed the fit: J[%d][%d] off by %g", i, j, d)
			}
		}
	}
}

func TestOnlineRidgeValidation(t *testing.T) {
	if _, err := NewOnlineRidge([]bool{true, false}, 0); err == nil {
		t.Fatal("zero lambda accepted")
	}
	if _, err := NewOnlineRidge([]bool{true, true}, 1); err == nil {
		t.Fatal("mask without unknowns accepted")
	}
	if _, err := NewOnlineRidge([]bool{false, false}, 1); err == nil {
		t.Fatal("mask without observed accepted")
	}
	o, err := NewOnlineRidge([]bool{true, false}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Add([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-width sample accepted")
	}
	if _, err := o.Params(); err == nil {
		t.Fatal("Params with no samples accepted")
	}
}

func TestOnlineRidgeAddAllocationFree(t *testing.T) {
	r := rng.New(9)
	_, observed, samples := genObservedUnknown(r, 8, 4, 8, 0)
	o, err := NewOnlineRidge(observed, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	k := 0
	allocs := testing.AllocsPerRun(32, func() {
		if err := o.Add(samples[k%len(samples)]); err != nil {
			t.Fatal(err)
		}
		k++
	})
	if allocs != 0 {
		t.Fatalf("Add allocated %v per op, want 0", allocs)
	}
}
