// Package train implements the DS-GL training algorithm of paper Sec. III.B:
// learning the coupling matrix J and self-reaction vector h so that the
// dynamical system's lowest-energy state reproduces the data distribution.
//
// The loss is the regression residual of Eq. 10 — each variable must equal
// σ_i = -Σ_j J_ij σ_j / h_i given all others — summed over training
// windows, optimized by Adam with h projected negative (the convexity
// condition of the Hamiltonian) and diag(J) held at zero. The same trainer,
// restricted by a coupling mask, performs the pattern-constrained fine-tune
// of the decomposition pipeline (Sec. IV.B step 3).
package train

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// Params is a trained dynamical system: coupling matrix J (zero diagonal)
// and self-reaction conductances h (all strictly negative).
type Params struct {
	J *mat.Dense
	H []float64
}

// Clone returns a deep copy.
func (p *Params) Clone() *Params {
	return &Params{J: p.J.Clone(), H: mat.CopyVec(p.H)}
}

// Dim returns the system size.
func (p *Params) Dim() int { return len(p.H) }

// Validate checks the structural invariants the hardware requires.
func (p *Params) Validate() error {
	n := len(p.H)
	if p.J.Rows != n || p.J.Cols != n {
		return fmt.Errorf("train: J is %dx%d but h has %d entries", p.J.Rows, p.J.Cols, n)
	}
	for i := 0; i < n; i++ {
		if p.J.At(i, i) != 0 {
			return fmt.Errorf("train: J diagonal non-zero at %d", i)
		}
		if p.H[i] >= 0 {
			return fmt.Errorf("train: h[%d] = %g not negative", i, p.H[i])
		}
	}
	return nil
}

// Regress evaluates the one-shot regression of Eq. 10 for every variable:
// out_i = -Σ_j J_ij σ_j / h_i. It is the fixed-point target the annealed
// hardware settles to and is used for fast train-time validation.
func (p *Params) Regress(sigma, out []float64) []float64 {
	out = p.J.MulVec(sigma, out)
	for i := range out {
		out[i] = -out[i] / p.H[i]
	}
	return out
}

// Config controls Fit.
type Config struct {
	// Epochs of full-batch Adam. Default 60.
	Epochs int
	// LR is the Adam learning rate. Default 0.02.
	LR float64
	// L2 is the ridge penalty on J. Default 1e-3.
	L2 float64
	// L1 is the lasso penalty on J encouraging sparsity ahead of
	// decomposition. Default 0.
	L1 float64
	// HMax is the ceiling for h entries (must be negative): projection
	// keeps h_i <= HMax. Default -0.5.
	HMax float64
	// Mask, when non-nil, confines J's support: entries where the mask is
	// false stay zero. This is the fine-tuning constraint of Sec. IV.B.
	Mask *mat.Bool
	// RowWeight, when non-nil, weights each variable's residual in the
	// loss. Graph-learning training sets observed (always-clamped) rows to
	// zero so the entire coupling budget serves the predicted variables.
	RowWeight []float64
	// L2Extra adds this much ridge penalty to J entries where L2ExtraMask
	// is true. The pipeline uses it on unknown-to-unknown couplings: they
	// enable joint co-annealing but also amplify errors through the
	// equilibrium solve, so their magnitude is kept in check.
	L2Extra     float64
	L2ExtraMask *mat.Bool
	// Init, when non-nil, provides starting parameters (fine-tuning).
	Init *Params
	// Seed randomizes J initialization.
	Seed uint64
	// TrainH enables learning h; otherwise h stays at its initial value.
	// Default true (disabled only in ablations).
	TrainHOff bool
}

func (c *Config) fillDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.LR == 0 {
		c.LR = 0.02
	}
	if c.L2 == 0 {
		c.L2 = 1e-3
	}
	if c.HMax == 0 {
		c.HMax = -0.5
	}
}

// Fit learns Params from training windows. Each sample is one flattened
// window vector; all samples must share the same length.
func Fit(samples [][]float64, cfg Config) (*Params, error) {
	cfg.fillDefaults()
	if len(samples) == 0 {
		return nil, errors.New("train: no samples")
	}
	n := len(samples[0])
	for i, s := range samples {
		if len(s) != n {
			return nil, fmt.Errorf("train: sample %d has length %d, want %d", i, len(s), n)
		}
	}
	if cfg.HMax >= 0 {
		return nil, fmt.Errorf("train: HMax must be negative, got %g", cfg.HMax)
	}
	if cfg.Mask != nil && (cfg.Mask.Rows != n || cfg.Mask.Cols != n) {
		return nil, fmt.Errorf("train: mask is %dx%d, want %dx%d", cfg.Mask.Rows, cfg.Mask.Cols, n, n)
	}
	if cfg.RowWeight != nil && len(cfg.RowWeight) != n {
		return nil, fmt.Errorf("train: RowWeight has %d entries, want %d", len(cfg.RowWeight), n)
	}
	if cfg.L2ExtraMask != nil && (cfg.L2ExtraMask.Rows != n || cfg.L2ExtraMask.Cols != n) {
		return nil, fmt.Errorf("train: L2ExtraMask is %dx%d, want %dx%d", cfg.L2ExtraMask.Rows, cfg.L2ExtraMask.Cols, n, n)
	}

	m := len(samples)
	// Stack samples into S (m x n) once.
	s := mat.NewDense(m, n)
	for i, smp := range samples {
		copy(s.Row(i), smp)
	}

	var params *Params
	if cfg.Init != nil {
		params = cfg.Init.Clone()
		if params.Dim() != n {
			return nil, fmt.Errorf("train: init params dim %d, want %d", params.Dim(), n)
		}
	} else {
		r := rng.New(cfg.Seed ^ 0x7ea1)
		j := mat.NewDense(n, n)
		r.FillNorm(j.Data, 0, 0.01)
		j.ZeroDiagonal()
		h := make([]float64, n)
		for i := range h {
			h[i] = -1
		}
		params = &Params{J: j, H: h}
	}
	applyConstraints(params, cfg)

	// Rows with zero loss weight receive no residual and therefore no
	// data gradient; restricting the forward and backward passes to the
	// active rows makes graph-learning training (where only the unknown
	// variables carry loss) several times cheaper.
	active := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if cfg.RowWeight == nil || cfg.RowWeight[i] != 0 {
			active = append(active, i)
		}
	}
	na := len(active)

	opt := newAdam(n*n+n, cfg.LR)
	p := mat.NewDense(m, na)   // P[s][a] = Σ_j J_{active[a],j} σ_j
	res := mat.NewDense(m, na) // residuals over active rows
	gradJ := mat.NewDense(n, n)
	gradH := make([]float64, n)

	tm := metrics()
	tm.fits.Inc()

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochStart time.Time
		if tm.enabled() {
			epochStart = time.Now()
		}
		// Forward over active rows: P[s][a] = σ_s · J_active[a].
		for smp := 0; smp < m; smp++ {
			srow, prow := s.Row(smp), p.Row(smp)
			for a, i := range active {
				jrow := params.J.Row(i)
				var sum float64
				for jj, v := range jrow {
					sum += v * srow[jj]
				}
				prow[a] = sum
			}
		}
		// Residual R[s][a] = w_i (σ_i + P[s][a]/h_i).
		for smp := 0; smp < m; smp++ {
			srow, prow, rrow := s.Row(smp), p.Row(smp), res.Row(smp)
			for a, i := range active {
				rrow[a] = srow[i] + prow[a]/params.H[i]
				if cfg.RowWeight != nil {
					rrow[a] *= cfg.RowWeight[i]
				}
			}
		}
		// gradJ over active rows = (2/m) diag(1/h) Rᵀ S (+ regularizers).
		gradJ.Zero()
		for smp := 0; smp < m; smp++ {
			srow, rrow := s.Row(smp), res.Row(smp)
			for a, i := range active {
				if rrow[a] == 0 {
					continue
				}
				coef := 2 * rrow[a] / (params.H[i] * float64(m))
				grow := gradJ.Row(i)
				for jj := 0; jj < n; jj++ {
					grow[jj] += coef * srow[jj]
				}
			}
		}
		for i := range gradJ.Data {
			v := params.J.Data[i]
			l2 := cfg.L2
			if cfg.L2ExtraMask != nil && cfg.L2ExtraMask.Data[i] {
				l2 += cfg.L2Extra
			}
			gradJ.Data[i] += 2*l2*v + cfg.L1*sign(v)
		}
		// gradH_i = -(2/m) Σ_s R[s][i] P[s][i] / h_i².
		for i := range gradH {
			gradH[i] = 0
		}
		if !cfg.TrainHOff {
			for smp := 0; smp < m; smp++ {
				prow, rrow := p.Row(smp), res.Row(smp)
				for a, i := range active {
					gradH[i] -= 2 * rrow[a] * prow[a] / (params.H[i] * params.H[i] * float64(m))
				}
			}
		}
		opt.step(params.J.Data, gradJ.Data, 0)
		opt.step(params.H, gradH, n*n)
		applyConstraints(params, cfg)

		// Per-epoch telemetry: loss over the residuals this epoch computed,
		// gradient norms, wall time. Recorded once per epoch, and the extra
		// reductions run only when observability is enabled.
		if tm.enabled() {
			tm.epochs.Inc()
			var loss float64
			for _, r := range res.Data {
				loss += r * r
			}
			tm.epochLoss.Set(loss / float64(m*na))
			tm.gradNormJ.Set(l2norm(gradJ.Data))
			tm.gradNormH.Set(l2norm(gradH))
			tm.epochSeconds.Observe(time.Since(epochStart).Seconds())
		}
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return params, nil
}

// Loss evaluates the mean squared Eq.-10 residual of params over samples,
// without regularizers. Used by tests and by the decomposition pipeline to
// quantify accuracy loss after sparsification.
func Loss(p *Params, samples [][]float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := p.Dim()
	buf := make([]float64, n)
	var total float64
	for _, smp := range samples {
		p.J.MulVec(smp, buf)
		for i := 0; i < n; i++ {
			r := smp[i] + buf[i]/p.H[i]
			total += r * r
		}
	}
	return total / float64(len(samples)*n)
}

// applyConstraints enforces diag(J)=0, the support mask, and h <= HMax.
func applyConstraints(p *Params, cfg Config) {
	p.J.ZeroDiagonal()
	if cfg.Mask != nil {
		p.J.ApplyMask(cfg.Mask)
	}
	for i, v := range p.H {
		if v > cfg.HMax {
			p.H[i] = cfg.HMax
		}
	}
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// adam is a flat-parameter Adam optimizer shared between J and h. Offsets
// let both parameter blocks share one moment store.
type adam struct {
	lr, b1, b2, eps float64
	t               int
	mom, vel        []float64
}

func newAdam(dim int, lr float64) *adam {
	return &adam{lr: lr, b1: 0.9, b2: 0.999, eps: 1e-8,
		mom: make([]float64, dim), vel: make([]float64, dim)}
}

// step applies one Adam update to params given grads, using moment slots
// starting at offset. Callers must step all blocks the same number of
// times; t advances when offset == 0.
func (a *adam) step(params, grads []float64, offset int) {
	if offset == 0 {
		a.t++
	}
	c1 := 1 - math.Pow(a.b1, float64(a.t))
	c2 := 1 - math.Pow(a.b2, float64(a.t))
	for i, g := range grads {
		k := offset + i
		a.mom[k] = a.b1*a.mom[k] + (1-a.b1)*g
		a.vel[k] = a.b2*a.vel[k] + (1-a.b2)*g*g
		mhat := a.mom[k] / c1
		vhat := a.vel[k] / c2
		params[i] -= a.lr * mhat / (math.Sqrt(vhat) + a.eps)
	}
}
