package train

import (
	"testing"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// blockTestSamples builds a deterministic synthetic regression problem:
// n variables, the last nu unknown, targets linear in the observed block
// plus noise.
func blockTestSamples(n, nu, count int, seed uint64) ([][]float64, []bool) {
	r := rng.New(seed)
	observed := make([]bool, n)
	for i := 0; i < n-nu; i++ {
		observed[i] = true
	}
	w := make([]float64, n-nu)
	for i := range w {
		w[i] = r.Uniform(-1, 1)
	}
	samples := make([][]float64, count)
	for s := range samples {
		smp := make([]float64, n)
		var acc float64
		for i := 0; i < n-nu; i++ {
			smp[i] = r.Uniform(-0.8, 0.8)
			acc += w[i] * smp[i]
		}
		for u := n - nu; u < n; u++ {
			smp[u] = acc/float64(n-nu) + r.NormScaled(0, 0.05)
		}
		samples[s] = smp
	}
	return samples, observed
}

// TestBlockRidgeK1Identity is the training-layer half of verify invariant
// 10: with every variable in class 0 the block-diagonal Gram IS the full
// Gram, and BlockRidge must reproduce RidgeInit bit-for-bit.
func TestBlockRidgeK1Identity(t *testing.T) {
	const n, nu = 12, 3
	samples, observed := blockTestSamples(n, nu, 40, 11)
	classOf := make([]int, n)

	mono, err := RidgeInit(samples, observed, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	block, err := BlockRidge(samples, observed, classOf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mono.J.Data {
		if mono.J.Data[i] != block.J.Data[i] {
			t.Fatalf("J[%d]: mono %v != block %v (bit-identity broken)", i, mono.J.Data[i], block.J.Data[i])
		}
	}
	for i := range mono.H {
		if mono.H[i] != block.H[i] {
			t.Fatalf("H[%d] differs", i)
		}
	}
}

func TestBlockMaskedRidgeK1Identity(t *testing.T) {
	const n, nu = 12, 3
	samples, observed := blockTestSamples(n, nu, 40, 12)
	classOf := make([]int, n)
	mask := mat.NewBool(n, n)
	r := rng.New(99)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			mask.Set(i, j, r.Float64() < 0.6)
		}
	}

	mono, err := MaskedRidge(samples, observed, mask, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	block, err := BlockMaskedRidge(samples, observed, classOf, mask, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mono.J.Data {
		if mono.J.Data[i] != block.J.Data[i] {
			t.Fatalf("J[%d]: mono %v != block %v (bit-identity broken)", i, mono.J.Data[i], block.J.Data[i])
		}
	}
}

// TestBlockRidgeRespectsClasses checks the decomposition semantics at K=2.
// The classes are solved in order against residuals (one block
// Gauss–Seidel sweep), so two properties pin the contract: class 0 — the
// first block — must match an independent ridge run with only that class
// observed bit-for-bit, and class 1 must satisfy the residual stationarity
// condition (G_11 + λI)·w_1 = b_1 − G_10·w_0, i.e. its own normal
// equations with the full cross-moment contribution of class 0's solution
// moved to the right-hand side.
func TestBlockRidgeRespectsClasses(t *testing.T) {
	const n, nu = 12, 3
	const lambda = 0.5
	samples, observed := blockTestSamples(n, nu, 40, 13)
	classOf := make([]int, n)
	for i := 0; i < n; i++ {
		classOf[i] = i % 2
	}

	block, err := BlockRidge(samples, observed, classOf, lambda)
	if err != nil {
		t.Fatal(err)
	}

	// Class 0: identical to the isolated fit (other class's observed
	// columns zeroed and made unknown — their zero columns contribute
	// nothing to the Gram, and extra RHS columns don't perturb pivoting).
	iso := make([]bool, n)
	isoSamples := make([][]float64, len(samples))
	for s, smp := range samples {
		cp := make([]float64, n)
		copy(cp, smp)
		isoSamples[s] = cp
	}
	for i := 0; i < n; i++ {
		iso[i] = observed[i] && classOf[i] == 0
		if observed[i] && classOf[i] != 0 {
			for s := range isoSamples {
				isoSamples[s][i] = 0
			}
		}
	}
	mono, err := RidgeInit(isoSamples, iso, lambda)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		if observed[u] {
			continue
		}
		for c := 0; c < n; c++ {
			if !observed[c] || classOf[c] != 0 {
				continue
			}
			got, want := block.J.At(u, c), mono.J.At(u, c)
			if got != want {
				t.Fatalf("class 0 coupling J[%d][%d]: block %v != isolated %v", u, c, got, want)
			}
		}
	}

	// Class 1: stationarity of the residual solve. For every class-1
	// observed column a and unknown target u, the full normal equation
	// Σ_c G_ac·w_c + λ·w_a = b_au must hold — class 0's contribution sits
	// on the left because the class-1 block was solved on its residual.
	for u := 0; u < n; u++ {
		if observed[u] {
			continue
		}
		for a := 0; a < n; a++ {
			if !observed[a] || classOf[a] != 1 {
				continue
			}
			lhs := lambda * block.J.At(u, a)
			var bau float64
			for c := 0; c < n; c++ {
				if !observed[c] {
					continue
				}
				var gac float64
				for _, smp := range samples {
					gac += smp[a] * smp[c]
				}
				lhs += gac * block.J.At(u, c)
			}
			for _, smp := range samples {
				bau += smp[a] * smp[u]
			}
			if diff := lhs - bau; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("class 1 stationarity broken at J[%d][%d]: lhs %v != rhs %v", u, a, lhs, bau)
			}
		}
	}
}

func TestBlockRidgeBadClasses(t *testing.T) {
	samples, observed := blockTestSamples(6, 2, 10, 14)
	if _, err := BlockRidge(samples, observed, []int{0, 0, 0}, 0.5); err == nil {
		t.Fatal("short class vector must error")
	}
	if _, err := BlockRidge(samples, observed, []int{0, 0, -1, 0, 0, 0}, 0.5); err == nil {
		t.Fatal("negative class must error")
	}
	mask := mat.NewBool(6, 6)
	if _, err := BlockMaskedRidge(samples, observed, []int{0, 0, 0}, mask, 0.5); err == nil {
		t.Fatal("short class vector must error (masked)")
	}
}
