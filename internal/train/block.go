package train

import (
	"fmt"

	"dsgl/internal/mat"
)

// Block-structured ridge training for heterogeneous decomposition
// (ROADMAP item 5, after Allier et al.'s decomp-gnn). Nodes carry an
// interaction-class label; each source class's column group gets its own
// ridge block, solved in canonical class order against the residual the
// previously solved classes left behind — one block Gauss–Seidel sweep
// over the full normal equations. Within a block only that class's Gram
// sub-matrix is inverted (cross-class correlations enter through the
// residual right-hand side, not the solve), which regularizes small
// blocks and decomposes the fit into per-class interaction models.
// Solving on residuals is what makes the blocks composable: K independent
// full-target fits would each explain the whole signal and their sum
// would over-count it roughly K-fold.
//
// Bit-identity contract: with a single class (classOf all zero) the
// block-diagonal Gram IS the full Gram, and BlockRidge/BlockMaskedRidge
// are written to execute the exact same float operations in the exact same
// order as RidgeInit/MaskedRidge — the K=1 decomposed fit reproduces the
// monolithic fit bit-for-bit (verify invariant 10, enforced by
// TestBlockRidgeK1Identity and `dsgl verify`).

// checkClasses validates a per-variable class vector and returns the
// number of classes K = max label + 1.
func checkClasses(classOf []int, n int) (int, error) {
	if len(classOf) != n {
		return 0, fmt.Errorf("train: class vector has %d entries, want %d", len(classOf), n)
	}
	k := 0
	for i, c := range classOf {
		if c < 0 {
			return 0, fmt.Errorf("train: negative class %d at variable %d", c, i)
		}
		if c+1 > k {
			k = c + 1
		}
	}
	return k, nil
}

// BlockRidge is the decomposed counterpart of RidgeInit: the
// observed-to-unknown couplings are fitted per source class in canonical
// class order, each class's column group solved against the residual
// cross moments left by the classes before it. classOf assigns a class to
// every flattened window variable (callers expand per-node labels across
// steps and features).
func BlockRidge(samples [][]float64, observed []bool, classOf []int, lambda float64) (*Params, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("train: no samples")
	}
	n := len(samples[0])
	if len(observed) != n {
		return nil, fmt.Errorf("train: observed mask has %d entries, want %d", len(observed), n)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("train: ridge lambda must be positive, got %g", lambda)
	}
	k, err := checkClasses(classOf, n)
	if err != nil {
		return nil, err
	}
	var obsIdx, unkIdx []int
	for i, o := range observed {
		if o {
			obsIdx = append(obsIdx, i)
		} else {
			unkIdx = append(unkIdx, i)
		}
	}
	if len(obsIdx) == 0 || len(unkIdx) == 0 {
		return nil, fmt.Errorf("train: need both observed and unknown variables (%d/%d)", len(obsIdx), len(unkIdx))
	}

	no, nu := len(obsIdx), len(unkIdx)
	// Full Gram and cross moments, accumulated exactly as RidgeInit does —
	// the per-class solves below extract sub-blocks, so at K=1 the extracted
	// block is a verbatim copy of the monolithic system.
	g := mat.NewDense(no, no)
	b := mat.NewDense(no, nu)
	for _, smp := range samples {
		if len(smp) != n {
			return nil, fmt.Errorf("train: ragged samples")
		}
		for i := 0; i < no; i++ {
			vi := smp[obsIdx[i]]
			if vi == 0 {
				continue
			}
			grow := g.Row(i)
			for j := i; j < no; j++ {
				grow[j] += vi * smp[obsIdx[j]]
			}
			brow := b.Row(i)
			for u := 0; u < nu; u++ {
				brow[u] += vi * smp[unkIdx[u]]
			}
		}
	}
	for i := 0; i < no; i++ {
		for j := 0; j < i; j++ {
			g.Set(i, j, g.At(j, i))
		}
	}

	j := mat.NewDense(n, n)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	for class := 0; class < k; class++ {
		// Observed columns belonging to this source class, ascending (obsIdx
		// is ascending, so the filtered positions are too).
		var cols []int
		for i, gi := range obsIdx {
			if classOf[gi] == class {
				cols = append(cols, i)
			}
		}
		if len(cols) == 0 {
			continue // no observed variables of this class
		}
		s := len(cols)
		sub := mat.NewDense(s, s)
		rhs := mat.NewDense(s, nu)
		for a := 0; a < s; a++ {
			for c := 0; c < s; c++ {
				sub.Set(a, c, g.At(cols[a], cols[c]))
			}
			sub.Add(a, a, lambda)
			srow, brow := rhs.Row(a), b.Row(cols[a])
			copy(srow, brow)
		}
		w, err := solveMulti(sub, rhs)
		if err != nil {
			return nil, fmt.Errorf("train: block ridge class %d: %w", class, err)
		}
		for u := 0; u < nu; u++ {
			for a := 0; a < s; a++ {
				j.Set(unkIdx[u], obsIdx[cols[a]], w.At(a, u))
			}
		}
		// Residualize the remaining cross moments: later classes fit what
		// this block left unexplained (b -= G[:,cols]·w). Skipped after the
		// last class — and never entered at K=1, preserving bit-identity
		// with RidgeInit.
		if class+1 < k {
			for i := 0; i < no; i++ {
				grow, brow := g.Row(i), b.Row(i)
				for a := 0; a < s; a++ {
					gia := grow[cols[a]]
					if gia == 0 {
						continue
					}
					wrow := w.Row(a)
					for u := 0; u < nu; u++ {
						brow[u] -= gia * wrow[u]
					}
				}
			}
		}
	}
	j.ZeroDiagonal()
	return &Params{J: j, H: h}, nil
}

// BlockMaskedRidge is the decomposed counterpart of MaskedRidge: every
// unknown row's mask-allowed observed columns are split by source class
// and the class groups are solved in canonical order, each against the
// residual right-hand side left by the groups before it.
func BlockMaskedRidge(samples [][]float64, observed []bool, classOf []int, mask *mat.Bool, lambda float64) (*Params, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("train: no samples")
	}
	n := len(samples[0])
	if len(observed) != n {
		return nil, fmt.Errorf("train: observed mask has %d entries, want %d", len(observed), n)
	}
	if mask == nil || mask.Rows != n || mask.Cols != n {
		return nil, fmt.Errorf("train: coupling mask missing or mis-shaped")
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("train: ridge lambda must be positive, got %g", lambda)
	}
	k, err := checkClasses(classOf, n)
	if err != nil {
		return nil, err
	}
	var obsIdx, unkIdx []int
	obsPos := make([]int, n)
	for i, o := range observed {
		if o {
			obsPos[i] = len(obsIdx)
			obsIdx = append(obsIdx, i)
		} else {
			obsPos[i] = -1
			unkIdx = append(unkIdx, i)
		}
	}
	if len(obsIdx) == 0 || len(unkIdx) == 0 {
		return nil, fmt.Errorf("train: need both observed and unknown variables (%d/%d)", len(obsIdx), len(unkIdx))
	}
	no := len(obsIdx)

	g := mat.NewDense(no, no)
	b := mat.NewDense(no, len(unkIdx))
	for _, smp := range samples {
		if len(smp) != n {
			return nil, fmt.Errorf("train: ragged samples")
		}
		for i := 0; i < no; i++ {
			vi := smp[obsIdx[i]]
			if vi == 0 {
				continue
			}
			grow := g.Row(i)
			for j := i; j < no; j++ {
				grow[j] += vi * smp[obsIdx[j]]
			}
			brow := b.Row(i)
			for u := range unkIdx {
				brow[u] += vi * smp[unkIdx[u]]
			}
		}
	}
	for i := 0; i < no; i++ {
		for j := 0; j < i; j++ {
			g.Set(i, j, g.At(j, i))
		}
	}

	j := mat.NewDense(n, n)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	for u, uIdx := range unkIdx {
		// Previously solved (column position, weight) pairs of this row —
		// later class blocks fit the residual these leave behind. Empty
		// for the first non-empty class, so K=1 is bit-identical to
		// MaskedRidge.
		var solvedCols []int
		var solvedW []float64
		for class := 0; class < k; class++ {
			// Columns this row may couple with in this block: masked AND
			// observed AND of the source class, ascending.
			var cols []int
			for c := 0; c < n; c++ {
				if c != uIdx && mask.At(uIdx, c) && observed[c] && classOf[c] == class {
					cols = append(cols, obsPos[c])
				}
			}
			if len(cols) == 0 {
				continue // no allowed couplings into this class
			}
			s := len(cols)
			sub := mat.NewDense(s, s)
			rhs := mat.NewDense(s, 1)
			for a := 0; a < s; a++ {
				for c := 0; c < s; c++ {
					sub.Set(a, c, g.At(cols[a], cols[c]))
				}
				sub.Add(a, a, lambda)
				r := b.At(cols[a], u)
				for p, pc := range solvedCols {
					r -= g.At(cols[a], pc) * solvedW[p]
				}
				rhs.Set(a, 0, r)
			}
			wts, err := solveMulti(sub, rhs)
			if err != nil {
				return nil, fmt.Errorf("train: block masked ridge row %d class %d: %w", uIdx, class, err)
			}
			for a := 0; a < s; a++ {
				j.Set(uIdx, obsIdx[cols[a]], wts.At(a, 0))
				solvedCols = append(solvedCols, cols[a])
				solvedW = append(solvedW, wts.At(a, 0))
			}
		}
	}
	j.ZeroDiagonal()
	return &Params{J: j, H: h}, nil
}
