// Online (streaming) ridge refits via Sherman–Morrison rank-one updates.
//
// RidgeInit solves W = (XᵀX + λI)⁻¹ XᵀY from a fixed training set, which
// costs O(no³) in the observed count every time the set changes. A live
// stream appends one sample per tick, and re-solving from scratch per tick
// is the same pathology the plan cache fixes for inference: all but one row
// of the work is identical to the previous tick's. OnlineRidge instead
// maintains the INVERSE Gram matrix directly. Appending sample x to the
// design matrix is the rank-one update G ← G + x xᵀ, whose inverse follows
// from the Sherman–Morrison identity
//
//	(G + x xᵀ)⁻¹ = G⁻¹ − (G⁻¹ x)(xᵀ G⁻¹) / (1 + xᵀ G⁻¹ x)
//
// at O(no²) per sample, with B ← B + x yᵀ the matching rank-one cross-term
// update. Seeding G₀ = λI (so G₀⁻¹ = I/λ) bakes the ridge penalty in once;
// after m samples the maintained inverse is exactly (XᵀX + λI)⁻¹ and
// Params() reproduces RidgeInit over the same samples up to inversion
// round-off (pinned to 1e-9 by TestOnlineRidgeMatchesFullRefit).
package train

import (
	"fmt"

	"dsgl/internal/mat"
)

// OnlineRidge accumulates streamed training samples into a ridge regression
// whose closed-form solution stays one O(no²·nu) readout away. Not safe for
// concurrent use.
type OnlineRidge struct {
	n      int
	obsIdx []int
	unkIdx []int
	lambda float64

	ginv    *mat.Dense // (XᵀX + λI)⁻¹ over observed columns, no×no
	b       *mat.Dense // XᵀY cross term, no×nu
	samples int

	// Per-Add scratch, so steady-state updates allocate nothing.
	xo []float64 // sample packed to observed columns
	xu []float64 // sample packed to unknown columns
	u  []float64 // G⁻¹x (symmetric G⁻¹, so also (xᵀG⁻¹)ᵀ)
}

// NewOnlineRidge starts an empty streaming fit for the given observed mask
// and ridge penalty. The validation mirrors RidgeInit's.
func NewOnlineRidge(observed []bool, lambda float64) (*OnlineRidge, error) {
	n := len(observed)
	if lambda <= 0 {
		return nil, fmt.Errorf("train: ridge lambda must be positive, got %g", lambda)
	}
	var obsIdx, unkIdx []int
	for i, o := range observed {
		if o {
			obsIdx = append(obsIdx, i)
		} else {
			unkIdx = append(unkIdx, i)
		}
	}
	if len(obsIdx) == 0 || len(unkIdx) == 0 {
		return nil, fmt.Errorf("train: need both observed and unknown variables (%d/%d)", len(obsIdx), len(unkIdx))
	}
	no, nu := len(obsIdx), len(unkIdx)
	o := &OnlineRidge{
		n:      n,
		obsIdx: obsIdx,
		unkIdx: unkIdx,
		lambda: lambda,
		ginv:   mat.NewDense(no, no),
		b:      mat.NewDense(no, nu),
		xo:     make([]float64, no),
		xu:     make([]float64, nu),
		u:      make([]float64, no),
	}
	for i := 0; i < no; i++ {
		o.ginv.Set(i, i, 1/lambda)
	}
	return o, nil
}

// Samples is the number of samples folded in so far.
func (o *OnlineRidge) Samples() int { return o.samples }

// Add folds one full-width sample into the fit: a Sherman–Morrison update
// of the inverse Gram matrix plus a rank-one cross-term update, O(no²+no·nu)
// total and allocation-free.
func (o *OnlineRidge) Add(sample []float64) error {
	if len(sample) != o.n {
		return fmt.Errorf("train: sample has %d entries, want %d", len(sample), o.n)
	}
	no, nu := len(o.obsIdx), len(o.unkIdx)
	for i, gi := range o.obsIdx {
		o.xo[i] = sample[gi]
	}
	for u, gu := range o.unkIdx {
		o.xu[u] = sample[gu]
	}
	// u = G⁻¹x; the denominator 1 + xᵀG⁻¹x is ≥ 1 for the positive-definite
	// inverse this type maintains, so the update never divides by ~0.
	var denom float64 = 1
	for i := 0; i < no; i++ {
		row := o.ginv.Row(i)
		var s float64
		for j := 0; j < no; j++ {
			s += row[j] * o.xo[j]
		}
		o.u[i] = s
		denom += o.xo[i] * s
	}
	for i := 0; i < no; i++ {
		f := o.u[i] / denom
		if f == 0 {
			continue
		}
		row := o.ginv.Row(i)
		for j := 0; j < no; j++ {
			row[j] -= f * o.u[j]
		}
	}
	for i := 0; i < no; i++ {
		vi := o.xo[i]
		if vi == 0 {
			continue
		}
		brow := o.b.Row(i)
		for u := 0; u < nu; u++ {
			brow[u] += vi * o.xu[u]
		}
	}
	o.samples++
	return nil
}

// Params reads out the current fit as inference parameters, installing the
// weights exactly as RidgeInit does: J[u][obs_i] = W[i][u], every h = -1,
// zero diagonal. W = G⁻¹B costs O(no²·nu); the accumulated state is left
// untouched, so streaming can continue after a readout.
func (o *OnlineRidge) Params() (*Params, error) {
	if o.samples == 0 {
		return nil, fmt.Errorf("train: no samples")
	}
	no, nu := len(o.obsIdx), len(o.unkIdx)
	j := mat.NewDense(o.n, o.n)
	h := make([]float64, o.n)
	for i := range h {
		h[i] = -1
	}
	for i := 0; i < no; i++ {
		grow := o.ginv.Row(i)
		for u := 0; u < nu; u++ {
			var w float64
			for k := 0; k < no; k++ {
				w += grow[k] * o.b.At(k, u)
			}
			j.Set(o.unkIdx[u], o.obsIdx[i], w)
		}
	}
	j.ZeroDiagonal()
	return &Params{J: j, H: h}, nil
}
