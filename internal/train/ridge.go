package train

import (
	"fmt"
	"math"

	"dsgl/internal/mat"
)

// RidgeInit solves the graph-learning training objective in closed form for
// the observed-to-unknown couplings: for every unknown variable u it fits
// the ridge regression
//
//	σ_u ≈ Σ_i W[u][i] σ_obs[i],  W = (Xᵀ X + λI)⁻¹ Xᵀ Y
//
// over the training windows and installs the weights as couplings
// J[u][obs_i] = W[u][i] with h_u = -1, so the regression of Eq. 10
// reproduces the fit exactly. Unknown-to-unknown couplings start at zero;
// the subsequent gradient fine-tune is free to grow them where joint
// annealing helps.
//
// This is the same objective Fit optimizes — the closed form simply lands
// on the optimum directly for the clamped-input block, which stochastic
// training approaches slowly.
func RidgeInit(samples [][]float64, observed []bool, lambda float64) (*Params, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("train: no samples")
	}
	n := len(samples[0])
	if len(observed) != n {
		return nil, fmt.Errorf("train: observed mask has %d entries, want %d", len(observed), n)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("train: ridge lambda must be positive, got %g", lambda)
	}
	var obsIdx, unkIdx []int
	for i, o := range observed {
		if o {
			obsIdx = append(obsIdx, i)
		} else {
			unkIdx = append(unkIdx, i)
		}
	}
	if len(obsIdx) == 0 || len(unkIdx) == 0 {
		return nil, fmt.Errorf("train: need both observed and unknown variables (%d/%d)", len(obsIdx), len(unkIdx))
	}

	no, nu := len(obsIdx), len(unkIdx)
	// Gram matrix G = Xᵀ X over observed columns and cross term B = Xᵀ Y.
	g := mat.NewDense(no, no)
	b := mat.NewDense(no, nu)
	for _, smp := range samples {
		if len(smp) != n {
			return nil, fmt.Errorf("train: ragged samples")
		}
		for i := 0; i < no; i++ {
			vi := smp[obsIdx[i]]
			if vi == 0 {
				continue
			}
			grow := g.Row(i)
			for j := i; j < no; j++ {
				grow[j] += vi * smp[obsIdx[j]]
			}
			brow := b.Row(i)
			for u := 0; u < nu; u++ {
				brow[u] += vi * smp[unkIdx[u]]
			}
		}
	}
	for i := 0; i < no; i++ {
		for j := 0; j < i; j++ {
			g.Set(i, j, g.At(j, i))
		}
		g.Add(i, i, lambda)
	}
	w, err := solveMulti(g, b)
	if err != nil {
		return nil, err
	}

	j := mat.NewDense(n, n)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	for u := 0; u < nu; u++ {
		for i := 0; i < no; i++ {
			j.Set(unkIdx[u], obsIdx[i], w.At(i, u))
		}
	}
	j.ZeroDiagonal()
	return &Params{J: j, H: h}, nil
}

// solveMulti solves A X = B for X by Gaussian elimination with partial
// pivoting. A is overwritten.
func solveMulti(a, b *mat.Dense) (*mat.Dense, error) {
	n := a.Rows
	if a.Cols != n || b.Rows != n {
		return nil, fmt.Errorf("train: solveMulti shape mismatch")
	}
	m := b.Cols
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a.At(r, col)) > math.Abs(a.At(piv, col)) {
				piv = r
			}
		}
		if a.At(piv, col) == 0 {
			return nil, fmt.Errorf("train: singular system at column %d", col)
		}
		if piv != col {
			swapRows(a, piv, col)
			swapRows(b, piv, col)
		}
		pv := a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / pv
			if f == 0 {
				continue
			}
			arow, acol := a.Row(r), a.Row(col)
			for c := col; c < n; c++ {
				arow[c] -= f * acol[c]
			}
			brow, bcol := b.Row(r), b.Row(col)
			for c := 0; c < m; c++ {
				brow[c] -= f * bcol[c]
			}
		}
	}
	x := mat.NewDense(n, m)
	for r := n - 1; r >= 0; r-- {
		xrow, brow := x.Row(r), b.Row(r)
		arow := a.Row(r)
		for c := 0; c < m; c++ {
			s := brow[c]
			for k := r + 1; k < n; k++ {
				s -= arow[k] * x.At(k, c)
			}
			xrow[c] = s / arow[r]
		}
	}
	return x, nil
}

func swapRows(m *mat.Dense, a, b int) {
	if a == b {
		return
	}
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// MaskedRidge re-solves the training objective in closed form with J's
// support confined to a coupling mask — the "parameter fine-tune with
// patterns" step of Sec. IV.B. For every unknown variable u it fits a
// ridge regression over only the observed variables the interconnect mask
// allows it to couple with, using one shared Gram matrix over the observed
// block. Unknown-to-unknown couplings are left at zero: they would be
// fitted against ground-truth values that are unavailable at inference
// time (exposure bias), which measurably hurts the annealed solution.
func MaskedRidge(samples [][]float64, observed []bool, mask *mat.Bool, lambda float64) (*Params, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("train: no samples")
	}
	n := len(samples[0])
	if len(observed) != n {
		return nil, fmt.Errorf("train: observed mask has %d entries, want %d", len(observed), n)
	}
	if mask == nil || mask.Rows != n || mask.Cols != n {
		return nil, fmt.Errorf("train: coupling mask missing or mis-shaped")
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("train: ridge lambda must be positive, got %g", lambda)
	}
	var obsIdx, unkIdx []int
	obsPos := make([]int, n) // global index -> position in obsIdx
	for i, o := range observed {
		if o {
			obsPos[i] = len(obsIdx)
			obsIdx = append(obsIdx, i)
		} else {
			obsPos[i] = -1
			unkIdx = append(unkIdx, i)
		}
	}
	if len(obsIdx) == 0 || len(unkIdx) == 0 {
		return nil, fmt.Errorf("train: need both observed and unknown variables (%d/%d)", len(obsIdx), len(unkIdx))
	}
	no := len(obsIdx)

	// Shared Gram over the observed block and cross moments to every
	// unknown target.
	g := mat.NewDense(no, no)
	b := mat.NewDense(no, len(unkIdx))
	for _, smp := range samples {
		if len(smp) != n {
			return nil, fmt.Errorf("train: ragged samples")
		}
		for i := 0; i < no; i++ {
			vi := smp[obsIdx[i]]
			if vi == 0 {
				continue
			}
			grow := g.Row(i)
			for j := i; j < no; j++ {
				grow[j] += vi * smp[obsIdx[j]]
			}
			brow := b.Row(i)
			for u := range unkIdx {
				brow[u] += vi * smp[unkIdx[u]]
			}
		}
	}
	for i := 0; i < no; i++ {
		for j := 0; j < i; j++ {
			g.Set(i, j, g.At(j, i))
		}
	}

	j := mat.NewDense(n, n)
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	for u, uIdx := range unkIdx {
		// Columns this row may couple with: masked AND observed.
		var cols []int
		for c := 0; c < n; c++ {
			if c != uIdx && mask.At(uIdx, c) && observed[c] {
				cols = append(cols, obsPos[c])
			}
		}
		if len(cols) == 0 {
			continue // isolated row predicts 0 (the normalized mean)
		}
		s := len(cols)
		sub := mat.NewDense(s, s)
		rhs := mat.NewDense(s, 1)
		for a := 0; a < s; a++ {
			for c := 0; c < s; c++ {
				sub.Set(a, c, g.At(cols[a], cols[c]))
			}
			sub.Add(a, a, lambda)
			rhs.Set(a, 0, b.At(cols[a], u))
		}
		wts, err := solveMulti(sub, rhs)
		if err != nil {
			return nil, fmt.Errorf("train: masked ridge row %d: %w", uIdx, err)
		}
		for a := 0; a < s; a++ {
			j.Set(uIdx, obsIdx[cols[a]], wts.At(a, 0))
		}
	}
	j.ZeroDiagonal()
	return &Params{J: j, H: h}, nil
}
