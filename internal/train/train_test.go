package train

import (
	"math"
	"testing"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// genLinearSystem samples vectors from a known ground-truth dynamical
// system: draw a random "seed" subset, then fill the rest via the system's
// regression so the data is exactly representable.
func genLinearSystem(r *rng.RNG, n, m int) (*Params, [][]float64) {
	j := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k && r.Float64() < 0.4 {
				j.Set(i, k, r.NormScaled(0, 0.15))
			}
		}
	}
	h := make([]float64, n)
	for i := range h {
		h[i] = -1
	}
	truth := &Params{J: j, H: h}
	samples := make([][]float64, m)
	buf := make([]float64, n)
	for s := range samples {
		x := make([]float64, n)
		r.FillUniform(x, -0.8, 0.8)
		// A few Gauss-Seidel sweeps pull samples toward the system manifold
		// so a consistent (J, h) exists.
		for it := 0; it < 30; it++ {
			truth.Regress(x, buf)
			for i := n / 2; i < n; i++ { // keep first half as free inputs
				x[i] = 0.7*x[i] + 0.3*buf[i]
			}
		}
		samples[s] = x
	}
	return truth, samples
}

func TestFitReducesLoss(t *testing.T) {
	r := rng.New(1)
	_, samples := genLinearSystem(r, 20, 60)
	initParams, err := Fit(samples, Config{Epochs: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	trained, err := Fit(samples, Config{Epochs: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	l0 := Loss(initParams, samples)
	l1 := Loss(trained, samples)
	if l1 >= l0 {
		t.Fatalf("training did not reduce loss: %g -> %g", l0, l1)
	}
	if l1 > 0.5*l0 {
		t.Fatalf("training barely reduced loss: %g -> %g", l0, l1)
	}
}

func TestFitInvariants(t *testing.T) {
	r := rng.New(3)
	_, samples := genLinearSystem(r, 12, 40)
	p, err := Fit(samples, Config{Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Dim(); i++ {
		if p.J.At(i, i) != 0 {
			t.Fatalf("diag(J) non-zero at %d", i)
		}
		if p.H[i] > -0.5+1e-12 {
			t.Fatalf("h[%d] = %g above HMax", i, p.H[i])
		}
	}
}

func TestFitWithMaskConfinesSupport(t *testing.T) {
	r := rng.New(5)
	_, samples := genLinearSystem(r, 10, 30)
	n := 10
	mask := mat.NewBool(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if (i+k)%2 == 0 && i != k {
				mask.Set(i, k, true)
			}
		}
	}
	p, err := Fit(samples, Config{Epochs: 40, Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if !mask.At(i, k) && p.J.At(i, k) != 0 {
				t.Fatalf("J[%d,%d] = %g outside mask", i, k, p.J.At(i, k))
			}
		}
	}
}

func TestFineTuneFromInitImproves(t *testing.T) {
	r := rng.New(7)
	_, samples := genLinearSystem(r, 14, 50)
	full, err := Fit(samples, Config{Epochs: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Prune half the support, then fine-tune under that mask.
	n := full.Dim()
	mask := mat.NewBool(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			if i != k && math.Abs(full.J.At(i, k)) > 0.01 {
				mask.Set(i, k, true)
			}
		}
	}
	pruned := full.Clone()
	pruned.J.ApplyMask(mask)
	lPruned := Loss(pruned, samples)
	tuned, err := Fit(samples, Config{Epochs: 60, Mask: mask, Init: pruned})
	if err != nil {
		t.Fatal(err)
	}
	lTuned := Loss(tuned, samples)
	if lTuned > lPruned+1e-12 {
		t.Fatalf("fine-tune made loss worse: %g -> %g", lPruned, lTuned)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Config{}); err == nil {
		t.Fatal("expected error for empty samples")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, Config{}); err == nil {
		t.Fatal("expected error for ragged samples")
	}
	if _, err := Fit([][]float64{{1, 2}}, Config{HMax: 0.5}); err == nil {
		t.Fatal("expected error for positive HMax")
	}
	badMask := mat.NewBool(3, 3)
	if _, err := Fit([][]float64{{1, 2}}, Config{Mask: badMask}); err == nil {
		t.Fatal("expected error for mask size mismatch")
	}
	init := &Params{J: mat.NewDense(3, 3), H: []float64{-1, -1, -1}}
	if _, err := Fit([][]float64{{1, 2}}, Config{Init: init}); err == nil {
		t.Fatal("expected error for init dim mismatch")
	}
}

func TestRegressMatchesManual(t *testing.T) {
	j := mat.NewDense(2, 2)
	j.Set(0, 1, 0.4)
	j.Set(1, 0, -0.2)
	p := &Params{J: j, H: []float64{-2, -0.5}}
	out := p.Regress([]float64{1, 0.5}, nil)
	// out0 = -(0.4*0.5)/-2 = 0.1; out1 = -(-0.2*1)/-0.5 = -0.4.
	if math.Abs(out[0]-0.1) > 1e-12 || math.Abs(out[1]+0.4) > 1e-12 {
		t.Fatalf("Regress = %v", out)
	}
}

func TestLossZeroForPerfectSystem(t *testing.T) {
	// If every sample satisfies σ = Regress(σ) exactly, loss is 0.
	j := mat.NewDense(2, 2)
	j.Set(0, 1, 1)
	j.Set(1, 0, 1)
	p := &Params{J: j, H: []float64{-1, -1}}
	// σ0 = σ1 satisfies both regressions when h = -1, J = 1.
	samples := [][]float64{{0.3, 0.3}, {-0.5, -0.5}}
	if l := Loss(p, samples); l > 1e-15 {
		t.Fatalf("loss = %g, want 0", l)
	}
}

func TestL1DrivesSparsity(t *testing.T) {
	r := rng.New(9)
	_, samples := genLinearSystem(r, 16, 50)
	dense, err := Fit(samples, Config{Epochs: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Fit(samples, Config{Epochs: 80, Seed: 1, L1: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// L1-regularized couplings should be smaller in aggregate magnitude.
	sumAbs := func(m *mat.Dense) float64 {
		var s float64
		for _, v := range m.Data {
			s += math.Abs(v)
		}
		return s
	}
	if sumAbs(sparse.J) >= sumAbs(dense.J) {
		t.Fatalf("L1 did not shrink couplings: %g vs %g", sumAbs(sparse.J), sumAbs(dense.J))
	}
}

func TestTrainHOffKeepsH(t *testing.T) {
	r := rng.New(4)
	_, samples := genLinearSystem(r, 8, 20)
	p, err := Fit(samples, Config{Epochs: 30, TrainHOff: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range p.H {
		if h != -1 {
			t.Fatalf("h[%d] = %g changed despite TrainHOff", i, h)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Params{J: mat.NewDense(2, 2), H: []float64{-1, -1}}
	c := p.Clone()
	c.J.Set(0, 1, 5)
	c.H[0] = -9
	if p.J.At(0, 1) != 0 || p.H[0] != -1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	p := &Params{J: mat.NewDense(2, 2), H: []float64{-1, 1}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for positive h")
	}
	p2 := &Params{J: mat.NewDense(3, 3), H: []float64{-1, -1}}
	if err := p2.Validate(); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
	p3 := &Params{J: mat.NewDense(2, 2), H: []float64{-1, -1}}
	p3.J.Set(1, 1, 2)
	if err := p3.Validate(); err == nil {
		t.Fatal("expected error for non-zero diagonal")
	}
}
