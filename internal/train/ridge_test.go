package train

import (
	"math"
	"testing"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// genObservedUnknown builds samples where the unknown entries are exact
// linear functions of the observed ones plus optional noise.
func genObservedUnknown(r *rng.RNG, nObs, nUnk, m int, noise float64) (w *mat.Dense, observed []bool, samples [][]float64) {
	n := nObs + nUnk
	observed = make([]bool, n)
	for i := 0; i < nObs; i++ {
		observed[i] = true
	}
	w = mat.NewDense(nUnk, nObs)
	r.FillNorm(w.Data, 0, 0.3)
	samples = make([][]float64, m)
	for s := range samples {
		x := make([]float64, n)
		r.FillUniform(x[:nObs], -0.8, 0.8)
		for u := 0; u < nUnk; u++ {
			var v float64
			for i := 0; i < nObs; i++ {
				v += w.At(u, i) * x[i]
			}
			x[nObs+u] = v + r.NormScaled(0, noise)
		}
		samples[s] = x
	}
	return w, observed, samples
}

func TestRidgeInitRecoversExactSystem(t *testing.T) {
	r := rng.New(1)
	wTrue, observed, samples := genObservedUnknown(r, 10, 4, 200, 0)
	p, err := RidgeInit(samples, observed, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// J[unk][obs] must equal the generating weights (h = -1).
	for u := 0; u < 4; u++ {
		for i := 0; i < 10; i++ {
			got := p.J.At(10+u, i)
			if math.Abs(got-wTrue.At(u, i)) > 1e-4 {
				t.Fatalf("J[%d][%d] = %g, want %g", 10+u, i, got, wTrue.At(u, i))
			}
		}
	}
	// Unknown-to-unknown block stays zero.
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if p.J.At(10+a, 10+b) != 0 {
				t.Fatal("unknown-unknown coupling should be zero")
			}
		}
	}
}

func TestRidgeInitRegressionMatchesTargets(t *testing.T) {
	r := rng.New(2)
	_, observed, samples := genObservedUnknown(r, 8, 3, 150, 0.01)
	p, err := RidgeInit(samples, observed, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 11)
	var sse, n float64
	for _, smp := range samples {
		p.Regress(smp, buf)
		for u := 8; u < 11; u++ {
			d := buf[u] - smp[u]
			sse += d * d
			n++
		}
	}
	if rmse := math.Sqrt(sse / n); rmse > 0.05 {
		t.Fatalf("training-set regression RMSE %g too high", rmse)
	}
}

func TestRidgeInitShrinksWithLambda(t *testing.T) {
	r := rng.New(3)
	_, observed, samples := genObservedUnknown(r, 8, 3, 100, 0.05)
	small, err := RidgeInit(samples, observed, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RidgeInit(samples, observed, 100)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(p *Params) float64 {
		var s float64
		for _, v := range p.J.Data {
			s += v * v
		}
		return s
	}
	if norm(big) >= norm(small) {
		t.Fatalf("larger lambda must shrink weights: %g vs %g", norm(big), norm(small))
	}
}

func TestRidgeInitErrors(t *testing.T) {
	if _, err := RidgeInit(nil, nil, 1); err == nil {
		t.Fatal("expected error for no samples")
	}
	if _, err := RidgeInit([][]float64{{1, 2}}, []bool{true}, 1); err == nil {
		t.Fatal("expected error for mask length mismatch")
	}
	if _, err := RidgeInit([][]float64{{1, 2}}, []bool{true, false}, 0); err == nil {
		t.Fatal("expected error for non-positive lambda")
	}
	if _, err := RidgeInit([][]float64{{1, 2}}, []bool{true, true}, 1); err == nil {
		t.Fatal("expected error when no unknowns")
	}
	if _, err := RidgeInit([][]float64{{1, 2}, {1}}, []bool{true, false}, 1); err == nil {
		t.Fatal("expected error for ragged samples")
	}
}

func TestMaskedRidgeRespectsMask(t *testing.T) {
	r := rng.New(4)
	_, observed, samples := genObservedUnknown(r, 8, 3, 150, 0.01)
	n := 11
	mask := mat.NewBool(n, n)
	// Unknown 8 may use observed 0-3 only; unknown 9 observed 4-7;
	// unknown 10 nothing.
	for i := 0; i < 4; i++ {
		mask.Set(8, i, true)
		mask.Set(9, 4+i, true)
	}
	p, err := MaskedRidge(samples, observed, mask, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < n; c++ {
		if c >= 4 && p.J.At(8, c) != 0 {
			t.Fatalf("row 8 coupled outside mask at %d", c)
		}
		if (c < 4 || c > 7) && p.J.At(9, c) != 0 {
			t.Fatalf("row 9 coupled outside mask at %d", c)
		}
		if p.J.At(10, c) != 0 {
			t.Fatal("isolated row 10 must stay zero")
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedRidgeMatchesFullRidgeWhenUnmasked(t *testing.T) {
	r := rng.New(5)
	_, observed, samples := genObservedUnknown(r, 8, 3, 150, 0.02)
	n := 11
	full := mat.NewBool(n, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				full.Set(a, b, true)
			}
		}
	}
	mr, err := MaskedRidge(samples, observed, full, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := RidgeInit(samples, observed, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !mr.J.Equal(ri.J, 1e-8) {
		t.Fatal("full-mask MaskedRidge must equal RidgeInit")
	}
}

func TestMaskedRidgeErrors(t *testing.T) {
	samples := [][]float64{{1, 2}}
	observed := []bool{true, false}
	if _, err := MaskedRidge(samples, observed, nil, 1); err == nil {
		t.Fatal("expected error for nil mask")
	}
	if _, err := MaskedRidge(samples, observed, mat.NewBool(3, 3), 1); err == nil {
		t.Fatal("expected error for mask shape")
	}
	if _, err := MaskedRidge(nil, observed, mat.NewBool(2, 2), 1); err == nil {
		t.Fatal("expected error for no samples")
	}
	if _, err := MaskedRidge(samples, observed, mat.NewBool(2, 2), -1); err == nil {
		t.Fatal("expected error for bad lambda")
	}
}

func TestSolveMultiKnownSystem(t *testing.T) {
	// [2 1; 1 3] X = [5; 10] -> X = [1; 3].
	a := mat.NewDenseFrom(2, 2, []float64{2, 1, 1, 3})
	b := mat.NewDenseFrom(2, 1, []float64{5, 10})
	x, err := solveMulti(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-1) > 1e-12 || math.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Fatalf("solution %v", x.Data)
	}
}

func TestSolveMultiSingular(t *testing.T) {
	a := mat.NewDenseFrom(2, 2, []float64{1, 1, 1, 1})
	b := mat.NewDenseFrom(2, 1, []float64{1, 2})
	if _, err := solveMulti(a, b); err == nil {
		t.Fatal("expected error for singular system")
	}
}

func TestSolveMultiPivoting(t *testing.T) {
	// Leading zero forces a pivot swap.
	a := mat.NewDenseFrom(2, 2, []float64{0, 1, 1, 0})
	b := mat.NewDenseFrom(2, 1, []float64{3, 7})
	x, err := solveMulti(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.At(0, 0)-7) > 1e-12 || math.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Fatalf("solution %v", x.Data)
	}
}
