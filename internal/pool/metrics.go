package pool

import (
	"sync/atomic"

	"dsgl/internal/obs"
)

// poolObs bundles the pool's pre-registered instruments, cached against
// the current default registry behind an atomic pointer (the binding
// pattern shared with internal/engine and internal/train). Recording
// happens per run and per item pull — items are inferences or sweep
// configurations, never anneal steps — and the per-item timing runs only
// when observability is enabled, so the disabled path is the untouched
// work-stealing loop.
type poolObs struct {
	reg *obs.Registry

	runs        *obs.Counter // dsgl_pool_runs_total
	items       *obs.Counter // dsgl_pool_items_total
	workers     *obs.Gauge   // dsgl_pool_workers
	queueDepth  *obs.Gauge   // dsgl_pool_queue_depth
	utilization *obs.Gauge   // dsgl_pool_utilization
}

func (m *poolObs) enabled() bool { return m.reg != nil }

var obsBind atomic.Pointer[poolObs]

// metrics returns the pool's instrument binding for the current default
// registry, rebuilding it only when the registry changed.
func metrics() *poolObs {
	m := obsBind.Load()
	r := obs.Default()
	if m != nil && m.reg == r {
		return m
	}
	if r == nil {
		m = &poolObs{}
	} else {
		m = &poolObs{
			reg:         r,
			runs:        r.Counter("dsgl_pool_runs_total", "worker-pool runs started"),
			items:       r.Counter("dsgl_pool_items_total", "items dispatched across all pool runs"),
			workers:     r.Gauge("dsgl_pool_workers", "worker count of the most recent pool run"),
			queueDepth:  r.Gauge("dsgl_pool_queue_depth", "items not yet claimed by a worker in the current run"),
			utilization: r.Gauge("dsgl_pool_utilization", "busy-time fraction of the most recent pool run (sum of item wall time / workers * run wall time)"),
		}
	}
	obsBind.Store(m)
	return m
}
