package pool

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(16, 4); got != 4 {
		t.Fatalf("Clamp(16, 4) = %d, want 4", got)
	}
	if got := Clamp(2, 100); got != 2 {
		t.Fatalf("Clamp(2, 100) = %d, want 2", got)
	}
	if got := Clamp(5, 0); got != 1 {
		t.Fatalf("Clamp(5, 0) = %d, want 1", got)
	}
}

func TestRunVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 257
		var counts [n]atomic.Int32
		Run(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroItems(t *testing.T) {
	called := false
	Run(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called with zero items")
	}
	if err := RunErr(4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatalf("RunErr on zero items: %v", err)
	}
}

func TestRunErrReturnsFirstErrorInItemOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := RunErr(4, 10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("RunErr = %v, want first error in item order (%v)", err, errA)
	}
	if err := RunErr(4, 10, func(int) error { return nil }); err != nil {
		t.Fatalf("RunErr without failures: %v", err)
	}
}

func TestRunWorkersPassesValidWorkerIndex(t *testing.T) {
	const workers, n = 4, 64
	var bad atomic.Int32
	var visited atomic.Int32
	RunWorkers(workers, n, func(worker, i int) {
		if worker < 0 || worker >= workers {
			bad.Add(1)
		}
		visited.Add(1)
	})
	if bad.Load() != 0 {
		t.Fatal("worker index out of range")
	}
	if visited.Load() != n {
		t.Fatalf("visited %d items, want %d", visited.Load(), n)
	}
}

func TestRunSequentialFallbackIsInline(t *testing.T) {
	// With one worker the items must run on the calling goroutine in
	// order — sequential callers get loop semantics back exactly.
	var order []int
	Run(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("single-worker order %v not sequential", order)
		}
	}
}
