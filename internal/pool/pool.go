// Package pool is the worker-pool primitive shared by the batch-inference
// engine (scalable.Machine.InferBatch), the top-level parallel evaluator
// (dsgl.Model.EvaluateParallel), the ridge-lambda selection grid, and the
// experiment sweeps of internal/experiments.
//
// The pool hands item indices to workers atomically (work stealing), so the
// assignment of items to workers is scheduling-dependent. Callers must make
// each item's outcome a pure function of its index — the inference engine
// derives per-window seeds as Seed + windowIndex for exactly this reason,
// which keeps parallel results bit-identical to a sequential loop over the
// same items.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers normalizes a requested worker count: n > 0 is used as-is; any
// other value selects runtime.GOMAXPROCS(0), the number of OS threads the
// Go scheduler will actually run concurrently.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Clamp returns the effective pool size for n items with the requested
// worker count: Workers(workers) bounded above by n and below by 1.
func Clamp(workers, n int) int {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn(i) for every i in [0, n) using at most workers
// goroutines (workers <= 0 selects GOMAXPROCS). With one worker it runs
// inline on the calling goroutine, so sequential callers pay no
// synchronization cost.
func Run(workers, n int, fn func(i int)) {
	RunWorkers(Clamp(workers, n), n, func(_, i int) { fn(i) })
}

// RunErr is Run for item functions that can fail. Every item is still
// visited (no early cancellation — items are cheap and independent); the
// first error in item order is returned, matching what a sequential loop
// that aborts on error would have surfaced for deterministic item
// functions.
func RunErr(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	Run(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunWorkers is the core loop: it spawns exactly workers goroutines (the
// caller normalizes the count, typically via Clamp) and passes each
// invocation the worker's index in [0, workers) alongside the item index.
// The worker index lets callers give every worker a private scratch arena
// — the zero-allocation inference states of scalable.Machine.InferBatch —
// without any locking.
func RunWorkers(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	// Observability: per-run counters plus queue depth and worker
	// utilization, wrapped around the item function only when a registry
	// is installed — the disabled path is the bare work-stealing loop.
	pm := metrics()
	var busyNs atomic.Int64
	var runStart time.Time
	if pm.enabled() {
		pm.runs.Inc()
		pm.items.Add(uint64(n))
		pm.workers.Set(float64(workers))
		pm.queueDepth.Set(float64(n))
		runStart = time.Now()
		inner := fn
		fn = func(worker, i int) {
			// i was just claimed; n-1-i items remain unclaimed under the
			// monotone index hand-out.
			pm.queueDepth.Set(float64(n - 1 - i))
			t0 := time.Now()
			inner(worker, i)
			busyNs.Add(int64(time.Since(t0)))
		}
		defer func() {
			pm.queueDepth.Set(0)
			if wall := time.Since(runStart); wall > 0 {
				pm.utilization.Set(float64(busyNs.Load()) / (float64(workers) * float64(wall)))
			}
		}()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
