// Package rng provides the deterministic pseudo-random source used across
// the reproduction. All experiments are seeded so that every table and
// figure regenerates identically run-to-run.
//
// The generator is SplitMix64 feeding xoshiro256**-style output through the
// standard library is avoided on purpose: math/rand's global state makes
// experiments order-dependent, while an explicit RNG threaded through each
// component keeps the simulator deterministic under refactoring.
package rng

import "math"

// RNG is a small, fast, splittable PRNG (SplitMix64). The zero value is a
// valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Reseed resets the generator to the exact stream of New(seed) without
// allocating. Reusable scratch states (scalable.InferState, dspu.InferState)
// embed an RNG by value and Reseed it per inference so the anneal hot loop
// stays allocation-free.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// Split derives an independent child generator. The child's stream is
// decorrelated from the parent's continued stream, so subsystems can be
// given their own sources without coordinating draw counts.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal draw (Box-Muller).
func (r *RNG) Norm() float64 {
	// Reject u1 == 0 to keep Log finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormScaled returns mean + sd*Norm().
func (r *RNG) NormScaled(mean, sd float64) float64 {
	return mean + sd*r.Norm()
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillUniform fills x with uniform draws from [lo, hi).
func (r *RNG) FillUniform(x []float64, lo, hi float64) {
	for i := range x {
		x[i] = r.Uniform(lo, hi)
	}
}

// FillNorm fills x with N(mean, sd²) draws.
func (r *RNG) FillNorm(x []float64, mean, sd float64) {
	for i := range x {
		x[i] = r.NormScaled(mean, sd)
	}
}
