package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %g too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn covered only %d of 10 values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(123)
	child := parent.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 50; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestFillHelpers(t *testing.T) {
	r := New(4)
	x := make([]float64, 100)
	r.FillUniform(x, 1, 2)
	for _, v := range x {
		if v < 1 || v >= 2 {
			t.Fatalf("FillUniform out of range: %g", v)
		}
	}
	r.FillNorm(x, 10, 0.001)
	for _, v := range x {
		if math.Abs(v-10) > 0.01 {
			t.Fatalf("FillNorm sample %g too far from mean", v)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(6)
	x := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), x...)
	r.Shuffle(len(x), func(i, j int) { x[i], x[j] = x[j], x[i] })
	sum := 0
	for _, v := range x {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", x)
	}
	moved := false
	for i := range x {
		if x[i] != orig[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("shuffle did not move anything (astronomically unlikely)")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
}
