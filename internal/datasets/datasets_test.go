package datasets

import (
	"math"
	"testing"

	"dsgl/internal/rng"
)

func TestAllGeneratorsValidate(t *testing.T) {
	for _, name := range append(Names(), MultiNames()...) {
		name := name
		t.Run(name, func(t *testing.T) {
			d := Generate(name, Config{})
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
			if d.Name != name {
				t.Fatalf("name %q != %q", d.Name, name)
			}
		})
	}
}

func TestGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate("nope", Config{})
}

func TestNormalizationBounds(t *testing.T) {
	for _, name := range Names() {
		d := Generate(name, Config{})
		for _, v := range d.X {
			if v < -0.8-1e-9 || v > 0.8+1e-9 {
				t.Fatalf("%s: value %g outside rails", name, v)
			}
		}
		lo, hi := d.X[0], d.X[0]
		for _, v := range d.X {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo < 1.0 {
			t.Fatalf("%s: dynamic range only %g (normalization degenerate)", name, hi-lo)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate("traffic", Config{Seed: 1})
	b := Generate("traffic", Config{Seed: 1})
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	c := Generate("traffic", Config{Seed: 2})
	diff := false
	for i := range a.X {
		if a.X[i] != c.X[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestWindowLayout(t *testing.T) {
	d := Generate("traffic", Config{N: 8, T: 60})
	w := d.Window(3)
	if len(w.Full) != d.WindowLen() {
		t.Fatalf("window length %d, want %d", len(w.Full), d.WindowLen())
	}
	// Entry (s=1, n=2, f=0) must equal At(start+1, 2, 0).
	idx := 1*d.N*d.F + 2*d.F
	if w.Full[idx] != d.At(4, 2, 0) {
		t.Fatal("window layout mismatch")
	}
}

func TestSplitNoOverlapAndOrder(t *testing.T) {
	d := Generate("stock", Config{N: 8, T: 80})
	train, test := d.Split()
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("split degenerate: %d/%d", len(train), len(test))
	}
	// The gap drops the History+Horizon-1 test windows whose spans overlap
	// the training windows; everything else is kept.
	gap := d.History + d.Horizon - 1
	if len(train)+len(test)+gap != d.NumWindows() {
		t.Fatalf("split window accounting: %d train + %d test + %d gap != %d total",
			len(train), len(test), gap, d.NumWindows())
	}
	lastTrain := train[len(train)-1].Start
	firstTest := test[0].Start
	if firstTest <= lastTrain {
		t.Fatal("test windows must come after train windows")
	}
}

// TestSplitHorizonDisjoint is the temporal-leakage regression: before the
// gapped split, the last training windows spanned timesteps that
// reappeared as the horizons of the first test windows — the trainer had
// literally seen the test targets. The fix gaps the split by
// History+Horizon-1 windows, and this test asserts the resulting
// guarantee: no test window shares ANY timestep (history or horizon) with
// any training window. The pre-fix split fails it (first test window
// started at timestep nTrain, inside the last training span).
func TestSplitHorizonDisjoint(t *testing.T) {
	for _, name := range []string{"stock", "traffic"} {
		d := Generate(name, Config{N: 8, T: 80})
		train, test := d.Split()
		if len(train) == 0 || len(test) == 0 {
			t.Fatalf("%s: split degenerate: %d/%d", name, len(train), len(test))
		}
		span := d.History + d.Horizon
		// Timesteps any training window touches: [0, lastTrainEnd].
		lastTrainEnd := train[len(train)-1].Start + span - 1
		for i, w := range test {
			if w.Start <= lastTrainEnd {
				t.Fatalf("%s: test window %d starts at timestep %d, inside the training span (last training timestep %d)",
					name, i, w.Start, lastTrainEnd)
			}
		}
	}
}

func TestObservedMaskSingleFeature(t *testing.T) {
	d := Generate("traffic", Config{N: 4, T: 60})
	mask := d.ObservedMask()
	nObs := 0
	for _, m := range mask {
		if m {
			nObs++
		}
	}
	wantObs := d.History * d.N * d.F
	if nObs != wantObs {
		t.Fatalf("observed count %d, want %d (all history)", nObs, wantObs)
	}
	unk := d.UnknownIndices()
	if len(unk) != d.Horizon*d.N*d.F {
		t.Fatalf("unknown count %d", len(unk))
	}
	// All unknowns must be in the horizon portion.
	histLen := d.History * d.N * d.F
	for _, i := range unk {
		if i < histLen {
			t.Fatalf("unknown index %d inside history", i)
		}
	}
}

func TestObservedMaskMultiFeature(t *testing.T) {
	d := Generate("housing", Config{})
	if d.PredictFeature != 0 {
		t.Fatalf("housing PredictFeature = %d", d.PredictFeature)
	}
	unk := d.UnknownIndices()
	// Only feature 0 of horizon steps is unknown.
	if len(unk) != d.Horizon*d.N {
		t.Fatalf("unknown count %d, want %d", len(unk), d.Horizon*d.N)
	}
	for _, i := range unk {
		if i%d.F != 0 {
			t.Fatalf("unknown index %d is not feature 0", i)
		}
	}
}

func TestCommunityGraphStructure(t *testing.T) {
	r := rng.New(11)
	adj, labels := CommunityGraph(GraphSpec{N: 60, Communities: 5}, r)
	if adj.Rows != 60 {
		t.Fatalf("adjacency size %d", adj.Rows)
	}
	// Symmetric, non-negative, zero diagonal.
	for i := 0; i < 60; i++ {
		if adj.At(i, i) != 0 {
			t.Fatal("self-loop present")
		}
		for j := 0; j < 60; j++ {
			if adj.At(i, j) < 0 {
				t.Fatal("negative weight")
			}
			if adj.At(i, j) != adj.At(j, i) {
				t.Fatal("asymmetric adjacency")
			}
		}
	}
	// Intra-community edges must dominate inter-community edges.
	var intra, inter float64
	var intraN, interN int
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			if adj.At(i, j) == 0 {
				continue
			}
			if labels[i] == labels[j] {
				intra += adj.At(i, j)
				intraN++
			} else {
				inter += adj.At(i, j)
				interN++
			}
		}
	}
	if intraN <= interN {
		t.Fatalf("community structure weak: %d intra vs %d inter edges", intraN, interN)
	}
	// No isolated nodes.
	for i := 0; i < 60; i++ {
		deg := 0.0
		for j := 0; j < 60; j++ {
			deg += adj.At(i, j)
		}
		if deg == 0 {
			t.Fatalf("node %d isolated", i)
		}
	}
}

func TestRowNormalized(t *testing.T) {
	r := rng.New(2)
	adj, _ := CommunityGraph(GraphSpec{N: 20, Communities: 2}, r)
	d := RowNormalized(adj)
	for i := 0; i < 20; i++ {
		var sum float64
		for j := 0; j < 20; j++ {
			sum += d.At(i, j)
		}
		if math.Abs(sum-1) > 1e-9 && sum != 0 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestTemporalPredictability(t *testing.T) {
	// The generated series must be learnable: persistence (predicting the
	// last observed value) must beat predicting zero — otherwise the
	// prediction task is vacuous.
	for _, name := range Names() {
		d := Generate(name, Config{})
		var persistErr, zeroErr float64
		cnt := 0
		for tt := d.History; tt < d.T-1; tt++ {
			for n := 0; n < d.N; n++ {
				next := d.At(tt+1, n, 0)
				last := d.At(tt, n, 0)
				persistErr += (next - last) * (next - last)
				zeroErr += next * next
				cnt++
			}
		}
		if persistErr >= zeroErr {
			t.Fatalf("%s: persistence RMSE not better than zero baseline", name)
		}
	}
}

func TestSpatialCorrelation(t *testing.T) {
	// Neighboring nodes must be more correlated than random pairs —
	// otherwise the graph carries no signal and graph learning is moot.
	d := Generate("pm25", Config{})
	corr := func(a, b int) float64 {
		var sa, sb, saa, sbb, sab float64
		for tt := 0; tt < d.T; tt++ {
			va, vb := d.At(tt, a, 0), d.At(tt, b, 0)
			sa += va
			sb += vb
			saa += va * va
			sbb += vb * vb
			sab += va * vb
		}
		n := float64(d.T)
		cov := sab/n - sa/n*sb/n
		return cov / math.Sqrt((saa/n-sa/n*sa/n)*(sbb/n-sb/n*sb/n)+1e-12)
	}
	var nbrCorr, farCorr float64
	var nbrN, farN int
	for i := 0; i < d.N; i++ {
		for j := i + 1; j < d.N; j++ {
			c := corr(i, j)
			if d.Adj.At(i, j) > 0 {
				nbrCorr += c
				nbrN++
			} else {
				farCorr += c
				farN++
			}
		}
	}
	if nbrN == 0 || farN == 0 {
		t.Skip("degenerate graph")
	}
	if nbrCorr/float64(nbrN) <= farCorr/float64(farN) {
		t.Fatal("neighbors not more correlated than non-neighbors")
	}
}

func TestConfigOverrides(t *testing.T) {
	d := Generate("covid", Config{N: 10, T: 100, History: 3, Horizon: 1})
	if d.N != 10 || d.T != 100 || d.History != 3 || d.Horizon != 1 {
		t.Fatalf("config not honored: %+v", d)
	}
}

func TestMultiFeatureShapes(t *testing.T) {
	h := Generate("housing", Config{})
	if h.F != 6 {
		t.Fatalf("housing F = %d", h.F)
	}
	c := Generate("climate", Config{})
	if c.F != 6 {
		t.Fatalf("climate F = %d", c.F)
	}
}

func TestTrafficDailyPeriodicity(t *testing.T) {
	// The traffic generator is driven by a 24-step daily cycle; the lag-24
	// autocorrelation must clearly exceed the lag-12 (anti-phase) one.
	d := Generate("traffic", Config{})
	autocorr := func(lag int) float64 {
		var num, den float64
		for n := 0; n < d.N; n++ {
			var mean float64
			for tt := 0; tt < d.T; tt++ {
				mean += d.At(tt, n, 0)
			}
			mean /= float64(d.T)
			for tt := 0; tt+lag < d.T; tt++ {
				num += (d.At(tt, n, 0) - mean) * (d.At(tt+lag, n, 0) - mean)
			}
			for tt := 0; tt < d.T; tt++ {
				den += (d.At(tt, n, 0) - mean) * (d.At(tt, n, 0) - mean)
			}
		}
		return num / den
	}
	if autocorr(24) <= autocorr(12) {
		t.Fatalf("lag-24 autocorr %g not above lag-12 %g", autocorr(24), autocorr(12))
	}
}

func TestCovidWavesNonNegativeBeforeNormalize(t *testing.T) {
	// Covid case increments are non-negative by construction; after
	// normalization the minimum maps to -0.8 but the raw dynamic range
	// must still show wave structure (distinct peaks).
	d := Generate("covid", Config{})
	peaks := 0
	for n := 0; n < 3; n++ {
		prevRising := false
		for tt := 1; tt < d.T; tt++ {
			rising := d.At(tt, n, 0) > d.At(tt-1, n, 0)+1e-6
			if prevRising && !rising && d.At(tt-1, n, 0) > 0 {
				peaks++
			}
			prevRising = rising
		}
	}
	if peaks < 3 {
		t.Fatalf("covid series shows only %d peaks; expected epidemic waves", peaks)
	}
}

func TestHiddenTransferDiffersFromRowNormalized(t *testing.T) {
	r := rng.New(5)
	adj, _ := CommunityGraph(GraphSpec{N: 20, Communities: 3}, r)
	plain := RowNormalized(adj)
	hidden := HiddenTransfer(adj, rng.New(6))
	diff := false
	for i := range plain.Data {
		if plain.Data[i] != hidden.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("hidden transfer must perturb edge gains")
	}
	// Rows still normalized.
	for i := 0; i < 20; i++ {
		var sum float64
		for j := 0; j < 20; j++ {
			sum += hidden.At(i, j)
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("hidden transfer row %d sums to %g", i, sum)
		}
	}
}

// TestAirKindsPairwiseDistinct is the regression test for the pm25/pm10
// seed collision: the old seed mix (len(kind)*0x9e37 + kind[0]) collided
// for "pm25" and "pm10" (same length, same first byte), so both pollutants
// were generated from the identical RNG stream — same graph, same data up
// to the airParams differences. Every pair of air kinds must now have
// distinct adjacency AND distinct data.
func TestAirKindsPairwiseDistinct(t *testing.T) {
	kinds := []string{"pm25", "pm10", "no2", "o3"}
	gen := make(map[string]*Dataset, len(kinds))
	for _, k := range kinds {
		d, err := NewAir(k, Config{N: 16, T: 240, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		gen[k] = d
	}
	equal := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i, ka := range kinds {
		for _, kb := range kinds[i+1:] {
			a, b := gen[ka], gen[kb]
			if equal(a.Adj.Data, b.Adj.Data) {
				t.Errorf("%s vs %s: identical adjacency (seed-collision regression)", ka, kb)
			}
			if equal(a.X, b.X) {
				t.Errorf("%s vs %s: identical data (seed-collision regression)", ka, kb)
			}
		}
	}
}

func TestValidatePredictFeature(t *testing.T) {
	cases := []struct {
		pf int
		ok bool
	}{
		{-1, true}, // predict all features
		{0, true},
		{5, true},  // F-1 for the F=6 housing set
		{6, false}, // == F
		{9, false},
		{-2, false}, // below -1: used to be silently treated as -1
		{-5, false},
	}
	for _, tc := range cases {
		d := Generate("housing", Config{N: 8, T: 60})
		if d.F != 6 {
			t.Fatalf("housing F=%d, test assumes 6", d.F)
		}
		d.PredictFeature = tc.pf
		err := d.Validate()
		if tc.ok && err != nil {
			t.Errorf("PredictFeature=%d: unexpected error %v", tc.pf, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("PredictFeature=%d: want validation error, got nil", tc.pf)
		}
	}
}

func TestNewUnknownName(t *testing.T) {
	if _, err := New("nope", Config{}); err == nil {
		t.Fatal("New with unknown name must return an error")
	}
	if _, err := NewAir("nope", Config{}); err == nil {
		t.Fatal("NewAir with unknown kind must return an error")
	}
	d, err := New("traffic", Config{N: 8, T: 60})
	if err != nil || d == nil || d.Name != "traffic" {
		t.Fatalf("New(traffic) = %v, %v", d, err)
	}
}

// TestCrossGeneratorDeterminism locks in the seed-collision fix class-wide:
// every registered generator is bit-identical under a repeated Config, a
// different seed changes the data, and no two generators produce the same
// data from the same Config.
func TestCrossGeneratorDeterminism(t *testing.T) {
	cfg := Config{N: 16, T: 240, Seed: 3}
	names := append(Names(), MultiNames()...)
	xs := make(map[string][]float64, len(names))
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			a := Generate(name, cfg)
			b := Generate(name, cfg)
			if len(a.X) != len(b.X) {
				t.Fatal("repeated generation changed shape")
			}
			for i := range a.X {
				if a.X[i] != b.X[i] {
					t.Fatalf("X[%d] differs across identical runs", i)
				}
			}
			for i := range a.Adj.Data {
				if a.Adj.Data[i] != b.Adj.Data[i] {
					t.Fatalf("Adj[%d] differs across identical runs", i)
				}
			}
			for i := range a.Community {
				if a.Community[i] != b.Community[i] {
					t.Fatalf("Community[%d] differs across identical runs", i)
				}
			}
			c := Generate(name, Config{N: 16, T: 240, Seed: 4})
			same := len(a.X) == len(c.X)
			if same {
				same = false
				for i := range a.X {
					if a.X[i] != c.X[i] {
						same = true
						break
					}
				}
				if !same {
					t.Fatal("different seeds produced identical data")
				}
			}
			xs[name] = a.X
		})
	}
	for i, na := range names {
		for _, nb := range names[i+1:] {
			a, b := xs[na], xs[nb]
			if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
				continue
			}
			same := true
			for k := range a {
				if a[k] != b[k] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s and %s generated identical data from the same Config", na, nb)
			}
		}
	}
}
