package datasets

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate("traffic", Config{N: 8, T: 80})
	var series, adj bytes.Buffer
	if err := orig.WriteSeriesCSV(&series); err != nil {
		t.Fatal(err)
	}
	if err := orig.WriteAdjacencyCSV(&adj); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV(&series, &adj, CSVSpec{
		Name: "traffic", History: orig.History, Horizon: orig.Horizon, Raw: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.N != orig.N || back.T != orig.T || back.F != orig.F {
		t.Fatalf("shape mismatch: %d/%d/%d", back.N, back.T, back.F)
	}
	for i := range orig.X {
		if back.X[i] != orig.X[i] {
			t.Fatalf("data mismatch at %d: %g vs %g", i, back.X[i], orig.X[i])
		}
	}
	for i := range orig.Adj.Data {
		if back.Adj.Data[i] != orig.Adj.Data[i] {
			t.Fatal("adjacency mismatch")
		}
	}
}

func TestReadSeriesCSVHeaderSkipped(t *testing.T) {
	in := "a,b\n1,2\n3,4\n"
	rows, err := ReadSeriesCSV(strings.NewReader(in), CSVSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != 1 || rows[1][1] != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestReadSeriesCSVErrors(t *testing.T) {
	if _, err := ReadSeriesCSV(strings.NewReader(""), CSVSpec{}); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := ReadSeriesCSV(strings.NewReader("1,2\n3,x\n"), CSVSpec{}); err == nil {
		t.Fatal("expected error for non-numeric mid-file value")
	}
	if _, err := ReadSeriesCSV(strings.NewReader("1,2\n3\n"), CSVSpec{}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestReadAdjacencyCSVSymmetrizes(t *testing.T) {
	in := "0,2\n0,0\n"
	adj, err := ReadAdjacencyCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if adj.At(0, 1) != 1 || adj.At(1, 0) != 1 {
		t.Fatalf("expected symmetrized weight 1, got %g/%g", adj.At(0, 1), adj.At(1, 0))
	}
}

func TestReadAdjacencyCSVRejectsNegative(t *testing.T) {
	if _, err := ReadAdjacencyCSV(strings.NewReader("0,-1\n-1,0\n")); err == nil {
		t.Fatal("expected error for negative weight")
	}
}

func TestFromCSVValidation(t *testing.T) {
	series := "1,2,3\n" + strings.Repeat("4,5,6\n", 30)
	adj2 := "0,1\n1,0\n"
	if _, err := FromCSV(strings.NewReader(series), strings.NewReader(adj2), CSVSpec{F: 2}); err == nil {
		t.Fatal("expected error: 3 columns not divisible by F=2")
	}
	if _, err := FromCSV(strings.NewReader(series), strings.NewReader(adj2), CSVSpec{}); err == nil {
		t.Fatal("expected error: adjacency 2x2 for 3 nodes")
	}
}

func TestFromCSVNormalizes(t *testing.T) {
	var series strings.Builder
	for i := 0; i < 40; i++ {
		series.WriteString("0,100\n10,200\n")
	}
	adj := "0,1\n1,0\n"
	d, err := FromCSV(strings.NewReader(series.String()), strings.NewReader(adj),
		CSVSpec{History: 4, Horizon: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := d.X[0], d.X[0]
	for _, v := range d.X {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo != -0.8 || hi != 0.8 {
		t.Fatalf("normalization range [%g, %g]", lo, hi)
	}
}

func TestFromCSVTrainableEndToEnd(t *testing.T) {
	// A CSV-ingested dataset must flow through windowing like a generated
	// one.
	orig := Generate("no2", Config{N: 6, T: 120})
	var series, adj bytes.Buffer
	if err := orig.WriteSeriesCSV(&series); err != nil {
		t.Fatal(err)
	}
	if err := orig.WriteAdjacencyCSV(&adj); err != nil {
		t.Fatal(err)
	}
	d, err := FromCSV(&series, &adj, CSVSpec{History: 4, Horizon: 1, Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	trainW, testW := d.Split()
	if len(trainW) == 0 || len(testW) == 0 {
		t.Fatal("split degenerate")
	}
	if len(d.UnknownIndices()) != d.N {
		t.Fatalf("unknowns = %d", len(d.UnknownIndices()))
	}
}
