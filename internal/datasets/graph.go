package datasets

import (
	"math"

	"dsgl/internal/mat"
	"dsgl/internal/rng"
)

// GraphSpec describes a community-structured random geometric graph: nodes
// are scattered around community centers in the unit square and connected
// with distance-decaying weights, densely within communities and sparsely
// between them. Real-world graphs used by the paper (road networks, air
// quality stations, contact networks, stock sectors) share this structure,
// and DS-GL's decomposition algorithm depends on it.
type GraphSpec struct {
	N           int     // number of nodes
	Communities int     // number of communities
	Spread      float64 // node scatter radius around its community center (default 0.08)
	IntraProb   float64 // edge probability within a community (default 0.6)
	InterProb   float64 // edge probability between communities (default 0.02)
	MinWeight   float64 // minimum edge weight (default 0.3)
}

func (s GraphSpec) withDefaults() GraphSpec {
	if s.Spread == 0 {
		s.Spread = 0.08
	}
	if s.IntraProb == 0 {
		s.IntraProb = 0.6
	}
	if s.InterProb == 0 {
		s.InterProb = 0.02
	}
	if s.MinWeight == 0 {
		s.MinWeight = 0.3
	}
	return s
}

// CommunityGraph generates the weighted symmetric adjacency matrix and the
// community label of each node.
func CommunityGraph(spec GraphSpec, r *rng.RNG) (*mat.Dense, []int) {
	spec = spec.withDefaults()
	n, c := spec.N, spec.Communities
	if c < 1 {
		c = 1
	}
	// Community centers on a jittered grid for good separation.
	side := int(math.Ceil(math.Sqrt(float64(c))))
	centers := make([][2]float64, c)
	for i := range centers {
		cx := (float64(i%side) + 0.5) / float64(side)
		cy := (float64(i/side) + 0.5) / float64(side)
		centers[i] = [2]float64{cx + r.Uniform(-0.05, 0.05), cy + r.Uniform(-0.05, 0.05)}
	}
	labels := make([]int, n)
	pos := make([][2]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = i % c // balanced communities
		ctr := centers[labels[i]]
		pos[i] = [2]float64{
			ctr[0] + r.NormScaled(0, spec.Spread),
			ctr[1] + r.NormScaled(0, spec.Spread),
		}
	}
	adj := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := spec.InterProb
			if labels[i] == labels[j] {
				p = spec.IntraProb
			}
			if r.Float64() >= p {
				continue
			}
			dx := pos[i][0] - pos[j][0]
			dy := pos[i][1] - pos[j][1]
			dist := math.Sqrt(dx*dx + dy*dy)
			w := spec.MinWeight + (1-spec.MinWeight)*math.Exp(-dist/0.15)
			adj.Set(i, j, w)
			adj.Set(j, i, w)
		}
	}
	// Guarantee connectivity: link every node to its nearest neighbor.
	for i := 0; i < n; i++ {
		deg := 0.0
		for j := 0; j < n; j++ {
			deg += adj.At(i, j)
		}
		if deg > 0 {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := pos[i][0] - pos[j][0]
			dy := pos[i][1] - pos[j][1]
			if d := dx*dx + dy*dy; d < bestD {
				bestD = d
				best = j
			}
		}
		adj.Set(i, best, spec.MinWeight)
		adj.Set(best, i, spec.MinWeight)
	}
	return adj, labels
}

// HiddenTransfer derives the ground-truth signal-transfer operator from
// the adjacency: each edge's conductance is the adjacency weight scaled by
// a hidden per-edge gain, then row-normalized. Real deployments expose the
// sensor topology (returned as Dataset.Adj, what the GNN baselines consume)
// but not these per-edge transfer coefficients — models that learn per-edge
// couplings from data, as DS-GL does, can recover them.
func HiddenTransfer(adj *mat.Dense, r *rng.RNG) *mat.Dense {
	w := adj.Clone()
	for i := 0; i < w.Rows; i++ {
		for j := 0; j < w.Cols; j++ {
			if w.At(i, j) != 0 {
				w.Set(i, j, w.At(i, j)*r.Uniform(0.05, 2.5))
			}
		}
	}
	return RowNormalized(w)
}

// RowNormalized returns D⁻¹A: each row of the adjacency divided by its
// degree, the diffusion operator used by the signal generators and the GNN
// baselines.
func RowNormalized(adj *mat.Dense) *mat.Dense {
	out := adj.Clone()
	for i := 0; i < adj.Rows; i++ {
		row := out.Row(i)
		var deg float64
		for _, v := range row {
			deg += v
		}
		if deg == 0 {
			continue
		}
		for j := range row {
			row[j] /= deg
		}
	}
	return out
}
