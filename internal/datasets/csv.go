package datasets

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"dsgl/internal/mat"
)

// CSVSpec describes how to interpret externally supplied data, so the
// reproduction can run on real datasets when they are available.
type CSVSpec struct {
	// Name labels the dataset in reports.
	Name string
	// F is the number of features per node (default 1). Series columns
	// must be grouped node-major: n0f0, n0f1, ..., n1f0, ...
	F int
	// History / Horizon define the prediction window (defaults 6 / 2).
	History, Horizon int
	// PredictFeature selects the unknown feature in horizon steps
	// (-1 = all, the default for F == 1; 0 is typical for F > 1).
	PredictFeature int
	// TrainFrac splits windows by time (default 0.7).
	TrainFrac float64
	// Normalize rescales each feature channel into [-0.8, 0.8] (default true
	// via the Raw flag being false). Set Raw when the data is already
	// scaled for the voltage rails.
	Raw bool
}

// ReadSeriesCSV parses a node series: one row per timestep, N*F value
// columns (node-major). The header row is optional; non-numeric first rows
// are skipped as headers.
func ReadSeriesCSV(r io.Reader, spec CSVSpec) ([][]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var rows [][]float64
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datasets: csv line %d: %w", line+1, err)
		}
		line++
		vals := make([]float64, len(rec))
		numeric := true
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				numeric = false
				break
			}
			vals[i] = v
		}
		if !numeric {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("datasets: csv line %d: non-numeric value", line)
		}
		rows = append(rows, vals)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("datasets: csv contains no data rows")
	}
	width := len(rows[0])
	for i, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("datasets: csv row %d has %d columns, want %d", i+1, len(row), width)
		}
	}
	return rows, nil
}

// ReadAdjacencyCSV parses an N x N adjacency matrix (numeric rows only, no
// header).
func ReadAdjacencyCSV(r io.Reader) (*mat.Dense, error) {
	rows, err := ReadSeriesCSV(r, CSVSpec{})
	if err != nil {
		return nil, err
	}
	n := len(rows)
	adj := mat.NewDense(n, n)
	for i, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("datasets: adjacency row %d has %d columns, want %d", i+1, len(row), n)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("datasets: negative adjacency weight at (%d,%d)", i, j)
			}
			adj.Set(i, j, v)
		}
	}
	for i := 0; i < n; i++ {
		adj.Set(i, i, 0)
	}
	adj.Symmetrize()
	return adj, nil
}

// FromCSV assembles a Dataset from a series table and an adjacency matrix.
func FromCSV(series, adjacency io.Reader, spec CSVSpec) (*Dataset, error) {
	if spec.Name == "" {
		spec.Name = "csv"
	}
	if spec.F == 0 {
		spec.F = 1
	}
	if spec.History == 0 {
		spec.History = 6
	}
	if spec.Horizon == 0 {
		spec.Horizon = 2
	}
	if spec.TrainFrac == 0 {
		spec.TrainFrac = 0.7
	}
	if spec.PredictFeature == 0 && spec.F == 1 {
		spec.PredictFeature = -1
	}
	rows, err := ReadSeriesCSV(series, spec)
	if err != nil {
		return nil, err
	}
	adj, err := ReadAdjacencyCSV(adjacency)
	if err != nil {
		return nil, err
	}
	width := len(rows[0])
	if width%spec.F != 0 {
		return nil, fmt.Errorf("datasets: %d series columns not divisible by F=%d", width, spec.F)
	}
	n := width / spec.F
	if adj.Rows != n {
		return nil, fmt.Errorf("datasets: adjacency is %dx%d but series has %d nodes", adj.Rows, adj.Cols, n)
	}
	d := &Dataset{
		Name:           spec.Name,
		N:              n,
		F:              spec.F,
		T:              len(rows),
		Adj:            adj,
		Community:      make([]int, n),
		X:              make([]float64, len(rows)*width),
		History:        spec.History,
		Horizon:        spec.Horizon,
		PredictFeature: spec.PredictFeature,
		TrainFrac:      spec.TrainFrac,
	}
	for t, row := range rows {
		copy(d.X[t*width:(t+1)*width], row)
	}
	if !spec.Raw {
		d.normalize()
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteSeriesCSV emits the dataset's series in the format ReadSeriesCSV
// accepts (with a header row naming each column nK_fK).
func (d *Dataset) WriteSeriesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, d.N*d.F)
	for n := 0; n < d.N; n++ {
		for f := 0; f < d.F; f++ {
			header[n*d.F+f] = fmt.Sprintf("n%d_f%d", n, f)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, d.N*d.F)
	for t := 0; t < d.T; t++ {
		for k := 0; k < d.N*d.F; k++ {
			row[k] = strconv.FormatFloat(d.X[t*d.N*d.F+k], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAdjacencyCSV emits the adjacency matrix in the format
// ReadAdjacencyCSV accepts.
func (d *Dataset) WriteAdjacencyCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	row := make([]string, d.N)
	for i := 0; i < d.N; i++ {
		for j := 0; j < d.N; j++ {
			row[j] = strconv.FormatFloat(d.Adj.At(i, j), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
