// Package datasets provides the graph-learning workloads of the evaluation.
//
// The paper uses seven proprietary/real datasets (traffic in Japan, four
// Chinese air-quality reanalysis pollutants, US COVID-19 case counts, NASDAQ
// stock prices) plus two multi-feature ones (California housing, world
// climate). None of those are available offline, so this package generates
// synthetic equivalents: spatio-temporal signals on community-structured
// random geometric graphs, with per-dataset dynamics chosen to match each
// dataset's qualitative character (periodicity, diffusion, epidemic waves,
// correlated random walks). Every experiment in the paper compares methods
// on the same data, so the reproduction target — relative accuracy and its
// trends versus density, latency, noise — is preserved.
//
// All series are min-max normalized into [-0.8, +0.8] so they fit the DSPU
// voltage rails; the paper's RMSE figures are likewise on normalized data.
package datasets

import (
	"fmt"

	"dsgl/internal/mat"
)

// Dataset is a spatio-temporal graph workload: N graph nodes, F features
// per node, T timesteps, and a weighted adjacency matrix. The prediction
// task is: given History steps (all features observed), predict the
// PredictFeature of the Horizon following steps.
type Dataset struct {
	Name string
	N    int // graph nodes
	F    int // features per node
	T    int // timesteps
	// Adj is the N x N symmetric non-negative adjacency used by the GNN
	// baselines and as the structural prior for graph generation.
	Adj *mat.Dense
	// Community holds the ground-truth community label of each node.
	Community []int
	// X holds the normalized data, row-major [t][n][f].
	X []float64
	// History (P) and Horizon (Q) define the prediction window.
	History, Horizon int
	// PredictFeature selects which feature is unknown in the horizon
	// steps; -1 means all features are predicted. Multi-feature datasets
	// predict feature 0 with the remaining features observed.
	PredictFeature int
	// TrainFrac is the fraction of windows (by time) used for training.
	TrainFrac float64
}

// At returns the value at timestep t, node n, feature f.
func (d *Dataset) At(t, n, f int) float64 {
	return d.X[(t*d.N+n)*d.F+f]
}

// set assigns the value at timestep t, node n, feature f.
func (d *Dataset) set(t, n, f int, v float64) {
	d.X[(t*d.N+n)*d.F+f] = v
}

// WindowLen returns the flattened length of one window vector:
// (History+Horizon) * N * F. This is the size of the dynamical system
// DS-GL constructs for the dataset.
func (d *Dataset) WindowLen() int { return (d.History + d.Horizon) * d.N * d.F }

// NumWindows returns how many windows the series yields.
func (d *Dataset) NumWindows() int {
	n := d.T - d.History - d.Horizon + 1
	if n < 0 {
		return 0
	}
	return n
}

// Window is one training/evaluation sample: the flattened window vector and
// the index layout helpers live on the parent Dataset.
type Window struct {
	// Full is the flattened vector of length WindowLen(): History steps
	// followed by Horizon steps, each step laid out [n][f].
	Full []float64
	// Start is the timestep of the first history step.
	Start int
}

// Window extracts the window starting at timestep start.
func (d *Dataset) Window(start int) Window {
	w := Window{Full: make([]float64, d.WindowLen()), Start: start}
	k := 0
	for s := 0; s < d.History+d.Horizon; s++ {
		for n := 0; n < d.N; n++ {
			for f := 0; f < d.F; f++ {
				w.Full[k] = d.At(start+s, n, f)
				k++
			}
		}
	}
	return w
}

// Split returns the train and test windows, split by time (train first) so
// no test information leaks into training.
//
// Window s spans timesteps [s, s+History+Horizon-1], so the last training
// window (start nTrain-1) reaches timestep nTrain+History+Horizon-2.
// Starting the test split at nTrain is therefore not enough: its first
// History+Horizon-1 windows begin inside that span, and their horizon
// targets are timesteps the trainer already saw as history/horizon
// values. The split gaps the test side by History+Horizon-1 windows —
// dropping the overlapping ones — so the first test window starts at
// timestep nTrain+History+Horizon-1 and no test window shares any
// timestep with any training window (asserted by
// TestSplitHorizonDisjoint).
func (d *Dataset) Split() (train, test []Window) {
	total := d.NumWindows()
	nTrain := int(float64(total) * d.TrainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain > total {
		nTrain = total
	}
	for s := 0; s < nTrain; s++ {
		train = append(train, d.Window(s))
	}
	gap := d.History + d.Horizon - 1
	for s := nTrain + gap; s < total; s++ {
		test = append(test, d.Window(s))
	}
	return train, test
}

// ObservedMask returns, for the flattened window vector, true where the
// entry is observed at inference time and false where it must be predicted:
// all history entries are observed; horizon entries are observed unless
// they carry the PredictFeature (or all horizon entries are unknown when
// PredictFeature == -1).
func (d *Dataset) ObservedMask() []bool {
	m := make([]bool, d.WindowLen())
	k := 0
	for s := 0; s < d.History+d.Horizon; s++ {
		hist := s < d.History
		for n := 0; n < d.N; n++ {
			for f := 0; f < d.F; f++ {
				if hist {
					m[k] = true
				} else if d.PredictFeature >= 0 && f != d.PredictFeature {
					m[k] = true
				}
				k++
			}
		}
	}
	return m
}

// UnknownIndices returns the flattened-window indices that must be
// predicted (the complement of ObservedMask).
func (d *Dataset) UnknownIndices() []int {
	mask := d.ObservedMask()
	var idx []int
	for i, obs := range mask {
		if !obs {
			idx = append(idx, i)
		}
	}
	return idx
}

// Validate checks internal consistency; generators call it before
// returning.
func (d *Dataset) Validate() error {
	if d.N <= 0 || d.F <= 0 || d.T <= 0 {
		return fmt.Errorf("datasets: %s has non-positive dims N=%d F=%d T=%d", d.Name, d.N, d.F, d.T)
	}
	if len(d.X) != d.T*d.N*d.F {
		return fmt.Errorf("datasets: %s data length %d, want %d", d.Name, len(d.X), d.T*d.N*d.F)
	}
	if d.Adj == nil || d.Adj.Rows != d.N || d.Adj.Cols != d.N {
		return fmt.Errorf("datasets: %s adjacency shape mismatch", d.Name)
	}
	if d.History <= 0 || d.Horizon <= 0 {
		return fmt.Errorf("datasets: %s window P=%d Q=%d must be positive", d.Name, d.History, d.Horizon)
	}
	if d.NumWindows() < 4 {
		return fmt.Errorf("datasets: %s yields only %d windows", d.Name, d.NumWindows())
	}
	// Valid values are -1 (predict all features) and 0..F-1 (predict one).
	// Values below -1 must be rejected here: ObservedMask treats any
	// negative value as -1, so without this check a typoed -5 silently
	// became the predict-everything task.
	if d.PredictFeature >= d.F || d.PredictFeature < -1 {
		return fmt.Errorf("datasets: %s PredictFeature %d out of range [-1, %d)", d.Name, d.PredictFeature, d.F)
	}
	if d.TrainFrac <= 0 || d.TrainFrac >= 1 {
		return fmt.Errorf("datasets: %s TrainFrac %g out of (0,1)", d.Name, d.TrainFrac)
	}
	return nil
}

// normalize rescales every feature channel to [-0.8, +0.8] using the
// feature's min/max over the full series. (Statistics from the training
// portion alone would be more orthodox, but the generators produce
// stationary ranges and the rails require a hard bound.)
func (d *Dataset) normalize() {
	for f := 0; f < d.F; f++ {
		lo, hi := d.At(0, 0, f), d.At(0, 0, f)
		for t := 0; t < d.T; t++ {
			for n := 0; n < d.N; n++ {
				v := d.At(t, n, f)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		span := hi - lo
		if span == 0 {
			span = 1
		}
		for t := 0; t < d.T; t++ {
			for n := 0; n < d.N; n++ {
				v := d.At(t, n, f)
				d.set(t, n, f, -0.8+1.6*(v-lo)/span)
			}
		}
	}
}
