package datasets

import (
	"fmt"
	"math"
	"strings"

	"dsgl/internal/rng"
)

// Config controls generator size. Zero values select per-dataset defaults
// sized so the full evaluation pipeline (DS-GL + three GNN baselines) runs
// on a laptop in minutes.
type Config struct {
	N       int    // graph nodes
	T       int    // timesteps
	Seed    uint64 // generator seed
	History int    // window history length P
	Horizon int    // window horizon length Q
}

func (c Config) withDefaults(n, t, p, q int) Config {
	if c.N == 0 {
		c.N = n
	}
	if c.T == 0 {
		c.T = t
	}
	if c.History == 0 {
		c.History = p
	}
	if c.Horizon == 0 {
		c.Horizon = q
	}
	return c
}

// Names lists the seven single-feature datasets of the main evaluation, in
// the paper's table order.
func Names() []string {
	return []string{"no2", "covid", "o3", "traffic", "pm25", "pm10", "stock"}
}

// MultiNames lists the multi-feature datasets: the two Table IV workloads
// plus the synthetic heterogeneous generators (mixed per-class dynamics on
// one graph) that exercise the decomposition pipeline.
func MultiNames() []string {
	return []string{"housing", "climate", "heteromix", "heterokinetics", "heteroflow"}
}

// New builds the named dataset, returning an error for an unknown name —
// the entry point for callers fed by external input (CLI arguments, serve
// boot specs), where a typo must surface as an error rather than a panic.
// Use Names() / MultiNames() for the valid set.
func New(name string, cfg Config) (*Dataset, error) {
	switch name {
	case "traffic":
		return GenTraffic(cfg), nil
	case "pm25", "pm10", "no2", "o3":
		return NewAir(name, cfg)
	case "covid":
		return GenCovid(cfg), nil
	case "stock":
		return GenStock(cfg), nil
	case "housing":
		return GenHousing(cfg), nil
	case "climate":
		return GenClimate(cfg), nil
	case "heteromix":
		return GenHeteroMix(cfg), nil
	case "heterokinetics":
		return GenHeteroKinetics(cfg), nil
	case "heteroflow":
		return GenHeteroFlow(cfg), nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q (valid: %s)",
			name, strings.Join(append(Names(), MultiNames()...), " "))
	}
}

// Generate builds the named dataset. It panics on an unknown name; callers
// holding externally supplied names should use New instead.
func Generate(name string, cfg Config) *Dataset {
	d, err := New(name, cfg)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// newBase allocates the Dataset shell shared by all generators.
func newBase(name string, cfg Config, f, predictFeature int, spec GraphSpec, r *rng.RNG) *Dataset {
	adj, labels := CommunityGraph(spec, r)
	return &Dataset{
		Name:           name,
		N:              cfg.N,
		F:              f,
		T:              cfg.T,
		Adj:            adj,
		Community:      labels,
		X:              make([]float64, cfg.T*cfg.N*f),
		History:        cfg.History,
		Horizon:        cfg.Horizon,
		PredictFeature: predictFeature,
		TrainFrac:      0.7,
	}
}

// GenTraffic models the Japanese road-traffic dataset: per-sensor flow with
// a strong daily cycle (period 24 steps), spatial diffusion along the road
// graph, rush-hour asymmetry, and occasional congestion shocks that
// propagate to neighbors.
func GenTraffic(cfg Config) *Dataset {
	cfg = cfg.withDefaults(48, 1920, 6, 2)
	cfg.Seed ^= 0x7a11
	r := rng.New(cfg.Seed)
	d := newBase("traffic", cfg, 1, -1, GraphSpec{N: cfg.N, Communities: 6}, r)
	diff := HiddenTransfer(d.Adj, r)

	base := make([]float64, d.N)  // per-sensor capacity
	amp := make([]float64, d.N)   // daily-cycle amplitude per sensor
	phase := make([]float64, d.N) // rush-hour offset per community
	x := make([]float64, d.N)     // current flow
	shock := make([]float64, d.N) // active congestion shocks
	for i := 0; i < d.N; i++ {
		base[i] = r.Uniform(0.5, 1.5)
		amp[i] = r.Uniform(0.3, 0.8)
		phase[i] = float64(d.Community[i])*0.4 + r.Uniform(-0.1, 0.1)
		x[i] = base[i]
	}
	nbr := make([]float64, d.N)
	for t := 0; t < d.T; t++ {
		diff.MulVec(x, nbr)
		hour := float64(t % 24)
		for i := 0; i < d.N; i++ {
			cyc := amp[i] * math.Sin((hour/24)*2*math.Pi+phase[i])
			shock[i] *= 0.85
			if r.Float64() < 0.008 {
				shock[i] += r.Uniform(0.4, 1.0)
			}
			x[i] = 0.45*x[i] + 0.35*nbr[i] + 0.2*(base[i]+cyc) +
				shock[i]*0.3 + r.NormScaled(0, 0.02)
			d.set(t, i, 0, x[i])
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

// airParams tunes the advection-diffusion generator per pollutant: PM is
// persistent and diffusive, NO2 tracks traffic with a daily cycle, O3 is
// photochemical (driven by the daily cycle, anti-correlated with NO2).
type airParams struct {
	persist, diffuse, seasonAmp, dailyAmp, noise float64
}

var airKinds = map[string]airParams{
	"pm25": {persist: 0.70, diffuse: 0.25, seasonAmp: 0.5, dailyAmp: 0.1, noise: 0.04},
	"pm10": {persist: 0.65, diffuse: 0.28, seasonAmp: 0.45, dailyAmp: 0.15, noise: 0.05},
	"no2":  {persist: 0.55, diffuse: 0.15, seasonAmp: 0.3, dailyAmp: 0.5, noise: 0.06},
	"o3":   {persist: 0.60, diffuse: 0.10, seasonAmp: 0.4, dailyAmp: 0.6, noise: 0.04},
}

// kindSeed hashes a dataset-kind string to a seed mix with FNV-1a, so
// every kind gets a distinct RNG stream. The previous mix —
// len(kind)*0x9e37 + kind[0] — collided for "pm25" and "pm10" (same
// length, same first byte), silently generating the two datasets from the
// identical stream: same graph, same communities, same emission field,
// same noise draws.
func kindSeed(kind string) uint64 {
	h := uint64(0xcbf29ce484222325) // FNV-1a 64-bit offset basis
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= 0x100000001b3 // FNV-1a 64-bit prime
	}
	return h
}

// NewAir builds one pollutant dataset, returning an error for an unknown
// kind (valid: pm25, pm10, no2, o3).
func NewAir(kind string, cfg Config) (*Dataset, error) {
	if _, ok := airKinds[kind]; !ok {
		return nil, fmt.Errorf("datasets: unknown air-quality kind %q", kind)
	}
	return GenAir(kind, cfg), nil
}

// GenAir models one pollutant from the Chinese air-quality reanalysis:
// station readings following an AR(1) field with graph diffusion, seasonal
// and daily forcing, and emission hot-spots per community. It panics on an
// unknown kind; callers holding externally supplied names should use
// NewAir.
func GenAir(kind string, cfg Config) *Dataset {
	p, ok := airKinds[kind]
	if !ok {
		panic(fmt.Sprintf("datasets: unknown air-quality kind %q", kind))
	}
	cfg = cfg.withDefaults(48, 1920, 6, 2)
	cfg.Seed ^= kindSeed(kind)
	r := rng.New(cfg.Seed)
	d := newBase(kind, cfg, 1, -1, GraphSpec{N: cfg.N, Communities: 5}, r)
	diff := HiddenTransfer(d.Adj, r)

	emit := make([]float64, d.N)
	x := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		// Baseline emissions keep concentrations well above zero, so the
		// physical non-negativity clamp below fires only on rare extremes.
		emit[i] = r.Uniform(0.8, 1.5)
		if r.Float64() < 0.2 { // hot-spot stations
			emit[i] += r.Uniform(0.5, 1.0)
		}
		x[i] = emit[i]
	}
	nbr := make([]float64, d.N)
	sign := 1.0
	if kind == "o3" {
		sign = -1.0 // ozone is depressed where NO2-style daily forcing peaks
	}
	for t := 0; t < d.T; t++ {
		diff.MulVec(x, nbr)
		season := math.Sin(2 * math.Pi * float64(t) / 240)
		daily := math.Sin(2 * math.Pi * float64(t%24) / 24)
		for i := 0; i < d.N; i++ {
			drive := emit[i] * (1 + p.seasonAmp*season + sign*p.dailyAmp*daily)
			x[i] = p.persist*x[i] + p.diffuse*nbr[i] +
				(1-p.persist-p.diffuse)*drive + r.NormScaled(0, p.noise)
			if x[i] < 0 {
				x[i] = 0
			}
			d.set(t, i, 0, x[i])
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

// GenCovid models the CDC covid tracker: daily case increments following
// SIR-like epidemic waves on a contact graph, with staggered outbreaks
// seeded in different communities and waning immunity producing multiple
// waves.
func GenCovid(cfg Config) *Dataset {
	cfg = cfg.withDefaults(48, 1920, 6, 2)
	r := rng.New(cfg.Seed ^ 0xc01d)
	d := newBase("covid", cfg, 1, -1, GraphSpec{N: cfg.N, Communities: 5}, r)
	diff := HiddenTransfer(d.Adj, r)

	s := make([]float64, d.N) // susceptible fraction
	inf := make([]float64, d.N)
	nbr := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		s[i] = 1
		inf[i] = 0
	}
	// Seed an outbreak in community 0.
	for i := 0; i < d.N; i++ {
		if d.Community[i] == 0 {
			inf[i] = 0.002
			break
		}
	}
	beta0, gamma, wane := 0.22, 0.12, 0.01
	for t := 0; t < d.T; t++ {
		diff.MulVec(inf, nbr)
		beta := beta0 * (1 + 0.25*math.Sin(2*math.Pi*float64(t)/160))
		for i := 0; i < d.N; i++ {
			exposure := 0.6*inf[i] + 0.4*nbr[i]
			newCases := beta * s[i] * exposure
			// Occasional imported seeding keeps later waves going.
			if r.Float64() < 0.002 {
				newCases += 0.001
			}
			inf[i] += newCases - gamma*inf[i]
			s[i] += wane*(1-s[i]) - newCases
			if s[i] < 0 {
				s[i] = 0
			}
			if inf[i] < 0 {
				inf[i] = 0
			}
			d.set(t, i, 0, newCases+r.NormScaled(0, 0.0004))
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

// GenStock models NASDAQ daily prices: log-prices driven by a market
// factor, per-community (sector) factors, and idiosyncratic noise, with
// time-varying volatility.
func GenStock(cfg Config) *Dataset {
	cfg = cfg.withDefaults(48, 1920, 6, 2)
	r := rng.New(cfg.Seed ^ 0x570c)
	d := newBase("stock", cfg, 1, -1,
		GraphSpec{N: cfg.N, Communities: 6, IntraProb: 0.8, InterProb: 0.05}, r)

	nSect := 6
	beta := make([]float64, d.N)     // market beta
	sectBeta := make([]float64, d.N) // sector loading
	logp := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		beta[i] = r.Uniform(0.5, 1.5)
		sectBeta[i] = r.Uniform(0.5, 1.2)
		// Prices start at their factor-implied fair value (zero), avoiding
		// a decaying transient that would distort normalization.
	}
	// Market and sector levels follow slow AR(1) processes; individual
	// prices mean-revert toward their factor-implied fair value — the
	// classic statistical-arbitrage structure that makes related tickers
	// mutually informative.
	market := 0.0
	sector := make([]float64, nSect)
	vol := 0.01
	for t := 0; t < d.T; t++ {
		shock := r.NormScaled(0, vol)
		market = 0.98*market + shock
		for sct := range sector {
			sector[sct] = 0.97*sector[sct] + r.NormScaled(0, vol*0.8)
		}
		// GARCH-ish volatility clustering (contractive: 0.9 + 0.1*0.5*E|shock|/vol < 1).
		vol = 0.9*vol + 0.1*(0.01+0.5*math.Abs(shock))
		for i := 0; i < d.N; i++ {
			fair := beta[i]*market + sectBeta[i]*sector[d.Community[i]%nSect]
			logp[i] = 0.9*logp[i] + 0.1*fair + r.NormScaled(0, 0.004)
			d.set(t, i, 0, logp[i])
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

// GenHousing models the California housing dataset as a graph problem:
// districts on a geographic graph, each with F=6 features (median income,
// rooms, age, population density, coast proximity, school quality) whose
// slow drift produces a time series of market snapshots; the target price
// (feature 0) is a smooth nonlinear function of the features plus spatial
// spillover from neighboring districts.
func GenHousing(cfg Config) *Dataset {
	cfg = cfg.withDefaults(32, 960, 2, 1)
	r := rng.New(cfg.Seed ^ 0x40e5)
	const f = 6
	d := newBase("housing", cfg, f, 0, GraphSpec{N: cfg.N, Communities: 4}, r)
	diff := RowNormalized(d.Adj)

	// Static per-district character plus slow AR drift per feature.
	base := make([][]float64, d.N)
	cur := make([][]float64, d.N)
	for i := 0; i < d.N; i++ {
		base[i] = make([]float64, f)
		cur[i] = make([]float64, f)
		for k := 1; k < f; k++ {
			base[i][k] = r.Uniform(0.2, 1.0)
			cur[i][k] = base[i][k]
		}
	}
	price := make([]float64, d.N)
	nbr := make([]float64, d.N)
	for t := 0; t < d.T; t++ {
		cycle := 0.1 * math.Sin(2*math.Pi*float64(t)/80) // market cycle
		for i := 0; i < d.N; i++ {
			for k := 1; k < f; k++ {
				cur[i][k] = 0.97*cur[i][k] + 0.03*base[i][k] + r.NormScaled(0, 0.01)
			}
		}
		diff.MulVec(price, nbr)
		for i := 0; i < d.N; i++ {
			c := cur[i]
			// Hedonic pricing: a per-district linear blend of the
			// features plus the market cycle and spatial spillover.
			raw := 1.2*c[1] + 0.5*c[2] - 0.3*c[3] + 0.45*c[4] + 0.3*c[5] + cycle
			price[i] = 0.7*raw + 0.25*nbr[i] + r.NormScaled(0, 0.02)
			d.set(t, i, 0, price[i])
			for k := 1; k < f; k++ {
				d.set(t, i, k, c[k])
			}
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

// GenClimate models the world-weather dataset: stations with F=6 coupled
// features (temperature — the target — humidity, wind speed, pressure,
// cloud cover, precipitation) driven by seasonal cycles, latitude bands
// (communities), and cross-feature physics (fronts move pressure, pressure
// moves wind, clouds damp temperature swing).
func GenClimate(cfg Config) *Dataset {
	cfg = cfg.withDefaults(32, 1440, 4, 1)
	r := rng.New(cfg.Seed ^ 0xc11a)
	const f = 6
	d := newBase("climate", cfg, f, 0, GraphSpec{N: cfg.N, Communities: 4}, r)
	diff := RowNormalized(d.Adj)

	lat := make([]float64, d.N) // latitude band per community
	for i := 0; i < d.N; i++ {
		lat[i] = float64(d.Community[i]) / 4
	}
	temp := make([]float64, d.N)
	press := make([]float64, d.N)
	hum := make([]float64, d.N)
	wind := make([]float64, d.N)
	cloud := make([]float64, d.N)
	nbrT := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		temp[i] = 0.5 - 0.4*lat[i]
		press[i] = r.Uniform(-0.1, 0.1)
		hum[i] = r.Uniform(0.3, 0.7)
	}
	for t := 0; t < d.T; t++ {
		season := math.Sin(2 * math.Pi * float64(t) / 360)
		diff.MulVec(temp, nbrT)
		for i := 0; i < d.N; i++ {
			press[i] = 0.9*press[i] + r.NormScaled(0, 0.05)
			wind[i] = 0.7*wind[i] + 0.5*math.Abs(press[i]) + r.NormScaled(0, 0.03)
			cloud[i] = 0.8*cloud[i] + 0.3*hum[i]*math.Abs(press[i]) + r.NormScaled(0, 0.04)
			forcing := (0.6-0.5*lat[i])*(1+0.5*season) - 0.35*cloud[i]
			temp[i] = 0.75*temp[i] + 0.15*nbrT[i] + 0.1*forcing + r.NormScaled(0, 0.02)
			hum[i] = 0.85*hum[i] + 0.1*cloud[i] + 0.05*math.Max(0, -press[i]) + r.NormScaled(0, 0.02)
			precip := math.Max(0, cloud[i]*hum[i]-0.2) + r.NormScaled(0, 0.01)

			d.set(t, i, 0, temp[i])
			d.set(t, i, 1, hum[i])
			d.set(t, i, 2, wind[i])
			d.set(t, i, 3, press[i])
			d.set(t, i, 4, cloud[i])
			d.set(t, i, 5, precip)
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

// The heterogeneous generators below put MIXED dynamics on one graph:
// every node carries one of three interaction types (tied to its
// community, so types align with graph structure), and each type follows
// its own law. They exist to exercise the decomposition pipeline
// (internal/hetero + per-class ridge blocks), whose class assignment must
// recover the planted types from per-node feature statistics alone.

// heteroType derives the planted interaction type of a node from its
// community label. Communities are type-pure, so the class-refined
// partition the decomposition builds aligns with the graph's natural
// community structure.
func heteroType(community int) int { return community % 3 }

// GenHeteroMix mixes three canonical dynamical families on one graph
// (after the graph-dynamical-systems exemplars): oscillator nodes (damped
// driven second-order dynamics with per-node frequency), diffusive nodes
// (relaxation toward the neighbor field), and mean-reverting nodes
// (Ornstein-Uhlenbeck pull toward a per-node baseline). F=3 features per
// node: the state (the prediction target), the lagged neighbor field
// (diffusion of the previous step's states — spatial context, never the
// node's own next value), and the exogenous per-node drive. The per-type
// state statistics (oscillation, smoothness, noise level) are what the
// class-assignment clustering must recover.
func GenHeteroMix(cfg Config) *Dataset {
	cfg = cfg.withDefaults(36, 960, 3, 1)
	r := rng.New(cfg.Seed ^ kindSeed("heteromix"))
	d := newBase("heteromix", cfg, 3, 0, GraphSpec{N: cfg.N, Communities: 6}, r)
	diff := RowNormalized(d.Adj)

	x := make([]float64, d.N)    // state
	v := make([]float64, d.N)    // oscillator velocity
	base := make([]float64, d.N) // per-node baseline / rest level
	freq := make([]float64, d.N) // oscillator angular frequency
	nbr := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		base[i] = r.Uniform(-0.4, 0.4)
		freq[i] = r.Uniform(0.35, 0.7)
		x[i] = base[i] + r.Uniform(-0.2, 0.2)
	}
	const dt = 1.0
	for t := 0; t < d.T; t++ {
		// nbr is the diffusion of the PREVIOUS step's states; recording it
		// as a feature is spatial context, not a leak of the target.
		diff.MulVec(x, nbr)
		season := 0.15 * math.Sin(2*math.Pi*float64(t)/120)
		for i := 0; i < d.N; i++ {
			drive := base[i] + season
			switch heteroType(d.Community[i]) {
			case 0: // oscillator: damped, neighbor-driven
				a := -freq[i]*freq[i]*(x[i]-base[i]) - 0.08*v[i] + 0.12*(nbr[i]-x[i])
				v[i] += dt * a
				x[i] += dt*v[i] + r.NormScaled(0, 0.01)
			case 1: // diffusive: relax toward the neighbor field
				x[i] = 0.55*x[i] + 0.35*nbr[i] + 0.1*drive + r.NormScaled(0, 0.015)
			default: // mean-reverting: OU pull with heavier noise
				x[i] += 0.25*(drive-x[i]) + 0.06*(nbr[i]-x[i]) + r.NormScaled(0, 0.05)
			}
			d.set(t, i, 0, x[i])
			d.set(t, i, 1, nbr[i])
			d.set(t, i, 2, drive)
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

// GenHeteroKinetics models a reaction network with three chemical roles:
// activator nodes (logistic self-amplification fed by neighboring
// substrate), inhibitor nodes (tracking neighboring activator activity),
// and substrate nodes (replenishing, consumed by neighboring activators).
// F=3 features: concentration (the target), the node's exogenous forcing
// (rate-scaled seasonal drive), and the incoming neighbor field computed
// from the previous step's concentrations — neither horizon feature
// determines the node's own next concentration.
func GenHeteroKinetics(cfg Config) *Dataset {
	cfg = cfg.withDefaults(36, 960, 3, 1)
	r := rng.New(cfg.Seed ^ kindSeed("heterokinetics"))
	d := newBase("heterokinetics", cfg, 3, 0, GraphSpec{N: cfg.N, Communities: 6}, r)
	diff := RowNormalized(d.Adj)

	c := make([]float64, d.N)    // concentration
	rate := make([]float64, d.N) // growth/decay parameter per node
	nbr := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		c[i] = r.Uniform(0.2, 0.8)
		rate[i] = r.Uniform(0.8, 1.2)
	}
	for t := 0; t < d.T; t++ {
		diff.MulVec(c, nbr)
		drive := 0.1 * (1 + math.Sin(2*math.Pi*float64(t)/180))
		for i := 0; i < d.N; i++ {
			var dc float64
			switch heteroType(d.Community[i]) {
			case 0: // activator: logistic growth fed by the neighbor field
				dc = 0.22*rate[i]*c[i]*(1-c[i]) + 0.12*nbr[i] - 0.14*c[i]
			case 1: // inhibitor: tracks neighboring activity, decays
				dc = 0.3*nbr[i] - 0.2*rate[i]*c[i]
			default: // substrate: replenished, consumed by neighbors
				dc = 0.18*rate[i]*(1-c[i]) - 0.25*nbr[i]*c[i] + drive
			}
			c[i] += dc + r.NormScaled(0, 0.02)
			if c[i] < 0 {
				c[i] = 0
			}
			if c[i] > 2 {
				c[i] = 2
			}
			d.set(t, i, 0, c[i])
			d.set(t, i, 1, rate[i]*drive)
			d.set(t, i, 2, nbr[i])
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

// GenHeteroFlow models a transport network with three node roles: source
// nodes injecting periodically forced flow, relay nodes passing their
// level downstream with moderate leakage, and sink nodes draining it.
// F=3 features: level (the target), inflow, and outflow.
func GenHeteroFlow(cfg Config) *Dataset {
	cfg = cfg.withDefaults(36, 960, 3, 1)
	r := rng.New(cfg.Seed ^ kindSeed("heteroflow"))
	d := newBase("heteroflow", cfg, 3, 0, GraphSpec{N: cfg.N, Communities: 6}, r)
	diff := RowNormalized(d.Adj)

	level := make([]float64, d.N)
	outRate := make([]float64, d.N) // fraction of the level shipped per step
	phase := make([]float64, d.N)
	out := make([]float64, d.N)
	in := make([]float64, d.N)
	for i := 0; i < d.N; i++ {
		level[i] = r.Uniform(0.3, 0.7)
		phase[i] = r.Uniform(0, 2*math.Pi)
		switch heteroType(d.Community[i]) {
		case 0: // source: slow shipper, fed externally below
			outRate[i] = r.Uniform(0.15, 0.25)
		case 1: // relay: pass-through
			outRate[i] = r.Uniform(0.35, 0.5)
		default: // sink: drains out of the system
			outRate[i] = r.Uniform(0.55, 0.75)
		}
	}
	for t := 0; t < d.T; t++ {
		for i := 0; i < d.N; i++ {
			out[i] = outRate[i] * level[i]
		}
		// Inflow is the neighbor-weighted share of what neighbors ship.
		diff.MulVec(out, in)
		for i := 0; i < d.N; i++ {
			inject := 0.0
			if heteroType(d.Community[i]) == 0 {
				inject = 0.12 * (1 + math.Sin(2*math.Pi*float64(t)/96+phase[i]))
			}
			keep := 1.0 // relays and sources keep what they receive
			if heteroType(d.Community[i]) == 2 {
				keep = 0.5 // sinks absorb half of their outflow out of the system
			}
			level[i] += in[i] + inject - keep*out[i] + r.NormScaled(0, 0.015)
			if level[i] < 0 {
				level[i] = 0
			}
			d.set(t, i, 0, level[i])
			d.set(t, i, 1, in[i]+inject)
			d.set(t, i, 2, out[i])
		}
	}
	d.normalize()
	mustValidate(d)
	return d
}

func mustValidate(d *Dataset) {
	if err := d.Validate(); err != nil {
		panic(err)
	}
}
