package tensor

import (
	"math"
	"testing"

	"dsgl/internal/rng"
)

// numGrad computes the numeric gradient of loss() w.r.t. p.Data[idx].
func numGrad(p *Tensor, idx int, loss func() *Tensor) float64 {
	const eps = 1e-6
	orig := p.Data[idx]
	p.Data[idx] = orig + eps
	up := loss().Data[0]
	p.Data[idx] = orig - eps
	down := loss().Data[0]
	p.Data[idx] = orig
	return (up - down) / (2 * eps)
}

// checkGrads verifies analytic vs numeric gradients of loss() for every
// element of every param.
func checkGrads(t *testing.T, params []*Tensor, loss func() *Tensor) {
	t.Helper()
	l := loss()
	for _, p := range params {
		p.ZeroGrad()
	}
	l.Backward()
	for pi, p := range params {
		for i := range p.Data {
			want := numGrad(p, i, loss)
			got := p.Grad[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %d elem %d: grad %g, numeric %g", pi, i, got, want)
			}
		}
	}
}

func TestMatMulForward(t *testing.T) {
	a := FromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data[i], v)
		}
	}
}

func TestMatMulGrad(t *testing.T) {
	r := rng.New(1)
	a := Param(3, 4, r)
	b := Param(4, 2, r)
	target := New(3, 2)
	r.FillUniform(target.Data, -1, 1)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		return MSE(MatMul(a, b), target)
	})
}

func TestAddBroadcastGrad(t *testing.T) {
	r := rng.New(2)
	a := Param(3, 4, r)
	bias := Param(1, 4, r)
	target := New(3, 4)
	checkGrads(t, []*Tensor{a, bias}, func() *Tensor {
		return MSE(Add(a, bias), target)
	})
}

func TestSubMulGrad(t *testing.T) {
	r := rng.New(3)
	a := Param(2, 3, r)
	b := Param(2, 3, r)
	target := New(2, 3)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		return MSE(Mul(Sub(a, b), a), target)
	})
}

func TestActivationsGrad(t *testing.T) {
	r := rng.New(4)
	for name, act := range map[string]func(*Tensor) *Tensor{
		"tanh":    Tanh,
		"sigmoid": Sigmoid,
		"relu":    ReLU,
	} {
		a := Param(2, 3, r)
		// Keep ReLU inputs away from the kink.
		for i := range a.Data {
			if math.Abs(a.Data[i]) < 0.05 {
				a.Data[i] = 0.1
			}
		}
		target := New(2, 3)
		t.Run(name, func(t *testing.T) {
			checkGrads(t, []*Tensor{a}, func() *Tensor {
				return MSE(act(a), target)
			})
		})
	}
}

func TestConcatSliceGrad(t *testing.T) {
	r := rng.New(5)
	a := Param(2, 2, r)
	b := Param(2, 3, r)
	target := New(2, 2)
	checkGrads(t, []*Tensor{a, b}, func() *Tensor {
		cat := ConcatCols(a, b)
		return MSE(SliceCols(cat, 1, 3), target)
	})
}

func TestSoftmaxRowsGrad(t *testing.T) {
	r := rng.New(6)
	a := Param(3, 4, r)
	target := New(3, 4)
	r.FillUniform(target.Data, 0, 1)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return MSE(SoftmaxRows(a), target)
	})
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rng.New(7)
	a := New(3, 5)
	r.FillUniform(a.Data, -3, 3)
	s := SoftmaxRows(a)
	for i := 0; i < 3; i++ {
		var sum float64
		for j := 0; j < 5; j++ {
			sum += s.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestTransposeGrad(t *testing.T) {
	r := rng.New(8)
	a := Param(2, 3, r)
	target := New(3, 2)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return MSE(Transpose(a), target)
	})
}

func TestScaleSumGrad(t *testing.T) {
	r := rng.New(9)
	a := Param(2, 2, r)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return SumScalar(Scale(Mul(a, a), 0.5))
	})
}

func TestChainedGraphGrad(t *testing.T) {
	// A small MLP: y = W2 tanh(W1 x + b1) — the composite case the GNNs
	// rely on.
	r := rng.New(10)
	x := New(4, 3)
	r.FillUniform(x.Data, -1, 1)
	w1 := Param(3, 5, r)
	b1 := ZeroParam(1, 5)
	w2 := Param(5, 2, r)
	target := New(4, 2)
	r.FillUniform(target.Data, -1, 1)
	checkGrads(t, []*Tensor{w1, b1, w2}, func() *Tensor {
		h := Tanh(Add(MatMul(x, w1), b1))
		return MSE(MatMul(h, w2), target)
	})
}

func TestReusedTensorAccumulatesGrad(t *testing.T) {
	// A tensor used twice must receive the sum of both paths' gradients.
	r := rng.New(11)
	a := Param(2, 2, r)
	checkGrads(t, []*Tensor{a}, func() *Tensor {
		return SumScalar(Add(Mul(a, a), a))
	})
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Backward()
}

func TestNoTapeForConstants(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	c := MatMul(a, b)
	if c.backward != nil {
		t.Fatal("constant-only op should not record a tape")
	}
}

func TestAdamReducesLoss(t *testing.T) {
	r := rng.New(12)
	// Fit y = x W_true with a linear model.
	wTrue := New(3, 2)
	r.FillUniform(wTrue.Data, -1, 1)
	x := New(16, 3)
	r.FillUniform(x.Data, -1, 1)
	y := MatMul(x, wTrue)

	w := Param(3, 2, r)
	opt := NewAdam([]*Tensor{w}, 0.05)
	var first, last float64
	for epoch := 0; epoch < 200; epoch++ {
		loss := MSE(MatMul(x, w), y)
		if epoch == 0 {
			first = loss.Data[0]
		}
		last = loss.Data[0]
		loss.Backward()
		opt.Step()
	}
	if last > first*0.01 {
		t.Fatalf("Adam barely converged: %g -> %g", first, last)
	}
}

func TestAdamClipStabilizes(t *testing.T) {
	r := rng.New(13)
	w := Param(1, 1, r)
	w.Data[0] = 0
	opt := NewAdam([]*Tensor{w}, 0.1)
	// Huge gradient must be clipped to Clip before the update.
	w.ensureGrad()
	w.Grad[0] = 1e9
	opt.Step()
	if math.IsNaN(w.Data[0]) || math.Abs(w.Data[0]) > 1 {
		t.Fatalf("clipped update moved param to %g", w.Data[0])
	}
}

func TestFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromData(2, 2, []float64{1})
}

func TestParamInitBounded(t *testing.T) {
	r := rng.New(14)
	p := Param(10, 10, r)
	limit := math.Sqrt(6.0 / 20)
	for _, v := range p.Data {
		if math.Abs(v) > limit {
			t.Fatalf("param init %g exceeds Glorot limit %g", v, limit)
		}
	}
	if !p.RequiresGrad() {
		t.Fatal("Param must require grad")
	}
}
