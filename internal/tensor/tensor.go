// Package tensor is a compact reverse-mode automatic-differentiation engine
// over 2-D float64 matrices. It exists to train the GNN baselines (GWN,
// MTGNN, DDGCRN) that DS-GL is compared against; the engine supports the
// operations those models need — matmul, broadcast add, element-wise
// arithmetic and activations, column concat/slice — with gradients, plus an
// Adam optimizer.
//
// Computation builds an implicit tape: each Tensor records its parents and
// a backward closure. Backward() topologically sorts the tape and
// accumulates gradients into every tensor with RequiresGrad set.
package tensor

import (
	"fmt"
	"math"

	"dsgl/internal/rng"
)

// Tensor is a node in the autodiff graph holding a Rows x Cols matrix.
type Tensor struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64 // allocated lazily when gradients flow
	requires   bool
	parents    []*Tensor
	backward   func()
}

// New returns a zero tensor of the given shape that does not require
// gradients.
func New(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromData wraps data (used directly, not copied) as a tensor.
func FromData(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Param returns a gradient-tracked tensor initialized with Glorot-uniform
// values, for use as a trainable parameter.
func Param(rows, cols int, r *rng.RNG) *Tensor {
	t := New(rows, cols)
	limit := math.Sqrt(6.0 / float64(rows+cols))
	r.FillUniform(t.Data, -limit, limit)
	t.requires = true
	return t
}

// ZeroParam returns a gradient-tracked zero tensor (for biases).
func ZeroParam(rows, cols int) *Tensor {
	t := New(rows, cols)
	t.requires = true
	return t
}

// RequiresGrad reports whether gradients accumulate into t.
func (t *Tensor) RequiresGrad() bool { return t.requires }

// SetRequiresGrad marks t as a trainable leaf.
func (t *Tensor) SetRequiresGrad(v bool) { t.requires = v }

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// ensureGrad allocates the gradient buffer.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// ZeroGrad clears the gradient buffer (if any).
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// needsTape reports whether an op over the given inputs must record
// backward information.
func needsTape(ins ...*Tensor) bool {
	for _, in := range ins {
		if in.requires || in.backward != nil || len(in.parents) > 0 {
			return true
		}
	}
	return false
}

// result builds an op output tensor wired to its parents.
func result(rows, cols int, parents []*Tensor, bw func()) *Tensor {
	t := New(rows, cols)
	if bw != nil {
		t.parents = parents
		t.backward = bw
	}
	return t
}

// Backward runs reverse-mode differentiation from t, which must be a
// scalar (1x1). Gradients accumulate into every reachable tensor.
func (t *Tensor) Backward() {
	if t.Rows != 1 || t.Cols != 1 {
		panic("tensor: Backward requires a scalar loss")
	}
	order := topoSort(t)
	for _, n := range order {
		n.ensureGrad()
	}
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].backward != nil {
			order[i].backward()
		}
	}
}

// topoSort returns the tape in topological order (parents before children).
func topoSort(root *Tensor) []*Tensor {
	var order []*Tensor
	seen := make(map[*Tensor]bool)
	var visit func(*Tensor)
	visit = func(n *Tensor) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

// MatMul returns a @ b.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var out *Tensor
	bw := func() {
		// dA += dOut @ Bᵀ ; dB += Aᵀ @ dOut
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for k := 0; k < a.Cols; k++ {
					var s float64
					for j := 0; j < b.Cols; j++ {
						s += out.Grad[i*out.Cols+j] * b.Data[k*b.Cols+j]
					}
					a.Grad[i*a.Cols+k] += s
				}
			}
		}
		if b.requires || b.backward != nil || b.parents != nil {
			b.ensureGrad()
			for k := 0; k < b.Rows; k++ {
				for j := 0; j < b.Cols; j++ {
					var s float64
					for i := 0; i < a.Rows; i++ {
						s += a.Data[i*a.Cols+k] * out.Grad[i*out.Cols+j]
					}
					b.Grad[k*b.Cols+j] += s
				}
			}
		}
	}
	if !needsTape(a, b) {
		bw = nil
	}
	out = result(a.Rows, b.Cols, []*Tensor{a, b}, bw)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Add returns a + b element-wise. b may also be 1 x a.Cols (a row vector
// broadcast over rows, the bias case).
func Add(a, b *Tensor) *Tensor {
	broadcast := b.Rows == 1 && a.Rows != 1 && b.Cols == a.Cols
	if !broadcast && (a.Rows != b.Rows || a.Cols != b.Cols) {
		panic(fmt.Sprintf("tensor: Add %dx%d + %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i]
			}
		}
		if b.requires || b.backward != nil || b.parents != nil {
			b.ensureGrad()
			if broadcast {
				for i := 0; i < a.Rows; i++ {
					for j := 0; j < a.Cols; j++ {
						b.Grad[j] += out.Grad[i*a.Cols+j]
					}
				}
			} else {
				for i := range b.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	if !needsTape(a, b) {
		bw = nil
	}
	out = result(a.Rows, a.Cols, []*Tensor{a, b}, bw)
	if broadcast {
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < a.Cols; j++ {
				out.Data[i*a.Cols+j] = a.Data[i*a.Cols+j] + b.Data[j]
			}
		}
	} else {
		for i := range out.Data {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	}
	return out
}

// Sub returns a - b (same shapes only).
func Sub(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: Sub shape mismatch")
	}
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i]
			}
		}
		if b.requires || b.backward != nil || b.parents != nil {
			b.ensureGrad()
			for i := range b.Grad {
				b.Grad[i] -= out.Grad[i]
			}
		}
	}
	if !needsTape(a, b) {
		bw = nil
	}
	out = result(a.Rows, a.Cols, []*Tensor{a, b}, bw)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the element-wise (Hadamard) product.
func Mul(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: Mul shape mismatch")
	}
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i] * b.Data[i]
			}
		}
		if b.requires || b.backward != nil || b.parents != nil {
			b.ensureGrad()
			for i := range b.Grad {
				b.Grad[i] += out.Grad[i] * a.Data[i]
			}
		}
	}
	if !needsTape(a, b) {
		bw = nil
	}
	out = result(a.Rows, a.Cols, []*Tensor{a, b}, bw)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(a *Tensor, s float64) *Tensor {
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += s * out.Grad[i]
			}
		}
	}
	if !needsTape(a) {
		bw = nil
	}
	out = result(a.Rows, a.Cols, []*Tensor{a}, bw)
	for i := range out.Data {
		out.Data[i] = s * a.Data[i]
	}
	return out
}

// unary applies f with derivative df(y = f(x), x).
func unary(a *Tensor, f func(float64) float64, df func(y, x float64) float64) *Tensor {
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i] * df(out.Data[i], a.Data[i])
			}
		}
	}
	if !needsTape(a) {
		bw = nil
	}
	out = result(a.Rows, a.Cols, []*Tensor{a}, bw)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Tanh returns tanh(a) element-wise.
func Tanh(a *Tensor) *Tensor {
	return unary(a, math.Tanh, func(y, _ float64) float64 { return 1 - y*y })
}

// Sigmoid returns 1/(1+e^-a) element-wise.
func Sigmoid(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(y, _ float64) float64 { return y * (1 - y) })
}

// ReLU returns max(0, a) element-wise.
func ReLU(a *Tensor) *Tensor {
	return unary(a,
		func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		func(_, x float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// ConcatCols concatenates tensors with equal row counts along columns.
func ConcatCols(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatCols of nothing")
	}
	rows := ts[0].Rows
	total := 0
	for _, t := range ts {
		if t.Rows != rows {
			panic("tensor: ConcatCols row mismatch")
		}
		total += t.Cols
	}
	var out *Tensor
	bw := func() {
		off := 0
		for _, t := range ts {
			if t.requires || t.backward != nil || t.parents != nil {
				t.ensureGrad()
				for i := 0; i < rows; i++ {
					for j := 0; j < t.Cols; j++ {
						t.Grad[i*t.Cols+j] += out.Grad[i*total+off+j]
					}
				}
			}
			off += t.Cols
		}
	}
	if !needsTape(ts...) {
		bw = nil
	}
	out = result(rows, total, ts, bw)
	off := 0
	for _, t := range ts {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*total+off:i*total+off+t.Cols], t.Data[i*t.Cols:(i+1)*t.Cols])
		}
		off += t.Cols
	}
	return out
}

// SliceCols returns columns [from, to) of a.
func SliceCols(a *Tensor, from, to int) *Tensor {
	if from < 0 || to > a.Cols || from >= to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", from, to, a.Cols))
	}
	w := to - from
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < w; j++ {
					a.Grad[i*a.Cols+from+j] += out.Grad[i*w+j]
				}
			}
		}
	}
	if !needsTape(a) {
		bw = nil
	}
	out = result(a.Rows, w, []*Tensor{a}, bw)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*w:(i+1)*w], a.Data[i*a.Cols+from:i*a.Cols+to])
	}
	return out
}

// MSE returns the scalar mean-squared error between pred and target.
// target never receives gradients.
func MSE(pred, target *Tensor) *Tensor {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("tensor: MSE shape mismatch")
	}
	n := float64(len(pred.Data))
	var out *Tensor
	bw := func() {
		if pred.requires || pred.backward != nil || pred.parents != nil {
			pred.ensureGrad()
			g := out.Grad[0]
			for i := range pred.Grad {
				pred.Grad[i] += g * 2 * (pred.Data[i] - target.Data[i]) / n
			}
		}
	}
	if !needsTape(pred) {
		bw = nil
	}
	out = result(1, 1, []*Tensor{pred}, bw)
	var s float64
	for i, v := range pred.Data {
		d := v - target.Data[i]
		s += d * d
	}
	out.Data[0] = s / n
	return out
}

// SumScalar returns the scalar sum of all elements.
func SumScalar(a *Tensor) *Tensor {
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			g := out.Grad[0]
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	if !needsTape(a) {
		bw = nil
	}
	out = result(1, 1, []*Tensor{a}, bw)
	var s float64
	for _, v := range a.Data {
		s += v
	}
	out.Data[0] = s
	return out
}

// SoftmaxRows applies softmax along each row (used for learned adaptive
// adjacency in MTGNN/GWN).
func SoftmaxRows(a *Tensor) *Tensor {
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				// dx_j = y_j * (g_j - Σ_k g_k y_k)
				var dot float64
				for j := 0; j < a.Cols; j++ {
					dot += out.Grad[i*a.Cols+j] * out.Data[i*a.Cols+j]
				}
				for j := 0; j < a.Cols; j++ {
					y := out.Data[i*a.Cols+j]
					a.Grad[i*a.Cols+j] += y * (out.Grad[i*a.Cols+j] - dot)
				}
			}
		}
	}
	if !needsTape(a) {
		bw = nil
	}
	out = result(a.Rows, a.Cols, []*Tensor{a}, bw)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			out.Data[i*a.Cols+j] = e
			sum += e
		}
		for j := range row {
			out.Data[i*a.Cols+j] /= sum
		}
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Tensor) *Tensor {
	var out *Tensor
	bw := func() {
		if a.requires || a.backward != nil || a.parents != nil {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for j := 0; j < a.Cols; j++ {
					a.Grad[i*a.Cols+j] += out.Grad[j*a.Rows+i]
				}
			}
		}
	}
	if !needsTape(a) {
		bw = nil
	}
	out = result(a.Cols, a.Rows, []*Tensor{a}, bw)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}
