package tensor

import "math"

// Adam is the Adam optimizer over a fixed parameter list.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	Clip     float64 // max gradient element magnitude, 0 = no clipping
	params   []*Tensor
	mom, vel [][]float64
	t        int
}

// NewAdam builds an optimizer for params with the given learning rate.
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5, params: params}
	a.mom = make([][]float64, len(params))
	a.vel = make([][]float64, len(params))
	for i, p := range params {
		a.mom[i] = make([]float64, len(p.Data))
		a.vel[i] = make([]float64, len(p.Data))
	}
	return a
}

// Step applies one update from the accumulated gradients and clears them.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for pi, p := range a.params {
		if p.Grad == nil {
			continue
		}
		for i, g := range p.Grad {
			if a.Clip > 0 {
				if g > a.Clip {
					g = a.Clip
				} else if g < -a.Clip {
					g = -a.Clip
				}
			}
			a.mom[pi][i] = a.Beta1*a.mom[pi][i] + (1-a.Beta1)*g
			a.vel[pi][i] = a.Beta2*a.vel[pi][i] + (1-a.Beta2)*g*g
			mhat := a.mom[pi][i] / c1
			vhat := a.vel[pi][i] / c2
			p.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
	a.ZeroGrads()
}

// ZeroGrads clears every parameter gradient.
func (a *Adam) ZeroGrads() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}
