package engine

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// stubOptBackend is a deterministic toy solver: each "step" draws a random
// spin vector and keeps the best under a diagonal objective. Good enough to
// pin the engine-side contract — seeding, fan-out identity, plan caching,
// pooling, observer dispatch — without any real dynamics.
type stubOptBackend struct {
	n        int
	seed     uint64
	compiles int
	fail     bool // when set, every RunSolve errors
}

type stubSolvePlan struct {
	sched Schedule
	temps []float64
}

func (b *stubOptBackend) Name() string     { return "stub-opt" }
func (b *stubOptBackend) Dim() int         { return b.n }
func (b *stubOptBackend) BaseSeed() uint64 { return b.seed }

func (b *stubOptBackend) CompileSolvePlan(sched Schedule) any {
	b.compiles++
	temps := make([]float64, sched.Steps)
	for k := range temps {
		temps[k] = sched.At(k)
	}
	return &stubSolvePlan{sched: sched, temps: temps}
}

func (b *stubOptBackend) AttachSolveState(st *SolveState) {
	st.Scratch = make([]int8, b.n)
}

func (b *stubOptBackend) EnergyOf(s []int8) float64 {
	e := 0.0
	for i, si := range s {
		e += float64(i+1) * float64(si)
	}
	return e
}

func (b *stubOptBackend) RunSolve(st *SolveState, plan any) (*OptResult, error) {
	pl := plan.(*stubSolvePlan)
	if b.fail {
		return nil, errors.New("stub-opt: injected failure")
	}
	cand := st.Scratch.([]int8)
	best := math.Inf(1)
	for k := 0; k < pl.sched.Steps; k++ {
		for i := range cand {
			if st.RNG.Float64() < 0.5 {
				cand[i] = -1
			} else {
				cand[i] = 1
			}
		}
		copy(st.Spins, cand)
		if e := b.EnergyOf(cand); e < best {
			best = e
			copy(st.Res.Spins, cand)
			st.Res.BestStep = k
		}
		if st.Observer != nil {
			st.Observer(StepInfo{Step: k, EnergyFn: st.EnergyFn})
		}
	}
	st.Res.Energy = best
	st.Res.Steps = pl.sched.Steps
	return &st.Res, nil
}

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"linear ok", LinearSchedule(10, 2, 0.1), true},
		{"geometric ok", GeometricSchedule(10, 2, 0.1), true},
		{"adaptive ok", AdaptiveSchedule(10, 2, 0.1, 3, 0.5), true},
		{"bad kind", Schedule{Kind: "banana", Steps: 10, T0: 2, T1: 0.1}, false},
		{"zero steps", GeometricSchedule(0, 2, 0.1), false},
		{"zero T0", GeometricSchedule(10, 0, 0.1), false},
		{"zero T1", GeometricSchedule(10, 2, 0), false},
		{"heating", GeometricSchedule(10, 1, 2), false},
		{"adaptive zero period", AdaptiveSchedule(10, 2, 0.1, 0, 0.5), false},
		{"adaptive zero reheat", AdaptiveSchedule(10, 2, 0.1, 3, 0), false},
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestScheduleLadderEndpoints(t *testing.T) {
	for _, s := range []Schedule{LinearSchedule(17, 3, 0.2), GeometricSchedule(17, 3, 0.2)} {
		if got := s.At(0); got != s.T0 {
			t.Errorf("%s At(0) = %g, want T0=%g", s.Kind, got, s.T0)
		}
		if got := s.At(s.Steps - 1); math.Abs(got-s.T1) > 1e-12 {
			t.Errorf("%s At(last) = %g, want T1=%g", s.Kind, got, s.T1)
		}
		for k := 1; k < s.Steps; k++ {
			if s.At(k) > s.At(k-1)+1e-15 {
				t.Fatalf("%s ladder heats at step %d: %g -> %g", s.Kind, k, s.At(k-1), s.At(k))
			}
		}
	}
}

func TestScheduleForRestart(t *testing.T) {
	g := GeometricSchedule(10, 2, 0.1)
	if g.ForRestart(5) != g {
		t.Error("non-adaptive schedule must be restart-invariant")
	}
	a := AdaptiveSchedule(10, 2, 0.1, 3, 0.5)
	if got := a.ForRestart(0).T0; got != 2 {
		t.Errorf("restart 0 T0 = %g, want 2", got)
	}
	if got := a.ForRestart(1).T0; math.Abs(got-1) > 1e-12 {
		t.Errorf("restart 1 T0 = %g, want 1 (2*0.5)", got)
	}
	if got := a.ForRestart(2).T0; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("restart 2 T0 = %g, want 0.5", got)
	}
	// Cycle: restart 3 back to full heat.
	if got := a.ForRestart(3).T0; got != 2 {
		t.Errorf("restart 3 T0 = %g, want cycle back to 2", got)
	}
	// Clamped at T1.
	deep := AdaptiveSchedule(10, 2, 0.1, 10, 0.1)
	if got := deep.ForRestart(5).T0; got != deep.T1 {
		t.Errorf("deep reheat T0 = %g, want clamp at T1=%g", got, deep.T1)
	}
}

func TestPackScheduleDistinguishes(t *testing.T) {
	buf := make([]byte, scheduleKeyLen)
	base := GeometricSchedule(10, 2, 0.1)
	key := string(packSchedule(base, buf))
	variants := []Schedule{
		LinearSchedule(10, 2, 0.1),
		GeometricSchedule(11, 2, 0.1),
		GeometricSchedule(10, 2.5, 0.1),
		GeometricSchedule(10, 2, 0.2),
		AdaptiveSchedule(10, 2, 0.1, 3, 0.5),
	}
	for _, v := range variants {
		if string(packSchedule(v, buf)) == key {
			t.Errorf("schedule %+v packs to the same key as %+v", v, base)
		}
	}
	if string(packSchedule(base, buf)) != key {
		t.Error("packSchedule is not deterministic")
	}
}

// TestOptSoloVsFanoutBitIdentity pins the seeding convention: a parallel
// multi-restart Solve must be bit-identical to sequential SolveSeeded calls
// at BaseSeed()+i, for every worker count.
func TestOptSoloVsFanoutBitIdentity(t *testing.T) {
	const restarts = 6
	sched := AdaptiveSchedule(12, 2, 0.1, 3, 0.5)

	solo := make([]*OptResult, restarts)
	{
		e := NewOpt(&stubOptBackend{n: 16, seed: 40})
		for i := range solo {
			res, err := e.SolveSeeded(sched.ForRestart(i), 40+uint64(i))
			if err != nil {
				t.Fatalf("solo restart %d: %v", i, err)
			}
			solo[i] = res
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		e := NewOpt(&stubOptBackend{n: 16, seed: 40})
		run, err := e.Solve(sched, restarts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, want := range solo {
			if run.Energies[i] != want.Energy {
				t.Errorf("workers=%d restart %d energy %g, want solo %g", workers, i, run.Energies[i], want.Energy)
			}
		}
		bestIdx, best := 0, math.Inf(1)
		for i, w := range solo {
			if w.Energy < best {
				best, bestIdx = w.Energy, i
			}
		}
		if run.BestRestart != bestIdx || run.Best.Energy != best {
			t.Errorf("workers=%d best (restart %d, %g), want (restart %d, %g)",
				workers, run.BestRestart, run.Best.Energy, bestIdx, best)
		}
		if !reflect.DeepEqual(run.Best.Spins, solo[bestIdx].Spins) {
			t.Errorf("workers=%d best spins differ from solo", workers)
		}
	}
}

func TestOptRunBestTraceMonotone(t *testing.T) {
	e := NewOpt(&stubOptBackend{n: 12, seed: 7})
	run, err := e.Solve(GeometricSchedule(8, 2, 0.1), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for i, en := range run.Energies {
		if en < best {
			best = en
		}
		if run.BestTrace[i] != best {
			t.Errorf("BestTrace[%d] = %g, want running min %g", i, run.BestTrace[i], best)
		}
	}
	if run.Best.Energy != run.BestTrace[len(run.BestTrace)-1] {
		t.Errorf("Best.Energy %g != final trace %g", run.Best.Energy, run.BestTrace[len(run.BestTrace)-1])
	}
	if run.Steps != 8*8 {
		t.Errorf("run.Steps = %d, want 64", run.Steps)
	}
}

// TestOptPlanCacheAcrossRestarts: a non-adaptive batch compiles once; an
// adaptive batch compiles once per distinct reheat phase.
func TestOptPlanCacheAcrossRestarts(t *testing.T) {
	b := &stubOptBackend{n: 8, seed: 1}
	e := NewOpt(b)
	if _, err := e.Solve(GeometricSchedule(5, 2, 0.1), 8, 4); err != nil {
		t.Fatal(err)
	}
	if b.compiles != 1 {
		t.Errorf("geometric batch compiled %d plans, want 1", b.compiles)
	}
	hits, misses := e.PlanCacheStats()
	if misses != 1 || hits != 7 {
		t.Errorf("cache stats hits=%d misses=%d, want 7/1", hits, misses)
	}
	if e.PlanCacheLen() != 1 {
		t.Errorf("resident plans = %d, want 1", e.PlanCacheLen())
	}

	b2 := &stubOptBackend{n: 8, seed: 1}
	e2 := NewOpt(b2)
	if _, err := e2.Solve(AdaptiveSchedule(5, 2, 0.1, 3, 0.5), 9, 1); err != nil {
		t.Fatal(err)
	}
	if b2.compiles != 3 {
		t.Errorf("adaptive batch (period 3) compiled %d plans, want 3", b2.compiles)
	}
}

func TestOptStatePooling(t *testing.T) {
	e := NewOpt(&stubOptBackend{n: 8, seed: 1})
	sched := GeometricSchedule(3, 2, 0.1)
	if _, err := e.Solve(sched, 4, 2); err != nil {
		t.Fatal(err)
	}
	e.states.mu.Lock()
	pooled := len(e.states.items)
	e.states.mu.Unlock()
	if pooled != 2 {
		t.Fatalf("pooled states after first batch = %d, want 2", pooled)
	}
	if _, err := e.Solve(sched, 4, 2); err != nil {
		t.Fatal(err)
	}
	e.states.mu.Lock()
	pooled = len(e.states.items)
	e.states.mu.Unlock()
	if pooled != 2 {
		t.Errorf("pooled states after second batch = %d, want 2 (recycled, not grown)", pooled)
	}
}

func TestOptObserverAndEnergyFn(t *testing.T) {
	e := NewOpt(&stubOptBackend{n: 6, seed: 3})
	st := e.NewSolveState()
	var trace BestEnergyTrace
	trace.Reset()
	st.SetObserver(trace.Observer())
	res, err := e.SolveWith(st, GeometricSchedule(10, 2, 0.1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Trace) != 10 {
		t.Fatalf("observer fired %d times, want 10", len(trace.Trace))
	}
	for i := 1; i < len(trace.Trace); i++ {
		if trace.Trace[i] > trace.Trace[i-1] {
			t.Fatalf("best-energy trace increases at %d: %g -> %g", i, trace.Trace[i-1], trace.Trace[i])
		}
	}
	if trace.Best != res.Energy {
		t.Errorf("trace best %g != restart best %g", trace.Best, res.Energy)
	}
}

func TestOptObserverStrippedOnPooling(t *testing.T) {
	e := NewOpt(&stubOptBackend{n: 6, seed: 3})
	st := e.getState()
	st.SetObserver(func(StepInfo) { t.Error("stale observer fired on recycled state") })
	e.putState(st)
	if _, err := e.Solve(GeometricSchedule(4, 2, 0.1), 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestOptErrorPropagation(t *testing.T) {
	e := NewOpt(&stubOptBackend{n: 6, seed: 3})
	if _, err := e.Solve(Schedule{Kind: "nope", Steps: 4, T0: 2, T1: 0.1}, 2, 1); err == nil {
		t.Error("invalid schedule must error")
	}
	st := e.NewSolveState()
	other := NewOpt(&stubOptBackend{n: 6, seed: 3})
	if _, err := other.SolveWith(st, GeometricSchedule(4, 2, 0.1), 1); err == nil {
		t.Error("foreign SolveState must be rejected")
	}
}

func TestOptRunSolveErrorSurfaces(t *testing.T) {
	e := NewOpt(&stubOptBackend{n: 6, seed: 9, fail: true})
	if _, err := e.Solve(GeometricSchedule(6, 2, 0.1), 4, 2); err == nil {
		t.Error("restart error must fail the batch")
	} else if got := err.Error(); got != "stub-opt: injected failure" {
		t.Errorf("unexpected error %q", got)
	}
}

func TestOptResultDetach(t *testing.T) {
	e := NewOpt(&stubOptBackend{n: 4, seed: 5})
	st := e.NewSolveState()
	res, err := e.SolveWith(st, GeometricSchedule(3, 2, 0.1), 5)
	if err != nil {
		t.Fatal(err)
	}
	det := res.Detach()
	res.Spins[0] = -res.Spins[0]
	if det.Spins[0] == res.Spins[0] {
		t.Error("Detach must deep-copy spins")
	}
}

func ExampleOptEngine_Solve() {
	e := NewOpt(&stubOptBackend{n: 4, seed: 11})
	run, err := e.Solve(GeometricSchedule(20, 2, 0.1), 4, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(run.Restarts, run.Best.Energy == run.BestTrace[3])
	// Output: 4 true
}
