package engine

import (
	"bytes"
	"fmt"
	"time"
)

// DeltaBackend is the optional Backend extension for clamp-plan
// delta-compilation. A streaming temporal inference slides its observation
// window one step per tick: the clamp mask shifts by a small symmetric
// difference, every tick's mask is new to the plan cache, and a full
// CompilePlan per tick re-classifies every coupling row from scratch. A
// DeltaBackend instead patches the predecessor pattern's plan,
// reclassifying only the rows the flipped mask bits touch.
//
// The contract mirrors CompilePlan's: the product depends only on WHICH
// nodes are clamped, is immutable, and must be interchangeable with a full
// compile — the engine inserts it into the plan cache under the new
// pattern's key, and the plan-naive-identity invariant applies to patched
// plans exactly as to compiled ones, so patching must be structurally
// lossless. prev is a plan previously produced by this backend (via
// CompilePlan or CompilePlanDelta) for oldClamped; it must not be mutated,
// since it may still be resident under its own key. Returning nil declines
// the delta (mask unchanged, symmetric difference too large, foreign plan
// type) and sends the engine to the full compile.
type DeltaBackend interface {
	Backend
	CompilePlanDelta(prev any, oldClamped, newClamped []bool) any
}

// Stream is a stateful streaming-inference session: a sequence of
// observation windows inferred as consecutive ticks, each warm-started from
// the previous tick's settled state instead of a fresh random init, with
// clamp plans resolved by delta-compilation from the predecessor tick's
// pattern when the backend supports it. Open with Engine.OpenStream, feed
// ticks with Tick, and Close when done to return the scratch state to the
// engine pool.
//
// A Stream is single-threaded: it owns one InferState and each tick's warm
// start is the previous tick's equilibrium. Concurrent sessions use one
// Stream each.
type Stream struct {
	eng *Engine
	st  *InferState

	// Predecessor tick's clamp pattern: the packed plan-cache key (for the
	// LRU lookup that seeds the delta compile) and the unpacked mask (the
	// DeltaBackend argument).
	prevKey     []byte
	prevClamped []bool
	started     bool
}

// OpenStream starts a streaming session on this engine. The session draws
// its scratch state from the engine free-list and must be Closed to return
// it.
func (e *Engine) OpenStream() *Stream {
	return &Stream{eng: e, st: e.getState()}
}

// Engine returns the engine this stream runs on.
func (s *Stream) Engine() *Engine { return s.eng }

// Started reports whether the stream has completed its cold first tick.
func (s *Stream) Started() bool { return s.started }

// Close returns the session's scratch state to the engine pool. Tick after
// Close errors; Close is idempotent.
func (s *Stream) Close() {
	if s.st != nil {
		s.eng.putState(s.st)
		s.st = nil
	}
}

// Tick runs one streaming inference; see Engine.InferShifted for the warm
// start and plan-delta semantics. The returned Result aliases the stream's
// state buffers and is overwritten by the next tick; Detach it if it must
// outlive the tick.
func (s *Stream) Tick(obs []Observation, seed uint64) (*Result, error) {
	return s.eng.InferShifted(s, obs, seed)
}

// InferShifted is the streaming-tick entry point behind Stream.Tick: one
// inference whose observation set is a (usually small) shift of the
// previous tick's.
//
// The first tick of a session is exactly InferWith — uniform random init,
// full plan resolution. Every later tick differs in two ways:
//
//   - Warm-start: free nodes keep the previous tick's settled voltages as
//     their init (the previous equilibrium is near the new one when the
//     window slid one step), and only the clamped entries are rewritten
//     from the new observations. The RNG is still reseeded per tick, so
//     noisy regimes stay deterministic per seed. A warm-started anneal
//     settles to the same fixed point as a cold one — the
//     warm-start-fixed-point verify invariant — it just starts closer.
//   - Plan delta-resolution: when the new clamp pattern misses the plan
//     cache, the predecessor pattern's resident plan is patched via the
//     backend's CompilePlanDelta instead of fully recompiled, falling back
//     to CompilePlan when the backend declines or the predecessor was
//     evicted. Either way the product lands in the cache under the new
//     pattern's key.
func (e *Engine) InferShifted(s *Stream, obs []Observation, seed uint64) (*Result, error) {
	if s == nil || s.eng != e {
		return nil, fmt.Errorf("%s: Stream belongs to a different engine", e.b.Name())
	}
	if s.st == nil {
		return nil, fmt.Errorf("%s: Tick on a closed stream", e.b.Name())
	}
	st := s.st
	m := e.metrics()
	var start time.Time
	if m.enabled() {
		start = time.Now()
	}
	st.RNG.Reseed(seed)
	if !s.started {
		st.RNG.FillUniform(st.X, -0.1, 0.1)
	}
	if err := st.applyObservations(obs); err != nil {
		m.recordInfer(nil, err, start)
		return nil, err
	}
	st.WarmStart = s.started
	n := len(st.X)
	key := packMask(st.Clamped, st.KeyBuf)[:maskBytes(n)]
	compile := e.b.CompilePlan
	if s.started && !bytes.Equal(key, s.prevKey) {
		if db, ok := e.b.(DeltaBackend); ok {
			// The closure only runs on a cache miss, so the hit/fallback
			// counters move once per new pattern, not once per tick.
			prevPl, resident := e.residentPlan(s.prevKey)
			prevClamped := s.prevClamped
			compile = func(clamped []bool) any {
				if resident {
					if pl := db.CompilePlanDelta(prevPl, prevClamped, clamped); pl != nil {
						e.planDeltaHits.Add(1)
						m.planDeltaHits.Inc()
						return pl
					}
				}
				e.planDeltaFallbacks.Add(1)
				m.planDeltaFallbacks.Inc()
				return e.b.CompilePlan(clamped)
			}
		}
	}
	pl := e.planFor(st.Clamped, key, compile)
	if s.prevKey == nil {
		s.prevKey = make([]byte, len(key))
		s.prevClamped = make([]bool, n)
	}
	copy(s.prevKey, key)
	copy(s.prevClamped, st.Clamped)
	res, err := e.b.RunPlanned(st, pl)
	m.recordInfer(res, err, start)
	if err != nil {
		return nil, err
	}
	if m.enabled() {
		m.streamTicks.Inc()
		if s.started {
			m.streamWarmSteps.Observe(float64(res.Steps))
		} else {
			m.streamColdSteps.Observe(float64(res.Steps))
		}
	}
	s.started = true
	return res, nil
}

// residentPlan reads the plan cached under key, if any, from the lock-free
// snapshot. Unlike planFor it never compiles, never bumps recency, and
// never counts a hit or miss — it only answers "is the predecessor's plan
// still around to patch from".
func (e *Engine) residentPlan(key []byte) (any, bool) {
	return e.plans.peek(key)
}

// PlanDeltaStats reports the cumulative plan delta-compilation counts:
// hits patched a predecessor plan, fallbacks resolved a shifted pattern
// with a full compile (backend declined, no DeltaBackend predecessor plan
// resident). Cache hits on a shifted pattern move neither counter.
func (e *Engine) PlanDeltaStats() (hits, fallbacks uint64) {
	return e.planDeltaHits.Load(), e.planDeltaFallbacks.Load()
}
